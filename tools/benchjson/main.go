// Command benchjson converts `go test -bench` output into a compact JSON
// summary, so every PR's benchmark run leaves a machine-readable artifact
// (BENCH_PR<N>.json) recording the performance trajectory of the repo.
//
// Usage:
//
//	go test -run '^$' -bench . -count 3 ./... | go run ./tools/benchjson -pr 3 -o BENCH_PR3.json
//
// Repeated runs of the same benchmark (from -count or multiple packages) are
// aggregated: the mean and minimum ns/op are both reported, since the minimum
// is the more stable signal on noisy shared runners.
//
// With -uhmload FILE, the JSON report a `uhmload -o FILE` run wrote is
// embedded verbatim under the "uhmload" key, so a PR's microbenchmarks and
// its measured fleet load numbers land in one artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line.  The iteration count and
// ns/op are always present; B/op and allocs/op appear with -benchmem or for
// benchmarks that call ReportAllocs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Result is the aggregated outcome of one benchmark.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	MinNsPerOp  float64 `json:"min_ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Summary is the emitted JSON document.
type Summary struct {
	Label      string          `json:"label,omitempty"`
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	Benchmarks []Result        `json:"benchmarks"`
	Uhmload    json.RawMessage `json:"uhmload,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	pr := flag.String("pr", "", "label recorded in the summary (e.g. PR3)")
	loadFile := flag.String("uhmload", "", "uhmload JSON report to embed under the \"uhmload\" key")
	flag.Parse()

	summary, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	summary.Label = *pr
	if *loadFile != "" {
		raw, err := os.ReadFile(*loadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not valid JSON\n", *loadFile)
			os.Exit(1)
		}
		summary.Uhmload = json.RawMessage(raw)
	}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

type agg struct {
	runs   int
	sumNs  float64
	minNs  float64
	sumB   float64
	hasB   bool
	sumAll float64
	hasAll bool
}

func parse(sc *bufio.Scanner) (*Summary, error) {
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	byName := map[string]*agg{}
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		a := byName[name]
		if a == nil {
			a = &agg{minNs: ns}
			byName[name] = a
		}
		a.runs++
		a.sumNs += ns
		if ns < a.minNs {
			a.minNs = ns
		}
		if m[4] != "" {
			if b, err := strconv.ParseFloat(m[4], 64); err == nil {
				a.sumB += b
				a.hasB = true
			}
		}
		if m[5] != "" {
			if al, err := strconv.ParseFloat(m[5], 64); err == nil {
				a.sumAll += al
				a.hasAll = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	summary := &Summary{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for name, a := range byName {
		r := Result{
			Name:       name,
			Runs:       a.runs,
			NsPerOp:    round(a.sumNs / float64(a.runs)),
			MinNsPerOp: round(a.minNs),
		}
		if a.hasB {
			r.BPerOp = round(a.sumB / float64(a.runs))
		}
		if a.hasAll {
			r.AllocsPerOp = round(a.sumAll / float64(a.runs))
		}
		summary.Benchmarks = append(summary.Benchmarks, r)
	}
	sort.Slice(summary.Benchmarks, func(i, j int) bool {
		return summary.Benchmarks[i].Name < summary.Benchmarks[j].Name
	})
	return summary, nil
}

// round keeps two decimals — enough resolution for a trajectory record.
func round(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
