package main

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: uhm/internal/bitio
BenchmarkWriteBits/width=7-8         	12345678	        97.5 ns/op
BenchmarkWriteBits/width=7-8         	12000000	       102.5 ns/op
BenchmarkReplaySteadyState/dtb-8     	    1000	   1200000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	uhm/internal/bitio	3.214s
`

func TestParseAggregates(t *testing.T) {
	s, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(s.Benchmarks), s.Benchmarks)
	}
	// Sorted by name: ReplaySteadyState first.
	replay := s.Benchmarks[0]
	if replay.Name != "BenchmarkReplaySteadyState/dtb-8" || replay.Runs != 1 {
		t.Errorf("unexpected first benchmark: %+v", replay)
	}
	if replay.NsPerOp != 1200000 || replay.AllocsPerOp != 0 {
		t.Errorf("replay stats wrong: %+v", replay)
	}
	write := s.Benchmarks[1]
	if write.Runs != 2 {
		t.Errorf("WriteBits runs = %d, want 2", write.Runs)
	}
	if write.NsPerOp != 100 {
		t.Errorf("WriteBits mean = %v, want 100", write.NsPerOp)
	}
	if write.MinNsPerOp != 97.5 {
		t.Errorf("WriteBits min = %v, want 97.5", write.MinNsPerOp)
	}
}

// TestUhmloadEmbed: a load report attached to the summary survives
// marshaling verbatim under the "uhmload" key, and an unset report leaves
// the key out entirely.
func TestUhmloadEmbed(t *testing.T) {
	s, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	s.Uhmload = json.RawMessage(`{"mode":"closed","requests":100,"fleet":{"builds_delta":12}}`)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	load, ok := m["uhmload"].(map[string]any)
	if !ok {
		t.Fatalf("uhmload key missing or wrong shape: %s", data)
	}
	if load["mode"] != "closed" {
		t.Fatalf("embedded report mangled: %v", load)
	}

	s.Uhmload = nil
	data, err = json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "uhmload") {
		t.Fatalf("empty report still emitted a key: %s", data)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	s, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok \tpkg\t1s\nrandom text\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from noise", len(s.Benchmarks))
	}
}
