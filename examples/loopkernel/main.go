// Loop kernel: the paper's best case for dynamic translation.  A tight loop
// keeps the DTB hit ratio near unity, so the machine "spends all its time in
// performing computation related to the semantics of the DIR program instead
// of performing overhead tasks such as parsing, information theoretic
// decoding and binding" (§6.2).
//
// The example compares all four organisations on the loop-dominated
// "loopsum" workload at the heaviest encoding degree (largest decode cost),
// where the DTB's advantage is greatest.
//
//	go run ./examples/loopkernel
package main

import (
	"fmt"
	"log"

	"uhm/internal/core"
	"uhm/internal/metrics"
)

func main() {
	art, err := core.BuildWorkload("loopsum", core.LevelStack)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Degree = core.DegreePair // heavily encoded static form: expensive to decode

	reports, err := core.Compare(art, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: loopsum, output %v\n\n", reports[0].Output)
	tbl := metrics.NewTable("organisations on a loop-dominated workload (pair-frequency encoded DIR)",
		"organisation", "cycles/instr", "fetch", "decode", "translate", "semantics", "hit ratio")
	var conv, dtb *core.Report
	for _, rep := range reports {
		hit := ""
		switch rep.Strategy {
		case core.WithDTB:
			hit = metrics.Percent(rep.Measured.HD)
			dtb = rep
		case core.WithCache:
			hit = metrics.Percent(rep.Measured.HC)
		case core.Conventional:
			conv = rep
		}
		tbl.AddRow(rep.Strategy.String(), metrics.Float(rep.PerInstruction),
			fmt.Sprint(rep.FetchCycles), fmt.Sprint(rep.DecodeCycles),
			fmt.Sprint(rep.TranslateCycles), fmt.Sprint(rep.SemanticCycles), hit)
	}
	fmt.Print(tbl.Render())
	if conv != nil && dtb != nil {
		f2 := (conv.PerInstruction - dtb.PerInstruction) / dtb.PerInstruction * 100
		fmt.Printf("\nmeasured F2 (degradation from not using the DTB): %.1f%%\n", f2)
		fmt.Printf("decode work avoided by the DTB: %d cycles -> %d cycles\n", conv.DecodeCycles, dtb.DecodeCycles)
	}
}
