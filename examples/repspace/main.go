// Representation space: sweep the two dimensions of the paper's Figure 1 —
// semantic level (vertical) and degree of encoding (horizontal) — for one
// workload and print the static program size, the decoder-table size and the
// simulated interpretation time at every point.
//
//	go run ./examples/repspace
package main

import (
	"fmt"
	"log"

	"uhm/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	rows, err := core.Figure1([]string{"sieve"}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.RenderFigure1(rows))

	// Summarise the two trends the figure illustrates.
	byKey := make(map[string]core.Figure1Row)
	for _, r := range rows {
		byKey[r.Level.String()+"/"+r.Degree.String()] = r
	}
	packed := byKey["stack/packed"]
	pair := byKey["stack/pair"]
	fmt.Printf("\nmoving right (more encoding, stack level): size %d -> %d bits, decode steps %.1f -> %.1f per instruction\n",
		packed.StaticBits, pair.StaticBits, packed.MeasuredDecode, pair.MeasuredDecode)
	low := byKey["stack/huffman"]
	high := byKey["mem3/huffman"]
	fmt.Printf("moving up (higher semantic level, huffman encoding): dynamic instructions %d -> %d, total cycles %d -> %d\n",
		low.Instructions, high.Instructions, low.TotalCycles, high.TotalCycles)
}
