// Call-heavy workload: procedure-intensive code spreads the instruction
// working set over several procedure bodies, so the DTB's effectiveness
// depends on its capacity relative to that working set.  This example sweeps
// the DTB size on the "callheavy" and "ackermann" workloads and prints the
// hit ratio and interpretation time at each point — the behaviour behind the
// paper's choice of h_D = 0.8 for a DTB one third the size of the equivalent
// cache.
//
//	go run ./examples/callheavy
package main

import (
	"fmt"
	"log"

	"uhm/internal/core"
	"uhm/internal/dtb"
	"uhm/internal/metrics"
)

func main() {
	for _, name := range []string{"callheavy", "ackermann"} {
		art, err := core.BuildWorkload(name, core.LevelStack)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload %q\n", name)
		tbl := metrics.NewTable("DTB capacity sweep", "entries", "capacity (bytes)", "hit ratio", "cycles/instr")
		for _, entries := range []int{8, 16, 32, 64, 128, 256} {
			cfg := core.DefaultConfig()
			cfg.DTB = dtb.Config{
				Entries:       entries,
				Assoc:         4,
				UnitWords:     4,
				Policy:        dtb.VariableOverflow,
				OverflowUnits: entries / 4,
			}
			rep, err := core.Run(art, core.WithDTB, cfg)
			if err != nil {
				log.Fatal(err)
			}
			tbl.AddRow(fmt.Sprint(entries), fmt.Sprint(cfg.DTB.CapacityBytes()),
				metrics.Percent(rep.Measured.HD), metrics.Float(rep.PerInstruction))
		}
		fmt.Print(tbl.Render())
		fmt.Println()
	}
}
