// Quickstart: compile a MiniLang program, run it on the simulated universal
// host machine with a dynamic translation buffer, and print the cost report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"uhm/internal/core"
)

const source = `
program quickstart;
var i, total;
proc square(x);
begin
  return x * x
end;
begin
  total := 0;
  i := 1;
  while i <= 20 do
  begin
    total := total + square(i);
    i := i + 1
  end;
  print total
end.`

func main() {
	// 1. Parse, analyse and compile the HLR down to a stack-level DIR.
	art, err := core.BuildSource("quickstart", source, core.LevelStack)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Check what the program should print, using the HLR oracle.
	want, err := art.Reference()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Simulate it on the UHM with a DTB, using the paper's §7 parameters
	//    and a Huffman-encoded static representation.
	cfg := core.DefaultConfig()
	report, err := core.Run(art, core.WithDTB, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("expected output:      %v\n", want)
	fmt.Printf("simulated output:     %v\n", report.Output)
	fmt.Printf("DIR instructions:     %d\n", report.Instructions)
	fmt.Printf("cycles / instruction: %.2f\n", report.PerInstruction)
	fmt.Printf("DTB hit ratio:        %.1f%%\n", report.Measured.HD*100)
	fmt.Printf("static program size:  %d bits (Huffman-encoded DIR)\n", report.StaticBits)
}
