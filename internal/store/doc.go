// Package store is the persistence layer of the artifact pipeline: a
// versioned binary container format for built artifacts and a
// content-addressed disk tier behind the in-memory registry.
//
// The paper's argument is that binding work should be paid once and amortised
// across many executions.  PRs 5–7 amortised it across requests within one
// process; this package amortises it across processes and machines.  A
// container carries everything an artifact's chain has materialised — the
// compiled DIR program, the encoded static representation at each degree, and
// the recorded canonical execution trace — so a loading process resumes the
// chain where the writing process left off: no parse, no compile, no encode,
// no trace-recording run.
//
// The container is defended in depth: a fixed header (magic, version, payload
// length) gates format skew, a SHA-256 over the whole payload gates
// corruption, and the section parser bounds-checks every read, so a
// truncated, flipped or hostile file yields a typed error (ErrBadMagic,
// ErrVersion, ErrTruncated, ErrHashMismatch, ErrCorrupt) and never a partial
// artifact.  Store wraps a directory of containers with atomic
// temp-file+rename writes, verify-by-hash reads and per-tier counters; the
// service registry stacks it behind its byte-budget LRU as the second tier.
package store
