package store

import (
	"crypto/sha256"
	"slices"
	"testing"

	"uhm/internal/core"
	"uhm/internal/sim"
)

// TestRehydratedRunsMatchFresh is the PR's acceptance pin: an artifact that
// went through the full persistence cycle — snapshot, encode, write, read,
// verify-by-hash, decode, rehydrate — must be indistinguishable from a
// freshly built one at every level, under every strategy, at every encoding
// degree: byte-identical output and a field-for-field identical cost report
// (sim.DiffReports).  The rehydrated run derives from the persisted trace
// while the fresh run records its own, so this also pins that a loaded trace
// answers exactly like a recorded one.
func TestRehydratedRunsMatchFresh(t *testing.T) {
	key := sha256.Sum256([]byte(testSrc))
	for _, level := range core.Levels() {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			st := openTestStore(t)
			enriched := enrichedArtifact(t, level)
			if err := st.Put(enriched.Snapshot(), testSrc); err != nil {
				t.Fatal(err)
			}
			img, err := st.Get(key, level)
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := img.Artifact()
			if err != nil {
				t.Fatal(err)
			}
			// Fresh reference, built from source with no persisted state.
			fresh, err := core.BuildSource("persist", testSrc, level)
			if err != nil {
				t.Fatal(err)
			}
			for _, degree := range core.Degrees() {
				cfg := core.DefaultConfig()
				cfg.Degree = degree
				for _, strategy := range core.Strategies() {
					want, err := core.Run(fresh, strategy, cfg)
					if err != nil {
						t.Fatalf("%v/%v fresh: %v", degree, strategy, err)
					}
					got, err := core.Run(loaded, strategy, cfg)
					if err != nil {
						t.Fatalf("%v/%v rehydrated: %v", degree, strategy, err)
					}
					if !slices.Equal(got.Output, want.Output) {
						t.Fatalf("%v/%v: output %v, want %v", degree, strategy, got.Output, want.Output)
					}
					if diff := sim.DiffReports(got, want); diff != "" {
						t.Fatalf("%v/%v: rehydrated report diverges: %s", degree, strategy, diff)
					}
				}
			}
		})
	}
}
