package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"uhm/internal/core"
	"uhm/internal/faultinject"
)

// ErrNotFound reports that the store has no container for the requested key.
// It is the one Get failure that is not a defect: a cold store answers it for
// every key.
var ErrNotFound = errors.New("store: artifact not found")

// fileExt is the container file extension.
const fileExt = ".uhma"

// TierStats are the disk tier's monotonic counters, mirrored into the
// service stats next to the in-memory tier's.
type TierStats struct {
	// Hits counts Gets that returned a verified container.
	Hits int64
	// Misses counts Gets that found no container for the key.
	Misses int64
	// Puts counts containers written (including replacements).
	Puts int64
	// PutErrors counts failed writes; a failed write leaves either the old
	// container or nothing — never a torn file.
	PutErrors int64
	// ReadErrors counts Gets that failed on I/O with the file present.
	ReadErrors int64
	// VerifyFails counts Gets that read a container but failed to verify it
	// (hash mismatch, truncation, corruption, version skew).
	VerifyFails int64
	// BytesWritten and BytesRead total the container bytes moved.
	BytesWritten int64
	BytesRead    int64
}

// tierCounters is TierStats with atomic fields, so the hot path never takes
// a lock for accounting.
type tierCounters struct {
	hits, misses, puts, putErrors, readErrors, verifyFails atomic.Int64
	bytesWritten, bytesRead                                atomic.Int64
}

func (c *tierCounters) snapshot() TierStats {
	return TierStats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Puts:         c.puts.Load(),
		PutErrors:    c.putErrors.Load(),
		ReadErrors:   c.readErrors.Load(),
		VerifyFails:  c.verifyFails.Load(),
		BytesWritten: c.bytesWritten.Load(),
		BytesRead:    c.bytesRead.Load(),
	}
}

// Store is a directory of artifact containers addressed by (source hash,
// level).  Writes are atomic (temp file + rename in the same directory) and
// reads verify the container hash before anything is handed out, so a
// concurrent crash or a corrupted file can only ever look like a miss — it
// can never serve a wrong artifact.  All methods are safe for concurrent
// use.
type Store struct {
	dir string
	c   tierCounters
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the tier counters.
func (s *Store) Stats() TierStats { return s.c.snapshot() }

// fileName derives the container file name for a key: the hex source hash
// and the level, so one source's artifacts at different levels coexist and
// ls is meaningful without opening files.
func fileName(hash [sha256.Size]byte, level core.Level) string {
	return hex.EncodeToString(hash[:]) + "-" + level.String() + fileExt
}

// parseFileName inverts fileName; ok is false for foreign files.
func parseFileName(name string) (hash [sha256.Size]byte, level core.Level, ok bool) {
	base, found := strings.CutSuffix(name, fileExt)
	if !found {
		return hash, level, false
	}
	hexHash, levelName, found := strings.Cut(base, "-")
	if !found || len(hexHash) != sha256.Size*2 {
		return hash, level, false
	}
	raw, err := hex.DecodeString(hexHash)
	if err != nil {
		return hash, level, false
	}
	level, err = core.ParseLevel(levelName)
	if err != nil {
		return hash, level, false
	}
	copy(hash[:], raw)
	return hash, level, true
}

// Put encodes the snapshot and writes its container, replacing any previous
// container for the same (source, level).  The write is atomic: a temp file
// in the store directory is renamed over the target, so readers and crashes
// see either the old complete container or the new one.
func (s *Store) Put(snap *core.Snapshot, src string) error {
	data, err := Encode(snap, src)
	if err != nil {
		s.c.putErrors.Add(1)
		return err
	}
	return s.putBytes(sha256.Sum256([]byte(src)), snap.Level, data)
}

// PutRaw verifies a complete container (as exported by uhmart) and writes it
// under its content-derived name, returning the decoded image.
func (s *Store) PutRaw(data []byte) (*Image, error) {
	img, err := Decode(data)
	if err != nil {
		s.c.putErrors.Add(1)
		return nil, err
	}
	if err := s.putBytes(img.SourceHash, img.Level(), data); err != nil {
		return nil, err
	}
	return img, nil
}

func (s *Store) putBytes(hash [sha256.Size]byte, level core.Level, data []byte) error {
	if err := faultinject.Fire(faultinject.SiteStoreWrite); err != nil {
		s.c.putErrors.Add(1)
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*"+fileExt+".tmp")
	if err != nil {
		s.c.putErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		s.c.putErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		s.c.putErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, fileName(hash, level))); err != nil {
		os.Remove(tmpName)
		s.c.putErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	s.c.puts.Add(1)
	s.c.bytesWritten.Add(int64(len(data)))
	return nil
}

// Get reads, verifies and decodes the container for the key.  A missing
// container returns ErrNotFound; a present-but-unverifiable one returns the
// typed decode error (the caller should Delete it and rebuild).  A hit
// freshens the container's mtime, which is the heat signal warm-start ranks
// by.
func (s *Store) Get(hash [sha256.Size]byte, level core.Level) (*Image, error) {
	data, path, err := s.readRaw(hash, level)
	if err != nil {
		return nil, err
	}
	img, err := s.verify(data)
	if err != nil {
		return nil, err
	}
	if img.SourceHash != hash || img.Level() != level {
		s.c.verifyFails.Add(1)
		return nil, fmt.Errorf("%w: container content does not match its file name", ErrHashMismatch)
	}
	s.c.hits.Add(1)
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort heat tracking
	return img, nil
}

// GetRaw reads and verifies the container for the key, returning its exact
// bytes — the uhmart export path.
func (s *Store) GetRaw(hash [sha256.Size]byte, level core.Level) ([]byte, error) {
	data, _, err := s.readRaw(hash, level)
	if err != nil {
		return nil, err
	}
	if _, err := s.verify(data); err != nil {
		return nil, err
	}
	s.c.hits.Add(1)
	return data, nil
}

func (s *Store) readRaw(hash [sha256.Size]byte, level core.Level) (data []byte, path string, err error) {
	path = filepath.Join(s.dir, fileName(hash, level))
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		s.c.misses.Add(1)
		return nil, path, fmt.Errorf("%w: %s at level %s", ErrNotFound, hex.EncodeToString(hash[:8]), level)
	}
	if ferr := faultinject.Fire(faultinject.SiteStoreRead); ferr != nil {
		s.c.readErrors.Add(1)
		return nil, path, ferr
	}
	data, err = os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		// Raced with a Delete between the stat and the read: a clean miss.
		s.c.misses.Add(1)
		return nil, path, fmt.Errorf("%w: %s at level %s", ErrNotFound, hex.EncodeToString(hash[:8]), level)
	}
	if err != nil {
		s.c.readErrors.Add(1)
		return nil, path, fmt.Errorf("store: get: %w", err)
	}
	s.c.bytesRead.Add(int64(len(data)))
	return data, path, nil
}

// verify decodes (and thereby hash-verifies) container bytes, folding in the
// injected-verify-failure site and the verify-fail accounting.
func (s *Store) verify(data []byte) (*Image, error) {
	if ferr := faultinject.Fire(faultinject.SiteStoreVerify); ferr != nil {
		s.c.verifyFails.Add(1)
		return nil, fmt.Errorf("%w: %w", ErrHashMismatch, ferr)
	}
	img, err := Decode(data)
	if err != nil {
		s.c.verifyFails.Add(1)
		return nil, err
	}
	return img, nil
}

// Delete removes the container for the key; deleting an absent key is a
// no-op.  The registry calls it for corrupt entries and for quarantined
// artifacts, whose containers must not survive to poison a warm start.
func (s *Store) Delete(hash [sha256.Size]byte, level core.Level) error {
	err := os.Remove(filepath.Join(s.dir, fileName(hash, level)))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: delete: %w", err)
	}
	return nil
}

// Entry describes one container in the store listing.
type Entry struct {
	Hash    [sha256.Size]byte
	Level   core.Level
	Bytes   int64
	ModTime time.Time
}

// List returns the store's containers, hottest (most recently used) first.
// Foreign files and in-flight temp files are ignored.
func (s *Store) List() ([]Entry, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	var out []Entry
	for _, de := range des {
		hash, level, ok := parseFileName(de.Name())
		if !ok || de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, Entry{Hash: hash, Level: level, Bytes: info.Size(), ModTime: info.ModTime()})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].ModTime.Equal(out[j].ModTime) {
			return out[i].ModTime.After(out[j].ModTime)
		}
		return fileName(out[i].Hash, out[i].Level) < fileName(out[j].Hash, out[j].Level)
	})
	return out, nil
}

// Usage returns the number of containers and their total size on disk.
func (s *Store) Usage() (entries int, bytes int64) {
	list, err := s.List()
	if err != nil {
		return 0, 0
	}
	for _, e := range list {
		entries++
		bytes += e.Bytes
	}
	return entries, bytes
}
