package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"uhm/internal/core"
	"uhm/internal/faultinject"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPutGetRoundTrip(t *testing.T) {
	st := openTestStore(t)
	art := enrichedArtifact(t, core.LevelStack)
	key := sha256.Sum256([]byte(testSrc))

	if _, err := st.Get(key, core.LevelStack); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store = %v, want ErrNotFound", err)
	}
	if err := st.Put(art.Snapshot(), testSrc); err != nil {
		t.Fatal(err)
	}
	img, err := st.Get(key, core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	if img.Source != testSrc || img.Level() != core.LevelStack {
		t.Fatalf("Get returned %q at %v", img.Name(), img.Level())
	}
	// The same source at another level is a distinct container.
	if _, err := st.Get(key, core.LevelMem3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get at other level = %v, want ErrNotFound", err)
	}

	stats := st.Stats()
	if stats.Puts != 1 || stats.Hits != 1 || stats.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 put / 1 hit / 2 misses", stats)
	}
	if entries, bytes := st.Usage(); entries != 1 || bytes <= 0 {
		t.Fatalf("usage = %d entries, %d bytes", entries, bytes)
	}
}

func TestGetCorruptContainer(t *testing.T) {
	st := openTestStore(t)
	art := enrichedArtifact(t, core.LevelStack)
	key := sha256.Sum256([]byte(testSrc))
	if err := st.Put(art.Snapshot(), testSrc); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte on disk: the read must fail verification with a
	// typed error, never hand back an artifact.
	path := filepath.Join(st.Dir(), fileName(key, core.LevelStack))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(key, core.LevelStack); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("Get of corrupt container = %v, want ErrHashMismatch", err)
	}
	if st.Stats().VerifyFails != 1 {
		t.Fatalf("stats = %+v, want 1 verify fail", st.Stats())
	}

	// Delete clears it; a second delete is a no-op.
	if err := st.Delete(key, core.LevelStack); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(key, core.LevelStack); err != nil {
		t.Fatal(err)
	}
	if entries, _ := st.Usage(); entries != 0 {
		t.Fatalf("%d entries after delete", entries)
	}
}

func TestListIgnoresForeignFiles(t *testing.T) {
	st := openTestStore(t)
	art := enrichedArtifact(t, core.LevelMem2)
	if err := st.Put(art.Snapshot(), testSrc); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"README", "x.uhma", ".put-123.uhma.tmp"} {
		if err := os.WriteFile(filepath.Join(st.Dir(), name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	list, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Level != core.LevelMem2 {
		t.Fatalf("list = %+v, want exactly the one real container", list)
	}
}

func TestRawExportImport(t *testing.T) {
	src := openTestStore(t)
	dst := openTestStore(t)
	art := enrichedArtifact(t, core.LevelStack)
	key := sha256.Sum256([]byte(testSrc))
	if err := src.Put(art.Snapshot(), testSrc); err != nil {
		t.Fatal(err)
	}
	raw, err := src.GetRaw(key, core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	img, err := dst.PutRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	if img.SourceHash != key {
		t.Fatal("imported container has a different content address")
	}
	back, err := dst.GetRaw(key, core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, raw) {
		t.Fatal("imported container bytes differ from the export")
	}
	// A corrupted bundle entry is refused at import, not written.
	raw[len(raw)-1] ^= 0x01
	if _, err := dst.PutRaw(raw); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("PutRaw of corrupt bytes = %v, want ErrHashMismatch", err)
	}
}

// TestFaultSites drives each disk-tier injection site and checks that it
// surfaces as a failed store operation with the right counter — the registry
// layers the degrade-to-rebuild behaviour on top of these errors.
func TestFaultSites(t *testing.T) {
	art := enrichedArtifact(t, core.LevelStack)
	key := sha256.Sum256([]byte(testSrc))

	t.Run("write", func(t *testing.T) {
		st := openTestStore(t)
		restore := faultinject.Activate(faultinject.NewPlan(1,
			faultinject.Rule{Site: faultinject.SiteStoreWrite, Probability: 1, Count: 1}))
		defer restore()
		if err := st.Put(art.Snapshot(), testSrc); !faultinject.Injected(err) {
			t.Fatalf("Put under write fault = %v, want injected", err)
		}
		if entries, _ := st.Usage(); entries != 0 {
			t.Fatal("failed Put left a file behind")
		}
		if st.Stats().PutErrors != 1 {
			t.Fatalf("stats = %+v, want 1 put error", st.Stats())
		}
		// The rule's Count is spent: the retry goes through.
		if err := st.Put(art.Snapshot(), testSrc); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("read", func(t *testing.T) {
		st := openTestStore(t)
		if err := st.Put(art.Snapshot(), testSrc); err != nil {
			t.Fatal(err)
		}
		restore := faultinject.Activate(faultinject.NewPlan(1,
			faultinject.Rule{Site: faultinject.SiteStoreRead, Probability: 1, Count: 1}))
		defer restore()
		if _, err := st.Get(key, core.LevelStack); !faultinject.Injected(err) {
			t.Fatalf("Get under read fault = %v, want injected", err)
		}
		if st.Stats().ReadErrors != 1 {
			t.Fatalf("stats = %+v, want 1 read error", st.Stats())
		}
		if _, err := st.Get(key, core.LevelStack); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("verify", func(t *testing.T) {
		st := openTestStore(t)
		if err := st.Put(art.Snapshot(), testSrc); err != nil {
			t.Fatal(err)
		}
		restore := faultinject.Activate(faultinject.NewPlan(1,
			faultinject.Rule{Site: faultinject.SiteStoreVerify, Probability: 1, Count: 1}))
		defer restore()
		_, err := st.Get(key, core.LevelStack)
		if !errors.Is(err, ErrHashMismatch) || !faultinject.Injected(err) {
			t.Fatalf("Get under verify fault = %v, want injected ErrHashMismatch", err)
		}
		if st.Stats().VerifyFails != 1 {
			t.Fatalf("stats = %+v, want 1 verify fail", st.Stats())
		}
		if _, err := st.Get(key, core.LevelStack); err != nil {
			t.Fatal(err)
		}
	})
}

func TestParseFileName(t *testing.T) {
	key := sha256.Sum256([]byte("x"))
	name := fileName(key, core.LevelMem3)
	hash, level, ok := parseFileName(name)
	if !ok || hash != key || level != core.LevelMem3 {
		t.Fatalf("parseFileName(%q) = %x/%v/%v", name, hash[:4], level, ok)
	}
	for _, bad := range []string{"", "x.uhma", "deadbeef-stack.uhma", name + ".tmp",
		"g" + name[1:], name[:len(name)-len(".uhma")] + ".bin"} {
		if _, _, ok := parseFileName(bad); ok {
			t.Errorf("parseFileName(%q) accepted a foreign name", bad)
		}
	}
}
