package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"slices"
	"testing"

	"uhm/internal/core"
)

// testSrc is a small MiniLang program with a loop and arithmetic — quick to
// build, quick to run, non-trivial to encode.
const testSrc = `
program persist;
var i, sum;
begin
  i := 1;
  sum := 0;
  while i <= 10 do
  begin
    sum := sum + i * i;
    i := i + 1
  end;
  print sum
end.`

// enrichedArtifact builds testSrc and materialises every persistable form:
// all encoding degrees, the canonical trace, and the compiled form.
func enrichedArtifact(t testing.TB, level core.Level) *core.Artifact {
	t.Helper()
	art, err := core.BuildSource("persist", testSrc, level)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range core.Degrees() {
		if _, err := art.Predecoded(d); err != nil {
			t.Fatalf("predecode %v: %v", d, err)
		}
	}
	pp, err := art.Predecoded(core.DefaultConfig().Degree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Compiled(); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := pp.Trace(); err != nil {
		t.Fatalf("trace: %v", err)
	}
	return art
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	art := enrichedArtifact(t, core.LevelStack)
	snap := art.Snapshot()
	if len(snap.Binaries) != len(core.Degrees()) {
		t.Fatalf("snapshot has %d binaries, want %d", len(snap.Binaries), len(core.Degrees()))
	}
	if snap.Trace == nil || snap.CompiledWords == 0 {
		t.Fatalf("snapshot missing trace (%v) or compiled metadata (%d)", snap.Trace, snap.CompiledWords)
	}

	data, err := Encode(snap, testSrc)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if img.Name() != "persist" || img.Level() != core.LevelStack || img.Source != testSrc {
		t.Fatalf("decoded identity = %q/%v, source %d bytes", img.Name(), img.Level(), len(img.Source))
	}
	if img.SourceHash != sha256.Sum256([]byte(testSrc)) {
		t.Fatal("decoded source hash differs")
	}
	if img.Snap.CompiledWords != snap.CompiledWords {
		t.Fatalf("compiled words %d, want %d", img.Snap.CompiledWords, snap.CompiledWords)
	}
	if len(img.Snap.Binaries) != len(snap.Binaries) {
		t.Fatalf("%d binaries, want %d", len(img.Snap.Binaries), len(snap.Binaries))
	}
	for i, got := range img.Snap.Binaries {
		want := snap.Binaries[i]
		if got.Degree != want.Degree || got.SizeBits() != want.SizeBits() || !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("binary %d (degree %v) does not round-trip bit-identically", i, want.Degree)
		}
	}
	gt, wt := img.Snap.Trace, snap.Trace
	if gt == nil {
		t.Fatal("trace did not round-trip")
	}
	if !slices.Equal(gt.PCs, wt.PCs) || !slices.Equal(gt.Output, wt.Output) ||
		gt.PeakDepth != wt.PeakDepth || gt.SemanticCycles != wt.SemanticCycles ||
		gt.HasCompiled != wt.HasCompiled || gt.Compiled != wt.Compiled {
		t.Fatal("trace fields do not round-trip")
	}

	if _, err := img.Artifact(); err != nil {
		t.Fatalf("rehydrate: %v", err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	art := enrichedArtifact(t, core.LevelMem2)
	snap := art.Snapshot()
	a, err := Encode(snap, testSrc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(snap, testSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not deterministic")
	}
}

// repack wraps a payload in a fresh, correctly hashed header, so tests can
// hand-craft malformed payloads that still pass the hash gate and reach the
// section parser.
func repack(payload []byte) []byte {
	out := make([]byte, 0, headerBytes+len(payload))
	out = append(out, containerMagic...)
	out = binary.LittleEndian.AppendUint32(out, FormatVersion)
	out = binary.LittleEndian.AppendUint32(out, 0)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// craftPayload assembles a payload from explicit sections, with the recorded
// source hash defaulting to the true hash of src.
func craftPayload(src, name, level string, sections []struct {
	typ  uint64
	data []byte
}) []byte {
	var w cwriter
	h := sha256.Sum256([]byte(src))
	w.raw(h[:])
	w.str(name)
	w.str(level)
	w.u(uint64(len(sections)))
	for _, s := range sections {
		w.u(s.typ)
		w.u(uint64(len(s.data)))
		w.raw(s.data)
	}
	return w.buf
}

func TestDecodeTypedErrors(t *testing.T) {
	art := enrichedArtifact(t, core.LevelStack)
	valid, err := Encode(art.Snapshot(), testSrc)
	if err != nil {
		t.Fatal(err)
	}
	dirSec := marshalProgram(art.DIR)
	type sec = struct {
		typ  uint64
		data []byte
	}
	goodSecs := []sec{{secSource, []byte(testSrc)}, {secDIR, dirSec}}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"shorter than magic", valid[:2], ErrTruncated},
		{"wrong magic", append([]byte("NOPE"), valid[4:]...), ErrBadMagic},
		{"truncated header", valid[:headerBytes-4], ErrTruncated},
		{"future version", func() []byte {
			d := slices.Clone(valid)
			binary.LittleEndian.PutUint32(d[4:8], FormatVersion+1)
			return d
		}(), ErrVersion},
		{"reserved flags set", func() []byte {
			d := slices.Clone(valid)
			binary.LittleEndian.PutUint32(d[8:12], 0x8000)
			return d
		}(), ErrCorrupt},
		{"payload longer than file", func() []byte {
			d := slices.Clone(valid)
			binary.LittleEndian.PutUint64(d[12:20], uint64(len(valid)))
			return d
		}(), ErrTruncated},
		{"truncated payload", valid[:len(valid)-7], ErrTruncated},
		{"flipped hash byte", func() []byte {
			d := slices.Clone(valid)
			d[20] ^= 0xff
			return d
		}(), ErrHashMismatch},
		{"flipped payload byte", func() []byte {
			d := slices.Clone(valid)
			d[len(d)-1] ^= 0x01
			return d
		}(), ErrHashMismatch},
		{"trailing bytes", append(slices.Clone(valid), 0xaa), ErrCorrupt},
		{"zero-length section", repack(craftPayload(testSrc, "p", "stack",
			append(slices.Clone(goodSecs), sec{secTrace, nil}))), ErrCorrupt},
		{"unknown section type", repack(craftPayload(testSrc, "p", "stack",
			append(slices.Clone(goodSecs), sec{99, []byte{1}}))), ErrCorrupt},
		{"duplicate DIR section", repack(craftPayload(testSrc, "p", "stack",
			append(slices.Clone(goodSecs), sec{secDIR, dirSec}))), ErrCorrupt},
		{"missing DIR section", repack(craftPayload(testSrc, "p", "stack",
			goodSecs[:1])), ErrCorrupt},
		{"missing source section", repack(craftPayload(testSrc, "p", "stack",
			goodSecs[1:])), ErrCorrupt},
		{"bad level name", repack(craftPayload(testSrc, "p", "stack9", goodSecs)), ErrCorrupt},
		{"source does not match recorded hash", repack(craftPayload("program x; begin print 1 end.",
			"p", "stack", goodSecs)), ErrHashMismatch},
		{"corrupt DIR section", repack(craftPayload(testSrc, "p", "stack",
			[]sec{goodSecs[0], {secDIR, []byte{0xff, 0xff, 0xff}}})), ErrTruncated},
		{"section count exceeds payload", repack(func() []byte {
			var w cwriter
			h := sha256.Sum256([]byte(testSrc))
			w.raw(h[:])
			w.str("p")
			w.str("stack")
			w.u(1 << 30)
			return w.buf
		}()), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img, err := Decode(tc.data)
			if img != nil {
				t.Fatal("Decode returned a partial image alongside an expected error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode error = %v, want %v", err, tc.want)
			}
		})
	}
}

// FuzzDecode hammers the section parser: the harness re-stamps the payload
// length and hash so mutated bytes get past the integrity gate and into the
// structural decoding, which must return a typed error or a whole image —
// never panic, never over-allocate.
func FuzzDecode(f *testing.F) {
	art, err := core.BuildSource("persist", testSrc, core.LevelStack)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := art.Predecoded(core.DefaultConfig().Degree); err != nil {
		f.Fatal(err)
	}
	valid, err := Encode(art.Snapshot(), testSrc)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:headerBytes])
	f.Add([]byte("UHMA junk"))
	f.Add(repack(craftPayload(testSrc, "p", "stack", nil)))

	f.Fuzz(func(t *testing.T, data []byte) {
		if img, err := Decode(data); (img == nil) == (err == nil) {
			t.Fatalf("Decode returned img=%v err=%v", img, err)
		}
		if len(data) < headerBytes {
			return
		}
		stamped := slices.Clone(data)
		copy(stamped[:4], containerMagic)
		binary.LittleEndian.PutUint32(stamped[4:8], FormatVersion)
		binary.LittleEndian.PutUint32(stamped[8:12], 0)
		payload := stamped[headerBytes:]
		binary.LittleEndian.PutUint64(stamped[12:20], uint64(len(payload)))
		sum := sha256.Sum256(payload)
		copy(stamped[20:20+sha256.Size], sum[:])
		img, err := Decode(stamped)
		if (img == nil) == (err == nil) {
			t.Fatalf("Decode(stamped) returned img=%v err=%v", img, err)
		}
		if img != nil {
			// A structurally valid container must rehydrate or fail cleanly.
			img.Artifact()
		}
	})
}

func TestSplitBundle(t *testing.T) {
	a := enrichedArtifact(t, core.LevelStack)
	b := enrichedArtifact(t, core.LevelMem3)
	ca, err := Encode(a.Snapshot(), testSrc)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Encode(b.Snapshot(), testSrc)
	if err != nil {
		t.Fatal(err)
	}
	bundle := append(slices.Clone(ca), cb...)
	parts, err := SplitBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || !bytes.Equal(parts[0], ca) || !bytes.Equal(parts[1], cb) {
		t.Fatalf("SplitBundle returned %d parts, want the 2 originals", len(parts))
	}
	for _, p := range parts {
		if _, err := Decode(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := SplitBundle(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty bundle error = %v, want ErrTruncated", err)
	}
	if _, err := SplitBundle(bundle[:len(bundle)-3]); err == nil {
		t.Fatal("truncated bundle split succeeded")
	}
}
