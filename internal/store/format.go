package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"uhm/internal/core"
	"uhm/internal/dir"
	"uhm/internal/trace"
)

// The container layout, version 1.  All fixed-width integers are
// little-endian; everything inside the payload is varint-coded.
//
//	offset  size  field
//	     0     4  magic "UHMA"
//	     4     4  format version (uint32)
//	     8     4  flags (uint32, reserved, zero)
//	    12     8  payload length in bytes (uint64)
//	    20    32  SHA-256 of the payload
//	    52     …  payload
//
//	payload:
//	    sourceHash [32]      SHA-256 of the source text (the content address)
//	    name       string    artifact name (uvarint length + bytes)
//	    level      string    semantic level, core.ParseLevel syntax
//	    nsections  uvarint
//	    sections   {type uvarint, length uvarint, bytes}…
//
// Sections are written in canonical order — source, DIR, binaries by
// ascending degree, trace, compiled metadata — but decoded positionally, so
// order is not load-bearing.  The source and DIR sections are mandatory.
const (
	containerMagic  = "UHMA"
	FormatVersion   = 1
	headerBytes     = 4 + 4 + 4 + 8 + sha256.Size
	secSource       = 1
	secDIR          = 2
	secBinary       = 3
	secTrace        = 4
	secCompiledMeta = 5
)

// The typed decode failures.  Every malformed container resolves to exactly
// one of these (possibly wrapped with positional detail); the decoder never
// panics and never returns a partial artifact.
var (
	// ErrBadMagic: the bytes are not a UHM artifact container at all.
	ErrBadMagic = errors.New("store: bad magic (not a UHM artifact container)")
	// ErrVersion: the container was written by a future (or unknown) format
	// version this build cannot decode.
	ErrVersion = errors.New("store: unsupported container version")
	// ErrTruncated: the container ends before its declared structure does.
	ErrTruncated = errors.New("store: truncated container")
	// ErrHashMismatch: the payload (or the source text) does not match its
	// recorded SHA-256 — bit rot, torn write, or tampering.
	ErrHashMismatch = errors.New("store: content hash mismatch")
	// ErrCorrupt: the payload hashes correctly but is structurally malformed
	// (a writer bug or a hand-crafted file).
	ErrCorrupt = errors.New("store: malformed container")
)

// Image is a decoded container: the artifact snapshot ready to rehydrate,
// plus the source text it was built from and that text's content address.
type Image struct {
	Source     string
	SourceHash [sha256.Size]byte
	Snap       *core.Snapshot
}

// Name returns the artifact's name.
func (img *Image) Name() string { return img.Snap.Name }

// Level returns the artifact's semantic level.
func (img *Image) Level() core.Level { return img.Snap.Level }

// Artifact rehydrates the image into a runnable core.Artifact.
func (img *Image) Artifact() (*core.Artifact, error) {
	return core.Rehydrate(img.Snap, img.Source)
}

// cwriter accumulates the varint-coded payload.
type cwriter struct{ buf []byte }

func (w *cwriter) u(v uint64)   { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *cwriter) i(v int64)    { w.buf = binary.AppendVarint(w.buf, v) }
func (w *cwriter) raw(b []byte) { w.buf = append(w.buf, b...) }
func (w *cwriter) str(s string) { w.u(uint64(len(s))); w.buf = append(w.buf, s...) }

// creader walks a payload with bounds-checked reads; every failure is a
// typed error carrying the offset.
type creader struct {
	buf []byte
	off int
}

func (r *creader) remaining() int { return len(r.buf) - r.off }

func (r *creader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrTruncated, n, r.off, r.remaining())
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *creader) u() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrTruncated, r.off)
	}
	r.off += n
	return v, nil
}

func (r *creader) i() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrTruncated, r.off)
	}
	r.off += n
	return v, nil
}

// num reads a uvarint that must fit a non-negative int.
func (r *creader) num() (int, error) {
	v, err := r.u()
	if err != nil {
		return 0, err
	}
	if v > 1<<31 {
		return 0, fmt.Errorf("%w: value %d too large at offset %d", ErrCorrupt, v, r.off)
	}
	return int(v), nil
}

// count reads an element count and rejects one that could not possibly fit
// in the remaining bytes (each element needs at least elemMin bytes), so a
// corrupt count can never drive an outsized allocation.
func (r *creader) count(elemMin int) (int, error) {
	n, err := r.num()
	if err != nil {
		return 0, err
	}
	if n*elemMin > r.remaining() {
		return 0, fmt.Errorf("%w: count %d exceeds %d remaining bytes at offset %d", ErrCorrupt, n, r.remaining(), r.off)
	}
	return n, nil
}

func (r *creader) str() (string, error) {
	n, err := r.count(1)
	if err != nil {
		return "", err
	}
	b, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Encode serializes an artifact snapshot and its source text into a
// container.  Encoding is deterministic: the same snapshot and source always
// produce the same bytes, so containers can be compared and deduplicated by
// content.
func Encode(snap *core.Snapshot, src string) ([]byte, error) {
	if snap == nil || snap.DIR == nil {
		return nil, fmt.Errorf("store: encode: snapshot has no DIR program")
	}
	if src == "" {
		return nil, fmt.Errorf("store: encode: empty source text")
	}
	type section struct {
		typ  uint64
		data []byte
	}
	sections := []section{
		{secSource, []byte(src)},
		{secDIR, marshalProgram(snap.DIR)},
	}
	for _, bin := range snap.Binaries {
		data, err := marshalBinary(bin)
		if err != nil {
			return nil, err
		}
		sections = append(sections, section{secBinary, data})
	}
	if snap.Trace != nil {
		sections = append(sections, section{secTrace, marshalTrace(snap.Trace)})
	}
	if snap.CompiledWords > 0 {
		var w cwriter
		w.u(uint64(snap.CompiledWords))
		sections = append(sections, section{secCompiledMeta, w.buf})
	}

	var payload cwriter
	srcHash := sha256.Sum256([]byte(src))
	payload.raw(srcHash[:])
	payload.str(snap.Name)
	payload.str(snap.Level.String())
	payload.u(uint64(len(sections)))
	for _, s := range sections {
		payload.u(s.typ)
		payload.u(uint64(len(s.data)))
		payload.raw(s.data)
	}

	out := make([]byte, 0, headerBytes+len(payload.buf))
	out = append(out, containerMagic...)
	out = binary.LittleEndian.AppendUint32(out, FormatVersion)
	out = binary.LittleEndian.AppendUint32(out, 0) // flags, reserved
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload.buf)))
	payloadHash := sha256.Sum256(payload.buf)
	out = append(out, payloadHash[:]...)
	out = append(out, payload.buf...)
	return out, nil
}

// Decode parses and verifies one container occupying the whole input.
func Decode(data []byte) (*Image, error) {
	img, n, err := decodeOne(data)
	if err != nil {
		return nil, err
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after the container", ErrCorrupt, len(data)-n)
	}
	return img, nil
}

// decodeOne parses and verifies the container at the front of data,
// returning how many bytes it occupied (the substrate for bundles, which are
// plain concatenations of containers).
func decodeOne(data []byte) (*Image, int, error) {
	payload, consumed, err := checkHeader(data)
	if err != nil {
		return nil, 0, err
	}
	img, err := decodePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return img, consumed, nil
}

// checkHeader validates the fixed header and the payload hash, returning the
// verified payload slice and the container's total size.
func checkHeader(data []byte) (payload []byte, size int, err error) {
	if len(data) < len(containerMagic) {
		return nil, 0, fmt.Errorf("%w: %d bytes is shorter than the magic", ErrTruncated, len(data))
	}
	if string(data[:len(containerMagic)]) != containerMagic {
		return nil, 0, ErrBadMagic
	}
	if len(data) < headerBytes {
		return nil, 0, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrTruncated, len(data), headerBytes)
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version != FormatVersion {
		return nil, 0, fmt.Errorf("%w: container version %d, this build reads version %d", ErrVersion, version, FormatVersion)
	}
	if flags := binary.LittleEndian.Uint32(data[8:12]); flags != 0 {
		return nil, 0, fmt.Errorf("%w: reserved flags %#x set", ErrCorrupt, flags)
	}
	payloadLen := binary.LittleEndian.Uint64(data[12:20])
	if payloadLen > uint64(len(data)-headerBytes) {
		return nil, 0, fmt.Errorf("%w: payload declares %d bytes, %d present", ErrTruncated, payloadLen, len(data)-headerBytes)
	}
	payload = data[headerBytes : headerBytes+int(payloadLen)]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[20:20+sha256.Size]) {
		return nil, 0, fmt.Errorf("%w: payload SHA-256 does not match the header", ErrHashMismatch)
	}
	return payload, headerBytes + int(payloadLen), nil
}

// decodePayload parses a hash-verified payload into an Image.
func decodePayload(payload []byte) (*Image, error) {
	r := &creader{buf: payload}
	hash, err := r.take(sha256.Size)
	if err != nil {
		return nil, err
	}
	img := &Image{Snap: &core.Snapshot{}}
	copy(img.SourceHash[:], hash)
	if img.Snap.Name, err = r.str(); err != nil {
		return nil, err
	}
	levelName, err := r.str()
	if err != nil {
		return nil, err
	}
	if img.Snap.Level, err = core.ParseLevel(levelName); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	nsec, err := r.count(2)
	if err != nil {
		return nil, err
	}

	type section struct {
		typ  uint64
		data []byte
	}
	sections := make([]section, 0, nsec)
	for i := 0; i < nsec; i++ {
		typ, err := r.u()
		if err != nil {
			return nil, err
		}
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, fmt.Errorf("%w: zero-length section of type %d", ErrCorrupt, typ)
		}
		data, err := r.take(n)
		if err != nil {
			return nil, err
		}
		sections = append(sections, section{typ, data})
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d bytes of payload after the last section", ErrCorrupt, r.remaining())
	}

	// Mandatory sections first: source (which must match the recorded content
	// address) and the DIR program the remaining sections hang off.
	var seen [secCompiledMeta + 1]int
	for _, s := range sections {
		if s.typ == 0 || s.typ > secCompiledMeta {
			return nil, fmt.Errorf("%w: unknown section type %d", ErrCorrupt, s.typ)
		}
		seen[s.typ]++
		switch s.typ {
		case secSource:
			img.Source = string(s.data)
		case secDIR:
			img.Snap.DIR, err = unmarshalProgram(s.data)
			if err != nil {
				return nil, err
			}
		}
	}
	for typ, n := range seen {
		if typ == secSource || typ == secDIR {
			if n == 0 {
				return nil, fmt.Errorf("%w: missing mandatory section type %d", ErrCorrupt, typ)
			}
		}
		if n > 1 && typ != secBinary {
			return nil, fmt.Errorf("%w: %d sections of type %d, want at most one", ErrCorrupt, n, typ)
		}
	}
	if sum := sha256.Sum256([]byte(img.Source)); sum != img.SourceHash {
		return nil, fmt.Errorf("%w: source text does not match its recorded content address", ErrHashMismatch)
	}
	if err := img.Snap.DIR.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	// Dependent sections: encoded binaries rehydrate against the DIR program,
	// the trace is range-checked against it at Rehydrate time.
	for _, s := range sections {
		switch s.typ {
		case secBinary:
			bin, err := unmarshalBinaryInto(img.Snap.DIR, s.data)
			if err != nil {
				return nil, err
			}
			for _, prev := range img.Snap.Binaries {
				if prev.Degree == bin.Degree {
					return nil, fmt.Errorf("%w: duplicate binary section for degree %v", ErrCorrupt, bin.Degree)
				}
			}
			img.Snap.Binaries = append(img.Snap.Binaries, bin)
		case secTrace:
			img.Snap.Trace, err = unmarshalTrace(s.data, len(img.Snap.DIR.Instrs))
			if err != nil {
				return nil, err
			}
		case secCompiledMeta:
			mr := &creader{buf: s.data}
			if img.Snap.CompiledWords, err = mr.num(); err != nil {
				return nil, err
			}
		}
	}
	return img, nil
}

// marshalProgram flattens a DIR program.  Everything is non-negative by
// construction (dir.Program.Validate enforces it) except immediates, which
// are varint-coded.
func marshalProgram(p *dir.Program) []byte {
	var w cwriter
	w.str(p.Name)
	w.str(p.Level)
	w.u(uint64(len(p.Procs)))
	for _, proc := range p.Procs {
		w.str(proc.Name)
		w.u(uint64(proc.Entry))
		w.u(uint64(proc.NumParams))
		w.u(uint64(proc.FrameSlots))
		w.u(uint64(proc.Depth))
	}
	w.u(uint64(len(p.Contours)))
	for _, c := range p.Contours {
		w.u(uint64(c.Parent))
		w.u(uint64(len(c.Locals)))
		for _, v := range c.Locals {
			w.u(uint64(v.Addr.Depth))
			w.u(uint64(v.Addr.Offset))
			w.u(uint64(v.Size))
		}
	}
	w.u(uint64(len(p.Instrs)))
	for _, in := range p.Instrs {
		w.u(uint64(in.Op))
		w.u(uint64(in.Contour))
		for _, op := range in.Operands {
			w.u(uint64(op.Mode))
			switch op.Mode {
			case dir.ModeImm:
				w.i(op.Imm)
			case dir.ModeVar:
				w.u(uint64(op.Addr.Depth))
				w.u(uint64(op.Addr.Offset))
			}
		}
		if in.Op.HasTarget() {
			w.u(uint64(in.Target))
		}
		if in.Op.IsCall() {
			w.u(uint64(in.Proc))
			w.u(uint64(in.NArgs))
		}
	}
	return w.buf
}

func unmarshalProgram(data []byte) (*dir.Program, error) {
	r := &creader{buf: data}
	p := &dir.Program{}
	var err error
	if p.Name, err = r.str(); err != nil {
		return nil, err
	}
	if p.Level, err = r.str(); err != nil {
		return nil, err
	}
	nprocs, err := r.count(1)
	if err != nil {
		return nil, err
	}
	p.Procs = make([]dir.Proc, nprocs)
	for i := range p.Procs {
		proc := &p.Procs[i]
		if proc.Name, err = r.str(); err != nil {
			return nil, err
		}
		if proc.Entry, err = r.num(); err != nil {
			return nil, err
		}
		if proc.NumParams, err = r.num(); err != nil {
			return nil, err
		}
		if proc.FrameSlots, err = r.num(); err != nil {
			return nil, err
		}
		if proc.Depth, err = r.num(); err != nil {
			return nil, err
		}
	}
	ncontours, err := r.count(1)
	if err != nil {
		return nil, err
	}
	p.Contours = make([]dir.Contour, ncontours)
	for i := range p.Contours {
		c := &p.Contours[i]
		if c.Parent, err = r.num(); err != nil {
			return nil, err
		}
		nlocals, err := r.count(1)
		if err != nil {
			return nil, err
		}
		c.Locals = make([]dir.ContourVar, nlocals)
		for j := range c.Locals {
			v := &c.Locals[j]
			if v.Addr.Depth, err = r.num(); err != nil {
				return nil, err
			}
			if v.Addr.Offset, err = r.num(); err != nil {
				return nil, err
			}
			size, err := r.u()
			if err != nil {
				return nil, err
			}
			if size == 0 || size > 1<<31 {
				return nil, fmt.Errorf("%w: contour variable size %d out of range", ErrCorrupt, size)
			}
			v.Size = int64(size)
		}
	}
	ninstrs, err := r.count(1)
	if err != nil {
		return nil, err
	}
	p.Instrs = make([]dir.Instruction, ninstrs)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		opv, err := r.u()
		if err != nil {
			return nil, err
		}
		in.Op = dir.Opcode(opv)
		if opv >= uint64(dir.NumOpcodes) {
			return nil, fmt.Errorf("%w: instruction %d has invalid opcode %d", ErrCorrupt, i, opv)
		}
		if in.Contour, err = r.num(); err != nil {
			return nil, err
		}
		nops := in.Op.NumOperands()
		if nops > 0 {
			in.Operands = make([]dir.Operand, nops)
		}
		for j := range in.Operands {
			op := &in.Operands[j]
			mv, err := r.u()
			if err != nil {
				return nil, err
			}
			op.Mode = dir.AddrMode(mv)
			if mv >= uint64(dir.NumAddrModes) {
				return nil, fmt.Errorf("%w: instruction %d operand %d has invalid mode %d", ErrCorrupt, i, j, mv)
			}
			switch op.Mode {
			case dir.ModeImm:
				if op.Imm, err = r.i(); err != nil {
					return nil, err
				}
			case dir.ModeVar:
				if op.Addr.Depth, err = r.num(); err != nil {
					return nil, err
				}
				if op.Addr.Offset, err = r.num(); err != nil {
					return nil, err
				}
			}
		}
		if in.Op.HasTarget() {
			if in.Target, err = r.num(); err != nil {
				return nil, err
			}
		}
		if in.Op.IsCall() {
			if in.Proc, err = r.num(); err != nil {
				return nil, err
			}
			if in.NArgs, err = r.num(); err != nil {
				return nil, err
			}
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d bytes after the DIR program", ErrCorrupt, r.remaining())
	}
	return p, nil
}

// marshalBinary persists one encoded degree: the degree tag, the bit length,
// the per-instruction bit offsets (delta-coded) and the raw bit string.  The
// decode tables are NOT stored — they are a deterministic function of the
// program and are rebuilt on rehydration (dir.RehydrateBinary), so the
// format cannot drift from the decoder.
func marshalBinary(bin *dir.Binary) ([]byte, error) {
	var w cwriter
	w.u(uint64(bin.Degree))
	w.u(uint64(bin.SizeBits()))
	n := bin.NumInstrs()
	w.u(uint64(n))
	prev := 0
	for i := 0; i < n; i++ {
		off, _, err := bin.InstrBitRange(i)
		if err != nil {
			return nil, fmt.Errorf("store: encode binary: %w", err)
		}
		w.u(uint64(off - prev))
		prev = off
	}
	data := bin.Bytes()
	w.u(uint64(len(data)))
	w.raw(data)
	return w.buf, nil
}

func unmarshalBinaryInto(p *dir.Program, data []byte) (*dir.Binary, error) {
	r := &creader{buf: data}
	dv, err := r.u()
	if err != nil {
		return nil, err
	}
	degree := dir.Degree(dv)
	if !degree.Valid() {
		return nil, fmt.Errorf("%w: invalid encoding degree %d", ErrCorrupt, dv)
	}
	bitLen, err := r.num()
	if err != nil {
		return nil, err
	}
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	offsets := make([]int, n)
	prev := 0
	for i := range offsets {
		d, err := r.num()
		if err != nil {
			return nil, err
		}
		prev += d
		offsets[i] = prev
	}
	dataLen, err := r.count(1)
	if err != nil {
		return nil, err
	}
	bits, err := r.take(dataLen)
	if err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d bytes after the binary section", ErrCorrupt, r.remaining())
	}
	bin, err := dir.RehydrateBinary(p, degree, bits, bitLen, offsets)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return bin, nil
}

// marshalTrace persists the canonical execution trace: the dynamic pc stream
// (zigzag delta-coded — branches jump backwards), the observable output, the
// activation-stack high-water mark, the priced semantic cost, and the
// compiled backend's statistics when the recording ran there.
func marshalTrace(t *trace.Trace) []byte {
	var w cwriter
	w.u(uint64(t.PeakDepth))
	w.u(uint64(t.SemanticCycles))
	if t.HasCompiled {
		w.u(1)
		w.u(uint64(t.Compiled.Instructions))
		w.u(uint64(t.Compiled.SemanticCost))
		w.u(uint64(t.Compiled.Fetches))
	} else {
		w.u(0)
	}
	w.u(uint64(len(t.PCs)))
	prev := int64(0)
	for _, pc := range t.PCs {
		w.i(int64(pc) - prev)
		prev = int64(pc)
	}
	w.u(uint64(len(t.Output)))
	for _, v := range t.Output {
		w.i(v)
	}
	return w.buf
}

func unmarshalTrace(data []byte, ninstrs int) (*trace.Trace, error) {
	r := &creader{buf: data}
	t := &trace.Trace{}
	var err error
	if t.PeakDepth, err = r.num(); err != nil {
		return nil, err
	}
	cycles, err := r.u()
	if err != nil {
		return nil, err
	}
	t.SemanticCycles = int64(cycles)
	hc, err := r.u()
	if err != nil {
		return nil, err
	}
	switch hc {
	case 0:
	case 1:
		t.HasCompiled = true
		vals := [3]int64{}
		for i := range vals {
			v, err := r.u()
			if err != nil {
				return nil, err
			}
			vals[i] = int64(v)
		}
		t.Compiled.Instructions, t.Compiled.SemanticCost, t.Compiled.Fetches = vals[0], vals[1], vals[2]
	default:
		return nil, fmt.Errorf("%w: trace compiled marker %d", ErrCorrupt, hc)
	}
	npcs, err := r.count(1)
	if err != nil {
		return nil, err
	}
	t.PCs = make([]int32, npcs)
	prev := int64(0)
	for i := range t.PCs {
		d, err := r.i()
		if err != nil {
			return nil, err
		}
		prev += d
		if prev < 0 || prev >= int64(ninstrs) {
			return nil, fmt.Errorf("%w: trace pc %d out of range at step %d", ErrCorrupt, prev, i)
		}
		t.PCs[i] = int32(prev)
	}
	nout, err := r.count(1)
	if err != nil {
		return nil, err
	}
	t.Output = make([]int64, nout)
	for i := range t.Output {
		if t.Output[i], err = r.i(); err != nil {
			return nil, err
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d bytes after the trace section", ErrCorrupt, r.remaining())
	}
	return t, nil
}

// SplitBundle splits a bundle — a plain concatenation of containers, the
// uhmart export format — into per-container byte slices.  Each slice still
// needs Decode for verification; SplitBundle only walks the headers.
func SplitBundle(data []byte) ([][]byte, error) {
	var out [][]byte
	for len(data) > 0 {
		_, size, err := checkHeader(data)
		if err != nil {
			return nil, fmt.Errorf("bundle container %d: %w", len(out), err)
		}
		out = append(out, data[:size])
		data = data[size:]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty bundle", ErrTruncated)
	}
	return out, nil
}
