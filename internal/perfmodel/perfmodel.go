package perfmodel

import (
	"fmt"
	"strings"
	"sync"
)

// Params are the §7 model parameters.  All times are in level-1 access-time
// units (t1 = 1).
type Params struct {
	// T1Access is the level-1 access time (the unit; nominally 1).
	T1Access float64
	// T2Access is the level-2 access time (the paper's t2, nominally 10).
	T2Access float64
	// TDAccess is the DTB or cache access time (the paper's tD, nominally 2).
	TDAccess float64
	// D is the average decode time per DIR instruction.
	D float64
	// G is the average time to generate and store the PSDER version of a DIR
	// instruction, after decoding.
	G float64
	// X is the average time to perform the semantics of a DIR instruction.
	X float64
	// S1 is the average number of level-1 (buffer) references to access the
	// PSDER version of one DIR instruction.
	S1 float64
	// S2 is the average number of level-2 references to access one DIR
	// instruction.
	S2 float64
	// HC is the hit ratio of an instruction cache of the stated capacity.
	HC float64
	// HD is the hit ratio of a DTB of the stated capacity.
	HD float64
}

// PaperParams returns the nominal parameterisation of §7: t1 = 1, tD = 2,
// t2 = 10, s2 = 1, s1 = 3, hc = 0.9, hD = 0.8, with g tied to d by the
// published worked expressions (g = d) and d, x left to the caller.
func PaperParams(d, x float64) Params {
	return Params{
		T1Access: 1,
		T2Access: 10,
		TDAccess: 2,
		D:        d,
		G:        d,
		X:        x,
		S1:       3,
		S2:       1,
		HC:       0.9,
		HD:       0.8,
	}
}

// Validate checks the parameters for the obvious inconsistencies.
func (p Params) Validate() error {
	if p.T1Access <= 0 || p.T2Access <= 0 || p.TDAccess <= 0 {
		return fmt.Errorf("perfmodel: access times must be positive: %+v", p)
	}
	if p.D < 0 || p.G < 0 || p.X < 0 || p.S1 < 0 || p.S2 < 0 {
		return fmt.Errorf("perfmodel: negative cost parameter: %+v", p)
	}
	if p.HC < 0 || p.HC > 1 || p.HD < 0 || p.HD > 1 {
		return fmt.Errorf("perfmodel: hit ratios must lie in [0,1]: hc=%v hd=%v", p.HC, p.HD)
	}
	return nil
}

// Result holds the evaluated model.
type Result struct {
	T1 float64 // conventional UHM
	T2 float64 // UHM with a DTB
	T3 float64 // UHM with an instruction cache
	T4 float64 // closure-compiled organisation (reproduction extension)
	F1 float64 // (T3-T2)/T2 x 100
	F2 float64 // (T1-T2)/T2 x 100
	F3 float64 // (T2-T4)/T4 x 100
}

// Evaluate applies the symbolic §7 equations to the parameters.
//
//	T1 = s2·t2 + d + x
//	T2 = s1·tD + (1−hD)·s2·t2 + (1−hD)·(d+g) + x
//	T3 = hc·s2·tD + (1−hc)·s2·t2 + d + x
//
// plus the extension for the fully compiled organisation, where the only
// per-execution work left is one level-1 fetch of the native code and the
// semantics themselves:
//
//	T4 = t1 + x
func Evaluate(p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	t1 := p.S2*p.T2Access + p.D + p.X
	t2 := p.S1*p.TDAccess + (1-p.HD)*p.S2*p.T2Access + (1-p.HD)*(p.D+p.G) + p.X
	t3 := p.HC*p.S2*p.TDAccess + (1-p.HC)*p.S2*p.T2Access + p.D + p.X
	t4 := p.T1Access + p.X
	res := Result{T1: t1, T2: t2, T3: t3, T4: t4}
	if t2 > 0 {
		res.F1 = (t3 - t2) / t2 * 100
		res.F2 = (t1 - t2) / t2 * 100
	}
	if t4 > 0 {
		res.F3 = (t2 - t4) / t4 * 100
	}
	return res, nil
}

// Published closed forms of §7 (the worked substitution the paper tabulates).

// ClosedFormF1 is the Table 2 expression: the percentage increase in the
// average DIR instruction interpretation time due to using the DTB's
// resources as a cache on the level-2 memory.
func ClosedFormF1(d, x float64) float64 {
	return (0.4 + 0.6*d) / (8 + 0.4*d + x) * 100
}

// ClosedFormF2 is the Table 3 expression printed in the paper: the percentage
// increase due to not using the DTB.
func ClosedFormF2(d, x float64) float64 {
	return (7.4 + 0.6*d) / (8 + 0.4*d + x) * 100
}

// Grid axes used by Tables 2 and 3.
var (
	// TableXValues is the x axis of both tables (semantic time).
	TableXValues = []float64{5, 10, 15, 20, 25, 30}
	// TableDValues is the d axis of both tables (decode time).
	TableDValues = []float64{10, 20, 30}
)

// Cell is one table entry.
type Cell struct {
	D, X  float64
	Value float64
}

// Table is a d × x grid of figure-of-merit values.
type Table struct {
	Name    string
	Caption string
	DValues []float64
	XValues []float64
	Cells   [][]float64 // Cells[i][j] is the value at DValues[i], XValues[j]
}

// Value returns the cell at (d, x), or false if either coordinate is not an
// axis value.
func (t *Table) Value(d, x float64) (float64, bool) {
	for i, dv := range t.DValues {
		if dv != d {
			continue
		}
		for j, xv := range t.XValues {
			if xv == x {
				return t.Cells[i][j], true
			}
		}
	}
	return 0, false
}

// Render formats the table in the layout of the paper (x across, d down).
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s. %s\n", t.Name, t.Caption)
	fmt.Fprintf(&b, "%6s |", "d \\ x")
	for _, x := range t.XValues {
		fmt.Fprintf(&b, "%8.0f", x)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 8+8*len(t.XValues)))
	b.WriteString("\n")
	for i, d := range t.DValues {
		fmt.Fprintf(&b, "%6.0f |", d)
		for j := range t.XValues {
			fmt.Fprintf(&b, "%8.2f", t.Cells[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// buildTable evaluates the closed form over the published grid.  With
// workers > 1 the rows are computed concurrently (each cell is written by
// exactly one goroutine, so the resulting table is identical to the serial
// one).
func buildTable(name, caption string, f func(d, x float64) float64, workers int) *Table {
	t := &Table{
		Name:    name,
		Caption: caption,
		DValues: append([]float64(nil), TableDValues...),
		XValues: append([]float64(nil), TableXValues...),
		Cells:   make([][]float64, len(TableDValues)),
	}
	fillRow := func(i int) {
		row := make([]float64, len(t.XValues))
		for j, x := range t.XValues {
			row[j] = f(t.DValues[i], x)
		}
		t.Cells[i] = row
	}
	if workers <= 1 {
		for i := range t.DValues {
			fillRow(i)
		}
		return t
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range t.DValues {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			fillRow(i)
			<-sem
		}()
	}
	wg.Wait()
	return t
}

// Table2 regenerates Table 2 of the paper: the percentage increase in the
// average DIR instruction interpretation time due to using the DTB as a
// cache on the level-2 memory, for the published d and x grid.
func Table2() *Table { return Table2With(1) }

// Table2With regenerates Table 2 using up to workers goroutines.
func Table2With(workers int) *Table {
	return buildTable("Table 2",
		"Percentage increase in the average DIR instruction interpretation time due to using the DTB as a cache on the level 2 memory",
		ClosedFormF1, workers)
}

// Table3 regenerates Table 3 of the paper: the percentage increase due to
// not using the DTB.
func Table3() *Table { return Table3With(1) }

// Table3With regenerates Table 3 using up to workers goroutines.
func Table3With(workers int) *Table {
	return buildTable("Table 3",
		"Percentage increase in the average DIR instruction interpretation time due to not using the DTB",
		ClosedFormF2, workers)
}

// Sweep evaluates the symbolic model over a grid of d and x values using the
// nominal paper parameters, returning one Result per (d, x) pair in row-major
// order (d outer, x inner).  It backs the ablation benchmarks that vary the
// DTB and cache hit ratios.
func Sweep(dValues, xValues []float64, modify func(*Params)) ([]Cell, []Result, error) {
	var cells []Cell
	var results []Result
	for _, d := range dValues {
		for _, x := range xValues {
			p := PaperParams(d, x)
			if modify != nil {
				modify(&p)
			}
			r, err := Evaluate(p)
			if err != nil {
				return nil, nil, err
			}
			cells = append(cells, Cell{D: d, X: x, Value: r.F2})
			results = append(results, r)
		}
	}
	return cells, results, nil
}
