package perfmodel

import (
	"math"
	"testing"
)

func TestMetricsCoverResult(t *testing.T) {
	r := Result{T1: 1, T2: 2, T3: 3, T4: 4, F1: 5, F2: 6, F3: 7}
	want := map[string]float64{"T1": 1, "T2": 2, "T3": 3, "T4": 4, "F1": 5, "F2": 6, "F3": 7}
	names := Metrics()
	if len(names) != len(want) {
		t.Fatalf("Metrics() = %v, want %d names", names, len(want))
	}
	for _, name := range names {
		v, ok := r.Metric(name)
		if !ok || v != want[name] {
			t.Errorf("Metric(%q) = %v, %v; want %v", name, v, ok, want[name])
		}
	}
	if _, ok := r.Metric("T9"); ok {
		t.Error("Metric accepted an unknown name")
	}
}

func TestSignedErrorConventions(t *testing.T) {
	pred := Result{T1: 11, F1: 42}
	meas := Result{T1: 10, F1: 40}
	// T metrics: relative percent of the measured value.
	if e, err := SignedError("T1", pred, meas); err != nil || math.Abs(e-10) > 1e-12 {
		t.Errorf("T1 error = %v, %v; want +10%%", e, err)
	}
	// F metrics: percentage-point difference.
	if e, err := SignedError("F1", pred, meas); err != nil || math.Abs(e-2) > 1e-12 {
		t.Errorf("F1 error = %v, %v; want +2pp", e, err)
	}
	if _, err := SignedError("T1", pred, Result{}); err == nil {
		t.Error("SignedError accepted a zero measured T metric")
	}
	if _, err := SignedError("bogus", pred, meas); err == nil {
		t.Error("SignedError accepted an unknown metric")
	}
}

func TestComputeErrorStats(t *testing.T) {
	st := ComputeErrorStats([]float64{3, -1, 2, -4, 0})
	if st.N != 5 || st.Min != -4 || st.Max != 3 || st.MaxAbs != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.P50 != 0 {
		t.Errorf("p50 = %v, want 0 (nearest rank)", st.P50)
	}
	if st.P95 != 3 {
		t.Errorf("p95 = %v, want 3", st.P95)
	}
	if math.Abs(st.Mean-0) > 1e-12 {
		t.Errorf("mean = %v, want 0", st.Mean)
	}
	if z := ComputeErrorStats(nil); z != (ErrorStats{}) {
		t.Errorf("empty sample: %+v", z)
	}
	// Single sample: every summary equals it.
	one := ComputeErrorStats([]float64{-2.5})
	if one.Min != -2.5 || one.P50 != -2.5 || one.P95 != -2.5 || one.Max != -2.5 || one.MaxAbs != 2.5 {
		t.Errorf("single sample: %+v", one)
	}
}
