// Package perfmodel implements the Section 7 analytic performance model: the
// average DIR instruction interpretation time of the three organisations the
// paper compares —
//
//	T1: a conventional UHM (fetch from level 2, decode, execute semantics),
//	T2: a UHM equipped with a dynamic translation buffer,
//	T3: a UHM equipped with an instruction cache on the level-2 memory,
//
// plus, as this reproduction's extension beyond the paper,
//
//	T4: a closure-compiled organisation (the fifth organisation of
//	    internal/sim) in which all binding is performed once at compile
//	    time and the native code is resident in level-1 memory, so an
//	    instruction costs one level-1 fetch plus its semantics,
//
// and the two figures of merit
//
//	F1 = (T3 − T2)/T2 × 100  — the percentage increase in interpretation
//	     time caused by using the DTB's resources as a plain instruction
//	     cache instead (Table 2), and
//	F2 = (T1 − T2)/T2 × 100  — the percentage increase caused by not using
//	     a DTB at all (Table 3),
//
// with F3 = (T2 − T4)/T4 × 100 — the further gain full compilation offers
// over the DTB — reported alongside them for the extension.
//
// Two entry points are provided.  Evaluate applies the symbolic equations to
// any parameter set, so the model can be driven by values measured on the
// simulator (internal/sim).  Table2 and Table3 regenerate the paper's
// published grids exactly, using the closed-form expressions of §7 (the
// paper prints F2 = (7.4 + 0.6d)/(8 + 0.4d + x) × 100; the matching Table 2
// closed form is (0.4 + 0.6d)/(8 + 0.4d + x) × 100).  Note that the closed
// forms embody the paper's worked substitution of its nominal parameters;
// EXPERIMENTS.md records how they relate to the symbolic model.
package perfmodel
