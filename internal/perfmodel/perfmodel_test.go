package perfmodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// published values transcribed from the paper's Tables 2 and 3.
var publishedTable2 = map[[2]float64]float64{
	{10, 5}: 37.65, {10, 10}: 29.09, {10, 15}: 23.7, {10, 20}: 20, {10, 25}: 17.3, {10, 30}: 15.24,
	{20, 5}: 59.05, {20, 10}: 47.69, {20, 15}: 40, {20, 20}: 34.44, {20, 25}: 30.24, {20, 30}: 26.96,
	{30, 5}: 73.6, {30, 10}: 61.33, {30, 15}: 52.57, {30, 20}: 46, {30, 25}: 40.89, {30, 30}: 36.8,
}

var publishedTable3 = map[[2]float64]float64{
	{10, 5}: 78.82, {10, 10}: 60.91, {10, 15}: 49.63, {10, 20}: 41.88, {10, 25}: 36.22, {10, 30}: 31.90,
	{20, 5}: 92.38, {20, 10}: 74.62, {20, 15}: 62.58, {20, 20}: 53.89, {20, 25}: 47.32, {20, 30}: 42.17,
	{30, 5}: 101.6, {30, 10}: 84.67, {30, 15}: 72.57, {30, 20}: 63.5, {30, 25}: 56.44, {30, 30}: 50.8,
}

func TestTable2MatchesPublishedValues(t *testing.T) {
	table := Table2()
	for key, want := range publishedTable2 {
		got, ok := table.Value(key[0], key[1])
		if !ok {
			t.Fatalf("missing cell d=%v x=%v", key[0], key[1])
		}
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Table 2 (d=%v, x=%v) = %.2f, published %.2f", key[0], key[1], got, want)
		}
	}
}

func TestTable3MatchesPublishedValues(t *testing.T) {
	table := Table3()
	for key, want := range publishedTable3 {
		got, ok := table.Value(key[0], key[1])
		if !ok {
			t.Fatalf("missing cell d=%v x=%v", key[0], key[1])
		}
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Table 3 (d=%v, x=%v) = %.2f, published %.2f", key[0], key[1], got, want)
		}
	}
}

func TestClosedFormF2MatchesPrintedExpression(t *testing.T) {
	// The paper prints F2 = (7.4 + 0.6d)/(8 + 0.4d + x) x 100 explicitly.
	if got := ClosedFormF2(10, 5); math.Abs(got-(7.4+6)/(8+4+5)*100) > 1e-9 {
		t.Errorf("closed form F2 mismatch: %v", got)
	}
}

func TestTableValueMissing(t *testing.T) {
	table := Table2()
	if _, ok := table.Value(11, 5); ok {
		t.Error("d=11 is not an axis value")
	}
	if _, ok := table.Value(10, 7); ok {
		t.Error("x=7 is not an axis value")
	}
}

func TestTableRender(t *testing.T) {
	text := Table2().Render()
	for _, want := range []string{"Table 2", "37.65", "73.60", "d \\ x"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(Table3().Render(), "101.60") {
		t.Error("Table 3 render missing corner value")
	}
}

func TestEvaluateSymbolicModel(t *testing.T) {
	p := PaperParams(10, 5)
	r, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	// T1 = s2 t2 + d + x = 10 + 10 + 5.
	if math.Abs(r.T1-25) > 1e-9 {
		t.Errorf("T1 = %v, want 25", r.T1)
	}
	// T2 = 6 + 2 + 0.2*(10+10) + 5 = 17 with g=d.
	if math.Abs(r.T2-17) > 1e-9 {
		t.Errorf("T2 = %v, want 17", r.T2)
	}
	// T3 = 0.9*2 + 0.1*10 + 15 = 17.8.
	if math.Abs(r.T3-17.8) > 1e-9 {
		t.Errorf("T3 = %v, want 17.8", r.T3)
	}
	// T4 = t1 + x = 1 + 5 (the compiled-organisation extension).
	if math.Abs(r.T4-6) > 1e-9 {
		t.Errorf("T4 = %v, want 6", r.T4)
	}
	if r.F2 <= 0 || r.F1 <= 0 || r.F3 <= 0 {
		t.Errorf("figures of merit should be positive with paper parameters: %+v", r)
	}
}

func TestEvaluateOrderings(t *testing.T) {
	// With the paper's parameters the DTB organisation is the fastest of the
	// paper's three for every cell of the published grid, and the compiled
	// extension — with all binding work eliminated — undercuts them all.
	for _, d := range TableDValues {
		for _, x := range TableXValues {
			r, err := Evaluate(PaperParams(d, x))
			if err != nil {
				t.Fatal(err)
			}
			if !(r.T2 < r.T3 && r.T3 < r.T1) {
				t.Errorf("d=%v x=%v: expected T2 < T3 < T1, got %+v", d, x, r)
			}
			if !(r.T4 < r.T2) {
				t.Errorf("d=%v x=%v: expected T4 < T2, got %+v", d, x, r)
			}
		}
	}
}

func TestDTBNotEffectiveWhenDecodingTrivial(t *testing.T) {
	// "the DTB is not particularly effective if the task of decoding is
	// trivial or if the time spent in the semantic routines is much greater
	// than the time that would be spent in decoding."
	trivial, err := Evaluate(PaperParams(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Evaluate(PaperParams(30, 5))
	if err != nil {
		t.Fatal(err)
	}
	if trivial.F2 >= heavy.F2 {
		t.Errorf("F2 with trivial decode (%v) should be far below F2 with heavy decode (%v)",
			trivial.F2, heavy.F2)
	}
	if trivial.F2 > 10 {
		t.Errorf("F2 with trivial decode and heavy semantics = %v, expected < 10%%", trivial.F2)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{T1Access: 0, T2Access: 10, TDAccess: 2},
		{T1Access: 1, T2Access: 10, TDAccess: 2, D: -1},
		{T1Access: 1, T2Access: 10, TDAccess: 2, HC: 1.5},
		{T1Access: 1, T2Access: 10, TDAccess: 2, HD: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
		if _, err := Evaluate(p); err == nil {
			t.Errorf("case %d: Evaluate should reject invalid params", i)
		}
	}
	if err := PaperParams(10, 10).Validate(); err != nil {
		t.Errorf("paper params invalid: %v", err)
	}
}

func TestSweep(t *testing.T) {
	cells, results, err := Sweep([]float64{10, 20}, []float64{5, 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 || len(results) != 4 {
		t.Fatalf("sweep sizes = %d, %d", len(cells), len(results))
	}
	if cells[0].D != 10 || cells[0].X != 5 || cells[3].D != 20 || cells[3].X != 10 {
		t.Errorf("sweep order = %+v", cells)
	}
	// A modifier that disables the DTB advantage (hit ratio 0) should lower F2.
	_, worse, err := Sweep([]float64{10}, []float64{5}, func(p *Params) { p.HD = 0 })
	if err != nil {
		t.Fatal(err)
	}
	if worse[0].F2 >= results[0].F2 {
		t.Errorf("F2 with hD=0 (%v) should be below F2 with hD=0.8 (%v)", worse[0].F2, results[0].F2)
	}
	if _, _, err := Sweep([]float64{10}, []float64{5}, func(p *Params) { p.HD = 2 }); err == nil {
		t.Error("sweep should propagate validation errors")
	}
}

// Property: F1 and F2 grow with the decode time d and shrink with the
// semantic time x across the positive quadrant.
func TestQuickMonotonicity(t *testing.T) {
	f := func(dRaw, xRaw uint8) bool {
		d := float64(dRaw%50) + 1
		x := float64(xRaw%50) + 1
		f1 := ClosedFormF1(d, x)
		f2 := ClosedFormF2(d, x)
		if f1 <= 0 || f2 <= 0 || f2 <= f1 {
			return false
		}
		if ClosedFormF1(d+1, x) <= f1 || ClosedFormF2(d+1, x) <= f2 {
			return false
		}
		if ClosedFormF1(d, x+1) >= f1 || ClosedFormF2(d, x+1) >= f2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Table2()
	}
}
