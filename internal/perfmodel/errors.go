package perfmodel

import (
	"fmt"
	"math"
	"sort"
)

// metricNames is the model's metric axis in presentation order.
var metricNames = []string{"T1", "T2", "T3", "T4", "F1", "F2", "F3"}

// Metrics returns the names of the model's outputs in presentation order:
// the per-instruction times T1-T4, then the figures of merit F1-F3.
func Metrics() []string {
	out := make([]string, len(metricNames))
	copy(out, metricNames)
	return out
}

// Metric returns the named output of the result.
func (r Result) Metric(name string) (float64, bool) {
	switch name {
	case "T1":
		return r.T1, true
	case "T2":
		return r.T2, true
	case "T3":
		return r.T3, true
	case "T4":
		return r.T4, true
	case "F1":
		return r.F1, true
	case "F2":
		return r.F2, true
	case "F3":
		return r.F3, true
	}
	return 0, false
}

// SignedError returns the model-vs-measurement error for one metric, signed
// so that positive means the model over-predicts.  T metrics (cycle counts)
// are compared relatively, in percent of the measured value; F metrics are
// already percentages, so they are compared absolutely, in percentage points.
func SignedError(metric string, predicted, measured Result) (float64, error) {
	p, ok := predicted.Metric(metric)
	if !ok {
		return 0, fmt.Errorf("perfmodel: unknown metric %q", metric)
	}
	m, ok := measured.Metric(metric)
	if !ok {
		return 0, fmt.Errorf("perfmodel: unknown metric %q", metric)
	}
	switch metric[0] {
	case 'T':
		if m == 0 {
			return 0, fmt.Errorf("perfmodel: measured %s is zero", metric)
		}
		return (p - m) / m * 100, nil
	default:
		return p - m, nil
	}
}

// ErrorStats summarises a signed-error sample: the committed error bound's
// per-metric row.
type ErrorStats struct {
	// N is the sample size.
	N int `json:"n"`
	// Min, P50, P95, Max and Mean summarise the signed errors.  P50 and P95
	// use the nearest-rank method on the sorted sample, so every reported
	// quantile is an actually observed value.
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// MaxAbs is the largest error magnitude — the headline bound.
	MaxAbs float64 `json:"max_abs"`
}

// ComputeErrorStats summarises a signed-error sample.  The input is not
// modified; an empty sample yields the zero ErrorStats.
func ComputeErrorStats(errors []float64) ErrorStats {
	if len(errors) == 0 {
		return ErrorStats{}
	}
	s := make([]float64, len(errors))
	copy(s, errors)
	sort.Float64s(s)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	st := ErrorStats{
		N:    len(s),
		Min:  s[0],
		P50:  rank(0.50),
		P95:  rank(0.95),
		Max:  s[len(s)-1],
		Mean: sum / float64(len(s)),
	}
	st.MaxAbs = math.Max(math.Abs(st.Min), math.Abs(st.Max))
	return st
}
