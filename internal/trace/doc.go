// Package trace records one canonical execution of a DIR program as a
// compact execution trace — the dynamic pc sequence, the program output, the
// activation-stack high-water mark and the total host semantic cost — so that
// every machine organisation's cost report can be derived by streaming the
// trace through that organisation's cost model instead of re-executing the
// program's semantics.
//
// This is the simulator finally practising what the paper preaches: Rau's
// argument is that binding work should be done once and buffered, and the
// program's semantics are the most expensive binding of all.  One traced run
// (the closure-compiled backend when the program compiles, the reference DIR
// interpreter otherwise) feeds the conventional, DTB, cache, expanded and
// compiled cost derivations in internal/sim.
//
// Exactness is the design constraint.  The per-instruction host semantic cost
// is a static function of the instruction's PSDER translation and its contour
// (SemCosts) — the only dynamic inputs the host cost model has are the
// static-link hop counts and argument counts, and both are compile-time
// constants of the instruction.  Recording verifies the assumption: the
// compiled backend checks every up-level access at run time, and the
// reference recorder declines programs whose control flow leaves an
// instruction executing outside its static contour.  A declined or
// out-of-bounds trace is not patched over; the caller falls back to full
// simulation.
package trace
