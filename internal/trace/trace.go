package trace

import (
	"errors"
	"fmt"

	"uhm/internal/dir"
	"uhm/internal/psder"
)

// headerBytes is the nominal fixed overhead of a Trace in the footprint
// accounting (struct header, slice headers, scalars).
const headerBytes = 64

// Trace is one recorded execution of a DIR program.  It is immutable after
// Record and safe to share: cost derivations only read it.
type Trace struct {
	// PCs is the dynamic instruction stream: the DIR index of every
	// instruction executed, in order, ending with the halting instruction.
	PCs []int32
	// Output is the program's observable output.
	Output []int64
	// PeakDepth is the activation-stack high-water mark of the run.  A run
	// bounded by MaxDepth d succeeds exactly when PeakDepth ≤ d, so a
	// derivation can decide limit questions without re-executing.
	PeakDepth int
	// SemanticCycles is the total host (IU1+IU2) semantic cost of the run in
	// level-1 cycles.  It is configuration-independent: every interpreted
	// organisation executes the same PSDER sequences through the same
	// semantic routines.
	SemanticCycles int64
	// HasCompiled reports that the trace was recorded on the closure-compiled
	// backend, in which case Compiled carries that backend's cost accounting
	// and the Compiled organisation's report can be derived too.
	HasCompiled bool
	// Compiled is the compiled backend's run statistics (valid only when
	// HasCompiled is true).
	Compiled dir.CompiledRunStats
}

// Instructions returns the dynamic instruction count of the trace.
func (t *Trace) Instructions() int64 { return int64(len(t.PCs)) }

// SizeBytes returns the resident size of the trace for footprint accounting:
// four bytes per dynamic instruction plus eight per output value.
func (t *Trace) SizeBytes() int {
	return headerBytes + len(t.PCs)*4 + len(t.Output)*8
}

// Record executes the program once and returns its trace.  When comp is
// non-nil the closure-compiled backend drives the run (and the trace carries
// its cost statistics); otherwise the reference DIR interpreter does.
// maxInstrs and maxDepth bound the recording (≤0 selects the dir defaults);
// an execution that fails — errors, exceeds a bound, or leaves the static
// contour its costs were priced on — yields an error, never a partial trace.
func Record(p *dir.Program, comp *dir.CompiledProgram, seqs []psder.Sequence, maxInstrs int64, maxDepth int) (*Trace, error) {
	costs, err := SemCosts(p, seqs)
	if err != nil {
		return nil, err
	}
	var tr *Trace
	if comp != nil {
		tr, err = recordCompiled(p, comp, maxInstrs, maxDepth)
	} else {
		tr, err = recordReference(p, maxInstrs, maxDepth)
	}
	if err != nil {
		return nil, err
	}
	if len(tr.PCs) == 0 {
		return nil, errors.New("trace: empty execution")
	}
	var total int64
	for _, pc := range tr.PCs {
		total += costs[pc]
	}
	// A program halting through a return executes the Call of its final
	// sequence but never issues the trailing INTERP (the host returns as soon
	// as the machine halts), so the final instruction costs one cycle less
	// than its static price.  A RoutineHalt sequence has no trailing INTERP
	// and needs no adjustment.
	switch p.Instrs[tr.PCs[len(tr.PCs)-1]].Op {
	case dir.OpReturn, dir.OpReturnValue:
		total--
	}
	tr.SemanticCycles = total
	return tr, nil
}

// recordCompiled drives the closure-compiled backend, collecting the retired
// pc stream.  Up-level addressing is verified against the static contour on
// every access by the backend itself, so a successful run guarantees the
// static semantic costs are the costs the host machine would have charged.
func recordCompiled(p *dir.Program, comp *dir.CompiledProgram, maxInstrs int64, maxDepth int) (*Trace, error) {
	m := dir.NewMachineState(p)
	pcs, stats, err := comp.RunTraced(m, maxInstrs, maxDepth, make([]int32, 0, 4096))
	if err != nil {
		return nil, err
	}
	return &Trace{
		PCs:         pcs,
		Output:      m.Output(),
		PeakDepth:   m.PeakDepth(),
		HasCompiled: true,
		Compiled:    stats,
	}, nil
}

// recordReference drives the reference DIR interpreter (the fallback when the
// program does not compile).  The reference executor tolerates control flow
// that leaves an instruction's static contour, but the static semantic costs
// do not, so the recorder declines such programs instead of mispricing them.
func recordReference(p *dir.Program, maxInstrs int64, maxDepth int) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxInstrs <= 0 {
		maxInstrs = dir.DefaultExecOptions().MaxSteps
	}
	if maxDepth <= 0 {
		maxDepth = dir.DefaultExecOptions().MaxDepth
	}
	m := dir.NewMachineState(p)
	pcs := make([]int32, 0, 4096)
	pc := p.Procs[0].Entry
	for {
		if int64(len(pcs)) >= maxInstrs {
			return nil, fmt.Errorf("%w after %d instructions", dir.ErrStepLimit, len(pcs))
		}
		if pc < 0 || pc >= len(p.Instrs) {
			return nil, fmt.Errorf("trace: program counter %d out of range", pc)
		}
		in := p.Instrs[pc]
		if m.CurrentFrame().Proc != in.Contour {
			return nil, fmt.Errorf("trace: pc %d executed outside its static contour (proc %d, contour %d)",
				pc, m.CurrentFrame().Proc, in.Contour)
		}
		pcs = append(pcs, int32(pc))
		next, halted, err := m.Step(in, pc, maxDepth)
		if err != nil {
			return nil, err
		}
		if halted {
			break
		}
		pc = next
	}
	return &Trace{PCs: pcs, Output: m.Output(), PeakDepth: m.PeakDepth()}, nil
}

// SemCosts returns, for every DIR instruction, the host semantic cost of
// executing its PSDER sequence in full: one cycle per short-format
// instruction issued plus each called routine's base cost and dynamic extras.
// The extras are static after translation — addressing routines are always
// preceded by immediate PUSHes of their (depth, offset) address, so the
// static-link hop count is the instruction contour's depth minus the pushed
// depth; RoutineCall is always preceded by an immediate PUSH of its argument
// count.  A sequence that breaks those invariants (no translator output does)
// is an error, so a mispriced cost can never be derived silently.
func SemCosts(p *dir.Program, seqs []psder.Sequence) ([]int64, error) {
	costs := make([]int64, len(seqs))
	for pc, seq := range seqs {
		c, err := seqCost(p, p.Instrs[pc].Contour, seq)
		if err != nil {
			return nil, fmt.Errorf("trace: pc %d: %w", pc, err)
		}
		costs[pc] = c
	}
	return costs, nil
}

// seqCost prices one sequence executed from an activation of the given
// contour.
func seqCost(p *dir.Program, contour int, seq psder.Sequence) (int64, error) {
	cost := int64(len(seq)) // IU2 issues one cycle per short-format instruction
	for i, in := range seq {
		switch in.Op {
		case psder.OpInterp:
			// The cost model assumes the whole sequence issues (minus the
			// recorded halting-return adjustment), which requires INTERP to
			// terminate the sequence.
			if i != len(seq)-1 {
				return 0, errors.New("INTERP before the end of the sequence")
			}
		case psder.OpCall:
			r := in.Routine()
			c := int64(r.BaseCost())
			switch r {
			case psder.RoutineLoadVar, psder.RoutineLoadIndexed,
				psder.RoutineStoreVar, psder.RoutineStoreIndexed:
				if i < 2 || seq[i-2].Op != psder.OpPush || seq[i-1].Op != psder.OpPush {
					return 0, fmt.Errorf("addressing routine %v without an immediate address", r)
				}
				if hops := p.Procs[contour].Depth - int(seq[i-2].Arg); hops > 0 {
					c += int64(hops)
				}
			case psder.RoutineCall:
				if i < 3 || seq[i-2].Op != psder.OpPush {
					return 0, errors.New("call routine without an immediate argument count")
				}
				c += int64(seq[i-2].Arg)
			}
			cost += c
		}
	}
	return cost, nil
}
