package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one injection point threaded through the stack.
type Site string

// The canonical injection sites.  Each is consulted exactly once per visit of
// the operation it names; the comment states what an injected fault means
// there.
const (
	// SiteRegistryBuild fails an artifact build in the registry, exactly as a
	// compile error would: every singleflight waiter sees the error and the
	// failed build is not cached.
	SiteRegistryBuild Site = "registry/build"
	// SiteRegistryEvict force-evicts the least-recently-used artifact during
	// a footprint sync, exercising eviction and pool invalidation without
	// requiring byte-budget pressure.
	SiteRegistryEvict Site = "registry/evict"
	// SitePoolAcquire fails a replayer checkout, as a construction error
	// would.
	SitePoolAcquire Site = "pool/acquire"
	// SitePoolCheckin forces a returning replayer to be discarded instead of
	// repooled, exercising the discard accounting.
	SitePoolCheckin Site = "pool/checkin"
	// SitePoolInvalidate spuriously invalidates a program's pooled replayers
	// at check-in time, exercising the dead-marking that normally only
	// registry evictions drive.
	SitePoolInvalidate Site = "pool/invalidate"
	// SiteTraceRecord fails the one-shot canonical trace recording; the
	// failure is cached with the program (an ErrNoTrace storm), so every
	// derivation on it declines and falls back to full replay.
	SiteTraceRecord Site = "trace/record"
	// SiteDerive declines one trace derivation with ErrNoTrace, forcing the
	// derive-vs-replay fallback for that request only.
	SiteDerive Site = "sim/derive"
	// SiteServiceRun fires inside the request hot path, after the replayer is
	// checked out — the natural home for panic-mode rules, which must not
	// leak the lease or the request slot.
	SiteServiceRun Site = "service/run"
	// SiteAdmission rejects a request at slot admission as if the queue
	// timeout had expired.
	SiteAdmission Site = "service/admission"
	// SiteDecode fails a uhmd request-body decode, as malformed JSON would.
	SiteDecode Site = "uhmd/decode"
	// SiteStoreWrite fails a disk-tier container write: write-through
	// persists nothing for that build, and the in-memory tier keeps serving
	// with books intact.
	SiteStoreWrite Site = "store/write"
	// SiteStoreRead fails a disk-tier container read, as an I/O error would:
	// the registry treats the entry as a disk miss and rebuilds from source.
	SiteStoreRead Site = "store/read"
	// SiteStoreVerify fails a disk-tier load's hash verification, as a
	// corrupt container would: the registry drops the entry and rebuilds
	// from source, and write-through replaces the bad file.
	SiteStoreVerify Site = "store/verify"
	// SiteRouterProxy fails one proxy attempt to a chosen backend, as a
	// connection refusal would: the router must eject the backend on the
	// spot and retry the request on the next ring owner (or the fallback),
	// never answering the client with a raw transport error.
	SiteRouterProxy Site = "router/proxy"
	// SiteRouterHealth fails one health probe, driving the eject/readmit
	// state machine without needing a backend to actually die.  A delay
	// rule here is a slow backend: the probe times out.
	SiteRouterHealth Site = "router/health"
	// SiteRouterFallback refuses the single-node local fallback, the last
	// rung of the routing ladder: the request must still answer as a
	// structured 503, not hang or leak.
	SiteRouterFallback Site = "router/fallback"
)

// Sites lists every canonical site, in a fixed order (RandomPlan draws from
// this list, so the order is part of seed reproducibility).
func Sites() []Site {
	return []Site{
		SiteRegistryBuild, SiteRegistryEvict,
		SitePoolAcquire, SitePoolCheckin, SitePoolInvalidate,
		SiteTraceRecord, SiteDerive,
		SiteServiceRun, SiteAdmission, SiteDecode,
		// The disk-tier sites are appended, not interleaved, so plans drawn
		// for pre-existing seeds keep their rules for the original sites.
		SiteStoreWrite, SiteStoreRead, SiteStoreVerify,
		// The router sites are appended after the disk tier for the same
		// reason: RandomPlan draws per site in this order, so earlier sites'
		// rules are byte-identical for pre-existing seeds.
		SiteRouterProxy, SiteRouterHealth, SiteRouterFallback,
	}
}

// ErrInjected is the default error a firing rule returns.
var ErrInjected = errors.New("faultinject: injected fault")

// Injected reports whether err came from a firing rule (directly or wrapped).
func Injected(err error) bool { return errors.Is(err, ErrInjected) }

// InjectedPanic is the value a panic-mode rule panics with, so recovery paths
// can tell an injected crash from a real one in tests.
type InjectedPanic struct{ Site Site }

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s", p.Site)
}

// Mode selects what a firing rule does.
type Mode int

const (
	// ModeError returns Rule.Err (default ErrInjected) from Fire.
	ModeError Mode = iota
	// ModePanic panics with an InjectedPanic carrying the site.
	ModePanic
	// ModeDelay sleeps for Rule.Delay, then reports no fault — latency
	// injection for deadline and queue-timeout drills.
	ModeDelay
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Rule arms one site.  Each visit of the site first burns the After budget,
// then fires with the given probability until Count fires have happened.
type Rule struct {
	Site Site
	// Probability is the per-visit chance of firing once armed; values <= 0
	// or >= 1 fire on every armed visit.
	Probability float64
	// After skips the first N visits before arming (0 = armed immediately).
	After int
	// Count bounds the total fires (0 = unlimited).
	Count int
	// Mode selects error, panic or delay behaviour.
	Mode Mode
	// Err is returned by ModeError fires (nil selects ErrInjected).
	Err error
	// Delay is slept by ModeDelay fires.
	Delay time.Duration
	// Before, if set, runs when the rule fires, before the error, panic or
	// sleep — a test seam for holding a fault open (blocking on a channel)
	// until the test has arranged the state it wants the fault to land in.
	Before func()
}

// ruleState is a Rule plus its run-time counters and PRNG stream.  Each rule
// draws from its own stream, seeded from the plan seed and the site name, so
// concurrent visits to different sites do not perturb each other's sequences.
type ruleState struct {
	Rule
	rng    *rand.Rand
	visits int
	fires  int
}

// Plan is a reproducible set of armed rules.  All methods are safe for
// concurrent use; fire decisions across concurrently visited sites are
// independent (per-site PRNG streams), so a plan's behaviour is deterministic
// per site even though goroutine interleaving is not.
type Plan struct {
	seed  int64
	mu    sync.Mutex
	rules map[Site][]*ruleState
}

// NewPlan builds a plan from explicit rules, seeding each rule's PRNG stream
// from seed and its site name.
func NewPlan(seed int64, rules ...Rule) *Plan {
	p := &Plan{seed: seed, rules: make(map[Site][]*ruleState)}
	for _, r := range rules {
		h := fnv.New64a()
		h.Write([]byte(r.Site))
		fmt.Fprintf(h, "/%d", len(p.rules[r.Site]))
		p.rules[r.Site] = append(p.rules[r.Site], &ruleState{
			Rule: r,
			rng:  rand.New(rand.NewSource(seed ^ int64(h.Sum64()))),
		})
	}
	return p
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// Rules returns the plan's rules in site order, for rendering and tests.
func (p *Plan) Rules() []Rule {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Rule
	for _, rs := range p.rules {
		for _, r := range rs {
			out = append(out, r.Rule)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Fires reports how many times each site has fired so far.
func (p *Plan) Fires() map[Site]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Site]int64)
	for site, rs := range p.rules {
		for _, r := range rs {
			out[site] += int64(r.fires)
		}
	}
	return out
}

// String renders the plan in ParseSpec syntax.
func (p *Plan) String() string {
	var s string
	for i, r := range p.Rules() {
		if i > 0 {
			s += ";"
		}
		s += fmt.Sprintf("%s:p=%g", r.Site, r.Probability)
		if r.After > 0 {
			s += fmt.Sprintf(",after=%d", r.After)
		}
		if r.Count > 0 {
			s += fmt.Sprintf(",count=%d", r.Count)
		}
		switch r.Mode {
		case ModePanic:
			s += ",mode=panic"
		case ModeDelay:
			s += fmt.Sprintf(",mode=delay,delay=%s", r.Delay)
		}
	}
	return s
}

// fire runs one visit of the site: it decides whether any rule fires and, if
// one does, acts on its mode — returning the rule's error, panicking, or
// sleeping.  The decision is made under the plan lock; the action (callback,
// sleep, panic) happens outside it, so a blocking Before cannot wedge every
// other site.
func (p *Plan) fire(site Site) error {
	p.mu.Lock()
	var fired *ruleState
	for _, r := range p.rules[site] {
		r.visits++
		if r.visits <= r.After {
			continue
		}
		if r.Count > 0 && r.fires >= r.Count {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 && r.rng.Float64() >= r.Probability {
			continue
		}
		r.fires++
		fired = r
		break
	}
	p.mu.Unlock()
	if fired == nil {
		return nil
	}
	if fired.Before != nil {
		fired.Before()
	}
	switch fired.Mode {
	case ModePanic:
		panic(InjectedPanic{Site: site})
	case ModeDelay:
		time.Sleep(fired.Delay)
		return nil
	}
	if fired.Err != nil {
		return fmt.Errorf("%w: %w", ErrInjected, fired.Err)
	}
	return fmt.Errorf("%w at %s", ErrInjected, site)
}

// active is the process-global plan the injection sites consult.
var active atomic.Pointer[Plan]

// Activate installs the plan globally and returns a function restoring the
// previous state.  Chaos runs activate one plan at a time; cmd/uhmd activates
// one for the process lifetime.
func Activate(p *Plan) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// Enabled reports whether any plan is active.
func Enabled() bool { return active.Load() != nil }

// Fire visits the site on the active plan.  With no active plan — the
// production steady state — it is a single atomic load and a nil return.
func Fire(site Site) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.fire(site)
}
