// Package faultinject is a deterministic, seedable fault-injection framework
// for the service stack.  A Plan is a set of rules over named injection
// Sites — registry builds, pool checkouts, trace recording, derive fallback,
// request admission and decode — each firing with a configured probability,
// arming delay and fire budget, driven by per-site PRNG streams seeded from
// one plan seed: the same seed always produces the same plan, so every chaos
// failure is a reproducible seed, like the program generator of
// internal/workload/gen.
//
// Sites consult the process-global active plan through Fire, which is a
// single atomic load (nil) when no plan is active, so production code pays
// nothing for carrying the sites.  Chaos tests Activate a plan, drive the
// stack, and restore; cmd/uhmd activates one at startup from the -faults
// flag, so operational failure drills run against real binaries.
package faultinject
