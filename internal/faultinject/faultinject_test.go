package faultinject

import (
	"errors"
	"testing"
	"time"
)

// TestDeterministicSequence pins seed reproducibility: two plans with the
// same seed and rules make identical fire decisions over any visit sequence.
func TestDeterministicSequence(t *testing.T) {
	mk := func() *Plan {
		return NewPlan(42,
			Rule{Site: SiteRegistryBuild, Probability: 0.3},
			Rule{Site: SitePoolAcquire, Probability: 0.7, After: 2},
		)
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		site := SiteRegistryBuild
		if i%3 == 0 {
			site = SitePoolAcquire
		}
		ea, eb := a.fire(site), b.fire(site)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("visit %d at %s: plans diverged (%v vs %v)", i, site, ea, eb)
		}
	}
	if len(a.Fires()) == 0 {
		t.Fatal("no site ever fired over 200 visits at these probabilities")
	}
}

func TestAfterAndCount(t *testing.T) {
	p := NewPlan(1, Rule{Site: SiteDerive, After: 3, Count: 2})
	var fires int
	for i := 0; i < 10; i++ {
		err := p.fire(SiteDerive)
		if i < 3 && err != nil {
			t.Fatalf("visit %d fired inside the After window", i)
		}
		if err != nil {
			fires++
			if !Injected(err) {
				t.Fatalf("fired error %v is not ErrInjected", err)
			}
		}
	}
	if fires != 2 {
		t.Fatalf("fired %d times, want exactly Count=2", fires)
	}
}

func TestCustomError(t *testing.T) {
	custom := errors.New("disk on fire")
	p := NewPlan(1, Rule{Site: SiteRegistryBuild, Err: custom, Count: 1})
	err := p.fire(SiteRegistryBuild)
	if !errors.Is(err, custom) || !Injected(err) {
		t.Fatalf("got %v, want both the custom error and ErrInjected", err)
	}
}

func TestPanicMode(t *testing.T) {
	p := NewPlan(1, Rule{Site: SiteServiceRun, Mode: ModePanic, Count: 1})
	func() {
		defer func() {
			v := recover()
			ip, ok := v.(InjectedPanic)
			if !ok || ip.Site != SiteServiceRun {
				t.Fatalf("recovered %v, want InjectedPanic at %s", v, SiteServiceRun)
			}
		}()
		p.fire(SiteServiceRun)
		t.Fatal("panic-mode fire returned")
	}()
	// The Count budget is spent: the next visit is clean.
	if err := p.fire(SiteServiceRun); err != nil {
		t.Fatalf("visit after exhausted panic budget: %v", err)
	}
}

func TestDelayMode(t *testing.T) {
	p := NewPlan(1, Rule{Site: SiteAdmission, Mode: ModeDelay, Delay: 20 * time.Millisecond, Count: 1})
	start := time.Now()
	if err := p.fire(SiteAdmission); err != nil {
		t.Fatalf("delay fire returned error %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay fire slept %v, want ~20ms", d)
	}
}

func TestBeforeSeam(t *testing.T) {
	ran := false
	p := NewPlan(1, Rule{Site: SiteRegistryBuild, Count: 1, Before: func() { ran = true }})
	if err := p.fire(SiteRegistryBuild); err == nil || !ran {
		t.Fatalf("fire err=%v before-ran=%v, want error and callback", err, ran)
	}
}

func TestGlobalActivation(t *testing.T) {
	if Enabled() {
		t.Fatal("a plan is active before the test installed one")
	}
	if err := Fire(SiteRegistryBuild); err != nil {
		t.Fatalf("inactive Fire returned %v", err)
	}
	restore := Activate(NewPlan(1, Rule{Site: SiteRegistryBuild}))
	if !Enabled() {
		t.Fatal("Activate did not enable the plan")
	}
	if err := Fire(SiteRegistryBuild); err == nil {
		t.Fatal("active always-fire plan did not fire")
	}
	restore()
	if Enabled() {
		t.Fatal("restore did not deactivate the plan")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "registry/build:p=0.5,count=3;service/run:p=1,after=2,mode=panic;service/admission:p=1,mode=delay,delay=2s"
	p, err := ParseSpec(7, spec)
	if err != nil {
		t.Fatal(err)
	}
	rules := p.Rules()
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	p2, err := ParseSpec(7, p.String())
	if err != nil {
		t.Fatalf("re-parsing rendered spec %q: %v", p.String(), err)
	}
	if p.String() != p2.String() {
		t.Fatalf("spec did not round-trip: %q vs %q", p.String(), p2.String())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"no/such/site:p=1",
		"registry/build:p=banana",
		"registry/build:mode=verbose",
		"registry/build:p",
		"service/admission:mode=delay", // delay mode without a duration
	} {
		if _, err := ParseSpec(1, spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", spec)
		}
	}
}

// TestRandomPlanReproducible pins the chaos sweep's contract: a seed is a
// complete description of the plan.
func TestRandomPlanReproducible(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := RandomPlan(seed), RandomPlan(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d: %q vs %q", seed, a, b)
		}
		if len(a.Rules()) == 0 {
			t.Fatalf("seed %d drew an empty plan", seed)
		}
		for _, r := range a.Rules() {
			if r.Mode == ModePanic && r.Site != SiteServiceRun {
				t.Fatalf("seed %d put a panic rule at %s", seed, r.Site)
			}
		}
	}
}
