package faultinject

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// ParseSpec builds a plan from a textual rule list, the form the cmd flags
// accept:
//
//	site:p=0.5,count=3;site2:p=1,after=2,mode=panic;site3:p=1,mode=delay,delay=2s
//
// Each rule is site:key=value,...; rules are joined with ";".  Keys are p
// (probability), after, count, mode (error, panic, delay) and delay (a Go
// duration).  An omitted p fires on every armed visit.
func ParseSpec(seed int64, spec string) (*Plan, error) {
	known := make(map[Site]bool)
	for _, s := range Sites() {
		known[s] = true
	}
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, params, _ := strings.Cut(part, ":")
		r := Rule{Site: Site(strings.TrimSpace(site)), Probability: 1}
		if !known[r.Site] {
			return nil, fmt.Errorf("faultinject: unknown site %q", site)
		}
		if params != "" {
			for _, kv := range strings.Split(params, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("faultinject: %s: malformed parameter %q", site, kv)
				}
				var err error
				switch k {
				case "p":
					r.Probability, err = strconv.ParseFloat(v, 64)
				case "after":
					r.After, err = strconv.Atoi(v)
				case "count":
					r.Count, err = strconv.Atoi(v)
				case "mode":
					switch v {
					case "error":
						r.Mode = ModeError
					case "panic":
						r.Mode = ModePanic
					case "delay":
						r.Mode = ModeDelay
					default:
						err = fmt.Errorf("unknown mode %q", v)
					}
				case "delay":
					r.Delay, err = time.ParseDuration(v)
				default:
					err = fmt.Errorf("unknown parameter %q", k)
				}
				if err != nil {
					return nil, fmt.Errorf("faultinject: %s: %s: %v", site, kv, err)
				}
			}
		}
		if r.Mode == ModeDelay && r.Delay <= 0 {
			return nil, fmt.Errorf("faultinject: %s: mode=delay needs delay=<duration>", site)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: empty spec")
	}
	return NewPlan(seed, rules...), nil
}

// RandomPlan draws a reproducible plan for the seed: a random subset of the
// canonical sites, each with a random probability, arming delay and fire
// budget.  Panic rules are confined to SiteServiceRun and delay rules are
// kept short, so a random plan is always safe to run against a real service
// under a test deadline.  The same seed always yields the same plan.
func RandomPlan(seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	sites := Sites()
	var rules []Rule
	for _, site := range sites {
		// Roughly half the sites participate in any one plan, so plans
		// combine faults without saturating every path at once.
		if rng.Float64() < 0.5 {
			continue
		}
		r := Rule{
			Site:        site,
			Probability: 0.05 + 0.45*rng.Float64(),
			After:       rng.Intn(4),
			Count:       1 + rng.Intn(6),
		}
		if site == SiteServiceRun && rng.Float64() < 0.3 {
			r.Mode = ModePanic
			r.Count = 1 + rng.Intn(2)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		// Every plan injects something; an empty draw degenerates to one
		// bounded build failure.
		rules = append(rules, Rule{Site: SiteRegistryBuild, Probability: 0.5, Count: 2})
	}
	return NewPlan(seed, rules...)
}
