// Package compile translates the MiniLang HLR into the DIR of internal/dir.
//
// This is the compilation step of §3.3: it "factors out large amounts of
// computation ... by performing it just once before the interpretation
// phase".  Concretely it binds every name to a (depth, offset) machine
// address so no associative lookup remains, flattens the hierarchical
// expression syntax into a sequential instruction stream, and discards the
// symbolic names of the HLR.
//
// The compiler can target three semantic levels, sweeping the vertical axis
// of the paper's Figure 1:
//
//   - LevelStack: every computation is expressed with the stack-oriented
//     opcodes (the lowest-level DIR; the most instructions).
//   - LevelMem2: statements of the form "v := v op simple" and simple
//     conditional branches use the PDP-11-style two-operand opcodes.
//   - LevelMem3: additionally, "v := a op b" uses the three-operand opcodes,
//     mirroring a richer, higher-level DIR.
//
// Programs compiled at any level produce identical output; only the number
// and size of instructions differ, which is exactly the trade-off the
// representation-space experiments measure.
package compile
