package compile

import (
	"reflect"
	"strings"
	"testing"

	"uhm/internal/dir"
	"uhm/internal/hlr"
)

// Shared test programs exercising the language features the paper's argument
// rests on: loops (locality), recursion, arrays, nested procedures with
// up-level addressing, and mixed arithmetic.
var testSources = map[string]string{
	"fib": `
program fib;
var n, result;
proc fibo(k);
begin
  if k < 2 then return k
  else return fibo(k - 1) + fibo(k - 2)
end;
begin
  n := 12;
  result := fibo(n);
  print result
end.`,

	"loopsum": `
program loopsum;
var i, sum, n;
begin
  n := 50;
  i := 1;
  sum := 0;
  while i <= n do
  begin
    sum := sum + i;
    i := i + 1
  end;
  print sum
end.`,

	"sieve": `
program sieve;
var flags[64], i, j, count;
begin
  i := 0;
  while i < 64 do
  begin
    flags[i] := 1;
    i := i + 1
  end;
  i := 2;
  count := 0;
  while i < 64 do
  begin
    if flags[i] = 1 then
    begin
      count := count + 1;
      j := i + i;
      while j < 64 do
      begin
        flags[j] := 0;
        j := j + i
      end
    end;
    i := i + 1
  end;
  print count
end.`,

	"nested": `
program nested;
var total;
proc outer(n);
  var acc;
  proc step(k);
  begin
    acc := acc + k * n
  end;
begin
  acc := 0;
  call step(1);
  call step(2);
  call step(3);
  total := total + acc
end;
begin
  total := 0;
  call outer(1);
  call outer(10);
  print total
end.`,

	"mixed": `
program mixed;
var a, b, c, r;
proc max2(x, y);
begin
  if x > y then return x;
  return y
end;
begin
  a := 17; b := 5; c := 0 - 3;
  r := max2(a, b) * 2 + max2(b, c) - a mod b;
  print r;
  if (a > b) and (b > c) then print 1 else print 0;
  print not (a = b)
end.`,
}

// reference evaluates the HLR program with the tree-walking oracle.
func reference(t *testing.T, src string) []int64 {
	t.Helper()
	prog := hlr.MustParse(src)
	res, err := hlr.Evaluate(prog, hlr.EvalOptions{})
	if err != nil {
		t.Fatalf("reference evaluation: %v", err)
	}
	return res.Output
}

// compileAndRun compiles at the given level and executes on the reference
// DIR interpreter.
func compileAndRun(t *testing.T, src string, level Level) ([]int64, *dir.Program) {
	t.Helper()
	prog := hlr.MustParse(src)
	dp, err := Compile(prog, level)
	if err != nil {
		t.Fatalf("compile at %v: %v", level, err)
	}
	res, err := dir.Execute(dp, dir.ExecOptions{})
	if err != nil {
		t.Fatalf("execute at %v: %v\n%s", level, err, dp.Disassemble())
	}
	return res.Output, dp
}

func TestLevelStrings(t *testing.T) {
	if len(Levels()) != 3 {
		t.Fatalf("Levels() = %v", Levels())
	}
	if LevelStack.String() != "stack" || LevelMem2.String() != "mem2" || LevelMem3.String() != "mem3" {
		t.Error("level names")
	}
	if Level(9).Valid() || Level(9).String() == "" {
		t.Error("invalid level should not validate but should render")
	}
	if _, err := Compile(hlr.MustParse("program p; begin print 1 end."), Level(9)); err == nil {
		t.Error("Compile should reject an invalid level")
	}
}

func TestCompiledOutputMatchesReferenceAtAllLevels(t *testing.T) {
	for name, src := range testSources {
		want := reference(t, src)
		for _, level := range Levels() {
			t.Run(name+"/"+level.String(), func(t *testing.T) {
				got, _ := compileAndRun(t, src, level)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("output = %v, want %v", got, want)
				}
			})
		}
	}
}

func TestHigherLevelsEmitFewerInstructions(t *testing.T) {
	src := testSources["loopsum"]
	prog := hlr.MustParse(src)
	stack := MustCompile(prog, LevelStack)
	prog2 := hlr.MustParse(src)
	mem2 := MustCompile(prog2, LevelMem2)
	prog3 := hlr.MustParse(src)
	mem3 := MustCompile(prog3, LevelMem3)

	if !(len(mem3.Instrs) <= len(mem2.Instrs) && len(mem2.Instrs) < len(stack.Instrs)) {
		t.Errorf("static instruction counts should not grow with level: stack=%d mem2=%d mem3=%d",
			len(stack.Instrs), len(mem2.Instrs), len(mem3.Instrs))
	}

	// The dynamic count must shrink too (the loop body collapses into
	// two-/three-operand instructions).
	rs, _ := dir.Execute(stack, dir.ExecOptions{})
	r2, _ := dir.Execute(mem2, dir.ExecOptions{})
	r3, _ := dir.Execute(mem3, dir.ExecOptions{})
	if !(r3.Executed <= r2.Executed && r2.Executed < rs.Executed) {
		t.Errorf("dynamic instruction counts: stack=%d mem2=%d mem3=%d",
			rs.Executed, r2.Executed, r3.Executed)
	}
}

func TestHighLevelOpcodesActuallyUsed(t *testing.T) {
	prog := hlr.MustParse(testSources["loopsum"])
	mem3 := MustCompile(prog, LevelMem3)
	mix := mem3.InstructionMix()
	if mix[dir.OpAdd3] == 0 && mix[dir.OpAdd2] == 0 {
		t.Error("mem3 compilation should use memory-form add opcodes")
	}
	found := false
	for op := range mix {
		if op.IsBranchCompare() {
			found = true
		}
	}
	if !found {
		t.Error("mem3 compilation should use compound compare-and-branch opcodes")
	}

	prog2 := hlr.MustParse(testSources["loopsum"])
	stack := MustCompile(prog2, LevelStack)
	for op := range stack.InstructionMix() {
		if op.IsBranchCompare() || op == dir.OpAdd3 || op == dir.OpMove {
			t.Errorf("stack compilation must not use memory opcodes, found %v", op)
		}
	}
}

func TestContoursMatchScopes(t *testing.T) {
	prog := hlr.MustParse(testSources["nested"])
	dp := MustCompile(prog, LevelStack)
	if len(dp.Procs) != 3 || len(dp.Contours) != 3 {
		t.Fatalf("procs=%d contours=%d, want 3 each", len(dp.Procs), len(dp.Contours))
	}
	// Contour 2 (step) is nested in contour 1 (outer), which is nested in 0.
	if dp.Contours[1].Parent != 0 || dp.Contours[2].Parent != 1 {
		t.Errorf("contour parents = %d, %d", dp.Contours[1].Parent, dp.Contours[2].Parent)
	}
	// outer declares n (param) and acc (local): 2 locals in its contour.
	if len(dp.Contours[1].Locals) != 2 {
		t.Errorf("outer contour locals = %d, want 2", len(dp.Contours[1].Locals))
	}
	// step sees: total (1) + n, acc (2) + k (1) = 4 visible variables.
	if got := len(dp.VisibleVars(2)); got != 4 {
		t.Errorf("visible from step = %d, want 4", got)
	}
	// Procedure metadata.
	if dp.Procs[1].Name != "outer" || dp.Procs[1].NumParams != 1 || dp.Procs[1].Depth != 1 {
		t.Errorf("outer proc meta = %+v", dp.Procs[1])
	}
	if dp.Procs[2].Name != "step" || dp.Procs[2].Depth != 2 {
		t.Errorf("step proc meta = %+v", dp.Procs[2])
	}
}

func TestMainCompiledFirst(t *testing.T) {
	prog := hlr.MustParse(testSources["fib"])
	dp := MustCompile(prog, LevelStack)
	if dp.Procs[0].Entry != 0 {
		t.Errorf("main entry = %d, want 0", dp.Procs[0].Entry)
	}
	for i := 1; i < len(dp.Procs); i++ {
		if dp.Procs[i].Entry <= dp.Procs[i-1].Entry {
			t.Errorf("procedure entries must increase: %d then %d", dp.Procs[i-1].Entry, dp.Procs[i].Entry)
		}
	}
	// Instruction contours must agree with ContourOf so the encoded binary
	// can be decoded without the original instruction records.
	for i, in := range dp.Instrs {
		if dp.ContourOf(i) != in.Contour {
			t.Errorf("instruction %d: ContourOf=%d recorded=%d", i, dp.ContourOf(i), in.Contour)
		}
	}
}

func TestCallStatementDiscardsValue(t *testing.T) {
	src := `
program p;
var g;
proc bump(); begin g := g + 1; return 99 end;
begin
  g := 0;
  call bump();
  call bump();
  print g
end.`
	for _, level := range Levels() {
		got, dp := compileAndRun(t, src, level)
		if !reflect.DeepEqual(got, []int64{2}) {
			t.Errorf("%v: output = %v, want [2]", level, got)
		}
		if dp.InstructionMix()[dir.OpPop] != 2 {
			t.Errorf("%v: call statements should be followed by POP", level)
		}
	}
}

func TestCompileAnalysesOnDemand(t *testing.T) {
	prog := hlr.MustParse("program p; var x; begin x := 3; print x end.")
	if prog.Analysis != nil {
		t.Fatal("program should not be analysed yet")
	}
	dp, err := Compile(prog, LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Analysis == nil {
		t.Error("Compile should run semantic analysis")
	}
	res, err := dir.Execute(dp, dir.ExecOptions{})
	if err != nil || len(res.Output) != 1 || res.Output[0] != 3 {
		t.Errorf("res=%v err=%v", res, err)
	}
}

func TestCompileRejectsInvalidProgram(t *testing.T) {
	prog := hlr.MustParse("program p; begin x := 1 end.")
	if _, err := Compile(prog, LevelStack); err == nil {
		t.Error("Compile should surface semantic errors")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on error")
		}
	}()
	MustCompile(hlr.MustParse("program p; begin x := 1 end."), LevelStack)
}

func TestEncodedCompiledProgramsRoundTrip(t *testing.T) {
	// End-to-end: compile every test source at every level, encode at every
	// degree, decode, and check the decoded program still runs identically.
	for name, src := range testSources {
		want := reference(t, src)
		for _, level := range Levels() {
			prog := hlr.MustParse(src)
			dp := MustCompile(prog, level)
			for _, degree := range dir.Degrees() {
				t.Run(name+"/"+level.String()+"/"+degree.String(), func(t *testing.T) {
					bin, err := dir.Encode(dp, degree)
					if err != nil {
						t.Fatalf("encode: %v", err)
					}
					dec := bin.NewDecoder()
					rebuilt := &dir.Program{
						Name:     dp.Name,
						Level:    dp.Level,
						Procs:    dp.Procs,
						Contours: dp.Contours,
					}
					for i := 0; i < bin.NumInstrs(); i++ {
						in, _, err := dec.Decode(i)
						if err != nil {
							t.Fatalf("decode %d: %v", i, err)
						}
						rebuilt.Instrs = append(rebuilt.Instrs, in)
					}
					res, err := dir.Execute(rebuilt, dir.ExecOptions{})
					if err != nil {
						t.Fatalf("execute rebuilt program: %v", err)
					}
					if !reflect.DeepEqual(res.Output, want) {
						t.Errorf("output = %v, want %v", res.Output, want)
					}
				})
			}
		}
	}
}

func TestDisassemblyMentionsLevel(t *testing.T) {
	prog := hlr.MustParse(testSources["fib"])
	dp := MustCompile(prog, LevelMem3)
	if !strings.Contains(dp.Disassemble(), "level mem3") {
		t.Error("disassembly should mention the semantic level")
	}
}

func BenchmarkCompileSieve(b *testing.B) {
	src := testSources["sieve"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog := hlr.MustParse(src)
		if _, err := Compile(prog, LevelMem3); err != nil {
			b.Fatal(err)
		}
	}
}
