package compile

import (
	"fmt"

	"uhm/internal/dir"
	"uhm/internal/hlr"
)

// Level selects the semantic level of the emitted DIR.
type Level int

const (
	// LevelStack emits only stack-oriented opcodes.
	LevelStack Level = iota
	// LevelMem2 adds two-operand memory opcodes and compound branches.
	LevelMem2
	// LevelMem3 adds three-operand memory opcodes on top of LevelMem2.
	LevelMem3

	levelCount
)

// Levels lists all semantic levels in increasing order.
func Levels() []Level { return []Level{LevelStack, LevelMem2, LevelMem3} }

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelStack:
		return "stack"
	case LevelMem2:
		return "mem2"
	case LevelMem3:
		return "mem3"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Valid reports whether the level is defined.
func (l Level) Valid() bool { return l >= 0 && l < levelCount }

// Compile translates an analysed (or analysable) HLR program into a DIR
// program at the requested semantic level.
func Compile(prog *hlr.Program, level Level) (*dir.Program, error) {
	if !level.Valid() {
		return nil, fmt.Errorf("compile: invalid level %d", int(level))
	}
	if prog.Analysis == nil {
		if _, err := hlr.Analyze(prog); err != nil {
			return nil, err
		}
	}
	c := &compiler{level: level, analysis: prog.Analysis}
	out, err := c.compile(prog)
	if err != nil {
		return nil, err
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("compile: produced invalid DIR program: %w", err)
	}
	return out, nil
}

// MustCompile compiles and panics on error; intended for built-in workloads.
func MustCompile(prog *hlr.Program, level Level) *dir.Program {
	out, err := Compile(prog, level)
	if err != nil {
		panic(fmt.Sprintf("compile.MustCompile: %v", err))
	}
	return out
}

type compiler struct {
	level    Level
	analysis *hlr.Analysis

	instrs  []dir.Instruction
	contour int // contour (procedure) being compiled
}

func (c *compiler) emit(in dir.Instruction) int {
	in.Contour = c.contour
	c.instrs = append(c.instrs, in)
	return len(c.instrs) - 1
}

func (c *compiler) patchTarget(at, target int) {
	c.instrs[at].Target = target
}

func (c *compiler) here() int { return len(c.instrs) }

func (c *compiler) compile(prog *hlr.Program) (*dir.Program, error) {
	an := c.analysis
	out := &dir.Program{Name: prog.Name, Level: c.level.String()}

	// Compile procedure bodies in index order: main (0) first, so execution
	// starts at instruction 0, then every nested procedure contiguously.
	entries := make([]int, len(an.Procs))
	for idx, proc := range an.Procs {
		entries[idx] = c.here()
		c.contour = idx
		if err := c.compileStmt(proc.Block.Body); err != nil {
			return nil, err
		}
		if idx == 0 {
			c.emit(dir.Instruction{Op: dir.OpHalt})
		} else {
			// Fall-through epilogue: return 0.
			c.emit(dir.Instruction{Op: dir.OpReturn})
		}
	}

	for idx, proc := range an.Procs {
		out.Procs = append(out.Procs, dir.Proc{
			Name:       proc.Name,
			Entry:      entries[idx],
			NumParams:  proc.NumParams,
			FrameSlots: max(proc.FrameSlots, proc.NumParams),
			Depth:      proc.Depth,
		})
		out.Contours = append(out.Contours, c.contourFor(proc))
	}
	out.Instrs = c.instrs
	return out, nil
}

// contourFor builds the contour descriptor (visible-variable environment) of
// a procedure from its scope.
func (c *compiler) contourFor(proc *hlr.ProcInfo) dir.Contour {
	parent := 0
	scope := proc.Block.Scope
	if scope != nil && scope.Parent != nil && scope.Parent.Proc != nil {
		parent = scope.Parent.Proc.Index
	}
	contour := dir.Contour{Parent: parent}
	if scope != nil {
		for _, sym := range scope.Symbols() {
			if !sym.IsStorage() {
				continue
			}
			contour.Locals = append(contour.Locals, dir.ContourVar{
				Addr: dir.VarAddr{Depth: sym.Depth, Offset: sym.Offset},
				Size: sym.Size,
			})
		}
	}
	return contour
}

// frameSlotsOK guards against procedures whose frame is empty; dir.Validate
// requires FrameSlots >= NumParams which the max above ensures, but a
// zero-slot frame is legal.

func varOperand(sym *hlr.Symbol) dir.Operand {
	return dir.VarOperand(sym.Depth, sym.Offset)
}

// simpleOperand returns the DIR operand for an expression that is a constant
// or a scalar variable reference, and whether the expression is that simple.
func simpleOperand(e hlr.Expr) (dir.Operand, bool) {
	switch x := e.(type) {
	case *hlr.NumberLit:
		return dir.ImmOperand(x.Value), true
	case *hlr.VarRef:
		if x.Index == nil && x.Sym != nil && x.Sym.Kind != hlr.SymArray {
			return varOperand(x.Sym), true
		}
	case *hlr.UnaryExpr:
		if x.Op == hlr.OpNeg {
			if lit, ok := x.Operand.(*hlr.NumberLit); ok {
				return dir.ImmOperand(-lit.Value), true
			}
		}
	}
	return dir.Operand{}, false
}

// refersToVar reports whether the expression reads the given symbol (used to
// avoid clobbering in the two-operand lowering).
func refersToVar(e hlr.Expr, sym *hlr.Symbol) bool {
	switch x := e.(type) {
	case *hlr.VarRef:
		return x.Sym == sym
	default:
		return false
	}
}

var arithOp2 = map[hlr.BinOp]dir.Opcode{
	hlr.OpAdd: dir.OpAdd2, hlr.OpSub: dir.OpSub2, hlr.OpMul: dir.OpMul2,
	hlr.OpDiv: dir.OpDiv2, hlr.OpMod: dir.OpMod2,
}

var arithOp3 = map[hlr.BinOp]dir.Opcode{
	hlr.OpAdd: dir.OpAdd3, hlr.OpSub: dir.OpSub3, hlr.OpMul: dir.OpMul3,
	hlr.OpDiv: dir.OpDiv3, hlr.OpMod: dir.OpMod3,
}

var stackBinOp = map[hlr.BinOp]dir.Opcode{
	hlr.OpAdd: dir.OpAdd, hlr.OpSub: dir.OpSub, hlr.OpMul: dir.OpMul,
	hlr.OpDiv: dir.OpDiv, hlr.OpMod: dir.OpMod,
	hlr.OpEq: dir.OpEq, hlr.OpNe: dir.OpNe, hlr.OpLt: dir.OpLt,
	hlr.OpLe: dir.OpLe, hlr.OpGt: dir.OpGt, hlr.OpGe: dir.OpGe,
	hlr.OpAnd: dir.OpAnd, hlr.OpOr: dir.OpOr,
}

// negatedBranch maps a comparison to the compare-and-branch opcode that jumps
// when the comparison is FALSE (used to branch around then/loop bodies).
var negatedBranch = map[hlr.BinOp]dir.Opcode{
	hlr.OpEq: dir.OpBrNe, hlr.OpNe: dir.OpBrEq,
	hlr.OpLt: dir.OpBrGe, hlr.OpLe: dir.OpBrGt,
	hlr.OpGt: dir.OpBrLe, hlr.OpGe: dir.OpBrLt,
}

func (c *compiler) compileStmt(stmt hlr.Stmt) error {
	switch s := stmt.(type) {
	case *hlr.CompoundStmt:
		for _, inner := range s.Stmts {
			if err := c.compileStmt(inner); err != nil {
				return err
			}
		}
		return nil

	case *hlr.AssignStmt:
		return c.compileAssign(s)

	case *hlr.IfStmt:
		return c.compileIf(s)

	case *hlr.WhileStmt:
		return c.compileWhile(s)

	case *hlr.CallStmt:
		if err := c.compileCall(s.ProcSym, s.Args); err != nil {
			return err
		}
		// Discard the return value.
		c.emit(dir.Instruction{Op: dir.OpPop})
		return nil

	case *hlr.PrintStmt:
		if c.level >= LevelMem2 {
			if op, ok := simpleOperand(s.Value); ok {
				c.emit(dir.Instruction{Op: dir.OpPrintOperand, Operands: []dir.Operand{op}})
				return nil
			}
		}
		if err := c.compileExpr(s.Value); err != nil {
			return err
		}
		c.emit(dir.Instruction{Op: dir.OpPrint})
		return nil

	case *hlr.ReturnStmt:
		if s.Value != nil {
			if err := c.compileExpr(s.Value); err != nil {
				return err
			}
			c.emit(dir.Instruction{Op: dir.OpReturnValue})
		} else {
			c.emit(dir.Instruction{Op: dir.OpReturn})
		}
		return nil

	case *hlr.EmptyStmt:
		return nil

	default:
		return fmt.Errorf("compile: unsupported statement %T at %s", stmt, stmt.Pos())
	}
}

func (c *compiler) compileAssign(s *hlr.AssignStmt) error {
	sym := s.TargetSym
	// Array element assignment always uses the stack form: push index, push
	// value, store-indexed.
	if s.Index != nil {
		if err := c.compileExpr(s.Index); err != nil {
			return err
		}
		if err := c.compileExpr(s.Value); err != nil {
			return err
		}
		c.emit(dir.Instruction{Op: dir.OpStoreIndexed, Operands: []dir.Operand{varOperand(sym)}})
		return nil
	}

	// Higher-level lowerings for scalar targets.
	if c.level >= LevelMem2 {
		if op, ok := simpleOperand(s.Value); ok {
			c.emit(dir.Instruction{Op: dir.OpMove, Operands: []dir.Operand{varOperand(sym), op}})
			return nil
		}
		if bin, ok := s.Value.(*hlr.BinaryExpr); ok {
			if opc, arith := arithOp2[bin.Op]; arith {
				left, lok := simpleOperand(bin.Left)
				right, rok := simpleOperand(bin.Right)
				if lok && rok {
					if c.level >= LevelMem3 {
						c.emit(dir.Instruction{
							Op:       arithOp3[bin.Op],
							Operands: []dir.Operand{varOperand(sym), left, right},
						})
						return nil
					}
					// Two-operand form: v := a op b  =>  MOV v,a ; OP2 v,b —
					// valid only when b does not read v (otherwise the MOV
					// would clobber it first).
					if refersToVar(bin.Left, sym) {
						// v := v op b  =>  OP2 v,b directly.
						c.emit(dir.Instruction{Op: opc, Operands: []dir.Operand{varOperand(sym), right}})
						return nil
					}
					if !refersToVar(bin.Right, sym) {
						c.emit(dir.Instruction{Op: dir.OpMove, Operands: []dir.Operand{varOperand(sym), left}})
						c.emit(dir.Instruction{Op: opc, Operands: []dir.Operand{varOperand(sym), right}})
						return nil
					}
				}
			}
		}
	}

	// General (stack) form.
	if err := c.compileExpr(s.Value); err != nil {
		return err
	}
	c.emit(dir.Instruction{Op: dir.OpStoreVar, Operands: []dir.Operand{varOperand(sym)}})
	return nil
}

// compileCondBranchFalse emits code that transfers control to a (yet to be
// patched) target when the condition is false, returning the index of the
// branch instruction to patch.
func (c *compiler) compileCondBranchFalse(cond hlr.Expr) (int, error) {
	if c.level >= LevelMem2 {
		if bin, ok := cond.(*hlr.BinaryExpr); ok && bin.Op.IsComparison() {
			left, lok := simpleOperand(bin.Left)
			right, rok := simpleOperand(bin.Right)
			if lok && rok {
				at := c.emit(dir.Instruction{
					Op:       negatedBranch[bin.Op],
					Operands: []dir.Operand{left, right},
				})
				return at, nil
			}
		}
	}
	if err := c.compileExpr(cond); err != nil {
		return 0, err
	}
	at := c.emit(dir.Instruction{Op: dir.OpJumpZero})
	return at, nil
}

func (c *compiler) compileIf(s *hlr.IfStmt) error {
	brFalse, err := c.compileCondBranchFalse(s.Cond)
	if err != nil {
		return err
	}
	if err := c.compileStmt(s.Then); err != nil {
		return err
	}
	if s.Else == nil {
		c.patchTarget(brFalse, c.here())
		return nil
	}
	jumpEnd := c.emit(dir.Instruction{Op: dir.OpJump})
	c.patchTarget(brFalse, c.here())
	if err := c.compileStmt(s.Else); err != nil {
		return err
	}
	c.patchTarget(jumpEnd, c.here())
	return nil
}

func (c *compiler) compileWhile(s *hlr.WhileStmt) error {
	top := c.here()
	brExit, err := c.compileCondBranchFalse(s.Cond)
	if err != nil {
		return err
	}
	if err := c.compileStmt(s.Body); err != nil {
		return err
	}
	back := c.emit(dir.Instruction{Op: dir.OpJump})
	c.patchTarget(back, top)
	c.patchTarget(brExit, c.here())
	return nil
}

func (c *compiler) compileCall(procSym *hlr.Symbol, args []hlr.Expr) error {
	for _, arg := range args {
		if err := c.compileExpr(arg); err != nil {
			return err
		}
	}
	c.emit(dir.Instruction{Op: dir.OpCall, Proc: procSym.Proc.Index, NArgs: len(args)})
	return nil
}

func (c *compiler) compileExpr(e hlr.Expr) error {
	switch x := e.(type) {
	case *hlr.NumberLit:
		c.emit(dir.Instruction{Op: dir.OpPushConst, Operands: []dir.Operand{dir.ImmOperand(x.Value)}})
		return nil

	case *hlr.VarRef:
		if x.Index != nil {
			if err := c.compileExpr(x.Index); err != nil {
				return err
			}
			c.emit(dir.Instruction{Op: dir.OpPushIndexed, Operands: []dir.Operand{varOperand(x.Sym)}})
			return nil
		}
		c.emit(dir.Instruction{Op: dir.OpPushVar, Operands: []dir.Operand{varOperand(x.Sym)}})
		return nil

	case *hlr.CallExpr:
		return c.compileCall(x.ProcSym, x.Args)

	case *hlr.BinaryExpr:
		if err := c.compileExpr(x.Left); err != nil {
			return err
		}
		if err := c.compileExpr(x.Right); err != nil {
			return err
		}
		opc, ok := stackBinOp[x.Op]
		if !ok {
			return fmt.Errorf("compile: unsupported binary operator %v at %s", x.Op, x.Pos())
		}
		c.emit(dir.Instruction{Op: opc})
		return nil

	case *hlr.UnaryExpr:
		if err := c.compileExpr(x.Operand); err != nil {
			return err
		}
		switch x.Op {
		case hlr.OpNeg:
			c.emit(dir.Instruction{Op: dir.OpNeg})
		case hlr.OpNot:
			c.emit(dir.Instruction{Op: dir.OpNot})
		default:
			return fmt.Errorf("compile: unsupported unary operator %v at %s", x.Op, x.Pos())
		}
		return nil

	default:
		return fmt.Errorf("compile: unsupported expression %T at %s", e, e.Pos())
	}
}
