package router

import (
	"fmt"
	"testing"

	"uhm/internal/core"
	"uhm/internal/service"
)

func testKeys(n int) []service.Key {
	keys := make([]service.Key, n)
	for i := range keys {
		keys[i] = service.KeyOf(fmt.Sprintf("program p%d; begin x := %d end.", i, i), core.LevelStack)
	}
	return keys
}

func backendSet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingPlacementStable: an identical backend set produces identical
// placement, regardless of the order the members were listed in.
func TestRingPlacementStable(t *testing.T) {
	backends := backendSet(5)
	reversed := make([]string, len(backends))
	for i, b := range backends {
		reversed[len(backends)-1-i] = b
	}
	a := NewRing(backends, 0)
	b := NewRing(reversed, 0)
	for _, key := range testKeys(500) {
		ao, bo := a.Owners(key), b.Owners(key)
		if len(ao) != len(bo) {
			t.Fatalf("owner list lengths differ: %d vs %d", len(ao), len(bo))
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("key %s: owners diverge at %d: %s vs %s", key, i, ao[i], bo[i])
			}
		}
	}
}

// TestRingOwnersComplete: every key's owner list enumerates the whole
// backend set without duplicates, so a retry walk can always exhaust the
// fleet.
func TestRingOwnersComplete(t *testing.T) {
	backends := backendSet(4)
	r := NewRing(backends, 0)
	for _, key := range testKeys(200) {
		owners := r.Owners(key)
		if len(owners) != len(backends) {
			t.Fatalf("key %s: %d owners, want %d", key, len(owners), len(backends))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %s: owner %s listed twice", key, o)
			}
			seen[o] = true
		}
	}
}

// TestRingBoundedMovement is the consistent-hashing property: removing one
// of N backends moves exactly the removed backend's own keys (each to its
// ring successor) and no others.
func TestRingBoundedMovement(t *testing.T) {
	backends := backendSet(5)
	full := NewRing(backends, 0)
	keys := testKeys(2000)

	for drop := 0; drop < len(backends); drop++ {
		removed := backends[drop]
		var survivors []string
		for _, b := range backends {
			if b != removed {
				survivors = append(survivors, b)
			}
		}
		shrunk := NewRing(survivors, 0)

		moved := 0
		for _, key := range keys {
			before := full.Owners(key)
			after := shrunk.Owners(key)
			if before[0] != removed {
				// A key the removed backend did not own must not move.
				if after[0] != before[0] {
					t.Fatalf("drop %s: key %s moved %s -> %s despite its owner surviving",
						removed, key, before[0], after[0])
				}
				continue
			}
			moved++
			// The removed backend's keys slide to their ring successor.
			if after[0] != before[1] {
				t.Fatalf("drop %s: key %s moved to %s, want ring successor %s",
					removed, key, after[0], before[1])
			}
		}
		// The moved share matches the removed backend's ownership share: at
		// most a loose multiple of the fair 1/N share (vnode imbalance).
		fair := len(keys) / len(backends)
		if moved > 2*fair {
			t.Fatalf("drop %s: %d of %d keys moved, more than 2x the fair share %d",
				removed, moved, len(keys), fair)
		}
		if moved == 0 {
			t.Fatalf("drop %s: no keys moved — backend owned nothing", removed)
		}
	}
}

// TestRingBalance: with DefaultVnodes, every backend owns a non-degenerate
// share of the key space.
func TestRingBalance(t *testing.T) {
	backends := backendSet(5)
	r := NewRing(backends, 0)
	counts := map[string]int{}
	keys := testKeys(5000)
	for _, key := range keys {
		counts[r.Owners(key)[0]]++
	}
	fair := len(keys) / len(backends)
	for _, b := range backends {
		if counts[b] < fair/3 || counts[b] > fair*3 {
			t.Errorf("backend %s owns %d keys, fair share %d — imbalance beyond 3x", b, counts[b], fair)
		}
	}
}

// TestRingEmptyAndSingle: degenerate member sets behave.
func TestRingEmptyAndSingle(t *testing.T) {
	if owners := NewRing(nil, 0).Owners(testKeys(1)[0]); owners != nil {
		t.Fatalf("empty ring produced owners %v", owners)
	}
	one := NewRing([]string{"solo:1"}, 0)
	for _, key := range testKeys(10) {
		if owners := one.Owners(key); len(owners) != 1 || owners[0] != "solo:1" {
			t.Fatalf("single-backend ring produced %v", owners)
		}
	}
}
