package router

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"uhm/internal/faultinject"
)

// chaosPost sends one run request and classifies the outcome: ok (200),
// structured error (non-200 with an error body or a batch-item error), or a
// protocol violation (the only thing the chaos drills treat as failure).
func chaosPost(t *testing.T, url string, i int) (ok bool, status int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(runBody(i)))
	if err != nil {
		t.Errorf("request %d: transport error through router: %v", i, err)
		return false, 0
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	if resp.StatusCode == http.StatusOK {
		return true, resp.StatusCode
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
		t.Errorf("request %d: unstructured %d response: %s", i, resp.StatusCode, body)
	}
	return false, resp.StatusCode
}

// TestRouterChaosProxyFaults drills the proxy fault site under concurrency:
// injected transport failures eject backends mid-request, probes readmit
// them, and with a local fallback configured no request ever fails.
func TestRouterChaosProxyFaults(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	local := newStubBackend(t)
	rt, ts := newTestRouter(t, Options{
		ProbeInterval: 20 * time.Millisecond,
		Fallback:      local.ts.Config.Handler,
	}, b1, b2)
	rt.Start()
	defer rt.Close()

	plan := faultinject.NewPlan(42, faultinject.Rule{
		Site: faultinject.SiteRouterProxy, Probability: 0.4, Mode: faultinject.ModeError,
	})
	restore := faultinject.Activate(plan)
	defer restore()

	const n = 120
	var wg sync.WaitGroup
	var okCount sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 8 {
				if ok, status := chaosPost(t, ts.URL, i); !ok {
					t.Errorf("request %d failed (%d) despite retry+fallback", i, status)
				} else {
					okCount.Store(i, true)
				}
			}
		}(g)
	}
	wg.Wait()
	if fires := plan.Fires()[faultinject.SiteRouterProxy]; fires == 0 {
		t.Fatal("proxy fault site never fired")
	}
	if rt.retries.Load() == 0 {
		t.Fatal("no retries recorded under injected proxy faults")
	}
}

// TestRouterChaosSlowBackend drills injected proxy delay: slow forwards
// must not fail requests or trip ejection (delay is not death).
func TestRouterChaosSlowBackend(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	rt, ts := newTestRouter(t, Options{}, b1, b2)

	plan := faultinject.NewPlan(7, faultinject.Rule{
		Site: faultinject.SiteRouterProxy, Probability: 0.5,
		Mode: faultinject.ModeDelay, Delay: 10 * time.Millisecond,
	})
	restore := faultinject.Activate(plan)
	defer restore()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < 40; i += 4 {
				if ok, status := chaosPost(t, ts.URL, i); !ok {
					t.Errorf("request %d failed (%d) under delay injection", i, status)
				}
			}
		}(g)
	}
	wg.Wait()
	if plan.Fires()[faultinject.SiteRouterProxy] == 0 {
		t.Fatal("delay site never fired")
	}
	healthy, unhealthy, _, _ := rt.health.view()
	if len(unhealthy) != 0 || len(healthy) != 2 {
		t.Fatalf("slow backends were ejected: healthy=%v unhealthy=%v", healthy, unhealthy)
	}
}

// TestRouterChaosHealthFaults drills the probe fault site: when every probe
// is failing, the whole fleet ejects and the fallback carries the traffic
// with zero failures; when the faults stop, probes readmit the fleet.
func TestRouterChaosHealthFaults(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	local := newStubBackend(t)
	rt, ts := newTestRouter(t, Options{Fallback: local.ts.Config.Handler}, b1, b2)

	plan := faultinject.NewPlan(3, faultinject.Rule{
		Site: faultinject.SiteRouterHealth, Probability: 1, Mode: faultinject.ModeError,
	})
	restore := faultinject.Activate(plan)
	rt.probeOnce()
	if healthy, _, _, _ := rt.health.view(); len(healthy) != 0 {
		restore()
		t.Fatalf("backends still healthy under total probe failure: %v", healthy)
	}
	for i := 0; i < 10; i++ {
		if ok, status := chaosPost(t, ts.URL, i); !ok {
			t.Errorf("request %d failed (%d) with fleet ejected and fallback up", i, status)
		}
	}
	if rt.fallbacks.Load() == 0 {
		restore()
		t.Fatal("fallback never engaged with the fleet ejected")
	}
	restore()

	// Faults gone: probes readmit once backoffs elapse.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rt.probeOnce()
		if healthy, _, _, readmissions := rt.health.view(); len(healthy) == 2 && readmissions >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet not readmitted after probe faults cleared")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if plan.Fires()[faultinject.SiteRouterHealth] == 0 {
		t.Fatal("health fault site never fired")
	}
}

// TestRouterChaosFallbackFault drills the last line of defence: with the
// fleet dead and the fallback path itself faulted, the client still gets a
// structured 503 — never a hang or a broken response.
func TestRouterChaosFallbackFault(t *testing.T) {
	b1 := newStubBackend(t)
	local := newStubBackend(t)
	rt, ts := newTestRouter(t, Options{Fallback: local.ts.Config.Handler}, b1)
	b1.setAbort(true)
	b1.setHealthy(false)
	rt.probeOnce()

	plan := faultinject.NewPlan(9, faultinject.Rule{
		Site: faultinject.SiteRouterFallback, Probability: 1, Mode: faultinject.ModeError,
	})
	restore := faultinject.Activate(plan)
	defer restore()

	for i := 0; i < 5; i++ {
		ok, status := chaosPost(t, ts.URL, i)
		if ok || status != http.StatusServiceUnavailable {
			t.Fatalf("request %d: ok=%v status=%d, want structured 503", i, ok, status)
		}
	}
	if plan.Fires()[faultinject.SiteRouterFallback] == 0 {
		t.Fatal("fallback fault site never fired")
	}
	if served := len(local.programs()); served != 0 {
		t.Fatalf("faulted fallback still served %d programs", served)
	}
}

// TestRouterChaosBatchProxyFaults drills the batch splitter under injected
// proxy faults: sub-batches re-route or fall back, and every item of every
// batch comes back answered.
func TestRouterChaosBatchProxyFaults(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	local := newStubBackend(t)
	rt, ts := newTestRouter(t, Options{
		ProbeInterval: 20 * time.Millisecond,
		Fallback:      local.ts.Config.Handler,
	}, b1, b2)
	rt.Start()
	defer rt.Close()

	plan := faultinject.NewPlan(11, faultinject.Rule{
		Site: faultinject.SiteRouterProxy, Probability: 0.3, Mode: faultinject.ModeError,
	})
	restore := faultinject.Activate(plan)
	defer restore()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				var items []string
				for i := 0; i < 10; i++ {
					items = append(items, strings.TrimSpace(runBody(g*100+round*10+i)))
				}
				body := `{"items":[` + strings.Join(items, ",") + `]}`
				resp, err := http.Post(ts.URL+"/batch/run", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("batch transport error: %v", err)
					continue
				}
				data := readAll(t, resp)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("batch envelope status %d: %s", resp.StatusCode, data)
					continue
				}
				var br struct {
					Items []struct {
						Status int    `json:"status"`
						Error  string `json:"error"`
					} `json:"items"`
				}
				if err := json.Unmarshal([]byte(data), &br); err != nil {
					t.Errorf("malformed batch response: %v", err)
					continue
				}
				if len(br.Items) != 10 {
					t.Errorf("batch dropped items: %d of 10", len(br.Items))
					continue
				}
				for i, it := range br.Items {
					// Every item is answered: 200, or a structured error.
					if it.Status == 0 || (it.Status != http.StatusOK && it.Error == "") {
						t.Errorf("item %d unanswered: %+v", i, it)
					}
					if it.Status != http.StatusOK && it.Status != http.StatusServiceUnavailable {
						t.Errorf("item %d: unexpected status %d (%s)", i, it.Status, it.Error)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if plan.Fires()[faultinject.SiteRouterProxy] == 0 {
		t.Fatal("proxy fault site never fired during batch chaos")
	}
}
