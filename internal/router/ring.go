package router

import (
	"fmt"
	"hash/fnv"
	"sort"

	"uhm/internal/service"
)

// DefaultVnodes is the virtual-node count per backend.  128 points per
// backend keeps the largest/smallest ownership share within a few percent
// of each other for small fleets while the ring stays tiny (N*128 points).
const DefaultVnodes = 128

type ringPoint struct {
	hash    uint64
	backend int // index into backends
}

// Ring is an immutable consistent-hash ring over a backend set.  Health is
// deliberately not the ring's concern: Owners returns every backend in ring
// order and the caller skips unhealthy ones, which is exactly what bounds
// key movement — an ejected backend's keys slide to their ring successors
// while every other key's owner is unchanged.
type Ring struct {
	backends []string
	points   []ringPoint
}

// NewRing builds a ring of vnodes points per backend (DefaultVnodes if
// vnodes <= 0).  Backend order does not matter: placement depends only on
// the set of backend names.
func NewRing(backends []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		backends: append([]string(nil), backends...),
		points:   make([]ringPoint, 0, len(backends)*vnodes),
	}
	sort.Strings(r.backends)
	for i, b := range r.backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", b, v)), backend: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// Backends returns the member set, sorted.
func (r *Ring) Backends() []string { return r.backends }

// Owners returns every backend in ring order starting at the key's
// successor point, deduplicated: element 0 owns the key, element 1 is where
// the key moves if its owner is ejected, and so on through the whole set.
func (r *Ring) Owners(key service.Key) []string {
	return r.OwnersFromHash(KeyHash(key))
}

// OwnersFromHash is Owners for a pre-hashed placement value (used to spread
// un-keyed requests such as conformance checks by body hash).
func (r *Ring) OwnersFromHash(h uint64) []string {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, len(r.backends))
	seen := make([]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(owners) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			owners = append(owners, r.backends[p.backend])
		}
	}
	return owners
}

// KeyHash collapses a registry key to its ring position.  The key's hash
// field is already a sha256 of the program source, so folding in the level
// tag and re-hashing keeps placements of the same source at different
// levels independent.
func KeyHash(key service.Key) uint64 {
	h := fnv.New64a()
	h.Write(key.Hash[:])
	h.Write([]byte{byte(key.Level)})
	return h.Sum64()
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
