// Package router fans a uhmd-shaped HTTP API out over a fleet of uhmd
// backends.  Placement is content-addressed: each request's program key —
// the same (sha256(source), level) key the service registry builds under —
// is consistent-hashed onto a ring of virtual nodes, so byte-identical
// programs always land on the same backend and the fleet as a whole builds
// each distinct artifact exactly once.  Membership changes move only the
// keys owned by the backend that changed: ejecting one of N backends
// re-routes its own key share to ring successors and nothing else.
//
// Backends are health-checked (periodic /healthz probes; a transport
// failure during proxying ejects immediately, probes readmit with
// exponential backoff), capped per-backend in in-flight requests, and
// backed by an optional local fallback handler that serves single-node when
// every backend is down.  Batch envelopes are split per owner, forwarded
// concurrently, and merged back in request order, so batching and routing
// compose without giving up single-build placement.
//
// The router holds every request body and every backend response fully in
// memory (bodies are bounded), which is what makes its retries safe: a
// request that died with its backend is replayed byte-identical against the
// next ring owner, and the client never observes the failure.
package router
