package router

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"

	"uhm/internal/service"
)

// FleetStats is the fleet-wide roll-up of every reachable backend's service
// counters.  Builds is the one CI gates on: with consistent-hash placement
// it must equal the number of distinct (source, level) programs the fleet
// has seen, however many backends served them.
type FleetStats struct {
	Backends    int   `json:"backends"`
	Reachable   int   `json:"reachable"`
	Workers     int   `json:"workers"`
	Builds      int64 `json:"builds"`
	BuildErrors int64 `json:"build_errors"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	WarmLoads   int64 `json:"warm_loads"`
	Evictions   int64 `json:"evictions"`
	Quarantines int64 `json:"quarantines"`
	Overloads   int64 `json:"overloads"`
	Panics      int64 `json:"panics"`
}

// RouterStats are the router's own counters, reported beside the fleet
// roll-up.
type RouterStats struct {
	Healthy      []string `json:"healthy"`
	Unhealthy    []string `json:"unhealthy"`
	Proxied      int64    `json:"proxied"`
	Retries      int64    `json:"retries"`
	Fallbacks    int64    `json:"fallbacks"`
	Rejected     int64    `json:"rejected"`
	Ejections    int64    `json:"ejections"`
	Readmissions int64    `json:"readmissions"`
}

// backendStatsEnvelope mirrors the uhmd /v1/stats response shape
// (service.Stats marshals under its Go field names).
type backendStatsEnvelope struct {
	Workers int           `json:"workers"`
	Stats   service.Stats `json:"stats"`
}

// handleStats polls every backend (healthy or not — a stats scrape is
// cheap and an "unhealthy" backend may still answer) and aggregates.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	backends := rt.ring.Backends()
	type scrape struct {
		raw json.RawMessage
		env backendStatsEnvelope
		ok  bool
	}
	scrapes := make([]scrape, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), rt.probeTO)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, backendURL(b, "/v1/stats"), nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK {
				return
			}
			if err := json.Unmarshal(data, &scrapes[i].env); err != nil {
				return
			}
			scrapes[i].raw = data
			scrapes[i].ok = true
		}(i, b)
	}
	wg.Wait()

	fleet := FleetStats{Backends: len(backends)}
	perBackend := make(map[string]json.RawMessage, len(backends))
	for i, b := range backends {
		if !scrapes[i].ok {
			perBackend[b] = json.RawMessage(`{"error":"unreachable"}`)
			continue
		}
		fleet.Reachable++
		fleet.Workers += scrapes[i].env.Workers
		st := scrapes[i].env.Stats
		fleet.Builds += st.Registry.Builds
		fleet.BuildErrors += st.Registry.BuildErrors
		fleet.Hits += st.Registry.Hits
		fleet.Misses += st.Registry.Misses
		fleet.Entries += st.Registry.Entries
		fleet.Bytes += st.Registry.Bytes
		fleet.WarmLoads += st.Registry.WarmLoads
		fleet.Evictions += st.Registry.Evictions
		fleet.Quarantines += st.Registry.Quarantines
		fleet.Overloads += st.Requests.Overloads
		fleet.Panics += st.Requests.Panics
		perBackend[b] = scrapes[i].raw
	}

	healthy, unhealthy, ejections, readmissions := rt.health.view()
	if healthy == nil {
		healthy = []string{}
	}
	if unhealthy == nil {
		unhealthy = []string{}
	}
	writeRouterJSON(w, http.StatusOK, struct {
		Fleet    FleetStats                 `json:"fleet"`
		Router   RouterStats                `json:"router"`
		Backends map[string]json.RawMessage `json:"backends"`
	}{
		Fleet: fleet,
		Router: RouterStats{
			Healthy:      healthy,
			Unhealthy:    unhealthy,
			Proxied:      rt.proxied.Load(),
			Retries:      rt.retries.Load(),
			Fallbacks:    rt.fallbacks.Load(),
			Rejected:     rt.rejected.Load(),
			Ejections:    ejections,
			Readmissions: readmissions,
		},
		Backends: perBackend,
	})
}
