package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"uhm/internal/faultinject"
)

// rawBatch keeps batch items opaque: the router splits and merges envelopes
// without understanding (or re-encoding) item payloads beyond the key
// probe, so backend wire-format evolution never involves the router.
type rawBatch struct {
	Items []json.RawMessage `json:"items"`
}

type rawBatchResponse struct {
	Items  []json.RawMessage `json:"items"`
	Failed int               `json:"failed"`
}

// handleBatch splits a batch envelope by key owner, forwards the per-owner
// sub-batches concurrently, and merges the per-item answers back into
// request order.  Placement is per item, so a batch mixing many programs
// still builds each of them on exactly one backend fleet-wide.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var env rawBatch
	if err := json.Unmarshal(body, &env); err != nil || len(env.Items) == 0 {
		// Malformed or empty envelope: one backend answers the whole thing
		// with the same error a single node would give.
		rt.forward(w, r, body, rt.ring.OwnersFromHash(bodyHash(body)))
		return
	}

	groups := make(map[string][]int)
	for i, item := range env.Items {
		h, keyed := placementHash(item)
		if !keyed {
			h = bodyHash(item)
		}
		owner := rt.firstHealthy(rt.ring.OwnersFromHash(h))
		groups[owner] = append(groups[owner], i)
	}

	results := make([]json.RawMessage, len(env.Items))
	var failed atomic.Int64
	var wg sync.WaitGroup
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner string, idxs []int) {
			defer wg.Done()
			rt.sendSubBatch(r, env.Items, idxs, owner, results, &failed, len(rt.ring.Backends())+1)
		}(owner, idxs)
	}
	wg.Wait()

	rt.proxied.Add(1)
	writeRouterJSON(w, http.StatusOK, struct {
		Items  []json.RawMessage `json:"items"`
		Failed int64             `json:"failed"`
	}{Items: results, Failed: failed.Load()})
}

// firstHealthy picks the first healthy backend of an owner list ("" when
// the whole fleet is down, which routes the group to the fallback).
func (rt *Router) firstHealthy(owners []string) string {
	for _, b := range owners {
		if rt.health.isHealthy(b) {
			return b
		}
	}
	return ""
}

// sendSubBatch delivers one owner's items, re-splitting across the ring's
// successors when the owner dies mid-flight.  budget bounds the recursion
// (each level ejects at least one backend, so backends+1 always suffices);
// every exit fills results[idx] for each idx — no item is ever dropped.
func (rt *Router) sendSubBatch(r *http.Request, items []json.RawMessage, idxs []int, owner string, results []json.RawMessage, failed *atomic.Int64, budget int) {
	if owner == "" || budget <= 0 {
		rt.fallbackSubBatch(r, items, idxs, results, failed)
		return
	}
	sub, err := json.Marshal(rawBatch{Items: pick(items, idxs)})
	if err != nil {
		rt.failGroup(idxs, results, failed, http.StatusInternalServerError, err.Error())
		return
	}
	resp, err := rt.try(r, owner, sub)
	if err == errBackendSaturated {
		rt.rejected.Add(1)
		rt.failGroup(idxs, results, failed, http.StatusServiceUnavailable,
			fmt.Sprintf("backend %s at in-flight cap", owner))
		return
	}
	if err != nil {
		// The owner died with our sub-batch: eject it and re-place every
		// item on the survivors (they may now split across several owners).
		if rt.health.eject(owner, time.Now()) {
			rt.logf("router: backend %s ejected (%v)", owner, err)
		}
		rt.retries.Add(1)
		regroups := make(map[string][]int)
		for _, idx := range idxs {
			h, keyed := placementHash(items[idx])
			if !keyed {
				h = bodyHash(items[idx])
			}
			next := rt.firstHealthy(rt.ring.OwnersFromHash(h))
			regroups[next] = append(regroups[next], idx)
		}
		for next, nidxs := range regroups {
			rt.sendSubBatch(r, items, nidxs, next, results, failed, budget-1)
		}
		return
	}
	if resp.status != http.StatusOK {
		// An envelope-level backend answer (overload, validation): every
		// item in the group inherits it, siblings in other groups carry on.
		rt.failGroup(idxs, results, failed, resp.status, envelopeError(resp.body))
		return
	}
	var sr rawBatchResponse
	if err := json.Unmarshal(resp.body, &sr); err != nil || len(sr.Items) != len(idxs) {
		rt.failGroup(idxs, results, failed, http.StatusBadGateway,
			fmt.Sprintf("backend %s answered a malformed batch envelope", owner))
		return
	}
	for k, idx := range idxs {
		results[idx] = sr.Items[k]
	}
	failed.Add(int64(sr.Failed))
}

// fallbackSubBatch serves a group locally when no backend can: the
// sub-batch is replayed through the fallback handler into an in-memory
// response and merged like any backend answer.
func (rt *Router) fallbackSubBatch(r *http.Request, items []json.RawMessage, idxs []int, results []json.RawMessage, failed *atomic.Int64) {
	if err := faultinject.Fire(faultinject.SiteRouterFallback); err != nil {
		rt.failGroup(idxs, results, failed, http.StatusServiceUnavailable, "injected fallback fault: "+err.Error())
		return
	}
	if rt.fallback == nil {
		rt.failGroup(idxs, results, failed, http.StatusServiceUnavailable, "no healthy backends")
		return
	}
	rt.fallbacks.Add(1)
	sub, err := json.Marshal(rawBatch{Items: pick(items, idxs)})
	if err != nil {
		rt.failGroup(idxs, results, failed, http.StatusInternalServerError, err.Error())
		return
	}
	req := r.Clone(r.Context())
	req.Body = io.NopCloser(bytes.NewReader(sub))
	req.ContentLength = int64(len(sub))
	var mem memoryResponse
	rt.fallback.ServeHTTP(&mem, req)
	if mem.code() != http.StatusOK {
		rt.failGroup(idxs, results, failed, mem.code(), envelopeError(mem.buf.Bytes()))
		return
	}
	var sr rawBatchResponse
	if err := json.Unmarshal(mem.buf.Bytes(), &sr); err != nil || len(sr.Items) != len(idxs) {
		rt.failGroup(idxs, results, failed, http.StatusBadGateway, "fallback answered a malformed batch envelope")
		return
	}
	for k, idx := range idxs {
		results[idx] = sr.Items[k]
	}
	failed.Add(int64(sr.Failed))
}

// failGroup fills a group's result slots with a synthesized per-item error
// matching the backend batch item shape.
func (rt *Router) failGroup(idxs []int, results []json.RawMessage, failed *atomic.Int64, status int, msg string) {
	item, err := json.Marshal(struct {
		Status int    `json:"status"`
		Error  string `json:"error"`
	}{Status: status, Error: msg})
	if err != nil {
		item = []byte(fmt.Sprintf(`{"status":%d,"error":"router error"}`, status))
	}
	for _, idx := range idxs {
		results[idx] = item
	}
	failed.Add(int64(len(idxs)))
}

// envelopeError extracts the {"error": ...} text of a backend error body
// (the raw body if it is not that shape).
func envelopeError(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
		return e.Error
	}
	return string(body)
}

func pick(items []json.RawMessage, idxs []int) []json.RawMessage {
	out := make([]json.RawMessage, len(idxs))
	for k, idx := range idxs {
		out[k] = items[idx]
	}
	return out
}

// memoryResponse is the in-memory http.ResponseWriter the fallback
// sub-batch path renders into.
type memoryResponse struct {
	hdr    http.Header
	status int
	buf    bytes.Buffer
}

func (m *memoryResponse) Header() http.Header {
	if m.hdr == nil {
		m.hdr = make(http.Header)
	}
	return m.hdr
}

func (m *memoryResponse) Write(b []byte) (int, error) {
	if m.status == 0 {
		m.status = http.StatusOK
	}
	return m.buf.Write(b)
}

func (m *memoryResponse) WriteHeader(status int) {
	if m.status == 0 {
		m.status = status
	}
}

func (m *memoryResponse) code() int {
	if m.status == 0 {
		return http.StatusOK
	}
	return m.status
}
