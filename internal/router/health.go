package router

import (
	"sync"
	"time"
)

const (
	// defaultProbeInterval paces the health loop; defaultProbeTimeout
	// bounds each /healthz round trip.
	defaultProbeInterval = 250 * time.Millisecond
	defaultProbeTimeout  = time.Second
	// Eject backoff: first readmission probe after initialBackoff, doubling
	// to maxBackoff while the backend stays dead.  A backend that flaps is
	// probed less and less often instead of hammering a corpse.
	initialBackoff = 250 * time.Millisecond
	maxBackoff     = 8 * time.Second
)

type backendHealth struct {
	healthy   bool
	backoff   time.Duration
	nextProbe time.Time
}

// healthSet tracks per-backend liveness.  Ejection happens two ways — a
// failed periodic probe, or a transport failure observed while proxying
// (immediate, no waiting for the next probe) — and readmission happens
// exactly one way: a successful probe.  A backend therefore never receives
// traffic again until it has answered /healthz at least once.
type healthSet struct {
	mu    sync.Mutex
	state map[string]*backendHealth

	ejections    int64
	readmissions int64
}

func newHealthSet(backends []string) *healthSet {
	h := &healthSet{state: make(map[string]*backendHealth, len(backends))}
	for _, b := range backends {
		// Start healthy: the router is useful before the first probe round,
		// and a dead backend costs one ejecting transport failure.
		h.state[b] = &backendHealth{healthy: true}
	}
	return h
}

func (h *healthSet) isHealthy(backend string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.state[backend]
	return ok && st.healthy
}

// eject marks a backend down and schedules its readmission probe with
// exponential backoff.  Reports whether this call transitioned it.
func (h *healthSet) eject(backend string, now time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.state[backend]
	if !ok {
		return false
	}
	if st.backoff == 0 {
		st.backoff = initialBackoff
	} else if st.backoff < maxBackoff {
		st.backoff = min(st.backoff*2, maxBackoff)
	}
	st.nextProbe = now.Add(st.backoff)
	if !st.healthy {
		return false
	}
	st.healthy = false
	h.ejections++
	return true
}

// readmit marks a backend up after a successful probe and resets its
// backoff.  Reports whether this call transitioned it.
func (h *healthSet) readmit(backend string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.state[backend]
	if !ok {
		return false
	}
	st.backoff = 0
	st.nextProbe = time.Time{}
	if st.healthy {
		return false
	}
	st.healthy = true
	h.readmissions++
	return true
}

// due returns the backends whose next probe time has arrived: every healthy
// backend each round (liveness), and unhealthy backends once their backoff
// has elapsed (readmission).
func (h *healthSet) due(now time.Time) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for b, st := range h.state {
		if st.healthy || !now.Before(st.nextProbe) {
			out = append(out, b)
		}
	}
	return out
}

// view snapshots membership for /v1/stats.
func (h *healthSet) view() (healthy, unhealthy []string, ejections, readmissions int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for b, st := range h.state {
		if st.healthy {
			healthy = append(healthy, b)
		} else {
			unhealthy = append(unhealthy, b)
		}
	}
	return healthy, unhealthy, h.ejections, h.readmissions
}
