package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"uhm/internal/service"
)

// stubBackend speaks just enough of the uhmd wire API to test routing:
// it records which programs it "built" (first sight of a distinct
// workload/source), answers batches per item, and can be made unhealthy or
// made to abort connections mid-request.
type stubBackend struct {
	ts *httptest.Server

	mu     sync.Mutex
	builds map[string]int // program identity -> times seen
	runs   int

	healthy bool
	abort   bool // abort every data connection (simulates a dying process)
	block   chan struct{}
	started chan struct{} // signalled when a data request enters the handler
}

func newStubBackend(t *testing.T) *stubBackend {
	t.Helper()
	sb := &stubBackend{builds: map[string]int{}, healthy: true}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		sb.mu.Lock()
		ok := sb.healthy
		sb.mu.Unlock()
		if !ok {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		sb.gate()
		var req struct{ Workload, Source string }
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, `{"error":"malformed"}`, http.StatusBadRequest)
			return
		}
		item := sb.serveOne(req.Workload, req.Source)
		data, _ := json.Marshal(item)
		if item.Status != http.StatusOK {
			w.WriteHeader(item.Status)
		}
		_, _ = w.Write(data)
	})
	mux.HandleFunc("POST /batch/run", func(w http.ResponseWriter, r *http.Request) {
		sb.gate()
		var req struct {
			Items []struct{ Workload, Source string } `json:"items"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Items) == 0 {
			http.Error(w, `{"error":"malformed batch"}`, http.StatusBadRequest)
			return
		}
		resp := struct {
			Items  []stubItem `json:"items"`
			Failed int        `json:"failed"`
		}{}
		for _, it := range req.Items {
			item := sb.serveOne(it.Workload, it.Source)
			if item.Status != http.StatusOK {
				resp.Failed++
			}
			resp.Items = append(resp.Items, item)
		}
		_ = json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		sb.mu.Lock()
		var st service.Stats
		st.Registry.Builds = int64(len(sb.builds))
		st.Registry.Entries = len(sb.builds)
		st.Registry.Hits = int64(sb.runs - len(sb.builds))
		sb.mu.Unlock()
		_ = json.NewEncoder(w).Encode(struct {
			Workers int           `json:"workers"`
			Stats   service.Stats `json:"stats"`
		}{Workers: 2, Stats: st})
	})
	sb.ts = httptest.NewServer(mux)
	t.Cleanup(sb.ts.Close)
	return sb
}

type stubItem struct {
	Status int             `json:"status"`
	Report *map[string]any `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func (sb *stubBackend) gate() {
	sb.mu.Lock()
	abort, block, started := sb.abort, sb.block, sb.started
	sb.mu.Unlock()
	if started != nil {
		select {
		case started <- struct{}{}:
		default:
		}
	}
	if block != nil {
		<-block
	}
	if abort {
		panic(http.ErrAbortHandler)
	}
}

func (sb *stubBackend) serveOne(workload, source string) stubItem {
	id := workload
	if id == "" {
		id = "src:" + source
	}
	if strings.Contains(source, "bad") || workload == "no-such" {
		return stubItem{Status: http.StatusUnprocessableEntity, Error: "bad program"}
	}
	sb.mu.Lock()
	sb.builds[id]++
	sb.runs++
	sb.mu.Unlock()
	rep := map[string]any{"program": id, "backend": sb.ts.URL}
	return stubItem{Status: http.StatusOK, Report: &rep}
}

func (sb *stubBackend) setHealthy(ok bool) {
	sb.mu.Lock()
	sb.healthy = ok
	sb.mu.Unlock()
}

func (sb *stubBackend) setAbort(ab bool) {
	sb.mu.Lock()
	sb.abort = ab
	sb.mu.Unlock()
}

func (sb *stubBackend) programs() map[string]int {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	out := make(map[string]int, len(sb.builds))
	for k, v := range sb.builds {
		out[k] = v
	}
	return out
}

func newTestRouter(t *testing.T, opts Options, backends ...*stubBackend) (*Router, *httptest.Server) {
	t.Helper()
	for _, sb := range backends {
		opts.Backends = append(opts.Backends, sb.ts.URL)
	}
	rt := New(opts)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return rt, ts
}

func postBody(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := fmt.Fprint(&buf, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, []byte(buf.String())
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// runBody builds a distinct source-program run request.
func runBody(i int) string {
	return fmt.Sprintf(`{"source":"program p%d; begin x := %d end."}`, i, i)
}

// TestRouterPlacesByKey: every distinct program lands on exactly one
// backend, and resending it lands on the same one — the fleet-wide
// single-build property.
func TestRouterPlacesByKey(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	_, ts := newTestRouter(t, Options{}, b1, b2)

	const n = 40
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			status, body := postBody(t, ts.URL+"/v1/run", runBody(i))
			if status != http.StatusOK {
				t.Fatalf("run %d: status %d: %s", i, status, body)
			}
		}
	}
	p1, p2 := b1.programs(), b2.programs()
	if len(p1)+len(p2) != n {
		t.Fatalf("fleet built %d+%d distinct programs, want %d", len(p1), len(p2), n)
	}
	for id := range p1 {
		if _, dup := p2[id]; dup {
			t.Fatalf("program %s built on both backends", id)
		}
	}
	if len(p1) == 0 || len(p2) == 0 {
		t.Fatalf("placement degenerate: %d vs %d programs", len(p1), len(p2))
	}
}

// TestRouterRetriesDeadBackend: a backend that aborts its connections is
// ejected and its keys move to the survivor with no client-visible failure.
func TestRouterRetriesDeadBackend(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	rt, ts := newTestRouter(t, Options{}, b1, b2)

	b1.setAbort(true)
	b1.setHealthy(false)
	for i := 0; i < 30; i++ {
		status, body := postBody(t, ts.URL+"/v1/run", runBody(i))
		if status != http.StatusOK {
			t.Fatalf("run %d failed through retry: %d %s", i, status, body)
		}
	}
	if got := len(b2.programs()); got != 30 {
		t.Fatalf("survivor served %d programs, want all 30", got)
	}
	healthy, unhealthy, ejections, _ := rt.health.view()
	if len(unhealthy) != 1 || len(healthy) != 1 || ejections == 0 {
		t.Fatalf("health after death: healthy=%v unhealthy=%v ejections=%d", healthy, unhealthy, ejections)
	}
}

// TestRouterProbeEjectsAndReadmits: the probe loop ejects a backend whose
// /healthz fails and readmits it — and only it — when it recovers.
func TestRouterProbeEjectsAndReadmits(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	rt, _ := newTestRouter(t, Options{}, b1, b2)

	b1.setHealthy(false)
	rt.probeOnce()
	if rt.health.isHealthy(b1.ts.URL) || !rt.health.isHealthy(b2.ts.URL) {
		t.Fatal("probe did not eject exactly the failing backend")
	}

	b1.setHealthy(true)
	// Readmission waits out the backoff; the ejected backend must not come
	// back before it.
	rt.probeOnce()
	if rt.health.isHealthy(b1.ts.URL) {
		t.Fatal("backend readmitted before its backoff elapsed")
	}
	time.Sleep(initialBackoff + 50*time.Millisecond)
	rt.probeOnce()
	if !rt.health.isHealthy(b1.ts.URL) {
		t.Fatal("recovered backend not readmitted after backoff")
	}
}

// TestRouterFallbackWhenFleetDown: with every backend dead, requests are
// served by the local fallback handler instead of failing.
func TestRouterFallbackWhenFleetDown(t *testing.T) {
	b1 := newStubBackend(t)
	local := newStubBackend(t) // reuse the stub handler as the "local" node
	rt, ts := newTestRouter(t, Options{Fallback: local.ts.Config.Handler}, b1)

	b1.setAbort(true)
	b1.setHealthy(false)
	for i := 0; i < 5; i++ {
		status, body := postBody(t, ts.URL+"/v1/run", runBody(i))
		if status != http.StatusOK {
			t.Fatalf("fallback run %d: %d %s", i, status, body)
		}
	}
	if got := len(local.programs()); got != 5 {
		t.Fatalf("fallback served %d programs, want 5", got)
	}
	if rt.fallbacks.Load() != 5 {
		t.Fatalf("fallbacks counter = %d, want 5", rt.fallbacks.Load())
	}
}

// TestRouterNoFallback503: with the fleet down and no fallback, the router
// answers a structured 503 with Retry-After.
func TestRouterNoFallback503(t *testing.T) {
	b1 := newStubBackend(t)
	_, ts := newTestRouter(t, Options{}, b1)
	b1.setAbort(true)
	b1.setHealthy(false)

	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(runBody(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("unstructured 503 body (err=%v)", err)
	}
}

// TestRouterInflightCap: a saturated backend sheds with 503 instead of
// queueing unboundedly or spilling onto the wrong backend.
func TestRouterInflightCap(t *testing.T) {
	b1 := newStubBackend(t)
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	b1.mu.Lock()
	b1.block = release
	b1.started = entered
	b1.mu.Unlock()
	_, ts := newTestRouter(t, Options{MaxInflight: 1}, b1)

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(runBody(0)))
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	// The first request is inside the backend handler, so the router's one
	// in-flight slot is definitely held.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the backend")
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(runBody(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request status %d, want 503 at the cap", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("cap 503 without Retry-After")
	}
	close(release)
	if status := <-firstDone; status != http.StatusOK {
		t.Fatalf("capped-out request finished %d after release", status)
	}
}

// TestRouterBatchSplitAndMerge: a batch spanning both backends comes back
// in order with per-item statuses, and each program is built exactly once
// fleet-wide.
func TestRouterBatchSplitAndMerge(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	_, ts := newTestRouter(t, Options{}, b1, b2)

	var items []string
	for i := 0; i < 20; i++ {
		items = append(items, strings.TrimSpace(runBody(i)))
	}
	items = append(items, `{"source":"bad program"}`) // per-item failure
	body := `{"items":[` + strings.Join(items, ",") + `]}`

	status, data := postBody(t, ts.URL+"/batch/run", body)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, data)
	}
	var resp struct {
		Items []struct {
			Status int            `json:"status"`
			Report map[string]any `json:"report"`
			Error  string         `json:"error"`
		} `json:"items"`
		Failed int `json:"failed"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 21 || resp.Failed != 1 {
		t.Fatalf("items=%d failed=%d, want 21/1", len(resp.Items), resp.Failed)
	}
	for i := 0; i < 20; i++ {
		it := resp.Items[i]
		if it.Status != http.StatusOK {
			t.Fatalf("item %d: status %d (%s)", i, it.Status, it.Error)
		}
		want := fmt.Sprintf("src:program p%d; begin x := %d end.", i, i)
		if it.Report["program"] != want {
			t.Fatalf("item %d out of order: program %v, want %s", i, it.Report["program"], want)
		}
	}
	if resp.Items[20].Status != http.StatusUnprocessableEntity {
		t.Fatalf("bad item status %d, want 422", resp.Items[20].Status)
	}
	p1, p2 := b1.programs(), b2.programs()
	if len(p1) == 0 || len(p2) == 0 {
		t.Fatalf("batch not split: %d vs %d programs", len(p1), len(p2))
	}
	if len(p1)+len(p2) != 20 {
		t.Fatalf("fleet built %d programs from the batch, want 20", len(p1)+len(p2))
	}
}

// TestRouterBatchSurvivesBackendDeath: a backend dying mid-batch re-routes
// its sub-batch to the survivor; the client sees every item succeed.
func TestRouterBatchSurvivesBackendDeath(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	_, ts := newTestRouter(t, Options{}, b1, b2)

	b1.setAbort(true) // still "healthy" per flag: death observed in-flight
	var items []string
	for i := 0; i < 20; i++ {
		items = append(items, strings.TrimSpace(runBody(i)))
	}
	body := `{"items":[` + strings.Join(items, ",") + `]}`
	status, data := postBody(t, ts.URL+"/batch/run", body)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, data)
	}
	var resp struct {
		Items []struct {
			Status int `json:"status"`
		} `json:"items"`
		Failed int `json:"failed"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Failed != 0 {
		t.Fatalf("batch lost %d items to a backend death: %s", resp.Failed, data)
	}
	for i, it := range resp.Items {
		if it.Status != http.StatusOK {
			t.Fatalf("item %d status %d after re-route", i, it.Status)
		}
	}
	if got := len(b2.programs()); got != 20 {
		t.Fatalf("survivor served %d programs, want all 20", got)
	}
}

// TestRouterStatsAggregation: /v1/stats sums backend registries into the
// fleet roll-up CI gates on.
func TestRouterStatsAggregation(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	_, ts := newTestRouter(t, Options{}, b1, b2)

	for i := 0; i < 10; i++ {
		if status, body := postBody(t, ts.URL+"/v1/run", runBody(i)); status != http.StatusOK {
			t.Fatalf("run %d: %d %s", i, status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var agg struct {
		Fleet  FleetStats `json:"fleet"`
		Router RouterStats `json:"router"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	if agg.Fleet.Builds != 10 {
		t.Fatalf("fleet builds = %d, want 10", agg.Fleet.Builds)
	}
	if agg.Fleet.Reachable != 2 || agg.Fleet.Backends != 2 || agg.Fleet.Workers != 4 {
		t.Fatalf("fleet shape = %+v", agg.Fleet)
	}
	if agg.Router.Proxied != 10 || len(agg.Router.Healthy) != 2 {
		t.Fatalf("router counters = %+v", agg.Router)
	}
}

// TestRouterHealthzAlwaysUp: the router's own health endpoint answers even
// with the whole fleet dark (the router is alive; the fleet state is data).
func TestRouterHealthzAlwaysUp(t *testing.T) {
	b1 := newStubBackend(t)
	rt, ts := newTestRouter(t, Options{}, b1)
	b1.setHealthy(false)
	rt.probeOnce()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router healthz %d with fleet down", resp.StatusCode)
	}
}
