package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"uhm/internal/core"
	"uhm/internal/faultinject"
	"uhm/internal/service"
	"uhm/internal/workload"
)

// maxRequestBytes bounds any request body the router will buffer.  It
// matches the uhmd batch bound: the router must be able to hold the largest
// request a backend would accept, because buffering is what makes retries
// byte-identical.
const maxRequestBytes = 8 << 20

// errBackendSaturated distinguishes a per-backend in-flight cap rejection
// from a transport failure: saturation sheds the request with 503 and does
// NOT eject the backend or retry elsewhere (retrying would defeat placement
// and melt the next backend too).
var errBackendSaturated = errors.New("backend at in-flight cap")

// Options configure a Router.
type Options struct {
	// Backends are the uhmd base addresses ("host:port" or full URLs).
	Backends []string
	// Vnodes is the virtual-node count per backend (DefaultVnodes if 0).
	Vnodes int
	// ProbeInterval paces the health loop; ProbeTimeout bounds each probe.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// MaxInflight caps concurrent proxied requests per backend; beyond it
	// the router sheds with 503 + Retry-After.  0 selects 64.
	MaxInflight int
	// Fallback, when set, serves requests locally when no backend is
	// healthy (single-node degradation instead of an outage).
	Fallback http.Handler
	// Client overrides the proxy HTTP client (tests; nil selects a default
	// with sane connection pooling).
	Client *http.Client
	// Logf receives membership transitions and fallback events (nil
	// discards them).
	Logf func(format string, args ...any)
}

// Router is the fleet front end: an http.Handler that speaks the same API
// as a single uhmd and places every request on the backend that owns its
// program key.
type Router struct {
	ring     *Ring
	health   *healthSet
	client   *http.Client
	fallback http.Handler
	inflight map[string]chan struct{}
	probeTO  time.Duration
	interval time.Duration
	logf     func(string, ...any)
	mux      *http.ServeMux

	proxied   atomic.Int64
	retries   atomic.Int64
	fallbacks atomic.Int64
	rejected  atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
	done     chan struct{}
}

// New builds a Router over the backend set.  Call Start to begin health
// probing and Close to stop it.
func New(opts Options) *Router {
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = defaultProbeInterval
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = defaultProbeTimeout
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 64
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: opts.MaxInflight,
		}}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	rt := &Router{
		ring:     NewRing(opts.Backends, opts.Vnodes),
		health:   newHealthSet(opts.Backends),
		client:   opts.Client,
		fallback: opts.Fallback,
		inflight: make(map[string]chan struct{}, len(opts.Backends)),
		probeTO:  opts.ProbeTimeout,
		interval: opts.ProbeInterval,
		logf:     opts.Logf,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, b := range rt.ring.Backends() {
		rt.inflight[b] = make(chan struct{}, opts.MaxInflight)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/workloads", rt.handleAny)
	mux.HandleFunc("POST /v1/run", rt.handleKeyed)
	mux.HandleFunc("POST /v1/compare", rt.handleKeyed)
	mux.HandleFunc("POST /v1/conformance", rt.handleSpread)
	mux.HandleFunc("POST /v1/experiments", rt.handleSpread)
	mux.HandleFunc("POST /batch/run", rt.handleBatch)
	mux.HandleFunc("POST /batch/compare", rt.handleBatch)
	rt.mux = mux
	return rt
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Start launches the health probe loop (with one immediate round, so a
// backend that is down at boot is ejected before it eats live traffic).
func (rt *Router) Start() {
	if !rt.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(rt.done)
		rt.probeOnce()
		t := time.NewTicker(rt.interval)
		defer t.Stop()
		for {
			select {
			case <-rt.stop:
				return
			case <-t.C:
				rt.probeOnce()
			}
		}
	}()
}

// Close stops the probe loop.  In-flight proxied requests are unaffected.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	if rt.started.Load() {
		<-rt.done
	}
}

// probeOnce probes every due backend concurrently and applies the verdicts.
func (rt *Router) probeOnce() {
	due := rt.health.due(time.Now())
	var wg sync.WaitGroup
	for _, b := range due {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			if rt.probe(b) {
				if rt.health.readmit(b) {
					rt.logf("router: backend %s readmitted", b)
				}
			} else if rt.health.eject(b, time.Now()) {
				rt.logf("router: backend %s ejected (probe failed)", b)
			}
		}(b)
	}
	wg.Wait()
}

func (rt *Router) probe(backend string) bool {
	if err := faultinject.Fire(faultinject.SiteRouterHealth); err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.probeTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backendURL(backend, "/healthz"), nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

func backendURL(backend, path string) string {
	if len(backend) >= 7 && (backend[:7] == "http://" || (len(backend) >= 8 && backend[:8] == "https://")) {
		return backend + path
	}
	return "http://" + backend + path
}

// keyProbe is the lenient decode the router applies to run/compare bodies:
// just enough to place the request.  Full validation stays on the backend.
type keyProbe struct {
	Workload string `json:"workload"`
	Source   string `json:"source"`
	Level    string `json:"level"`
}

// placementHash resolves a body to its ring position.  ok is false when the
// body does not determine a key (unknown workload, bad level, malformed
// JSON); such requests still need a backend — to produce the right error —
// so the caller falls back to body-hash spreading.
func placementHash(body []byte) (uint64, bool) {
	var p keyProbe
	if err := json.Unmarshal(body, &p); err != nil {
		return 0, false
	}
	src := p.Source
	if p.Workload != "" {
		ws, err := workload.Source(p.Workload)
		if err != nil {
			return 0, false
		}
		src = ws
	}
	if src == "" {
		return 0, false
	}
	level := core.LevelStack
	if p.Level != "" {
		l, err := core.ParseLevel(p.Level)
		if err != nil {
			return 0, false
		}
		level = l
	}
	return KeyHash(service.KeyOf(src, level)), true
}

func bodyHash(body []byte) uint64 {
	h := hash64(string(body))
	return h
}

// handleKeyed places /v1/run and /v1/compare by program key.
func (rt *Router) handleKeyed(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	h, keyed := placementHash(body)
	if !keyed {
		h = bodyHash(body)
	}
	rt.forward(w, r, body, rt.ring.OwnersFromHash(h))
}

// handleSpread places un-keyed POSTs (conformance, experiments) by body
// hash: deterministic, evenly spread, no placement guarantee needed.
func (rt *Router) handleSpread(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	rt.forward(w, r, body, rt.ring.OwnersFromHash(bodyHash(body)))
}

// handleAny serves read-only GETs from any healthy backend.
func (rt *Router) handleAny(w http.ResponseWriter, r *http.Request) {
	rt.forward(w, r, nil, rt.ring.Backends())
}

func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return nil, false
	}
	return body, true
}

// forward tries each owner in ring order, skipping unhealthy backends,
// ejecting (and retrying on the next owner) on transport failure, and
// falling back to local service when the whole list is exhausted.  A
// backend that answered — any status — ends the walk: HTTP-level errors
// (422, 503, ...) are real answers owned by the placement, not routing
// failures.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, body []byte, owners []string) {
	for _, b := range owners {
		if !rt.health.isHealthy(b) {
			continue
		}
		resp, err := rt.try(r, b, body)
		if err == errBackendSaturated {
			rt.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeRouterError(w, http.StatusServiceUnavailable, fmt.Errorf("backend %s %w", b, err))
			return
		}
		if err != nil {
			if rt.health.eject(b, time.Now()) {
				rt.logf("router: backend %s ejected (%v)", b, err)
			}
			rt.retries.Add(1)
			continue
		}
		rt.proxied.Add(1)
		copyResponse(w, resp)
		return
	}
	rt.serveFallback(w, r, body)
}

// bufferedResponse is a fully-read backend answer, safe to replay to the
// client after the connection that produced it is gone.
type bufferedResponse struct {
	status      int
	contentType string
	body        []byte
}

// try proxies one buffered request to one backend under its in-flight cap.
// Any error return other than errBackendSaturated means the backend did not
// answer and is presumed dead.
func (rt *Router) try(r *http.Request, backend string, body []byte) (*bufferedResponse, error) {
	sem := rt.inflight[backend]
	select {
	case sem <- struct{}{}:
		defer func() { <-sem }()
	default:
		return nil, errBackendSaturated
	}
	if err := faultinject.Fire(faultinject.SiteRouterProxy); err != nil {
		return nil, fmt.Errorf("injected proxy fault: %w", err)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, backendURL(backend, r.URL.Path), rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := r.Header.Get("X-Request-ID"); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// The backend died mid-response; the buffered request makes the
		// retry on the next owner safe.
		return nil, err
	}
	return &bufferedResponse{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        data,
	}, nil
}

func copyResponse(w http.ResponseWriter, resp *bufferedResponse) {
	if resp.contentType != "" {
		w.Header().Set("Content-Type", resp.contentType)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(resp.body)))
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// serveFallback degrades to the local single-node handler when no backend
// is reachable; with no fallback configured the outage is answered 503.
func (rt *Router) serveFallback(w http.ResponseWriter, r *http.Request, body []byte) {
	if err := faultinject.Fire(faultinject.SiteRouterFallback); err != nil {
		writeRouterError(w, http.StatusServiceUnavailable, fmt.Errorf("injected fallback fault: %w", err))
		return
	}
	if rt.fallback == nil {
		w.Header().Set("Retry-After", "1")
		writeRouterError(w, http.StatusServiceUnavailable, errors.New("no healthy backends"))
		return
	}
	rt.fallbacks.Add(1)
	rt.logf("router: no healthy backends, serving %s locally", r.URL.Path)
	r2 := r.Clone(r.Context())
	if body != nil {
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
	}
	rt.fallback.ServeHTTP(w, r2)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy, unhealthy, _, _ := rt.health.view()
	writeRouterJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"healthy":   len(healthy),
		"unhealthy": len(unhealthy),
	})
}

func writeRouterJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

func writeRouterError(w http.ResponseWriter, status int, err error) {
	writeRouterJSON(w, status, map[string]string{"error": err.Error()})
}
