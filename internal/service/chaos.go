// Chaos conformance: the robustness counterpart of core.ConformanceSweep.
// Where the conformance sweep checks that every organisation computes the
// same answer, the chaos sweep checks that the service stack keeps its
// invariants under injected failure: each seeded fault plan
// (faultinject.RandomPlan) is activated against a fresh Service and a
// concurrent mixed workload, and afterwards the books must balance exactly —
// no leaked or double-returned pool replayers, byte-exact registry
// accounting, every response correct-or-structured-error, failed builds
// retryable, and the drain always terminating.  A violated invariant is
// reported with its reproducer seed, like a generator divergence.
package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"slices"
	"sync"
	"time"

	"uhm/internal/core"
	"uhm/internal/faultinject"
	"uhm/internal/sim"
	"uhm/internal/store"
)

// chaosSources are the sweep's mixed workload: small, quick programs (a
// chaos plan runs hundreds of requests over them under the race detector),
// different enough in shape — loop, recursion, array — to exercise distinct
// artifact footprints and pool keys.
var chaosSources = []struct{ name, src string }{
	{"chaos-loop", `
program chaosloop;
var i, sum;
begin
  i := 1;
  sum := 0;
  while i <= 12 do
  begin
    sum := sum + i * i;
    i := i + 1
  end;
  print sum
end.`},
	{"chaos-calls", `
program chaoscalls;
var n;
proc tri(k);
begin
  if k < 1 then return 0
  else return k + tri(k - 1)
end;
begin
  n := 9;
  print tri(n)
end.`},
	{"chaos-array", `
program chaosarray;
var a[8], i, acc;
begin
  i := 0;
  while i < 8 do
  begin
    a[i] := i * 3 - 1;
    i := i + 1
  end;
  acc := 0;
  i := 7;
  while i >= 0 do
  begin
    acc := acc + a[i];
    i := i - 1
  end;
  print acc
end.`},
}

// chaosProgram is one workload program with its oracle output, computed
// outside the service under test.
type chaosProgram struct {
	name, src string
	level     core.Level
	want      []int64
	footprint int64
}

// chaosProgams builds the reference set once per sweep: the oracle outputs
// the correctness invariant compares against, and the steady-state footprint
// the byte budget is derived from.
func chaosPrograms() ([]chaosProgram, error) {
	progs := make([]chaosProgram, 0, len(chaosSources))
	for _, p := range chaosSources {
		art, err := core.BuildSource(p.name, p.src, core.LevelStack)
		if err != nil {
			return nil, fmt.Errorf("chaos reference %s: %w", p.name, err)
		}
		want, err := art.Reference()
		if err != nil {
			return nil, fmt.Errorf("chaos reference %s: %w", p.name, err)
		}
		if _, err := art.Predecoded(core.DefaultConfig().Degree); err != nil {
			return nil, fmt.Errorf("chaos reference %s: %w", p.name, err)
		}
		progs = append(progs, chaosProgram{
			name: p.name, src: p.src, level: core.LevelStack,
			want: want, footprint: int64(art.FootprintBytes()),
		})
	}
	return progs, nil
}

// ChaosOptions configures a chaos sweep.  The zero value selects defaults
// sized so that hundreds of plans run in seconds under the race detector.
type ChaosOptions struct {
	// Clients is the number of concurrent request goroutines per plan
	// (default 4); Requests is how many requests each issues (default 12).
	Clients  int
	Requests int
	// QueueTimeout is the per-plan service's admission bound (default 2s —
	// generous, because chaos asserts invariants, not latency).
	QueueTimeout time.Duration
	// PlanTimeout is the drain watchdog: a plan whose clients have not all
	// returned within it is a "drain did not terminate" violation
	// (default 30s).
	PlanTimeout time.Duration
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Requests <= 0 {
		o.Requests = 12
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 2 * time.Second
	}
	if o.PlanTimeout <= 0 {
		o.PlanTimeout = 30 * time.Second
	}
	return o
}

// ChaosViolation is one invariant broken under one fault plan.
type ChaosViolation struct {
	// Seed reproduces the plan via faultinject.RandomPlan(Seed).
	Seed int64
	// Plan is the plan rendered in ParseSpec syntax.
	Plan string
	// Invariant names the broken guarantee; Detail describes the evidence.
	Invariant string
	Detail    string
}

func (v ChaosViolation) String() string {
	return fmt.Sprintf("seed %d [%s]: %s (plan %s)", v.Seed, v.Invariant, v.Detail, v.Plan)
}

// The chaos invariant names.
const (
	ChaosCorrectness = "correct-or-structured-error" // wrong output, or an unclassified error
	ChaosLeak        = "replayer-leak"               // leases outstanding after drain, or pool books unbalanced
	ChaosAccounting  = "footprint-accounting"        // registry byte books unbalanced or over budget
	ChaosRetry       = "retry-after-failure"         // a program still failing after faults stopped
	ChaosDrain       = "drain-termination"           // clients did not all return within the watchdog
	ChaosEscape      = "panic-escape"                // a panic crossed the service boundary
)

// ChaosResult summarises a sweep.
type ChaosResult struct {
	Plans      int
	Requests   int64
	Violations []ChaosViolation
	// Fired aggregates, per site, how often the plans' rules actually
	// injected — a sweep that never fires is not testing anything.
	Fired map[faultinject.Site]int64
}

// ChaosSweep runs fault plans for seeds start..start+n-1, each against a
// fresh Service, and returns every invariant violation.  Plans run one at a
// time (the active plan is process-global); the workload within each plan is
// concurrent.  The optional progress callback receives (plans done,
// violations so far).
func ChaosSweep(ctx context.Context, start int64, n int, opts ChaosOptions,
	progress func(done, violations int)) (*ChaosResult, error) {
	opts = opts.withDefaults()
	progs, err := chaosPrograms()
	if err != nil {
		return nil, err
	}
	// A budget of two-thirds of the steady-state footprint keeps the LRU
	// under genuine pressure: the working set never fully fits, so evictions
	// and rebuild-after-evict run constantly even before injected ones.
	var total int64
	for _, p := range progs {
		total += p.footprint
	}
	res := &ChaosResult{Fired: make(map[faultinject.Site]int64)}
	for seed := start; seed < start+int64(n); seed++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		vs, reqs, fired := runChaosPlan(ctx, seed, progs, total*2/3, opts)
		res.Plans++
		res.Requests += reqs
		res.Violations = append(res.Violations, vs...)
		for site, c := range fired {
			res.Fired[site] += c
		}
		if progress != nil {
			progress(res.Plans, len(res.Violations))
		}
	}
	return res, nil
}

// runChaosPlan activates one seeded plan against a fresh service, drives the
// concurrent workload, and checks every invariant after the drain.
func runChaosPlan(ctx context.Context, seed int64, progs []chaosProgram,
	capacity int64, opts ChaosOptions) ([]ChaosViolation, int64, map[faultinject.Site]int64) {
	plan := faultinject.RandomPlan(seed)
	var mu sync.Mutex
	var violations []ChaosViolation
	violate := func(invariant, format string, args ...any) {
		mu.Lock()
		violations = append(violations, ChaosViolation{
			Seed: seed, Plan: plan.String(), Invariant: invariant,
			Detail: fmt.Sprintf(format, args...),
		})
		mu.Unlock()
	}

	// Each plan gets its own disk tier in a throwaway directory, so the
	// store fault sites (write, read, verify) fire against real files and a
	// corrupt or unwritable tier must degrade to clean rebuilds — never to a
	// wrong answer or an unclassified error.  If the temp dir cannot be made
	// the plan simply runs memory-only, as a store-less service would.
	var tier *store.Store
	if dir, derr := os.MkdirTemp("", "uhm-chaos-store-*"); derr == nil {
		defer os.RemoveAll(dir)
		tier, _ = store.Open(dir)
	}

	svc := New(Options{
		CapacityBytes: capacity,
		Workers:       max(2, opts.Clients-1), // fewer slots than clients: admission queues
		MaxIdlePerKey: 2,
		QueueTimeout:  opts.QueueTimeout,
		Store:         tier,
	})
	restore := faultinject.Activate(plan)
	var requests int64

	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			// Each client draws its request mix from its own seeded stream,
			// so the workload shape — programs, strategies, budgets — is
			// reproducible per seed even though interleaving is not.
			rng := rand.New(rand.NewSource(seed*1000 + int64(client)))
			strategies := core.Strategies()
			for i := 0; i < opts.Requests; i++ {
				p := progs[rng.Intn(len(progs))]
				cfg := core.DefaultConfig()
				if rng.Intn(4) == 0 {
					cfg.MaxInstructions = 1_000_000 // a second pool fingerprint
				}
				func() {
					defer func() {
						if v := recover(); v != nil {
							violate(ChaosEscape, "client %d request %d: panic crossed the service boundary: %v", client, i, v)
						}
					}()
					mu.Lock()
					requests++
					mu.Unlock()
					if rng.Intn(8) == 0 {
						reports, err := svc.CompareSource(ctx, p.name, p.src, p.level, cfg)
						checkChaosResponse(violate, p, firstOutput(reports), err)
						return
					}
					strategy := strategies[rng.Intn(len(strategies))]
					rep, err := svc.RunSource(ctx, p.name, p.src, p.level, strategy, cfg)
					var out []int64
					if rep != nil {
						out = rep.Output
					}
					checkChaosResponse(violate, p, out, err)
				}()
			}
		}(c)
	}

	// The drain watchdog: every client must return.  A wedged client — a
	// request blocked forever on a slot, a lost singleflight waiter — is
	// exactly the failure mode the queue timeout and panic isolation exist
	// to prevent.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(opts.PlanTimeout):
		violate(ChaosDrain, "clients still running after %s", opts.PlanTimeout)
		restore()
		return violations, requests, plan.Fires()
	}
	restore()

	// Post-drain invariants, with injection off.
	st := svc.Stats()
	if st.Pool.Leased != 0 {
		violate(ChaosLeak, "%d replayers still leased after drain", st.Pool.Leased)
	}
	if err := svc.Pool().VerifyAccounting(); err != nil {
		violate(ChaosLeak, "%v", err)
	}
	if err := svc.Registry().VerifyAccounting(); err != nil {
		violate(ChaosAccounting, "%v", err)
	}
	// Re-reading every footprint must reconcile the budget exactly: no
	// phantom bytes survive failed builds, evictions or quarantines.
	svc.Registry().SyncAll()
	if err := svc.Registry().VerifyAccounting(); err != nil {
		violate(ChaosAccounting, "after SyncAll: %v", err)
	}
	if st := svc.Registry().Stats(); st.CapacityBytes > 0 && st.Bytes > st.CapacityBytes {
		violate(ChaosAccounting, "resident %d bytes exceeds the %d-byte budget after SyncAll", st.Bytes, st.CapacityBytes)
	}

	// Retry-after-failure: with faults off, every program must serve again —
	// singleflight must not have cached an injected failure — unless a panic
	// rule quarantined it, in which case the refusal must be the typed one.
	for _, p := range progs {
		rep, err := svc.RunSource(ctx, p.name, p.src, p.level, core.WithDTB, core.DefaultConfig())
		var qe *QuarantineError
		switch {
		case err == nil && slices.Equal(rep.Output, p.want):
		case errors.As(err, &qe):
		case err == nil:
			violate(ChaosRetry, "%s: post-fault output %v, want %v", p.name, rep.Output, p.want)
		default:
			violate(ChaosRetry, "%s: still failing after faults stopped: %v", p.name, err)
		}
	}
	return violations, requests, plan.Fires()
}

// checkChaosResponse enforces correct-or-structured-error on one response:
// a nil error must come with the oracle's exact output, and a non-nil error
// must be classifiable — injected, overload, panic, quarantine or
// cancellation.  Anything else (wrong bytes, an anonymous failure) is a
// violation.
func checkChaosResponse(violate func(invariant, format string, args ...any),
	p chaosProgram, out []int64, err error) {
	if err == nil {
		if !slices.Equal(out, p.want) {
			violate(ChaosCorrectness, "%s: output %v, want %v", p.name, out, p.want)
		}
		return
	}
	if !structuredError(err) {
		violate(ChaosCorrectness, "%s: unclassified error: %v", p.name, err)
	}
}

// structuredError reports whether the error is one of the typed failures the
// stack is allowed to answer with under fault injection.
func structuredError(err error) bool {
	var oe *OverloadError
	var pe *PanicError
	var qe *QuarantineError
	return faultinject.Injected(err) ||
		errors.As(err, &oe) || errors.As(err, &pe) || errors.As(err, &qe) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// firstOutput extracts the agreed output of a comparison (all reports agree
// whenever the comparison returned without error).
func firstOutput(reports []*sim.Report) []int64 {
	if len(reports) == 0 {
		return nil
	}
	return reports[0].Output
}
