package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"uhm/internal/core"
	"uhm/internal/faultinject"
	"uhm/internal/sim"
	"uhm/internal/workload"
)

// TestQueueTimeoutReturnsOverloadError: with every slot held, admission gives
// up after the queue timeout with a typed *OverloadError carrying a
// whole-second Retry-After hint.
func TestQueueTimeoutReturnsOverloadError(t *testing.T) {
	svc := New(Options{Workers: 1, QueueTimeout: 50 * time.Millisecond})
	held := make(chan struct{})
	release := make(chan struct{})
	adminDone := make(chan error, 1)
	go func() {
		adminDone <- svc.AdmitExclusive(context.Background(), func(context.Context) error {
			close(held)
			<-release
			return nil
		})
	}()
	<-held

	start := time.Now()
	_, err := svc.RunWorkload(context.Background(), "fib", core.LevelStack, sim.WithDTB, testConfig())
	waited := time.Since(start)
	close(release)
	if err := <-adminDone; err != nil {
		t.Fatal(err)
	}

	var overload *OverloadError
	if !errors.As(err, &overload) {
		t.Fatalf("saturated admission returned %v, want *OverloadError", err)
	}
	if overload.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %s, want at least a whole second", overload.RetryAfter)
	}
	if waited < 50*time.Millisecond || waited > 5*time.Second {
		t.Fatalf("admission waited %s, want roughly the 50ms queue timeout", waited)
	}
	if st := svc.Stats(); st.Requests.Overloads != 1 {
		t.Fatalf("Overloads = %d, want 1", st.Requests.Overloads)
	}
}

// TestRunPanicIsQuarantined: a panic on the request hot path is recovered at
// the service boundary as a typed *PanicError, the artifact becomes a poison
// pill (typed *QuarantineError on retry), and neither the request slot nor
// the replayer lease leaks.
func TestRunPanicIsQuarantined(t *testing.T) {
	defer faultinject.Activate(faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SiteServiceRun, Probability: 1, Count: 1, Mode: faultinject.ModePanic,
	}))()
	svc := New(Options{Workers: 2})

	_, err := svc.RunWorkload(context.Background(), "sieve", core.LevelStack, sim.WithDTB, testConfig())
	var panicked *PanicError
	if !errors.As(err, &panicked) {
		t.Fatalf("panicking run returned %v, want *PanicError", err)
	}
	if _, ok := panicked.Value.(faultinject.InjectedPanic); !ok {
		t.Fatalf("recovered value %v, want the injected panic", panicked.Value)
	}

	_, err = svc.RunWorkload(context.Background(), "sieve", core.LevelStack, sim.WithDTB, testConfig())
	var quarantined *QuarantineError
	if !errors.As(err, &quarantined) {
		t.Fatalf("retry on the poisoned program returned %v, want *QuarantineError", err)
	}

	st := svc.Stats()
	if st.Requests.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Requests.Panics)
	}
	if st.Registry.Quarantines != 1 || st.Registry.Quarantined != 1 {
		t.Fatalf("quarantine books = %+v, want exactly one poison pill", st.Registry)
	}
	if st.Pool.Leased != 0 {
		t.Fatalf("lease leaked across the panic: %+v", st.Pool)
	}
	if err := svc.Pool().VerifyAccounting(); err != nil {
		t.Fatal(err)
	}

	// Unrelated programs are untouched.
	if _, err := svc.RunWorkload(context.Background(), "fib", core.LevelStack, sim.WithDTB, testConfig()); err != nil {
		t.Fatalf("unrelated program failed after the quarantine: %v", err)
	}
}

// TestShedLadderFallsBackToReplay: under a sustained derive-decline storm the
// degradation ladder trips after the decline streak and serves plain replays
// — correct reports, no derive attempt — instead of paying the doomed
// derivation on every request.
func TestShedLadderFallsBackToReplay(t *testing.T) {
	defer faultinject.Activate(faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SiteDerive, Probability: 1,
	}))()
	svc := New(Options{Workers: 1})

	want, err := svc.RunWorkload(context.Background(), "fib", core.LevelStack, sim.WithDTB, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		rep, err := svc.RunWorkload(context.Background(), "fib", core.LevelStack, sim.WithDTB, testConfig())
		if err != nil {
			t.Fatalf("request %d failed under the derive storm: %v", i, err)
		}
		if rep.TotalCycles != want.TotalCycles {
			t.Fatalf("request %d: cycles %d, want %d", i, rep.TotalCycles, want.TotalCycles)
		}
		if rep.Derived {
			t.Fatalf("request %d reported a derived path while derivation always declines", i)
		}
	}
	st := svc.Stats().Requests
	if st.DeriveFallbacks < 8 {
		t.Fatalf("DeriveFallbacks = %d, want at least the 8 declines that trip the ladder", st.DeriveFallbacks)
	}
	if st.Shed == 0 {
		t.Fatal("ladder never tripped: Shed = 0 after 41 declining requests")
	}
}

// TestDrainWithBuildFailingMidSingleflight is the drain satellite: while one
// build is held open and failing, more requests for the same program pile
// onto the singleflight entry.  When the build finally fails, every waiter
// gets the error, the registry holds no phantom artifact, and — the fault
// being spent — the very next request builds and runs normally.
func TestDrainWithBuildFailingMidSingleflight(t *testing.T) {
	const waiters = 4
	src, err := workload.Source("fib")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	errBoom := errors.New("boom")
	defer faultinject.Activate(faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SiteRegistryBuild, Probability: 1, Count: 1,
		Err:    errBoom,
		Before: func() { close(started); <-release },
	}))()
	svc := New(Options{Workers: waiters})

	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := svc.RunSource(context.Background(), "boom", src, core.LevelStack, sim.WithDTB, testConfig())
			errs <- err
		}()
	}
	<-started
	// The build is wedged mid-flight; wait for every other request to join
	// the singleflight entry (joining increments Hits before blocking).
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().Registry.Hits < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never joined the in-flight build: %+v", svc.Stats().Registry)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	// Drain: every request must come back, each carrying the build error.
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, errBoom) || !faultinject.Injected(err) {
				t.Fatalf("waiter returned %v, want the injected build error", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("drain did not terminate: a waiter never returned")
		}
	}

	st := svc.Stats().Registry
	if st.Builds != 1 || st.BuildErrors != 1 {
		t.Fatalf("build books = %+v, want exactly one failed build", st)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("phantom artifact after the failed build: %d entries, %d bytes", st.Entries, st.Bytes)
	}
	if err := svc.Registry().VerifyAccounting(); err != nil {
		t.Fatal(err)
	}

	// Singleflight must retry after failure, not cache the error.
	if _, err := svc.RunSource(context.Background(), "boom", src, core.LevelStack, sim.WithDTB, testConfig()); err != nil {
		t.Fatalf("retry after the failed build: %v", err)
	}
	if st := svc.Stats().Registry; st.Builds != 2 {
		t.Fatalf("retry did not rebuild: %+v", st)
	}
}
