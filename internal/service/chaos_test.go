package service

import (
	"context"
	"testing"

	"uhm/internal/faultinject"
)

// TestChaosSmoke is the acceptance gate for the resilience layer: 200 seeded
// fault plans — build failures, checkout failures, forced evictions, spurious
// invalidations, ErrNoTrace storms, injected overloads and run panics — each
// against a fresh service under a concurrent mixed workload, with zero
// invariant violations allowed.  Any failure prints the reproducer seed;
// rerun it alone with uhmbench -chaos 1 -seed N.
func TestChaosSmoke(t *testing.T) {
	plans := 200
	if testing.Short() {
		plans = 25
	}
	res, err := ChaosSweep(context.Background(), 1, plans, ChaosOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plans != plans {
		t.Fatalf("ran %d plans, want %d", res.Plans, plans)
	}
	for i, v := range res.Violations {
		if i >= 16 {
			t.Errorf("... %d more violations", len(res.Violations)-i)
			break
		}
		t.Errorf("%s", v)
	}
	// A sweep that never injects is vacuous: across 200 random plans every
	// service-level site must have fired at least once.
	for _, site := range []faultinject.Site{
		faultinject.SiteRegistryBuild, faultinject.SiteRegistryEvict,
		faultinject.SitePoolAcquire, faultinject.SitePoolCheckin,
		faultinject.SitePoolInvalidate, faultinject.SiteTraceRecord,
		faultinject.SiteDerive, faultinject.SiteServiceRun,
		faultinject.SiteAdmission,
	} {
		if res.Fired[site] == 0 {
			t.Errorf("site %s never fired across %d plans", site, res.Plans)
		}
	}
	t.Logf("chaos: %d plans, %d requests, %d violations, fires: %v",
		res.Plans, res.Requests, len(res.Violations), res.Fired)
}
