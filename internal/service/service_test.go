package service

import (
	"context"
	"slices"
	"sync"
	"testing"
	"time"

	"uhm/internal/core"
	"uhm/internal/sim"
	"uhm/internal/workload"
)

func testConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 5_000_000
	return cfg
}

// TestRegistrySingleflight pins the one-build-per-content-address guarantee:
// any number of concurrent requests for the same program block on a single
// build and share the resulting artifact.
func TestRegistrySingleflight(t *testing.T) {
	src, err := workload.Source("loopsum")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(0)
	const goroutines = 32
	arts := make([]*core.Artifact, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < goroutines; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			a, err := r.Source("loopsum", src, core.LevelStack)
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = a
		}()
	}
	start.Done()
	done.Wait()
	for i := 1; i < goroutines; i++ {
		if arts[i] != arts[0] {
			t.Fatalf("goroutine %d got a different artifact instance", i)
		}
	}
	st := r.Stats()
	if st.Builds != 1 {
		t.Fatalf("Builds = %d, want exactly 1 (singleflight)", st.Builds)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("Hits = %d, want %d", st.Hits, goroutines-1)
	}
	if st.Entries != 1 {
		t.Fatalf("Entries = %d, want 1", st.Entries)
	}
}

// TestRegistryContentAddressing: the same source under two names is one
// entry; a different level is a different entry.
func TestRegistryContentAddressing(t *testing.T) {
	src, err := workload.Source("fib")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(0)
	a1, err := r.Source("first-name", src, core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Source("second-name", src, core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("same source, same level: want one shared artifact")
	}
	a3, err := r.Source("first-name", src, core.LevelMem3)
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a1 {
		t.Fatal("different level must be a different artifact")
	}
	if st := r.Stats(); st.Builds != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 builds, 2 entries", st)
	}
}

// TestRegistryBuildErrorNotCached: a failed build reports its error to every
// waiter but leaves no entry behind, so the counters see a fresh build on
// retry.
func TestRegistryBuildErrorNotCached(t *testing.T) {
	r := NewRegistry(0)
	if _, err := r.Source("bad", "this is not minilang", core.LevelStack); err == nil {
		t.Fatal("want a parse error")
	}
	st := r.Stats()
	if st.BuildErrors != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 build error, 0 entries", st)
	}
	if _, err := r.Source("bad", "this is not minilang", core.LevelStack); err == nil {
		t.Fatal("want a parse error on retry")
	}
	if st := r.Stats(); st.Builds != 2 {
		t.Fatalf("Builds = %d, want 2 (errors are not cached)", st.Builds)
	}
}

// TestRegistryEviction: a byte budget small enough for one artifact evicts
// the least recently used entry when a second arrives, and the eviction
// callback fires so pooled replayers can be retired.
func TestRegistryEviction(t *testing.T) {
	srcA, err := workload.Source("loopsum")
	if err != nil {
		t.Fatal(err)
	}
	srcB, err := workload.Source("fib")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(1) // absurdly small: any completed entry is over budget
	var evicted []*core.Artifact
	r.SetOnEvict(func(a *core.Artifact) { evicted = append(evicted, a) })

	a, err := r.Source("loopsum", srcA, core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	// The single over-budget entry is retained (no thrashing) ...
	if st := r.Stats(); st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats after first build = %+v, want the entry retained", st)
	}
	// ... until a newer entry arrives, which evicts it.
	if _, err := r.Source("fib", srcB, core.LevelStack); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats after second build = %+v, want 1 eviction, 1 entry", st)
	}
	if len(evicted) != 1 || evicted[0] != a {
		t.Fatalf("eviction callback got %v, want the first artifact", evicted)
	}
	// The evicted artifact rebuilds on next request.
	if _, err := r.Source("loopsum", srcA, core.LevelStack); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Builds != 3 {
		t.Fatalf("Builds = %d, want 3 (evicted entry rebuilt)", st.Builds)
	}
}

// TestRegistrySyncGrowsAccounting: predecoding under a run inflates the
// artifact's footprint, and Sync folds the growth into the registry's bytes.
func TestRegistrySyncGrowsAccounting(t *testing.T) {
	r := NewRegistry(0)
	a, err := r.Workload("loopsum", core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Stats().Bytes
	if _, err := a.Predecoded(testConfig().Degree); err != nil {
		t.Fatal(err)
	}
	r.Sync(a)
	after := r.Stats().Bytes
	if after <= before {
		t.Fatalf("bytes %d -> %d, want growth after predecode", before, after)
	}
}

// TestPoolReuse: a released replayer is checked out again instead of a new
// one being constructed.
func TestPoolReuse(t *testing.T) {
	cfg := testConfig()
	a, err := core.BuildWorkload("loopsum", core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := a.Predecoded(cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(4)
	l1, err := p.Acquire(pp, sim.WithDTB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1 := l1.R
	l1.Release()
	l1.Release() // idempotent
	l2, err := p.Acquire(pp, sim.WithDTB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l2.R != r1 {
		t.Fatal("want the released replayer back")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss", st)
	}
	// A different strategy or config is a different class.
	l3, err := p.Acquire(pp, sim.Conventional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l3.R == r1 {
		t.Fatal("strategies must not share replayers")
	}
}

// TestPoolConfigFingerprint: equivalent configs (defaults resolved) share a
// class; different configs do not.
func TestPoolConfigFingerprint(t *testing.T) {
	cfg := testConfig()
	a, err := core.BuildWorkload("fib", core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := a.Predecoded(cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(4)
	l1, err := p.Acquire(pp, sim.WithCache, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1 := l1.R
	l1.Release()

	zeroDepth := cfg
	zeroDepth.MaxDepth = 0 // normalizes to the default
	defaulted := cfg
	defaulted.MaxDepth = sim.DefaultConfig().MaxDepth
	if cfg.MaxDepth == defaulted.MaxDepth && !zeroDepth.Equivalent(defaulted) {
		t.Fatal("zero MaxDepth must fingerprint like the default")
	}

	bigger := cfg
	bigger.MaxInstructions = cfg.MaxInstructions + 1
	l2, err := p.Acquire(pp, sim.WithCache, bigger)
	if err != nil {
		t.Fatal(err)
	}
	if l2.R == r1 {
		t.Fatal("different MaxInstructions must be a different pool class")
	}
}

// TestPoolInvalidate: invalidation drops idle replayers and discards
// checked-out ones at release instead of repooling them.
func TestPoolInvalidate(t *testing.T) {
	cfg := testConfig()
	a, err := core.BuildWorkload("loopsum", core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := a.Predecoded(cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(4)
	idle, err := p.Acquire(pp, sim.Expanded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	idle.Release()
	leased, err := p.Acquire(pp, sim.Expanded, cfg) // the idle one, checked out
	if err != nil {
		t.Fatal(err)
	}
	extra, err := p.Acquire(pp, sim.Expanded, cfg) // a second, also out
	if err != nil {
		t.Fatal(err)
	}

	p.Invalidate(pp)
	leased.Release()
	extra.Release()
	st := p.Stats()
	if st.Idle != 0 {
		t.Fatalf("Idle = %d, want 0 after invalidation", st.Idle)
	}
	if st.Discards != 2 {
		t.Fatalf("Discards = %d, want both outstanding leases discarded", st.Discards)
	}
	// The dead-set must not leak: a fresh acquire/release repopulates.
	l, err := p.Acquire(pp, sim.Expanded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
	if st := p.Stats(); st.Idle != 1 {
		t.Fatalf("Idle = %d, want 1 after re-pooling post-invalidation", st.Idle)
	}
}

// TestPoolGlobalIdleBound: a client iterating distinct configurations (each
// a distinct fingerprint, hence a distinct pool key) cannot grow the idle
// set without limit — beyond 16×maxIdlePerKey total, the stalest idle entry
// is evicted to make room, so saturation never stops hot keys from pooling.
func TestPoolGlobalIdleBound(t *testing.T) {
	cfg := testConfig()
	a, err := core.BuildWorkload("fib", core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := a.Predecoded(cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(1) // global bound: 16
	for i := 0; i < 40; i++ {
		c := cfg
		c.MaxInstructions = int64(1000 + i) // distinct fingerprint each time
		l, err := p.Acquire(pp, sim.Conventional, c)
		if err != nil {
			t.Fatal(err)
		}
		l.Release()
	}
	st := p.Stats()
	if st.Idle > 16 {
		t.Fatalf("Idle = %d, want at most the global bound of 16", st.Idle)
	}
	if st.Discards != 40-16 {
		t.Fatalf("Discards = %d, want %d evicted beyond the bound", st.Discards, 40-16)
	}
	// The saturated pool still pools fresh check-ins (evicting the stalest),
	// so a hot key keeps hitting.
	hot, err := p.Acquire(pp, sim.Conventional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := hot.R
	hot.Release()
	again, err := p.Acquire(pp, sim.Conventional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.R != r {
		t.Fatal("hot key not pooled after the global bound was reached")
	}
}

// TestWarmedRequestNoRebuild is the acceptance pin: a repeated request does
// zero artifact rebuild work (registry Builds constant, Hits rising) and
// replays on a pooled simulator (pool Hits rising), with identical output.
func TestWarmedRequestNoRebuild(t *testing.T) {
	svc := New(Options{})
	ctx := context.Background()
	cfg := testConfig()

	first, err := svc.RunWorkload(ctx, "sieve", core.LevelStack, sim.WithDTB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Registry.Builds != 1 || st.Pool.Misses != 1 {
		t.Fatalf("cold stats = %+v, want 1 build, 1 pool miss", st)
	}

	second, err := svc.RunWorkload(ctx, "sieve", core.LevelStack, sim.WithDTB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st = svc.Stats()
	if st.Registry.Builds != 1 {
		t.Fatalf("warm request rebuilt: Builds = %d", st.Registry.Builds)
	}
	if st.Registry.Hits == 0 {
		t.Fatalf("warm request missed the registry: %+v", st.Registry)
	}
	if st.Pool.Hits != 1 {
		t.Fatalf("warm request did not reuse the pooled replayer: %+v", st.Pool)
	}
	if !slices.Equal(first.Output, second.Output) {
		t.Fatalf("outputs differ: %v vs %v", first.Output, second.Output)
	}
	if first.TotalCycles != second.TotalCycles || first.Instructions != second.Instructions {
		t.Fatalf("warm replay cost differs: (%d, %d) vs (%d, %d)",
			first.Instructions, first.TotalCycles, second.Instructions, second.TotalCycles)
	}
	// The clone the service hands out must be the caller's own.
	if len(first.Output) > 0 && len(second.Output) > 0 && &first.Output[0] == &second.Output[0] {
		t.Fatal("reports share their output backing array")
	}
}

// TestPooledReplayZeroAllocs is the other acceptance pin: the replay loop on
// a pooled, warmed replayer allocates nothing, for every organisation.
func TestPooledReplayZeroAllocs(t *testing.T) {
	cfg := testConfig()
	a, err := core.BuildWorkload("loopsum", core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := a.Predecoded(cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(2)
	for _, strategy := range core.Strategies() {
		t.Run(strategy.String(), func(t *testing.T) {
			lease, err := p.Acquire(pp, strategy, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer lease.Release()
			if _, err := lease.R.Replay(); err != nil { // warm-up
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := lease.R.Replay(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("pooled replay allocates %.1f per run, want 0", allocs)
			}
		})
	}
}

// TestServiceCompareAgreement: the pooled comparison path upholds the
// equivalence invariant and matches the direct core path byte for byte.
func TestServiceCompareAgreement(t *testing.T) {
	svc := New(Options{})
	cfg := testConfig()
	reports, err := svc.CompareWorkload(context.Background(), "fib", core.LevelStack, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(core.Strategies()) {
		t.Fatalf("got %d reports, want %d", len(reports), len(core.Strategies()))
	}
	art, err := core.BuildWorkload("fib", core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Compare(art, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reports {
		if !slices.Equal(reports[i].Output, direct[i].Output) {
			t.Fatalf("%v: pooled output %v, direct %v",
				reports[i].Strategy, reports[i].Output, direct[i].Output)
		}
		if reports[i].TotalCycles != direct[i].TotalCycles {
			t.Fatalf("%v: pooled cycles %d, direct %d",
				reports[i].Strategy, reports[i].TotalCycles, direct[i].TotalCycles)
		}
	}
}

// TestAdmitExclusiveHoldsAllSlots: an exclusively admitted function owns
// every request slot — plain requests cannot be admitted while it runs, so
// work that fans out to the full worker width internally (experiment
// sweeps) keeps total concurrency at the configured bound.
func TestAdmitExclusiveHoldsAllSlots(t *testing.T) {
	svc := New(Options{Workers: 2})
	inside := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- svc.AdmitExclusive(context.Background(), func(context.Context) error {
			close(inside)
			<-release
			return nil
		})
	}()
	<-inside
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := svc.RunWorkload(ctx, "fib", core.LevelStack, sim.WithDTB, testConfig()); err == nil {
		t.Fatal("plain request admitted while an exclusive admission held every slot")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Slots are returned: a plain request is admitted again.
	if _, err := svc.RunWorkload(context.Background(), "fib", core.LevelStack, sim.WithDTB, testConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestRegistrySyncAll: footprint growth from a sweep that predecodes outside
// the per-request path is folded in by SyncAll.
func TestRegistrySyncAll(t *testing.T) {
	r := NewRegistry(0)
	a, err := r.Workload("loopsum", core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Stats().Bytes
	for _, d := range core.Degrees() {
		if _, err := a.Predecoded(d); err != nil {
			t.Fatal(err)
		}
	}
	r.SyncAll()
	if after := r.Stats().Bytes; after <= before {
		t.Fatalf("bytes %d -> %d, want growth after SyncAll", before, after)
	}
}

// TestServiceContextCancellation: a cancelled context is honoured before any
// work is admitted.
func TestServiceContextCancellation(t *testing.T) {
	svc := New(Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.RunWorkload(ctx, "fib", core.LevelStack, sim.WithDTB, testConfig()); err == nil {
		t.Fatal("want a context error")
	}
}

// TestServiceEngineThroughRegistry: the registry-backed engine builds its
// experiment workloads through the shared cache.
func TestServiceEngineThroughRegistry(t *testing.T) {
	svc := New(Options{})
	cfg := testConfig()
	engine := svc.Engine()
	rows, err := engine.Empirical(context.Background(), []string{"loopsum", "fib"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	st := svc.Stats()
	if st.Registry.Builds != 2 {
		t.Fatalf("Builds = %d, want 2 (one per workload through the registry)", st.Registry.Builds)
	}
	// Re-running the experiment is all cache hits.
	if _, err := engine.Empirical(context.Background(), []string{"loopsum", "fib"}, cfg); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Registry.Builds != 2 {
		t.Fatalf("re-run rebuilt artifacts: Builds = %d", st.Registry.Builds)
	}
}

// TestStaleArtifactCheckinDiscards: a request running on an artifact
// reference obtained *before* its eviction must not repool its replayer —
// the pool key is retired (a rebuilt artifact is a fresh program instance),
// so a repooled replayer would be unreachable and leak for the process
// lifetime.  Pool.Invalidate cannot see this case (no lease was outstanding
// at invalidation time); the service's liveness check at check-in is the
// backstop.
func TestStaleArtifactCheckinDiscards(t *testing.T) {
	svc := New(Options{CapacityBytes: 1})
	ctx := context.Background()
	cfg := testConfig()

	stale, err := svc.ArtifactWorkload("loopsum", core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	// A different program over the 1-byte budget evicts loopsum while no
	// lease on it exists.
	if _, err := svc.RunWorkload(ctx, "fib", core.LevelStack, sim.WithDTB, cfg); err != nil {
		t.Fatal(err)
	}
	if svc.Registry().Live(stale) {
		t.Fatal("test premise: the first artifact should have been evicted")
	}
	idleBefore := svc.Stats().Pool.Idle

	// Running on the stale reference still works (correctness must not
	// depend on cache residency) ...
	rep, err := svc.RunArtifact(ctx, stale, sim.WithDTB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Output) == 0 {
		t.Fatal("stale-artifact run produced no output")
	}
	// ... but its replayer is discarded at check-in, not parked under a
	// retired key.
	st := svc.Stats().Pool
	if st.Idle != idleBefore {
		t.Fatalf("Idle grew %d -> %d: replayer repooled under an evicted program", idleBefore, st.Idle)
	}
	if st.Discards == 0 {
		t.Fatalf("want the stale replayer discarded: %+v", st)
	}
}

// TestServiceEvictionRetiresPooledReplayers wires the whole ownership chain:
// evicting an artifact invalidates the pool entries warmed on its predecoded
// programs.
func TestServiceEvictionRetiresPooledReplayers(t *testing.T) {
	svc := New(Options{CapacityBytes: 1})
	ctx := context.Background()
	cfg := testConfig()
	if _, err := svc.RunWorkload(ctx, "loopsum", core.LevelStack, sim.WithDTB, cfg); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Pool.Idle != 1 {
		t.Fatalf("Idle = %d, want the warmed replayer pooled", st.Pool.Idle)
	}
	// A different program over the 1-byte budget evicts loopsum, which must
	// drop its pooled replayer.
	if _, err := svc.RunWorkload(ctx, "fib", core.LevelStack, sim.WithDTB, cfg); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Registry.Evictions == 0 {
		t.Fatalf("want an eviction: %+v", st.Registry)
	}
	if st.Pool.Invalidated == 0 {
		t.Fatalf("eviction did not retire pooled replayers: %+v", st.Pool)
	}
}

// TestServiceRequestsAreDerived: the request hot path serves trace-derived
// reports — the trace is recorded once on the cold request and every
// organisation's report streams from it thereafter.
func TestServiceRequestsAreDerived(t *testing.T) {
	svc := New(Options{})
	ctx := context.Background()
	cfg := testConfig()
	for _, strategy := range core.Strategies() {
		rep, err := svc.RunWorkload(ctx, "fib", core.LevelStack, strategy, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Derived {
			t.Errorf("%v: pooled report not trace-derived", strategy)
		}
	}
}

// TestRegistryAccountsTraceFootprint: the recorded trace is charged to the
// registry's byte budget.  After a derived request the artifact's accounted
// bytes cover the trace's SizeBytes, so the LRU sees it.
func TestRegistryAccountsTraceFootprint(t *testing.T) {
	svc := New(Options{})
	ctx := context.Background()
	cfg := testConfig()

	art, err := svc.ArtifactWorkload("loopsum", core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	before := svc.Registry().Stats().Bytes

	// The first derived request records the trace (and builds the compiled
	// backend it runs on); Sync folds both into the accounting.
	if _, err := svc.RunArtifact(ctx, art, sim.Conventional, cfg); err != nil {
		t.Fatal(err)
	}
	after := svc.Registry().Stats().Bytes

	pp, err := art.Predecoded(cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pp.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if growth := after - before; growth < int64(tr.SizeBytes()) {
		t.Errorf("registry bytes grew by %d after the derived request, want at least the trace's %d",
			growth, tr.SizeBytes())
	}
	// The registry accounts the footprint plus the cached source text, so its
	// total must cover the grown footprint in full.
	if after < int64(art.FootprintBytes()) {
		t.Errorf("registry accounts %d bytes, artifact footprint is %d — Sync out of date", after, art.FootprintBytes())
	}
}

// TestTraceDiesWithEvictedArtifact closes the ownership chain for the trace:
// when the registry evicts an artifact, the trace cached on its predecoded
// program goes with it — the registry's accounted bytes drop by the full
// footprint including the trace, and nothing retains the predecoded program.
func TestTraceDiesWithEvictedArtifact(t *testing.T) {
	svc := New(Options{CapacityBytes: 1})
	ctx := context.Background()
	cfg := testConfig()

	// Cold request: builds loopsum, records its trace, serves derived.
	if _, err := svc.RunWorkload(ctx, "loopsum", core.LevelStack, sim.WithDTB, cfg); err != nil {
		t.Fatal(err)
	}
	art, err := svc.ArtifactWorkload("loopsum", core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := art.Predecoded(cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pp.Trace()
	if err != nil {
		t.Fatal(err)
	}
	withTrace := svc.Registry().Stats().Bytes
	if withTrace < int64(tr.SizeBytes()) {
		t.Fatalf("accounted bytes %d below the trace size %d", withTrace, tr.SizeBytes())
	}

	// A different program over the 1-byte budget evicts loopsum; its bytes —
	// trace included — leave the budget in one piece.
	if _, err := svc.RunWorkload(ctx, "fib", core.LevelStack, sim.WithDTB, cfg); err != nil {
		t.Fatal(err)
	}
	if svc.Registry().Live(art) {
		t.Fatal("test premise: loopsum should have been evicted")
	}
	dropped := withTrace - svc.Registry().Stats().Bytes + foot(t, svc, "fib", cfg)
	if dropped < int64(tr.SizeBytes()) {
		t.Errorf("eviction released %d bytes, want at least the traced artifact's %d-byte trace",
			dropped, tr.SizeBytes())
	}
	// A fresh request for loopsum rebuilds and re-records from scratch: the
	// evicted trace is gone, not resurrected from a side cache.
	art2, err := svc.ArtifactWorkload("loopsum", core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	if art2 == art {
		t.Fatal("evicted artifact was returned again")
	}
}

// foot returns the accounted footprint of one resident workload artifact.
func foot(t *testing.T, svc *Service, name string, cfg sim.Config) int64 {
	t.Helper()
	a, err := svc.ArtifactWorkload(name, core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	return int64(a.FootprintBytes())
}
