package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"uhm/internal/core"
	"uhm/internal/sim"
)

// Options configures a Service.
type Options struct {
	// CapacityBytes is the registry's byte budget (0 = unbounded).
	CapacityBytes int64
	// MaxIdlePerKey bounds the warmed replayers kept per (program, strategy,
	// config) class; zero selects runtime.GOMAXPROCS(0).
	MaxIdlePerKey int
	// Workers bounds concurrent requests, like core.Engine bounds grid
	// cells; zero selects runtime.GOMAXPROCS(0).
	Workers int
}

// Stats snapshots every counter the service exposes.
type Stats struct {
	Registry RegistryStats
	Pool     PoolStats
}

// Service is the façade over the registry and the pool: one instance serves
// any number of concurrent requests, building each distinct program once and
// replaying it on warmed simulators.  cmd/uhmd exposes it over HTTP;
// cmd/uhmrun and cmd/uhmbench drive it in-process.
type Service struct {
	registry *Registry
	pool     *Pool
	workers  int
	slots    chan struct{}
	// exclusiveMu serializes AdmitExclusive callers so two multi-slot
	// acquirers cannot interleave partial acquisitions and deadlock.
	exclusiveMu sync.Mutex
}

// New constructs a Service and wires the registry's eviction callback to the
// pool, so evicting an artifact also retires the replayers warmed on its
// predecoded programs.
func New(opts Options) *Service {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Service{
		registry: NewRegistry(opts.CapacityBytes),
		pool:     NewPool(opts.MaxIdlePerKey),
		workers:  workers,
		slots:    make(chan struct{}, workers),
	}
	s.registry.SetOnEvict(func(a *core.Artifact) {
		for _, pp := range a.CachedPredecoded() {
			s.pool.Invalidate(pp)
		}
	})
	return s
}

// Registry returns the artifact registry (shared, concurrency-safe).
func (s *Service) Registry() *Registry { return s.registry }

// Pool returns the replayer pool (shared, concurrency-safe).
func (s *Service) Pool() *Pool { return s.pool }

// Workers returns the request-parallelism bound.
func (s *Service) Workers() int { return s.workers }

// Stats snapshots the registry and pool counters.
func (s *Service) Stats() Stats {
	return Stats{Registry: s.registry.Stats(), Pool: s.pool.Stats()}
}

// Engine returns a core.Engine whose workload builds go through the
// registry: experiment sweeps run by the CLI and by the server share the
// same artifact cache and therefore the same code path.
func (s *Service) Engine() core.Engine {
	return core.Engine{Workers: s.workers, Build: s.registry.Workload}
}

// acquire takes a request slot, honouring cancellation while waiting.  An
// already-cancelled context is refused before a slot is taken (select picks
// randomly among ready cases, so the explicit check is load-bearing).
func (s *Service) acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Service) release() { <-s.slots }

// AdmitExclusive runs fn holding every request slot.  Work that fans out
// internally to the full worker width — an experiment sweep through
// Engine() — must be admitted here, not through Admit: holding one slot
// while spawning Workers goroutines would put workers² of simulation on an
// N-worker box.  With all slots held, total concurrency stays exactly at
// the configured bound.  Acquisition honours cancellation; concurrent
// exclusive callers are serialized so partial acquisitions cannot deadlock
// against each other, and plain requests drain independently.
func (s *Service) AdmitExclusive(ctx context.Context, fn func(ctx context.Context) error) error {
	s.exclusiveMu.Lock()
	defer s.exclusiveMu.Unlock()
	acquired := 0
	defer func() {
		for ; acquired > 0; acquired-- {
			s.release()
		}
	}()
	for i := 0; i < s.workers; i++ {
		if err := s.acquire(ctx); err != nil {
			return err
		}
		acquired++
	}
	return fn(ctx)
}

// ArtifactSource returns the (possibly cached) artifact for source text.
func (s *Service) ArtifactSource(name, src string, level core.Level) (*core.Artifact, error) {
	return s.registry.Source(name, src, level)
}

// ArtifactWorkload returns the (possibly cached) artifact for a built-in
// workload.
func (s *Service) ArtifactWorkload(name string, level core.Level) (*core.Artifact, error) {
	return s.registry.Workload(name, level)
}

// RunArtifact simulates the artifact under one organisation on a pooled
// replayer.  The returned report is the caller's own copy.
func (s *Service) RunArtifact(ctx context.Context, art *core.Artifact, strategy sim.Strategy, cfg sim.Config) (*sim.Report, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	return s.runPooled(art, strategy, cfg)
}

// runPooled is the request hot path: predecode (cached on the artifact),
// check out a warmed replayer, derive the report from the artifact's shared
// execution trace (recorded once per predecoded program, counted in its
// footprint, falling back to a full replay when the trace cannot answer
// exactly), clone the report, check the replayer back in, and refresh the
// registry's byte accounting — which now includes the cached trace, so it is
// evicted with its artifact.
func (s *Service) runPooled(art *core.Artifact, strategy sim.Strategy, cfg sim.Config) (*sim.Report, error) {
	pp, err := art.Predecoded(cfg.Degree)
	if err != nil {
		return nil, err
	}
	lease, err := s.pool.Acquire(pp, strategy, cfg)
	if err != nil {
		return nil, err
	}
	rep, err := lease.R.ReplayDerived()
	if err != nil {
		// A failed replay leaves the replayer's structures in a defined but
		// partially-run state; Replay resets everything up front, so reuse
		// is still sound — check in normally.
		s.checkin(art, lease)
		return nil, err
	}
	out := rep.Clone()
	s.checkin(art, lease)
	s.registry.Sync(art)
	return out, nil
}

// checkin returns a lease, repooling only when the artifact is still
// resident in the registry.  The liveness check closes the eviction race
// Pool.Invalidate alone cannot see: a lease taken on a stale artifact after
// its eviction (no outstanding lease existed at invalidation time, so no
// dead mark) would otherwise repopulate an unreachable pool key.  An
// eviction racing this check is still safe — the lease is outstanding until
// checkin runs, so Invalidate marks the program dead and the check-in
// discards.
func (s *Service) checkin(art *core.Artifact, lease *Lease) {
	if s.registry.Live(art) {
		lease.Release()
	} else {
		lease.Discard()
	}
}

// RunSource builds (or finds) the artifact for the source text and runs it.
func (s *Service) RunSource(ctx context.Context, name, src string, level core.Level, strategy sim.Strategy, cfg sim.Config) (*sim.Report, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	art, err := s.registry.Source(name, src, level)
	if err != nil {
		return nil, err
	}
	return s.runPooled(art, strategy, cfg)
}

// RunWorkload builds (or finds) a built-in workload's artifact and runs it.
func (s *Service) RunWorkload(ctx context.Context, name string, level core.Level, strategy sim.Strategy, cfg sim.Config) (*sim.Report, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	art, err := s.registry.Workload(name, level)
	if err != nil {
		return nil, err
	}
	return s.runPooled(art, strategy, cfg)
}

// CompareArtifact runs every organisation on pooled replayers and verifies
// the paper's equivalence invariant.  Reports come back in core.Strategies()
// order; on divergence they are returned alongside the error so the caller
// can render a diff.
func (s *Service) CompareArtifact(ctx context.Context, art *core.Artifact, cfg sim.Config) ([]*sim.Report, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	return s.comparePooled(ctx, art, cfg)
}

// comparePooled runs all strategies under an already-held request slot.
func (s *Service) comparePooled(ctx context.Context, art *core.Artifact, cfg sim.Config) ([]*sim.Report, error) {
	var reports []*sim.Report
	for _, strategy := range core.Strategies() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep, err := s.runPooled(art, strategy, cfg)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", strategy, err)
		}
		reports = append(reports, rep)
	}
	if err := sim.VerifyOutputs(reports); err != nil {
		return reports, err
	}
	return reports, nil
}

// CompareSource builds (or finds) the artifact for the source text and
// compares every organisation on it.
func (s *Service) CompareSource(ctx context.Context, name, src string, level core.Level, cfg sim.Config) ([]*sim.Report, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	art, err := s.registry.Source(name, src, level)
	if err != nil {
		return nil, err
	}
	return s.comparePooled(ctx, art, cfg)
}

// CompareWorkload builds (or finds) a built-in workload's artifact and
// compares every organisation on it.
func (s *Service) CompareWorkload(ctx context.Context, name string, level core.Level, cfg sim.Config) ([]*sim.Report, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	art, err := s.registry.Workload(name, level)
	if err != nil {
		return nil, err
	}
	return s.comparePooled(ctx, art, cfg)
}

// Conformance runs the full differential cross-product on one source
// program.  It deliberately does not use the registry or the pool: the
// harness's value is that it rebuilds everything from scratch and checks the
// cached paths against the fresh ones.
func (s *Service) Conformance(ctx context.Context, name, src string, cfg sim.Config) ([]core.Divergence, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return core.CheckConformance(name, src, cfg)
}
