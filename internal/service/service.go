package service

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"uhm/internal/core"
	"uhm/internal/faultinject"
	"uhm/internal/sim"
	"uhm/internal/store"
)

// Options configures a Service.
type Options struct {
	// CapacityBytes is the registry's byte budget (0 = unbounded).
	CapacityBytes int64
	// MaxIdlePerKey bounds the warmed replayers kept per (program, strategy,
	// config) class; zero selects runtime.GOMAXPROCS(0).
	MaxIdlePerKey int
	// Workers bounds concurrent requests, like core.Engine bounds grid
	// cells; zero selects runtime.GOMAXPROCS(0).
	Workers int
	// QueueTimeout bounds how long admission may queue for a request slot
	// when all are occupied; past it the request is shed with a typed
	// *OverloadError instead of blocking unboundedly.  Zero waits as long as
	// the request context allows (the pre-timeout behaviour).
	QueueTimeout time.Duration
	// ShedAfterDeclines is the degradation-ladder threshold: after this many
	// consecutive trace-derivation declines (an ErrNoTrace storm), requests
	// skip the derive attempt and go straight to plain Replay, probing
	// periodically to recover.  Zero selects the default (8); negative
	// disables shedding.
	ShedAfterDeclines int
	// Store, if set, attaches a content-addressed disk tier behind the
	// registry's in-memory LRU: misses read through it, builds write through
	// to it, and Warmstart preloads from it.  Nil runs memory-only (the
	// pre-persistence behaviour).
	Store *store.Store
}

// Stats snapshots every counter the service exposes.
type Stats struct {
	Registry RegistryStats
	Pool     PoolStats
	Requests RequestStats
}

// RequestStats are the service-level robustness counters.
type RequestStats struct {
	// Overloads counts requests shed at admission because no slot freed
	// within the queue timeout.
	Overloads int64
	// Panics counts request panics recovered at the service boundary (each
	// also quarantines its artifact).
	Panics int64
	// DeriveFallbacks counts requests whose trace derivation declined and
	// fell back to a full replay.
	DeriveFallbacks int64
	// Shed counts requests that skipped the derive attempt entirely because
	// the degradation ladder had tripped.
	Shed int64
}

// Service is the façade over the registry and the pool: one instance serves
// any number of concurrent requests, building each distinct program once and
// replaying it on warmed simulators.  cmd/uhmd exposes it over HTTP;
// cmd/uhmrun and cmd/uhmbench drive it in-process.
type Service struct {
	registry     *Registry
	pool         *Pool
	workers      int
	slots        chan struct{}
	queueTimeout time.Duration
	shedAfter    int64
	// exclusiveMu serializes AdmitExclusive callers so two multi-slot
	// acquirers cannot interleave partial acquisitions and deadlock.
	exclusiveMu sync.Mutex

	// declineStreak counts consecutive requests whose trace derivation fell
	// back to full replay; past shedAfter the ladder trips and requests shed
	// the derive attempt.  probe counts shed-mode requests so every 16th one
	// still tries to derive, recovering the fast path when the storm ends.
	declineStreak atomic.Int64
	probe         atomic.Int64

	overloads       atomic.Int64
	panics          atomic.Int64
	deriveFallbacks atomic.Int64
	shed            atomic.Int64
}

// New constructs a Service and wires the registry's eviction callback to the
// pool, so evicting an artifact also retires the replayers warmed on its
// predecoded programs.
func New(opts Options) *Service {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shedAfter := int64(opts.ShedAfterDeclines)
	if shedAfter == 0 {
		shedAfter = 8
	}
	s := &Service{
		registry:     NewRegistry(opts.CapacityBytes),
		pool:         NewPool(opts.MaxIdlePerKey),
		workers:      workers,
		slots:        make(chan struct{}, workers),
		queueTimeout: opts.QueueTimeout,
		shedAfter:    shedAfter,
	}
	if opts.Store != nil {
		s.registry.SetStore(opts.Store)
	}
	s.registry.SetOnEvict(func(a *core.Artifact) {
		for _, pp := range a.CachedPredecoded() {
			s.pool.Invalidate(pp)
		}
	})
	return s
}

// Warmstart preloads the hottest max artifacts (max < 0 = all) from the
// attached disk tier; see Registry.Warmstart.  A no-op without a store.
func (s *Service) Warmstart(max int) (int, error) {
	return s.registry.Warmstart(max)
}

// Registry returns the artifact registry (shared, concurrency-safe).
func (s *Service) Registry() *Registry { return s.registry }

// Pool returns the replayer pool (shared, concurrency-safe).
func (s *Service) Pool() *Pool { return s.pool }

// Workers returns the request-parallelism bound.
func (s *Service) Workers() int { return s.workers }

// Stats snapshots the registry, pool and request counters.
func (s *Service) Stats() Stats {
	return Stats{
		Registry: s.registry.Stats(),
		Pool:     s.pool.Stats(),
		Requests: RequestStats{
			Overloads:       s.overloads.Load(),
			Panics:          s.panics.Load(),
			DeriveFallbacks: s.deriveFallbacks.Load(),
			Shed:            s.shed.Load(),
		},
	}
}

// Engine returns a core.Engine whose workload builds go through the
// registry: experiment sweeps run by the CLI and by the server share the
// same artifact cache and therefore the same code path.
func (s *Service) Engine() core.Engine {
	return core.Engine{Workers: s.workers, Build: s.registry.Workload}
}

// acquire takes a request slot, honouring cancellation while waiting.  An
// already-cancelled context is refused before a slot is taken (select picks
// randomly among ready cases, so the explicit check is load-bearing).  With a
// queue timeout configured, waiting is bounded: when every slot stays
// occupied for the whole window the request is shed with a typed
// *OverloadError rather than queueing unboundedly.
func (s *Service) acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if ferr := faultinject.Fire(faultinject.SiteAdmission); ferr != nil {
		s.overloads.Add(1)
		return &OverloadError{Waited: 0, RetryAfter: s.retryAfter()}
	}
	// Free slot: admit without arming the timer at all.
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if s.queueTimeout <= 0 {
		select {
		case s.slots <- struct{}{}:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	t := time.NewTimer(s.queueTimeout)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		s.overloads.Add(1)
		return &OverloadError{Waited: s.queueTimeout, RetryAfter: s.retryAfter()}
	}
}

// retryAfter suggests a client back-off: the queue timeout rounded up to a
// whole second (the granularity of the HTTP Retry-After header), at least 1s.
func (s *Service) retryAfter() time.Duration {
	ra := s.queueTimeout.Round(time.Second)
	if ra < s.queueTimeout || ra < time.Second {
		ra += time.Second
	}
	return ra
}

func (s *Service) release() { <-s.slots }

// AdmitExclusive runs fn holding every request slot.  Work that fans out
// internally to the full worker width — an experiment sweep through
// Engine() — must be admitted here, not through Admit: holding one slot
// while spawning Workers goroutines would put workers² of simulation on an
// N-worker box.  With all slots held, total concurrency stays exactly at
// the configured bound.  Acquisition honours cancellation; concurrent
// exclusive callers are serialized so partial acquisitions cannot deadlock
// against each other, and plain requests drain independently.
func (s *Service) AdmitExclusive(ctx context.Context, fn func(ctx context.Context) error) error {
	s.exclusiveMu.Lock()
	defer s.exclusiveMu.Unlock()
	acquired := 0
	defer func() {
		for ; acquired > 0; acquired-- {
			s.release()
		}
	}()
	for i := 0; i < s.workers; i++ {
		if err := s.acquire(ctx); err != nil {
			return err
		}
		acquired++
	}
	return fn(ctx)
}

// QuarantineSource marks the program's content address as a poison pill: it
// will never be rebuilt or rerun by this process.  cmd/uhmd's last-resort
// panic recovery uses it when a crash escapes the service-level isolation.
func (s *Service) QuarantineSource(src string, level core.Level) bool {
	return s.registry.Quarantine(KeyOf(src, level))
}

// ArtifactSource returns the (possibly cached) artifact for source text.
func (s *Service) ArtifactSource(name, src string, level core.Level) (*core.Artifact, error) {
	return s.registry.Source(name, src, level)
}

// ArtifactWorkload returns the (possibly cached) artifact for a built-in
// workload.
func (s *Service) ArtifactWorkload(name string, level core.Level) (*core.Artifact, error) {
	return s.registry.Workload(name, level)
}

// RunArtifact simulates the artifact under one organisation on a pooled
// replayer.  The returned report is the caller's own copy.
func (s *Service) RunArtifact(ctx context.Context, art *core.Artifact, strategy sim.Strategy, cfg sim.Config) (*sim.Report, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	return s.runPooled(art, strategy, cfg)
}

// runPooled is the request hot path: predecode (cached on the artifact),
// check out a warmed replayer, derive the report from the artifact's shared
// execution trace (recorded once per predecoded program, counted in its
// footprint, falling back to a full replay when the trace cannot answer
// exactly), clone the report, check the replayer back in, and refresh the
// registry's byte accounting — which now includes the cached trace, so it is
// evicted with its artifact.
//
// The whole path runs under panic isolation: a crash anywhere inside —
// predecode, checkout, replay — is recovered into a typed *PanicError, the
// artifact is quarantined as a poison pill (so the same program cannot
// repeatedly kill workers), and the deferred lease discard guarantees no
// replayer leaks on the way out.
func (s *Service) runPooled(art *core.Artifact, strategy sim.Strategy, cfg sim.Config) (rep *sim.Report, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Add(1)
			s.registry.QuarantineArtifact(art)
			rep, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if ferr := faultinject.Fire(faultinject.SiteServiceRun); ferr != nil {
		return nil, ferr
	}
	pp, err := art.Predecoded(cfg.Degree)
	if err != nil {
		return nil, err
	}
	lease, err := s.pool.Acquire(pp, strategy, cfg)
	if err != nil {
		return nil, err
	}
	// Discard is idempotent with the checkin below: on the normal and error
	// paths it is a no-op, and on a panic it is the backstop that keeps the
	// lease accounting exact.
	defer lease.Discard()
	out, err := s.replayLease(lease)
	if err != nil {
		// A failed replay leaves the replayer's structures in a defined but
		// partially-run state; Replay resets everything up front, so reuse
		// is still sound — check in normally.
		s.checkin(art, lease)
		return nil, err
	}
	out = out.Clone()
	s.checkin(art, lease)
	s.registry.Sync(art)
	return out, nil
}

// replayLease runs one checked-out replayer through the degradation ladder.
// Healthy steady state attempts the trace derivation (falling back to full
// replay when the trace cannot answer); under an ErrNoTrace storm —
// shedAfter consecutive fallbacks — it sheds the derive attempt entirely and
// replays directly, probing every 16th request so the fast path recovers as
// soon as derivations succeed again.  Replay and ReplayDerived answer
// identical reports, so shedding trades only derivation speed, never
// correctness or availability.
func (s *Service) replayLease(lease *Lease) (*sim.Report, error) {
	if s.shedAfter > 0 && s.declineStreak.Load() >= s.shedAfter && s.probe.Add(1)%16 != 0 {
		s.shed.Add(1)
		return lease.R.Replay()
	}
	rep, err := lease.R.ReplayDerived()
	if err != nil {
		return nil, err
	}
	if rep.Derived {
		s.declineStreak.Store(0)
	} else {
		s.declineStreak.Add(1)
		s.deriveFallbacks.Add(1)
	}
	return rep, nil
}

// checkin returns a lease, repooling only when the artifact is still
// resident in the registry.  The liveness check closes the eviction race
// Pool.Invalidate alone cannot see: a lease taken on a stale artifact after
// its eviction (no outstanding lease existed at invalidation time, so no
// dead mark) would otherwise repopulate an unreachable pool key.  An
// eviction racing this check is still safe — the lease is outstanding until
// checkin runs, so Invalidate marks the program dead and the check-in
// discards.
func (s *Service) checkin(art *core.Artifact, lease *Lease) {
	// The spurious-invalidation chaos site: invalidating the program while
	// its own lease is still outstanding exercises the dead-marking that
	// normally only registry evictions drive — the checkin below must then
	// discard, and the accounting must stay exact.
	if faultinject.Fire(faultinject.SitePoolInvalidate) != nil {
		s.pool.Invalidate(lease.key.pp)
	}
	if s.registry.Live(art) {
		lease.Release()
	} else {
		lease.Discard()
	}
}

// RunSource builds (or finds) the artifact for the source text and runs it.
func (s *Service) RunSource(ctx context.Context, name, src string, level core.Level, strategy sim.Strategy, cfg sim.Config) (*sim.Report, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	art, err := s.registry.Source(name, src, level)
	if err != nil {
		return nil, err
	}
	return s.runPooled(art, strategy, cfg)
}

// RunWorkload builds (or finds) a built-in workload's artifact and runs it.
func (s *Service) RunWorkload(ctx context.Context, name string, level core.Level, strategy sim.Strategy, cfg sim.Config) (*sim.Report, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	art, err := s.registry.Workload(name, level)
	if err != nil {
		return nil, err
	}
	return s.runPooled(art, strategy, cfg)
}

// CompareArtifact runs every organisation on pooled replayers and verifies
// the paper's equivalence invariant.  Reports come back in core.Strategies()
// order; on divergence they are returned alongside the error so the caller
// can render a diff.
func (s *Service) CompareArtifact(ctx context.Context, art *core.Artifact, cfg sim.Config) ([]*sim.Report, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	return s.comparePooled(ctx, art, cfg)
}

// comparePooled runs all strategies under an already-held request slot.
func (s *Service) comparePooled(ctx context.Context, art *core.Artifact, cfg sim.Config) ([]*sim.Report, error) {
	var reports []*sim.Report
	for _, strategy := range core.Strategies() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep, err := s.runPooled(art, strategy, cfg)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", strategy, err)
		}
		reports = append(reports, rep)
	}
	if err := sim.VerifyOutputs(reports); err != nil {
		return reports, err
	}
	return reports, nil
}

// CompareSource builds (or finds) the artifact for the source text and
// compares every organisation on it.
func (s *Service) CompareSource(ctx context.Context, name, src string, level core.Level, cfg sim.Config) ([]*sim.Report, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	art, err := s.registry.Source(name, src, level)
	if err != nil {
		return nil, err
	}
	return s.comparePooled(ctx, art, cfg)
}

// CompareWorkload builds (or finds) a built-in workload's artifact and
// compares every organisation on it.
func (s *Service) CompareWorkload(ctx context.Context, name string, level core.Level, cfg sim.Config) ([]*sim.Report, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	art, err := s.registry.Workload(name, level)
	if err != nil {
		return nil, err
	}
	return s.comparePooled(ctx, art, cfg)
}

// Conformance runs the full differential cross-product on one source
// program.  It deliberately does not use the registry or the pool: the
// harness's value is that it rebuilds everything from scratch and checks the
// cached paths against the fresh ones.
func (s *Service) Conformance(ctx context.Context, name, src string, cfg sim.Config) ([]core.Divergence, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return core.CheckConformance(name, src, cfg)
}
