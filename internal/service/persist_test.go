package service

import (
	"context"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"uhm/internal/core"
	"uhm/internal/store"
)

const persistSrc = `
program persisted;
var i, acc;
begin
  i := 1;
  acc := 0;
  while i <= 15 do
  begin
    acc := acc + i * i;
    i := i + 1
  end;
  print acc
end.`

func newStoreService(t *testing.T, dir string) (*Service, *store.Store) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return New(Options{Store: st}), st
}

// TestWriteThroughAndDiskReadThrough pins the two-tier contract: a build
// writes its container through to disk, and a later process (a fresh Service
// on the same directory) serves the same program from that container with
// zero compile-pipeline builds and byte-identical output.
func TestWriteThroughAndDiskReadThrough(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cfg := core.DefaultConfig()

	svc1, _ := newStoreService(t, dir)
	rep1, err := svc1.RunSource(ctx, "persisted", persistSrc, core.LevelStack, core.WithDTB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st1 := svc1.Registry().Stats()
	if st1.Builds != 1 {
		t.Fatalf("first process: %d builds, want 1", st1.Builds)
	}
	if st1.DiskEntries != 1 || st1.Disk.Puts == 0 {
		t.Fatalf("first process disk stats = %+v with %d entries, want the container written",
			st1.Disk, st1.DiskEntries)
	}

	// "Restart": a fresh service over the same store directory.
	svc2, _ := newStoreService(t, dir)
	rep2, err := svc2.RunSource(ctx, "persisted", persistSrc, core.LevelStack, core.WithDTB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2 := svc2.Registry().Stats()
	if st2.Builds != 0 {
		t.Fatalf("restarted process: %d builds, want 0 (served from disk)", st2.Builds)
	}
	if st2.Misses != 1 || st2.Disk.Hits != 1 {
		t.Fatalf("restarted process stats = %+v (disk %+v), want 1 memory miss served by 1 disk hit",
			st2, st2.Disk)
	}
	if !slices.Equal(rep1.Output, rep2.Output) || rep1.SemanticCycles != rep2.SemanticCycles {
		t.Fatalf("disk-served run diverges: %v/%d vs %v/%d",
			rep2.Output, rep2.SemanticCycles, rep1.Output, rep1.SemanticCycles)
	}
	if err := svc2.Registry().VerifyAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestEnrichmentRePersists pins the Sync write-through: forms that
// materialise after the build — a new degree, the recorded trace — grow the
// container on disk, so a restart gets them back too.
func TestEnrichmentRePersists(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	svc, st := newStoreService(t, dir)

	art, err := svc.ArtifactSource("persisted", persistSrc, core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	_, baseBytes := st.Usage()

	// Running records the trace and predecodes the default degree; a second
	// config adds another degree.  Each Sync may re-persist.
	cfg := core.DefaultConfig()
	if _, err := svc.RunArtifact(ctx, art, core.WithDTB, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Degree = core.DegreePacked
	if _, err := svc.RunArtifact(ctx, art, core.Conventional, cfg); err != nil {
		t.Fatal(err)
	}
	entries, grownBytes := st.Usage()
	if entries != 1 {
		t.Fatalf("%d containers, want the one re-persisted in place", entries)
	}
	if grownBytes <= baseBytes {
		t.Fatalf("container did not grow with enrichment: %d -> %d bytes", baseBytes, grownBytes)
	}

	// The restarted process must see the enriched forms: running derives from
	// the persisted trace without recording (PersistableForms counts it).
	svc2, _ := newStoreService(t, dir)
	art2, err := svc2.ArtifactSource("persisted", persistSrc, core.LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	if forms := art2.PersistableForms(); forms < 4 {
		t.Fatalf("rehydrated artifact has %d persistable forms, want DIR + 2 degrees + trace", forms)
	}
	if svc2.Registry().Stats().Builds != 0 {
		t.Fatal("enriched reload still rebuilt")
	}
}

// TestCorruptContainerDegradesToRebuild pins the robustness contract: a
// corrupted container is detected by verify-by-hash, quietly dropped,
// rebuilt from source, and replaced on disk — the request sees only a
// correct answer, and the books stay exact.
func TestCorruptContainerDegradesToRebuild(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cfg := core.DefaultConfig()

	svc1, _ := newStoreService(t, dir)
	rep1, err := svc1.RunSource(ctx, "persisted", persistSrc, core.LevelStack, core.WithDTB, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the container on disk.
	files, err := filepath.Glob(filepath.Join(dir, "*.uhma"))
	if err != nil || len(files) != 1 {
		t.Fatalf("glob = %v, %v", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, st2 := newStoreService(t, dir)
	rep2, err := svc2.RunSource(ctx, "persisted", persistSrc, core.LevelStack, core.WithDTB, cfg)
	if err != nil {
		t.Fatalf("request over corrupt container failed: %v", err)
	}
	if !slices.Equal(rep1.Output, rep2.Output) {
		t.Fatalf("rebuild after corruption diverges: %v vs %v", rep2.Output, rep1.Output)
	}
	stats := svc2.Registry().Stats()
	if stats.Builds != 1 {
		t.Fatalf("%d builds, want 1 clean rebuild", stats.Builds)
	}
	if stats.Disk.VerifyFails != 1 {
		t.Fatalf("disk stats = %+v, want 1 verify fail", stats.Disk)
	}
	// Write-through replaced the bad container: it verifies again.
	good, err := st2.Get(KeyOf(persistSrc, core.LevelStack).Hash, core.LevelStack)
	if err != nil {
		t.Fatalf("container not replaced after rebuild: %v", err)
	}
	if good.Source != persistSrc {
		t.Fatal("replaced container carries the wrong source")
	}
	if err := svc2.Registry().VerifyAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineDeletesContainer: a poison pill's container must not survive
// to wedge the next process's warm start.
func TestQuarantineDeletesContainer(t *testing.T) {
	dir := t.TempDir()
	svc, st := newStoreService(t, dir)
	if _, err := svc.ArtifactSource("persisted", persistSrc, core.LevelStack); err != nil {
		t.Fatal(err)
	}
	if entries, _ := st.Usage(); entries != 1 {
		t.Fatalf("%d containers before quarantine", entries)
	}
	if !svc.QuarantineSource(persistSrc, core.LevelStack) {
		t.Fatal("quarantine reported already-quarantined")
	}
	if entries, _ := st.Usage(); entries != 0 {
		t.Fatal("quarantined artifact's container survived on disk")
	}
	// And a warm start on the same registry skips the (now absent) key.
	if n, err := svc.Warmstart(-1); err != nil || n != 0 {
		t.Fatalf("Warmstart = %d, %v", n, err)
	}
}

// TestWarmstart pins the warm-start path: a fresh service preloads the
// persisted working set before serving, and the first requests are pure
// memory hits — zero builds, zero disk reads beyond the preload.
func TestWarmstart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cfg := core.DefaultConfig()

	svc1, _ := newStoreService(t, dir)
	sources := []struct{ name, src string }{
		{"persisted", persistSrc},
		{"second", `program second; var n; begin n := 6; print n * 7 end.`},
	}
	var want [][]int64
	for _, s := range sources {
		rep, err := svc1.RunSource(ctx, s.name, s.src, core.LevelStack, core.WithDTB, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rep.Output)
	}

	svc2, _ := newStoreService(t, dir)
	loaded, err := svc2.Warmstart(-1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != len(sources) {
		t.Fatalf("Warmstart loaded %d, want %d", loaded, len(sources))
	}
	st := svc2.Registry().Stats()
	if st.WarmLoads != int64(len(sources)) || st.Entries != len(sources) {
		t.Fatalf("stats after warm start = %+v", st)
	}
	for i, s := range sources {
		rep, err := svc2.RunSource(ctx, s.name, s.src, core.LevelStack, core.WithDTB, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(rep.Output, want[i]) {
			t.Fatalf("%s: warm output %v, want %v", s.name, rep.Output, want[i])
		}
	}
	st = svc2.Registry().Stats()
	if st.Builds != 0 || st.Misses != 0 || st.Hits != int64(len(sources)) {
		t.Fatalf("warm-started service stats = %+v, want pure memory hits", st)
	}
	if err := svc2.Registry().VerifyAccounting(); err != nil {
		t.Fatal(err)
	}

	// A bounded warm start loads only the hottest entry.
	svc3, _ := newStoreService(t, dir)
	if loaded, err := svc3.Warmstart(1); err != nil || loaded != 1 {
		t.Fatalf("Warmstart(1) = %d, %v", loaded, err)
	}
}

// TestStorelessServiceUnchanged: without a store, the stats report no disk
// activity and the memory-only behaviour is untouched.
func TestStorelessServiceUnchanged(t *testing.T) {
	svc := New(Options{})
	if _, err := svc.ArtifactSource("persisted", persistSrc, core.LevelStack); err != nil {
		t.Fatal(err)
	}
	st := svc.Registry().Stats()
	if st.Disk != (store.TierStats{}) || st.DiskEntries != 0 || st.WarmLoads != 0 {
		t.Fatalf("store-less service reports disk activity: %+v", st)
	}
	if n, err := svc.Warmstart(-1); err != nil || n != 0 {
		t.Fatalf("store-less Warmstart = %d, %v", n, err)
	}
}
