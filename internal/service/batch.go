package service

import (
	"context"

	"uhm/internal/core"
	"uhm/internal/sim"
)

// Batch admits fn under a single request slot and hands it a BatchRunner
// whose run and compare methods skip per-item admission: the whole batch
// costs one slot acquisition and one release, however many items it carries.
// This is the batching half of the fleet amortisation story — the per-request
// overhead (admission channel ops, and at the HTTP layer one decode and one
// response envelope) is paid once per batch instead of once per run.
//
// The slot is released by defer, so it cannot leak even if fn panics; the
// per-item run paths keep their own panic isolation (runPooled recovers into
// a typed *PanicError and quarantines the artifact), so one poisoned item
// fails itself without failing its siblings or the batch envelope.
//
// A batch occupies its one slot for its whole duration, exactly like a
// single long request: the -workers bound still caps total simulation
// concurrency, and admission still sheds with a typed *OverloadError when no
// slot frees within the queue timeout.
func (s *Service) Batch(ctx context.Context, fn func(ctx context.Context, b *BatchRunner) error) error {
	if err := s.acquire(ctx); err != nil {
		return err
	}
	defer s.release()
	return fn(ctx, &BatchRunner{s: s})
}

// BatchRunner is the slotless face of the service, valid only inside the
// Batch callback that created it: its methods run under the slot Batch
// already holds.  Using one outside its callback would bypass admission.
type BatchRunner struct {
	s *Service
}

// RunSource builds (or finds) the artifact for the source text and runs it
// under the batch's slot.
func (b *BatchRunner) RunSource(ctx context.Context, name, src string, level core.Level, strategy sim.Strategy, cfg sim.Config) (*sim.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	art, err := b.s.registry.Source(name, src, level)
	if err != nil {
		return nil, err
	}
	return b.s.runPooled(art, strategy, cfg)
}

// RunWorkload builds (or finds) a built-in workload's artifact and runs it
// under the batch's slot.
func (b *BatchRunner) RunWorkload(ctx context.Context, name string, level core.Level, strategy sim.Strategy, cfg sim.Config) (*sim.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	art, err := b.s.registry.Workload(name, level)
	if err != nil {
		return nil, err
	}
	return b.s.runPooled(art, strategy, cfg)
}

// CompareSource runs every organisation on the source program under the
// batch's slot and verifies the equivalence invariant.
func (b *BatchRunner) CompareSource(ctx context.Context, name, src string, level core.Level, cfg sim.Config) ([]*sim.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	art, err := b.s.registry.Source(name, src, level)
	if err != nil {
		return nil, err
	}
	return b.s.comparePooled(ctx, art, cfg)
}

// CompareWorkload runs every organisation on a built-in workload under the
// batch's slot and verifies the equivalence invariant.
func (b *BatchRunner) CompareWorkload(ctx context.Context, name string, level core.Level, cfg sim.Config) ([]*sim.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	art, err := b.s.registry.Workload(name, level)
	if err != nil {
		return nil, err
	}
	return b.s.comparePooled(ctx, art, cfg)
}
