// Package service is the concurrency-safe service layer over the pipeline:
// it lifts the paper's amortisation argument from "one process run" to "a
// long-running process serving many requests".  The binding work the paper
// buffers — fetch, decode, translate, and in this reproduction also parse,
// compile, predecode and closure-compile — is done once per distinct program
// and shared across every request that needs it.
//
// Three pieces compose:
//
//   - Registry: a content-addressed artifact cache keyed by
//     (sha256(source), level).  Concurrent requests for the same program are
//     collapsed into one build (singleflight); completed artifacts are kept
//     under a byte-accounted LRU budget, with hit/miss/eviction statistics.
//     With a store attached (internal/store) it is two-tiered: builds and
//     enrichments write containers through to disk, memory misses read
//     through with verify-by-hash (corrupt containers degrade to clean
//     rebuilds), and Warmstart preloads the hottest containers at startup.
//   - Pool: warmed sim.Replayers keyed by (predecoded program, strategy,
//     config fingerprint).  A checked-out replayer has its memory hierarchy,
//     DTB/cache, host machine and report already built, so steady-state
//     request handling inherits the 0 allocs/op replay loop.
//   - Service: the façade tying the two together with request-level
//     parallelism bounded like core.Engine, plus a registry-backed
//     core.Engine so the named experiments share the same artifact cache.
//
// The layer is hardened against partial failure: admission waiting is
// bounded by a queue timeout (typed *OverloadError with a Retry-After
// hint), run-path panics are recovered at the service boundary (typed
// *PanicError) and quarantine the offending artifact as a poison pill
// (typed *QuarantineError on retry), failed builds are reported to every
// singleflight waiter without being cached, and a derive-decline storm
// trips a degradation ladder that sheds derivation in favour of plain
// replays.  ChaosSweep replays seeded internal/faultinject plans against
// concurrent workloads and asserts the robustness invariants; Registry and
// Pool expose VerifyAccounting for byte- and lease-exactness checks.
//
// cmd/uhmd serves this layer over HTTP; cmd/uhmrun and cmd/uhmbench run the
// identical code path in-process, so the CLI and the server cannot drift.
package service
