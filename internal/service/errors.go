package service

import (
	"fmt"
	"time"
)

// OverloadError reports that a request was shed at admission: every request
// slot stayed occupied for the whole queue timeout.  It is the typed form of
// the load-shedding contract — cmd/uhmd maps it to a structured 503 with a
// Retry-After hint rather than letting the client block unboundedly.
type OverloadError struct {
	// Waited is how long admission queued before giving up.
	Waited time.Duration
	// RetryAfter is the suggested client back-off.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("service: overloaded: no request slot freed within %s (retry after %s)",
		e.Waited, e.RetryAfter)
}

// PanicError is a request panic caught at the service boundary.  The request
// slot and the replayer lease are already accounted for by the time callers
// see it; the offending artifact has been quarantined so the same program
// cannot repeatedly kill workers.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery, for the server log.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("service: request panicked: %v", e.Value)
}

// QuarantineError reports that the requested program is a poison pill: a
// previous build or run of it panicked, and the registry refuses to touch it
// again for the process lifetime.
type QuarantineError struct {
	Key Key
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("service: program %s is quarantined after a crash; it will not be rebuilt or rerun", e.Key)
}
