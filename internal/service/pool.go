package service

import (
	"fmt"
	"runtime"
	"sync"

	"uhm/internal/faultinject"
	"uhm/internal/sim"
)

// poolKey identifies a class of interchangeable replayers: one predecoded
// program (which pins the artifact and the encoding degree), one strategy,
// one configuration fingerprint.  Any replayer under the key replays the
// same program at the same cost, byte for byte.
type poolKey struct {
	pp       *sim.PredecodedProgram
	strategy sim.Strategy
	fp       sim.Fingerprint
}

// PoolStats are the pool's observability counters.
type PoolStats struct {
	// Hits counts checkouts served by a warmed idle replayer; Misses counts
	// checkouts that had to construct one.
	Hits   int64
	Misses int64
	// Discards counts replayers dropped at check-in (idle bound reached, or
	// their program was invalidated while checked out).
	Discards int64
	// Invalidated counts idle replayers dropped because their artifact was
	// evicted from the registry.
	Invalidated int64
	// Idle and Leased describe current residency.
	Idle   int
	Leased int
}

// Pool keeps warmed sim.Replayers for reuse.  A Replayer owns its memory
// hierarchy, DTB/cache, host machine and report, all built by NewReplayer;
// checking one out and calling Replay therefore does no construction work at
// all — the steady-state replay loop is 0 allocs/op.  Replayers are not safe
// for concurrent use, which is exactly what the checkout discipline
// enforces: a leased replayer belongs to one request until released.
//
// All Pool methods are safe for concurrent use.
type Pool struct {
	maxIdlePerKey int
	// maxIdleTotal bounds idle replayers across every key.  Keys embed the
	// client-controlled config fingerprint, so without a global bound a
	// client iterating distinct configurations (max_instructions = 1, 2,
	// 3, ...) would park one warm replayer per value forever.
	maxIdleTotal int

	mu    sync.Mutex
	clock int64 // recency stamps for idle eviction
	idle  map[poolKey][]idleEntry
	// leased counts checked-out replayers per program; dead marks programs
	// invalidated while some of their replayers were checked out, so late
	// check-ins are discarded instead of repopulating a retired key.  Both
	// maps are pruned when the last lease of a program returns, so neither
	// grows beyond the set of live programs.
	leased map[*sim.PredecodedProgram]int
	dead   map[*sim.PredecodedProgram]bool
	stats  PoolStats
}

// idleEntry is one parked replayer with the stamp of its check-in, so the
// global idle bound can evict the stalest entry rather than refuse new ones.
type idleEntry struct {
	r     *sim.Replayer
	stamp int64
}

// NewPool returns a pool keeping at most maxIdlePerKey idle replayers per
// (program, strategy, config) class; zero or negative selects
// runtime.GOMAXPROCS(0), matching the bound on concurrent requests.
func NewPool(maxIdlePerKey int) *Pool {
	if maxIdlePerKey <= 0 {
		maxIdlePerKey = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		maxIdlePerKey: maxIdlePerKey,
		maxIdleTotal:  16 * maxIdlePerKey,
		idle:          make(map[poolKey][]idleEntry),
		leased:        make(map[*sim.PredecodedProgram]int),
		dead:          make(map[*sim.PredecodedProgram]bool),
	}
}

// Lease is a checked-out replayer.  The caller owns R until Release; the
// report returned by R.Replay is owned by the replayer and must be cloned
// (sim.Report.Clone) before Release if it outlives the lease.
type Lease struct {
	R *sim.Replayer

	pool     *Pool
	key      poolKey
	released bool
}

// Acquire checks out a warmed replayer for the program under the strategy
// and configuration, constructing one only when no idle replayer of the
// exact class exists.
func (p *Pool) Acquire(pp *sim.PredecodedProgram, strategy sim.Strategy, cfg sim.Config) (*Lease, error) {
	if ferr := faultinject.Fire(faultinject.SitePoolAcquire); ferr != nil {
		return nil, fmt.Errorf("service: replayer checkout: %w", ferr)
	}
	key := poolKey{pp: pp, strategy: strategy, fp: cfg.Fingerprint()}
	p.mu.Lock()
	if rs := p.idle[key]; len(rs) > 0 {
		r := rs[len(rs)-1].r
		rs[len(rs)-1] = idleEntry{}
		if len(rs) == 1 {
			delete(p.idle, key)
		} else {
			p.idle[key] = rs[:len(rs)-1]
		}
		p.stats.Hits++
		p.stats.Idle--
		p.stats.Leased++
		p.leased[pp]++
		p.mu.Unlock()
		return &Lease{R: r, pool: p, key: key}, nil
	}
	p.stats.Misses++
	p.mu.Unlock()

	r, err := sim.NewReplayer(pp, strategy, cfg)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.stats.Leased++
	p.leased[pp]++
	p.mu.Unlock()
	return &Lease{R: r, pool: p, key: key}, nil
}

// Release returns the replayer to the pool.  Replayers of invalidated
// programs, and check-ins beyond the per-key idle bound, are discarded.
// Release is idempotent.
func (l *Lease) Release() { l.checkin(false) }

// Discard ends the lease without repooling the replayer.  The service uses
// it when the artifact behind the program is no longer live in the registry:
// the dead-marking in Invalidate only covers programs with outstanding
// leases at invalidation time, so a lease taken on a stale artifact *after*
// its eviction must be kept out of the idle lists here — repooled, it would
// sit under a retired key forever (an evicted artifact rebuilds to a fresh
// program instance, so no future Acquire or Invalidate ever matches it).
// Discard is idempotent with Release.
func (l *Lease) Discard() { l.checkin(true) }

func (l *Lease) checkin(discard bool) {
	if l.released {
		return
	}
	l.released = true
	// A check-in fault forces the discard path: the replayer is dropped
	// instead of repooled, which must only cost a rebuild on the next
	// checkout, never unbalance the lease accounting.
	if !discard && faultinject.Fire(faultinject.SitePoolCheckin) != nil {
		discard = true
	}
	p := l.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	pp := l.key.pp
	p.stats.Leased--
	if p.leased[pp]--; p.leased[pp] <= 0 {
		delete(p.leased, pp)
	}
	if p.dead[pp] {
		p.stats.Discards++
		if p.leased[pp] == 0 {
			delete(p.dead, pp)
		}
		return
	}
	if discard || len(p.idle[l.key]) >= p.maxIdlePerKey {
		p.stats.Discards++
		return
	}
	// At the global bound, evict the stalest idle entry rather than refuse
	// the fresh one: a client sweeping distinct config fingerprints would
	// otherwise pin the pool full of never-reacquired replayers and every
	// hot key's check-in would be discarded for the process lifetime.
	if p.stats.Idle >= p.maxIdleTotal {
		p.evictStalestLocked()
	}
	p.clock++
	p.idle[l.key] = append(p.idle[l.key], idleEntry{r: l.R, stamp: p.clock})
	p.stats.Idle++
}

// evictStalestLocked drops the least recently checked-in idle replayer.
// Each per-key slice is stacked in check-in order, so its oldest entry is
// index 0; the scan is O(keys) and runs only when the global bound is hit.
func (p *Pool) evictStalestLocked() {
	var victim poolKey
	var found bool
	var oldest int64
	for key, rs := range p.idle {
		if s := rs[0].stamp; !found || s < oldest {
			victim, oldest, found = key, s, true
		}
	}
	if !found {
		return
	}
	rs := p.idle[victim]
	if len(rs) == 1 {
		delete(p.idle, victim)
	} else {
		p.idle[victim] = append(rs[:0:0], rs[1:]...)
	}
	p.stats.Idle--
	p.stats.Discards++
}

// Invalidate drops every idle replayer built on the program and marks it so
// that still-checked-out replayers are discarded on release.  The registry's
// eviction callback feeds this.
func (p *Pool) Invalidate(pp *sim.PredecodedProgram) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, rs := range p.idle {
		if key.pp != pp {
			continue
		}
		p.stats.Invalidated += int64(len(rs))
		p.stats.Idle -= len(rs)
		delete(p.idle, key)
	}
	if p.leased[pp] > 0 {
		p.dead[pp] = true
	}
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// VerifyAccounting cross-checks the pool's books: the Idle counter must equal
// the replayers actually parked, the Leased counter must equal the per-program
// lease counts, and dead marks may exist only for programs with outstanding
// leases.  The chaos harness calls it after every drained fault plan, when
// Leased must additionally be zero — a nonzero residue there is a leaked or
// double-returned replayer.
func (p *Pool) VerifyAccounting() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	idle := 0
	for key, rs := range p.idle {
		if len(rs) == 0 {
			return fmt.Errorf("pool: empty idle list left under key %v", key)
		}
		idle += len(rs)
	}
	if idle != p.stats.Idle {
		return fmt.Errorf("pool: Idle counter %d, %d replayers actually parked", p.stats.Idle, idle)
	}
	var leased int64
	for pp, n := range p.leased {
		if n <= 0 {
			return fmt.Errorf("pool: non-positive lease count %d retained for %p", n, pp)
		}
		leased += int64(n)
	}
	if leased != int64(p.stats.Leased) {
		return fmt.Errorf("pool: Leased counter %d, per-program counts sum to %d", p.stats.Leased, leased)
	}
	for pp := range p.dead {
		if p.leased[pp] == 0 {
			return fmt.Errorf("pool: dead mark retained for %p with no outstanding lease", pp)
		}
	}
	return nil
}
