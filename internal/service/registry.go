package service

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"uhm/internal/core"
	"uhm/internal/faultinject"
	"uhm/internal/store"
	"uhm/internal/workload"
)

// Key identifies an artifact by content, not by name: the SHA-256 of its
// MiniLang source text plus the semantic level it is compiled at.  Two
// requests that submit byte-identical programs share one artifact regardless
// of what they call it.
type Key struct {
	Hash  [sha256.Size]byte
	Level core.Level
}

// KeyOf computes the content address of a source program at a level.
func KeyOf(src string, level core.Level) Key {
	return Key{Hash: sha256.Sum256([]byte(src)), Level: level}
}

// String renders the key short enough for logs and stats.
func (k Key) String() string { return fmt.Sprintf("%x/%s", k.Hash[:6], k.Level) }

// RegistryStats are the registry's observability counters.
type RegistryStats struct {
	// Hits counts lookups served from the cache, including singleflight
	// waiters that blocked on an in-flight build instead of duplicating it.
	Hits int64
	// Misses counts lookups not resident in memory (served from the disk
	// tier or built).
	Misses int64
	// Builds counts compile-pipeline builds started; it is the "artifact
	// rebuild work" counter a warmed cache must not increment.  A lookup
	// served by the disk tier counts a Miss but not a Build.
	Builds int64
	// BuildErrors counts builds that failed; failed builds are not cached.
	BuildErrors int64
	// Evictions counts artifacts dropped by the byte-budget LRU.
	Evictions int64
	// Quarantines counts programs marked as poison pills after a build or
	// run panicked on them; Quarantined is the current count of keys the
	// registry refuses to rebuild.
	Quarantines int64
	Quarantined int
	// Entries and Bytes describe the current residency; CapacityBytes is the
	// configured budget (0 = unbounded).
	Entries       int
	Bytes         int64
	CapacityBytes int64
	// WarmLoads counts artifacts preloaded from the disk tier by Warmstart.
	WarmLoads int64
	// Disk mirrors the disk tier's own counters; DiskEntries and DiskBytes
	// describe its current residency.  All zero when no store is attached.
	Disk        store.TierStats
	DiskEntries int
	DiskBytes   int64
}

// regEntry is one registry slot.  ready is closed when the build completes
// (the singleflight barrier); art/err must only be read after that.
type regEntry struct {
	key      Key
	name     string
	src      string // source text, kept for disk-tier write-through
	srcBytes int64
	art      *core.Artifact
	err      error
	ready    chan struct{}
	bytes    int64 // last accounted footprint, including srcBytes
	lastUse  int64 // recency stamp from Registry.clock
	building bool
	// persisted is the PersistableForms count of the last container written
	// for this entry; persisting serializes concurrent write-through so two
	// Syncs cannot encode the same artifact at once.
	persisted  int
	persisting bool
}

// Registry is the content-addressed artifact cache.  All methods are safe
// for concurrent use.
type Registry struct {
	capacity int64
	// onEvict, if set, is called (outside the registry lock) with each
	// artifact dropped by the LRU; the service layer uses it to invalidate
	// pooled replayers built on the artifact's predecoded programs.
	onEvict func(*core.Artifact)
	// disk, if set, is the second tier: misses read through it before
	// building, successful builds write through to it, and enrichment (new
	// predecoded degrees, a recorded trace) re-persists on Sync.  Disk
	// failures never surface to requests — a bad read or a corrupt container
	// degrades to a clean rebuild, a failed write leaves the memory tier
	// serving — so the tier adds durability without adding a failure mode.
	disk *store.Store

	mu      sync.Mutex
	entries map[Key]*regEntry
	byArt   map[*core.Artifact]*regEntry
	// quarantined holds poison-pill keys: programs whose build or run
	// panicked.  A quarantined key is never rebuilt, so one bad program
	// cannot repeatedly kill workers.
	quarantined map[Key]bool
	clock       int64
	bytes       int64
	stats       RegistryStats
}

// NewRegistry returns a registry with the given byte budget (0 = unbounded).
func NewRegistry(capacityBytes int64) *Registry {
	return &Registry{
		capacity:    capacityBytes,
		entries:     make(map[Key]*regEntry),
		byArt:       make(map[*core.Artifact]*regEntry),
		quarantined: make(map[Key]bool),
	}
}

// SetOnEvict installs the eviction callback.  It must be set before the
// registry is shared between goroutines.
func (r *Registry) SetOnEvict(fn func(*core.Artifact)) { r.onEvict = fn }

// SetStore attaches the disk tier.  It must be set before the registry is
// shared between goroutines.
func (r *Registry) SetStore(st *store.Store) { r.disk = st }

// Source returns the artifact for the given source text at the given level,
// building it exactly once per content address: concurrent callers with the
// same program block on one build.  name labels the artifact on first build
// only (content addressing means later callers may arrive with a different
// name for the same program).
func (r *Registry) Source(name, src string, level core.Level) (*core.Artifact, error) {
	key := KeyOf(src, level)

	r.mu.Lock()
	if r.quarantined[key] {
		r.mu.Unlock()
		return nil, &QuarantineError{Key: key}
	}
	if e, ok := r.entries[key]; ok {
		e.lastUse = r.tick()
		r.stats.Hits++
		r.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		return e.art, nil
	}
	e := &regEntry{key: key, name: name, src: src, srcBytes: int64(len(src)),
		ready: make(chan struct{}), building: true, lastUse: r.tick()}
	r.entries[key] = e
	r.stats.Misses++
	r.mu.Unlock()

	art, built, err := r.provide(key, name, src, level)

	r.mu.Lock()
	e.art, e.err = art, err
	e.building = false
	if built {
		r.stats.Builds++
	}
	e.persisted = 0
	if !built && err == nil {
		// A disk-served artifact is already persisted in its loaded form;
		// write-through would only rewrite identical bytes until enrichment
		// materialises something new.
		e.persisted = art.PersistableForms()
	}
	var evicted []*core.Artifact
	if err != nil {
		// Failed builds are reported to every waiter but not cached: the
		// failure may be transient only in the sense that the caller fixes
		// the program, and a fixed program has a different content address
		// anyway — but holding error entries would let garbage requests
		// squat on the budget.  A build that *panicked* is worse than
		// failed — the program is a poison pill, quarantined so it can
		// never be resubmitted to kill another worker.
		r.stats.BuildErrors++
		delete(r.entries, key)
		var pe *PanicError
		if errors.As(err, &pe) && !r.quarantined[key] {
			r.quarantined[key] = true
			r.stats.Quarantines++
			// A poison pill must not survive on disk to wedge a warm start.
			if r.disk != nil {
				defer r.disk.Delete(key.Hash, key.Level)
			}
		}
	} else {
		r.byArt[art] = e
		e.bytes = int64(art.FootprintBytes()) + e.srcBytes
		r.bytes += e.bytes
		evicted = r.evictLocked(e)
	}
	r.mu.Unlock()
	close(e.ready)
	r.notifyEvicted(evicted)
	if err != nil {
		return nil, err
	}
	if built {
		// Write-through: persist the freshly built artifact after the waiters
		// are released, so the disk write is off every singleflight path.
		r.maybePersist(e)
	}
	return art, nil
}

// provide fills a registry miss: read through the disk tier when one is
// attached, fall back to the compile pipeline.  built reports whether the
// pipeline ran (the disk path costs no build work).  Any disk failure —
// missing, unreadable, corrupt, or failing rehydration — degrades to a clean
// rebuild; a container that failed verification is deleted so the
// write-through below replaces it.
func (r *Registry) provide(key Key, name, src string, level core.Level) (art *core.Artifact, built bool, err error) {
	if r.disk != nil {
		if img, gerr := r.disk.Get(key.Hash, key.Level); gerr == nil {
			if art, rerr := img.Artifact(); rerr == nil {
				return art, false, nil
			}
			// The container verified but would not rehydrate — a writer bug
			// or format drift.  Drop it and rebuild.
			r.disk.Delete(key.Hash, key.Level)
		} else if !errors.Is(gerr, store.ErrNotFound) {
			r.disk.Delete(key.Hash, key.Level)
		}
	}
	art, err = build(name, src, level)
	return art, true, err
}

// maybePersist writes the entry's artifact through to the disk tier when its
// persistable forms have grown past what the last container captured.  The
// persisting flag serializes writers per entry; the forms count is captured
// before the snapshot, so a concurrent enrichment at worst triggers one more
// rewrite.  Growth is bounded — the DIR, each encoding degree, the trace —
// so an artifact is rewritten a handful of times and then never again.  Put
// failures are counted in the tier stats and otherwise ignored: the memory
// tier keeps serving.
func (r *Registry) maybePersist(e *regEntry) {
	if r.disk == nil {
		return
	}
	r.mu.Lock()
	if e.building || e.err != nil || e.persisting || r.quarantined[e.key] {
		r.mu.Unlock()
		return
	}
	forms := e.art.PersistableForms()
	if forms <= e.persisted {
		r.mu.Unlock()
		return
	}
	e.persisting = true
	art, src := e.art, e.src
	r.mu.Unlock()

	err := r.disk.Put(art.Snapshot(), src)

	r.mu.Lock()
	e.persisting = false
	if err == nil && forms > e.persisted {
		e.persisted = forms
	}
	r.mu.Unlock()
}

// Warmstart preloads the hottest max artifacts (max < 0 = all) from the disk
// tier into memory, stopping early when the byte budget fills.  Quarantined
// keys and already-resident entries are skipped; containers that fail to
// verify or rehydrate are deleted.  It returns how many artifacts were
// loaded.  Call it before serving traffic — a restarted process then answers
// its previous working set with zero rebuilds.
func (r *Registry) Warmstart(max int) (int, error) {
	if r.disk == nil || max == 0 {
		return 0, nil
	}
	list, err := r.disk.List()
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, se := range list {
		if max >= 0 && loaded >= max {
			break
		}
		key := Key{Hash: se.Hash, Level: se.Level}
		r.mu.Lock()
		_, resident := r.entries[key]
		quarantined := r.quarantined[key]
		full := r.capacity > 0 && r.bytes >= r.capacity
		r.mu.Unlock()
		if full {
			break
		}
		if resident || quarantined {
			continue
		}
		img, gerr := r.disk.Get(se.Hash, se.Level)
		if gerr != nil {
			if !errors.Is(gerr, store.ErrNotFound) {
				r.disk.Delete(se.Hash, se.Level)
			}
			continue
		}
		art, rerr := img.Artifact()
		if rerr != nil {
			r.disk.Delete(se.Hash, se.Level)
			continue
		}
		ready := make(chan struct{})
		close(ready)
		e := &regEntry{key: key, name: img.Name(), src: img.Source,
			srcBytes: int64(len(img.Source)), art: art, ready: ready,
			lastUse: 0, persisted: art.PersistableForms()}
		e.bytes = int64(art.FootprintBytes()) + e.srcBytes
		r.mu.Lock()
		if _, ok := r.entries[key]; ok {
			r.mu.Unlock()
			continue
		}
		e.lastUse = r.tick()
		r.entries[key] = e
		r.byArt[art] = e
		r.bytes += e.bytes
		r.stats.WarmLoads++
		evicted := r.evictLocked(e)
		r.mu.Unlock()
		r.notifyEvicted(evicted)
		loaded++
	}
	return loaded, nil
}

// build runs the compile pipeline with the build fault site armed and panic
// isolation on: a panicking compiler — or an injected crash — surfaces as a
// *PanicError to every singleflight waiter instead of wedging the entry with
// its ready channel never closed (which would hang every waiter and make
// graceful drain impossible).
func build(name, src string, level core.Level) (art *core.Artifact, err error) {
	defer func() {
		if v := recover(); v != nil {
			art, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if ferr := faultinject.Fire(faultinject.SiteRegistryBuild); ferr != nil {
		return nil, fmt.Errorf("service: build %s: %w", name, ferr)
	}
	return core.BuildSource(name, src, level)
}

// Workload resolves a built-in workload's source and caches it like any
// submitted program: the CLI experiment sweeps and the server share these
// entries.
func (r *Registry) Workload(name string, level core.Level) (*core.Artifact, error) {
	src, err := workload.Source(name)
	if err != nil {
		return nil, err
	}
	return r.Source(name, src, level)
}

// Sync re-reads the artifact's footprint — which grows as predecoded and
// compiled forms materialise — refreshes its recency, and enforces the byte
// budget.  The service layer calls it after every run.  Unknown artifacts
// (evicted, or never registered) are ignored.
func (r *Registry) Sync(art *core.Artifact) {
	// The chaos evict site fires here, outside the lock: an injected fault
	// force-evicts the LRU artifact even under budget, so eviction and pool
	// invalidation are exercised without byte pressure.
	forceEvict := faultinject.Fire(faultinject.SiteRegistryEvict) != nil

	r.mu.Lock()
	e, ok := r.byArt[art]
	if !ok {
		r.mu.Unlock()
		return
	}
	nb := int64(art.FootprintBytes()) + e.srcBytes
	r.bytes += nb - e.bytes
	e.bytes = nb
	e.lastUse = r.tick()
	evicted := r.evictLocked(e)
	if forceEvict {
		if victim := r.victimLocked(nil); victim != nil {
			r.dropLocked(victim)
			evicted = append(evicted, victim.art)
		}
	}
	r.mu.Unlock()
	r.notifyEvicted(evicted)
	// Enrichment write-through: a footprint that grew usually means a new
	// predecoded degree or a freshly recorded trace — exactly the forms worth
	// carrying across a restart.
	r.maybePersist(e)
}

// SyncAll re-reads every resident artifact's footprint and enforces the
// byte budget.  Experiment sweeps grow artifacts outside the per-request
// Sync path (the engine's Build hook returns the artifact, then predecodes
// it at several degrees during the grid); calling SyncAll after a sweep
// keeps the LRU accounting honest under experiment-heavy traffic.
func (r *Registry) SyncAll() {
	r.mu.Lock()
	for _, e := range r.entries {
		if e.building || e.err != nil {
			continue
		}
		nb := int64(e.art.FootprintBytes()) + e.srcBytes
		r.bytes += nb - e.bytes
		e.bytes = nb
	}
	evicted := r.evictLocked(nil)
	r.mu.Unlock()
	r.notifyEvicted(evicted)
}

// Live reports whether the artifact is currently resident in the registry.
// The service uses it at replayer check-in: a replayer warmed on an evicted
// artifact's program must be discarded, not repooled, or it would sit under
// a retired key (evicted artifacts rebuild to a fresh instance) holding the
// whole structure chain alive for the process lifetime.
func (r *Registry) Live(art *core.Artifact) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.byArt[art]
	return ok
}

// Stats returns a snapshot of the counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Entries = len(r.entries)
	s.Bytes = r.bytes
	s.CapacityBytes = r.capacity
	s.Quarantined = len(r.quarantined)
	if r.disk != nil {
		s.Disk = r.disk.Stats()
		s.DiskEntries, s.DiskBytes = r.disk.Usage()
	}
	return s
}

func (r *Registry) tick() int64 {
	r.clock++
	return r.clock
}

// evictLocked drops least-recently-used completed entries until the budget
// is met, never dropping in-flight builds or the entry just touched (keep).
// A single over-budget artifact is retained rather than thrashing: the cache
// must always be able to serve the request that filled it.  Callers invoke
// notifyEvicted on the returned artifacts after releasing the lock.
func (r *Registry) evictLocked(keep *regEntry) []*core.Artifact {
	if r.capacity <= 0 {
		return nil
	}
	var evicted []*core.Artifact
	for r.bytes > r.capacity {
		victim := r.victimLocked(keep)
		if victim == nil {
			break
		}
		r.dropLocked(victim)
		evicted = append(evicted, victim.art)
	}
	return evicted
}

// victimLocked picks the least-recently-used completed entry, never keep or
// an in-flight build; nil when no entry is evictable.
func (r *Registry) victimLocked(keep *regEntry) *regEntry {
	var victim *regEntry
	for _, e := range r.entries {
		if e == keep || e.building {
			continue
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	return victim
}

// dropLocked removes a completed entry and its byte accounting.  The caller
// must invoke notifyEvicted on the entry's artifact after unlocking.
func (r *Registry) dropLocked(e *regEntry) {
	delete(r.entries, e.key)
	delete(r.byArt, e.art)
	r.bytes -= e.bytes
	r.stats.Evictions++
}

// Quarantine marks a key as a poison pill — the registry will never rebuild
// it — and evicts its resident artifact so pooled replayers warmed on it are
// retired through the usual eviction callback.  It reports whether the key
// was newly quarantined.
func (r *Registry) Quarantine(key Key) bool {
	r.mu.Lock()
	if r.quarantined[key] {
		r.mu.Unlock()
		return false
	}
	r.quarantined[key] = true
	r.stats.Quarantines++
	var evicted []*core.Artifact
	if e, ok := r.entries[key]; ok && !e.building {
		r.dropLocked(e)
		evicted = append(evicted, e.art)
	}
	r.mu.Unlock()
	r.notifyEvicted(evicted)
	if r.disk != nil {
		// The container must go too: a warm start that reloaded a poison pill
		// would hand the next process a primed crash.
		r.disk.Delete(key.Hash, key.Level)
	}
	return true
}

// QuarantineArtifact quarantines the key of a resident artifact — the form
// the service's run-panic recovery uses, where only the artifact is in hand.
// An artifact no longer resident cannot be mapped to its key and is left
// alone: if it is requested and crashes again, it will be resident then.
func (r *Registry) QuarantineArtifact(art *core.Artifact) bool {
	r.mu.Lock()
	e, ok := r.byArt[art]
	r.mu.Unlock()
	if !ok {
		return false
	}
	return r.Quarantine(e.key)
}

// VerifyAccounting cross-checks the registry's books: the byte total must
// equal the sum of per-entry accounts, the key and artifact indexes must
// mirror each other, and no quarantined key may be resident.  The chaos
// harness calls it after every drained fault plan; any inconsistency is an
// invariant violation, not a recoverable condition.
func (r *Registry) VerifyAccounting() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum int64
	built := 0
	for key, e := range r.entries {
		if e.building {
			continue
		}
		sum += e.bytes
		built++
		if e.err == nil {
			if got, ok := r.byArt[e.art]; !ok || got != e {
				return fmt.Errorf("registry: entry %s not mirrored in the artifact index", key)
			}
		}
		if r.quarantined[key] {
			return fmt.Errorf("registry: quarantined key %s is still resident", key)
		}
	}
	if sum != r.bytes {
		return fmt.Errorf("registry: accounted %d bytes, entries sum to %d", r.bytes, sum)
	}
	if built != len(r.byArt) {
		return fmt.Errorf("registry: %d completed entries but %d artifact-index entries", built, len(r.byArt))
	}
	if r.bytes < 0 {
		return fmt.Errorf("registry: negative byte account %d", r.bytes)
	}
	return nil
}

func (r *Registry) notifyEvicted(arts []*core.Artifact) {
	if r.onEvict == nil {
		return
	}
	for _, a := range arts {
		r.onEvict(a)
	}
}
