package service

import (
	"context"
	"errors"
	"slices"
	"testing"
	"time"

	"uhm/internal/core"
	"uhm/internal/faultinject"
)

// TestBatchPartialFailure: one malformed item 422s on its own while its
// siblings succeed, and the whole batch costs exactly one admission.
func TestBatchPartialFailure(t *testing.T) {
	svc := New(Options{Workers: 1})
	cfg := core.DefaultConfig()
	ctx := context.Background()

	type item struct {
		name, src string
	}
	items := []item{
		{"good-loop", chaosSources[0].src},
		{"bad", "this is not minilang"},
		{"good-calls", chaosSources[1].src},
	}
	outs := make([][]int64, len(items))
	errs := make([]error, len(items))
	err := svc.Batch(ctx, func(ctx context.Context, b *BatchRunner) error {
		for i, it := range items {
			rep, err := b.RunSource(ctx, it.name, it.src, core.LevelStack, core.WithDTB, cfg)
			errs[i] = err
			if rep != nil {
				outs[i] = rep.Output
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("batch failed as a whole: %v", err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("sibling items failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("malformed item did not fail")
	}
	want0, _ := core.BuildSource(items[0].name, items[0].src, core.LevelStack)
	ref0, _ := want0.Reference()
	if !slices.Equal(outs[0], ref0) {
		t.Fatalf("item 0 output %v, want %v", outs[0], ref0)
	}
	st := svc.Stats()
	if st.Requests.Overloads != 0 {
		t.Fatalf("batch tripped admission: %+v", st.Requests)
	}
	// The failed build is not cached; the two good artifacts are.
	if st.Registry.Entries != 2 || st.Registry.BuildErrors != 1 {
		t.Fatalf("registry after batch = %+v, want 2 entries, 1 build error", st.Registry)
	}
}

// TestBatchHoldsOneSlot: a many-item batch on a one-worker service holds
// exactly one slot — a concurrent plain request queues behind it rather than
// finding the service wedged by per-item admissions (which would deadlock:
// the batch waiting on slots it already holds).
func TestBatchHoldsOneSlot(t *testing.T) {
	svc := New(Options{Workers: 1, QueueTimeout: 5 * time.Second})
	cfg := core.DefaultConfig()
	ctx := context.Background()

	entered := make(chan struct{})
	releaseBatch := make(chan struct{})
	batchDone := make(chan error, 1)
	go func() {
		batchDone <- svc.Batch(ctx, func(ctx context.Context, b *BatchRunner) error {
			for i := 0; i < 4; i++ {
				if _, err := b.RunWorkload(ctx, "fib", core.LevelStack, core.WithDTB, cfg); err != nil {
					return err
				}
			}
			close(entered)
			<-releaseBatch
			return nil
		})
	}()

	<-entered
	// The lone slot is held by the batch: a plain request must queue, then
	// succeed once the batch releases.
	reqDone := make(chan error, 1)
	go func() {
		_, err := svc.RunWorkload(ctx, "sieve", core.LevelStack, core.WithDTB, cfg)
		reqDone <- err
	}()
	select {
	case err := <-reqDone:
		t.Fatalf("request did not queue behind the batch's slot (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(releaseBatch)
	if err := <-batchDone; err != nil {
		t.Fatalf("batch: %v", err)
	}
	if err := <-reqDone; err != nil {
		t.Fatalf("queued request failed after the batch drained: %v", err)
	}
}

// TestBatchReleasesSlotOnPanic: a panic escaping the batch callback still
// releases the admission slot (the deferred release is the backstop), so the
// service keeps serving.
func TestBatchReleasesSlotOnPanic(t *testing.T) {
	svc := New(Options{Workers: 1, QueueTimeout: 2 * time.Second})
	cfg := core.DefaultConfig()
	ctx := context.Background()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate out of Batch")
			}
		}()
		_ = svc.Batch(ctx, func(ctx context.Context, b *BatchRunner) error {
			panic("handler bug in the batch loop")
		})
	}()

	// The lone slot must be free again: a plain request is admitted and runs.
	if _, err := svc.RunWorkload(ctx, "fib", core.LevelStack, core.WithDTB, cfg); err != nil {
		t.Fatalf("service wedged after batch panic: %v", err)
	}
	if st := svc.Stats(); st.Requests.Overloads != 0 {
		t.Fatalf("slot leaked: %+v", st.Requests)
	}
}

// TestBatchItemPanicIsolated: an injected run panic inside one item surfaces
// as that item's typed *PanicError (artifact quarantined), while sibling
// items and the batch envelope succeed.
func TestBatchItemPanicIsolated(t *testing.T) {
	svc := New(Options{Workers: 2})
	cfg := core.DefaultConfig()
	ctx := context.Background()

	// Arm a single panic on the second service/run visit: the first item
	// passes, the second crashes, the third must still pass.
	plan := faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SiteServiceRun, Probability: 1, After: 1, Count: 1,
		Mode: faultinject.ModePanic,
	})
	restore := faultinject.Activate(plan)
	defer restore()

	names := []string{"chaos-loop", "chaos-calls", "chaos-array"}
	errs := make([]error, len(names))
	err := svc.Batch(ctx, func(ctx context.Context, b *BatchRunner) error {
		for i, name := range names {
			_, errs[i] = b.RunSource(ctx, name, chaosSources[i].src, core.LevelStack, core.WithDTB, cfg)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("batch envelope failed: %v", err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("sibling items failed around the panicking one: %v / %v", errs[0], errs[2])
	}
	var pe *PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("crashed item error = %v, want *PanicError", errs[1])
	}
	st := svc.Stats()
	if st.Requests.Panics != 1 || st.Registry.Quarantined != 1 {
		t.Fatalf("stats after item panic = %+v / %+v, want 1 panic, 1 quarantined",
			st.Requests, st.Registry)
	}
	if st.Pool.Leased != 0 {
		t.Fatalf("%d replayers leaked across the item panic", st.Pool.Leased)
	}
}
