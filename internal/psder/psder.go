package psder

import (
	"errors"
	"fmt"
	"strings"
)

// ShortOp enumerates the IU2 short-format operations.
type ShortOp uint8

const (
	// OpPush pushes a value onto the operand stack.  The addressing flavour
	// (immediate / direct / stack) is given by the Mode field.
	OpPush ShortOp = iota
	// OpPop discards the top of the operand stack.
	OpPop
	// OpCall transfers control to a semantic routine (expressed in
	// long-format instructions and executed by IU1).
	OpCall
	// OpInterp exercises the DTB: its operand is the address of the next DIR
	// instruction, either immediate or taken from the operand stack.
	OpInterp

	shortOpCount
)

// String returns the mnemonic.
func (op ShortOp) String() string {
	switch op {
	case OpPush:
		return "PUSH"
	case OpPop:
		return "POP"
	case OpCall:
		return "CALL"
	case OpInterp:
		return "INTERP"
	default:
		return fmt.Sprintf("SHORT(%d)", int(op))
	}
}

// Valid reports whether the short opcode is defined.
func (op ShortOp) Valid() bool { return op < shortOpCount }

// Mode is the operand flavour of a short-format instruction.
type Mode uint8

const (
	// ModeImm supplies the operand immediately.
	ModeImm Mode = iota
	// ModeStack takes the operand from the operand stack (used by INTERP
	// when the next DIR address has been computed).
	ModeStack

	modeCount
)

// String returns the mode's name.
func (m Mode) String() string {
	switch m {
	case ModeImm:
		return "imm"
	case ModeStack:
		return "stack"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Valid reports whether the mode is defined.
func (m Mode) Valid() bool { return m < modeCount }

// RoutineID identifies a semantic routine in the IU1 routine library.
type RoutineID uint8

// Semantic routines.  Each corresponds to a procedure written in the UHM's
// long-format machine language, resident in level-1 memory.
const (
	RoutineLoadVar RoutineID = iota
	RoutineLoadIndexed
	RoutineStoreVar
	RoutineStoreIndexed
	RoutineAdd
	RoutineSub
	RoutineMul
	RoutineDiv
	RoutineMod
	RoutineEq
	RoutineNe
	RoutineLt
	RoutineLe
	RoutineGt
	RoutineGe
	RoutineAnd
	RoutineOr
	RoutineNeg
	RoutineNot
	RoutineSelectIfZero
	RoutineSelectEq
	RoutineSelectNe
	RoutineSelectLt
	RoutineSelectLe
	RoutineSelectGt
	RoutineSelectGe
	RoutineCall
	RoutineReturn
	RoutineReturnValue
	RoutinePrint
	RoutineHalt

	routineCount
)

// NumRoutines is the number of semantic routines in the library.
const NumRoutines = int(routineCount)

var routineNames = [...]string{
	RoutineLoadVar: "load-var", RoutineLoadIndexed: "load-indexed",
	RoutineStoreVar: "store-var", RoutineStoreIndexed: "store-indexed",
	RoutineAdd: "add", RoutineSub: "sub", RoutineMul: "mul", RoutineDiv: "div", RoutineMod: "mod",
	RoutineEq: "eq", RoutineNe: "ne", RoutineLt: "lt", RoutineLe: "le", RoutineGt: "gt", RoutineGe: "ge",
	RoutineAnd: "and", RoutineOr: "or", RoutineNeg: "neg", RoutineNot: "not",
	RoutineSelectIfZero: "select-if-zero",
	RoutineSelectEq:     "select-eq", RoutineSelectNe: "select-ne", RoutineSelectLt: "select-lt",
	RoutineSelectLe: "select-le", RoutineSelectGt: "select-gt", RoutineSelectGe: "select-ge",
	RoutineCall: "call", RoutineReturn: "return", RoutineReturnValue: "return-value",
	RoutinePrint: "print", RoutineHalt: "halt",
}

// String returns the routine's name.
func (r RoutineID) String() string {
	if int(r) < len(routineNames) && routineNames[r] != "" {
		return routineNames[r]
	}
	return fmt.Sprintf("routine(%d)", int(r))
}

// Valid reports whether the routine is defined.
func (r RoutineID) Valid() bool { return r < routineCount }

// BaseCost returns the routine's nominal cost in long-format instruction
// executions (level-1 cycles).  Dynamic extras — static-link hops, argument
// copies — are added by the host machine when the routine runs.  These are
// the building blocks of the paper's parameter x.
func (r RoutineID) BaseCost() int {
	switch r {
	case RoutineLoadVar, RoutineStoreVar:
		return 3
	case RoutineLoadIndexed, RoutineStoreIndexed:
		return 5
	case RoutineAdd, RoutineSub, RoutineEq, RoutineNe, RoutineLt, RoutineLe,
		RoutineGt, RoutineGe, RoutineAnd, RoutineOr, RoutineNeg, RoutineNot:
		return 2
	case RoutineMul:
		return 4
	case RoutineDiv, RoutineMod:
		return 6
	case RoutineSelectIfZero, RoutineSelectEq, RoutineSelectNe, RoutineSelectLt,
		RoutineSelectLe, RoutineSelectGt, RoutineSelectGe:
		return 3
	case RoutineCall:
		return 8
	case RoutineReturn, RoutineReturnValue:
		return 5
	case RoutinePrint:
		return 2
	case RoutineHalt:
		return 1
	default:
		return 1
	}
}

// Interpreter size accounting: the semantic routines and the decode/dispatch
// code occupy level-1 memory.  RoutineFootprintWords is the nominal size of
// one routine in long-format words; it feeds the interpreter-size axis of
// Figure 1.
const RoutineFootprintWords = 16

// LibraryFootprintWords returns the level-1 footprint of the whole semantic
// routine library in words.
func LibraryFootprintWords() int { return NumRoutines * RoutineFootprintWords }

// Instr is one short-format instruction.
type Instr struct {
	Op   ShortOp
	Mode Mode
	// Arg is the immediate operand: a value for PUSH, a routine for CALL
	// (stored as the routine ID), or the next DIR instruction index for
	// INTERP in immediate mode.
	Arg int32
}

// Push returns a PUSH-immediate instruction.
func Push(v int32) Instr { return Instr{Op: OpPush, Mode: ModeImm, Arg: v} }

// Pop returns a POP instruction.
func Pop() Instr { return Instr{Op: OpPop} }

// Call returns a CALL instruction naming a semantic routine.
func Call(r RoutineID) Instr { return Instr{Op: OpCall, Mode: ModeImm, Arg: int32(r)} }

// InterpImm returns an INTERP instruction whose next-DIR-address is known
// immediately (sequential successor or unconditional branch target).
func InterpImm(next int) Instr { return Instr{Op: OpInterp, Mode: ModeImm, Arg: int32(next)} }

// InterpStack returns an INTERP instruction that takes the next DIR address
// from the operand stack.
func InterpStack() Instr { return Instr{Op: OpInterp, Mode: ModeStack} }

// Routine returns the semantic routine named by a CALL instruction.
func (i Instr) Routine() RoutineID { return RoutineID(i.Arg) }

// String renders the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpPush:
		return fmt.Sprintf("PUSH #%d", i.Arg)
	case OpPop:
		return "POP"
	case OpCall:
		return fmt.Sprintf("CALL %s", i.Routine())
	case OpInterp:
		if i.Mode == ModeStack {
			return "INTERP (stack)"
		}
		return fmt.Sprintf("INTERP ->%d", i.Arg)
	default:
		return fmt.Sprintf("%s #%d", i.Op, i.Arg)
	}
}

// Sequence is the PSDER translation of one DIR instruction.
type Sequence []Instr

// String renders the sequence on one line.
func (s Sequence) String() string {
	parts := make([]string, len(s))
	for i, in := range s {
		parts[i] = in.String()
	}
	return strings.Join(parts, "; ")
}

// Words returns the sequence length in buffer-array words (one word per
// short-format instruction) — the paper's parameter s1 for this instruction.
func (s Sequence) Words() int { return len(s) }

// Calls returns the number of semantic-routine calls in the sequence.
func (s Sequence) Calls() int {
	n := 0
	for _, in := range s {
		if in.Op == OpCall {
			n++
		}
	}
	return n
}

// BaseSemanticCost returns the sum of the base costs of the routines called
// plus one cycle per short-format instruction issued — the static estimate of
// the paper's parameter x for this instruction.
func (s Sequence) BaseSemanticCost() int {
	cost := 0
	for _, in := range s {
		cost++
		if in.Op == OpCall {
			cost += in.Routine().BaseCost()
		}
	}
	return cost
}

// Word-encoding layout: op(4) | mode(4) | arg(24), arg is a signed 24-bit
// two's-complement field.
const (
	argBits = 24
	argMax  = 1<<(argBits-1) - 1
	argMin  = -(1 << (argBits - 1))
)

// Encoding errors.
var (
	// ErrArgRange is returned when an argument does not fit the 24-bit word
	// field.
	ErrArgRange = errors.New("psder: argument out of 24-bit range")
	// ErrBadWord is returned when a buffer-array word does not decode to a
	// valid short-format instruction.
	ErrBadWord = errors.New("psder: invalid buffer-array word")
	// ErrNoInterp is returned when a sequence does not end with INTERP or a
	// halt.
	ErrNoInterp = errors.New("psder: sequence must end with INTERP or a halt call")
)

// Validate checks that the sequence is well formed: non-empty, every
// instruction valid, and terminated by an INTERP (or by a call to the halt
// routine, which never resumes).
func (s Sequence) Validate() error {
	if len(s) == 0 {
		return errors.New("psder: empty sequence")
	}
	for i, in := range s {
		if !in.Op.Valid() {
			return fmt.Errorf("psder: instruction %d has invalid opcode %d", i, int(in.Op))
		}
		if !in.Mode.Valid() {
			return fmt.Errorf("psder: instruction %d has invalid mode %d", i, int(in.Mode))
		}
		if in.Op == OpCall && !in.Routine().Valid() {
			return fmt.Errorf("psder: instruction %d calls unknown routine %d", i, in.Arg)
		}
		if in.Arg > argMax || in.Arg < argMin {
			return fmt.Errorf("%w: instruction %d arg %d", ErrArgRange, i, in.Arg)
		}
	}
	last := s[len(s)-1]
	if last.Op == OpInterp {
		return nil
	}
	if last.Op == OpCall && last.Routine() == RoutineHalt {
		return nil
	}
	return ErrNoInterp
}

// Encode packs the sequence into buffer-array words.
func (s Sequence) Encode() ([]uint32, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	words := make([]uint32, len(s))
	for i, in := range s {
		words[i] = uint32(in.Op)<<28 | uint32(in.Mode)<<24 | (uint32(in.Arg) & 0x00FFFFFF)
	}
	return words, nil
}

// DecodeWords unpacks buffer-array words into a sequence.
func DecodeWords(words []uint32) (Sequence, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrBadWord)
	}
	seq := make(Sequence, len(words))
	for i, w := range words {
		op := ShortOp(w >> 28)
		mode := Mode((w >> 24) & 0xF)
		arg := int32(w & 0x00FFFFFF)
		// Sign-extend the 24-bit argument.
		if arg&0x00800000 != 0 {
			arg |= ^int32(0x00FFFFFF)
		}
		if !op.Valid() || !mode.Valid() {
			return nil, fmt.Errorf("%w: word %d = %#08x", ErrBadWord, i, w)
		}
		seq[i] = Instr{Op: op, Mode: mode, Arg: arg}
	}
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	return seq, nil
}
