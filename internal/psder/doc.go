// Package psder defines the procedurally-structured directly executable
// representation (PSDER) of §3.1 and the short-format instruction set
// recognised by the UHM's second instruction unit (IU2, §6.2).
//
// A PSDER sequence is what the dynamic translator produces for one DIR
// instruction and what the DTB's buffer array stores: a short string of
// CALL / PUSH / POP / INTERP instructions that "steer control to the
// appropriate semantic routines and pass parameters".  The instruction set is
// deliberately tiny and vertical ("the instruction set for IU2 must be of a
// short, vertical format"), and every sequence ends with an INTERP
// instruction that names — immediately or via the operand stack — the next
// DIR instruction to interpret.
//
// Sequences encode to and from 32-bit buffer-array words so the DTB stores
// exactly what a hardware buffer array would.
package psder
