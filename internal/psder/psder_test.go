package psder

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShortOpAndModeStrings(t *testing.T) {
	ops := []ShortOp{OpPush, OpPop, OpCall, OpInterp}
	names := []string{"PUSH", "POP", "CALL", "INTERP"}
	for i, op := range ops {
		if op.String() != names[i] || !op.Valid() {
			t.Errorf("op %d: %q valid=%v", i, op.String(), op.Valid())
		}
	}
	if ShortOp(9).Valid() || ShortOp(9).String() == "" {
		t.Error("unknown short op should be invalid but render")
	}
	if ModeImm.String() != "imm" || ModeStack.String() != "stack" {
		t.Error("mode names")
	}
	if Mode(9).Valid() || Mode(9).String() == "" {
		t.Error("unknown mode should be invalid but render")
	}
}

func TestRoutineNamesCostsAndValidity(t *testing.T) {
	for r := RoutineID(0); r.Valid(); r++ {
		if r.String() == "" {
			t.Errorf("routine %d has no name", r)
		}
		if r.BaseCost() <= 0 {
			t.Errorf("routine %s has non-positive cost", r)
		}
	}
	if RoutineID(200).Valid() {
		t.Error("routine 200 should be invalid")
	}
	if RoutineID(200).String() == "" || RoutineID(200).BaseCost() <= 0 {
		t.Error("unknown routine should render and have a default cost")
	}
	if NumRoutines != int(routineCount) {
		t.Errorf("NumRoutines = %d", NumRoutines)
	}
	if LibraryFootprintWords() != NumRoutines*RoutineFootprintWords {
		t.Error("library footprint")
	}
	// Division should cost more than addition; calls more than loads.
	if RoutineDiv.BaseCost() <= RoutineAdd.BaseCost() {
		t.Error("div should cost more than add")
	}
	if RoutineCall.BaseCost() <= RoutineLoadVar.BaseCost() {
		t.Error("call should cost more than a variable load")
	}
}

func TestConstructorsAndStrings(t *testing.T) {
	if Push(5) != (Instr{Op: OpPush, Mode: ModeImm, Arg: 5}) {
		t.Error("Push constructor")
	}
	if Pop() != (Instr{Op: OpPop}) {
		t.Error("Pop constructor")
	}
	c := Call(RoutineAdd)
	if c.Op != OpCall || c.Routine() != RoutineAdd {
		t.Error("Call constructor")
	}
	if InterpImm(9) != (Instr{Op: OpInterp, Mode: ModeImm, Arg: 9}) {
		t.Error("InterpImm constructor")
	}
	if InterpStack() != (Instr{Op: OpInterp, Mode: ModeStack}) {
		t.Error("InterpStack constructor")
	}
	for _, in := range []Instr{Push(-3), Pop(), Call(RoutineMul), InterpImm(7), InterpStack()} {
		if in.String() == "" {
			t.Errorf("instruction %+v has empty String", in)
		}
	}
	if (Instr{Op: ShortOp(9)}).String() == "" {
		t.Error("unknown instruction should render")
	}
}

func TestSequenceProperties(t *testing.T) {
	seq := Sequence{Push(1), Push(2), Call(RoutineLoadVar), Call(RoutineAdd), InterpImm(3)}
	if seq.Words() != 5 {
		t.Errorf("Words = %d", seq.Words())
	}
	if seq.Calls() != 2 {
		t.Errorf("Calls = %d", seq.Calls())
	}
	wantCost := 5 + RoutineLoadVar.BaseCost() + RoutineAdd.BaseCost()
	if seq.BaseSemanticCost() != wantCost {
		t.Errorf("BaseSemanticCost = %d, want %d", seq.BaseSemanticCost(), wantCost)
	}
	if seq.String() == "" {
		t.Error("sequence String")
	}
}

func TestValidate(t *testing.T) {
	good := []Sequence{
		{InterpImm(0)},
		{Push(1), Call(RoutineAdd), InterpStack()},
		{Call(RoutineHalt)},
		{Pop(), InterpImm(2)},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("sequence %d should validate: %v", i, err)
		}
	}
	bad := []struct {
		name string
		seq  Sequence
		want error
	}{
		{"empty", Sequence{}, nil},
		{"no interp", Sequence{Push(1), Call(RoutineAdd)}, ErrNoInterp},
		{"bad opcode", Sequence{{Op: ShortOp(9)}, InterpImm(0)}, nil},
		{"bad mode", Sequence{{Op: OpPush, Mode: Mode(9)}, InterpImm(0)}, nil},
		{"bad routine", Sequence{{Op: OpCall, Arg: 99}, InterpImm(0)}, nil},
		{"arg overflow", Sequence{Push(1 << 24), InterpImm(0)}, ErrArgRange},
		{"arg underflow", Sequence{Push(-(1 << 24)), InterpImm(0)}, ErrArgRange},
	}
	for _, c := range bad {
		err := c.seq.Validate()
		if err == nil {
			t.Errorf("%s: expected validation error", c.name)
			continue
		}
		if c.want != nil && !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	seqs := []Sequence{
		{Push(5), InterpImm(1)},
		{Push(0), Push(3), Call(RoutineLoadVar), Call(RoutinePrint), InterpImm(42)},
		{Push(-1234567), Call(RoutineStoreVar), InterpStack()},
		{Call(RoutineHalt)},
		{Pop(), InterpImm(0)},
	}
	for i, s := range seqs {
		words, err := s.Encode()
		if err != nil {
			t.Fatalf("sequence %d encode: %v", i, err)
		}
		if len(words) != len(s) {
			t.Fatalf("sequence %d: %d words for %d instructions", i, len(words), len(s))
		}
		back, err := DecodeWords(words)
		if err != nil {
			t.Fatalf("sequence %d decode: %v", i, err)
		}
		if len(back) != len(s) {
			t.Fatalf("sequence %d: decoded %d instructions", i, len(back))
		}
		for j := range s {
			if back[j] != s[j] {
				t.Errorf("sequence %d instruction %d: %+v != %+v", i, j, back[j], s[j])
			}
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := (Sequence{Push(1)}).Encode(); err == nil {
		t.Error("encode should validate the sequence")
	}
	if _, err := (Sequence{Push(1 << 24), InterpImm(0)}).Encode(); !errors.Is(err, ErrArgRange) {
		t.Errorf("err = %v, want ErrArgRange", err)
	}
}

func TestDecodeRejectsBadWords(t *testing.T) {
	if _, err := DecodeWords(nil); !errors.Is(err, ErrBadWord) {
		t.Errorf("empty decode err = %v", err)
	}
	// Opcode nibble 0xF is undefined.
	if _, err := DecodeWords([]uint32{0xF0000000}); !errors.Is(err, ErrBadWord) {
		t.Errorf("bad opcode decode err = %v", err)
	}
	// Valid words but no terminating INTERP.
	words, _ := (Sequence{Push(1), InterpImm(0)}).Encode()
	if _, err := DecodeWords(words[:1]); err == nil {
		t.Error("truncated sequence should fail validation")
	}
}

// Property: any valid sequence of random instructions round-trips through the
// word encoding.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		length := int(n%10) + 1
		seq := make(Sequence, 0, length+1)
		for i := 0; i < length; i++ {
			switch rng.Intn(3) {
			case 0:
				seq = append(seq, Push(int32(rng.Intn(1<<23))-(1<<22)))
			case 1:
				seq = append(seq, Pop())
			default:
				seq = append(seq, Call(RoutineID(rng.Intn(NumRoutines))))
			}
		}
		if rng.Intn(2) == 0 {
			seq = append(seq, InterpImm(rng.Intn(1<<20)))
		} else {
			seq = append(seq, InterpStack())
		}
		words, err := seq.Encode()
		if err != nil {
			return false
		}
		back, err := DecodeWords(words)
		if err != nil || len(back) != len(seq) {
			return false
		}
		for i := range seq {
			if back[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeSequence(b *testing.B) {
	seq := Sequence{Push(0), Push(3), Call(RoutineLoadVar), Push(1), Push(2), Call(RoutineStoreVar), InterpImm(7)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := seq.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeWords(b *testing.B) {
	seq := Sequence{Push(0), Push(3), Call(RoutineLoadVar), Push(1), Push(2), Call(RoutineStoreVar), InterpImm(7)}
	words, err := seq.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeWords(words); err != nil {
			b.Fatal(err)
		}
	}
}
