package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// MaxFieldWidth is the widest single field that can be read or written in one
// call.  64 bits is enough for every representation in this reproduction.
const MaxFieldWidth = 64

// ErrFieldTooWide is returned when a requested field exceeds MaxFieldWidth.
var ErrFieldTooWide = errors.New("bitio: field wider than 64 bits")

// ErrShortBuffer is returned by Reader when a read would run past the end of
// the underlying buffer.
var ErrShortBuffer = errors.New("bitio: read past end of buffer")

// maskOf returns a mask of width low bits.  width must be in [0, 64].
func maskOf(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(width) - 1
}

// Writer accumulates a bit string.  The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int // total number of bits written
}

// NewWriter returns a Writer with capacity for sizeHint bits pre-allocated.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the accumulated bit string packed into bytes.  The final byte
// is zero-padded on the right.  The returned slice aliases the writer's
// internal buffer; callers that keep it across further writes must copy it.
func (w *Writer) Bytes() []byte { return w.buf }

// BitLen is an alias of Len provided for symmetry with Reader.
func (w *Writer) BitLen() int { return w.nbit }

// Reset discards all written bits, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// WriteBits appends the width least-significant bits of v, most significant
// first.  Width may be 0 (a no-op).  It panics if width is negative and
// returns ErrFieldTooWide if width exceeds MaxFieldWidth.
func (w *Writer) WriteBits(v uint64, width int) error {
	if width < 0 {
		panic(fmt.Sprintf("bitio: negative field width %d", width))
	}
	if width > MaxFieldWidth {
		return ErrFieldTooWide
	}
	if width == 0 {
		return nil
	}
	v &= maskOf(width)
	pos := w.nbit
	w.nbit += width
	// Appending zero bytes (rather than reslicing spare capacity) keeps bytes
	// recycled by Reset zeroed, which the partial-byte ORs below rely on.
	for need := (w.nbit + 7) >> 3; len(w.buf) < need; {
		w.buf = append(w.buf, 0)
	}
	rem := width
	// Head: fill the partially used byte up to its boundary.
	if off := pos & 7; off != 0 {
		free := 8 - off
		n := min(free, rem)
		chunk := byte(v>>uint(rem-n)) & byte(maskOf(n))
		w.buf[pos>>3] |= chunk << uint(free-n)
		pos += n
		rem -= n
	}
	// Body: whole bytes.
	for rem >= 8 {
		w.buf[pos>>3] = byte(v >> uint(rem-8))
		pos += 8
		rem -= 8
	}
	// Tail: leftover high bits of the last byte.
	if rem > 0 {
		w.buf[pos>>3] |= byte(v&maskOf(rem)) << uint(8-rem)
	}
	return nil
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(bit bool) {
	var v uint64
	if bit {
		v = 1
	}
	// A single bit can never exceed MaxFieldWidth.
	_ = w.WriteBits(v, 1)
}

// WriteUnary appends n in unary: n one-bits followed by a terminating zero.
// Unary codes are used by the variable-length opcode experiments.
func (w *Writer) WriteUnary(n int) error {
	if n < 0 {
		panic("bitio: negative unary value")
	}
	for n >= 64 {
		_ = w.WriteBits(^uint64(0), 64)
		n -= 64
	}
	// n ones and the terminating zero fit in one field of n+1 <= 64 bits.
	return w.WriteBits(maskOf(n)<<1, n+1)
}

// Align pads the bit string with zero bits until its length is a multiple of
// the given unit (in bits).  Unit must be positive.
func (w *Writer) Align(unit int) {
	if unit <= 0 {
		panic("bitio: non-positive alignment unit")
	}
	if pad := w.nbit % unit; pad != 0 {
		for pad = unit - pad; pad > 64; pad -= 64 {
			_ = w.WriteBits(0, 64)
		}
		_ = w.WriteBits(0, pad)
	}
}

// Reader consumes a bit string produced by Writer.
type Reader struct {
	buf  []byte
	pos  int // current bit position
	nbit int // total number of valid bits
}

// NewReader returns a Reader over buf containing nbit valid bits.  If nbit is
// negative the whole of buf (len(buf)*8 bits) is readable.
func NewReader(buf []byte, nbit int) *Reader {
	if nbit < 0 || nbit > len(buf)*8 {
		nbit = len(buf) * 8
	}
	return &Reader{buf: buf, nbit: nbit}
}

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// Seek positions the reader at the absolute bit offset pos.
func (r *Reader) Seek(pos int) error {
	if pos < 0 || pos > r.nbit {
		return fmt.Errorf("bitio: seek to %d outside [0,%d]", pos, r.nbit)
	}
	r.pos = pos
	return nil
}

// peekAt gathers a width-bit field starting at absolute bit position pos.
// The caller must have bounds-checked pos+width against nbit.
func (r *Reader) peekAt(pos, width int) uint64 {
	if width == 0 {
		return 0
	}
	first := pos >> 3
	off := pos & 7
	n := off + width // bits spanned from the start of the first byte; <= 71
	buf := r.buf
	if n <= 64 {
		if len(buf)-first >= 8 {
			// Common case: one 64-bit load covers the whole field.
			acc := binary.BigEndian.Uint64(buf[first:])
			return acc << uint(off) >> uint(64-width)
		}
		// Near the end of the buffer: gather just the touched bytes.
		nbytes := (n + 7) >> 3
		var acc uint64
		for _, b := range buf[first : first+nbytes] {
			acc = acc<<8 | uint64(b)
		}
		return acc >> uint(nbytes*8-n) & maskOf(width)
	}
	// The field spans nine bytes (off > 0 and width > 56).  The bounds check
	// guarantees the ninth byte exists.
	acc := binary.BigEndian.Uint64(buf[first:])
	have := 64 - off
	need := width - have
	return (acc&maskOf(have))<<uint(need) | uint64(buf[first+8]>>uint(8-need))
}

// ReadBits reads a width-bit field, most significant bit first.
func (r *Reader) ReadBits(width int) (uint64, error) {
	if width < 0 {
		panic(fmt.Sprintf("bitio: negative field width %d", width))
	}
	if width > MaxFieldWidth {
		return 0, ErrFieldTooWide
	}
	if r.pos+width > r.nbit {
		return 0, ErrShortBuffer
	}
	v := r.peekAt(r.pos, width)
	r.pos += width
	return v, nil
}

// PeekBits returns the next width bits without advancing the read position.
// It fails with ErrShortBuffer when fewer than width bits remain; decoders
// that may sit near the end of the stream should clamp width to Remaining.
func (r *Reader) PeekBits(width int) (uint64, error) {
	if width < 0 {
		panic(fmt.Sprintf("bitio: negative field width %d", width))
	}
	if width > MaxFieldWidth {
		return 0, ErrFieldTooWide
	}
	if r.pos+width > r.nbit {
		return 0, ErrShortBuffer
	}
	return r.peekAt(r.pos, width), nil
}

// SkipBits advances the read position by width bits (typically bits already
// examined through PeekBits).  Width may exceed MaxFieldWidth.
func (r *Reader) SkipBits(width int) error {
	if width < 0 {
		panic(fmt.Sprintf("bitio: negative field width %d", width))
	}
	if r.pos+width > r.nbit {
		return ErrShortBuffer
	}
	r.pos += width
	return nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// ReadUnary reads a unary-coded value (count of one-bits before a zero).
func (r *Reader) ReadUnary() (int, error) {
	n := 0
	for {
		k := min(r.nbit-r.pos, 64)
		if k == 0 {
			return 0, ErrShortBuffer
		}
		v := r.peekAt(r.pos, k)
		inv := ^v & maskOf(k)
		if inv == 0 {
			// All k bits are ones: consume them and keep scanning.
			r.pos += k
			n += k
			continue
		}
		ones := k - bits.Len64(inv)
		r.pos += ones + 1 // the ones plus the terminating zero
		return n + ones, nil
	}
}

// Align advances the read position to the next multiple of unit bits.
func (r *Reader) Align(unit int) error {
	if unit <= 0 {
		panic("bitio: non-positive alignment unit")
	}
	if pad := r.pos % unit; pad != 0 {
		pad = unit - pad
		if pad > r.nbit-r.pos {
			r.pos = r.nbit
			return ErrShortBuffer
		}
		r.pos += pad
	}
	return nil
}

// BitString renders the first n bits of buf as a string of '0' and '1'
// characters, for diagnostics and golden tests.
func BitString(buf []byte, n int) string {
	if n > len(buf)*8 {
		n = len(buf) * 8
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		if buf[i/8]&(1<<uint(7-i%8)) != 0 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
