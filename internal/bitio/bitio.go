// Package bitio provides bit-granular readers and writers whose fields may
// span the boundaries of the underlying memory units (bytes or words).
//
// The paper's encoded directly interpretable representations (DIRs) pack
// fields of arbitrary width "together and allowed to span the boundaries of
// the units of memory access" (§3.2).  Every encoder in internal/encoding is
// built on top of this package, as is the binary emission of DIR programs in
// internal/dir.
//
// Bits are written and read most-significant-bit first within each byte, so
// the bit at absolute position 0 is the top bit of the first byte.  This
// matches the field diagrams of the era (opcode field leftmost) and makes the
// dumps produced by cmd/uhmasm readable against the paper's Table 1.
package bitio

import (
	"errors"
	"fmt"
)

// MaxFieldWidth is the widest single field that can be read or written in one
// call.  64 bits is enough for every representation in this reproduction.
const MaxFieldWidth = 64

// ErrFieldTooWide is returned when a requested field exceeds MaxFieldWidth.
var ErrFieldTooWide = errors.New("bitio: field wider than 64 bits")

// ErrShortBuffer is returned by Reader when a read would run past the end of
// the underlying buffer.
var ErrShortBuffer = errors.New("bitio: read past end of buffer")

// Writer accumulates a bit string.  The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int // total number of bits written
}

// NewWriter returns a Writer with capacity for sizeHint bits pre-allocated.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the accumulated bit string packed into bytes.  The final byte
// is zero-padded on the right.  The returned slice aliases the writer's
// internal buffer; callers that keep it across further writes must copy it.
func (w *Writer) Bytes() []byte { return w.buf }

// BitLen is an alias of Len provided for symmetry with Reader.
func (w *Writer) BitLen() int { return w.nbit }

// Reset discards all written bits, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// WriteBits appends the width least-significant bits of v, most significant
// first.  Width may be 0 (a no-op).  It panics if width is negative and
// returns ErrFieldTooWide if width exceeds MaxFieldWidth.
func (w *Writer) WriteBits(v uint64, width int) error {
	if width < 0 {
		panic(fmt.Sprintf("bitio: negative field width %d", width))
	}
	if width > MaxFieldWidth {
		return ErrFieldTooWide
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	for i := width - 1; i >= 0; i-- {
		bit := byte((v >> uint(i)) & 1)
		byteIdx := w.nbit / 8
		if byteIdx == len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		if bit != 0 {
			w.buf[byteIdx] |= 1 << uint(7-w.nbit%8)
		}
		w.nbit++
	}
	return nil
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(bit bool) {
	var v uint64
	if bit {
		v = 1
	}
	// A single bit can never exceed MaxFieldWidth.
	_ = w.WriteBits(v, 1)
}

// WriteUnary appends n in unary: n one-bits followed by a terminating zero.
// Unary codes are used by the variable-length opcode experiments.
func (w *Writer) WriteUnary(n int) error {
	if n < 0 {
		panic("bitio: negative unary value")
	}
	for i := 0; i < n; i++ {
		w.WriteBit(true)
	}
	w.WriteBit(false)
	return nil
}

// Align pads the bit string with zero bits until its length is a multiple of
// the given unit (in bits).  Unit must be positive.
func (w *Writer) Align(unit int) {
	if unit <= 0 {
		panic("bitio: non-positive alignment unit")
	}
	for w.nbit%unit != 0 {
		w.WriteBit(false)
	}
}

// Reader consumes a bit string produced by Writer.
type Reader struct {
	buf  []byte
	pos  int // current bit position
	nbit int // total number of valid bits
}

// NewReader returns a Reader over buf containing nbit valid bits.  If nbit is
// negative the whole of buf (len(buf)*8 bits) is readable.
func NewReader(buf []byte, nbit int) *Reader {
	if nbit < 0 || nbit > len(buf)*8 {
		nbit = len(buf) * 8
	}
	return &Reader{buf: buf, nbit: nbit}
}

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// Seek positions the reader at the absolute bit offset pos.
func (r *Reader) Seek(pos int) error {
	if pos < 0 || pos > r.nbit {
		return fmt.Errorf("bitio: seek to %d outside [0,%d]", pos, r.nbit)
	}
	r.pos = pos
	return nil
}

// ReadBits reads a width-bit field, most significant bit first.
func (r *Reader) ReadBits(width int) (uint64, error) {
	if width < 0 {
		panic(fmt.Sprintf("bitio: negative field width %d", width))
	}
	if width > MaxFieldWidth {
		return 0, ErrFieldTooWide
	}
	if r.pos+width > r.nbit {
		return 0, ErrShortBuffer
	}
	var v uint64
	for i := 0; i < width; i++ {
		byteIdx := r.pos / 8
		bit := (r.buf[byteIdx] >> uint(7-r.pos%8)) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// ReadUnary reads a unary-coded value (count of one-bits before a zero).
func (r *Reader) ReadUnary() (int, error) {
	n := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if !b {
			return n, nil
		}
		n++
	}
}

// Align advances the read position to the next multiple of unit bits.
func (r *Reader) Align(unit int) error {
	if unit <= 0 {
		panic("bitio: non-positive alignment unit")
	}
	for r.pos%unit != 0 {
		if _, err := r.ReadBit(); err != nil {
			return err
		}
	}
	return nil
}

// BitString renders the first n bits of buf as a string of '0' and '1'
// characters, for diagnostics and golden tests.
func BitString(buf []byte, n int) string {
	if n > len(buf)*8 {
		n = len(buf) * 8
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		if buf[i/8]&(1<<uint(7-i%8)) != 0 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
