package bitio

import (
	"bytes"
	"math/rand"
	"testing"
)

// The tests in this file hold the word-at-a-time fast paths to the retained
// bit-at-a-time reference implementation (reference.go): same writes must
// produce the same bytes, same reads must produce the same values, errors and
// stream positions — over random widths, values, alignments and bit offsets.

// TestDifferentialWriter drives Writer and refWriter through identical random
// operation sequences and compares the accumulated bit strings.
func TestDifferentialWriter(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := NewWriter(0)
		ref := &refWriter{}
		for op := 0; op < 300; op++ {
			switch rng.Intn(5) {
			case 0: // random field
				width := rng.Intn(65)
				v := rng.Uint64()
				gotErr := w.WriteBits(v, width)
				wantErr := ref.WriteBits(v, width)
				if gotErr != wantErr {
					t.Fatalf("seed %d op %d: WriteBits err %v want %v", seed, op, gotErr, wantErr)
				}
			case 1: // single bit
				bit := rng.Intn(2) == 1
				w.WriteBit(bit)
				ref.WriteBit(bit)
			case 2: // unary, occasionally longer than a word
				n := rng.Intn(10)
				if rng.Intn(10) == 0 {
					n = 60 + rng.Intn(80)
				}
				_ = w.WriteUnary(n)
				_ = ref.WriteUnary(n)
			case 3: // align to a random unit
				unit := 1 + rng.Intn(70)
				w.Align(unit)
				ref.Align(unit)
			case 4: // over-wide field must fail identically and write nothing
				if err := w.WriteBits(0, 65); err != ErrFieldTooWide {
					t.Fatalf("seed %d op %d: wide write err %v", seed, op, err)
				}
				if err := ref.WriteBits(0, 65); err != ErrFieldTooWide {
					t.Fatalf("seed %d op %d: wide ref write err %v", seed, op, err)
				}
			}
			if w.Len() != ref.Len() {
				t.Fatalf("seed %d op %d: Len %d want %d", seed, op, w.Len(), ref.Len())
			}
		}
		if !bytes.Equal(w.Bytes(), ref.Bytes()) {
			t.Fatalf("seed %d: bytes diverge\n fast %s\n  ref %s",
				seed, BitString(w.Bytes(), w.Len()), BitString(ref.Bytes(), ref.Len()))
		}
	}
}

// TestDifferentialReader drives Reader and refReader over the same random bit
// strings with identical operation sequences, comparing values, errors and
// positions after every step — including operations that run off the end of
// the buffer.
func TestDifferentialReader(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		buf := make([]byte, 1+rng.Intn(40))
		rng.Read(buf)
		nbit := rng.Intn(len(buf)*8 + 1)
		r := NewReader(buf, nbit)
		ref := newRefReader(buf, nbit)
		for op := 0; op < 400; op++ {
			switch rng.Intn(6) {
			case 0:
				width := rng.Intn(66) // may exceed MaxFieldWidth
				got, gotErr := r.ReadBits(width)
				want, wantErr := ref.ReadBits(width)
				if got != want || gotErr != wantErr {
					t.Fatalf("seed %d op %d: ReadBits(%d) = %#x,%v want %#x,%v",
						seed, op, width, got, gotErr, want, wantErr)
				}
			case 1:
				got, gotErr := r.ReadBit()
				want, wantErr := ref.ReadBit()
				if got != want || gotErr != wantErr {
					t.Fatalf("seed %d op %d: ReadBit = %v,%v want %v,%v", seed, op, got, gotErr, want, wantErr)
				}
			case 2:
				got, gotErr := r.ReadUnary()
				want, wantErr := ref.ReadUnary()
				if got != want || gotErr != wantErr {
					t.Fatalf("seed %d op %d: ReadUnary = %d,%v want %d,%v", seed, op, got, gotErr, want, wantErr)
				}
			case 3:
				unit := 1 + rng.Intn(70)
				gotErr := r.Align(unit)
				wantErr := ref.Align(unit)
				if gotErr != wantErr {
					t.Fatalf("seed %d op %d: Align(%d) = %v want %v", seed, op, unit, gotErr, wantErr)
				}
			case 4:
				pos := rng.Intn(nbit + 1)
				if err := r.Seek(pos); err != nil {
					t.Fatalf("seed %d op %d: Seek(%d): %v", seed, op, pos, err)
				}
				if err := ref.Seek(pos); err != nil {
					t.Fatalf("seed %d op %d: ref Seek(%d): %v", seed, op, pos, err)
				}
			case 5:
				// PeekBits then SkipBits must equal ReadBits on the reference.
				width := rng.Intn(65)
				got, gotErr := r.PeekBits(width)
				want, wantErr := ref.ReadBits(width)
				if got != want || gotErr != wantErr {
					t.Fatalf("seed %d op %d: PeekBits(%d) = %#x,%v want %#x,%v",
						seed, op, width, got, gotErr, want, wantErr)
				}
				if gotErr == nil {
					if err := r.SkipBits(width); err != nil {
						t.Fatalf("seed %d op %d: SkipBits(%d): %v", seed, op, width, err)
					}
				}
			}
			if r.Pos() != ref.Pos() || r.Remaining() != ref.Remaining() {
				t.Fatalf("seed %d op %d: pos %d/%d want %d/%d",
					seed, op, r.Pos(), r.Remaining(), ref.Pos(), ref.Remaining())
			}
		}
	}
}

// FuzzReadBitsDifferential fuzzes single field reads at arbitrary bit offsets
// against the reference implementation.
func FuzzReadBitsDifferential(f *testing.F) {
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, 3, 13)
	f.Add([]byte{0xff}, 0, 8)
	f.Add(bytes.Repeat([]byte{0xa5}, 16), 7, 64)
	f.Add([]byte{}, 0, 1)
	f.Add(bytes.Repeat([]byte{0x0f}, 9), 1, 64)
	f.Fuzz(func(t *testing.T, buf []byte, pos, width int) {
		if width < 0 || width > 80 || pos < 0 {
			t.Skip()
		}
		r := NewReader(buf, -1)
		ref := newRefReader(buf, -1)
		if r.Seek(pos) != nil {
			t.Skip()
		}
		_ = ref.Seek(pos)
		got, gotErr := r.ReadBits(width)
		want, wantErr := ref.ReadBits(width)
		if got != want || gotErr != wantErr {
			t.Fatalf("ReadBits(%d) at %d = %#x,%v want %#x,%v", width, pos, got, gotErr, want, wantErr)
		}
		if r.Pos() != ref.Pos() {
			t.Fatalf("pos after read = %d want %d", r.Pos(), ref.Pos())
		}
	})
}

// FuzzWriteBitsDifferential fuzzes field writes at arbitrary starting
// alignments against the reference implementation.
func FuzzWriteBitsDifferential(f *testing.F) {
	f.Add(uint64(0xdeadbeef), 17, 5)
	f.Add(^uint64(0), 64, 3)
	f.Add(uint64(1), 1, 0)
	f.Fuzz(func(t *testing.T, v uint64, width, lead int) {
		if width < 0 || width > 64 || lead < 0 || lead > 64 {
			t.Skip()
		}
		w := NewWriter(0)
		ref := &refWriter{}
		// Start at an arbitrary bit alignment.
		_ = w.WriteBits(0x55555555, lead)
		_ = ref.WriteBits(0x55555555, lead)
		if err := w.WriteBits(v, width); err != nil {
			t.Fatal(err)
		}
		if err := ref.WriteBits(v, width); err != nil {
			t.Fatal(err)
		}
		if w.Len() != ref.Len() || !bytes.Equal(w.Bytes(), ref.Bytes()) {
			t.Fatalf("write %#x/%d at %d: fast %s ref %s",
				v, width, lead, BitString(w.Bytes(), w.Len()), BitString(ref.Bytes(), ref.Len()))
		}
		// Round-trip through the fast reader.
		r := NewReader(w.Bytes(), w.Len())
		if err := r.Seek(lead); err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadBits(width)
		if err != nil {
			t.Fatal(err)
		}
		want := v
		if width < 64 {
			want &= 1<<uint(width) - 1
		}
		if got != want {
			t.Fatalf("round trip %#x/%d at %d: got %#x", v, width, lead, got)
		}
	})
}
