// Package bitio provides bit-granular readers and writers whose fields may
// span the boundaries of the underlying memory units (bytes or words).
//
// The paper's encoded directly interpretable representations (DIRs) pack
// fields of arbitrary width "together and allowed to span the boundaries of
// the units of memory access" (§3.2).  Every encoder in internal/encoding is
// built on top of this package, as is the binary emission of DIR programs in
// internal/dir.
//
// Bits are written and read most-significant-bit first within each byte, so
// the bit at absolute position 0 is the top bit of the first byte.  This
// matches the field diagrams of the era (opcode field leftmost) and makes the
// dumps produced by cmd/uhmasm readable against the paper's Table 1.
//
// The reader and writer operate word-at-a-time: a field is gathered or
// scattered through a 64-bit accumulator over the byte buffer instead of one
// bit per iteration.  reference.go retains the original bit-at-a-time
// implementation, which the differential tests in this package hold the fast
// paths to, bit for bit.
package bitio
