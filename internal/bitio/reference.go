package bitio

// This file retains the original bit-at-a-time reader and writer verbatim.
// They are the behavioural specification of the package: the word-at-a-time
// fast paths in bitio.go must match them bit for bit, including error values
// and the position at which a failing operation leaves the stream.  The
// differential and fuzz tests in this package drive both implementations over
// the same operation sequences and compare every observable.
//
// The reference implementations are deliberately unexported: production code
// uses the fast paths; only tests (and future debugging) reach for these.

// refWriter is the bit-at-a-time Writer.
type refWriter struct {
	buf  []byte
	nbit int
}

func (w *refWriter) Len() int      { return w.nbit }
func (w *refWriter) Bytes() []byte { return w.buf }

func (w *refWriter) WriteBits(v uint64, width int) error {
	if width < 0 {
		panic("bitio: negative field width")
	}
	if width > MaxFieldWidth {
		return ErrFieldTooWide
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	for i := width - 1; i >= 0; i-- {
		bit := byte((v >> uint(i)) & 1)
		byteIdx := w.nbit / 8
		if byteIdx == len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		if bit != 0 {
			w.buf[byteIdx] |= 1 << uint(7-w.nbit%8)
		}
		w.nbit++
	}
	return nil
}

func (w *refWriter) WriteBit(bit bool) {
	var v uint64
	if bit {
		v = 1
	}
	_ = w.WriteBits(v, 1)
}

func (w *refWriter) WriteUnary(n int) error {
	if n < 0 {
		panic("bitio: negative unary value")
	}
	for i := 0; i < n; i++ {
		w.WriteBit(true)
	}
	w.WriteBit(false)
	return nil
}

func (w *refWriter) Align(unit int) {
	if unit <= 0 {
		panic("bitio: non-positive alignment unit")
	}
	for w.nbit%unit != 0 {
		w.WriteBit(false)
	}
}

// refReader is the bit-at-a-time Reader.
type refReader struct {
	buf  []byte
	pos  int
	nbit int
}

func newRefReader(buf []byte, nbit int) *refReader {
	if nbit < 0 || nbit > len(buf)*8 {
		nbit = len(buf) * 8
	}
	return &refReader{buf: buf, nbit: nbit}
}

func (r *refReader) Pos() int       { return r.pos }
func (r *refReader) Remaining() int { return r.nbit - r.pos }

func (r *refReader) Seek(pos int) error {
	if pos < 0 || pos > r.nbit {
		return ErrShortBuffer
	}
	r.pos = pos
	return nil
}

func (r *refReader) ReadBits(width int) (uint64, error) {
	if width < 0 {
		panic("bitio: negative field width")
	}
	if width > MaxFieldWidth {
		return 0, ErrFieldTooWide
	}
	if r.pos+width > r.nbit {
		return 0, ErrShortBuffer
	}
	var v uint64
	for i := 0; i < width; i++ {
		byteIdx := r.pos / 8
		bit := (r.buf[byteIdx] >> uint(7-r.pos%8)) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

func (r *refReader) ReadBit() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

func (r *refReader) ReadUnary() (int, error) {
	n := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if !b {
			return n, nil
		}
		n++
	}
}

func (r *refReader) Align(unit int) error {
	if unit <= 0 {
		panic("bitio: non-positive alignment unit")
	}
	for r.pos%unit != 0 {
		if _, err := r.ReadBit(); err != nil {
			return err
		}
	}
	return nil
}
