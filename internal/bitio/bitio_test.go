package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleField(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
	}{
		{0, 1}, {1, 1}, {5, 3}, {0xFF, 8}, {0x1234, 16},
		{0xDEADBEEF, 32}, {0xFFFFFFFFFFFFFFFF, 64}, {0, 0}, {7, 5},
	}
	for _, c := range cases {
		w := NewWriter(64)
		if err := w.WriteBits(c.v, c.width); err != nil {
			t.Fatalf("WriteBits(%x,%d): %v", c.v, c.width, err)
		}
		if w.Len() != c.width {
			t.Errorf("Len() = %d, want %d", w.Len(), c.width)
		}
		r := NewReader(w.Bytes(), w.Len())
		got, err := r.ReadBits(c.width)
		if err != nil {
			t.Fatalf("ReadBits(%d): %v", c.width, err)
		}
		want := c.v
		if c.width < 64 {
			want &= (1 << uint(c.width)) - 1
		}
		if got != want {
			t.Errorf("round trip %x width %d: got %x", c.v, c.width, got)
		}
	}
}

func TestFieldsSpanByteBoundaries(t *testing.T) {
	w := NewWriter(0)
	// 3 + 7 + 11 + 13 = 34 bits: every field straddles a byte boundary.
	fields := []struct {
		v     uint64
		width int
	}{{5, 3}, {0x55, 7}, {0x5A5, 11}, {0x1FFF, 13}}
	for _, f := range fields {
		if err := w.WriteBits(f.v, f.width); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 34 {
		t.Fatalf("total bits = %d, want 34", w.Len())
	}
	r := NewReader(w.Bytes(), w.Len())
	for _, f := range fields {
		got, err := r.ReadBits(f.width)
		if err != nil {
			t.Fatal(err)
		}
		if got != f.v {
			t.Errorf("field width %d: got %x want %x", f.width, got, f.v)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d, want 0", r.Remaining())
	}
}

func TestWriteBitsMasksValue(t *testing.T) {
	w := NewWriter(8)
	if err := w.WriteBits(0xFF, 4); err != nil {
		t.Fatal(err)
	}
	r := NewReader(w.Bytes(), w.Len())
	got, _ := r.ReadBits(4)
	if got != 0xF {
		t.Errorf("got %x, want 0xF", got)
	}
}

func TestFieldTooWide(t *testing.T) {
	w := NewWriter(0)
	if err := w.WriteBits(0, 65); err != ErrFieldTooWide {
		t.Errorf("WriteBits width 65: err = %v, want ErrFieldTooWide", err)
	}
	r := NewReader(make([]byte, 16), -1)
	if _, err := r.ReadBits(65); err != ErrFieldTooWide {
		t.Errorf("ReadBits width 65: err = %v, want ErrFieldTooWide", err)
	}
}

func TestShortBuffer(t *testing.T) {
	w := NewWriter(0)
	if err := w.WriteBits(0x3, 2); err != nil {
		t.Fatal(err)
	}
	r := NewReader(w.Bytes(), w.Len())
	if _, err := r.ReadBits(3); err != ErrShortBuffer {
		t.Errorf("err = %v, want ErrShortBuffer", err)
	}
}

func TestNegativeWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative width")
		}
	}()
	w := NewWriter(0)
	_ = w.WriteBits(0, -1)
}

func TestUnary(t *testing.T) {
	w := NewWriter(0)
	values := []int{0, 1, 2, 5, 13, 31}
	for _, n := range values {
		if err := w.WriteUnary(n); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(w.Bytes(), w.Len())
	for _, n := range values {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Errorf("unary round trip: got %d want %d", got, n)
		}
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter(0)
	_ = w.WriteBits(0x5, 3)
	w.Align(8)
	if w.Len() != 8 {
		t.Fatalf("aligned length = %d, want 8", w.Len())
	}
	_ = w.WriteBits(0xAB, 8)
	r := NewReader(w.Bytes(), w.Len())
	v, _ := r.ReadBits(3)
	if v != 0x5 {
		t.Errorf("first field = %x", v)
	}
	if err := r.Align(8); err != nil {
		t.Fatal(err)
	}
	v, _ = r.ReadBits(8)
	if v != 0xAB {
		t.Errorf("post-align field = %x, want 0xAB", v)
	}
}

func TestAlignBadUnitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero alignment unit")
		}
	}()
	w := NewWriter(0)
	w.Align(0)
}

func TestSeek(t *testing.T) {
	w := NewWriter(0)
	_ = w.WriteBits(0xA, 4)
	_ = w.WriteBits(0xB, 4)
	r := NewReader(w.Bytes(), w.Len())
	if err := r.Seek(4); err != nil {
		t.Fatal(err)
	}
	v, _ := r.ReadBits(4)
	if v != 0xB {
		t.Errorf("after seek got %x, want 0xB", v)
	}
	if err := r.Seek(99); err == nil {
		t.Error("Seek(99) should fail")
	}
	if err := r.Seek(-1); err == nil {
		t.Error("Seek(-1) should fail")
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(0)
	_ = w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	_ = w.WriteBits(0x3, 2)
	r := NewReader(w.Bytes(), w.Len())
	v, _ := r.ReadBits(2)
	if v != 3 {
		t.Errorf("after reset got %x, want 3", v)
	}
}

func TestBitString(t *testing.T) {
	w := NewWriter(0)
	_ = w.WriteBits(0b1011, 4)
	_ = w.WriteBits(0b001, 3)
	got := BitString(w.Bytes(), w.Len())
	if got != "1011001" {
		t.Errorf("BitString = %q, want %q", got, "1011001")
	}
	if s := BitString([]byte{0xF0}, 99); s != "11110000" {
		t.Errorf("BitString clamp = %q", s)
	}
}

// Property: any sequence of (value,width) fields round-trips exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		type field struct {
			v     uint64
			width int
		}
		fields := make([]field, count)
		w := NewWriter(0)
		for i := range fields {
			width := rng.Intn(64) + 1
			v := rng.Uint64()
			if width < 64 {
				v &= (1 << uint(width)) - 1
			}
			fields[i] = field{v, width}
			if err := w.WriteBits(v, width); err != nil {
				return false
			}
		}
		r := NewReader(w.Bytes(), w.Len())
		for _, f := range fields {
			got, err := r.ReadBits(f.width)
			if err != nil || got != f.v {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: total bit length equals the sum of written widths.
func TestQuickLengthAdds(t *testing.T) {
	f := func(widths []uint8) bool {
		w := NewWriter(0)
		total := 0
		for _, wd := range widths {
			width := int(wd % 65)
			if err := w.WriteBits(0, width); err != nil {
				return false
			}
			total += width
		}
		return w.Len() == total && len(w.Bytes()) == (total+7)/8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriterWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<20 {
			w.Reset()
		}
		_ = w.WriteBits(uint64(i), 13)
	}
}

func BenchmarkReaderReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for i := 0; i < 4096; i++ {
		_ = w.WriteBits(uint64(i), 13)
	}
	r := NewReader(w.Bytes(), w.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 13 {
			_ = r.Seek(0)
		}
		_, _ = r.ReadBits(13)
	}
}
