package bitio

import (
	"math/rand"
	"testing"
)

// Benchmarks of the bit-level substrate itself: the word-at-a-time fast
// paths against the retained bit-at-a-time reference, over a representative
// field-width mix (DIR fields are 1–30 bits with occasional 64-bit spans).

func benchWidths() []int {
	rng := rand.New(rand.NewSource(42))
	widths := make([]int, 1024)
	for i := range widths {
		switch rng.Intn(10) {
		case 0:
			widths[i] = 33 + rng.Intn(32) // wide field spanning many bytes
		case 1, 2:
			widths[i] = 9 + rng.Intn(24)
		default:
			widths[i] = 1 + rng.Intn(8) // narrow packed field
		}
	}
	return widths
}

func BenchmarkWriteBits(b *testing.B) {
	widths := benchWidths()
	b.Run("word", func(b *testing.B) {
		w := NewWriter(1 << 16)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%1024 == 0 {
				w.Reset()
			}
			_ = w.WriteBits(0xdeadbeefcafebabe, widths[i%1024])
		}
	})
	b.Run("reference", func(b *testing.B) {
		w := &refWriter{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%1024 == 0 {
				w.buf, w.nbit = w.buf[:0], 0
			}
			_ = w.WriteBits(0xdeadbeefcafebabe, widths[i%1024])
		}
	})
}

func BenchmarkReadBits(b *testing.B) {
	widths := benchWidths()
	w := NewWriter(1 << 16)
	total := 0
	for _, width := range widths {
		_ = w.WriteBits(0xdeadbeefcafebabe, width)
		total += width
	}
	b.Run("word", func(b *testing.B) {
		r := NewReader(w.Bytes(), w.Len())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%1024 == 0 {
				_ = r.Seek(0)
			}
			if _, err := r.ReadBits(widths[i%1024]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		r := newRefReader(w.Bytes(), w.Len())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%1024 == 0 {
				_ = r.Seek(0)
			}
			if _, err := r.ReadBits(widths[i%1024]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkReadUnary(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	w := NewWriter(1 << 16)
	values := make([]int, 256)
	for i := range values {
		values[i] = rng.Intn(40)
		_ = w.WriteUnary(values[i])
	}
	b.Run("word", func(b *testing.B) {
		r := NewReader(w.Bytes(), w.Len())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%256 == 0 {
				_ = r.Seek(0)
			}
			if _, err := r.ReadUnary(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		r := newRefReader(w.Bytes(), w.Len())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%256 == 0 {
				_ = r.Seek(0)
			}
			if _, err := r.ReadUnary(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
