package bitio

import (
	"errors"
	"testing"
)

// Edge cases called out for the word-at-a-time rewrite: maximal fields that
// span byte and word boundaries, mid-byte seeks, alignment after partial
// writes, and reads that end exactly at the buffer boundary.

func TestWriteRead64BitFieldSpanningBytes(t *testing.T) {
	for lead := 0; lead <= 16; lead++ {
		w := NewWriter(0)
		if err := w.WriteBits(0x2aaa, lead); err != nil { // arbitrary leading bits
			t.Fatal(err)
		}
		const v = uint64(0xfedcba9876543210)
		if err := w.WriteBits(v, 64); err != nil {
			t.Fatalf("lead %d: %v", lead, err)
		}
		const tail = uint64(0x5)
		if err := w.WriteBits(tail, 3); err != nil {
			t.Fatal(err)
		}
		r := NewReader(w.Bytes(), w.Len())
		if _, err := r.ReadBits(lead); err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadBits(64)
		if err != nil {
			t.Fatalf("lead %d: read 64: %v", lead, err)
		}
		if got != v {
			t.Fatalf("lead %d: 64-bit field = %#x, want %#x", lead, got, v)
		}
		gotTail, err := r.ReadBits(3)
		if err != nil || gotTail != tail {
			t.Fatalf("lead %d: tail = %#x,%v want %#x", lead, gotTail, err, tail)
		}
		if r.Remaining() != 0 {
			t.Fatalf("lead %d: %d bits left over", lead, r.Remaining())
		}
	}
}

func TestSeekMidByteThenRead(t *testing.T) {
	w := NewWriter(0)
	// 24 bits: 1010 1010 1100 1100 1111 0000
	_ = w.WriteBits(0xAACCF0, 24)
	r := NewReader(w.Bytes(), w.Len())
	for _, tc := range []struct {
		pos, width int
		want       uint64
	}{
		{3, 5, 0x0A},    // 01010
		{7, 9, 0x0CC},   // 0 1100 1100
		{1, 12, 0x559},  // 0101 0101 1001
		{13, 11, 0x4F0}, // 100 1111 0000
		{23, 1, 0x0},    // final bit
		{0, 24, 0xAACCF0},
	} {
		if err := r.Seek(tc.pos); err != nil {
			t.Fatalf("seek %d: %v", tc.pos, err)
		}
		got, err := r.ReadBits(tc.width)
		if err != nil {
			t.Fatalf("read %d@%d: %v", tc.width, tc.pos, err)
		}
		if got != tc.want {
			t.Errorf("read %d@%d = %#x, want %#x", tc.width, tc.pos, got, tc.want)
		}
		if r.Pos() != tc.pos+tc.width {
			t.Errorf("pos after read %d@%d = %d", tc.width, tc.pos, r.Pos())
		}
	}
}

func TestWriterAlignAfterPartialWrites(t *testing.T) {
	for _, unit := range []int{2, 7, 8, 16, 24, 32, 64} {
		for lead := 0; lead < 2*unit && lead <= 70; lead++ {
			w := NewWriter(0)
			_ = w.WriteBits(^uint64(0), min(lead, 64))
			if lead > 64 {
				_ = w.WriteBits(^uint64(0), lead-64)
			}
			w.Align(unit)
			if w.Len()%unit != 0 {
				t.Fatalf("unit %d lead %d: Len %d not aligned", unit, lead, w.Len())
			}
			if w.Len() < lead || w.Len()-lead >= unit {
				t.Fatalf("unit %d lead %d: padded to %d", unit, lead, w.Len())
			}
			// Padding must be zero bits.
			r := NewReader(w.Bytes(), w.Len())
			_ = r.Seek(lead)
			for r.Remaining() > 0 {
				b, err := r.ReadBit()
				if err != nil {
					t.Fatal(err)
				}
				if b {
					t.Fatalf("unit %d lead %d: nonzero padding bit", unit, lead)
				}
			}
		}
	}
}

func TestErrShortBufferExactBoundary(t *testing.T) {
	w := NewWriter(0)
	_ = w.WriteBits(0x3FF, 10)
	r := NewReader(w.Bytes(), w.Len()) // 10 valid bits in 2 bytes

	// Reading exactly to the boundary succeeds.
	if _, err := r.ReadBits(10); err != nil {
		t.Fatalf("read to boundary: %v", err)
	}
	// One more bit fails without moving the position.
	if _, err := r.ReadBits(1); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("read past boundary err = %v", err)
	}
	if r.Pos() != 10 {
		t.Fatalf("failed read moved pos to %d", r.Pos())
	}
	// A width that would fit the byte buffer but not the valid-bit count
	// fails too: the padding bits of the final byte are not readable.
	_ = r.Seek(8)
	if _, err := r.ReadBits(3); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("read into padding err = %v", err)
	}
	if got, err := r.ReadBits(2); err != nil || got != 0x3 {
		t.Fatalf("boundary re-read = %#x,%v", got, err)
	}
	// Peek and Skip respect the same boundary.
	_ = r.Seek(9)
	if _, err := r.PeekBits(2); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("peek past boundary err = %v", err)
	}
	if err := r.SkipBits(2); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("skip past boundary err = %v", err)
	}
	if err := r.SkipBits(1); err != nil {
		t.Fatalf("skip to boundary: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestPeekDoesNotAdvance(t *testing.T) {
	w := NewWriter(0)
	_ = w.WriteBits(0xCAFEBABE, 32)
	r := NewReader(w.Bytes(), w.Len())
	_ = r.Seek(4)
	v1, err := r.PeekBits(16)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r.PeekBits(16)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || r.Pos() != 4 {
		t.Fatalf("peek advanced: %#x vs %#x at %d", v1, v2, r.Pos())
	}
	got, err := r.ReadBits(16)
	if err != nil || got != v1 {
		t.Fatalf("read after peek = %#x,%v want %#x", got, err, v1)
	}
}

func TestReadUnaryAcrossWords(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 63, 64, 65, 130} {
		w := NewWriter(0)
		_ = w.WriteBits(0, 3) // misalign
		if err := w.WriteUnary(n); err != nil {
			t.Fatal(err)
		}
		r := NewReader(w.Bytes(), w.Len())
		_ = r.Seek(3)
		got, err := r.ReadUnary()
		if err != nil || got != n {
			t.Fatalf("unary %d = %d,%v", n, got, err)
		}
	}
	// A run of ones with no terminator exhausts the buffer.
	w := NewWriter(0)
	_ = w.WriteBits(^uint64(0), 64)
	_ = w.WriteBits(^uint64(0), 13)
	r := NewReader(w.Bytes(), w.Len())
	if _, err := r.ReadUnary(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("unterminated unary err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("unterminated unary left %d bits", r.Remaining())
	}
}
