package host

import (
	"errors"
	"reflect"
	"testing"

	"uhm/internal/compile"
	"uhm/internal/dir"
	"uhm/internal/hlr"
	"uhm/internal/psder"
	"uhm/internal/translate"
)

// runOnMachine drives a DIR program through the UHM machine: every
// instruction is translated to its PSDER sequence and executed, exactly as
// the simulator's strategies do (but without any timing of fetches).
func runOnMachine(t *testing.T, p *dir.Program) ([]int64, *Machine, int64) {
	t.Helper()
	m := New(p, Options{})
	seqs, err := translate.TranslateProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	pc := p.Procs[0].Entry
	var cycles int64
	for steps := 0; ; steps++ {
		if steps > 10_000_000 {
			t.Fatal("machine did not halt")
		}
		res, err := m.ExecSequence(seqs[pc])
		if err != nil {
			t.Fatalf("pc %d (%s): %v", pc, p.Instrs[pc], err)
		}
		cycles += res.SemanticCycles
		if res.Halted {
			return m.Output(), m, cycles
		}
		pc = res.NextPC
	}
}

var machineSources = map[string]string{
	"fib": `
program fib;
var n;
proc fibo(k);
begin
  if k < 2 then return k
  else return fibo(k - 1) + fibo(k - 2)
end;
begin
  n := 11;
  print fibo(n)
end.`,
	"arrays": `
program arrays;
var a[20], i, sum;
begin
  i := 0;
  while i < 20 do
  begin
    a[i] := i * 3;
    i := i + 1
  end;
  sum := 0;
  i := 0;
  while i < 20 do
  begin
    sum := sum + a[i];
    i := i + 1
  end;
  print sum
end.`,
	"uplevel": `
program uplevel;
var counter;
proc outer(n);
  proc bump(k);
  begin
    counter := counter + k + n
  end;
begin
  call bump(1);
  call bump(2)
end;
begin
  counter := 0;
  call outer(10);
  call outer(100);
  print counter
end.`,
	"mixed": `
program mixed;
var a, b, r;
proc choose(x, y);
begin
  if x >= y then return x;
  return y
end;
begin
  a := 6; b := 19;
  r := choose(a * 2, b) + a mod 4 - (0 - 5);
  print r;
  print (a < b) or (a = b);
  print not (a < b)
end.`,
}

func TestMachineMatchesReferenceInterpreters(t *testing.T) {
	for name, src := range machineSources {
		prog := hlr.MustParse(src)
		want, err := hlr.Evaluate(prog, hlr.EvalOptions{})
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		for _, level := range compile.Levels() {
			t.Run(name+"/"+level.String(), func(t *testing.T) {
				dp := compile.MustCompile(hlr.MustParse(src), level)
				// Oracle 1: the HLR evaluator.  Oracle 2: the DIR executor.
				dirRes, err := dir.Execute(dp, dir.ExecOptions{})
				if err != nil {
					t.Fatal(err)
				}
				got, _, _ := runOnMachine(t, dp)
				if !reflect.DeepEqual(got, want.Output) {
					t.Errorf("machine output = %v, want %v (HLR oracle)", got, want.Output)
				}
				if !reflect.DeepEqual(got, dirRes.Output) {
					t.Errorf("machine output = %v, want %v (DIR oracle)", got, dirRes.Output)
				}
			})
		}
	}
}

func TestMachineSemanticCyclesPositiveAndActivityRecorded(t *testing.T) {
	dp := compile.MustCompile(hlr.MustParse(machineSources["fib"]), compile.LevelStack)
	_, m, cycles := runOnMachine(t, dp)
	if cycles <= 0 {
		t.Error("semantic cycles should accumulate")
	}
	activity := m.RoutineActivity()
	if activity[psder.RoutineCall] == 0 || activity[psder.RoutineAdd] == 0 {
		t.Errorf("routine activity = %v", activity)
	}
	short := m.ShortOpActivity()
	if short[psder.OpPush] == 0 || short[psder.OpCall] == 0 || short[psder.OpInterp] == 0 {
		t.Errorf("short-op activity = %v", short)
	}
	if !m.Halted() {
		t.Error("machine should be halted after the program ends")
	}
	if m.State() == nil {
		t.Error("State accessor")
	}
}

func TestExecSequenceAfterHalt(t *testing.T) {
	dp := compile.MustCompile(hlr.MustParse("program p; begin print 1 end."), compile.LevelStack)
	m := New(dp, Options{})
	seqs, _ := translate.TranslateProgram(dp)
	pc := 0
	for !m.Halted() {
		res, err := m.ExecSequence(seqs[pc])
		if err != nil {
			t.Fatal(err)
		}
		if res.Halted {
			break
		}
		pc = res.NextPC
	}
	if _, err := m.ExecSequence(seqs[0]); !errors.Is(err, ErrHalted) {
		t.Errorf("err = %v, want ErrHalted", err)
	}
}

func TestExecSequenceErrors(t *testing.T) {
	dp := compile.MustCompile(hlr.MustParse("program p; var x; begin x := 1 end."), compile.LevelStack)
	m := New(dp, Options{})

	// A sequence with no INTERP and no halt.
	if _, err := m.ExecSequence(psder.Sequence{psder.Push(1)}); !errors.Is(err, ErrNoNext) {
		t.Errorf("err = %v, want ErrNoNext", err)
	}
	// INTERP to an out-of-range DIR address.
	if _, err := m.ExecSequence(psder.Sequence{psder.InterpImm(999)}); err == nil {
		t.Error("INTERP out of range should fail")
	}
	// Stack underflow inside a routine.
	if _, err := m.ExecSequence(psder.Sequence{psder.Call(psder.RoutineAdd), psder.InterpImm(0)}); err == nil {
		t.Error("routine underflow should fail")
	}
	// POP of an empty stack.
	if _, err := m.ExecSequence(psder.Sequence{psder.Pop(), psder.InterpImm(0)}); err == nil {
		t.Error("POP underflow should fail")
	}
	// Unknown routine.
	if _, err := m.ExecSequence(psder.Sequence{{Op: psder.OpCall, Arg: 99}, psder.InterpImm(0)}); err == nil {
		t.Error("unknown routine should fail")
	}
	// Call to an unknown procedure index.
	bad := psder.Sequence{psder.Push(9), psder.Push(0), psder.Push(0), psder.Call(psder.RoutineCall), psder.InterpStack()}
	if _, err := m.ExecSequence(bad); err == nil {
		t.Error("call to unknown procedure should fail")
	}
}

func TestCallDepthLimit(t *testing.T) {
	src := "program deep; proc r(n); begin return r(n + 1) end; begin print r(0) end."
	dp := compile.MustCompile(hlr.MustParse(src), compile.LevelStack)
	m := New(dp, Options{MaxDepth: 30})
	seqs, err := translate.TranslateProgram(dp)
	if err != nil {
		t.Fatal(err)
	}
	pc := 0
	for i := 0; i < 100000; i++ {
		res, err := m.ExecSequence(seqs[pc])
		if err != nil {
			if !errors.Is(err, ErrCallDepth) {
				t.Fatalf("err = %v, want ErrCallDepth", err)
			}
			return
		}
		if res.Halted {
			t.Fatal("program should not halt normally")
		}
		pc = res.NextPC
	}
	t.Fatal("expected the call depth limit to trigger")
}

func TestUplevelAddressingCostsStaticLinkHops(t *testing.T) {
	// Accessing a global from a nested procedure must cost more than
	// accessing a local, because of static-link hops.
	src := `
program hops;
var g;
proc q(x);
begin
  g := x
end;
begin
  call q(3);
  print g
end.`
	dp := compile.MustCompile(hlr.MustParse(src), compile.LevelStack)
	seqs, _ := translate.TranslateProgram(dp)
	m := New(dp, Options{})

	// Find the STV instruction inside q (stores to depth 0 from depth 1).
	var uplevelStore, localLoadCost int64
	pc := dp.Procs[0].Entry
	for !m.Halted() {
		in := dp.Instrs[pc]
		res, err := m.ExecSequence(seqs[pc])
		if err != nil {
			t.Fatal(err)
		}
		if in.Op == dir.OpStoreVar && in.Operands[0].Addr.Depth == 0 && in.Contour == 1 {
			uplevelStore = res.SemanticCycles
		}
		if in.Op == dir.OpPushVar && in.Operands[0].Addr.Depth == 1 && in.Contour == 1 {
			localLoadCost = res.SemanticCycles
		}
		if res.Halted {
			break
		}
		pc = res.NextPC
	}
	if uplevelStore == 0 {
		t.Fatal("did not observe the up-level store")
	}
	if localLoadCost == 0 {
		t.Fatal("did not observe the local parameter load")
	}
	if uplevelStore <= localLoadCost {
		t.Errorf("up-level store (%d cycles) should cost more than a local load (%d cycles)",
			uplevelStore, localLoadCost)
	}
}

func BenchmarkMachineFib(b *testing.B) {
	dp := compile.MustCompile(hlr.MustParse(machineSources["fib"]), compile.LevelStack)
	seqs, err := translate.TranslateProgram(dp)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(dp, Options{})
		pc := 0
		for {
			res, err := m.ExecSequence(seqs[pc])
			if err != nil {
				b.Fatal(err)
			}
			if res.Halted {
				break
			}
			pc = res.NextPC
		}
	}
}
