// Package host implements the universal host machine of §6: the engine that
// executes PSDER sequences.  IU2 issues the short-format instructions (PUSH,
// POP, CALL, INTERP); each CALL hands control to IU1, which runs the named
// semantic routine expressed in long-format instructions and returns.  The
// package accounts the cost of both units in level-1 cycle units, producing
// the paper's parameter x per DIR instruction, but it charges no memory-fetch
// cost — where the short-format words and the DIR bits come from (DTB, cache
// or level-2 memory) is the simulator's concern, because that placement is
// precisely what the three organisations of §7 vary.
package host
