package host

import (
	"errors"
	"fmt"

	"uhm/internal/dir"
	"uhm/internal/psder"
)

// Execution errors.
var (
	// ErrHalted is returned when a sequence is executed on a halted machine.
	ErrHalted = errors.New("host: machine is halted")
	// ErrNoNext is returned when a sequence ends without producing a next
	// DIR address and without halting.
	ErrNoNext = errors.New("host: sequence ended without INTERP or halt")
	// ErrCallDepth mirrors the DIR executor's recursion limit.
	ErrCallDepth = errors.New("host: call depth limit exceeded")
)

// Options bounds machine execution.
type Options struct {
	// MaxDepth limits the activation-stack depth; zero selects a default.
	MaxDepth int
}

// DefaultOptions returns the default bounds.
func DefaultOptions() Options { return Options{MaxDepth: 10_000} }

// StepResult reports the outcome of executing one PSDER sequence (i.e. the
// semantics of one DIR instruction).
type StepResult struct {
	// NextPC is the DIR instruction index named by the terminating INTERP.
	NextPC int
	// Halted reports that the program finished during this sequence.
	Halted bool
	// SemanticCycles is the IU1+IU2 time spent, in level-1 cycles: one cycle
	// per short-format instruction issued plus the cost of each semantic
	// routine executed.  This is the contribution of this DIR instruction to
	// the paper's parameter x.
	SemanticCycles int64
	// ShortInstrs is the number of short-format instructions issued (IU2
	// activity).
	ShortInstrs int
	// RoutineCalls is the number of semantic routines executed (IU1
	// activations).
	RoutineCalls int
}

// Machine is the run-time half of the UHM: the operand and activation stacks
// shared by every interpretation strategy, plus the semantic-routine library.
type Machine struct {
	prog   *dir.Program
	state  *dir.MachineState
	opts   Options
	halted bool

	// Per-routine execution counts, for the activity report of Figure 3.
	routineCalls map[psder.RoutineID]int64
	shortIssued  map[psder.ShortOp]int64
}

// New creates a machine positioned at the start of the program's main
// procedure.
func New(prog *dir.Program, opts Options) *Machine {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = DefaultOptions().MaxDepth
	}
	return &Machine{
		prog:         prog,
		state:        dir.NewMachineState(prog),
		opts:         opts,
		routineCalls: make(map[psder.RoutineID]int64),
		shortIssued:  make(map[psder.ShortOp]int64),
	}
}

// Halted reports whether the program has finished.
func (m *Machine) Halted() bool { return m.halted }

// Reset rewinds the machine to the start of the program, retaining every
// allocation (run-time state buffers, activity-count maps) so a replayed run
// performs no steady-state allocation.
func (m *Machine) Reset() {
	m.halted = false
	m.state.Reset()
	clear(m.routineCalls)
	clear(m.shortIssued)
}

// Output returns the program output so far.
func (m *Machine) Output() []int64 { return m.state.Output() }

// State exposes the underlying run-time state (for tests and diagnostics).
func (m *Machine) State() *dir.MachineState { return m.state }

// RoutineActivity returns the per-routine execution counts (IU1 activity).
func (m *Machine) RoutineActivity() map[psder.RoutineID]int64 {
	out := make(map[psder.RoutineID]int64, len(m.routineCalls))
	for k, v := range m.routineCalls {
		out[k] = v
	}
	return out
}

// ShortOpActivity returns per-opcode counts of short-format instructions
// issued (IU2 activity).
func (m *Machine) ShortOpActivity() map[psder.ShortOp]int64 {
	out := make(map[psder.ShortOp]int64, len(m.shortIssued))
	for k, v := range m.shortIssued {
		out[k] = v
	}
	return out
}

// ExecSequence executes one PSDER sequence to completion.
func (m *Machine) ExecSequence(seq psder.Sequence) (StepResult, error) {
	if m.halted {
		return StepResult{}, ErrHalted
	}
	var res StepResult
	for _, in := range seq {
		res.ShortInstrs++
		res.SemanticCycles++ // IU2 issues one short-format instruction
		m.shortIssued[in.Op]++
		switch in.Op {
		case psder.OpPush:
			m.state.Push(int64(in.Arg))

		case psder.OpPop:
			if _, err := m.state.Pop(); err != nil {
				return res, err
			}

		case psder.OpCall:
			res.RoutineCalls++
			cost, err := m.execRoutine(in.Routine())
			res.SemanticCycles += cost
			if err != nil {
				return res, err
			}
			if m.halted {
				res.Halted = true
				return res, nil
			}

		case psder.OpInterp:
			var next int64
			if in.Mode == psder.ModeStack {
				v, err := m.state.Pop()
				if err != nil {
					return res, err
				}
				next = v
			} else {
				next = int64(in.Arg)
			}
			if next < 0 || next >= int64(len(m.prog.Instrs)) {
				return res, fmt.Errorf("host: INTERP to out-of-range DIR address %d", next)
			}
			res.NextPC = int(next)
			return res, nil

		default:
			return res, fmt.Errorf("host: unknown short-format opcode %v", in.Op)
		}
	}
	return res, ErrNoNext
}

// execRoutine runs one semantic routine against the machine state and
// returns its cost in level-1 cycles (base cost plus dynamic extras such as
// static-link hops and argument transfers).
func (m *Machine) execRoutine(r psder.RoutineID) (int64, error) {
	m.routineCalls[r]++
	cost := int64(r.BaseCost())
	st := m.state

	popAddr := func() (dir.VarAddr, error) {
		offset, err := st.Pop()
		if err != nil {
			return dir.VarAddr{}, err
		}
		depth, err := st.Pop()
		if err != nil {
			return dir.VarAddr{}, err
		}
		addr := dir.VarAddr{Depth: int(depth), Offset: int(offset)}
		// Following the static chain costs one cycle per hop.
		hops := st.CurrentStaticDepth() - addr.Depth
		if hops > 0 {
			cost += int64(hops)
		}
		return addr, nil
	}

	binary := func(op dir.Opcode) error {
		b, err := st.Pop()
		if err != nil {
			return err
		}
		a, err := st.Pop()
		if err != nil {
			return err
		}
		v, err := dir.ApplyArith(op, a, b)
		if err != nil {
			return err
		}
		st.Push(v)
		return nil
	}

	selectBranch := func(op dir.Opcode) error {
		fall, err := st.Pop()
		if err != nil {
			return err
		}
		target, err := st.Pop()
		if err != nil {
			return err
		}
		b, err := st.Pop()
		if err != nil {
			return err
		}
		a, err := st.Pop()
		if err != nil {
			return err
		}
		taken, err := dir.CompareBranch(op, a, b)
		if err != nil {
			return err
		}
		if taken {
			st.Push(target)
		} else {
			st.Push(fall)
		}
		return nil
	}

	switch r {
	case psder.RoutineLoadVar:
		addr, err := popAddr()
		if err != nil {
			return cost, err
		}
		v, err := st.LoadVar(addr, 0)
		if err != nil {
			return cost, err
		}
		st.Push(v)
		return cost, nil

	case psder.RoutineLoadIndexed:
		addr, err := popAddr()
		if err != nil {
			return cost, err
		}
		idx, err := st.Pop()
		if err != nil {
			return cost, err
		}
		v, err := st.LoadVar(addr, idx)
		if err != nil {
			return cost, err
		}
		st.Push(v)
		return cost, nil

	case psder.RoutineStoreVar:
		addr, err := popAddr()
		if err != nil {
			return cost, err
		}
		v, err := st.Pop()
		if err != nil {
			return cost, err
		}
		return cost, st.StoreVar(addr, 0, v)

	case psder.RoutineStoreIndexed:
		addr, err := popAddr()
		if err != nil {
			return cost, err
		}
		v, err := st.Pop()
		if err != nil {
			return cost, err
		}
		idx, err := st.Pop()
		if err != nil {
			return cost, err
		}
		return cost, st.StoreVar(addr, idx, v)

	case psder.RoutineAdd:
		return cost, binary(dir.OpAdd)
	case psder.RoutineSub:
		return cost, binary(dir.OpSub)
	case psder.RoutineMul:
		return cost, binary(dir.OpMul)
	case psder.RoutineDiv:
		return cost, binary(dir.OpDiv)
	case psder.RoutineMod:
		return cost, binary(dir.OpMod)
	case psder.RoutineEq:
		return cost, binary(dir.OpEq)
	case psder.RoutineNe:
		return cost, binary(dir.OpNe)
	case psder.RoutineLt:
		return cost, binary(dir.OpLt)
	case psder.RoutineLe:
		return cost, binary(dir.OpLe)
	case psder.RoutineGt:
		return cost, binary(dir.OpGt)
	case psder.RoutineGe:
		return cost, binary(dir.OpGe)
	case psder.RoutineAnd:
		return cost, binary(dir.OpAnd)
	case psder.RoutineOr:
		return cost, binary(dir.OpOr)

	case psder.RoutineNeg:
		v, err := st.Pop()
		if err != nil {
			return cost, err
		}
		st.Push(-v)
		return cost, nil
	case psder.RoutineNot:
		v, err := st.Pop()
		if err != nil {
			return cost, err
		}
		if v == 0 {
			st.Push(1)
		} else {
			st.Push(0)
		}
		return cost, nil

	case psder.RoutineSelectIfZero:
		fall, err := st.Pop()
		if err != nil {
			return cost, err
		}
		target, err := st.Pop()
		if err != nil {
			return cost, err
		}
		cond, err := st.Pop()
		if err != nil {
			return cost, err
		}
		if cond == 0 {
			st.Push(target)
		} else {
			st.Push(fall)
		}
		return cost, nil

	case psder.RoutineSelectEq:
		return cost, selectBranch(dir.OpBrEq)
	case psder.RoutineSelectNe:
		return cost, selectBranch(dir.OpBrNe)
	case psder.RoutineSelectLt:
		return cost, selectBranch(dir.OpBrLt)
	case psder.RoutineSelectLe:
		return cost, selectBranch(dir.OpBrLe)
	case psder.RoutineSelectGt:
		return cost, selectBranch(dir.OpBrGt)
	case psder.RoutineSelectGe:
		return cost, selectBranch(dir.OpBrGe)

	case psder.RoutineCall:
		retAddr, err := st.Pop()
		if err != nil {
			return cost, err
		}
		nargs, err := st.Pop()
		if err != nil {
			return cost, err
		}
		proc, err := st.Pop()
		if err != nil {
			return cost, err
		}
		if proc < 0 || proc >= int64(len(m.prog.Procs)) {
			return cost, fmt.Errorf("host: call to unknown procedure %d", proc)
		}
		// Transferring each argument into the new frame costs one cycle.
		cost += nargs
		entry, err := st.Call(int(proc), int(nargs), int(retAddr), m.opts.MaxDepth)
		if err != nil {
			if errors.Is(err, dir.ErrCallDepth) {
				return cost, fmt.Errorf("%w: %v", ErrCallDepth, err)
			}
			return cost, err
		}
		st.Push(int64(entry))
		return cost, nil

	case psder.RoutineReturn:
		ret, ok := st.Return(0)
		if !ok {
			m.halted = true
			return cost, nil
		}
		st.Push(int64(ret))
		return cost, nil

	case psder.RoutineReturnValue:
		v, err := st.Pop()
		if err != nil {
			return cost, err
		}
		ret, ok := st.Return(v)
		if !ok {
			m.halted = true
			return cost, nil
		}
		st.Push(int64(ret))
		return cost, nil

	case psder.RoutinePrint:
		v, err := st.Pop()
		if err != nil {
			return cost, err
		}
		st.Print(v)
		return cost, nil

	case psder.RoutineHalt:
		m.halted = true
		return cost, nil

	default:
		return cost, fmt.Errorf("host: unimplemented semantic routine %v", r)
	}
}
