package host

import (
	"testing"

	"uhm/internal/dir"
	"uhm/internal/psder"
)

// tinyProgram gives the machine a two-instruction DIR program so INTERP has a
// valid successor address to name.
func tinyProgram() *dir.Program {
	return &dir.Program{
		Name: "divmod",
		Instrs: []dir.Instruction{
			{Op: dir.OpPushConst, Operands: []dir.Operand{dir.ImmOperand(0)}},
			{Op: dir.OpHalt},
		},
		Procs:    []dir.Proc{{Name: "main", Entry: 0, FrameSlots: 1}},
		Contours: []dir.Contour{{Parent: 0}},
		Level:    "hand",
	}
}

// TestRoutineDivModTruncates drives the IU1 semantic routines directly with
// every sign combination and checks they agree with Go's truncating
// division — i.e. with the hlr oracle and the DIR reference interpreter.
func TestRoutineDivModTruncates(t *testing.T) {
	cases := []struct{ a, b int64 }{
		{7, 3}, {7, -3}, {-7, 3}, {-7, -3},
		{1, 2}, {-1, 2}, {1, -2}, {-1, -2},
		{0, 5}, {0, -5}, {-9, 2}, {2, -9},
		{5, -1}, {-5, -1},
	}
	for _, tc := range cases {
		for _, sub := range []struct {
			routine psder.RoutineID
			want    int64
		}{
			{psder.RoutineDiv, tc.a / tc.b},
			{psder.RoutineMod, tc.a % tc.b},
		} {
			m := New(tinyProgram(), Options{})
			// Operand values wider than the short-format immediate would need
			// the translator's chunked pushConst; these fit directly.
			seq := psder.Sequence{
				psder.Push(int32(tc.a)),
				psder.Push(int32(tc.b)),
				psder.Call(sub.routine),
				psder.Call(psder.RoutinePrint),
				psder.InterpImm(1),
			}
			res, err := m.ExecSequence(seq)
			if err != nil {
				t.Fatalf("%v(%d, %d): %v", sub.routine, tc.a, tc.b, err)
			}
			if res.NextPC != 1 {
				t.Fatalf("%v(%d, %d): NextPC = %d, want 1", sub.routine, tc.a, tc.b, res.NextPC)
			}
			out := m.Output()
			if len(out) != 1 || out[0] != sub.want {
				t.Errorf("%v(%d, %d) printed %v, want [%d]", sub.routine, tc.a, tc.b, out, sub.want)
			}
		}
	}
}

// TestRoutineDivModByZero checks the routines trap like every other layer.
func TestRoutineDivModByZero(t *testing.T) {
	for _, routine := range []psder.RoutineID{psder.RoutineDiv, psder.RoutineMod} {
		m := New(tinyProgram(), Options{})
		seq := psder.Sequence{
			psder.Push(9),
			psder.Push(0),
			psder.Call(routine),
			psder.InterpImm(1),
		}
		if _, err := m.ExecSequence(seq); err == nil {
			t.Errorf("%v by zero succeeded, want error", routine)
		}
	}
}
