// Package core is the public façade of the reproduction: it wires the HLR
// front end, the compiler, the DIR encoders, the UHM simulator and the
// analytic model into a handful of calls that cover the end-to-end pipeline
//
//	MiniLang source → DIR (a semantic level) → encoded binary (a degree of
//	encoding) → simulated execution under a machine organisation,
//
// plus one entry point per table and figure of the paper's evaluation (see
// experiments.go).  The cmd/ tools, the examples and the benchmark harness
// are all thin wrappers over this package.
package core
