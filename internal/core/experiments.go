package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"uhm/internal/dir"
	"uhm/internal/host"
	"uhm/internal/metrics"
	"uhm/internal/perfmodel"
	"uhm/internal/psder"
	"uhm/internal/translate"
)

// This file contains one entry point per table and figure of the paper's
// evaluation.  Each returns structured data plus a Render helper so
// cmd/uhmbench, the examples and the benchmark harness all print identical
// reports.  The experiment-to-module map lives in DESIGN.md; measured-versus-
// published values are recorded in EXPERIMENTS.md.

// DefaultExperimentWorkloads are the workloads the figure experiments sweep
// when the caller does not choose their own.
func DefaultExperimentWorkloads() []string {
	return []string{"loopsum", "fib", "sieve", "callheavy"}
}

// --- Table 1 -------------------------------------------------------------

// Table1Report reproduces Table 1: the equivalence of a PSDER call sequence
// to a PDP-11-type format and a System/360 RX-type format, with bit counts.
func Table1Report() string {
	return dir.Table1Report(dir.DefaultTable1Params())
}

// --- Tables 2 and 3 ------------------------------------------------------

// Table2 regenerates the paper's Table 2 (analytic model) on the default
// parallel engine.
func Table2() *perfmodel.Table {
	t, _ := defaultEngine.Table2(context.Background()) // only fails on ctx cancellation
	return t
}

// Table3 regenerates the paper's Table 3 (analytic model) on the default
// parallel engine.
func Table3() *perfmodel.Table {
	t, _ := defaultEngine.Table3(context.Background()) // only fails on ctx cancellation
	return t
}

// --- Figure 1: the space of program representations ----------------------

// Figure1Row is one point of the representation space: a workload compiled at
// one semantic level and encoded at one degree, with its static size, the
// decoder-table (interpreter) growth, and its simulated interpretation time
// on the conventional organisation.
type Figure1Row struct {
	Workload       string
	Level          Level
	Degree         Degree
	StaticBits     int
	CodebookBits   int
	Instructions   int64
	TotalCycles    int64
	PerInstruction float64
	MeasuredDecode float64
}

// Figure1 sweeps the representation space on the default parallel engine.
func Figure1(workloads []string, cfg Config) ([]Figure1Row, error) {
	return defaultEngine.Figure1(context.Background(), workloads, cfg)
}

// RenderFigure1 formats the sweep in the layout of Figure 1's two axes.
func RenderFigure1(rows []Figure1Row) string {
	tbl := metrics.NewTable(
		"Figure 1: the space of program representations (size falls with encoding degree; time falls with semantic level)",
		"workload", "level", "degree", "static size", "decoder tables", "dyn instrs", "cycles/instr", "decode steps/instr")
	for _, r := range rows {
		tbl.AddRow(r.Workload, r.Level.String(), r.Degree.String(),
			metrics.Bits(r.StaticBits), metrics.Bits(r.CodebookBits),
			fmt.Sprint(r.Instructions), metrics.Float(r.PerInstruction), metrics.Float(r.MeasuredDecode))
	}
	return tbl.Render()
}

// --- Figure 2: organisation and behaviour of the DTB ----------------------

// Figure2Row reports the DTB hit ratio measured for one buffer capacity.
type Figure2Row struct {
	Entries       int
	CapacityBytes int
	HitRatio      float64
	Evictions     int64
	Overflows     int64
}

// Figure2 describes the DTB organisation (Figure 2's arrays) and measures
// its hit ratio across a range of capacities on the default parallel engine.
func Figure2(workloadName string, cfg Config) (string, []Figure2Row, error) {
	return defaultEngine.Figure2(context.Background(), workloadName, cfg)
}

// RenderFigure2 formats the capacity sweep.
func RenderFigure2(organisation string, rows []Figure2Row) string {
	tbl := metrics.NewTable("Figure 2: DTB hit ratio vs capacity (workload instruction working set)",
		"entries", "capacity", "hit ratio", "evictions", "overflow installs")
	for _, r := range rows {
		tbl.AddRow(fmt.Sprint(r.Entries), fmt.Sprintf("%d B", r.CapacityBytes),
			metrics.Percent(r.HitRatio), fmt.Sprint(r.Evictions), fmt.Sprint(r.Overflows))
	}
	return organisation + "\n\n" + tbl.Render()
}

// --- Figure 3: organisation of the universal host machine -----------------

// Figure3Activity summarises per-unit activity of one simulated run: how much
// work IU1 (semantic routines), IU2 (short-format instructions), the IFU
// (instruction fetches) and the memory levels performed.
type Figure3Activity struct {
	Workload        string
	Strategy        Strategy
	Instructions    int64
	ShortOps        map[psder.ShortOp]int64
	Routines        map[psder.RoutineID]int64
	Level1Refs      int64
	Level2Refs      int64
	BufferRefs      int64
	FetchCycles     int64
	DecodeCycles    int64
	TranslateCycles int64
	SemanticCycles  int64
}

// Figure3 runs one workload under the DTB organisation and reports the
// activity of every block in Figure 3's diagram, on the default engine.
func Figure3(workloadName string, cfg Config) (*Figure3Activity, error) {
	return defaultEngine.Figure3(context.Background(), workloadName, cfg)
}

// Figure3 is the engine form of the per-unit activity experiment; the
// workload is resolved through the engine's Build hook, so a registry-backed
// engine reuses the shared artifact.
func (e Engine) Figure3(ctx context.Context, workloadName string, cfg Config) (*Figure3Activity, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workloadName == "" {
		workloadName = "fib"
	}
	art, err := e.buildWorkload(workloadName, LevelStack)
	if err != nil {
		return nil, err
	}
	dp := art.DIR
	// Drive the host machine directly so IU1/IU2 activity can be captured,
	// then run the simulator for the memory-system numbers.
	machine := host.New(dp, host.Options{})
	seqs, err := translate.TranslateProgram(dp)
	if err != nil {
		return nil, err
	}
	pc := dp.Procs[0].Entry
	var instructions int64
	for {
		res, err := machine.ExecSequence(seqs[pc])
		if err != nil {
			return nil, err
		}
		instructions++
		if res.Halted {
			break
		}
		pc = res.NextPC
	}
	rep, err := Run(art, WithDTB, cfg)
	if err != nil {
		return nil, err
	}
	return &Figure3Activity{
		Workload:        workloadName,
		Strategy:        WithDTB,
		Instructions:    rep.Instructions,
		ShortOps:        machine.ShortOpActivity(),
		Routines:        machine.RoutineActivity(),
		Level1Refs:      rep.Memory.Level1Refs,
		Level2Refs:      rep.Memory.Level2Refs,
		BufferRefs:      rep.Memory.BufferRefs,
		FetchCycles:     int64(rep.FetchCycles),
		DecodeCycles:    int64(rep.DecodeCycles),
		TranslateCycles: int64(rep.TranslateCycles),
		SemanticCycles:  int64(rep.SemanticCycles),
	}, nil
}

// RenderFigure3 formats the activity report.
func RenderFigure3(a *Figure3Activity) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: UHM organisation — per-unit activity for %q under the %v organisation\n\n", a.Workload, a.Strategy)
	tbl := metrics.NewTable("Cycle breakdown", "unit", "cycles")
	tbl.AddRow("IFU + memory (instruction fetch)", fmt.Sprint(a.FetchCycles))
	tbl.AddRow("decode (field extraction, code trees)", fmt.Sprint(a.DecodeCycles))
	tbl.AddRow("dynamic translator (generate + store)", fmt.Sprint(a.TranslateCycles))
	tbl.AddRow("IU1 + IU2 (semantic routines)", fmt.Sprint(a.SemanticCycles))
	b.WriteString(tbl.Render())
	b.WriteString("\n")

	refs := metrics.NewTable("Memory references", "array", "references")
	refs.AddRow("level-1 memory", fmt.Sprint(a.Level1Refs))
	refs.AddRow("level-2 memory", fmt.Sprint(a.Level2Refs))
	refs.AddRow("DTB arrays", fmt.Sprint(a.BufferRefs))
	b.WriteString(refs.Render())
	b.WriteString("\n")

	iu2 := metrics.NewTable("IU2 short-format instruction mix", "op", "count")
	var ops []psder.ShortOp
	for op := range a.ShortOps {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		iu2.AddRow(op.String(), fmt.Sprint(a.ShortOps[op]))
	}
	b.WriteString(iu2.Render())
	b.WriteString("\n")

	iu1 := metrics.NewTable("IU1 semantic-routine activity (top 10)", "routine", "calls")
	type rc struct {
		r psder.RoutineID
		n int64
	}
	var rcs []rc
	for r, n := range a.Routines {
		rcs = append(rcs, rc{r, n})
	}
	sort.Slice(rcs, func(i, j int) bool {
		if rcs[i].n != rcs[j].n {
			return rcs[i].n > rcs[j].n
		}
		return rcs[i].r < rcs[j].r
	})
	for i, e := range rcs {
		if i >= 10 {
			break
		}
		iu1.AddRow(e.r.String(), fmt.Sprint(e.n))
	}
	b.WriteString(iu1.Render())
	return b.String()
}

// --- Figure 4: the INTERP instruction ------------------------------------

// Figure4Stats counts the two paths of Figure 4's flow diagram: the hit path
// (translation found in the DTB) and the miss path (trap to the dynamic
// translation routine, generate, store, then execute).
type Figure4Stats struct {
	Workload     string
	Interps      int64 // INTERP executions = DIR instructions interpreted
	HitPath      int64
	MissPath     int64
	HitRatio     float64
	AvgHitCost   float64 // cycles on the hit path (fetch from DTB)
	AvgMissCost  float64 // cycles on the miss path (fetch + decode + translate)
	Installs     int64
	Evictions    int64
	Invalidates  int64
	BufferRefs   int64
	TranslateAvg float64
}

// Figure4 measures the INTERP hit and miss paths on one workload, on the
// default engine.
func Figure4(workloadName string, cfg Config) (*Figure4Stats, error) {
	return defaultEngine.Figure4(context.Background(), workloadName, cfg)
}

// Figure4 is the engine form of the INTERP path experiment; the workload is
// resolved through the engine's Build hook.
func (e Engine) Figure4(ctx context.Context, workloadName string, cfg Config) (*Figure4Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workloadName == "" {
		workloadName = "sieve"
	}
	art, err := e.buildWorkload(workloadName, LevelStack)
	if err != nil {
		return nil, err
	}
	rep, err := Run(art, WithDTB, cfg)
	if err != nil {
		return nil, err
	}
	st := rep.DTBStats
	out := &Figure4Stats{
		Workload:    workloadName,
		Interps:     st.Lookups,
		HitPath:     st.Hits,
		MissPath:    st.Misses,
		HitRatio:    st.HitRatio(),
		Installs:    st.Installs,
		Evictions:   st.Evictions,
		Invalidates: st.Invalidates,
		BufferRefs:  rep.Memory.BufferRefs,
	}
	if st.Hits > 0 {
		// Hit path: fetch of the PSDER words from the buffer array.
		out.AvgHitCost = rep.Measured.S1 * float64(cfg.Memory.BufferTime)
	}
	if st.Misses > 0 {
		out.AvgMissCost = rep.Measured.D + rep.Measured.G +
			rep.Measured.S2*float64(cfg.Memory.Level2Time)
		out.TranslateAvg = rep.Measured.G
	}
	return out, nil
}

// RenderFigure4 formats the INTERP path statistics.
func RenderFigure4(s *Figure4Stats) string {
	tbl := metrics.NewTable(
		fmt.Sprintf("Figure 4: INTERP instruction flow on %q (hit path vs miss/translate path)", s.Workload),
		"quantity", "value")
	tbl.AddRow("INTERP executions", fmt.Sprint(s.Interps))
	tbl.AddRow("hit path taken", fmt.Sprint(s.HitPath))
	tbl.AddRow("miss path taken (trap via DTRPOINT)", fmt.Sprint(s.MissPath))
	tbl.AddRow("hit ratio h_D", metrics.Percent(s.HitRatio))
	tbl.AddRow("avg hit-path cost (cycles)", metrics.Float(s.AvgHitCost))
	tbl.AddRow("avg miss-path cost (cycles)", metrics.Float(s.AvgMissCost))
	tbl.AddRow("translations installed", fmt.Sprint(s.Installs))
	tbl.AddRow("replacements (LRU evictions)", fmt.Sprint(s.Evictions))
	tbl.AddRow("buffer-array references", fmt.Sprint(s.BufferRefs))
	return tbl.Render()
}

// --- Empirical cross-check of Section 7 ----------------------------------

// EmpiricalRow compares the three organisations (plus the expanded baseline)
// on one workload, with the measured model parameters.
type EmpiricalRow struct {
	Workload string
	Reports  []*Report
}

// Empirical runs every organisation on every workload at the configured
// encoding degree, on the default parallel engine.
func Empirical(workloads []string, cfg Config) ([]EmpiricalRow, error) {
	return defaultEngine.Empirical(context.Background(), workloads, cfg)
}

// RenderEmpirical formats the comparison, including the measured counterparts
// of the paper's F2 figure of merit.
func RenderEmpirical(rows []EmpiricalRow) string {
	tbl := metrics.NewTable(
		"Section 7 empirical cross-check: measured cycles per DIR instruction (T) and figures of merit",
		"workload", "strategy", "T (cycles/instr)", "d", "x", "s1", "s2", "hit ratio")
	var b strings.Builder
	for _, row := range rows {
		var conv, withDTB, compiled *Report
		for _, rep := range row.Reports {
			hit := ""
			switch rep.Strategy {
			case WithDTB:
				hit = metrics.Percent(rep.Measured.HD)
				withDTB = rep
			case WithCache:
				hit = metrics.Percent(rep.Measured.HC)
			case Conventional:
				conv = rep
			case Compiled:
				compiled = rep
			}
			tbl.AddRow(row.Workload, rep.Strategy.String(), metrics.Float(rep.PerInstruction),
				metrics.Float(rep.Measured.D), metrics.Float(rep.Measured.X),
				metrics.Float(rep.Measured.S1), metrics.Float(rep.Measured.S2), hit)
		}
		if conv != nil && withDTB != nil && withDTB.PerInstruction > 0 {
			f2 := (conv.PerInstruction - withDTB.PerInstruction) / withDTB.PerInstruction * 100
			fmt.Fprintf(&b, "  %-10s measured F2 (degradation from not using the DTB): %.1f%%\n", row.Workload, f2)
		}
		if withDTB != nil && compiled != nil && compiled.PerInstruction > 0 {
			f3 := (withDTB.PerInstruction - compiled.PerInstruction) / compiled.PerInstruction * 100
			fmt.Fprintf(&b, "  %-10s measured F3 (gain of full compilation over the DTB): %.1f%%\n", row.Workload, f3)
		}
	}
	return tbl.Render() + "\n" + b.String()
}

// --- §3.2 compaction study ------------------------------------------------

// CompactionRow records the static size of one workload at every encoding
// degree, as a fraction of the packed (unencoded) size.
type CompactionRow struct {
	Workload   string
	Level      Level
	Bits       map[Degree]int
	Reduction  map[Degree]float64 // fraction saved relative to DegreePacked
	Expanded   int                // bits of the fully expanded PSDER form
	Interprets map[Degree]int     // codebook bits per degree
}

// Compaction measures the §3.2 claim that encoding reduces program size by
// 25–75 percent, on the default parallel engine.
func Compaction(workloads []string, level Level) ([]CompactionRow, error) {
	return defaultEngine.Compaction(context.Background(), workloads, level)
}

// RenderCompaction formats the compaction study.
func RenderCompaction(rows []CompactionRow) string {
	tbl := metrics.NewTable(
		"Encoding compaction (§3.2): static size by degree, relative to packed fields",
		"workload", "packed", "contour", "huffman", "pair", "saving (pair)", "expanded PSDER")
	for _, r := range rows {
		tbl.AddRow(r.Workload,
			metrics.Bits(r.Bits[DegreePacked]), metrics.Bits(r.Bits[DegreeContour]),
			metrics.Bits(r.Bits[DegreeHuffman]), metrics.Bits(r.Bits[DegreePair]),
			metrics.Percent(r.Reduction[DegreePair]), metrics.Bits(r.Expanded))
	}
	return tbl.Render()
}
