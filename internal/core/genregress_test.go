package core

import (
	"slices"
	"testing"

	"uhm/internal/hlr"
)

// This file pins the programs with which the generator-driven conformance
// harness first caught a real cross-stack divergence (PR 3).  The sources are
// checked in verbatim — no generator at test time — so the bugs they caught
// stay fixed even if the generator's distribution changes.
//
// Root cause of all three: the hlr reference evaluator computed the assigned
// value of "a[i] := v" before the index i, while the compiler (and with it
// the DIR interpreter, the host's semantic routines and all four machine
// organisations) evaluates the index first.  With function-style calls on
// both sides of the ":=", the side-effect order is observable output.

// TestAssignIndexEvaluationOrder is the minimized reproducer (shrunk by
// gen.Minimize from generated seed 48): both the index and the value of an
// array assignment call procedures that write the same up-level variable.
// Left-to-right evaluation — index before value — must print 3.
func TestAssignIndexEvaluationOrder(t *testing.T) {
	const src = `
program evalorder;
var g2;
var arr5[6];
proc p10(fuel11);
  proc p17(fuel18, t19, t20);
    begin
      g2 := fuel18
    end;
  begin
    if fuel11 <= 0 then
    begin
      return 3
    end;
    arr5[p10(fuel11 - 1)] := p17(fuel11, 0, 0)
  end;
begin
  if p10(3) then
  begin
  end;
  print g2
end.`
	prog, err := hlr.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := hlr.Evaluate(prog, hlr.EvalOptions{})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	// Index first: the outermost p17 call runs last, so g2 ends at the
	// outermost fuel value.  (The pre-fix oracle evaluated the value first
	// and printed 1.)
	if want := []int64{3}; !slices.Equal(res.Output, want) {
		t.Fatalf("oracle printed %v, want %v (index must evaluate before value)", res.Output, want)
	}
	divs, err := CheckConformance("evalorder", src, DefaultConfig())
	if err != nil {
		t.Fatalf("conformance: %v", err)
	}
	for _, d := range divs {
		t.Errorf("%s", d)
	}
}

// TestGeneratedRegressionPrograms replays the two hairiest full generated
// programs that surfaced the divergence (seeds 38 and 48 of the PR 3 sweep):
// deeply nested mutually recursive procedures, up-level stores from three
// contours down, side-effecting calls inside array subscripts, and
// negative-operand div/mod everywhere.  Outputs are pinned so a semantic
// drift in any layer shows up as a diff, and the full cross-product is
// re-checked.
func TestGeneratedRegressionPrograms(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int64
	}{
		{name: "seed38", src: regressSeed38, want: []int64{0, 4, 41, 11, 1, 78, 99, 91, 1, 1}},
		{name: "seed48", src: regressSeed48, want: []int64{-1, 1, 0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := hlr.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := hlr.Evaluate(prog, hlr.EvalOptions{})
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if !slices.Equal(res.Output, tc.want) {
				t.Fatalf("oracle printed %v, want %v", res.Output, tc.want)
			}
			divs, err := CheckConformance(tc.name, tc.src, DefaultConfig())
			if err != nil {
				t.Fatalf("conformance: %v", err)
			}
			for _, d := range divs {
				t.Errorf("%s", d)
			}
		})
	}
}

// regressSeed38 is gen.Generate(38)'s program, frozen at PR 3.
const regressSeed38 = `program gen38;
var g1;
var g2;
var g3;
var g4;
var li5;
var li6;
var arr7[7];
var arr8[3];
proc p9(fuel10, t11);
  var v12;
  var v13;
  var arr14[6];
  proc p15(fuel16, t17);
    var v18;
    var li19;
    var arr20[5];
    begin
      if fuel16 <= 0 then
      begin
        return -1
      end;
      begin
        li19 := 0;
        while li19 < 1 do
        begin
          g4 := 78;
          call p15(fuel16 - 1, -p15(fuel16 - 1, 26) > arr14[((0 or not 15 = p9(fuel16 - 1, 73)) mod 6 + 6) mod 6]);
          call p9(fuel16 - 1, 18);
          li19 := li19 + 3
        end
      end;
      return -(-fuel16 + g2 + (v13 + v12 > -t17))
    end;
  proc p21(fuel22, t23);
    var li24;
    begin
      if fuel22 <= 0 then
      begin
        return -1
      end;
      if fuel22 then
      begin
        v12 := p15(fuel22 - 1, -4 - 59) * (1 + 77 <= v13) < p21(fuel22 - 1, g2 and -li5);
        g2 := (not (v12 >= -5) > arr8[(li6 mod (2 * (li24 - 95 and t11 / (2 * v13 + 1)) + 1) mod 3 + 3) mod 3] + -19 * 56) + (t11 - -19 or li24 * 50 / 3)
      end;
      v12 := (v13 - v13 + p9(fuel22 - 1, 75)) / (2 * (4 - fuel22 or li24 + g4) + 1) - (38 - (t23 + arr8[2]));
      v13 := 70;
      begin
        li24 := 0;
        while li24 < 6 do
        begin
          t11 := ((-13 * g3 and t23) <> g4) mod 6;
          v12 := not -((22 and v13) / (2 * g3 + 1));
          li24 := li24 + 1
        end
      end;
      if arr8[(((88 - v12) * g1 + (not fuel10 + (2 and -16))) mod 3 + 3) mod 3] <> p15(fuel22 - 1, 38 * 90 mod (2 * (47 + li5) - 1)) then
      begin
        if not ((g4 and g3) = v12 mod -3) + p21(fuel22 - 1, 40 or arr8[(((74 = 48) = (g1 and fuel22)) / -4 mod 3 + 3) mod 3]) then
        begin
          call p15(fuel22 - 1, (g3 mod (2 * 74 - 1) < -14 * 44) mod (2 * (38 * v12 <= 15) + 1));
          if (not not 85 or 94) + p15(fuel22 - 1, 83 / 3 > g2 + 12) then
          begin
            call p15(fuel22 - 1, not fuel22 - li6 * 6 - arr14[((g3 * (fuel22 - -10) and not g2) mod 6 + 6) mod 6]);
            arr7[2] := v12 / (2 * p9(fuel22 - 1, arr7[((not (li24 + g2) + (73 * 81 + arr14[((v13 - g2 mod -1 or g3 and not 43) mod 6 + 6) mod 6])) mod 7 + 7) mod 7] = v13) - 1);
            print t23 mod -5 < -p15(fuel22 - 1, p21(fuel22 - 1, li6))
          end;
          begin
            li24 := 0;
            while li24 < 6 do
            begin
              t23 := g3;
              li24 := li24 + 1
            end
          end;
          print arr14[(arr14[(34 mod 6 + 6) mod 6] mod 6 + 6) mod 6] and p9(fuel22 - 1, (g2 or g1) + 57 mod (2 * 47 + 1))
        end
        else
        begin
          print -(89 - fuel22 or (g2 or li6)) + (p21(fuel22 - 1, v12) > arr8[((arr7[(0 mod 7 + 7) mod 7] and 20) mod 3 + 3) mod 3]);
          g3 := fuel10;
          begin
            li24 := 0;
            while li24 < 3 do
            begin
              v12 := (24 * v12 * arr14[0] and li24 = (42 or v13)) / -2;
              li24 := li24 + 2
            end
          end
        end
      end
    end;
  begin
    if fuel10 <= 0 then
    begin
      return -3
    end;
    v12 := 9;
    g2 := arr7[(74 / (2 * t11 - 1) mod 7 + 7) mod 7] / 9;
    arr7[(-(li6 * fuel10) / (2 * ((65 and 29) = p9(fuel10 - 1, g3)) - 1) mod 7 + 7) mod 7] := fuel10 + (li5 * 76 + 23 + p15(fuel10 - 1, -10 > v12));
    t11 := p15(fuel10 - 1, 37) - v13 and p9(fuel10 - 1, v13) + -li5 mod (2 * (60 * 99) + 1)
  end;
begin
  if 4 >= (92 < g3) and arr7[5] then
  begin
    g1 := g3;
    arr7[(g1 mod 7 + 7) mod 7] := 84 - ((14 and g4 + g3) > (li6 / (2 * g3 + 1) or 60 = g4))
  end
  else
  begin
    print --(arr8[(((p9(2, 67) >= arr7[5]) + arr7[(not (43 * li6) * not not g4 mod 7 + 7) mod 7]) mod 3 + 3) mod 3] >= 12);
    g2 := p9(3, not g2 and li5 + g3 or arr8[0]);
    call p9(4, 55);
    g4 := p9(3, (-g1 = (g1 and g1)) - p9(4, arr7[((g3 + 20 * 64) mod 4 mod 7 + 7) mod 7]));
    call p9(1, arr8[(56 * ((39 < 82) + (29 <= g3)) mod 3 + 3) mod 3])
  end;
  begin
    li6 := 0;
    while li6 < 4 do
    begin
      g1 := 36;
      begin
        li5 := 0;
        while li5 < 6 do
        begin
          g2 := p9(3, arr7[(not g3 / (2 * 46 - 1) mod 7 + 7) mod 7]) or g1;
          g1 := p9(2, arr8[((-p9(4, 73) + not (g4 + -16)) mod 3 + 3) mod 3]) + (78 <> g4 mod (2 * li5 - 1) * not g1);
          li5 := li5 + 3
        end
      end;
      g3 := 1;
      arr8[(((53 or g4) - (g2 > g3) + not not 86) mod 3 + 3) mod 3] := not not (--4 - not g1);
      begin
        li5 := 1;
        while li5 < 2 do
        begin
          g1 := 41;
          call p9(1, li6 * (p9(4, 68) mod (2 * 5 + 1)));
          li5 := li5 + 2
        end
      end;
      li6 := li6 + 1
    end
  end;
  g4 := g4;
  if p9(3, g2) then
  begin
    arr7[(g4 * -(g3 - g1) mod 7 + 7) mod 7] := arr8[((88 + (arr8[(--97 mod 3 + 3) mod 3] - (g1 - -15))) mod 3 + 3) mod 3] * (arr7[1] - (9 and 73) or 54)
  end
  else
  begin
    print li6 * not (not li6 * (li5 <= g3))
  end;
  print g1;
  print g2;
  print g3;
  print g4;
  print arr7[3];
  print arr7[6];
  print arr8[2];
  print arr8[2]
end.`

// regressSeed48 is gen.Generate(48)'s program, frozen at PR 3.
const regressSeed48 = `program gen48;
var g1;
var g2;
var li3;
var li4;
var arr5[6];
proc p6(fuel7);
  var v8;
  var li9;
  proc p13(fuel14);
    var v15;
    var v16;
    begin
      if fuel14 <= 0 then
      begin
        return -3
      end;
      v16 := (arr5[(not -li3 mod -8 mod 6 + 6) mod 6] - 26 / (2 * 61 - 1)) * -arr5[((arr5[(10 mod 6 + 6) mod 6] or p6(fuel14 - 1)) mod 6 + 6) mod 6] mod (2 * arr5[(((97 = 0) * (v8 + v8) <> p10(fuel14 - 1) + li4 / (2 * fuel14 - 1)) mod 6 + 6) mod 6] - 1);
      arr5[((li9 * (fuel7 mod -1) < (-v8 > p6(fuel14 - 1))) mod 6 + 6) mod 6] := p6(fuel14 - 1) and g1
    end;
  begin
    if fuel7 <= 0 then
    begin
      return -1
    end;
    if li4 * not (li9 >= g2) <> (p10(fuel7 - 1) / (2 * arr5[1] + 1) > -li3 * (li9 - li4)) then
    begin
      if 33 * ((li3 or 45) * (61 * g2)) - fuel7 then
      begin
        g2 := -(arr5[(p10(fuel7 - 1) mod 6 + 6) mod 6] - (91 + 80)) + (not -13 or p13(fuel7 - 1));
        g1 := li3;
        if p13(fuel7 - 1) * p6(fuel7 - 1) then
        begin
          arr5[((arr5[5] or -20 mod -8) * arr5[((g2 <= not arr5[(li9 mod 6 + 6) mod 6]) mod 6 + 6) mod 6] mod 6 + 6) mod 6] := -1;
          g1 := p10(fuel7 - 1)
        end;
        arr5[(not arr5[((arr5[(p6(fuel7 - 1) mod (2 * arr5[4] + 1) mod 6 + 6) mod 6] and (fuel7 - g1 and -li3)) mod 6 + 6) mod 6] mod 6 + 6) mod 6] := p13(fuel7 - 1);
        begin
          li9 := 1;
          while li9 < 4 do
          begin
            if 21 then
            begin
              call p6(fuel7 - 1);
              g2 := 48;
              print arr5[(not -33 * ((li4 and 52) + fuel7 * -13) mod 6 + 6) mod 6] + --2 - li3
            end
            else
            begin
              arr5[(((g2 and 50) + -10 - (-19 - 76) * arr5[(((g1 + -13) mod (2 * (89 * 94) + 1) - v8) mod 6 + 6) mod 6]) mod 6 + 6) mod 6] := arr5[((99 - 56) * (li3 + 61) * ((li4 - li4) * not 2) mod 6 + 6) mod 6];
              arr5[(p6(fuel7 - 1) mod 6 + 6) mod 6] := g1 and li3 / (2 * (not v8 + 83) - 1);
              g2 := (v8 + li4 - g1 * fuel7) * arr5[(p10(fuel7 - 1) mod 6 + 6) mod 6] * arr5[(p13(fuel7 - 1) mod 6 + 6) mod 6]
            end;
            if 1 - (arr5[(arr5[(li4 mod 6 + 6) mod 6] mod 6 + 6) mod 6] - -li9) * p13(fuel7 - 1) then
            begin
              g1 := li9
            end;
            li9 := li9 + 3
          end
        end
      end
      else
      begin
      end
    end
    else
    begin
    end
  end;
proc p10(fuel11);
  var li12;
  proc p17(fuel18, t19, t20);
    var v21;
    var li22;
    var arr23[8];
    begin
      if fuel18 <= 0 then
      begin
        return 2
      end;
      g2 := p10(fuel18 - 1)
    end;
  begin
    if fuel11 <= 0 then
    begin
      return 3
    end;
    arr5[(not (li3 mod 2 or arr5[((p10(fuel11 - 1) + (li4 and li3) - arr5[(((64 = li4) - not -7) mod 8 mod 6 + 6) mod 6]) mod 6 + 6) mod 6]) mod 6 + 6) mod 6] := p17(fuel11 - 1, (fuel11 + 90 - g1 / (2 * 44 - 1)) / -2, -(37 + -6) - fuel11 * (5 or -8));
    return arr5[3] * (59 and p6(fuel11 - 1) or -(91 mod (2 * 80 + 1)))
  end;
begin
  if 0 mod (2 * (p10(3) * -(g1 - g1)) + 1) then
  begin
    g2 := p10(3);
    if -(li3 <= (g1 and g1)) and p6(3) * (-li4 mod (2 * (66 / (2 * g1 + 1)) + 1)) then
    begin
      begin
        li4 := 0;
        while li4 < 4 do
        begin
          print g2 * (-(li4 and 87) + --17);
          li4 := li4 + 1
        end
      end;
      arr5[(-(93 <> g1) * (84 mod (2 * g2 - 1) - arr5[(((li3 + 69) * (g2 <= g2) - li4) mod 6 + 6) mod 6]) mod 6 + 6) mod 6] := p10(4);
      if (23 > g1) + (46 + not 81) / (2 * (-11 / (2 * g1 + 1) and not -8) - 1) then
      begin
        begin
          li4 := 0;
          while li4 < 3 do
          begin
            print arr5[4] = (p6(3) < 64 mod (2 * g2 - 1)) + arr5[((li4 or p10(2) / (2 * -4 - 1)) mod 6 + 6) mod 6];
            li4 := li4 + 2
          end
        end;
        g2 := (g2 or 8) * (li3 * g1 and (g2 or g1)) > arr5[5] + arr5[(arr5[(99 mod 6 + 6) mod 6] mod -5 mod 6 + 6) mod 6] - (li3 + 62 or p6(4));
        g2 := -((g1 + g1) * (24 <= 18) + arr5[(g1 mod 6 + 6) mod 6]);
        if -p6(2) then
        begin
          arr5[(--16 mod 6 + 6) mod 6] := not (arr5[2] mod 4 mod (2 * -p10(2) - 1));
          call p6(2);
          print (-99 < not (li4 / -3)) <> (3 and -g2);
          g2 := -li4;
          g1 := (li3 - 64) / (2 * arr5[(arr5[(((39 + 86) / (2 * (41 and 86) - 1) <> p6(3)) mod 6 + 6) mod 6] mod 6 + 6) mod 6] - 1) * (p6(1) >= (g2 <= 2)) * ((-5 - 73) / (2 * -g2 + 1) > ((76 <> li3) < 40))
        end
      end
      else
      begin
        g1 := (g1 - 50) * (li4 >= g1) * p10(4) or p6(2)
      end
    end
  end
  else
  begin
  end;
  print g1;
  print g2;
  print arr5[3];
  print arr5[5]
end.`
