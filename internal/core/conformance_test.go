package core

import (
	"context"
	"testing"

	"uhm/internal/workload"
	"uhm/internal/workload/gen"
)

// TestConformanceSmoke is the fuzz-style CI gate: a bounded seed range of
// generated programs through the full 3 levels × 4 degrees × 4 strategies
// cross-product (plus the predecoded/Replayer paths).  The full sweep is
// "uhmbench -gen 1000 -seed 1"; this subset keeps go test fast while still
// running tens of thousands of differential checks.
func TestConformanceSmoke(t *testing.T) {
	n := 16
	if testing.Short() {
		n = 4
	}
	res, err := ConformanceSweep(context.Background(), 1, n, 0, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	reportFailing(t, "", res)
}

// TestConformanceSmokeArchetypes sends a seed budget from every generator
// archetype through the same full cross-product — 3 levels × 4 degrees × 4
// strategies plus the predecoded/Replayer and derived-equals-simulated
// checks — so each locality profile earns the equivalence guarantee, not
// just the uniform population.  The full per-archetype sweep is
// "uhmbench -gen 500 -seed 1 -gen-archetype <name>".
func TestConformanceSmokeArchetypes(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 3
	}
	for _, name := range gen.ArchetypeNames() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := ConformanceSweepArchetype(context.Background(), name, 1, n, 0, DefaultConfig(), nil)
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			reportFailing(t, name, res)
		})
	}
}

// reportFailing turns a sweep's failing seeds into test errors with a
// copy-pastable reproduction command.
func reportFailing(t *testing.T, archetype string, res *SweepResult) {
	t.Helper()
	suffix := ""
	if archetype != "" {
		suffix = " -gen-archetype " + archetype
	}
	for _, f := range res.Failing {
		t.Errorf("seed %d diverged (%d divergences); reproduce with: uhmbench -gen 1 -seed %d%s",
			f.Seed, len(f.Divergences), f.Seed, suffix)
		for i, d := range f.Divergences {
			if i >= 6 {
				t.Errorf("  ... %d more", len(f.Divergences)-i)
				break
			}
			t.Errorf("  %s", d)
		}
	}
}

// TestConformanceBuiltinWorkloads runs every built-in workload through the
// same cross-product checker the generator sweep uses.
func TestConformanceBuiltinWorkloads(t *testing.T) {
	for _, name := range Workloads() {
		src, err := workload.Source(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		divs, err := CheckConformance(name, src, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, d := range divs {
			t.Errorf("%s", d)
		}
	}
}

// TestConformanceDetectsDivergence feeds the checker a program whose oracle
// output it deliberately perturbs via a doctored source pair, proving the
// harness actually reports when outputs differ (a harness that can never
// fail verifies nothing).
func TestConformanceDetectsDivergence(t *testing.T) {
	// A valid program: the checker must pass it.
	good := "program ok;\nvar x;\nbegin\n  x := 3;\n  print x\nend.\n"
	divs, err := CheckConformance("ok", good, DefaultConfig())
	if err != nil {
		t.Fatalf("good program: %v", err)
	}
	if len(divs) != 0 {
		t.Fatalf("good program diverged: %v", divs)
	}
	// An unparsable program must be an infrastructure error, not a pass.
	if _, err := CheckConformance("bad", "program p; begin end", DefaultConfig()); err == nil {
		t.Error("unparsable program: want error, got nil")
	}
}
