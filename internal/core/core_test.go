package core

import (
	"reflect"
	"strings"
	"testing"
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxInstructions = 3_000_000
	return cfg
}

func TestBuildAndRunPipeline(t *testing.T) {
	art, err := BuildWorkload("fib", LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	want, err := art.Reference()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(art, WithDTB, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Output, want) {
		t.Errorf("output = %v, want %v", rep.Output, want)
	}
	if bin, err := art.Encode(DegreeHuffman); err != nil || bin.SizeBits() == 0 {
		t.Errorf("encode: %v", err)
	}
	if !strings.Contains(art.Disassemble(), "fibo") {
		t.Error("disassembly should name the procedure")
	}
}

func TestBuildSourceErrors(t *testing.T) {
	if _, err := BuildSource("bad", "program", LevelStack); err == nil {
		t.Error("syntax error should fail")
	}
	if _, err := BuildSource("bad", "program p; begin x := 1 end.", LevelStack); err == nil {
		t.Error("semantic error should fail")
	}
	if _, err := BuildWorkload("nonexistent", LevelStack); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestEnumerationHelpers(t *testing.T) {
	if len(Levels()) != 3 || len(Degrees()) != 4 || len(Strategies()) != 5 {
		t.Errorf("enumerations: %v %v %v", Levels(), Degrees(), Strategies())
	}
	if len(Workloads()) < 5 {
		t.Errorf("workloads: %v", Workloads())
	}
	if len(DefaultExperimentWorkloads()) == 0 {
		t.Error("default experiment workloads should not be empty")
	}
}

func TestCompareAgreesWithReference(t *testing.T) {
	art, err := BuildWorkload("loopsum", LevelMem3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := art.Reference()
	reports, err := Compare(art, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, rep := range reports {
		if !reflect.DeepEqual(rep.Output, want) {
			t.Errorf("%v output = %v, want %v", rep.Strategy, rep.Output, want)
		}
	}
}

func TestTable1Report(t *testing.T) {
	report := Table1Report()
	for _, want := range []string{"PSDER", "PDP-11", "System/360 RX"} {
		if !strings.Contains(report, want) {
			t.Errorf("Table 1 report missing %q", want)
		}
	}
}

func TestTables2And3(t *testing.T) {
	t2 := Table2()
	t3 := Table3()
	v2, _ := t2.Value(10, 5)
	v3, _ := t3.Value(10, 5)
	if v2 < 37 || v2 > 38 || v3 < 78 || v3 > 79 {
		t.Errorf("corner cells: table2=%v table3=%v", v2, v3)
	}
}

func TestFigure1(t *testing.T) {
	rows, err := Figure1([]string{"loopsum"}, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 3 levels x 4 degrees.
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	// Within one level, size shrinks monotonically with encoding degree and
	// decode steps grow.
	byKey := make(map[string]Figure1Row)
	for _, r := range rows {
		byKey[r.Level.String()+"/"+r.Degree.String()] = r
	}
	packed := byKey["stack/packed"]
	pair := byKey["stack/pair"]
	if pair.StaticBits >= packed.StaticBits {
		t.Errorf("pair size %d should be below packed %d", pair.StaticBits, packed.StaticBits)
	}
	if pair.MeasuredDecode <= packed.MeasuredDecode {
		t.Errorf("pair decode %v should exceed packed %v", pair.MeasuredDecode, packed.MeasuredDecode)
	}
	// Higher semantic level → fewer cycles in total.
	if byKey["mem3/huffman"].TotalCycles >= byKey["stack/huffman"].TotalCycles {
		t.Error("mem3 should use fewer total cycles than stack at the same degree")
	}
	text := RenderFigure1(rows)
	if !strings.Contains(text, "Figure 1") || !strings.Contains(text, "loopsum") {
		t.Error("render missing content")
	}
}

func TestFigure2(t *testing.T) {
	org, rows, err := Figure2("", quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(org, "associative tag array") {
		t.Errorf("organisation description = %q", org)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Hit ratio grows (weakly) with capacity, and the largest buffer should
	// capture the working set well.
	for i := 1; i < len(rows); i++ {
		if rows[i].HitRatio+0.02 < rows[i-1].HitRatio {
			t.Errorf("hit ratio should not fall substantially with capacity: %v then %v",
				rows[i-1].HitRatio, rows[i].HitRatio)
		}
	}
	if rows[len(rows)-1].HitRatio < 0.9 {
		t.Errorf("largest DTB hit ratio = %v, want >= 0.9", rows[len(rows)-1].HitRatio)
	}
	if !strings.Contains(RenderFigure2(org, rows), "hit ratio") {
		t.Error("render missing content")
	}
}

func TestFigure3(t *testing.T) {
	act, err := Figure3("", quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if act.Instructions <= 0 || act.SemanticCycles <= 0 {
		t.Errorf("activity = %+v", act)
	}
	if len(act.ShortOps) == 0 || len(act.Routines) == 0 {
		t.Error("IU1/IU2 activity should be recorded")
	}
	text := RenderFigure3(act)
	for _, want := range []string{"Figure 3", "IU1", "IU2", "INTERP", "level-2 memory"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure4(t *testing.T) {
	stats, err := Figure4("", quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Interps != stats.HitPath+stats.MissPath {
		t.Errorf("INTERP executions %d != hits %d + misses %d", stats.Interps, stats.HitPath, stats.MissPath)
	}
	if stats.HitRatio <= 0.5 {
		t.Errorf("hit ratio = %v, expected mostly hit path", stats.HitRatio)
	}
	if stats.AvgMissCost <= stats.AvgHitCost {
		t.Errorf("miss path (%v) should cost more than hit path (%v)", stats.AvgMissCost, stats.AvgHitCost)
	}
	if !strings.Contains(RenderFigure4(stats), "DTRPOINT") {
		t.Error("render should mention the DTRPOINT trap")
	}
}

func TestEmpirical(t *testing.T) {
	rows, err := Empirical([]string{"loopsum", "fib"}, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[0].Reports) != 5 {
		t.Fatalf("rows = %d reports = %d", len(rows), len(rows[0].Reports))
	}
	text := RenderEmpirical(rows)
	for _, want := range []string{"loopsum", "dtb", "conventional", "measured F2"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// The DTB organisation must win on the loop-dominated workload.
	var conv, withDTB *Report
	for _, rep := range rows[0].Reports {
		switch rep.Strategy {
		case Conventional:
			conv = rep
		case WithDTB:
			withDTB = rep
		}
	}
	if withDTB.PerInstruction >= conv.PerInstruction {
		t.Errorf("DTB (%v cycles/instr) should beat conventional (%v) on loopsum",
			withDTB.PerInstruction, conv.PerInstruction)
	}
}

func TestCompaction(t *testing.T) {
	rows, err := Compaction([]string{"sieve", "fib"}, LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Bits[DegreePair] >= r.Bits[DegreePacked] {
			t.Errorf("%s: pair (%d bits) should be smaller than packed (%d bits)",
				r.Workload, r.Bits[DegreePair], r.Bits[DegreePacked])
		}
		// The paper cites 25-75% memory reduction from encoding; our heaviest
		// degree should save at least 20% over packed fields.
		if r.Reduction[DegreePair] < 0.20 {
			t.Errorf("%s: saving = %v, want >= 0.20", r.Workload, r.Reduction[DegreePair])
		}
		if r.Expanded <= r.Bits[DegreePacked] {
			t.Errorf("%s: expanded form (%d bits) should dwarf even the packed DIR (%d bits)",
				r.Workload, r.Expanded, r.Bits[DegreePacked])
		}
	}
	if !strings.Contains(RenderCompaction(rows), "saving") {
		t.Error("render missing content")
	}
}

func TestFigure1DefaultsAndEmpiricalDefaults(t *testing.T) {
	// Smoke-test the default workload lists with a cheaper config.
	cfg := quickConfig()
	if _, err := Empirical(nil, cfg); err != nil {
		t.Fatalf("Empirical defaults: %v", err)
	}
	if _, err := Compaction(nil, LevelStack); err != nil {
		t.Fatalf("Compaction defaults: %v", err)
	}
}
