package core

import "fmt"

// The one source of truth for turning user-facing names (CLI flags, HTTP
// request fields) into enumerators.  Every front end — uhmrun, uhmasm, uhmd —
// parses through these, so a renamed or added enumerator cannot drift
// between the CLI and the server.

// ParseLevel resolves a semantic-level name (stack, mem2, mem3).
func ParseLevel(name string) (Level, error) {
	for _, l := range Levels() {
		if l.String() == name {
			return l, nil
		}
	}
	return 0, fmt.Errorf("unknown level %q", name)
}

// ParseDegree resolves an encoding-degree name (packed, contour, huffman,
// pair).
func ParseDegree(name string) (Degree, error) {
	for _, d := range Degrees() {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown degree %q", name)
}

// ParseStrategy resolves an organisation name (conventional, dtb, cache,
// expanded, compiled).
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range Strategies() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown strategy %q", name)
}
