package core

import (
	"sync"
	"testing"
)

// TestArtifactPredecodedConcurrentStress pins the one-build-per-degree
// guarantee the service registry relies on: any number of goroutines hitting
// one artifact across mixed degrees must all receive the same shared
// PredecodedProgram instance per degree — the build happened exactly once —
// and the instances must be immediately usable.  Run under -race (CI does),
// this also pins that the lazy build publishes safely.
func TestArtifactPredecodedConcurrentStress(t *testing.T) {
	art, err := BuildWorkload("sieve", LevelStack)
	if err != nil {
		t.Fatal(err)
	}
	degrees := Degrees()
	const perDegree = 16
	results := make([][]any, len(degrees)) // [degree][goroutine] -> *sim.PredecodedProgram
	for i := range results {
		results[i] = make([]any, perDegree)
	}

	var start, done sync.WaitGroup
	start.Add(1)
	for di, degree := range degrees {
		for g := 0; g < perDegree; g++ {
			done.Add(1)
			go func() {
				defer done.Done()
				start.Wait()
				pp, err := art.Predecoded(degree)
				if err != nil {
					t.Errorf("degree %v: %v", degree, err)
					return
				}
				// Touch the shared structure the way a simulator would, so
				// the race detector sees cross-goroutine reads of the
				// freshly published build.
				if pp.NumInstrs() == 0 || pp.Sequence(0).Words() == 0 {
					t.Errorf("degree %v: empty predecoded program", degree)
					return
				}
				results[di][g] = pp
			}()
		}
	}
	start.Done()
	done.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// One instance per degree, distinct instances across degrees.
	byDegree := make(map[any]bool)
	for di, degree := range degrees {
		first := results[di][0]
		for g, got := range results[di] {
			if got != first {
				t.Fatalf("degree %v: goroutine %d got a different instance — predecode ran more than once", degree, g)
			}
		}
		if byDegree[first] {
			t.Fatalf("degree %v shares an instance with another degree", degree)
		}
		byDegree[first] = true
	}

	// The footprint/invalidation view agrees: exactly one cached program per
	// degree, and re-requesting returns the cached instances.
	if got := len(art.CachedPredecoded()); got != len(degrees) {
		t.Fatalf("CachedPredecoded returned %d programs, want %d", got, len(degrees))
	}
	for di, degree := range degrees {
		pp, err := art.Predecoded(degree)
		if err != nil {
			t.Fatal(err)
		}
		if pp != results[di][0] {
			t.Fatalf("degree %v: re-request built a new instance", degree)
		}
	}
}
