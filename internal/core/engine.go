package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"uhm/internal/dtb"
	"uhm/internal/perfmodel"
	"uhm/internal/sim"
	"uhm/internal/translate"
)

// Engine runs the experiment grids of experiments.go over a bounded worker
// pool.  The zero value is the parallel engine: one worker per available CPU.
// Engine{Workers: 1} is the serial engine; for every experiment the two
// produce byte-identical reports — results are assembled by grid index, not
// by completion order — so the parallel engine can be validated against the
// serial one cell for cell.
//
// All engine methods are context-cancellable and safe for concurrent use:
// the simulator state of each grid cell is private to its worker, and shared
// inputs (programs, predecoded translations) are immutable.
type Engine struct {
	// Workers bounds the pool.  Zero or negative selects
	// runtime.GOMAXPROCS(0); one runs the grid serially in index order.
	Workers int

	// Build resolves a workload name and level to an Artifact.  Nil selects
	// BuildWorkload, a fresh build per call.  The service layer installs its
	// content-addressed registry lookup here, so experiment sweeps run from
	// the CLI and from the long-running server share one artifact cache and
	// exercise the same code path.
	Build func(name string, level Level) (*Artifact, error)

	// Mode selects how each grid cell's report is produced.  The zero value is
	// ModeDerived: cost reports stream from each artifact's shared execution
	// trace, recorded once, and fall back to full simulation when the trace
	// cannot answer exactly.  ModeSimulated restores the interleaved loop;
	// ModeCrossCheck runs both and fails the sweep on any field divergence.
	Mode RunMode
}

// run produces one grid cell's report under the engine's Mode.
func (e Engine) run(a *Artifact, strategy Strategy, cfg Config) (*Report, error) {
	switch e.Mode {
	case ModeSimulated:
		return RunSimulated(a, strategy, cfg)
	case ModeCrossCheck:
		return RunCrossChecked(a, strategy, cfg)
	default:
		return Run(a, strategy, cfg)
	}
}

// SerialEngine returns the engine that runs every grid cell sequentially.
func SerialEngine() Engine { return Engine{Workers: 1} }

// ParallelEngine returns the engine with one worker per available CPU.
func ParallelEngine() Engine { return Engine{} }

// defaultEngine backs the package-level experiment functions.
var defaultEngine = ParallelEngine()

func (e Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// buildWorkload resolves a workload through the engine's Build hook, falling
// back to a fresh BuildWorkload.
func (e Engine) buildWorkload(name string, level Level) (*Artifact, error) {
	if e.Build != nil {
		return e.Build(name, level)
	}
	return BuildWorkload(name, level)
}

// forEach runs fn(i) for every i in [0, n) on the engine's pool and returns
// the lowest-index error, matching what a serial sweep would have returned.
// Indices are dispatched in increasing order; once a worker takes an index it
// always runs fn to completion, so when any fn fails every lower index has
// also been evaluated, and the lowest-index recorded error is exactly the
// serial engine's first error.  Cancelling the context stops new dispatches.
func (e Engine) forEach(ctx context.Context, n int, fn func(i int) error) error {
	workers := min(e.workers(), n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Check for cancellation before claiming an index: a claimed
				// index must always run to completion, or the lowest-index
				// guarantee above would not hold.
				if poolCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// --- Analytic tables ------------------------------------------------------

// Table2 regenerates the paper's Table 2 grid on the engine's pool.
func (e Engine) Table2(ctx context.Context) (*perfmodel.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return perfmodel.Table2With(e.workers()), nil
}

// Table3 regenerates the paper's Table 3 grid on the engine's pool.
func (e Engine) Table3(ctx context.Context) (*perfmodel.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return perfmodel.Table3With(e.workers()), nil
}

// --- Figure 1 -------------------------------------------------------------

// Figure1 sweeps the representation space: the workload × level grid of
// artifacts is compiled in parallel, then every (artifact, degree) cell runs
// on the pool.  Rows are returned in the serial engine's order (workload
// outer, level, then degree).
func (e Engine) Figure1(ctx context.Context, workloads []string, cfg Config) ([]Figure1Row, error) {
	if len(workloads) == 0 {
		workloads = DefaultExperimentWorkloads()
	}
	levels, degrees := Levels(), Degrees()

	arts := make([]*Artifact, len(workloads)*len(levels))
	err := e.forEach(ctx, len(arts), func(i int) error {
		a, err := e.buildWorkload(workloads[i/len(levels)], levels[i%len(levels)])
		if err != nil {
			return err
		}
		arts[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]Figure1Row, len(arts)*len(degrees))
	err = e.forEach(ctx, len(rows), func(i int) error {
		art, degree := arts[i/len(degrees)], degrees[i%len(degrees)]
		runCfg := cfg
		runCfg.Degree = degree
		rep, err := e.run(art, Conventional, runCfg)
		if err != nil {
			return fmt.Errorf("figure1 %s/%v/%v: %w", art.Name, art.Level, degree, err)
		}
		rows[i] = Figure1Row{
			Workload:       art.Name,
			Level:          art.Level,
			Degree:         degree,
			StaticBits:     rep.StaticBits,
			CodebookBits:   rep.CodebookBits,
			Instructions:   rep.Instructions,
			TotalCycles:    int64(rep.TotalCycles),
			PerInstruction: rep.PerInstruction,
			MeasuredDecode: rep.Measured.D,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// --- Figure 2 -------------------------------------------------------------

// figure2Entries is the DTB capacity axis of the Figure 2 sweep.
var figure2Entries = []int{8, 16, 32, 64, 128, 256}

// Figure2 measures the DTB hit ratio across buffer capacities.  The workload
// is compiled and predecoded once; the capacity sweep shares that immutable
// form across the pool.
func (e Engine) Figure2(ctx context.Context, workloadName string, cfg Config) (string, []Figure2Row, error) {
	if workloadName == "" {
		workloadName = "sieve"
	}
	art, err := e.buildWorkload(workloadName, LevelStack)
	if err != nil {
		return "", nil, err
	}
	if _, err := art.Predecoded(cfg.Degree); err != nil {
		return "", nil, err
	}
	rows := make([]Figure2Row, len(figure2Entries))
	err = e.forEach(ctx, len(rows), func(i int) error {
		entries := figure2Entries[i]
		runCfg := cfg
		runCfg.DTB = dtb.Config{
			Entries: entries, Assoc: 4, UnitWords: cfg.DTB.UnitWords,
			Policy: dtb.VariableOverflow, OverflowUnits: entries / 4,
		}
		if runCfg.DTB.UnitWords == 0 {
			runCfg.DTB.UnitWords = 4
		}
		rep, err := e.run(art, WithDTB, runCfg)
		if err != nil {
			return err
		}
		rows[i] = Figure2Row{
			Entries:       entries,
			CapacityBytes: runCfg.DTB.CapacityBytes(),
			HitRatio:      rep.Measured.HD,
			Evictions:     rep.DTBStats.Evictions,
			Overflows:     rep.DTBStats.Overflows,
		}
		return nil
	})
	if err != nil {
		return "", nil, err
	}
	d, err := dtb.New(cfg.DTB)
	if err != nil {
		return "", nil, err
	}
	organisation := fmt.Sprintf(
		"DTB organisation (Figure 2): associative tag array + address array + replacement array over %d sets of %d, buffer array of %d-word units (%s allocation): %s",
		d.Sets(), cfg.DTB.Assoc, cfg.DTB.UnitWords, cfg.DTB.Policy, d.String())
	return organisation, rows, nil
}

// --- Section 7 empirical cross-check --------------------------------------

// Empirical runs the workload × strategy grid: artifacts are compiled and
// predecoded in parallel, then every (workload, strategy) cell runs on the
// pool against its workload's shared predecoded program, and finally each
// workload's outputs are verified to agree across strategies, as sim.RunAll
// does serially.
func (e Engine) Empirical(ctx context.Context, workloads []string, cfg Config) ([]EmpiricalRow, error) {
	if len(workloads) == 0 {
		workloads = DefaultExperimentWorkloads()
	}
	arts := make([]*Artifact, len(workloads))
	err := e.forEach(ctx, len(arts), func(i int) error {
		a, err := e.buildWorkload(workloads[i], LevelStack)
		if err != nil {
			return err
		}
		if _, err := a.Predecoded(cfg.Degree); err != nil {
			return fmt.Errorf("empirical %s: %w", workloads[i], err)
		}
		arts[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}

	strategies := Strategies()
	reports := make([]*Report, len(arts)*len(strategies))
	err = e.forEach(ctx, len(reports), func(i int) error {
		art, strategy := arts[i/len(strategies)], strategies[i%len(strategies)]
		rep, err := e.run(art, strategy, cfg)
		if err != nil {
			return fmt.Errorf("empirical %s: %v: %w", art.Name, strategy, err)
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]EmpiricalRow, len(arts))
	for i, art := range arts {
		row := reports[i*len(strategies) : (i+1)*len(strategies)]
		if err := sim.VerifyOutputs(row); err != nil {
			return nil, fmt.Errorf("empirical %s: %w", art.Name, err)
		}
		rows[i] = EmpiricalRow{Workload: art.Name, Reports: row}
	}
	return rows, nil
}

// --- §3.2 compaction study -------------------------------------------------

// Compaction measures the static-size study, one workload per pool slot.
func (e Engine) Compaction(ctx context.Context, workloads []string, level Level) ([]CompactionRow, error) {
	if len(workloads) == 0 {
		workloads = DefaultExperimentWorkloads()
	}
	rows := make([]CompactionRow, len(workloads))
	err := e.forEach(ctx, len(rows), func(i int) error {
		art, err := e.buildWorkload(workloads[i], level)
		if err != nil {
			return err
		}
		row := CompactionRow{
			Workload:   art.Name,
			Level:      level,
			Bits:       make(map[Degree]int),
			Reduction:  make(map[Degree]float64),
			Interprets: make(map[Degree]int),
		}
		seqs, err := translate.TranslateProgram(art.DIR)
		if err != nil {
			return err
		}
		for _, s := range seqs {
			row.Expanded += s.Words() * 32
		}
		for _, degree := range Degrees() {
			bin, err := art.Encode(degree)
			if err != nil {
				return err
			}
			row.Bits[degree] = bin.SizeBits()
			row.Interprets[degree] = bin.CodebookBits()
		}
		packed := row.Bits[DegreePacked]
		for _, degree := range Degrees() {
			if packed > 0 {
				row.Reduction[degree] = 1 - float64(row.Bits[degree])/float64(packed)
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
