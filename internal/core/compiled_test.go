package core

import (
	"slices"
	"testing"

	"uhm/internal/compile"
	"uhm/internal/dir"
	"uhm/internal/hlr"
	"uhm/internal/workload/gen"
)

// This file tests the closure-compiled backend (dir.Compile) differentially
// against the reference DIR interpreter on real MiniLang programs: the
// pinned regression programs that stress every hard corner the generator
// knows (deep mutual recursion, up-level stores, side-effecting subscripts,
// negative div/mod), and a bounded sweep of freshly generated programs.  The
// full five-strategy conformance cross-product is exercised separately by
// TestConformanceSmoke and the genregress tests; here the comparison is the
// direct dir-level one the compiled closures must win first.

// assertCompiledMatchesReference compiles src at every semantic level and
// requires the compiled execution to match dir.Execute in output and dynamic
// instruction count.
func assertCompiledMatchesReference(t *testing.T, name, src string) {
	t.Helper()
	prog, err := hlr.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	for _, level := range Levels() {
		dp, err := compile.Compile(prog, level)
		if err != nil {
			t.Fatalf("%s/%v: compile: %v", name, level, err)
		}
		want, err := dir.Execute(dp, dir.ExecOptions{})
		if err != nil {
			t.Fatalf("%s/%v: reference execute: %v", name, level, err)
		}
		cp, err := dir.Compile(dp)
		if err != nil {
			t.Fatalf("%s/%v: dir.Compile: %v", name, level, err)
		}
		got, err := cp.Execute(dir.ExecOptions{})
		if err != nil {
			t.Fatalf("%s/%v: compiled execute: %v", name, level, err)
		}
		if !slices.Equal(got.Output, want.Output) {
			t.Errorf("%s/%v: compiled output %v, reference %v", name, level, got.Output, want.Output)
		}
		if got.Executed != want.Executed {
			t.Errorf("%s/%v: compiled retired %d instructions, reference executed %d",
				name, level, got.Executed, want.Executed)
		}
	}
}

// TestCompiledMatchesReferenceOnRegressionPrograms replays the pinned PR 3
// divergence hunters (generated seeds 38 and 48) through the compiled
// backend at every semantic level.
func TestCompiledMatchesReferenceOnRegressionPrograms(t *testing.T) {
	assertCompiledMatchesReference(t, "seed38", regressSeed38)
	assertCompiledMatchesReference(t, "seed48", regressSeed48)
}

// TestCompiledMatchesReferenceOnGeneratedPrograms is the bounded in-tree
// counterpart of `uhmbench -gen`: a sweep of generated programs through the
// compiled-versus-reference differential at every semantic level.
func TestCompiledMatchesReferenceOnGeneratedPrograms(t *testing.T) {
	n := int64(30)
	if testing.Short() {
		n = 8
	}
	for seed := int64(1); seed <= n; seed++ {
		p, err := gen.Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		assertCompiledMatchesReference(t, p.Name, p.Source)
	}
}
