package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func engineTestConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxInstructions = 5_000_000
	return cfg
}

// TestParallelEngineMatchesSerial renders every grid experiment under both
// engines and requires byte-identical reports.
func TestParallelEngineMatchesSerial(t *testing.T) {
	ctx := context.Background()
	cfg := engineTestConfig()
	serial, parallel := SerialEngine(), Engine{Workers: 8}

	render := func(e Engine) map[string]string {
		out := make(map[string]string)
		t2, err := e.Table2(ctx)
		if err != nil {
			t.Fatal(err)
		}
		out["table2"] = t2.Render()
		t3, err := e.Table3(ctx)
		if err != nil {
			t.Fatal(err)
		}
		out["table3"] = t3.Render()
		f1, err := e.Figure1(ctx, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out["figure1"] = RenderFigure1(f1)
		org, f2, err := e.Figure2(ctx, "", cfg)
		if err != nil {
			t.Fatal(err)
		}
		out["figure2"] = RenderFigure2(org, f2)
		emp, err := e.Empirical(ctx, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out["empirical"] = RenderEmpirical(emp)
		comp, err := e.Compaction(ctx, nil, LevelStack)
		if err != nil {
			t.Fatal(err)
		}
		out["compaction"] = RenderCompaction(comp)
		return out
	}

	want, got := render(serial), render(parallel)
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", name, w, got[name])
		}
	}
}

// TestEngineConcurrentUse drives the engine and the package-level table
// entry points from many goroutines at once — the race-detector coverage for
// the shared predecoded programs and the worker pool — and asserts every
// goroutine sees identical cells.
func TestEngineConcurrentUse(t *testing.T) {
	ctx := context.Background()
	cfg := engineTestConfig()
	wantT2, wantT3 := SerialEngine(), SerialEngine()
	t2, err := wantT2.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := wantT3.Table3(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantEmp, err := SerialEngine().Empirical(ctx, []string{"loopsum", "fib"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRendered := RenderEmpirical(wantEmp)

	const goroutines = 6
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if cells := Table2().Cells; !reflect.DeepEqual(cells, t2.Cells) {
				errc <- fmt.Errorf("goroutine %d: Table2 cells diverged", g)
				return
			}
			if cells := Table3().Cells; !reflect.DeepEqual(cells, t3.Cells) {
				errc <- fmt.Errorf("goroutine %d: Table3 cells diverged", g)
				return
			}
			rows, err := ParallelEngine().Empirical(ctx, []string{"loopsum", "fib"}, cfg)
			if err != nil {
				errc <- fmt.Errorf("goroutine %d: %w", g, err)
				return
			}
			if rendered := RenderEmpirical(rows); rendered != wantRendered {
				errc <- fmt.Errorf("goroutine %d: empirical report diverged", g)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestEngineCancellation stops the sweep when the context is cancelled.
func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParallelEngine().Figure1(ctx, nil, engineTestConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Figure1 on cancelled context: %v", err)
	}
	if _, err := ParallelEngine().Table2(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Table2 on cancelled context: %v", err)
	}
}

// TestEngineErrorMatchesSerial requires the parallel engine to surface the
// same first error the serial engine would.
func TestEngineErrorMatchesSerial(t *testing.T) {
	ctx := context.Background()
	cfg := engineTestConfig()
	workloads := []string{"loopsum", "no-such-workload", "fib"}
	_, serialErr := SerialEngine().Empirical(ctx, workloads, cfg)
	_, parallelErr := Engine{Workers: 8}.Empirical(ctx, workloads, cfg)
	if serialErr == nil || parallelErr == nil {
		t.Fatalf("expected errors, got serial=%v parallel=%v", serialErr, parallelErr)
	}
	if serialErr.Error() != parallelErr.Error() {
		t.Errorf("error mismatch:\nserial:   %v\nparallel: %v", serialErr, parallelErr)
	}
}
