// Archetype experiments: the two studies that extend the paper's evaluation
// beyond its original phase space.  The archetype x DTB-capacity sweep
// re-runs the Figure 2 hit-ratio study over every generator locality profile,
// and the model-validation experiment runs the §7 analytic predictions
// (T1-T4, F1-F3) against measured values over populations of generated
// programs, reporting the signed-error distribution — the committed error
// bound on the analytic model.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"uhm/internal/dtb"
	"uhm/internal/metrics"
	"uhm/internal/perfmodel"
	"uhm/internal/workload/gen"
)

// defaultArchetypePrograms is the per-archetype population when the caller
// does not choose one.
const defaultArchetypePrograms = 6

// archetypeAxis resolves the archetype list: nil/empty selects the full
// catalogue in presentation order.
func archetypeAxis(archetypes []string) []string {
	if len(archetypes) == 0 {
		return gen.ArchetypeNames()
	}
	return archetypes
}

// generateArchetypeArtifacts generates and builds programs seed..seed+n-1 for
// every archetype on the engine's pool: arts[ai][pi] is archetype ai's
// program pi, compiled at LevelStack and predecoded at the configured degree.
func (e Engine) generateArchetypeArtifacts(ctx context.Context, archetypes []string,
	programs int, seed int64, cfg Config) ([][]*Artifact, error) {
	arts := make([][]*Artifact, len(archetypes))
	for i := range arts {
		arts[i] = make([]*Artifact, programs)
	}
	err := e.forEach(ctx, len(archetypes)*programs, func(i int) error {
		ai, pi := i/programs, i%programs
		a, err := gen.ArchetypeByName(archetypes[ai])
		if err != nil {
			return err
		}
		p, err := a.Generate(seed + int64(pi))
		if err != nil {
			return err
		}
		art, err := BuildSource(p.Name, p.Source, LevelStack)
		if err != nil {
			return fmt.Errorf("core: archetype %s seed %d: %w", a.Name, p.Seed, err)
		}
		if _, err := art.Predecoded(cfg.Degree); err != nil {
			return fmt.Errorf("core: archetype %s seed %d: %w", a.Name, p.Seed, err)
		}
		arts[ai][pi] = art
		return nil
	})
	if err != nil {
		return nil, err
	}
	return arts, nil
}

// --- Archetype x DTB-capacity sweep ----------------------------------------

// ArchetypeSweepRow is one (archetype, DTB capacity) cell, aggregated over
// the archetype's program population.
type ArchetypeSweepRow struct {
	Archetype     string
	Entries       int
	CapacityBytes int
	// Programs is the population size behind the aggregates.
	Programs int
	// HitRatio is the population-level DTB hit ratio (total hits over total
	// lookups, not a mean of ratios, so long programs weigh more).
	HitRatio float64
	// MinHitRatio/MaxHitRatio bound the per-program ratios.
	MinHitRatio float64
	MaxHitRatio float64
	Evictions   int64
	Overflows   int64
}

// ArchetypeSweep charts DTB hit-ratio sensitivity per locality profile: for
// every archetype it generates a seeded program population and sweeps the
// Figure 2 capacity axis, one (archetype, capacity, program) run per pool
// slot.  Reports honour the engine's Mode, so the sweep is derived by default
// and crosscheck-able field-for-field.
func (e Engine) ArchetypeSweep(ctx context.Context, archetypes []string,
	programs int, seed int64, cfg Config) ([]ArchetypeSweepRow, error) {
	archetypes = archetypeAxis(archetypes)
	if programs <= 0 {
		programs = defaultArchetypePrograms
	}
	arts, err := e.generateArchetypeArtifacts(ctx, archetypes, programs, seed, cfg)
	if err != nil {
		return nil, err
	}

	entries := figure2Entries
	type cell struct {
		hits, lookups        int64
		evictions, overflows int64
		hitRatio             float64
	}
	cells := make([]cell, len(archetypes)*len(entries)*programs)
	err = e.forEach(ctx, len(cells), func(i int) error {
		ai := i / (len(entries) * programs)
		ei := (i / programs) % len(entries)
		pi := i % programs
		runCfg := cfg
		runCfg.DTB = dtb.Config{
			Entries: entries[ei], Assoc: 4, UnitWords: cfg.DTB.UnitWords,
			Policy: dtb.VariableOverflow, OverflowUnits: entries[ei] / 4,
		}
		if runCfg.DTB.UnitWords == 0 {
			runCfg.DTB.UnitWords = 4
		}
		rep, err := e.run(arts[ai][pi], WithDTB, runCfg)
		if err != nil {
			return fmt.Errorf("core: archetype sweep %s/%d entries: %w", archetypes[ai], entries[ei], err)
		}
		cells[i] = cell{
			hits:      rep.DTBStats.Hits,
			lookups:   rep.DTBStats.Lookups,
			evictions: rep.DTBStats.Evictions,
			overflows: rep.DTBStats.Overflows,
			hitRatio:  rep.Measured.HD,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]ArchetypeSweepRow, 0, len(archetypes)*len(entries))
	for ai, name := range archetypes {
		for ei, ent := range entries {
			row := ArchetypeSweepRow{Archetype: name, Entries: ent, Programs: programs}
			var hits, lookups int64
			for pi := 0; pi < programs; pi++ {
				c := cells[ai*len(entries)*programs+ei*programs+pi]
				hits += c.hits
				lookups += c.lookups
				row.Evictions += c.evictions
				row.Overflows += c.overflows
				if pi == 0 || c.hitRatio < row.MinHitRatio {
					row.MinHitRatio = c.hitRatio
				}
				if pi == 0 || c.hitRatio > row.MaxHitRatio {
					row.MaxHitRatio = c.hitRatio
				}
			}
			if lookups > 0 {
				row.HitRatio = float64(hits) / float64(lookups)
			}
			dcfg := dtb.Config{Entries: ent, Assoc: 4, UnitWords: cfg.DTB.UnitWords,
				Policy: dtb.VariableOverflow, OverflowUnits: ent / 4}
			if dcfg.UnitWords == 0 {
				dcfg.UnitWords = 4
			}
			row.CapacityBytes = dcfg.CapacityBytes()
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderArchetypeSweep formats the sweep, one block per archetype.
func RenderArchetypeSweep(rows []ArchetypeSweepRow) string {
	tbl := metrics.NewTable(
		"Archetype x DTB capacity: hit-ratio sensitivity per locality profile (extends Figure 2)",
		"archetype", "entries", "capacity", "hit ratio", "min..max", "evictions", "overflows")
	prev := ""
	for _, r := range rows {
		name := r.Archetype
		if name == prev {
			name = ""
		} else {
			prev = r.Archetype
		}
		tbl.AddRow(name, fmt.Sprint(r.Entries), fmt.Sprintf("%d B", r.CapacityBytes),
			fmt.Sprintf("%.4f", r.HitRatio),
			fmt.Sprintf("%.4f..%.4f", r.MinHitRatio, r.MaxHitRatio),
			fmt.Sprint(r.Evictions), fmt.Sprint(r.Overflows))
	}
	return tbl.Render()
}

// --- Analytic-model validation ---------------------------------------------

// ModelSample is one generated program's model-vs-measurement comparison.
type ModelSample struct {
	Archetype string             `json:"archetype"`
	Seed      int64              `json:"seed"`
	Predicted perfmodel.Result   `json:"predicted"`
	Measured  perfmodel.Result   `json:"measured"`
	Errors    map[string]float64 `json:"errors"`
}

// ModelValidation is the outcome of the analytic-model error study.
type ModelValidation struct {
	// Archetypes and Programs describe the population: Programs seeded
	// programs per archetype, seeds Seed..Seed+Programs-1.
	Archetypes []string `json:"archetypes"`
	Programs   int      `json:"programs"`
	Seed       int64    `json:"seed"`
	// Samples holds every program's comparison, archetype-major in seed order.
	Samples []ModelSample `json:"samples"`
	// Overall is the signed-error distribution per metric over all samples;
	// PerArchetype splits it by locality profile.  T metrics are relative
	// errors in percent, F metrics absolute errors in percentage points.
	Overall      map[string]perfmodel.ErrorStats            `json:"overall"`
	PerArchetype map[string]map[string]perfmodel.ErrorStats `json:"per_archetype"`
}

// measuredResult assembles the empirically observed counterpart of the model:
// per-instruction cycle costs of the four modelled organisations and the
// figures of merit computed from them.
func measuredResult(t1, t2, t3, t4 float64) perfmodel.Result {
	r := perfmodel.Result{T1: t1, T2: t2, T3: t3, T4: t4}
	if t2 != 0 {
		r.F1 = (t3 - t2) / t2 * 100
		r.F2 = (t1 - t2) / t2 * 100
	}
	if t4 != 0 {
		r.F3 = (t2 - t4) / t4 * 100
	}
	return r
}

// ModelValidation runs the §7 analytic model against measurement for every
// program of every archetype population: the model is parameterised by the
// values measured during the conventional, DTB and cache runs (d, g, x, s1,
// s2, hD, hC), its predictions are compared with the measured
// per-instruction times of all four organisations, and the signed errors are
// summarised per metric.  T4 is the reproduction's extension: the model's
// T4 = t1 + x charges one buffer access plus semantics, while the compiled
// backend fuses instruction sequences, so its error is expected to be the
// systematic outlier — the distribution quantifies by how much.
func (e Engine) ModelValidation(ctx context.Context, archetypes []string,
	programs int, seed int64, cfg Config) (*ModelValidation, error) {
	archetypes = archetypeAxis(archetypes)
	if programs <= 0 {
		programs = defaultArchetypePrograms
	}
	arts, err := e.generateArchetypeArtifacts(ctx, archetypes, programs, seed, cfg)
	if err != nil {
		return nil, err
	}

	res := &ModelValidation{
		Archetypes:   archetypes,
		Programs:     programs,
		Seed:         seed,
		Samples:      make([]ModelSample, len(archetypes)*programs),
		Overall:      map[string]perfmodel.ErrorStats{},
		PerArchetype: map[string]map[string]perfmodel.ErrorStats{},
	}
	err = e.forEach(ctx, len(res.Samples), func(i int) error {
		ai, pi := i/programs, i%programs
		art := arts[ai][pi]
		conv, err := e.run(art, Conventional, cfg)
		if err != nil {
			return fmt.Errorf("core: model validation %s: %w", art.Name, err)
		}
		dtbRep, err := e.run(art, WithDTB, cfg)
		if err != nil {
			return fmt.Errorf("core: model validation %s: %w", art.Name, err)
		}
		cacheRep, err := e.run(art, WithCache, cfg)
		if err != nil {
			return fmt.Errorf("core: model validation %s: %w", art.Name, err)
		}
		compRep, err := e.run(art, Compiled, cfg)
		if err != nil {
			return fmt.Errorf("core: model validation %s: %w", art.Name, err)
		}

		params := perfmodel.Params{
			T1Access: float64(cfg.Memory.Level1Time),
			T2Access: float64(cfg.Memory.Level2Time),
			TDAccess: float64(cfg.Memory.BufferTime),
			D:        conv.Measured.D,
			G:        dtbRep.Measured.G,
			X:        conv.Measured.X,
			S1:       dtbRep.Measured.S1,
			S2:       conv.Measured.S2,
			HD:       dtbRep.Measured.HD,
			HC:       cacheRep.Measured.HC,
		}
		predicted, err := perfmodel.Evaluate(params)
		if err != nil {
			return fmt.Errorf("core: model validation %s: %w", art.Name, err)
		}
		measured := measuredResult(conv.PerInstruction, dtbRep.PerInstruction,
			cacheRep.PerInstruction, compRep.PerInstruction)

		sample := ModelSample{
			Archetype: archetypes[ai],
			Seed:      seed + int64(pi),
			Predicted: predicted,
			Measured:  measured,
			Errors:    map[string]float64{},
		}
		for _, metric := range perfmodel.Metrics() {
			signed, err := perfmodel.SignedError(metric, predicted, measured)
			if err != nil {
				return fmt.Errorf("core: model validation %s: %s: %w", art.Name, metric, err)
			}
			sample.Errors[metric] = signed
		}
		res.Samples[i] = sample
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, metric := range perfmodel.Metrics() {
		var all []float64
		for _, s := range res.Samples {
			all = append(all, s.Errors[metric])
		}
		res.Overall[metric] = perfmodel.ComputeErrorStats(all)
	}
	for ai, name := range archetypes {
		per := map[string]perfmodel.ErrorStats{}
		for _, metric := range perfmodel.Metrics() {
			var errs []float64
			for pi := 0; pi < programs; pi++ {
				errs = append(errs, res.Samples[ai*programs+pi].Errors[metric])
			}
			per[metric] = perfmodel.ComputeErrorStats(errs)
		}
		res.PerArchetype[name] = per
	}
	return res, nil
}

// RenderModelValidation formats the error distributions: the overall bound
// first, then the per-archetype split.
func RenderModelValidation(v *ModelValidation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Analytic-model validation: §7 predictions vs measurement over %d programs (%d archetypes x %d, seeds %d..%d)\n",
		len(v.Samples), len(v.Archetypes), v.Programs, v.Seed, v.Seed+int64(v.Programs)-1)
	b.WriteString("Signed errors: positive = model over-predicts; T metrics in % of measured, F metrics in percentage points.\n\n")

	render := func(title string, stats map[string]perfmodel.ErrorStats) {
		tbl := metrics.NewTable(title, "metric", "n", "min", "p50", "p95", "max", "mean", "|max|")
		for _, m := range perfmodel.Metrics() {
			s := stats[m]
			tbl.AddRow(m, fmt.Sprint(s.N),
				fmt.Sprintf("%+.2f", s.Min), fmt.Sprintf("%+.2f", s.P50),
				fmt.Sprintf("%+.2f", s.P95), fmt.Sprintf("%+.2f", s.Max),
				fmt.Sprintf("%+.2f", s.Mean), fmt.Sprintf("%.2f", s.MaxAbs))
		}
		b.WriteString(tbl.Render())
		b.WriteString("\n")
	}
	render("Overall signed-error distribution", v.Overall)
	for _, name := range v.Archetypes {
		render(fmt.Sprintf("Archetype %q", name), v.PerArchetype[name])
	}
	return b.String()
}

// ModelValidationJSON renders the study as the committed machine-readable
// artifact (MODEL_ERROR_PR<N>.json): a labelled, indented, stable-key
// document.
func ModelValidationJSON(v *ModelValidation, label string) ([]byte, error) {
	doc := struct {
		Label string `json:"label"`
		*ModelValidation
	}{Label: label, ModelValidation: v}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
