package core

import (
	"fmt"
	"testing"

	"uhm/internal/hlr"
)

// TestDivModConformanceEndToEnd audits negative-operand division and modulo
// across the entire stack: for every sign combination, a MiniLang program
// computing a/b and a mod b in the shapes that lower to the stack opcodes
// (complex operand), the two-operand opcodes ("q := q / y" at mem2) and the
// three-operand opcodes ("q := x / y" at mem3) is run through the full
// level × degree × strategy cross-product, and every layer — hlr oracle, DIR
// reference interpreter, host semantic routines under all four organisations
// — must agree with Go's truncate-toward-zero semantics.
func TestDivModConformanceEndToEnd(t *testing.T) {
	cases := []struct{ a, b int64 }{
		{7, 3}, {7, -3}, {-7, 3}, {-7, -3},
		{1, 2}, {-1, 2}, {1, -2}, {-1, -2},
		{0, 5}, {0, -5},
		{5, -1}, {-5, -1}, {-9, 2}, {2, -9},
		{1073741823, -7}, {-1073741824, 7},
	}
	cfg := DefaultConfig()
	for _, tc := range cases {
		t.Run(fmt.Sprintf("a=%d_b=%d", tc.a, tc.b), func(t *testing.T) {
			src := fmt.Sprintf(`
program divmod;
var x, y, q, r;
begin
  x := %d;
  y := %d;
  q := x / y;
  r := x mod y;
  print q;
  print r;
  q := x;
  q := q / y;
  r := x;
  r := r mod y;
  print q;
  print r;
  print (x + 0) / (y + 0);
  print (x + 0) mod (y + 0)
end.`, tc.a, tc.b)

			// The oracle itself must implement truncating semantics.
			prog, err := hlr.Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := hlr.Evaluate(prog, hlr.EvalOptions{})
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			q, r := tc.a/tc.b, tc.a%tc.b
			want := []int64{q, r, q, r, q, r}
			if len(res.Output) != len(want) {
				t.Fatalf("oracle printed %v, want %v", res.Output, want)
			}
			for i := range want {
				if res.Output[i] != want[i] {
					t.Fatalf("oracle printed %v, want %v", res.Output, want)
				}
			}

			// And every other layer must agree with the oracle.
			divs, err := CheckConformance("divmod", src, cfg)
			if err != nil {
				t.Fatalf("conformance: %v", err)
			}
			for _, d := range divs {
				t.Errorf("divergence: %s", d)
			}
		})
	}
}
