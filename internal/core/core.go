package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"uhm/internal/compile"
	"uhm/internal/dir"
	"uhm/internal/hlr"
	"uhm/internal/sim"
	"uhm/internal/trace"
	"uhm/internal/workload"
)

// Re-exported configuration types, so callers need only import core for the
// common pipeline.
type (
	// Level is the semantic level of the compiled DIR.
	Level = compile.Level
	// Degree is the degree of encoding of the static representation.
	Degree = dir.Degree
	// Strategy is the machine organisation simulated.
	Strategy = sim.Strategy
	// Config is the simulation configuration.
	Config = sim.Config
	// Report is the outcome of one simulated run.
	Report = sim.Report
)

// Re-exported enumerators.
const (
	LevelStack = compile.LevelStack
	LevelMem2  = compile.LevelMem2
	LevelMem3  = compile.LevelMem3

	DegreePacked  = dir.DegreePacked
	DegreeContour = dir.DegreeContour
	DegreeHuffman = dir.DegreeHuffman
	DegreePair    = dir.DegreePair

	Conventional = sim.Conventional
	WithDTB      = sim.WithDTB
	WithCache    = sim.WithCache
	Expanded     = sim.Expanded
	Compiled     = sim.Compiled
)

// DefaultConfig returns the paper's §7 reference configuration.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Levels lists the semantic levels.
func Levels() []Level { return compile.Levels() }

// Degrees lists the encoding degrees.
func Degrees() []Degree { return dir.Degrees() }

// Strategies lists the machine organisations.
func Strategies() []Strategy { return sim.Strategies() }

// Workloads lists the built-in workload programs.
func Workloads() []string { return workload.Names() }

// Artifact is a program carried through the pipeline: the parsed HLR, the
// compiled DIR and the semantic level it was compiled at.  An Artifact also
// caches the predecoded form of its DIR at each encoding degree, so sweeps
// that revisit the artifact — every strategy of a comparison, every capacity
// of a DTB sweep, repeated benchmark iterations — decode and translate it
// exactly once.  The cache is safe for concurrent use.
type Artifact struct {
	Name  string
	Level Level
	HLR   *hlr.Program
	DIR   *dir.Program

	// bins holds encoded forms rehydrated from a persisted snapshot, keyed
	// by degree; Predecoded consumes them instead of re-encoding.  tr is the
	// rehydrated canonical execution trace, adopted by every predecoded form
	// so warm-started artifacts derive reports without re-executing.  Both
	// are immutable after Rehydrate and nil on freshly built artifacts.
	bins map[Degree]*dir.Binary
	tr   *trace.Trace

	preMu sync.Mutex
	pre   map[Degree]*predecodeEntry
}

// predecodeEntry dedups predecoding per degree while letting different
// degrees of the same artifact predecode concurrently.  done is set (with
// release semantics) after the build completes, so observers that did not go
// through once.Do — footprint accounting, cache invalidation — can read pp
// without racing the builder or triggering a build themselves.
type predecodeEntry struct {
	once sync.Once
	pp   *sim.PredecodedProgram
	err  error
	done atomic.Bool
}

// Predecoded returns the artifact's shared predecoded program at the given
// encoding degree, encoding, decoding and translating it on first use.  The
// returned program is immutable and shared: it may back any number of
// concurrent simulation runs.
func (a *Artifact) Predecoded(degree Degree) (*sim.PredecodedProgram, error) {
	a.preMu.Lock()
	if a.pre == nil {
		a.pre = make(map[Degree]*predecodeEntry)
	}
	e, ok := a.pre[degree]
	if !ok {
		e = &predecodeEntry{}
		a.pre[degree] = e
	}
	a.preMu.Unlock()
	e.once.Do(func() {
		if bin, ok := a.bins[degree]; ok {
			e.pp, e.err = sim.PredecodeBinary(bin)
		} else {
			e.pp, e.err = sim.Predecode(a.DIR, degree)
		}
		if e.err == nil && a.tr != nil {
			e.pp.AdoptTrace(a.tr)
		}
		e.done.Store(true)
	})
	return e.pp, e.err
}

// CachedPredecoded returns the predecoded programs the artifact has built so
// far, without building any.  The service layer uses it to drop pooled
// replayers when the artifact is evicted from the registry.
func (a *Artifact) CachedPredecoded() []*sim.PredecodedProgram {
	a.preMu.Lock()
	defer a.preMu.Unlock()
	var pps []*sim.PredecodedProgram
	for _, e := range a.pre {
		if e.done.Load() && e.err == nil {
			pps = append(pps, e.pp)
		}
	}
	return pps
}

// FootprintBytes estimates the resident size of the artifact and every cached
// form hanging off it: the DIR program plus each predecoded (and possibly
// compiled) degree built so far.  The estimate grows as forms materialise;
// the service registry re-reads it after each request to keep its
// byte-accounted LRU honest.
func (a *Artifact) FootprintBytes() int {
	// The in-memory DIR program: instructions dominate (op, operands,
	// contour, target — a few machine words each), plus the proc and contour
	// tables.
	const instrBytes, tableBytes = 96, 64
	bytes := len(a.DIR.Instrs)*instrBytes +
		(len(a.DIR.Procs)+len(a.DIR.Contours))*tableBytes
	for _, pp := range a.CachedPredecoded() {
		bytes += pp.FootprintBytes()
	}
	return bytes
}

// BuildSource parses, analyses and compiles MiniLang source text.
func BuildSource(name, src string, level Level) (*Artifact, error) {
	prog, err := hlr.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("core: parse %s: %w", name, err)
	}
	dp, err := compile.Compile(prog, level)
	if err != nil {
		return nil, fmt.Errorf("core: compile %s: %w", name, err)
	}
	return &Artifact{Name: name, Level: level, HLR: prog, DIR: dp}, nil
}

// BuildWorkload builds one of the built-in workload programs.
func BuildWorkload(name string, level Level) (*Artifact, error) {
	src, err := workload.Source(name)
	if err != nil {
		return nil, err
	}
	return BuildSource(name, src, level)
}

// Reference evaluates the artifact's HLR with the tree-walking oracle and
// returns the expected output.
func (a *Artifact) Reference() ([]int64, error) {
	res, err := hlr.Evaluate(a.HLR, hlr.EvalOptions{})
	if err != nil {
		return nil, err
	}
	return res.Output, nil
}

// Encode emits the artifact's DIR at the given encoding degree.
func (a *Artifact) Encode(degree Degree) (*dir.Binary, error) {
	return dir.Encode(a.DIR, degree)
}

// Disassemble returns the DIR program listing.
func (a *Artifact) Disassemble() string { return a.DIR.Disassemble() }

// Snapshot is the portable form of an Artifact: everything the binary
// interchange container persists.  The DIR program is authoritative; the
// encoded binaries and the trace are the cached binding work a loading
// process gets back without re-paying it.  The closure-compiled form cannot
// leave the process (it is Go closures), so only its footprint travels, as
// metadata.
type Snapshot struct {
	Name  string
	Level Level
	DIR   *dir.Program
	// Binaries are the encoded static representations cached so far, in
	// ascending degree order (at most one per degree).
	Binaries []*dir.Binary
	// Trace is the canonical execution trace, when one has been recorded.
	Trace *trace.Trace
	// CompiledWords is the footprint of the closure-compiled form when it has
	// been built — metadata only.
	CompiledWords int
}

// Snapshot captures the artifact's persistable state: the DIR program plus
// every encoded form and trace materialised so far.  It never triggers new
// binding work — forms not yet built are simply absent — and is safe to call
// concurrently with requests running on the artifact.
func (a *Artifact) Snapshot() *Snapshot {
	s := &Snapshot{Name: a.Name, Level: a.Level, DIR: a.DIR}
	bins := make(map[Degree]*dir.Binary, len(a.bins))
	for d, bin := range a.bins {
		bins[d] = bin
	}
	s.Trace = a.tr
	for _, pp := range a.CachedPredecoded() {
		bins[pp.Degree()] = pp.Binary
		if t := pp.CachedTrace(); t != nil && s.Trace == nil {
			s.Trace = t
		}
		if w := pp.CachedCompiledWords(); w > s.CompiledWords {
			s.CompiledWords = w
		}
	}
	for _, bin := range bins {
		s.Binaries = append(s.Binaries, bin)
	}
	sort.Slice(s.Binaries, func(i, j int) bool { return s.Binaries[i].Degree < s.Binaries[j].Degree })
	return s
}

// PersistableForms counts the forms a Snapshot taken now would carry: the
// DIR program, each cached encoded degree, and the trace.  The registry's
// write-through compares it against what it last persisted to decide whether
// an artifact's container is worth rewriting, without building the snapshot.
func (a *Artifact) PersistableForms() int {
	degrees := make(map[Degree]bool, len(a.bins))
	for d := range a.bins {
		degrees[d] = true
	}
	forms := 1
	traced := a.tr != nil
	for _, pp := range a.CachedPredecoded() {
		degrees[pp.Degree()] = true
		traced = traced || pp.CachedTrace() != nil
	}
	forms += len(degrees)
	if traced {
		forms++
	}
	return forms
}

// Rehydrate rebuilds an Artifact from a persisted snapshot without re-running
// the compiler: the HLR is re-parsed from the source text (the oracle and the
// conformance paths need it), the DIR program is adopted as-is after
// validation, and the cached encoded forms and trace are seeded so the
// predecode chain resumes exactly where the persisting process left off.  A
// snapshot whose trace references instructions outside the program is
// rejected — a malformed container must never become a partial artifact.
func Rehydrate(snap *Snapshot, src string) (*Artifact, error) {
	if snap == nil || snap.DIR == nil {
		return nil, fmt.Errorf("core: rehydrate: snapshot has no DIR program")
	}
	if err := snap.DIR.Validate(); err != nil {
		return nil, fmt.Errorf("core: rehydrate %s: %w", snap.Name, err)
	}
	prog, err := hlr.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("core: rehydrate %s: parse: %w", snap.Name, err)
	}
	a := &Artifact{Name: snap.Name, Level: snap.Level, HLR: prog, DIR: snap.DIR}
	if len(snap.Binaries) > 0 {
		a.bins = make(map[Degree]*dir.Binary, len(snap.Binaries))
		for _, bin := range snap.Binaries {
			if bin == nil || bin.Program != snap.DIR {
				return nil, fmt.Errorf("core: rehydrate %s: binary not built on the snapshot's program", snap.Name)
			}
			if _, dup := a.bins[bin.Degree]; dup {
				return nil, fmt.Errorf("core: rehydrate %s: duplicate degree %v", snap.Name, bin.Degree)
			}
			a.bins[bin.Degree] = bin
		}
	}
	if snap.Trace != nil {
		for _, pc := range snap.Trace.PCs {
			if pc < 0 || int(pc) >= len(snap.DIR.Instrs) {
				return nil, fmt.Errorf("core: rehydrate %s: trace pc %d out of range", snap.Name, pc)
			}
		}
		a.tr = snap.Trace
	}
	return a, nil
}

// RunMode selects how a simulation's cost report is produced: derived from
// the artifact's shared execution trace (the default — the trace-once,
// cost-many fast path, falling back to full simulation whenever the trace
// cannot answer exactly), fully simulated, or both with a field-for-field
// cross-check.
type RunMode int

const (
	// ModeDerived derives reports from the shared execution trace, falling
	// back to full simulation when no exact trace is available.
	ModeDerived RunMode = iota
	// ModeSimulated always runs the full simulation.
	ModeSimulated
	// ModeCrossCheck runs both paths and errors if any report field differs.
	ModeCrossCheck
)

// String names the mode as ParseRunMode accepts it.
func (m RunMode) String() string {
	switch m {
	case ModeDerived:
		return "derived"
	case ModeSimulated:
		return "simulated"
	case ModeCrossCheck:
		return "crosscheck"
	}
	return fmt.Sprintf("RunMode(%d)", int(m))
}

// ParseRunMode parses a RunMode name as accepted on the command line.
func ParseRunMode(s string) (RunMode, error) {
	switch s {
	case "derived":
		return ModeDerived, nil
	case "simulated":
		return ModeSimulated, nil
	case "crosscheck":
		return ModeCrossCheck, nil
	}
	return 0, fmt.Errorf("core: unknown run mode %q (want derived, simulated or crosscheck)", s)
}

// Run simulates the artifact under one machine organisation, sharing the
// artifact's cached predecoded program.  The report is derived from the
// artifact's shared execution trace when the trace can answer exactly, and
// fully simulated otherwise — the two are field-for-field identical, so
// callers need not care which path ran (Report.Derived records it).
func Run(a *Artifact, strategy Strategy, cfg Config) (*Report, error) {
	pp, err := a.Predecoded(cfg.Degree)
	if err != nil {
		return nil, err
	}
	return sim.RunDerived(pp, strategy, cfg)
}

// RunSimulated simulates the artifact under one machine organisation with the
// full interleaved execution-and-costing loop, bypassing the trace fast path.
func RunSimulated(a *Artifact, strategy Strategy, cfg Config) (*Report, error) {
	pp, err := a.Predecoded(cfg.Degree)
	if err != nil {
		return nil, err
	}
	return sim.RunPredecoded(pp, strategy, cfg)
}

// RunCrossChecked runs both the derived and the fully simulated path and
// verifies they agree on every report field; any divergence is an error.  The
// simulated report is returned, so a cross-checked sweep is byte-identical to
// a simulated one.
func RunCrossChecked(a *Artifact, strategy Strategy, cfg Config) (*Report, error) {
	pp, err := a.Predecoded(cfg.Degree)
	if err != nil {
		return nil, err
	}
	simulated, err := sim.RunPredecoded(pp, strategy, cfg)
	if err != nil {
		return nil, err
	}
	derived, err := sim.RunDerived(pp, strategy, cfg)
	if err != nil {
		return nil, err
	}
	if derived.Derived {
		if diff := sim.DiffReports(derived, simulated); diff != "" {
			return nil, fmt.Errorf("core: %s/%v/%v: derived report diverges from simulation: %s",
				a.Name, strategy, cfg.Degree, diff)
		}
	}
	return simulated, nil
}

// Compare simulates the artifact under every organisation and verifies that
// all of them produce the same output.  Every organisation shares the
// artifact's cached predecoded program.
func Compare(a *Artifact, cfg Config) ([]*Report, error) {
	pp, err := a.Predecoded(cfg.Degree)
	if err != nil {
		return nil, err
	}
	return sim.RunAllPredecoded(pp, cfg)
}
