// Conformance: the differential oracle behind the paper's equivalence
// invariant.  Every organisation (conventional, DTB, cache, expanded) at
// every semantic level and degree of encoding must compute the same program
// output, differing only in cost.  This file checks that invariant — plus the
// static ones it rests on (encode→decode round-trip fidelity, replay
// determinism, instruction-count agreement between the reference DIR
// interpreter and the simulator) — for arbitrary MiniLang source, and sweeps
// it over the seeded program generator of internal/workload/gen.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"uhm/internal/compile"
	"uhm/internal/dir"
	"uhm/internal/hlr"
	"uhm/internal/sim"
	"uhm/internal/workload/gen"
)

// Divergence is one violated invariant at one point of the cross-product.
type Divergence struct {
	Name     string
	Level    Level
	Degree   Degree
	Strategy Strategy
	// HasDegree/HasStrategy report whether Degree/Strategy identify the
	// point (level-only checks such as the reference DIR execution carry
	// neither).
	HasDegree   bool
	HasStrategy bool
	// Kind labels the violated invariant.
	Kind string
	// Detail is a human-readable description of the disagreement.
	Detail string
}

// Divergence kinds.
const (
	DivergeDirExec    = "dir-exec"    // reference DIR interpreter failed or disagreed with the hlr oracle
	DivergeEncode     = "encode"      // binary emission failed
	DivergeDecode     = "decode"      // decoding failed or decoded instructions differ from the compiled ones
	DivergeRoundTrip  = "roundtrip"   // re-encoding the decoded program is not bit-identical
	DivergeSimOutput  = "sim-output"  // a strategy's output differs from the hlr oracle
	DivergeSimCount   = "sim-count"   // a strategy's instruction count differs from the reference DIR count
	DivergeReplay     = "replay"      // a second Replay of the same Replayer differs from the first
	DivergeFreshRun   = "fresh-run"   // sim.Run disagrees with the Replayer on the same point
	DivergeSimError   = "sim-error"   // a strategy failed outright
	DivergeCompile    = "compile"     // compilation failed at one level
	DivergeOutputSize = "output-size" // a strategy printed a different number of values
	DivergeDerived    = "derived"     // the trace-derived report differs from the simulated one
)

func (d Divergence) String() string {
	site := fmt.Sprintf("level=%s", d.Level)
	if d.HasDegree {
		site += fmt.Sprintf(" degree=%s", d.Degree)
	}
	if d.HasStrategy {
		site += fmt.Sprintf(" strategy=%s", d.Strategy)
	}
	return fmt.Sprintf("%s: [%s] %s: %s", d.Name, site, d.Kind, d.Detail)
}

// conformanceMaxInstructions caps each simulated run; generated programs are
// validated far below this, so hitting it is itself a signal.
const conformanceMaxInstructions = 10_000_000

// conformanceOracleMaxSteps bounds the oracle evaluation.  It sits well above
// the generator's validation budget but far below the evaluator's 50M-step
// default, so minimizer candidates that lost their termination guarantee (a
// deleted loop step, say) are rejected in milliseconds rather than grinding
// out the full default budget on every candidate edit.
const conformanceOracleMaxSteps = 5_000_000

// CheckConformance runs one MiniLang source program through the full
// cross-product — every semantic level, every encoding degree, every machine
// organisation, plus the predecoded/Replayer paths — and returns every
// violated invariant.  A nil, nil return means the program conforms.  The
// returned error reports infrastructure problems (unparsable source, oracle
// failure), not divergences.
func CheckConformance(name, src string, cfg Config) ([]Divergence, error) {
	prog, err := hlr.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("core: conformance %s: %w", name, err)
	}
	oracle, err := hlr.Evaluate(prog, hlr.EvalOptions{MaxSteps: conformanceOracleMaxSteps})
	if err != nil {
		return nil, fmt.Errorf("core: conformance %s: oracle: %w", name, err)
	}
	cfg.MaxInstructions = conformanceMaxInstructions

	var divs []Divergence
	for _, level := range Levels() {
		divs = append(divs, checkLevel(name, prog, oracle.Output, level, cfg)...)
	}
	return divs, nil
}

func checkLevel(name string, prog *hlr.Program, want []int64, level Level, cfg Config) []Divergence {
	var divs []Divergence
	report := func(d Divergence) {
		d.Name = name
		d.Level = level
		divs = append(divs, d)
	}

	dp, err := compile.Compile(prog, level)
	if err != nil {
		report(Divergence{Kind: DivergeCompile, Detail: err.Error()})
		return divs
	}

	// Invariant (a) at the reference-interpreter layer: the untimed DIR
	// executor must reproduce the hlr oracle's output.  Its dynamic
	// instruction count anchors invariant (c) below.
	execRes, err := dir.Execute(dp, dir.ExecOptions{MaxSteps: conformanceMaxInstructions})
	if err != nil {
		report(Divergence{Kind: DivergeDirExec, Detail: fmt.Sprintf("reference DIR execution failed: %v", err)})
		return divs
	}
	if !slices.Equal(execRes.Output, want) {
		report(Divergence{Kind: DivergeDirExec,
			Detail: fmt.Sprintf("reference DIR output %v, oracle %v", abbrev(execRes.Output), abbrev(want))})
	}

	for _, degree := range Degrees() {
		divs = append(divs, checkDegree(name, dp, want, execRes.Executed, level, degree, cfg)...)
	}
	return divs
}

func checkDegree(name string, dp *dir.Program, want []int64, wantInstrs int64,
	level Level, degree Degree, cfg Config) []Divergence {
	var divs []Divergence
	report := func(d Divergence) {
		d.Name = name
		d.Level = level
		d.Degree = degree
		d.HasDegree = true
		divs = append(divs, d)
	}

	bin, err := dir.Encode(dp, degree)
	if err != nil {
		report(Divergence{Kind: DivergeEncode, Detail: err.Error()})
		return divs
	}

	// Invariant (b): encode→decode must reproduce the compiled instructions
	// exactly, and re-encoding the decoded program must be bit-identical.
	pd, err := bin.Predecode()
	if err != nil {
		report(Divergence{Kind: DivergeDecode, Detail: err.Error()})
		return divs
	}
	for i := range dp.Instrs {
		if !instrEqual(dp.Instrs[i], pd.Instrs[i]) {
			report(Divergence{Kind: DivergeDecode,
				Detail: fmt.Sprintf("instruction %d decoded as %q, compiled as %q", i, pd.Instrs[i], dp.Instrs[i])})
			break
		}
	}
	redecoded := &dir.Program{Name: dp.Name, Instrs: pd.Instrs, Procs: dp.Procs, Contours: dp.Contours, Level: dp.Level}
	bin2, err := dir.Encode(redecoded, degree)
	if err != nil {
		report(Divergence{Kind: DivergeRoundTrip, Detail: fmt.Sprintf("re-encoding decoded program: %v", err)})
	} else if bin.SizeBits() != bin2.SizeBits() || !bytes.Equal(bin.Bytes(), bin2.Bytes()) {
		report(Divergence{Kind: DivergeRoundTrip,
			Detail: fmt.Sprintf("re-encoded binary differs: %d bits vs %d bits", bin2.SizeBits(), bin.SizeBits())})
	}

	pp, err := sim.PredecodeBinary(bin)
	if err != nil {
		report(Divergence{Kind: DivergeDecode, Detail: fmt.Sprintf("predecode for simulation: %v", err)})
		return divs
	}
	runCfg := cfg
	runCfg.Degree = degree

	// The duplicate-run checks (second Replay, fresh sim.Run) run on one
	// rotating strategy per (level, degree): every (degree, strategy) pair
	// is still covered across a sweep, at a quarter of the duplicate-run
	// cost.
	rotating := Strategies()[(int(level)+int(degree))%len(Strategies())]
	for _, strategy := range Strategies() {
		divs = append(divs, checkStrategy(name, pp, want, wantInstrs, level, degree, strategy,
			strategy == rotating, runCfg)...)
	}

	// The fresh sim.Run path (its own encode + predecode, no reuse) must
	// agree with the Replayer path.
	fresh := rotating
	rep, err := sim.Run(dp, fresh, runCfg)
	if err != nil {
		report(Divergence{Strategy: fresh, HasStrategy: true, Kind: DivergeFreshRun,
			Detail: fmt.Sprintf("sim.Run failed: %v", err)})
	} else {
		if !slices.Equal(rep.Output, want) {
			report(Divergence{Strategy: fresh, HasStrategy: true, Kind: DivergeFreshRun,
				Detail: fmt.Sprintf("sim.Run output %v, oracle %v", abbrev(rep.Output), abbrev(want))})
		}
		if rep.Instructions != wantInstrs {
			report(Divergence{Strategy: fresh, HasStrategy: true, Kind: DivergeFreshRun,
				Detail: fmt.Sprintf("sim.Run executed %d instructions, reference DIR executed %d", rep.Instructions, wantInstrs)})
		}
	}
	return divs
}

func checkStrategy(name string, pp *sim.PredecodedProgram, want []int64, wantInstrs int64,
	level Level, degree Degree, strategy Strategy, replayTwice bool, cfg Config) []Divergence {
	var divs []Divergence
	report := func(kind, detail string) {
		divs = append(divs, Divergence{
			Name: name, Level: level, Degree: degree, Strategy: strategy,
			HasDegree: true, HasStrategy: true, Kind: kind, Detail: detail,
		})
	}

	rp, err := sim.NewReplayer(pp, strategy, cfg)
	if err != nil {
		report(DivergeSimError, fmt.Sprintf("NewReplayer: %v", err))
		return divs
	}
	r1, err := rp.Replay()
	if err != nil {
		report(DivergeSimError, fmt.Sprintf("replay: %v", err))
		return divs
	}
	// The report is owned by the Replayer and overwritten by the next
	// Replay, so the fields compared across replays are copied out.
	out1 := slices.Clone(r1.Output)
	instrs1, cycles1 := r1.Instructions, r1.TotalCycles

	// Invariant (a): output equality against the oracle.
	if len(out1) != len(want) {
		report(DivergeOutputSize, fmt.Sprintf("printed %d values, oracle printed %d", len(out1), len(want)))
	}
	if !slices.Equal(out1, want) {
		report(DivergeSimOutput, fmt.Sprintf("output %v, oracle %v", abbrev(out1), abbrev(want)))
	}
	// Invariant (c): instruction-count agreement with the reference DIR
	// interpreter (and hence across every strategy).
	if instrs1 != wantInstrs {
		report(DivergeSimCount, fmt.Sprintf("executed %d instructions, reference DIR executed %d", instrs1, wantInstrs))
	}

	// Invariant (d), the trace-once/cost-many contract: the report derived
	// from the shared execution trace must equal the simulated one in every
	// field.  Derive overwrites the Replayer-owned report, so the simulated
	// one is cloned first.  A declined trace (ErrNoTrace) is not a
	// divergence — it is the documented fallback —  but any other failure or
	// field difference is.
	sim1 := r1.Clone()
	der, err := rp.Derive()
	if err != nil && !errors.Is(err, sim.ErrNoTrace) {
		report(DivergeDerived, fmt.Sprintf("derive: %v", err))
	} else if err == nil {
		if diff := sim.DiffReports(der, sim1); diff != "" {
			report(DivergeDerived, fmt.Sprintf("derived report differs from simulated: %s", diff))
		}
	}

	// Replay determinism: a second Replay on the reused structures must be
	// byte-identical in output and identical in cost.
	if !replayTwice {
		return divs
	}
	r2, err := rp.Replay()
	if err != nil {
		report(DivergeReplay, fmt.Sprintf("second replay failed: %v", err))
		return divs
	}
	if !slices.Equal(r2.Output, out1) {
		report(DivergeReplay, fmt.Sprintf("second replay output %v, first %v", abbrev(r2.Output), abbrev(out1)))
	}
	if r2.Instructions != instrs1 || r2.TotalCycles != cycles1 {
		report(DivergeReplay, fmt.Sprintf("second replay cost (%d instrs, %d cycles), first (%d, %d)",
			r2.Instructions, r2.TotalCycles, instrs1, cycles1))
	}
	return divs
}

// instrEqual compares the semantically meaningful fields of two instructions.
func instrEqual(a, b dir.Instruction) bool {
	if a.Op != b.Op || a.Contour != b.Contour || len(a.Operands) != len(b.Operands) {
		return false
	}
	for i := range a.Operands {
		if a.Operands[i] != b.Operands[i] {
			return false
		}
	}
	if a.Op.HasTarget() && a.Target != b.Target {
		return false
	}
	if a.Op.IsCall() && (a.Proc != b.Proc || a.NArgs != b.NArgs) {
		return false
	}
	return true
}

// abbrev keeps divergence details readable for long outputs.
func abbrev(v []int64) string {
	const limit = 16
	if len(v) <= limit {
		return fmt.Sprint(v)
	}
	return fmt.Sprintf("%v... (%d values)", v[:limit], len(v))
}

// SeedResult is the conformance outcome of one generated program.
type SeedResult struct {
	Seed int64
	// Archetype is the generator profile that produced the program; empty for
	// the uniform generator.
	Archetype   string
	Name        string
	Source      string
	Divergences []Divergence
}

// generateFor dispatches between the uniform generator (archetype "") and a
// named archetype profile.
func generateFor(archetype string, seed int64) (*gen.Program, error) {
	if archetype == "" {
		return gen.Generate(seed)
	}
	a, err := gen.ArchetypeByName(archetype)
	if err != nil {
		return nil, err
	}
	return a.Generate(seed)
}

// CheckSeed generates the program for a seed and checks its conformance.
func CheckSeed(seed int64, cfg Config) (*SeedResult, error) {
	return CheckArchetypeSeed("", seed, cfg)
}

// CheckArchetypeSeed generates the named archetype's program for a seed
// (uniform generator when archetype is empty) and checks its conformance.
func CheckArchetypeSeed(archetype string, seed int64, cfg Config) (*SeedResult, error) {
	p, err := generateFor(archetype, seed)
	if err != nil {
		return nil, err
	}
	divs, err := CheckConformance(p.Name, p.Source, cfg)
	if err != nil {
		return nil, err
	}
	return &SeedResult{Seed: seed, Archetype: archetype, Name: p.Name, Source: p.Source, Divergences: divs}, nil
}

// SweepResult summarises a conformance sweep over a seed range.
type SweepResult struct {
	Seeds   int
	Failing []*SeedResult
}

// ConformanceSweep checks seeds start..start+n-1 on a bounded worker pool,
// reporting progress through the optional callback, which may be invoked
// concurrently from several workers and must synchronize any state it
// touches.  Failing seeds are returned in ascending order; infrastructure
// errors abort the sweep.
func ConformanceSweep(ctx context.Context, start int64, n, workers int, cfg Config,
	progress func(done, failed int)) (*SweepResult, error) {
	return ConformanceSweepArchetype(ctx, "", start, n, workers, cfg, progress)
}

// ConformanceSweepArchetype is ConformanceSweep over the named generator
// archetype's programs (uniform generator when archetype is empty), so every
// new program shape immediately feeds the same differential oracle.
func ConformanceSweepArchetype(ctx context.Context, archetype string, start int64, n, workers int, cfg Config,
	progress func(done, failed int)) (*SweepResult, error) {
	if n <= 0 {
		return &SweepResult{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		mu      sync.Mutex
		failing []*SeedResult
		done    int
		firstEr error
	)
	// failed closes once an infrastructure error is recorded, so the feed
	// loop stops handing out seeds instead of finishing a long sweep whose
	// result will be discarded.
	failed := make(chan struct{})
	seeds := make(chan int64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				res, err := CheckArchetypeSeed(archetype, seed, cfg)
				mu.Lock()
				done++
				if err != nil && firstEr == nil {
					firstEr = err
					close(failed)
				}
				if res != nil && len(res.Divergences) > 0 {
					failing = append(failing, res)
				}
				d, f := done, len(failing)
				mu.Unlock()
				if progress != nil {
					progress(d, f)
				}
			}
		}()
	}
feed:
	for seed := start; seed < start+int64(n); seed++ {
		select {
		case <-ctx.Done():
			break feed
		case <-failed:
			break feed
		case seeds <- seed:
		}
	}
	close(seeds)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstEr != nil {
		return nil, firstEr
	}
	slices.SortFunc(failing, func(a, b *SeedResult) int {
		return int(a.Seed - b.Seed)
	})
	return &SweepResult{Seeds: n, Failing: failing}, nil
}
