package core

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"uhm/internal/perfmodel"
	"uhm/internal/workload/gen"
)

// archexpTestAxes keeps the experiment tests fast: two locality profiles,
// two programs each.
func archexpTestAxes(t *testing.T) ([]string, int) {
	t.Helper()
	if testing.Short() {
		return []string{"dispatch"}, 1
	}
	return []string{"recursion", "dispatch"}, 2
}

// TestArchetypeSweepSerialMatchesParallel renders the archetype sweep under
// the serial and parallel engines and requires byte-identical reports, the
// same determinism contract every other grid experiment carries.
func TestArchetypeSweepSerialMatchesParallel(t *testing.T) {
	ctx := context.Background()
	cfg := engineTestConfig()
	archetypes, programs := archexpTestAxes(t)

	serialRows, err := SerialEngine().ArchetypeSweep(ctx, archetypes, programs, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallelRows, err := Engine{Workers: 8}.ArchetypeSweep(ctx, archetypes, programs, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Errorf("parallel sweep differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			RenderArchetypeSweep(serialRows), RenderArchetypeSweep(parallelRows))
	}
}

// TestArchetypeSweepShape pins the sweep's structural invariants: the row
// grid covers archetypes x the Figure 2 capacity axis in order, hit ratios
// are valid probabilities bracketed by the per-program min/max, and capacity
// is monotone in the entry count.
func TestArchetypeSweepShape(t *testing.T) {
	ctx := context.Background()
	cfg := engineTestConfig()
	archetypes, programs := archexpTestAxes(t)

	rows, err := ParallelEngine().ArchetypeSweep(ctx, archetypes, programs, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(archetypes)*len(figure2Entries) {
		t.Fatalf("got %d rows, want %d", len(rows), len(archetypes)*len(figure2Entries))
	}
	for i, r := range rows {
		wantArch := archetypes[i/len(figure2Entries)]
		wantEntries := figure2Entries[i%len(figure2Entries)]
		if r.Archetype != wantArch || r.Entries != wantEntries {
			t.Fatalf("row %d = (%s, %d), want (%s, %d)", i, r.Archetype, r.Entries, wantArch, wantEntries)
		}
		if r.Programs != programs {
			t.Errorf("row %d: programs = %d, want %d", i, r.Programs, programs)
		}
		if r.HitRatio < 0 || r.HitRatio > 1 || r.MinHitRatio > r.MaxHitRatio {
			t.Errorf("row %d: implausible hit ratios %+v", i, r)
		}
		if r.HitRatio < r.MinHitRatio-1e-9 || r.HitRatio > r.MaxHitRatio+1e-9 {
			t.Errorf("row %d: population ratio %.4f outside per-program bounds [%.4f, %.4f]",
				i, r.HitRatio, r.MinHitRatio, r.MaxHitRatio)
		}
		if i%len(figure2Entries) > 0 && r.CapacityBytes <= rows[i-1].CapacityBytes {
			t.Errorf("row %d: capacity %d B not larger than previous %d B", i, r.CapacityBytes, rows[i-1].CapacityBytes)
		}
	}
	rendered := RenderArchetypeSweep(rows)
	for _, a := range archetypes {
		if !containsLine(rendered, a) {
			t.Errorf("rendered sweep is missing archetype %q:\n%s", a, rendered)
		}
	}
}

// TestArchetypeSweepCrossCheck runs a single sweep cell population under
// ModeCrossCheck: every report must agree field-for-field between the
// trace-derived and interleaved-simulation paths.
func TestArchetypeSweepCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("crosscheck doubles every run")
	}
	ctx := context.Background()
	cfg := engineTestConfig()
	e := Engine{Workers: 8, Mode: ModeCrossCheck}
	if _, err := e.ArchetypeSweep(ctx, []string{"phased"}, 1, 1, cfg); err != nil {
		t.Fatalf("crosscheck sweep: %v", err)
	}
}

// TestModelValidation checks the analytic-model error study end to end:
// every sample carries a full metric set, the aggregates are consistent with
// the samples, and the metrics the model captures exactly (T1, T3: their
// equations are parameterised by the very measurements they predict) come
// out with near-zero error while T4 shows the documented systematic
// over-prediction from superinstruction fusion.
func TestModelValidation(t *testing.T) {
	ctx := context.Background()
	cfg := engineTestConfig()
	archetypes, programs := archexpTestAxes(t)

	v, err := ParallelEngine().ModelValidation(ctx, archetypes, programs, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Samples) != len(archetypes)*programs {
		t.Fatalf("got %d samples, want %d", len(v.Samples), len(archetypes)*programs)
	}
	for i, s := range v.Samples {
		if s.Archetype != archetypes[i/programs] {
			t.Errorf("sample %d: archetype %q, want %q", i, s.Archetype, archetypes[i/programs])
		}
		if s.Seed != 1+int64(i%programs) {
			t.Errorf("sample %d: seed %d, want %d", i, s.Seed, 1+int64(i%programs))
		}
		for _, m := range perfmodel.Metrics() {
			if _, ok := s.Errors[m]; !ok {
				t.Errorf("sample %d: missing error for %s", i, m)
			}
		}
	}
	for _, m := range perfmodel.Metrics() {
		st, ok := v.Overall[m]
		if !ok || st.N != len(v.Samples) {
			t.Fatalf("overall %s: %+v (ok=%v), want n=%d", m, st, ok, len(v.Samples))
		}
		if st.Min > st.P50 || st.P50 > st.P95 || st.P95 > st.Max {
			t.Errorf("overall %s: unordered quantiles %+v", m, st)
		}
	}
	for _, a := range archetypes {
		per, ok := v.PerArchetype[a]
		if !ok {
			t.Fatalf("missing per-archetype stats for %q", a)
		}
		for _, m := range perfmodel.Metrics() {
			if per[m].N != programs {
				t.Errorf("%s/%s: n = %d, want %d", a, m, per[m].N, programs)
			}
		}
	}
	// T1 and T3 are parameterised directly from the runs they predict, so
	// their errors must be numerically negligible.
	for _, m := range []string{"T1", "T3"} {
		if ab := v.Overall[m].MaxAbs; ab > 0.5 {
			t.Errorf("%s |max| error = %.4f%%, want < 0.5%%", m, ab)
		}
	}
	// T4 = t1 + x cannot see superinstruction fusion: the model must
	// over-predict the compiled organisation on every program.
	if v.Overall["T4"].Min <= 0 {
		t.Errorf("T4 min error = %+.2f%%, want the documented systematic over-prediction (> 0)", v.Overall["T4"].Min)
	}

	rendered := RenderModelValidation(v)
	for _, a := range archetypes {
		if !containsLine(rendered, a) {
			t.Errorf("rendered validation is missing archetype %q:\n%s", a, rendered)
		}
	}
}

// TestModelValidationDeterministic requires the study to be reproducible:
// same axes, same seed, same engine shape — identical document.
func TestModelValidationDeterministic(t *testing.T) {
	ctx := context.Background()
	cfg := engineTestConfig()
	archetypes, programs := archexpTestAxes(t)

	a, err := ParallelEngine().ModelValidation(ctx, archetypes, programs, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SerialEngine().ModelValidation(ctx, archetypes, programs, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := ModelValidationJSON(a, "test")
	if err != nil {
		t.Fatal(err)
	}
	jb, err := ModelValidationJSON(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("parallel and serial validations differ:\n--- parallel ---\n%s\n--- serial ---\n%s", ja, jb)
	}
}

// TestModelValidationJSONRoundTrip parses the committed-artifact document
// back and checks it survives the trip unchanged.
func TestModelValidationJSONRoundTrip(t *testing.T) {
	ctx := context.Background()
	cfg := engineTestConfig()

	v, err := ParallelEngine().ModelValidation(ctx, []string{"kernel"}, 1, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ModelValidationJSON(v, "round-trip")
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Label string `json:"label"`
		ModelValidation
	}
	if err := json.Unmarshal(doc, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Label != "round-trip" {
		t.Errorf("label = %q", back.Label)
	}
	if !reflect.DeepEqual(back.ModelValidation.Samples, v.Samples) {
		t.Error("samples did not survive the JSON round trip")
	}
	if !reflect.DeepEqual(back.ModelValidation.Overall, v.Overall) {
		t.Error("overall stats did not survive the JSON round trip")
	}
}

// TestMeasuredResult pins the figures-of-merit arithmetic, including the
// zero-denominator guards.
func TestMeasuredResult(t *testing.T) {
	r := measuredResult(30, 20, 25, 10)
	if r.T1 != 30 || r.T2 != 20 || r.T3 != 25 || r.T4 != 10 {
		t.Fatalf("times: %+v", r)
	}
	if math.Abs(r.F1-25) > 1e-12 || math.Abs(r.F2-50) > 1e-12 || math.Abs(r.F3-100) > 1e-12 {
		t.Errorf("figures of merit: %+v, want F1=25 F2=50 F3=100", r)
	}
	z := measuredResult(1, 0, 1, 0)
	if z.F1 != 0 || z.F2 != 0 || z.F3 != 0 {
		t.Errorf("zero denominators must yield zero figures: %+v", z)
	}
}

// TestArchetypeAxisDefaults ties the experiments' default axis to the
// generator catalogue.
func TestArchetypeAxisDefaults(t *testing.T) {
	if got, want := archetypeAxis(nil), gen.ArchetypeNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("archetypeAxis(nil) = %v, want %v", got, want)
	}
	if got := archetypeAxis([]string{"kernel"}); !reflect.DeepEqual(got, []string{"kernel"}) {
		t.Errorf("archetypeAxis(kernel) = %v", got)
	}
	if _, err := ParallelEngine().ArchetypeSweep(context.Background(),
		[]string{"no-such-archetype"}, 1, 1, engineTestConfig()); err == nil {
		t.Error("unknown archetype: want error, got nil")
	}
}

// containsLine reports whether the rendered report mentions the word.
func containsLine(rendered, word string) bool {
	return strings.Contains(rendered, word)
}
