// Package metrics provides the small table/formatting helpers the benchmark
// harness and command-line tools use to print experiment results in the same
// row/column layout the paper's tables and figure captions use.
//
// The key type is Table — a titled text table built row by row — plus the
// value formatters (Bits, Float, Percent) that keep units consistent across
// every report of Tables 1–3 and Figures 1–4.  The package implements no
// part of the paper's machinery itself; it only renders what internal/core
// measures.
package metrics
