package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple text table with a title, column headers and rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; extra cells are dropped and missing cells are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			cells[i] = x
		case float64:
			cells[i] = Float(x)
		case float32:
			cells[i] = Float(float64(x))
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Float formats a float with a sensible fixed precision for tables.
func Float(v float64) string { return fmt.Sprintf("%.2f", v) }

// Percent formats a ratio in [0,1] as a percentage.
func Percent(ratio float64) string { return fmt.Sprintf("%.1f%%", ratio*100) }

// Ratio formats the ratio a/b, guarding against a zero denominator.
func Ratio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// Bits formats a bit count with a byte equivalent.
func Bits(bits int) string {
	return fmt.Sprintf("%d bits (%.1f bytes)", bits, float64(bits)/8)
}
