package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencySummaryEmpty(t *testing.T) {
	var r LatencyRecorder
	if s := r.Summary(); s != (LatencySummary{}) {
		t.Fatalf("empty recorder summary = %+v, want zero", s)
	}
}

// TestLatencyNearestRank pins the quantile definition on a known population:
// 1..100ms, where the nearest-rank p50 is exactly the 50th value.
func TestLatencyNearestRank(t *testing.T) {
	var r LatencyRecorder
	// Insert in reverse to prove Summary sorts.
	for i := 100; i >= 1; i-- {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	s := r.Summary()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.P50Ms != 50 || s.P90Ms != 90 || s.P99Ms != 99 || s.P999Ms != 100 || s.MaxMs != 100 {
		t.Fatalf("quantiles = %+v, want p50=50 p90=90 p99=99 p999=100 max=100", s)
	}
	if s.MeanMs != 50.5 {
		t.Fatalf("mean = %v, want 50.5", s.MeanMs)
	}
}

// TestLatencySingleSample: every quantile of a one-sample distribution is that
// sample.
func TestLatencySingleSample(t *testing.T) {
	var r LatencyRecorder
	r.Record(7 * time.Millisecond)
	s := r.Summary()
	if s.P50Ms != 7 || s.P99Ms != 7 || s.P999Ms != 7 || s.MaxMs != 7 {
		t.Fatalf("one-sample quantiles = %+v, want all 7ms", s)
	}
}

// TestLatencyConcurrentRecord: concurrent recorders lose nothing (run under
// -race in CI).
func TestLatencyConcurrentRecord(t *testing.T) {
	var r LatencyRecorder
	var wg sync.WaitGroup
	const workers, per = 8, 250
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Count(); got != workers*per {
		t.Fatalf("recorded %d samples, want %d", got, workers*per)
	}
}
