package metrics

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Results", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-longer-name", "2", "extra-ignored")
	tbl.AddRow("gamma") // missing cell padded
	out := tbl.Render()
	for _, want := range []string{"Results", "name", "value", "alpha", "beta-longer-name", "gamma"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "extra-ignored") {
		t.Error("extra cells should be dropped")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("x")
	if strings.HasPrefix(tbl.Render(), "\n") {
		t.Error("no leading blank line expected when title is empty")
	}
}

func TestAddRowf(t *testing.T) {
	tbl := NewTable("t", "s", "f", "i", "f32")
	tbl.AddRowf("str", 3.14159, 7, float32(2.5))
	out := tbl.Render()
	for _, want := range []string{"str", "3.14", "7", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if Float(1.005) != "1.00" && Float(1.005) != "1.01" {
		t.Errorf("Float = %q", Float(1.005))
	}
	if Percent(0.8) != "80.0%" {
		t.Errorf("Percent = %q", Percent(0.8))
	}
	if Ratio(10, 4) != "2.50x" {
		t.Errorf("Ratio = %q", Ratio(10, 4))
	}
	if Ratio(1, 0) != "n/a" {
		t.Errorf("Ratio with zero denominator = %q", Ratio(1, 0))
	}
	if Bits(16) != "16 bits (2.0 bytes)" {
		t.Errorf("Bits = %q", Bits(16))
	}
}
