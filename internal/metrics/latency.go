package metrics

import (
	"math"
	"sort"
	"sync"
	"time"
)

// LatencyRecorder accumulates request latencies from concurrent recorders and
// answers quantile snapshots.  It keeps every sample (a load run records at
// most a few hundred thousand), so quantiles are exact nearest-rank values,
// not sketch estimates — the committed BENCH artifacts should not depend on
// sketch error bounds.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Record adds one sample.  Safe for concurrent use.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Count returns how many samples have been recorded.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// LatencySummary is one snapshot of the recorded distribution.  Durations are
// reported in milliseconds (float), the unit the BENCH artifacts use.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summary computes the nearest-rank quantiles of everything recorded so far.
// An empty recorder returns the zero summary.
func (r *LatencyRecorder) Summary() LatencySummary {
	r.mu.Lock()
	sorted := make([]time.Duration, len(r.samples))
	copy(sorted, r.samples)
	r.mu.Unlock()
	if len(sorted) == 0 {
		return LatencySummary{}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{
		Count:  len(sorted),
		MeanMs: ms(total) / float64(len(sorted)),
		P50Ms:  ms(nearestRank(sorted, 0.50)),
		P90Ms:  ms(nearestRank(sorted, 0.90)),
		P99Ms:  ms(nearestRank(sorted, 0.99)),
		P999Ms: ms(nearestRank(sorted, 0.999)),
		MaxMs:  ms(sorted[len(sorted)-1]),
	}
}

// nearestRank returns the q-quantile of a sorted sample set by the
// nearest-rank definition: the smallest value whose rank is at least
// ceil(q*n).  q outside (0,1] clamps to the extremes.
func nearestRank(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
