package memory

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []Config{
		{Level1Size: 0, Level2Size: 1, Level1Time: 1, Level2Time: 10, BufferTime: 2},
		{Level1Size: 1, Level2Size: 0, Level1Time: 1, Level2Time: 10, BufferTime: 2},
		{Level1Size: 1, Level2Size: 1, Level1Time: 0, Level2Time: 10, BufferTime: 2},
		{Level1Size: 1, Level2Size: 1, Level1Time: 1, Level2Time: 0, BufferTime: 2},
		{Level1Size: 1, Level2Size: 1, Level1Time: 1, Level2Time: 10, BufferTime: 0},
		{Level1Size: 1, Level2Size: 1, Level1Time: 5, Level2Time: 2, BufferTime: 1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
		if _, err := New(c); err == nil {
			t.Errorf("case %d: New should fail for invalid config", i)
		}
	}
}

func TestLevelString(t *testing.T) {
	if Level1.String() != "level-1" || Level2.String() != "level-2" {
		t.Errorf("Level.String() = %q, %q", Level1.String(), Level2.String())
	}
	if Level(7).String() != "level-7" {
		t.Errorf("unknown level string = %q", Level(7).String())
	}
}

func TestAllocate(t *testing.T) {
	h := mustNew(t)
	seg, err := h.Allocate(Level1, "interp", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Name() != "interp" || seg.Level() != Level1 || seg.Size() != 4096 || seg.Words() != 1024 {
		t.Errorf("segment = %q %v %d bytes %d words", seg.Name(), seg.Level(), seg.Size(), seg.Words())
	}
	if h.Free(Level1) != DefaultConfig().Level1Size-4096 {
		t.Errorf("Free(Level1) = %d", h.Free(Level1))
	}
	if _, err := h.Allocate(Level1, "interp", 64); err == nil {
		t.Error("duplicate segment name should fail")
	}
	if _, err := h.Allocate(Level1, "huge", 1<<30); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversize allocation err = %v, want ErrOutOfMemory", err)
	}
	if _, err := h.Allocate(Level1, "zero", 0); err == nil {
		t.Error("zero-size allocation should fail")
	}
	if _, err := h.Allocate(Level(5), "x", 8); err == nil {
		t.Error("unknown level should fail")
	}
	got, ok := h.Segment("interp")
	if !ok || got != seg {
		t.Error("Segment lookup failed")
	}
	if _, ok := h.Segment("nope"); ok {
		t.Error("Segment lookup of unknown name should fail")
	}
	if names := h.Segments(); len(names) != 1 || names[0] != "interp" {
		t.Errorf("Segments() = %v", names)
	}
	if h.Free(Level(9)) != 0 {
		t.Errorf("Free of unknown level should be 0")
	}
}

func TestWordReadWriteAndTiming(t *testing.T) {
	h := mustNew(t)
	l1, _ := h.Allocate(Level1, "fast", 64)
	l2, _ := h.Allocate(Level2, "slow", 64)

	if c, err := l1.WriteWord(3, 0xDEADBEEF); err != nil || c != 1 {
		t.Fatalf("l1 write: cycles=%d err=%v", c, err)
	}
	v, c, err := l1.ReadWord(3)
	if err != nil || v != 0xDEADBEEF || c != 1 {
		t.Fatalf("l1 read: v=%x cycles=%d err=%v", v, c, err)
	}
	if c, err := l2.WriteWord(0, 42); err != nil || c != 10 {
		t.Fatalf("l2 write: cycles=%d err=%v", c, err)
	}
	v, c, err = l2.ReadWord(0)
	if err != nil || v != 42 || c != 10 {
		t.Fatalf("l2 read: v=%d cycles=%d err=%v", v, c, err)
	}

	st := h.Stats()
	if st.Level1Refs != 2 || st.Level2Refs != 2 {
		t.Errorf("refs = %d,%d want 2,2", st.Level1Refs, st.Level2Refs)
	}
	if st.Level1Time != 2 || st.Level2Time != 20 {
		t.Errorf("times = %d,%d want 2,20", st.Level1Time, st.Level2Time)
	}
	if st.TotalRefs() != 4 || st.TotalTime() != 22 {
		t.Errorf("totals = %d refs %d time", st.TotalRefs(), st.TotalTime())
	}

	h.ResetStats()
	if h.Stats().TotalRefs() != 0 {
		t.Error("ResetStats did not clear stats")
	}
}

func TestWordBounds(t *testing.T) {
	h := mustNew(t)
	seg, _ := h.Allocate(Level1, "s", 16)
	if _, _, err := seg.ReadWord(4); !errors.Is(err, ErrBounds) {
		t.Errorf("read past end err = %v", err)
	}
	if _, _, err := seg.ReadWord(-1); !errors.Is(err, ErrBounds) {
		t.Errorf("negative read err = %v", err)
	}
	if _, err := seg.WriteWord(4, 1); !errors.Is(err, ErrBounds) {
		t.Errorf("write past end err = %v", err)
	}
}

func TestBitAccess(t *testing.T) {
	h := mustNew(t)
	seg, _ := h.Allocate(Level1, "bits", 16)
	// Write a 13-bit field straddling a word boundary (bits 27..39).
	if _, err := seg.WriteBits(27, 0x155A, 13); err != nil {
		t.Fatal(err)
	}
	v, cycles, err := seg.ReadBits(27, 13)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x155A {
		t.Errorf("bit field = %x, want 0x155A", v)
	}
	// The field spans 2 words, so 2 references are charged.
	if cycles != 2 {
		t.Errorf("cycles = %d, want 2 (field spans two words)", cycles)
	}
	// A field within one word charges 1 reference.
	_, cycles, err = seg.ReadBits(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 1 {
		t.Errorf("cycles = %d, want 1", cycles)
	}
}

func TestBitAccessErrors(t *testing.T) {
	h := mustNew(t)
	seg, _ := h.Allocate(Level1, "bits", 4)
	if _, _, err := seg.ReadBits(0, 65); err == nil {
		t.Error("width 65 should fail")
	}
	if _, _, err := seg.ReadBits(30, 8); !errors.Is(err, ErrBounds) {
		t.Error("read past segment end should fail")
	}
	if _, _, err := seg.ReadBits(-1, 4); !errors.Is(err, ErrBounds) {
		t.Error("negative offset should fail")
	}
	if _, err := seg.WriteBits(0, 0, 65); err == nil {
		t.Error("write width 65 should fail")
	}
	if _, err := seg.WriteBits(30, 0, 8); !errors.Is(err, ErrBounds) {
		t.Error("write past segment end should fail")
	}
}

func TestLoad(t *testing.T) {
	h := mustNew(t)
	seg, _ := h.Allocate(Level2, "prog", 16)
	if err := seg.Load(4, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if h.Stats().TotalRefs() != 0 {
		t.Error("Load must not charge access time")
	}
	v, _, err := seg.ReadWord(1)
	if err != nil || v != 0x01020304 {
		t.Errorf("word after load = %x err=%v", v, err)
	}
	if err := seg.Load(14, []byte{1, 2, 3, 4}); !errors.Is(err, ErrBounds) {
		t.Error("overlong load should fail")
	}
}

func TestChargeBuffer(t *testing.T) {
	h := mustNew(t)
	c := h.ChargeBuffer(3)
	if c != 6 {
		t.Errorf("ChargeBuffer(3) = %d cycles, want 6", c)
	}
	st := h.Stats()
	if st.BufferRefs != 3 || st.BufferTime != 6 {
		t.Errorf("buffer stats = %d refs %d time", st.BufferRefs, st.BufferTime)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Level1Refs: 1, Level2Refs: 2, BufferRefs: 3, Level1Time: 4, Level2Time: 5, BufferTime: 6}
	b := Stats{Level1Refs: 10, Level2Refs: 20, BufferRefs: 30, Level1Time: 40, Level2Time: 50, BufferTime: 60}
	a.Add(b)
	if a.Level1Refs != 11 || a.Level2Refs != 22 || a.BufferRefs != 33 ||
		a.Level1Time != 44 || a.Level2Time != 55 || a.BufferTime != 66 {
		t.Errorf("Add result = %+v", a)
	}
}

func TestSegmentsIsolated(t *testing.T) {
	h := mustNew(t)
	a, _ := h.Allocate(Level1, "a", 16)
	b, _ := h.Allocate(Level1, "b", 16)
	_, _ = a.WriteWord(0, 0xAAAAAAAA)
	_, _ = b.WriteWord(0, 0xBBBBBBBB)
	va, _, _ := a.ReadWord(0)
	vb, _, _ := b.ReadWord(0)
	if va != 0xAAAAAAAA || vb != 0xBBBBBBBB {
		t.Errorf("segments overlap: a=%x b=%x", va, vb)
	}
}

// Property: word write/read round-trips for arbitrary values and offsets.
func TestQuickWordRoundTrip(t *testing.T) {
	h := mustNew(t)
	seg, err := h.Allocate(Level1, "q", 4096)
	if err != nil {
		t.Fatal(err)
	}
	f := func(idx uint16, v uint32) bool {
		i := int(idx) % seg.Words()
		if _, err := seg.WriteWord(i, v); err != nil {
			return false
		}
		got, _, err := seg.ReadWord(i)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: bit write/read round-trips and never disturbs a disjoint field.
func TestQuickBitFieldsIndependent(t *testing.T) {
	h := mustNew(t)
	seg, err := h.Allocate(Level1, "q", 4096)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		totalBits := seg.Size() * 8
		// Two disjoint fields.
		w1 := rng.Intn(32) + 1
		w2 := rng.Intn(32) + 1
		off1 := rng.Intn(totalBits - w1 - w2 - 1)
		off2 := off1 + w1 + rng.Intn(totalBits-off1-w1-w2)
		v1 := rng.Uint64() & ((1 << uint(w1)) - 1)
		v2 := rng.Uint64() & ((1 << uint(w2)) - 1)
		if _, err := seg.WriteBits(off1, v1, w1); err != nil {
			return false
		}
		if _, err := seg.WriteBits(off2, v2, w2); err != nil {
			return false
		}
		g1, _, err1 := seg.ReadBits(off1, w1)
		g2, _, err2 := seg.ReadBits(off2, w2)
		return err1 == nil && err2 == nil && g1 == v1 && g2 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkReadWordLevel1(b *testing.B) {
	h, _ := New(DefaultConfig())
	seg, _ := h.Allocate(Level1, "b", 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = seg.ReadWord(i % seg.Words())
	}
}

func BenchmarkReadBits(b *testing.B) {
	h, _ := New(DefaultConfig())
	seg, _ := h.Allocate(Level2, "b", 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = seg.ReadBits((i*13)%(seg.Size()*8-64), 13)
	}
}
