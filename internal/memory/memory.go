package memory

import (
	"errors"
	"fmt"
	"sort"
)

// Cycles is a duration expressed in level-1 access-time units.
type Cycles int64

// Level identifies a memory level.
type Level int

const (
	// Level1 is the small, fast memory (control store / scratchpad).
	Level1 Level = 1
	// Level2 is the large, slow main memory.
	Level2 Level = 2
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Level1:
		return "level-1"
	case Level2:
		return "level-2"
	default:
		return fmt.Sprintf("level-%d", int(l))
	}
}

// WordBytes is the width of a memory word in bytes.  The UHM is modelled with
// 32-bit words; short-format (IU2) instructions occupy one word and
// long-format (IU1) control words occupy two.
const WordBytes = 4

// Config describes a hierarchy.
type Config struct {
	Level1Size int    // capacity of level 1 in bytes
	Level2Size int    // capacity of level 2 in bytes
	Level1Time Cycles // access time of level 1 (the paper's t1, nominally 1)
	Level2Time Cycles // access time of level 2 (the paper's t2, nominally 10)
	BufferTime Cycles // access time of a DTB or cache array (the paper's tD, nominally 2*t1)
}

// DefaultConfig returns the parameterisation used throughout Section 7:
// t1 = 1, t2 = 10, tD = 2, with a 64 KiB level 1 and an 8 MiB level 2.
func DefaultConfig() Config {
	return Config{
		Level1Size: 64 << 10,
		Level2Size: 8 << 20,
		Level1Time: 1,
		Level2Time: 10,
		BufferTime: 2,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Level1Size <= 0 || c.Level2Size <= 0 {
		return errors.New("memory: level sizes must be positive")
	}
	if c.Level1Time <= 0 || c.Level2Time <= 0 || c.BufferTime <= 0 {
		return errors.New("memory: access times must be positive")
	}
	if c.Level2Time < c.Level1Time {
		return errors.New("memory: level 2 must not be faster than level 1")
	}
	return nil
}

// Stats accumulates reference counts and time per level.
type Stats struct {
	Level1Refs int64
	Level2Refs int64
	BufferRefs int64
	Level1Time Cycles
	Level2Time Cycles
	BufferTime Cycles
}

// TotalRefs returns the total number of memory references.
func (s Stats) TotalRefs() int64 { return s.Level1Refs + s.Level2Refs + s.BufferRefs }

// TotalTime returns the total time spent in memory references.
func (s Stats) TotalTime() Cycles { return s.Level1Time + s.Level2Time + s.BufferTime }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Level1Refs += other.Level1Refs
	s.Level2Refs += other.Level2Refs
	s.BufferRefs += other.BufferRefs
	s.Level1Time += other.Level1Time
	s.Level2Time += other.Level2Time
	s.BufferTime += other.BufferTime
}

// Hierarchy is a two-level memory with named segments.
type Hierarchy struct {
	cfg      Config
	level1   []byte
	level2   []byte
	used     map[Level]int
	segments map[string]*Segment
	stats    Stats
}

// New creates a hierarchy.  It returns an error if the configuration is
// invalid.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchy{
		cfg:      cfg,
		level1:   make([]byte, cfg.Level1Size),
		level2:   make([]byte, cfg.Level2Size),
		used:     map[Level]int{Level1: 0, Level2: 0},
		segments: make(map[string]*Segment),
	}, nil
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns accumulated reference statistics.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats clears accumulated statistics without touching contents.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// AccessTime returns the access time of a level.
func (h *Hierarchy) AccessTime(l Level) Cycles {
	if l == Level1 {
		return h.cfg.Level1Time
	}
	return h.cfg.Level2Time
}

// ChargeBuffer records a DTB/cache array reference (the paper's tD) without
// touching backing storage; the DTB keeps its own arrays but its timing is
// accounted here so one Stats value covers the whole machine.
func (h *Hierarchy) ChargeBuffer(refs int64) Cycles {
	t := Cycles(refs) * h.cfg.BufferTime
	h.stats.BufferRefs += refs
	h.stats.BufferTime += t
	return t
}

// ChargeLevel1 records level-1 references without touching backing storage
// (used for the compiled organisation's native-code fetches, whose closures
// are not byte-materialised in a segment), so one Stats value still covers
// the whole machine.
func (h *Hierarchy) ChargeLevel1(refs int64) Cycles {
	t := Cycles(refs) * h.cfg.Level1Time
	h.stats.Level1Refs += refs
	h.stats.Level1Time += t
	return t
}

// Free returns the number of unallocated bytes remaining in a level.
func (h *Hierarchy) Free(l Level) int {
	switch l {
	case Level1:
		return h.cfg.Level1Size - h.used[Level1]
	case Level2:
		return h.cfg.Level2Size - h.used[Level2]
	default:
		return 0
	}
}

// Segment is a named, contiguous region of one memory level.
type Segment struct {
	h     *Hierarchy
	name  string
	level Level
	base  int
	size  int
}

// ErrOutOfMemory is returned when a level cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("memory: level exhausted")

// ErrBounds is returned by segment accesses outside the segment.
var ErrBounds = errors.New("memory: access outside segment")

// Allocate carves a segment of size bytes out of the given level.  Segment
// names must be unique within the hierarchy.
func (h *Hierarchy) Allocate(level Level, name string, size int) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("memory: non-positive segment size %d", size)
	}
	if level != Level1 && level != Level2 {
		return nil, fmt.Errorf("memory: unknown level %d", level)
	}
	if _, dup := h.segments[name]; dup {
		return nil, fmt.Errorf("memory: segment %q already allocated", name)
	}
	if h.Free(level) < size {
		return nil, fmt.Errorf("%w: %s needs %d bytes, %d free in %s", ErrOutOfMemory, name, size, h.Free(level), level)
	}
	seg := &Segment{h: h, name: name, level: level, base: h.used[level], size: size}
	h.used[level] += size
	h.segments[name] = seg
	return seg, nil
}

// Segment returns a previously allocated segment by name.
func (h *Hierarchy) Segment(name string) (*Segment, bool) {
	s, ok := h.segments[name]
	return s, ok
}

// Segments returns the names of all allocated segments in sorted order.
func (h *Hierarchy) Segments() []string {
	names := make([]string, 0, len(h.segments))
	for n := range h.segments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Name returns the segment's name.
func (s *Segment) Name() string { return s.name }

// Level returns the memory level the segment lives in.
func (s *Segment) Level() Level { return s.level }

// Size returns the segment size in bytes.
func (s *Segment) Size() int { return s.size }

// Words returns the segment size in words.
func (s *Segment) Words() int { return s.size / WordBytes }

func (s *Segment) backing() []byte {
	if s.level == Level1 {
		return s.h.level1[s.base : s.base+s.size]
	}
	return s.h.level2[s.base : s.base+s.size]
}

// Bytes returns the raw backing bytes of the segment without charging any
// access time.  It is intended for loading programs and for tests.
func (s *Segment) Bytes() []byte { return s.backing() }

func (s *Segment) charge(refs int64) Cycles {
	var t Cycles
	if s.level == Level1 {
		t = Cycles(refs) * s.h.cfg.Level1Time
		s.h.stats.Level1Refs += refs
		s.h.stats.Level1Time += t
	} else {
		t = Cycles(refs) * s.h.cfg.Level2Time
		s.h.stats.Level2Refs += refs
		s.h.stats.Level2Time += t
	}
	return t
}

// ReadWord reads the 32-bit word at word offset idx, charging one reference.
func (s *Segment) ReadWord(idx int) (uint32, Cycles, error) {
	off := idx * WordBytes
	if idx < 0 || off+WordBytes > s.size {
		return 0, 0, fmt.Errorf("%w: word %d of %q", ErrBounds, idx, s.name)
	}
	b := s.backing()
	v := uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
	return v, s.charge(1), nil
}

// WriteWord writes the 32-bit word at word offset idx, charging one reference.
func (s *Segment) WriteWord(idx int, v uint32) (Cycles, error) {
	off := idx * WordBytes
	if idx < 0 || off+WordBytes > s.size {
		return 0, fmt.Errorf("%w: word %d of %q", ErrBounds, idx, s.name)
	}
	b := s.backing()
	b[off] = byte(v >> 24)
	b[off+1] = byte(v >> 16)
	b[off+2] = byte(v >> 8)
	b[off+3] = byte(v)
	return s.charge(1), nil
}

// ReadBits reads a width-bit field starting at absolute bit offset bitOff
// within the segment (fields may span word boundaries).  The number of
// references charged is the number of distinct words the field touches.
func (s *Segment) ReadBits(bitOff, width int) (uint64, Cycles, error) {
	if width < 0 || width > 64 {
		return 0, 0, fmt.Errorf("memory: invalid field width %d", width)
	}
	if bitOff < 0 || bitOff+width > s.size*8 {
		return 0, 0, fmt.Errorf("%w: bits [%d,%d) of %q", ErrBounds, bitOff, bitOff+width, s.name)
	}
	b := s.backing()
	var v uint64
	for i := 0; i < width; i++ {
		pos := bitOff + i
		bit := (b[pos/8] >> uint(7-pos%8)) & 1
		v = v<<1 | uint64(bit)
	}
	refs := wordsTouched(bitOff, width)
	return v, s.charge(refs), nil
}

// WriteBits writes the width least-significant bits of v at bit offset bitOff.
func (s *Segment) WriteBits(bitOff int, v uint64, width int) (Cycles, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("memory: invalid field width %d", width)
	}
	if bitOff < 0 || bitOff+width > s.size*8 {
		return 0, fmt.Errorf("%w: bits [%d,%d) of %q", ErrBounds, bitOff, bitOff+width, s.name)
	}
	b := s.backing()
	for i := 0; i < width; i++ {
		pos := bitOff + i
		bit := (v >> uint(width-1-i)) & 1
		mask := byte(1) << uint(7-pos%8)
		if bit != 0 {
			b[pos/8] |= mask
		} else {
			b[pos/8] &^= mask
		}
	}
	refs := wordsTouched(bitOff, width)
	return s.charge(refs), nil
}

// Load copies data into the segment starting at byte offset off without
// charging access time (used to place compiled programs into memory before a
// run begins, as a loader would).
func (s *Segment) Load(off int, data []byte) error {
	if off < 0 || off+len(data) > s.size {
		return fmt.Errorf("%w: load of %d bytes at %d into %q", ErrBounds, len(data), off, s.name)
	}
	copy(s.backing()[off:], data)
	return nil
}

// wordsTouched returns how many distinct words a bit field spans.
func wordsTouched(bitOff, width int) int64 {
	if width == 0 {
		return 1
	}
	firstWord := bitOff / (WordBytes * 8)
	lastWord := (bitOff + width - 1) / (WordBytes * 8)
	return int64(lastWord - firstWord + 1)
}
