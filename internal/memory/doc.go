// Package memory models the two-level memory hierarchy the paper assumes: "a
// small, fast first level memory along with a large and relatively slow
// second level" (§3.1).  All times are expressed in level-1 access-time
// units, exactly as in the Section 7 analysis where t1 = 1.
//
// The model provides:
//
//   - per-level access times and reference/time accounting,
//   - named segments allocated within a level (the DIR program, the
//     interpreter and semantic routines, the DTB buffer array, stacks),
//   - word-granular and bit-granular views of a segment ("high memory
//     resolution, i.e. the ability to view the memory space as a bit
//     string", §6.1).
package memory
