// The predecoded-program fast path: a DIR binary decoded and translated once,
// shared immutably by every strategy and goroutine that runs it.  The
// interpretive overhead the DIR/DTB design exists to eliminate — repeated
// field extraction, code-tree walks and translation — is paid a single time
// here; the simulator then charges the recorded per-pc costs on every
// execution, so reports are identical to decoding afresh each time, while the
// host pays only a slice index per dispatched instruction.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"uhm/internal/dir"
	"uhm/internal/faultinject"
	"uhm/internal/memory"
	"uhm/internal/psder"
	"uhm/internal/trace"
	"uhm/internal/translate"
)

// PredecodedProgram is a DIR program encoded at one degree, decoded and
// translated exactly once.  It is immutable after construction: the same
// instance can back any number of concurrent Run calls under any strategy.
// The closure-compiled form used by the Compiled strategy is built lazily on
// first use and then shared the same way.
type PredecodedProgram struct {
	// Program is the in-memory DIR program.
	Program *dir.Program
	// Binary is the encoded static representation the costs were measured on.
	Binary *dir.Binary

	seqs          []psder.Sequence // PSDER translation of each instruction
	costs         []dir.DecodeCost // decode cost of each instruction
	encoded       [][]uint32       // buffer-array image of each translation
	expandedWords int              // total PSDER words of the full expansion
	baseBytes     int              // resident bytes of the eagerly built forms

	// Static fetch geometry of each instruction in the encoded binary: the
	// first level-2 word its bit range touches and how many words it spans.
	// Cost derivations stream these instead of re-walking the bit ranges.
	fetchFirst []int32
	fetchWords []int32

	compileOnce   sync.Once
	compiled      *dir.CompiledProgram
	compileErr    error
	compiledWords atomic.Int64 // footprint of the lazily built compiled form

	traceOnce  sync.Once
	trace      *trace.Trace
	traceErr   error
	traceDone  atomic.Bool  // set (release) once a trace is recorded or adopted
	traceBytes atomic.Int64 // footprint of the lazily recorded trace
}

// Predecode encodes the program at the given degree and predecodes the
// result.
func Predecode(p *dir.Program, degree dir.Degree) (*PredecodedProgram, error) {
	bin, err := dir.Encode(p, degree)
	if err != nil {
		return nil, err
	}
	return PredecodeBinary(bin)
}

// PredecodeBinary decodes every instruction of the binary once and generates
// its PSDER translation and buffer-array encoding.
func PredecodeBinary(bin *dir.Binary) (*PredecodedProgram, error) {
	pd, err := bin.Predecode()
	if err != nil {
		return nil, err
	}
	pp := &PredecodedProgram{
		Program:    bin.Program,
		Binary:     bin,
		seqs:       make([]psder.Sequence, len(pd.Instrs)),
		costs:      pd.Costs,
		encoded:    make([][]uint32, len(pd.Instrs)),
		fetchFirst: make([]int32, len(pd.Instrs)),
		fetchWords: make([]int32, len(pd.Instrs)),
	}
	for pc, in := range pd.Instrs {
		seq, err := translate.Translate(in, pc)
		if err != nil {
			return nil, fmt.Errorf("sim: predecode instruction %d (%s): %w", pc, in, err)
		}
		enc, err := seq.Encode()
		if err != nil {
			return nil, fmt.Errorf("sim: predecode instruction %d (%s): %w", pc, in, err)
		}
		pp.seqs[pc] = seq
		pp.encoded[pc] = enc
		pp.expandedWords += seq.Words()
		pp.baseBytes += len(enc) * 4

		// Record the instruction's static fetch geometry (mirroring the
		// fetch loop's zero-length rule for degenerate encodings).
		offset, length, err := bin.InstrBitRange(pc)
		if err != nil {
			return nil, fmt.Errorf("sim: predecode instruction %d (%s): %w", pc, in, err)
		}
		if length == 0 {
			length = 1
		}
		firstWord := offset / (memory.WordBytes * 8)
		lastWord := (offset + length - 1) / (memory.WordBytes * 8)
		pp.fetchFirst[pc] = int32(firstWord)
		pp.fetchWords[pc] = int32(lastWord - firstWord + 1)
	}
	// The byte accounting the service registry evicts on: the encoded static
	// representation, the per-pc PSDER sequences and buffer-array images, the
	// recorded decode costs (two machine ints per pc) and the fetch-geometry
	// tables (two int32 per pc).
	pp.baseBytes += bin.SizeBytes() + pp.expandedWords*memory.WordBytes + len(pd.Costs)*16 + len(pd.Instrs)*8
	return pp, nil
}

// FootprintBytes estimates the resident size of the predecoded forms: the
// encoded binary, the PSDER sequences, the buffer-array images, the decode
// costs, and — once built — the closure-compiled program and the recorded
// execution trace.  The service registry charges this against its byte budget
// when deciding what to evict, so a cached trace lives and dies with its
// artifact.  Safe for concurrent use with Compiled and Trace.
func (pp *PredecodedProgram) FootprintBytes() int {
	return pp.baseBytes + int(pp.compiledWords.Load())*memory.WordBytes + int(pp.traceBytes.Load())
}

// Degree returns the encoding degree of the predecoded binary.
func (pp *PredecodedProgram) Degree() dir.Degree { return pp.Binary.Degree }

// NumInstrs returns the number of DIR instructions.
func (pp *PredecodedProgram) NumInstrs() int { return len(pp.seqs) }

// Sequence returns the PSDER translation of the instruction at pc.  The
// returned sequence is shared: callers must not modify it.
func (pp *PredecodedProgram) Sequence(pc int) psder.Sequence { return pp.seqs[pc] }

// DecodeCost returns the measured cost of decoding the instruction at pc from
// the binary, as an interpreter without this fast path would pay it on every
// execution.
func (pp *PredecodedProgram) DecodeCost(pc int) dir.DecodeCost { return pp.costs[pc] }

// EncodedWords returns the buffer-array image of the translation at pc — what
// the dynamic translator stores in the DTB.  The returned slice is shared:
// callers must not modify it.
func (pp *PredecodedProgram) EncodedWords(pc int) []uint32 { return pp.encoded[pc] }

// ExpandedWords returns the total size in words of the fully expanded PSDER
// program (the §3.1 "expanded machine language" baseline).
func (pp *PredecodedProgram) ExpandedWords() int { return pp.expandedWords }

// Compiled returns the shared closure-compiled form of the program,
// compiling it on first use.  Like the predecoded structures, the compiled
// program is immutable and may back any number of concurrent runs; each run
// supplies its own dir.MachineState.
func (pp *PredecodedProgram) Compiled() (*dir.CompiledProgram, error) {
	pp.compileOnce.Do(func() {
		pp.compiled, pp.compileErr = dir.Compile(pp.Program)
		if pp.compileErr == nil {
			pp.compiledWords.Store(int64(pp.compiled.FootprintWords()))
		}
	})
	return pp.compiled, pp.compileErr
}

// Trace returns the shared execution trace of the program, recording it on
// first use — the "trace once" half of the trace-once/cost-many split.  The
// recording runs at the default simulation bounds, so any configuration whose
// bounds the trace satisfies can derive from it; Replayer.Derive rechecks the
// recorded length and peak depth against its own configuration and declines
// otherwise.  Like the compiled form, the trace is immutable, shared by any
// number of concurrent derivations, and counted in FootprintBytes.
func (pp *PredecodedProgram) Trace() (*trace.Trace, error) {
	pp.traceOnce.Do(func() {
		// An injected recording failure is cached like a real one — the
		// program declines every future derivation (an ErrNoTrace storm) and
		// ReplayDerived serves it by full replay for its lifetime.
		if ferr := faultinject.Fire(faultinject.SiteTraceRecord); ferr != nil {
			pp.traceErr = ferr
			return
		}
		pp.trace, pp.traceErr = pp.RecordTrace()
		if pp.traceErr == nil {
			pp.traceBytes.Store(int64(pp.trace.SizeBytes()))
			pp.traceDone.Store(true)
		}
	})
	return pp.trace, pp.traceErr
}

// AdoptTrace installs a previously recorded trace — a persisted artifact's
// canonical execution reloaded from the store — as this program's shared
// trace, so a warm-started artifact derives reports without ever re-executing
// the program.  The adoption loses the race against any recording already in
// flight (the sync.Once arbitrates); the trace must have been recorded on
// this same program, which the store's verify-by-hash load guarantees.
func (pp *PredecodedProgram) AdoptTrace(t *trace.Trace) {
	if t == nil {
		return
	}
	pp.traceOnce.Do(func() {
		pp.trace = t
		pp.traceBytes.Store(int64(t.SizeBytes()))
		pp.traceDone.Store(true)
	})
}

// CachedTrace returns the shared trace if one has already been recorded or
// adopted, without triggering a recording; it returns nil otherwise.
// Artifact snapshotting uses it so persistence never forces an execution.
func (pp *PredecodedProgram) CachedTrace() *trace.Trace {
	if pp.traceDone.Load() {
		return pp.trace
	}
	return nil
}

// CachedCompiledWords returns the footprint in words of the closure-compiled
// form if it has been built, and 0 otherwise — compiled-form metadata for the
// persistence layer (closures themselves cannot be serialized).
func (pp *PredecodedProgram) CachedCompiledWords() int {
	return int(pp.compiledWords.Load())
}

// RecordTrace records a fresh execution trace without touching the cache —
// the canonical execution runs on the closure-compiled backend when the
// program compiles and on the reference DIR interpreter otherwise.  Most
// callers want the cached Trace; this entry point exists for benchmarks and
// tests that measure the recording itself.
func (pp *PredecodedProgram) RecordTrace() (*trace.Trace, error) {
	comp, err := pp.Compiled()
	if err != nil {
		comp = nil
	}
	def := DefaultConfig()
	return trace.Record(pp.Program, comp, pp.seqs, def.MaxInstructions, def.MaxDepth)
}
