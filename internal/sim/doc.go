// Package sim glues the substrates into the whole-machine simulation that
// Section 7 analyses: it runs a DIR program to completion under one of five
// organisations and accounts every cost in level-1 cycle units,
//
//	Conventional — fetch the encoded DIR instruction from level-2 memory,
//	    decode it, execute its semantics (the paper's T1);
//	WithDTB      — fetch the PSDER translation from the dynamic translation
//	    buffer; on a miss, fetch from level 2, decode, translate, install
//	    (the paper's T2);
//	WithCache    — fetch the encoded DIR instruction through a set-
//	    associative instruction cache, then decode and execute every time
//	    (the paper's T3);
//	Expanded     — the program fully pre-translated to PSDER ("expanded
//	    machine language") resident in level-2 memory: no decoding, but a
//	    much larger static representation;
//	Compiled     — the program lowered once to direct-threaded native
//	    closures (dir.Compile): operands, static-link distances and branch
//	    targets all bound at compile time, resident in level-1 memory.  The
//	    logical endpoint of the paper's binding spectrum — no per-execution
//	    binding work remains at all — at the price of the largest static
//	    representation of the five.
//
// All five strategies execute the same semantics over the same run-time
// state and therefore produce the same program output; only where
// instructions are fetched from and how much binding work is repeated
// differs — which is exactly the paper's point.  Besides total cycles, the
// simulator reports the measured values of the model parameters (d, g, x,
// s1, s2, hC, hD) so the analytic model of internal/perfmodel can be
// cross-checked against live executions.
package sim
