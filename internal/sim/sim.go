package sim

import (
	"errors"
	"fmt"
	"slices"

	"uhm/internal/cache"
	"uhm/internal/dir"
	"uhm/internal/dtb"
	"uhm/internal/host"
	"uhm/internal/memory"
	"uhm/internal/psder"
)

// Strategy selects the machine organisation.
type Strategy int

const (
	// Conventional is the paper's organisation 1: no buffering at all.
	Conventional Strategy = iota
	// WithDTB is organisation 2: a dynamic translation buffer.
	WithDTB
	// WithCache is organisation 3: an instruction cache on level-2 memory.
	WithCache
	// Expanded is the §3.1 baseline: the program compiled all the way down
	// to directly executable (PSDER) form and stored expanded in level 2.
	Expanded
	// Compiled is the fifth organisation, beyond the paper's four: the
	// program lowered once to direct-threaded closures (dir.Compile) with
	// every operand, contour offset and branch target resolved at compile
	// time, executed straight from level-1 memory.
	Compiled

	strategyCount
)

// Strategies lists every strategy.
func Strategies() []Strategy {
	return []Strategy{Conventional, WithDTB, WithCache, Expanded, Compiled}
}

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Conventional:
		return "conventional"
	case WithDTB:
		return "dtb"
	case WithCache:
		return "cache"
	case Expanded:
		return "expanded"
	case Compiled:
		return "compiled"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Valid reports whether the strategy is defined.
func (s Strategy) Valid() bool { return s >= 0 && s < strategyCount }

// Config parameterises a simulation.
type Config struct {
	Memory memory.Config
	DTB    dtb.Config
	Cache  cache.Config
	// Degree is the encoding degree of the static DIR representation.
	Degree dir.Degree
	// MaxInstructions bounds the run (0 selects a default).
	MaxInstructions int64
	// MaxDepth bounds the activation stack (0 selects a default).
	MaxDepth int
}

// DefaultConfig mirrors the paper's §7 reference point: t1=1, tD=2, t2=10, a
// 4096-byte cache and a DTB with the same associative geometry, and a
// Huffman-encoded static representation.
func DefaultConfig() Config {
	return Config{
		Memory:          memory.DefaultConfig(),
		DTB:             dtb.DefaultConfig(),
		Cache:           cache.DefaultConfig(),
		Degree:          dir.DegreeHuffman,
		MaxInstructions: 20_000_000,
		MaxDepth:        10_000,
	}
}

// Normalize returns the configuration with every defaulted field resolved
// (zero MaxInstructions and MaxDepth select the defaults), so two
// configurations that select identical behaviour compare equal.
func (c Config) Normalize() Config {
	if c.MaxInstructions <= 0 {
		c.MaxInstructions = DefaultConfig().MaxInstructions
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = DefaultConfig().MaxDepth
	}
	return c
}

// Fingerprint is a cheap comparable identity for a Config: two configurations
// with the same fingerprint select byte-identical simulation behaviour.  It
// is valid as a map key, which is exactly how the service layer's replayer
// pool uses it.
type Fingerprint struct {
	cfg Config
}

// Fingerprint returns the configuration's identity.  Every Config field is a
// flat value type, so the fingerprint is a plain struct comparison — no
// hashing, no allocation.
func (c Config) Fingerprint() Fingerprint { return Fingerprint{cfg: c.Normalize()} }

// Equivalent reports whether two configurations select identical simulation
// behaviour (they normalize to the same configuration).
func (c Config) Equivalent(o Config) bool { return c.Fingerprint() == o.Fingerprint() }

// Measured are the §7 model parameters as actually observed during the run.
type Measured struct {
	D  float64 // average decode steps per decoded instruction
	G  float64 // average generate-and-store cycles per translation
	X  float64 // average semantic cycles per instruction interpreted
	S1 float64 // average PSDER words per instruction (buffer references)
	S2 float64 // average level-2 words per DIR instruction fetch
	HD float64 // DTB hit ratio
	HC float64 // cache hit ratio
}

// Report is the outcome of one simulated run.
type Report struct {
	Strategy Strategy
	Degree   dir.Degree

	// Output is the program's observable output (must agree across
	// strategies).
	Output []int64
	// Instructions is the number of DIR instructions interpreted.
	Instructions int64

	// Cycle breakdown, in level-1 cycle units.
	FetchCycles     memory.Cycles // instruction fetches from L2, cache and DTB
	DecodeCycles    memory.Cycles // DIR field extraction and code-tree walks
	TranslateCycles memory.Cycles // PSDER generation and installation (DTB only)
	SemanticCycles  memory.Cycles // IU1 + IU2 execution of the semantics
	TotalCycles     memory.Cycles

	// PerInstruction is TotalCycles / Instructions — directly comparable to
	// the paper's T values.
	PerInstruction float64

	// Structure sizes.
	StaticBits       int // encoded DIR program size
	CodebookBits     int // decoder tables (part of the interpreter)
	InterpreterWords int // semantic routine library footprint (level 1)
	ExpandedWords    int // full PSDER expansion (only for Expanded strategy)
	CompiledWords    int // native closure-code footprint (only for Compiled strategy)

	Measured   Measured
	DTBStats   dtb.Stats
	CacheStats cache.Stats
	Memory     memory.Stats

	// Derived reports that this report was derived from the shared execution
	// trace (Replayer.Derive) rather than produced by a full simulation.  It
	// is the only field the two paths may differ on — DiffReports compares
	// every other field exactly.
	Derived bool
}

// Clone returns a deep copy of the report.  Replayer.Replay returns a report
// owned by the Replayer and overwritten by the next Replay; callers that hand
// the Replayer back to a pool (or replay again) while keeping the report must
// clone it first.
func (r *Report) Clone() *Report {
	c := *r
	c.Output = slices.Clone(r.Output)
	return &c
}

// Errors.
var (
	// ErrInstructionLimit is returned when the run exceeds MaxInstructions.
	ErrInstructionLimit = errors.New("sim: instruction limit exceeded")
	// ErrOutputMismatch is returned by RunAll when strategies disagree.
	ErrOutputMismatch = errors.New("sim: strategies produced different output")
)

// Run executes the program under the given strategy.  It predecodes the
// program first; callers running several strategies or sweeps over the same
// program should Predecode once themselves and use RunPredecoded.
func Run(p *dir.Program, strategy Strategy, cfg Config) (*Report, error) {
	if !strategy.Valid() {
		return nil, fmt.Errorf("sim: invalid strategy %d", int(strategy))
	}
	pp, err := Predecode(p, cfg.Degree)
	if err != nil {
		return nil, err
	}
	return RunPredecoded(pp, strategy, cfg)
}

// RunPredecoded executes a predecoded program under the given strategy.  The
// predecoded program is only read, so any number of RunPredecoded calls may
// share one instance concurrently.  cfg.Degree must match the degree the
// program was predecoded at, since the reported costs were measured on that
// binary.
func RunPredecoded(pp *PredecodedProgram, strategy Strategy, cfg Config) (*Report, error) {
	r, err := NewReplayer(pp, strategy, cfg)
	if err != nil {
		return nil, err
	}
	return r.Replay()
}

// Replayer runs one predecoded program under one strategy any number of
// times.  Every structure a run needs — the memory hierarchy and its
// segments, the DTB or cache, the host machine, the report — is allocated
// once by NewReplayer; Replay resets and reuses them, so the steady-state
// replay loop allocates nothing.  Sweeps that re-run the same configuration
// (repeated rounds, measurement loops) use a Replayer; one-shot callers use
// RunPredecoded, which is a NewReplayer + Replay pair.
//
// A Replayer is not safe for concurrent use; concurrent runs should each
// construct their own (the predecoded program itself is safely shared).
type Replayer struct {
	cfg      Config
	strategy Strategy
	pp       *PredecodedProgram

	hier    *memory.Hierarchy
	dirSeg  *memory.Segment
	buf     *dtb.DTB
	icache  *cache.Cache
	machine *host.Machine

	// Compiled-strategy structures: the shared immutable compiled program
	// and this Replayer's private run-time state.
	compiled *dir.CompiledProgram
	cstate   *dir.MachineState

	base   Report // setup-time report fields, copied into report by Replay
	report Report
}

// NewReplayer validates the configuration and builds every structure the
// replay loop needs.
func NewReplayer(pp *PredecodedProgram, strategy Strategy, cfg Config) (*Replayer, error) {
	if !strategy.Valid() {
		return nil, fmt.Errorf("sim: invalid strategy %d", int(strategy))
	}
	if cfg.Degree != pp.Degree() {
		return nil, fmt.Errorf("sim: config degree %v does not match predecoded degree %v",
			cfg.Degree, pp.Degree())
	}
	cfg = cfg.Normalize()
	r := &Replayer{cfg: cfg, strategy: strategy, pp: pp}

	p, bin := pp.Program, pp.Binary
	hier, err := memory.New(cfg.Memory)
	if err != nil {
		return nil, err
	}
	r.hier = hier

	// Level-2 segment holding the static DIR representation, rounded up to a
	// whole number of words so the final partially-filled word is readable.
	dirBytes := (bin.SizeBytes() + memory.WordBytes - 1) / memory.WordBytes * memory.WordBytes
	dirSeg, err := hier.Allocate(memory.Level2, "dir-program", max(dirBytes, memory.WordBytes))
	if err != nil {
		return nil, err
	}
	if err := dirSeg.Load(0, bin.Bytes()); err != nil {
		return nil, err
	}
	r.dirSeg = dirSeg
	// Level-1 segment holding the interpreter: the semantic-routine library
	// plus the decoder's tables.  The compiled organisation carries neither —
	// the routines are compiled into its native code (counted by
	// CompiledWords) and nothing is decoded at run time — so it allocates no
	// interpreter segment and reports no interpreter footprint.
	if strategy != Compiled {
		interpBytes := psder.LibraryFootprintWords()*memory.WordBytes + (bin.CodebookBits()+7)/8
		if _, err := hier.Allocate(memory.Level1, "interpreter", interpBytes); err != nil {
			return nil, err
		}
	}

	r.base = Report{
		Strategy:     strategy,
		Degree:       cfg.Degree,
		StaticBits:   bin.SizeBits(),
		CodebookBits: bin.CodebookBits(),
	}
	if strategy != Compiled {
		r.base.InterpreterWords = psder.LibraryFootprintWords()
	}

	switch strategy {
	case WithDTB:
		r.buf, err = dtb.New(cfg.DTB)
		if err != nil {
			return nil, err
		}
		// The buffer array occupies level-1 memory.
		if _, err := hier.Allocate(memory.Level1, "dtb-buffer", cfg.DTB.CapacityBytes()); err != nil {
			return nil, err
		}
	case WithCache:
		r.icache, err = cache.New(cfg.Cache)
		if err != nil {
			return nil, err
		}
		if _, err := hier.Allocate(memory.Level1, "cache-data", cfg.Cache.CapacityBytes); err != nil {
			return nil, err
		}
	case Expanded:
		r.base.ExpandedWords = pp.ExpandedWords()
	case Compiled:
		comp, err := pp.Compiled()
		if err != nil {
			return nil, err
		}
		r.compiled = comp
		r.cstate = dir.NewMachineState(p)
		r.base.CompiledWords = comp.FootprintWords()
		// The compiled strategy executes native closures over the shared
		// run-time state directly; it needs no host machine.
		return r, nil
	}

	r.machine = host.New(p, host.Options{MaxDepth: cfg.MaxDepth})
	return r, nil
}

// Replay runs the program once, reusing every structure built by NewReplayer.
// The returned report (and its Output slice) is owned by the Replayer and
// overwritten by the next Replay; callers that keep it across replays must
// copy it.
func (r *Replayer) Replay() (*Report, error) {
	r.hier.ResetStats()
	if r.machine != nil {
		r.machine.Reset()
	}
	if r.cstate != nil {
		r.cstate.Reset()
	}
	if r.buf != nil {
		r.buf.Reset()
	}
	if r.icache != nil {
		r.icache.Reset()
	}
	r.report = r.base
	if err := r.run(); err != nil {
		return nil, err
	}
	return &r.report, nil
}

// run is the replay loop proper.
func (r *Replayer) run() error {
	if r.strategy == Compiled {
		return r.runCompiled()
	}
	p := r.pp.Program
	bin := r.pp.Binary
	hier, dirSeg := r.hier, r.dirSeg
	buf, icache, machine := r.buf, r.icache, r.machine
	report := &r.report

	var decodeSteps, decodedInstrs int64
	var translateOps, translations int64
	var psderWordsFetched, l2Fetches int64

	pc := p.Procs[0].Entry
	for {
		if report.Instructions >= r.cfg.MaxInstructions {
			return fmt.Errorf("%w (%d)", ErrInstructionLimit, r.cfg.MaxInstructions)
		}
		report.Instructions++

		seq := r.pp.Sequence(pc)
		switch r.strategy {
		case Conventional:
			words, err := r.fetchFromLevel2(dirSeg, bin, pc, nil)
			if err != nil {
				return err
			}
			report.FetchCycles += words
			l2Fetches++
			// Decode and dispatch: the predecoded cost of this pc, charged on
			// every execution as the interpreter would pay it.
			steps := r.pp.DecodeCost(pc).Steps
			decodeSteps += int64(steps)
			decodedInstrs++
			report.DecodeCycles += memory.Cycles(steps)

		case WithCache:
			words, err := r.fetchFromLevel2(dirSeg, bin, pc, icache)
			if err != nil {
				return err
			}
			report.FetchCycles += words
			l2Fetches++
			steps := r.pp.DecodeCost(pc).Steps
			decodeSteps += int64(steps)
			decodedInstrs++
			report.DecodeCycles += memory.Cycles(steps)

		case WithDTB:
			words, hit := buf.LookupLen(uint64(pc))
			if hit {
				// Fetch the PSDER version from the buffer array (s1 refs at
				// tD).  The resident words are this pc's translation, so the
				// shared predecoded sequence is dispatched directly.
				report.FetchCycles += hier.ChargeBuffer(int64(words))
				psderWordsFetched += int64(words)
			} else {
				// Miss: trap through DTRPOINT to the dynamic translation
				// routine (Figure 4): fetch the DIR instruction from level 2,
				// decode it, generate the PSDER translation and store it in
				// the DTB, then execute it.
				w2, err := r.fetchFromLevel2(dirSeg, bin, pc, nil)
				if err != nil {
					return err
				}
				report.FetchCycles += w2
				l2Fetches++
				steps := r.pp.DecodeCost(pc).Steps
				decodeSteps += int64(steps)
				decodedInstrs++
				report.DecodeCycles += memory.Cycles(steps)

				encoded := r.pp.EncodedWords(pc)
				// Generation: one cycle per emitted word; storing: one
				// buffer-array write per word.
				genCycles := memory.Cycles(len(encoded))
				storeCycles := hier.ChargeBuffer(int64(len(encoded)))
				report.TranslateCycles += genCycles + storeCycles
				translateOps += int64(genCycles + storeCycles)
				translations++
				if _, err := buf.Install(uint64(pc), encoded); err != nil &&
					!errors.Is(err, dtb.ErrTooLarge) && !errors.Is(err, dtb.ErrNoOverflow) {
					return err
				}
				// Fetch the freshly installed translation from the buffer
				// array, as the INTERP hit path would.
				report.FetchCycles += hier.ChargeBuffer(int64(len(encoded)))
				psderWordsFetched += int64(len(encoded))
			}

		case Expanded:
			// The expanded representation lives in level 2: one reference
			// per PSDER word.
			report.FetchCycles += memory.Cycles(seq.Words()) * r.cfg.Memory.Level2Time
			psderWordsFetched += int64(seq.Words())
		}

		res, err := machine.ExecSequence(seq)
		if err != nil {
			return fmt.Errorf("sim: pc %d (%s): %w", pc, p.Instrs[pc], err)
		}
		report.SemanticCycles += memory.Cycles(res.SemanticCycles)
		if res.Halted {
			break
		}
		pc = res.NextPC
	}

	report.Output = machine.Output()
	report.Memory = hier.Stats()
	if buf != nil {
		report.DTBStats = buf.Stats()
		report.Measured.HD = buf.Stats().HitRatio()
	}
	if icache != nil {
		report.CacheStats = icache.Stats()
		report.Measured.HC = icache.Stats().HitRatio()
	}
	report.TotalCycles = report.FetchCycles + report.DecodeCycles + report.TranslateCycles + report.SemanticCycles
	if report.Instructions > 0 {
		report.PerInstruction = float64(report.TotalCycles) / float64(report.Instructions)
		report.Measured.X = float64(report.SemanticCycles) / float64(report.Instructions)
	}
	if decodedInstrs > 0 {
		report.Measured.D = float64(decodeSteps) / float64(decodedInstrs)
	}
	if translations > 0 {
		report.Measured.G = float64(translateOps) / float64(translations)
	}
	if report.Instructions > 0 && psderWordsFetched > 0 {
		report.Measured.S1 = float64(psderWordsFetched) / float64(report.Instructions)
	}
	// Every level-2 reference in this simulation is a DIR instruction word
	// fetch, so S2 falls straight out of the memory statistics.
	if l2Fetches > 0 {
		report.Measured.S2 = float64(report.Memory.Level2Refs) / float64(l2Fetches)
	}
	return nil
}

// runCompiled is the replay loop of the Compiled organisation.  The program
// was lowered once to direct-threaded closures (dir.Compile), so the loop
// performs no fetch-decode-translate work at all: dir.CompiledProgram.Run
// retires instructions and accumulates the native cost accounting, and this
// wrapper converts it to the report's cycle categories.  Native code is
// resident in level-1 memory; each compiled op dispatched is charged one
// level-1 reference through the hierarchy (a fused superinstruction is a
// single fetch — binding two DIR instructions into one native dispatch is
// exactly what fusion buys), so Report.Memory agrees with the cycle
// breakdown.  Like the expanded organisation's PSDER image, the native code
// is not byte-materialised in a segment; its footprint is reported as
// CompiledWords.  Decode and translate cycles are zero by construction.
func (r *Replayer) runCompiled() error {
	report := &r.report
	stats, err := r.compiled.Run(r.cstate, r.cfg.MaxInstructions, r.cfg.MaxDepth)
	if err != nil {
		if errors.Is(err, dir.ErrStepLimit) {
			return fmt.Errorf("%w (%d)", ErrInstructionLimit, r.cfg.MaxInstructions)
		}
		return fmt.Errorf("sim: %w", err)
	}
	report.Instructions = stats.Instructions
	report.FetchCycles = r.hier.ChargeLevel1(stats.Fetches)
	report.SemanticCycles = memory.Cycles(stats.SemanticCost)
	report.Output = r.cstate.Output()
	report.Memory = r.hier.Stats()
	report.TotalCycles = report.FetchCycles + report.SemanticCycles
	if report.Instructions > 0 {
		report.PerInstruction = float64(report.TotalCycles) / float64(report.Instructions)
		report.Measured.X = float64(report.SemanticCycles) / float64(report.Instructions)
	}
	return nil
}

// fetchFromLevel2 charges the cost of fetching the encoded DIR instruction at
// index pc.  When icache is non-nil each touched word goes through the cache:
// a hit costs a buffer access, a miss costs a level-2 access.  The returned
// value is the cycles charged.
func (r *Replayer) fetchFromLevel2(seg *memory.Segment, bin *dir.Binary, pc int, icache *cache.Cache) (memory.Cycles, error) {
	offset, length, err := bin.InstrBitRange(pc)
	if err != nil {
		return 0, err
	}
	if length == 0 {
		length = 1
	}
	firstWord := offset / (memory.WordBytes * 8)
	lastWord := (offset + length - 1) / (memory.WordBytes * 8)
	var total memory.Cycles
	for w := firstWord; w <= lastWord; w++ {
		if icache != nil {
			addr := uint64(w * memory.WordBytes)
			if icache.Access(addr) {
				// Cache hit: served at buffer speed.
				total += r.cfg.Memory.BufferTime
				continue
			}
		}
		_, cycles, err := seg.ReadWord(w)
		if err != nil {
			return total, err
		}
		total += cycles
	}
	return total, nil
}

// RunAll runs every strategy on the same program and verifies that all of
// them produce identical output (they share the semantic-routine library, so
// anything else is a bug).  Reports are returned in Strategies() order.  The
// program is predecoded once and shared by every strategy.
func RunAll(p *dir.Program, cfg Config) ([]*Report, error) {
	pp, err := Predecode(p, cfg.Degree)
	if err != nil {
		return nil, err
	}
	return RunAllPredecoded(pp, cfg)
}

// RunAllPredecoded runs every strategy on one shared predecoded program and
// verifies that all of them produce identical output.  Reports are returned
// in Strategies() order.
func RunAllPredecoded(pp *PredecodedProgram, cfg Config) ([]*Report, error) {
	var reports []*Report
	for _, s := range Strategies() {
		rep, err := RunPredecoded(pp, s, cfg)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", s, err)
		}
		reports = append(reports, rep)
	}
	if err := VerifyOutputs(reports); err != nil {
		return reports, err
	}
	return reports, nil
}

// VerifyOutputs checks that every report produced the same program output as
// the first, returning ErrOutputMismatch otherwise.
func VerifyOutputs(reports []*Report) error {
	if len(reports) == 0 {
		return nil
	}
	for _, rep := range reports[1:] {
		if !slices.Equal(rep.Output, reports[0].Output) {
			return fmt.Errorf("%w: %v produced %v, %v produced %v",
				ErrOutputMismatch, reports[0].Strategy, reports[0].Output, rep.Strategy, rep.Output)
		}
	}
	return nil
}
