package sim

import (
	"reflect"
	"testing"

	"uhm/internal/compile"
	"uhm/internal/dir"
	"uhm/internal/workload"
)

// TestReplayerMatchesRunPredecoded holds replayed runs to the one-shot path:
// every Replay of a reused Replayer must produce a report identical to a
// fresh RunPredecoded of the same configuration, for every strategy and
// encoding degree.  This is what makes the zero-allocation reuse safe: a
// reset Replayer is observationally indistinguishable from a new one.
func TestReplayerMatchesRunPredecoded(t *testing.T) {
	for _, wl := range []string{"loopsum", "fib"} {
		p := workload.MustCompileAt(wl, compile.LevelStack)
		for _, degree := range dir.Degrees() {
			cfg := DefaultConfig()
			cfg.Degree = degree
			pp, err := Predecode(p, degree)
			if err != nil {
				t.Fatalf("%s/%v: %v", wl, degree, err)
			}
			for _, strategy := range Strategies() {
				rep, err := NewReplayer(pp, strategy, cfg)
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", wl, degree, strategy, err)
				}
				want, err := RunPredecoded(pp, strategy, cfg)
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", wl, degree, strategy, err)
				}
				for round := 0; round < 3; round++ {
					got, err := rep.Replay()
					if err != nil {
						t.Fatalf("%s/%v/%v round %d: %v", wl, degree, strategy, round, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%v/%v round %d: replayed report diverges\n got %+v\nwant %+v",
							wl, degree, strategy, round, got, want)
					}
				}
			}
		}
	}
}

// TestReplayAllocatesOnlyAtSetup asserts the tentpole property: once a
// Replayer is warm, a 50-round replay performs zero heap allocations, for
// every strategy.
func TestReplayAllocatesOnlyAtSetup(t *testing.T) {
	p := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := DefaultConfig()
	pp, err := Predecode(p, cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range Strategies() {
		rep, err := NewReplayer(pp, strategy, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Warm up: the first rounds grow stacks, frame pools and map tables
		// to their steady-state footprint.
		for i := 0; i < 2; i++ {
			if _, err := rep.Replay(); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := rep.Replay(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: steady-state replay allocates %.1f objects per run, want 0", strategy, allocs)
		}
	}
}
