// Trace-derived cost reports: the "cost many" half of the trace-once/
// cost-many split.  A Replayer.run interleaves semantic execution with cost
// charging because the cost models need the dynamic pc stream; Derive gets
// the same stream from the shared recorded trace (internal/trace) and runs
// only the cost models — the DTB and cache state machines and the per-pc
// fetch, decode and translate costs recorded by predecode.  Every derived
// report is field-for-field equal to the fully simulated one: the state
// machines are the same objects the live loop drives, the arithmetic is the
// same integer arithmetic, and any run the trace cannot answer exactly
// (recording failed, or the trace exceeds this configuration's bounds) is
// declined with ErrNoTrace so the caller falls back to full simulation.
package sim

import (
	"errors"
	"fmt"

	"uhm/internal/dtb"
	"uhm/internal/faultinject"
	"uhm/internal/memory"
)

// ErrNoTrace reports that a derived report cannot be produced for this
// program and configuration; callers fall back to full simulation (which
// ReplayDerived does automatically).
var ErrNoTrace = errors.New("sim: no usable execution trace")

// RunDerived produces the report for one predecoded program and strategy from
// the shared execution trace, falling back to full simulation when the trace
// cannot answer exactly.  It is the one-shot form of ReplayDerived.
func RunDerived(pp *PredecodedProgram, strategy Strategy, cfg Config) (*Report, error) {
	r, err := NewReplayer(pp, strategy, cfg)
	if err != nil {
		return nil, err
	}
	return r.ReplayDerived()
}

// ReplayDerived returns the trace-derived report when the trace can answer
// exactly, and falls back to a full Replay otherwise.  Like Replay, the
// returned report is owned by the Replayer and overwritten by the next run.
func (r *Replayer) ReplayDerived() (*Report, error) {
	rep, err := r.Derive()
	if err == nil {
		return rep, nil
	}
	if !errors.Is(err, ErrNoTrace) {
		return nil, err
	}
	return r.Replay()
}

// Derive streams the recorded execution trace through this Replayer's cost
// model and returns the resulting report, marked Derived.  No semantics run:
// the host machine and compiled run-time state are untouched.  Derive errors
// with ErrNoTrace when the recording failed or the trace falls outside this
// configuration's instruction or depth bounds — by the bounds-equivalence
// argument (the limit checks compare the same counts the trace records), the
// live fallback then reproduces exactly what full simulation would do,
// success or error.
func (r *Replayer) Derive() (*Report, error) {
	if ferr := faultinject.Fire(faultinject.SiteDerive); ferr != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoTrace, ferr)
	}
	tr, err := r.pp.Trace()
	if err != nil {
		return nil, fmt.Errorf("%w: recording failed: %v", ErrNoTrace, err)
	}
	if tr.Instructions() > r.cfg.MaxInstructions {
		return nil, fmt.Errorf("%w: trace has %d instructions, limit %d",
			ErrNoTrace, tr.Instructions(), r.cfg.MaxInstructions)
	}
	if tr.PeakDepth > r.cfg.MaxDepth {
		return nil, fmt.Errorf("%w: trace peak depth %d, limit %d",
			ErrNoTrace, tr.PeakDepth, r.cfg.MaxDepth)
	}
	if r.strategy == Compiled && !tr.HasCompiled {
		return nil, fmt.Errorf("%w: trace was not recorded on the compiled backend", ErrNoTrace)
	}

	r.report = r.base
	report := &r.report
	report.Derived = true
	report.Output = tr.Output
	t1 := r.cfg.Memory.Level1Time
	t2 := r.cfg.Memory.Level2Time
	tD := r.cfg.Memory.BufferTime

	if r.strategy == Compiled {
		// The recorded backend statistics are the run: instructions retired,
		// native fetches (one level-1 reference each) and semantic cost.
		st := tr.Compiled
		report.Instructions = st.Instructions
		report.FetchCycles = memory.Cycles(st.Fetches) * t1
		report.SemanticCycles = memory.Cycles(st.SemanticCost)
		report.Memory = memory.Stats{Level1Refs: st.Fetches, Level1Time: memory.Cycles(st.Fetches) * t1}
		report.TotalCycles = report.FetchCycles + report.SemanticCycles
		if report.Instructions > 0 {
			report.PerInstruction = float64(report.TotalCycles) / float64(report.Instructions)
			report.Measured.X = float64(report.SemanticCycles) / float64(report.Instructions)
		}
		return report, nil
	}

	report.Instructions = tr.Instructions()
	report.SemanticCycles = memory.Cycles(tr.SemanticCycles)

	// Per-strategy cost streamers.  Each mirrors its arm of Replayer.run
	// exactly — same state machines, same per-pc tables, same integer
	// arithmetic — minus the semantic execution the trace already paid for.
	var decodeSteps, decodedInstrs int64
	var translateOps, translations int64
	var psderWordsFetched, l2Fetches int64
	var l2Words, bufferRefs int64

	switch r.strategy {
	case Conventional:
		for _, pc := range tr.PCs {
			l2Words += int64(r.pp.fetchWords[pc])
			decodeSteps += int64(r.pp.costs[pc].Steps)
		}
		decodedInstrs = report.Instructions
		l2Fetches = report.Instructions
		report.FetchCycles = memory.Cycles(l2Words) * t2
		report.DecodeCycles = memory.Cycles(decodeSteps)

	case WithCache:
		r.icache.Reset()
		var hits, misses int64
		for _, pc := range tr.PCs {
			first := int(r.pp.fetchFirst[pc])
			h, m := r.icache.ChargeSpan(first, first+int(r.pp.fetchWords[pc])-1, memory.WordBytes)
			hits += int64(h)
			misses += int64(m)
			decodeSteps += int64(r.pp.costs[pc].Steps)
		}
		decodedInstrs = report.Instructions
		l2Fetches = report.Instructions
		l2Words = misses
		report.FetchCycles = memory.Cycles(hits)*tD + memory.Cycles(misses)*t2
		report.DecodeCycles = memory.Cycles(decodeSteps)

	case WithDTB:
		r.buf.Reset()
		for _, pc := range tr.PCs {
			words, hit := r.buf.LookupLen(uint64(pc))
			if hit {
				report.FetchCycles += memory.Cycles(words) * tD
				bufferRefs += int64(words)
				psderWordsFetched += int64(words)
				continue
			}
			w := int64(r.pp.fetchWords[pc])
			l2Words += w
			l2Fetches++
			report.FetchCycles += memory.Cycles(w) * t2
			decodeSteps += int64(r.pp.costs[pc].Steps)
			decodedInstrs++
			enc := int64(len(r.pp.encoded[pc]))
			genCycles := memory.Cycles(enc)
			storeCycles := memory.Cycles(enc) * tD
			report.TranslateCycles += genCycles + storeCycles
			translateOps += int64(genCycles + storeCycles)
			translations++
			if _, err := r.buf.InstallLen(uint64(pc), int(enc)); err != nil &&
				!errors.Is(err, dtb.ErrTooLarge) && !errors.Is(err, dtb.ErrNoOverflow) {
				return nil, err
			}
			// Store into the buffer array, then fetch the fresh translation
			// back out, exactly as the live miss path charges it.
			bufferRefs += 2 * enc
			report.FetchCycles += memory.Cycles(enc) * tD
			psderWordsFetched += enc
		}
		report.DecodeCycles = memory.Cycles(decodeSteps)

	case Expanded:
		var words int64
		for _, pc := range tr.PCs {
			words += int64(len(r.pp.seqs[pc]))
		}
		psderWordsFetched = words
		report.FetchCycles = memory.Cycles(words) * t2
	}

	// The closing accounting of Replayer.run, with the memory statistics
	// reconstructed from the same reference counts the hierarchy would have
	// accumulated (the live loop's only charges are level-2 instruction words
	// and DTB buffer references).
	report.Memory = memory.Stats{
		Level2Refs: l2Words,
		Level2Time: memory.Cycles(l2Words) * t2,
		BufferRefs: bufferRefs,
		BufferTime: memory.Cycles(bufferRefs) * tD,
	}
	if r.buf != nil {
		report.DTBStats = r.buf.Stats()
		report.Measured.HD = r.buf.Stats().HitRatio()
	}
	if r.icache != nil {
		report.CacheStats = r.icache.Stats()
		report.Measured.HC = r.icache.Stats().HitRatio()
	}
	report.TotalCycles = report.FetchCycles + report.DecodeCycles + report.TranslateCycles + report.SemanticCycles
	if report.Instructions > 0 {
		report.PerInstruction = float64(report.TotalCycles) / float64(report.Instructions)
		report.Measured.X = float64(report.SemanticCycles) / float64(report.Instructions)
	}
	if decodedInstrs > 0 {
		report.Measured.D = float64(decodeSteps) / float64(decodedInstrs)
	}
	if translations > 0 {
		report.Measured.G = float64(translateOps) / float64(translations)
	}
	if report.Instructions > 0 && psderWordsFetched > 0 {
		report.Measured.S1 = float64(psderWordsFetched) / float64(report.Instructions)
	}
	if l2Fetches > 0 {
		report.Measured.S2 = float64(report.Memory.Level2Refs) / float64(l2Fetches)
	}
	return report, nil
}

// DiffReports compares two reports field for field — every cost, statistic
// and measured parameter except the Derived marker itself — and returns a
// human-readable description of the differences, or "" when they are equal.
// It is the equality the tentpole promises: derived == simulated, exactly.
func DiffReports(a, b *Report) string {
	var diffs []string
	add := func(field string, av, bv any) {
		diffs = append(diffs, fmt.Sprintf("%s: %v != %v", field, av, bv))
	}
	if a.Strategy != b.Strategy {
		add("Strategy", a.Strategy, b.Strategy)
	}
	if a.Degree != b.Degree {
		add("Degree", a.Degree, b.Degree)
	}
	if !int64SlicesEqual(a.Output, b.Output) {
		add("Output", a.Output, b.Output)
	}
	if a.Instructions != b.Instructions {
		add("Instructions", a.Instructions, b.Instructions)
	}
	if a.FetchCycles != b.FetchCycles {
		add("FetchCycles", a.FetchCycles, b.FetchCycles)
	}
	if a.DecodeCycles != b.DecodeCycles {
		add("DecodeCycles", a.DecodeCycles, b.DecodeCycles)
	}
	if a.TranslateCycles != b.TranslateCycles {
		add("TranslateCycles", a.TranslateCycles, b.TranslateCycles)
	}
	if a.SemanticCycles != b.SemanticCycles {
		add("SemanticCycles", a.SemanticCycles, b.SemanticCycles)
	}
	if a.TotalCycles != b.TotalCycles {
		add("TotalCycles", a.TotalCycles, b.TotalCycles)
	}
	if a.PerInstruction != b.PerInstruction {
		add("PerInstruction", a.PerInstruction, b.PerInstruction)
	}
	if a.StaticBits != b.StaticBits {
		add("StaticBits", a.StaticBits, b.StaticBits)
	}
	if a.CodebookBits != b.CodebookBits {
		add("CodebookBits", a.CodebookBits, b.CodebookBits)
	}
	if a.InterpreterWords != b.InterpreterWords {
		add("InterpreterWords", a.InterpreterWords, b.InterpreterWords)
	}
	if a.ExpandedWords != b.ExpandedWords {
		add("ExpandedWords", a.ExpandedWords, b.ExpandedWords)
	}
	if a.CompiledWords != b.CompiledWords {
		add("CompiledWords", a.CompiledWords, b.CompiledWords)
	}
	if a.Measured != b.Measured {
		add("Measured", a.Measured, b.Measured)
	}
	if a.DTBStats != b.DTBStats {
		add("DTBStats", a.DTBStats, b.DTBStats)
	}
	if a.CacheStats != b.CacheStats {
		add("CacheStats", a.CacheStats, b.CacheStats)
	}
	if a.Memory != b.Memory {
		add("Memory", a.Memory, b.Memory)
	}
	if len(diffs) == 0 {
		return ""
	}
	result := diffs[0]
	for _, d := range diffs[1:] {
		result += "; " + d
	}
	return result
}

func int64SlicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
