package sim

import (
	"errors"
	"testing"

	"uhm/internal/compile"
	"uhm/internal/dir"
	"uhm/internal/workload"
)

// TestDeriveMatchesReplay is the tentpole's exactness claim: for every
// workload, encoding degree and strategy, the report derived from the shared
// execution trace equals the fully simulated report in every field except the
// Derived marker.
func TestDeriveMatchesReplay(t *testing.T) {
	for _, wl := range []string{"loopsum", "fib", "sieve", "callheavy"} {
		p := workload.MustCompileAt(wl, compile.LevelStack)
		for _, degree := range dir.Degrees() {
			cfg := DefaultConfig()
			cfg.Degree = degree
			pp, err := Predecode(p, degree)
			if err != nil {
				t.Fatalf("%s/%v: %v", wl, degree, err)
			}
			for _, strategy := range Strategies() {
				rep, err := NewReplayer(pp, strategy, cfg)
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", wl, degree, strategy, err)
				}
				simulated, err := rep.Replay()
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", wl, degree, strategy, err)
				}
				want := simulated.Clone()
				derived, err := rep.Derive()
				if err != nil {
					t.Fatalf("%s/%v/%v: Derive: %v", wl, degree, strategy, err)
				}
				if !derived.Derived {
					t.Errorf("%s/%v/%v: derived report not marked Derived", wl, degree, strategy)
				}
				if diff := DiffReports(derived, want); diff != "" {
					t.Errorf("%s/%v/%v: derived report diverges from simulation: %s",
						wl, degree, strategy, diff)
				}
			}
		}
	}
}

// TestDeriveIsRepeatable checks that deriving twice from the same Replayer
// (state machines reset per derivation) gives identical reports.
func TestDeriveIsRepeatable(t *testing.T) {
	p := workload.MustCompileAt("fib", compile.LevelStack)
	cfg := DefaultConfig()
	pp, err := Predecode(p, cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range Strategies() {
		rep, err := NewReplayer(pp, strategy, cfg)
		if err != nil {
			t.Fatal(err)
		}
		first, err := rep.Derive()
		if err != nil {
			t.Fatal(err)
		}
		want := first.Clone()
		second, err := rep.Derive()
		if err != nil {
			t.Fatal(err)
		}
		if diff := DiffReports(second, want); diff != "" {
			t.Errorf("%v: second derivation diverges: %s", strategy, diff)
		}
	}
}

// TestDeriveDeclinesOutOfBoundsTrace checks the decline rule: a configuration
// whose bounds the recorded trace exceeds must get ErrNoTrace (and
// ReplayDerived must fall back to full simulation, reproducing the live
// error or result exactly).
func TestDeriveDeclinesOutOfBoundsTrace(t *testing.T) {
	p := workload.MustCompileAt("fib", compile.LevelStack)
	cfg := DefaultConfig()
	cfg.MaxInstructions = 10 // far below the real run length
	pp, err := Predecode(p, cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplayer(pp, Conventional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Derive(); !errors.Is(err, ErrNoTrace) {
		t.Fatalf("Derive under a 10-instruction limit: got %v, want ErrNoTrace", err)
	}
	// The fallback must reproduce the live limit error.
	if _, err := rep.ReplayDerived(); !errors.Is(err, ErrInstructionLimit) {
		t.Fatalf("ReplayDerived fallback: got %v, want ErrInstructionLimit", err)
	}
}

// TestRunDerivedMatchesRunPredecoded pins the package-level helper to the
// simulated path across strategies.
func TestRunDerivedMatchesRunPredecoded(t *testing.T) {
	p := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := DefaultConfig()
	pp, err := Predecode(p, cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range Strategies() {
		want, err := RunPredecoded(pp, strategy, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunDerived(pp, strategy, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Derived {
			t.Errorf("%v: RunDerived fell back to simulation unexpectedly", strategy)
		}
		if diff := DiffReports(got, want); diff != "" {
			t.Errorf("%v: %s", strategy, diff)
		}
	}
}

// TestTraceFootprintAccounting checks the satellite's size-accounting claim:
// once the trace is recorded, FootprintBytes grows by exactly the trace's
// SizeBytes — so the service registry's eviction budget sees the cached trace.
func TestTraceFootprintAccounting(t *testing.T) {
	p := workload.MustCompileAt("loopsum", compile.LevelStack)
	pp, err := Predecode(p, dir.DegreeHuffman)
	if err != nil {
		t.Fatal(err)
	}
	before := pp.FootprintBytes()
	tr, err := pp.Trace()
	if err != nil {
		t.Fatal(err)
	}
	// The canonical execution prefers the compiled backend, which is built
	// (and charged) as a side effect; measure against the footprint after
	// compilation so the delta isolates the trace itself.
	comp, err := pp.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	afterCompile := before
	if comp != nil {
		afterCompile = pp.FootprintBytes() - tr.SizeBytes()
	}
	got := pp.FootprintBytes() - afterCompile
	if got != tr.SizeBytes() {
		t.Errorf("footprint grew by %d bytes after tracing, want trace SizeBytes %d", got, tr.SizeBytes())
	}
	wantSize := 64 + len(tr.PCs)*4 + len(tr.Output)*8
	if tr.SizeBytes() != wantSize {
		t.Errorf("SizeBytes = %d, want %d (64 + 4·%d PCs + 8·%d outputs)",
			tr.SizeBytes(), wantSize, len(tr.PCs), len(tr.Output))
	}
	// Recording again must not double-charge: Trace is cached.
	if _, err := pp.Trace(); err != nil {
		t.Fatal(err)
	}
	if pp.FootprintBytes() != afterCompile+tr.SizeBytes() {
		t.Errorf("second Trace() changed the footprint: %d != %d",
			pp.FootprintBytes(), afterCompile+tr.SizeBytes())
	}
}

// TestDeriveDoesNotAllocate pins the derived path to the same steady-state
// discipline as Replay: once the trace is recorded and the Replayer is warm,
// a derivation performs zero heap allocations.
func TestDeriveDoesNotAllocate(t *testing.T) {
	p := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := DefaultConfig()
	pp, err := Predecode(p, cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Trace(); err != nil {
		t.Fatal(err)
	}
	for _, strategy := range Strategies() {
		rep, err := NewReplayer(pp, strategy, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rep.Derive(); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := rep.Derive(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: steady-state Derive allocates %.1f objects per run, want 0", strategy, allocs)
		}
	}
}
