package sim

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"uhm/internal/compile"
	"uhm/internal/dir"
	"uhm/internal/translate"
	"uhm/internal/workload"
)

// TestPredecodeMatchesFreshDecode verifies the premise of the fast path: the
// predecoded sequences equal the full static translation, and the recorded
// costs equal what a fresh decoder measures, for every workload and degree.
func TestPredecodeMatchesFreshDecode(t *testing.T) {
	for _, name := range []string{"loopsum", "fib", "sieve", "callheavy"} {
		dp := workload.MustCompileAt(name, compile.LevelStack)
		want, err := translate.TranslateProgram(dp)
		if err != nil {
			t.Fatal(err)
		}
		for _, degree := range dir.Degrees() {
			pp, err := Predecode(dp, degree)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, degree, err)
			}
			if pp.NumInstrs() != len(dp.Instrs) {
				t.Fatalf("%s/%v: %d predecoded instrs, want %d", name, degree, pp.NumInstrs(), len(dp.Instrs))
			}
			dec := pp.Binary.NewDecoder()
			for pc := 0; pc < pp.NumInstrs(); pc++ {
				if !reflect.DeepEqual(pp.Sequence(pc), want[pc]) {
					t.Errorf("%s/%v pc %d: sequence %v, want %v", name, degree, pc, pp.Sequence(pc), want[pc])
				}
				_, cost, err := dec.Decode(pc)
				if err != nil {
					t.Fatal(err)
				}
				if pp.DecodeCost(pc) != cost {
					t.Errorf("%s/%v pc %d: cost %+v, want %+v", name, degree, pc, pp.DecodeCost(pc), cost)
				}
				enc, err := want[pc].Encode()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(pp.EncodedWords(pc), enc) {
					t.Errorf("%s/%v pc %d: encoded words differ", name, degree, pc)
				}
			}
		}
	}
}

// TestRunPredecodedSharedAcrossStrategies runs every strategy concurrently on
// one shared predecoded program and checks the reports equal fresh Run calls.
func TestRunPredecodedSharedAcrossStrategies(t *testing.T) {
	dp := workload.MustCompileAt("sieve", compile.LevelStack)
	cfg := smallConfig()
	pp, err := Predecode(dp, cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	strategies := Strategies()
	shared := make([]*Report, len(strategies))
	var wg sync.WaitGroup
	for i, s := range strategies {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := RunPredecoded(pp, s, cfg)
			if err != nil {
				t.Errorf("%v: %v", s, err)
				return
			}
			shared[i] = rep
		}()
	}
	wg.Wait()
	for i, s := range strategies {
		fresh, err := Run(dp, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if shared[i] == nil {
			t.Fatalf("%v: missing shared report", s)
		}
		if !reflect.DeepEqual(shared[i], fresh) {
			t.Errorf("%v: shared predecoded report differs from fresh run:\n%+v\n%+v", s, shared[i], fresh)
		}
	}
}

// TestRunPredecodedDegreeMismatch rejects a config whose degree disagrees
// with the predecoded binary.
func TestRunPredecodedDegreeMismatch(t *testing.T) {
	dp := workload.MustCompileAt("fib", compile.LevelStack)
	pp, err := Predecode(dp, dir.DegreePacked)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Degree = dir.DegreeHuffman
	if _, err := RunPredecoded(pp, Conventional, cfg); err == nil ||
		!strings.Contains(err.Error(), "does not match predecoded degree") {
		t.Fatalf("degree mismatch not rejected: %v", err)
	}
}
