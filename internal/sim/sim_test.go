package sim

import (
	"errors"
	"reflect"
	"testing"

	"uhm/internal/compile"
	"uhm/internal/dir"
	"uhm/internal/dtb"
	"uhm/internal/workload"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxInstructions = 5_000_000
	return cfg
}

func TestStrategyStrings(t *testing.T) {
	if len(Strategies()) != 5 {
		t.Fatalf("Strategies() = %v", Strategies())
	}
	names := map[Strategy]string{Conventional: "conventional", WithDTB: "dtb",
		WithCache: "cache", Expanded: "expanded", Compiled: "compiled"}
	for s, want := range names {
		if s.String() != want || !s.Valid() {
			t.Errorf("strategy %d: %q valid=%v", s, s.String(), s.Valid())
		}
	}
	if Strategy(9).Valid() || Strategy(9).String() == "" {
		t.Error("strategy 9 should be invalid but render")
	}
	if _, err := Run(workload.MustCompileAt("fib", compile.LevelStack), Strategy(9), smallConfig()); err == nil {
		t.Error("Run should reject invalid strategies")
	}
}

func TestAllStrategiesProduceReferenceOutput(t *testing.T) {
	for _, name := range []string{"loopsum", "fib", "sieve", "callheavy"} {
		want, err := workload.ReferenceOutput(name)
		if err != nil {
			t.Fatal(err)
		}
		dp := workload.MustCompileAt(name, compile.LevelStack)
		reports, err := RunAll(dp, smallConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, rep := range reports {
			if !reflect.DeepEqual(rep.Output, want) {
				t.Errorf("%s/%v: output = %v, want %v", name, rep.Strategy, rep.Output, want)
			}
			if rep.Instructions <= 0 || rep.TotalCycles <= 0 || rep.PerInstruction <= 0 {
				t.Errorf("%s/%v: empty report %+v", name, rep.Strategy, rep)
			}
		}
	}
}

func TestDTBOutperformsConventionalOnLoopyCode(t *testing.T) {
	// The paper's central claim: with expensive decoding (a heavily encoded
	// DIR) and loop-dominated code, the DTB organisation interprets faster
	// than both the conventional UHM and the cache organisation is not
	// required to beat, but the conventional machine must lose.
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := smallConfig()
	cfg.Degree = dir.DegreePair // heaviest encoding: largest d

	conv, err := Run(dp, Conventional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	withDTB, err := Run(dp, WithDTB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withDTB.PerInstruction >= conv.PerInstruction {
		t.Errorf("DTB per-instruction time %.2f should beat conventional %.2f",
			withDTB.PerInstruction, conv.PerInstruction)
	}
	if withDTB.Measured.HD < 0.9 {
		t.Errorf("loop-dominated code should give a high DTB hit ratio, got %v", withDTB.Measured.HD)
	}
	// Decoding only happens on misses, so far fewer decode cycles.
	if withDTB.DecodeCycles >= conv.DecodeCycles {
		t.Errorf("DTB decode cycles %d should be far below conventional %d",
			withDTB.DecodeCycles, conv.DecodeCycles)
	}
}

func TestCacheStrategyBeatsConventional(t *testing.T) {
	dp := workload.MustCompileAt("sieve", compile.LevelStack)
	cfg := smallConfig()
	conv, err := Run(dp, Conventional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Run(dp, WithCache, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cached.FetchCycles >= conv.FetchCycles {
		t.Errorf("cache fetch cycles %d should beat conventional %d", cached.FetchCycles, conv.FetchCycles)
	}
	if cached.Measured.HC < 0.8 {
		t.Errorf("instruction cache hit ratio = %v, expected high locality", cached.Measured.HC)
	}
	// Both still decode every instruction.
	if cached.DecodeCycles != conv.DecodeCycles {
		t.Errorf("cache and conventional must decode the same amount: %d vs %d",
			cached.DecodeCycles, conv.DecodeCycles)
	}
}

func TestExpandedHasNoDecodeButLargeRepresentation(t *testing.T) {
	dp := workload.MustCompileAt("fib", compile.LevelStack)
	cfg := smallConfig()
	exp, err := Run(dp, Expanded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exp.DecodeCycles != 0 || exp.TranslateCycles != 0 {
		t.Errorf("expanded strategy should not decode or translate: %+v", exp)
	}
	if exp.ExpandedWords*32 <= exp.StaticBits {
		t.Errorf("the expanded representation (%d bits) should dwarf the encoded DIR (%d bits)",
			exp.ExpandedWords*32, exp.StaticBits)
	}
	conv, err := Run(dp, Conventional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if conv.ExpandedWords != 0 {
		t.Error("conventional report should not populate ExpandedWords")
	}
}

func TestMeasuredParametersPlausible(t *testing.T) {
	dp := workload.MustCompileAt("sieve", compile.LevelStack)
	cfg := smallConfig()
	cfg.Degree = dir.DegreeHuffman
	rep, err := Run(dp, WithDTB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Measured
	if m.D <= 0 || m.G <= 0 || m.X <= 0 || m.S1 <= 0 || m.S2 <= 0 {
		t.Fatalf("measured parameters should be positive: %+v", m)
	}
	if m.HD <= 0 || m.HD > 1 {
		t.Errorf("hit ratio = %v", m.HD)
	}
	// The dynamic (PSDER) form of an instruction is longer than its encoded
	// static form, which is the premise s1 = 3 s2 rests on.
	if m.S1 <= m.S2 {
		t.Errorf("s1 (%v) should exceed s2 (%v)", m.S1, m.S2)
	}
}

func TestDegreeAffectsDecodeCost(t *testing.T) {
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := smallConfig()
	cfg.Degree = dir.DegreePacked
	packed, err := Run(dp, Conventional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Degree = dir.DegreePair
	pair, err := Run(dp, Conventional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Measured.D <= packed.Measured.D {
		t.Errorf("pair-encoded decode cost (%v) should exceed packed (%v)", pair.Measured.D, packed.Measured.D)
	}
	if pair.StaticBits >= packed.StaticBits {
		t.Errorf("pair-encoded size (%d bits) should be below packed (%d bits)", pair.StaticBits, packed.StaticBits)
	}
}

func TestTinyDTBThrashes(t *testing.T) {
	dp := workload.MustCompileAt("sieve", compile.LevelStack)
	big := smallConfig()
	small := smallConfig()
	small.DTB = dtb.Config{Entries: 4, Assoc: 2, UnitWords: 4, Policy: dtb.VariableOverflow, OverflowUnits: 8}
	bigRep, err := Run(dp, WithDTB, big)
	if err != nil {
		t.Fatal(err)
	}
	smallRep, err := Run(dp, WithDTB, small)
	if err != nil {
		t.Fatal(err)
	}
	if smallRep.Measured.HD >= bigRep.Measured.HD {
		t.Errorf("a tiny DTB (h=%v) should have a lower hit ratio than the default (h=%v)",
			smallRep.Measured.HD, bigRep.Measured.HD)
	}
	if smallRep.PerInstruction <= bigRep.PerInstruction {
		t.Errorf("a tiny DTB (%v cycles/instr) should be slower than the default (%v)",
			smallRep.PerInstruction, bigRep.PerInstruction)
	}
}

func TestInstructionLimit(t *testing.T) {
	dp := workload.MustCompileAt("sieve", compile.LevelStack)
	cfg := smallConfig()
	cfg.MaxInstructions = 50
	if _, err := Run(dp, Conventional, cfg); !errors.Is(err, ErrInstructionLimit) {
		t.Errorf("err = %v, want ErrInstructionLimit", err)
	}
}

func TestSemanticCyclesIdenticalAcrossStrategies(t *testing.T) {
	// The four interpreted strategies execute the same semantic routines, so
	// x is common — the paper's assumption that "overlap between operand
	// fetch and other computation ... is common to all strategies".  The
	// compiled organisation is the exception by design: its native code has
	// the IU2 issue and binding overhead compiled away, so its x must be
	// strictly smaller.  Instruction counts still agree everywhere.
	dp := workload.MustCompileAt("fib", compile.LevelStack)
	reports, err := RunAll(dp, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports[1:] {
		if rep.Strategy == Compiled {
			if rep.SemanticCycles >= reports[0].SemanticCycles {
				t.Errorf("compiled semantic cycles %d should be below interpreted %d",
					rep.SemanticCycles, reports[0].SemanticCycles)
			}
		} else if rep.SemanticCycles != reports[0].SemanticCycles {
			t.Errorf("%v semantic cycles %d != %v semantic cycles %d",
				rep.Strategy, rep.SemanticCycles, reports[0].Strategy, reports[0].SemanticCycles)
		}
		if rep.Instructions != reports[0].Instructions {
			t.Errorf("instruction counts differ: %d vs %d", rep.Instructions, reports[0].Instructions)
		}
	}
}

func TestHigherSemanticLevelReducesInterpretationTime(t *testing.T) {
	// Figure 1's vertical axis: a higher-level DIR means fewer, bigger
	// instructions and less total interpretation overhead.
	cfg := smallConfig()
	stack, err := Run(workload.MustCompileAt("loopsum", compile.LevelStack), Conventional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem3, err := Run(workload.MustCompileAt("loopsum", compile.LevelMem3), Conventional, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mem3.Instructions >= stack.Instructions {
		t.Errorf("mem3 dynamic count %d should be below stack %d", mem3.Instructions, stack.Instructions)
	}
	if mem3.TotalCycles >= stack.TotalCycles {
		t.Errorf("mem3 total cycles %d should be below stack %d", mem3.TotalCycles, stack.TotalCycles)
	}
}

func BenchmarkSimConventional(b *testing.B) {
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := smallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(dp, Conventional, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimWithDTB(b *testing.B) {
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	cfg := smallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(dp, WithDTB, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCompiledReportAccounting(t *testing.T) {
	// The compiled organisation's report must be internally consistent: its
	// fetches are level-1 references charged through the hierarchy (so
	// Report.Memory agrees with FetchCycles), no decode or translate work
	// remains, and the interpreter footprint is folded into CompiledWords.
	dp := workload.MustCompileAt("loopsum", compile.LevelStack)
	rep, err := Run(dp, Compiled, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Memory.Level1Refs == 0 {
		t.Error("compiled fetches should appear as level-1 references")
	}
	if rep.FetchCycles != rep.Memory.Level1Time {
		t.Errorf("FetchCycles = %d, hierarchy level-1 time = %d", rep.FetchCycles, rep.Memory.Level1Time)
	}
	if rep.DecodeCycles != 0 || rep.TranslateCycles != 0 {
		t.Errorf("compiled strategy should not decode or translate: %+v", rep)
	}
	if rep.InterpreterWords != 0 {
		t.Errorf("InterpreterWords = %d, want 0 (folded into CompiledWords)", rep.InterpreterWords)
	}
	if rep.CompiledWords == 0 {
		t.Error("CompiledWords should report the native-code footprint")
	}
}
