package hlr

import (
	"strings"
	"testing"
)

const fibSource = `
program fib;
var n, result;
proc fibo(k);
begin
  if k < 2 then return k
  else return fibo(k - 1) + fibo(k - 2)
end;
begin
  n := 10;
  result := fibo(n);
  print result
end.
`

const sieveSource = `
program sieve;
var flags[50], i, j, count;
begin
  i := 0;
  while i < 50 do
  begin
    flags[i] := 1;
    i := i + 1
  end;
  i := 2;
  count := 0;
  while i < 50 do
  begin
    if flags[i] = 1 then
    begin
      count := count + 1;
      j := i + i;
      while j < 50 do
      begin
        flags[j] := 0;
        j := j + i
      end
    end;
    i := i + 1
  end;
  print count
end.
`

func TestParseFib(t *testing.T) {
	prog, err := Parse(fibSource)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "fib" {
		t.Errorf("program name = %q", prog.Name)
	}
	if len(prog.Block.Vars) != 2 {
		t.Errorf("vars = %d, want 2", len(prog.Block.Vars))
	}
	if len(prog.Block.Procs) != 1 || prog.Block.Procs[0].Name != "fibo" {
		t.Fatalf("procs = %v", prog.Block.Procs)
	}
	if len(prog.Block.Procs[0].Params) != 1 || prog.Block.Procs[0].Params[0] != "k" {
		t.Errorf("params = %v", prog.Block.Procs[0].Params)
	}
	if len(prog.Block.Body.Stmts) != 3 {
		t.Errorf("main statements = %d, want 3", len(prog.Block.Body.Stmts))
	}
}

func TestParseArraysAndNesting(t *testing.T) {
	prog, err := Parse(sieveSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Block.Vars) != 4 {
		t.Fatalf("vars = %d, want 4", len(prog.Block.Vars))
	}
	arr := prog.Block.Vars[0]
	if !arr.IsArray() || arr.Size != 50 || arr.Name != "flags" {
		t.Errorf("array decl = %+v", arr)
	}
	if prog.Block.Vars[1].IsArray() {
		t.Error("i should be a scalar")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	prog, err := Parse("program p; var x, y, z; begin x := y + z * 2 end.")
	if err != nil {
		t.Fatal(err)
	}
	assign := prog.Block.Body.Stmts[0].(*AssignStmt)
	add, ok := assign.Value.(*BinaryExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("top-level op = %T %v", assign.Value, assign.Value)
	}
	mul, ok := add.Right.(*BinaryExpr)
	if !ok || mul.Op != OpMul {
		t.Fatalf("right operand should be the multiplication, got %T", add.Right)
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	prog, err := Parse("program p; var x, y, z; begin x := (y + z) * 2 end.")
	if err != nil {
		t.Fatal(err)
	}
	assign := prog.Block.Body.Stmts[0].(*AssignStmt)
	mul, ok := assign.Value.(*BinaryExpr)
	if !ok || mul.Op != OpMul {
		t.Fatalf("top-level op should be *, got %v", assign.Value)
	}
	if _, ok := mul.Left.(*BinaryExpr); !ok {
		t.Error("left operand should be the parenthesised addition")
	}
}

func TestParseBooleanOperators(t *testing.T) {
	prog, err := Parse("program p; var a, b, c; begin if a < b and not (b = c) or a > c then a := 1 end.")
	if err != nil {
		t.Fatal(err)
	}
	ifStmt := prog.Block.Body.Stmts[0].(*IfStmt)
	or, ok := ifStmt.Cond.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top-level condition should be 'or', got %v", ifStmt.Cond)
	}
}

func TestParseIfElseAssociation(t *testing.T) {
	prog, err := Parse("program p; var a; begin if a then if a then a := 1 else a := 2 end.")
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Block.Body.Stmts[0].(*IfStmt)
	if outer.Else != nil {
		t.Error("else should bind to the inner if")
	}
	inner, ok := outer.Then.(*IfStmt)
	if !ok || inner.Else == nil {
		t.Error("inner if should carry the else branch")
	}
}

func TestParseCallForms(t *testing.T) {
	prog, err := Parse(`
program p;
var x;
proc q(a, b); begin return a + b end;
begin
  call q(1, 2);
  x := q(3, x) + q(4, 5)
end.`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prog.Block.Body.Stmts[0].(*CallStmt); !ok {
		t.Error("first statement should be a call statement")
	}
	assign := prog.Block.Body.Stmts[1].(*AssignStmt)
	add := assign.Value.(*BinaryExpr)
	if _, ok := add.Left.(*CallExpr); !ok {
		t.Error("left operand should be a call expression")
	}
}

func TestParseEmptyStatements(t *testing.T) {
	prog, err := Parse("program p; var x; begin ; x := 1; end.")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Block.Body.Stmts) != 3 {
		t.Fatalf("statements = %d, want 3 (two of them empty)", len(prog.Block.Body.Stmts))
	}
	if _, ok := prog.Block.Body.Stmts[0].(*EmptyStmt); !ok {
		t.Error("first statement should be empty")
	}
	if _, ok := prog.Block.Body.Stmts[2].(*EmptyStmt); !ok {
		t.Error("last statement should be empty")
	}
}

func TestParseReturnWithoutValue(t *testing.T) {
	prog, err := Parse("program p; proc q(); begin return end; begin call q() end.")
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Block.Procs[0].Body.Body.Stmts[0].(*ReturnStmt)
	if ret.Value != nil {
		t.Error("return without value should have nil Value")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing program", "begin end.", "expected 'program'"},
		{"missing period", "program p; begin end", "expected '.'"},
		{"trailing tokens", "program p; begin end. extra", "unexpected"},
		{"bad statement", "program p; begin 42 end.", "expected a statement"},
		{"missing then", "program p; var a; begin if a a := 1 end.", "expected 'then'"},
		{"missing do", "program p; var a; begin while a a := 1 end.", "expected 'do'"},
		{"missing assign", "program p; var a; begin a 1 end.", "expected ':='"},
		{"bad array size", "program p; var a[0]; begin a[0] := 1 end.", "array size must be positive"},
		{"unclosed paren", "program p; var a; begin a := (1 + 2 end.", "expected ')'"},
		{"unclosed bracket", "program p; var a[3]; begin a[1 := 2 end.", "expected ']'"},
		{"missing proc paren", "program p; proc q; begin end; begin end.", "expected '('"},
		{"bad expression", "program p; var a; begin a := * end.", "expected an expression"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse(%q) should fail", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want it to contain %q", err.Error(), c.want)
			}
		})
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on a syntax error")
		}
	}()
	MustParse("program")
}

func TestMustParseOK(t *testing.T) {
	prog := MustParse("program ok; begin print 1 end.")
	if prog.Name != "ok" {
		t.Errorf("name = %q", prog.Name)
	}
}

func TestBinOpStrings(t *testing.T) {
	for op := OpAdd; op <= OpOr; op++ {
		if op.String() == "" {
			t.Errorf("operator %d has empty String", op)
		}
	}
	if !OpLt.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison misclassifies operators")
	}
	if OpNeg.String() != "-" || OpNot.String() != "not" {
		t.Error("unary operator strings")
	}
	if BinOp(99).String() == "" || UnOp(99).String() == "" {
		t.Error("unknown operators should still render")
	}
}
