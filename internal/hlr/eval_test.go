package hlr

import (
	"errors"
	"reflect"
	"testing"
)

// run parses, analyses and evaluates src, failing the test on any error.
func run(t *testing.T, src string) []int64 {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Evaluate(prog, EvalOptions{})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	return res.Output
}

func TestEvaluateArithmetic(t *testing.T) {
	out := run(t, `
program arith;
var a, b;
begin
  a := 7; b := 3;
  print a + b;
  print a - b;
  print a * b;
  print a / b;
  print a mod b;
  print -a;
  print (a + b) * 2
end.`)
	want := []int64{10, 4, 21, 2, 1, -7, 20}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("output = %v, want %v", out, want)
	}
}

func TestEvaluateComparisonsAndBooleans(t *testing.T) {
	out := run(t, `
program cmp;
var a, b;
begin
  a := 5; b := 9;
  print a < b;
  print a > b;
  print a <= 5;
  print a >= 6;
  print a = 5;
  print a <> 5;
  print (a < b) and (b < 10);
  print (a > b) or (b = 9);
  print not (a = 5)
end.`)
	want := []int64{1, 0, 1, 0, 1, 0, 1, 1, 0}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("output = %v, want %v", out, want)
	}
}

func TestEvaluateWhileLoop(t *testing.T) {
	out := run(t, `
program loop;
var i, sum;
begin
  i := 1; sum := 0;
  while i <= 10 do
  begin
    sum := sum + i;
    i := i + 1
  end;
  print sum
end.`)
	if len(out) != 1 || out[0] != 55 {
		t.Errorf("output = %v, want [55]", out)
	}
}

func TestEvaluateIfElse(t *testing.T) {
	out := run(t, `
program branch;
var x;
begin
  x := 3;
  if x > 5 then print 100 else print 200;
  if x < 5 then print 300;
  if x > 5 then print 400
end.`)
	want := []int64{200, 300}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("output = %v, want %v", out, want)
	}
}

func TestEvaluateRecursionFibonacci(t *testing.T) {
	out := run(t, fibSource)
	if len(out) != 1 || out[0] != 55 {
		t.Errorf("fib(10) = %v, want [55]", out)
	}
}

func TestEvaluateSieve(t *testing.T) {
	out := run(t, sieveSource)
	// Primes below 50: 2 3 5 7 11 13 17 19 23 29 31 37 41 43 47 = 15 primes.
	if len(out) != 1 || out[0] != 15 {
		t.Errorf("sieve output = %v, want [15]", out)
	}
}

func TestEvaluateArrays(t *testing.T) {
	out := run(t, `
program arr;
var a[10], i;
begin
  i := 0;
  while i < 10 do
  begin
    a[i] := i * i;
    i := i + 1
  end;
  print a[0] + a[1] + a[9];
  a[2 + 3] := 99;
  print a[5]
end.`)
	want := []int64{82, 99}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("output = %v, want %v", out, want)
	}
}

func TestEvaluateUplevelAddressing(t *testing.T) {
	out := run(t, `
program uplevel;
var counter;
proc outer(n);
  proc bump(k);
  begin
    counter := counter + k + n
  end;
begin
  call bump(1);
  call bump(2)
end;
begin
  counter := 0;
  call outer(10);
  call outer(100);
  print counter
end.`)
	// outer(10): bump adds 1+10 and 2+10 = 23; outer(100): 1+100 + 2+100 = 203.
	if len(out) != 1 || out[0] != 226 {
		t.Errorf("output = %v, want [226]", out)
	}
}

func TestEvaluateShadowing(t *testing.T) {
	out := run(t, `
program shadow;
var x;
proc q(x);
begin
  x := x + 1;
  return x
end;
begin
  x := 100;
  print q(1);
  print x
end.`)
	want := []int64{2, 100}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("output = %v, want %v", out, want)
	}
}

func TestEvaluateFunctionWithoutReturnYieldsZero(t *testing.T) {
	out := run(t, `
program noreturn;
var x;
proc q();
begin
  x := 5
end;
begin
  x := 1;
  print q();
  print x
end.`)
	want := []int64{0, 5}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("output = %v, want %v", out, want)
	}
}

func TestEvaluateReturnStopsProcedure(t *testing.T) {
	out := run(t, `
program early;
proc q(n);
begin
  if n > 0 then return 1;
  print 999;
  return 2
end;
begin
  print q(5);
  print q(0)
end.`)
	want := []int64{1, 999, 2}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("output = %v, want %v", out, want)
	}
}

func TestEvaluateMutualRecursion(t *testing.T) {
	out := run(t, `
program mutual;
var r;
proc isodd(n);
begin
  if n = 0 then return 0;
  return iseven(n - 1)
end;
proc iseven(n);
begin
  if n = 0 then return 1;
  return isodd(n - 1)
end;
begin
  print iseven(10);
  print isodd(7)
end.`)
	want := []int64{1, 1}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("output = %v, want %v", out, want)
	}
}

func TestEvaluateDivideByZero(t *testing.T) {
	prog := MustParse("program d; var a; begin a := 1 / 0 end.")
	if _, err := Evaluate(prog, EvalOptions{}); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("err = %v, want ErrDivideByZero", err)
	}
	prog = MustParse("program d; var a; begin a := 1 mod 0 end.")
	if _, err := Evaluate(prog, EvalOptions{}); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("mod err = %v, want ErrDivideByZero", err)
	}
}

func TestEvaluateIndexOutOfRange(t *testing.T) {
	prog := MustParse("program d; var a[3]; begin a[3] := 1 end.")
	if _, err := Evaluate(prog, EvalOptions{}); !errors.Is(err, ErrIndexRange) {
		t.Errorf("err = %v, want ErrIndexRange", err)
	}
	prog = MustParse("program d; var a[3], b; begin b := a[0-1] end.")
	if _, err := Evaluate(prog, EvalOptions{}); !errors.Is(err, ErrIndexRange) {
		t.Errorf("negative index err = %v, want ErrIndexRange", err)
	}
}

func TestEvaluateStepLimit(t *testing.T) {
	prog := MustParse("program d; var a; begin a := 0; while 1 do a := a + 1 end.")
	_, err := Evaluate(prog, EvalOptions{MaxSteps: 1000})
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestEvaluateCallDepthLimit(t *testing.T) {
	prog := MustParse("program d; proc q(n); begin return q(n + 1) end; begin print q(0) end.")
	_, err := Evaluate(prog, EvalOptions{MaxDepth: 50})
	if !errors.Is(err, ErrCallDepth) {
		t.Errorf("err = %v, want ErrCallDepth", err)
	}
}

func TestEvaluateAnalysisOnDemand(t *testing.T) {
	prog := MustParse("program d; var a; begin a := 2; print a end.")
	if prog.Analysis != nil {
		t.Fatal("analysis should not exist before Evaluate")
	}
	res, err := Evaluate(prog, EvalOptions{})
	if err != nil || len(res.Output) != 1 || res.Output[0] != 2 {
		t.Errorf("result = %+v err = %v", res, err)
	}
	if prog.Analysis == nil {
		t.Error("Evaluate should attach the analysis")
	}
	if res.Steps <= 0 {
		t.Error("steps should be counted")
	}
}

func TestEvaluateAnalysisErrorPropagates(t *testing.T) {
	prog := MustParse("program d; begin x := 1 end.")
	if _, err := Evaluate(prog, EvalOptions{}); err == nil {
		t.Error("evaluation of an invalid program should fail")
	}
}

func BenchmarkEvaluateFib(b *testing.B) {
	prog := MustParse(fibSource)
	if _, err := Analyze(prog); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(prog, EvalOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
