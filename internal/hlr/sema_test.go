package hlr

import (
	"strings"
	"testing"
)

func analyzeSrc(t *testing.T, src string) (*Program, *Analysis) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	an, err := Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return prog, an
}

func TestAnalyzeBindsOffsets(t *testing.T) {
	_, an := analyzeSrc(t, `
program p;
var a, b, arr[5], c;
begin
  a := 1; b := 2; c := 3; arr[0] := 4
end.`)
	root := an.RootScope
	a := root.Lookup("a")
	b := root.Lookup("b")
	arr := root.Lookup("arr")
	c := root.Lookup("c")
	if a.Offset != 0 || b.Offset != 1 || arr.Offset != 2 || c.Offset != 7 {
		t.Errorf("offsets = %d,%d,%d,%d want 0,1,2,7", a.Offset, b.Offset, arr.Offset, c.Offset)
	}
	if a.Depth != 0 || arr.Kind != SymArray || arr.Size != 5 {
		t.Errorf("symbol details: %+v %+v", a, arr)
	}
	if an.MainFrameSlots() != 8 {
		t.Errorf("main frame slots = %d, want 8", an.MainFrameSlots())
	}
}

func TestAnalyzeProcedureNumberingAndDepth(t *testing.T) {
	_, an := analyzeSrc(t, `
program p;
var g;
proc outer(x);
  var local;
  proc inner(y);
  begin
    return y + x + g
  end;
begin
  local := inner(x);
  return local
end;
begin
  g := 1;
  print outer(2)
end.`)
	if len(an.Procs) != 3 {
		t.Fatalf("procs = %d, want 3", len(an.Procs))
	}
	main, outer, inner := an.Procs[0], an.Procs[1], an.Procs[2]
	if main.Index != 0 || main.Depth != 0 {
		t.Errorf("main = %+v", main)
	}
	if outer.Name != "outer" || outer.Depth != 1 || outer.NumParams != 1 || outer.FrameSlots != 2 {
		t.Errorf("outer = %+v", outer)
	}
	if inner.Name != "inner" || inner.Depth != 2 || inner.NumParams != 1 || inner.FrameSlots != 1 {
		t.Errorf("inner = %+v", inner)
	}
	if p, ok := an.ProcByName("inner"); !ok || p != inner {
		t.Error("ProcByName(inner) failed")
	}
	if _, ok := an.ProcByName("nosuch"); ok {
		t.Error("ProcByName should fail for unknown name")
	}
}

func TestAnalyzeUplevelReferences(t *testing.T) {
	prog, _ := analyzeSrc(t, `
program p;
var g;
proc q(x);
begin
  g := g + x
end;
begin
  g := 0;
  call q(5);
  print g
end.`)
	// Inside q, the reference to g must resolve to the depth-0 symbol.
	q := prog.Block.Procs[0]
	assign := q.Body.Body.Stmts[0].(*AssignStmt)
	if assign.TargetSym.Depth != 0 || assign.TargetSym.Name != "g" {
		t.Errorf("up-level target symbol = %+v", assign.TargetSym)
	}
	// And x resolves to the parameter at depth 1, offset 0.
	add := assign.Value.(*BinaryExpr)
	x := add.Right.(*VarRef)
	if x.Sym.Depth != 1 || x.Sym.Offset != 0 || x.Sym.Kind != SymParam {
		t.Errorf("parameter symbol = %+v", x.Sym)
	}
}

func TestVisibleCount(t *testing.T) {
	prog, _ := analyzeSrc(t, `
program p;
var a, b;
proc q(x, y);
  var c;
begin
  c := a + x
end;
begin
  call q(1, 2)
end.`)
	rootVisible := prog.Block.Scope.VisibleCount()
	if rootVisible != 2 {
		t.Errorf("root visible = %d, want 2", rootVisible)
	}
	qScope := prog.Block.Procs[0].Body.Scope
	// q sees: its params x, y, its local c, and globals a, b = 5.
	if got := qScope.VisibleCount(); got != 5 {
		t.Errorf("q visible = %d, want 5", got)
	}
	if qScope.LookupLocal("a") != nil {
		t.Error("LookupLocal should not see enclosing scope")
	}
	if qScope.LookupLocal("c") == nil {
		t.Error("LookupLocal should see own locals")
	}
	if len(qScope.Symbols()) != 3 {
		t.Errorf("q scope symbols = %d, want 3", len(qScope.Symbols()))
	}
}

func TestShadowing(t *testing.T) {
	prog, _ := analyzeSrc(t, `
program p;
var x;
proc q(x);
begin
  x := x + 1;
  return x
end;
begin
  x := 100;
  print q(1);
  print x
end.`)
	q := prog.Block.Procs[0]
	assign := q.Body.Body.Stmts[0].(*AssignStmt)
	if assign.TargetSym.Depth != 1 {
		t.Errorf("inner x should shadow the global: depth = %d", assign.TargetSym.Depth)
	}
	mainAssign := prog.Block.Body.Stmts[0].(*AssignStmt)
	if mainAssign.TargetSym.Depth != 0 {
		t.Errorf("outer x depth = %d", mainAssign.TargetSym.Depth)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared variable", "program p; begin x := 1 end.", `undeclared name "x"`},
		{"undeclared in expr", "program p; var a; begin a := b end.", `undeclared name "b"`},
		{"undeclared proc", "program p; begin call q() end.", `undeclared procedure "q"`},
		{"duplicate variable", "program p; var a, a; begin a := 1 end.", "already declared"},
		{"duplicate proc", "program p; var a; proc a(); begin end; begin a := 1 end.", "already declared"},
		{"duplicate param", "program p; proc q(x, x); begin end; begin call q(1, 2) end.", "already declared"},
		{"assign to proc", "program p; proc q(); begin end; begin q := 1 end.", "cannot assign to procedure"},
		{"index scalar", "program p; var a; begin a[1] := 2 end.", "is not an array"},
		{"index scalar in expr", "program p; var a, b; begin b := a[1] end.", "is not an array"},
		{"array without index", "program p; var a[3]; begin a := 1 end.", "must be indexed"},
		{"array value without index", "program p; var a[3], b; begin b := a end.", "must be indexed"},
		{"call a variable", "program p; var a; begin call a() end.", "called as a procedure"},
		{"variable used as proc in expr", "program p; var a, b; begin b := a(1) end.", "called as a procedure"},
		{"proc used as variable", "program p; var b; proc q(); begin end; begin b := q + 1 end.", "used as a variable"},
		{"wrong arg count", "program p; proc q(x); begin end; begin call q() end.", "expects 1 argument"},
		{"wrong arg count expr", "program p; var a; proc q(x); begin return x end; begin a := q(1, 2) end.", "expects 1 argument"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := Parse(c.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Analyze(prog)
			if err == nil {
				t.Fatalf("Analyze(%q) should fail", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want it to contain %q", err.Error(), c.want)
			}
		})
	}
}

func TestSymbolKindString(t *testing.T) {
	kinds := []SymbolKind{SymScalar, SymArray, SymParam, SymProc, SymbolKind(9)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty String", k)
		}
	}
}

func TestSemaErrorMessage(t *testing.T) {
	e := &SemaError{Pos: Position{Line: 4, Col: 2}, Msg: "boom"}
	if e.Error() != "4:2: boom" {
		t.Errorf("Error() = %q", e.Error())
	}
}
