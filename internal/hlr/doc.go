// Package hlr implements the high-level representation (HLR) substrate: a
// small block-structured language ("MiniLang") in the ALGOL tradition the
// paper uses as its reference point for HLRs (§2.2), together with a lexer,
// parser, semantic analyser and a reference evaluator.
//
// MiniLang exhibits the HLR properties the paper relies on: block structure
// with nested procedures (the contour model), names whose mapping to storage
// is established by declarations in enclosing scopes, hierarchical expression
// syntax, and symbolic names of unbounded length.  The compiler in
// internal/compile removes exactly the features the paper says a DIR must
// not have: it binds names to (depth, offset) machine addresses, flattens
// the expression tree to a sequential form and discards symbolic names.
//
// Grammar (EBNF):
//
//	program   = "program" ident ";" block "." .
//	block     = { varDecl } { procDecl } compound .
//	varDecl   = "var" varItem { "," varItem } ";" .
//	varItem   = ident [ "[" number "]" ] .
//	procDecl  = "proc" ident "(" [ ident { "," ident } ] ")" ";" block ";" .
//	compound  = "begin" stmt { ";" stmt } "end" .
//	stmt      = assign | ifStmt | whileStmt | compound | callStmt
//	          | printStmt | returnStmt | /* empty */ .
//	assign    = ident [ "[" expr "]" ] ":=" expr .
//	ifStmt    = "if" expr "then" stmt [ "else" stmt ] .
//	whileStmt = "while" expr "do" stmt .
//	callStmt  = "call" ident "(" [ expr { "," expr } ] ")" .
//	printStmt = "print" expr .
//	returnStmt= "return" [ expr ] .
//	expr      = orExpr .
//	orExpr    = andExpr { "or" andExpr } .
//	andExpr   = relExpr { "and" relExpr } .
//	relExpr   = addExpr [ ( "=" | "<>" | "<" | "<=" | ">" | ">=" ) addExpr ] .
//	addExpr   = mulExpr { ( "+" | "-" ) mulExpr } .
//	mulExpr   = unary { ( "*" | "/" | "mod" ) unary } .
//	unary     = [ "-" | "not" ] primary .
//	primary   = number | ident [ "[" expr "]" | "(" [ expr { "," expr } ] ")" ]
//	          | "(" expr ")" .
package hlr
