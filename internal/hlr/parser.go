package hlr

import "fmt"

// ParseError describes a syntax error with its source position.
type ParseError struct {
	Pos Position
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parser is a recursive-descent parser for MiniLang.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a MiniLang source program.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses src and panics on error; it is a convenience for tests and
// built-in workload programs that are known to be valid.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("hlr.MustParse: %v", err))
	}
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(kind TokenKind) bool { return p.cur().Kind == kind }

func (p *Parser) accept(kind TokenKind) (Token, bool) {
	if p.at(kind) {
		return p.next(), true
	}
	return Token{}, false
}

func (p *Parser) expect(kind TokenKind) (Token, error) {
	if p.at(kind) {
		return p.next(), nil
	}
	return Token{}, &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf("expected %s, found %s", kind, p.cur())}
}

func (p *Parser) parseProgram() (*Program, error) {
	if _, err := p.expect(TokProgram); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	block, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	end, err := p.expect(TokPeriod)
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF) {
		return nil, &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf("unexpected %s after end of program", p.cur())}
	}
	return &Program{Name: name.Text, Block: block, NamePos: name.Pos, EndPos: end.Pos}, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	blk := &Block{BlockPos: p.cur().Pos}
	for p.at(TokVar) {
		decls, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		blk.Vars = append(blk.Vars, decls...)
	}
	for p.at(TokProc) {
		proc, err := p.parseProcDecl()
		if err != nil {
			return nil, err
		}
		blk.Procs = append(blk.Procs, proc)
	}
	body, err := p.parseCompound()
	if err != nil {
		return nil, err
	}
	blk.Body = body
	return blk, nil
}

func (p *Parser) parseVarDecl() ([]*VarDecl, error) {
	if _, err := p.expect(TokVar); err != nil {
		return nil, err
	}
	var decls []*VarDecl
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		decl := &VarDecl{Name: name.Text, DeclPos: name.Pos}
		if _, ok := p.accept(TokLBracket); ok {
			size, err := p.expect(TokNumber)
			if err != nil {
				return nil, err
			}
			if size.Num <= 0 {
				return nil, &ParseError{Pos: size.Pos, Msg: fmt.Sprintf("array size must be positive, got %d", size.Num)}
			}
			decl.Size = size.Num
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
		}
		decls = append(decls, decl)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return decls, nil
}

func (p *Parser) parseProcDecl() (*ProcDecl, error) {
	procTok, err := p.expect(TokProc)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []string
	if !p.at(TokRParen) {
		for {
			param, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			params = append(params, param.Text)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return &ProcDecl{Name: name.Text, Params: params, Body: body, DeclPos: procTok.Pos}, nil
}

func (p *Parser) parseCompound() (*CompoundStmt, error) {
	begin, err := p.expect(TokBegin)
	if err != nil {
		return nil, err
	}
	comp := &CompoundStmt{BeginPos: begin.Pos}
	for {
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		comp.Stmts = append(comp.Stmts, stmt)
		if _, ok := p.accept(TokSemicolon); !ok {
			break
		}
	}
	if _, err := p.expect(TokEnd); err != nil {
		return nil, err
	}
	return comp, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokIdent:
		return p.parseAssign()
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokBegin:
		return p.parseCompound()
	case TokCall:
		return p.parseCall()
	case TokPrint:
		tok := p.next()
		value, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &PrintStmt{Value: value, PrintPos: tok.Pos}, nil
	case TokReturn:
		tok := p.next()
		stmt := &ReturnStmt{ReturnPos: tok.Pos}
		if !p.at(TokSemicolon) && !p.at(TokEnd) {
			value, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Value = value
		}
		return stmt, nil
	case TokSemicolon, TokEnd:
		return &EmptyStmt{AtPos: p.cur().Pos}, nil
	default:
		return nil, &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf("expected a statement, found %s", p.cur())}
	}
}

func (p *Parser) parseAssign() (Stmt, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	stmt := &AssignStmt{Target: name.Text, TargetPos: name.Pos}
	if _, ok := p.accept(TokLBracket); ok {
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Index = idx
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	value, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	stmt.Value = value
	return stmt, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	ifTok := p.next()
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokThen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	stmt := &IfStmt{Cond: cond, Then: then, IfPos: ifTok.Pos}
	if _, ok := p.accept(TokElse); ok {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmt.Else = els
	}
	return stmt, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	whileTok := p.next()
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokDo); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, WhilePos: whileTok.Pos}, nil
}

func (p *Parser) parseCall() (Stmt, error) {
	callTok := p.next()
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	args, err := p.parseArgs()
	if err != nil {
		return nil, err
	}
	return &CallStmt{Name: name.Text, Args: args, CallPos: callTok.Pos}, nil
}

func (p *Parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.at(TokRParen) {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokOr) {
		op := p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right, OpPos: op.Pos}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseRel()
	if err != nil {
		return nil, err
	}
	for p.at(TokAnd) {
		op := p.next()
		right, err := p.parseRel()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right, OpPos: op.Pos}
	}
	return left, nil
}

var relOps = map[TokenKind]BinOp{
	TokEq: OpEq, TokNe: OpNe, TokLt: OpLt, TokLe: OpLe, TokGt: OpGt, TokGe: OpGe,
}

func (p *Parser) parseRel() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := relOps[p.cur().Kind]; ok {
		opTok := p.next()
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, Left: left, Right: right, OpPos: opTok.Pos}, nil
	}
	return left, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(TokPlus) || p.at(TokMinus) {
		opTok := p.next()
		op := OpAdd
		if opTok.Kind == TokMinus {
			op = OpSub
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right, OpPos: opTok.Pos}
	}
	return left, nil
}

func (p *Parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokStar) || p.at(TokSlash) || p.at(TokMod) {
		opTok := p.next()
		var op BinOp
		switch opTok.Kind {
		case TokStar:
			op = OpMul
		case TokSlash:
			op = OpDiv
		default:
			op = OpMod
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right, OpPos: opTok.Pos}
	}
	return left, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		tok := p.next()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNeg, Operand: operand, OpPos: tok.Pos}, nil
	case TokNot:
		tok := p.next()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNot, Operand: operand, OpPos: tok.Pos}, nil
	default:
		return p.parsePrimary()
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case TokNumber:
		tok := p.next()
		return &NumberLit{Value: tok.Num, LitPos: tok.Pos}, nil
	case TokIdent:
		tok := p.next()
		switch p.cur().Kind {
		case TokLBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &VarRef{Name: tok.Text, Index: idx, RefPos: tok.Pos}, nil
		case TokLParen:
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Name: tok.Text, Args: args, CallPos: tok.Pos}, nil
		default:
			return &VarRef{Name: tok.Text, RefPos: tok.Pos}, nil
		}
	case TokLParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf("expected an expression, found %s", p.cur())}
	}
}
