package hlr

import (
	"fmt"
	"strings"
)

// This file renders an AST back to MiniLang source text.  The printer is the
// inverse of the parser up to formatting: Parse(Format(p)) yields a program
// with the same semantics as p.  It is used by the program generator and the
// divergence minimizer of internal/workload/gen, which edit ASTs and need to
// re-enter the pipeline through source text like every other program.
//
// The printer is deliberately conservative about statement bodies — the
// branches of an if and the body of a while are always wrapped in begin/end —
// so that re-parsing can never reassociate a dangling else or terminate a
// bare return differently from the AST being printed.  Expressions, by
// contrast, are printed with minimal parentheses derived from the parser's
// precedence levels, so formatted programs exercise mixed-precedence parsing.

// Format renders the program as MiniLang source text.
func Format(p *Program) string {
	f := &formatter{}
	fmt.Fprintf(&f.b, "program %s;\n", p.Name)
	f.block(p.Block, 0)
	f.b.WriteString(".\n")
	return f.b.String()
}

// FormatStmt renders one statement (for diagnostics and tests).
func FormatStmt(s Stmt) string {
	f := &formatter{}
	f.stmt(s, 0)
	return f.b.String()
}

// FormatExpr renders one expression with minimal parentheses.
func FormatExpr(e Expr) string {
	f := &formatter{}
	f.expr(e, 0)
	return f.b.String()
}

type formatter struct {
	b strings.Builder
}

func (f *formatter) indent(level int) {
	for i := 0; i < level; i++ {
		f.b.WriteString("  ")
	}
}

func (f *formatter) block(blk *Block, level int) {
	for _, v := range blk.Vars {
		f.indent(level)
		if v.IsArray() {
			fmt.Fprintf(&f.b, "var %s[%d];\n", v.Name, v.Size)
		} else {
			fmt.Fprintf(&f.b, "var %s;\n", v.Name)
		}
	}
	for _, pd := range blk.Procs {
		f.indent(level)
		fmt.Fprintf(&f.b, "proc %s(%s);\n", pd.Name, strings.Join(pd.Params, ", "))
		f.block(pd.Body, level+1)
		f.b.WriteString(";\n")
	}
	f.compound(blk.Body, level)
}

// compound renders a begin/end statement list without a trailing newline (the
// caller appends "." or ";" as the context requires).
func (f *formatter) compound(c *CompoundStmt, level int) {
	f.indent(level)
	f.b.WriteString("begin\n")
	wrote := false
	for _, s := range c.Stmts {
		if _, empty := s.(*EmptyStmt); empty {
			continue
		}
		if wrote {
			f.b.WriteString(";\n")
		}
		f.stmt(s, level+1)
		wrote = true
	}
	if wrote {
		f.b.WriteString("\n")
	}
	f.indent(level)
	f.b.WriteString("end")
}

// body renders a statement as the body of an if/while, always as a begin/end
// block so re-parsing cannot rebind a dangling else or a bare return.
func (f *formatter) body(s Stmt, level int) {
	if c, ok := s.(*CompoundStmt); ok {
		f.compound(c, level)
		return
	}
	f.compound(&CompoundStmt{Stmts: []Stmt{s}}, level)
}

func (f *formatter) stmt(s Stmt, level int) {
	switch x := s.(type) {
	case *CompoundStmt:
		f.compound(x, level)
	case *AssignStmt:
		f.indent(level)
		f.b.WriteString(x.Target)
		if x.Index != nil {
			f.b.WriteString("[")
			f.expr(x.Index, 0)
			f.b.WriteString("]")
		}
		f.b.WriteString(" := ")
		f.expr(x.Value, 0)
	case *IfStmt:
		f.indent(level)
		f.b.WriteString("if ")
		f.expr(x.Cond, 0)
		f.b.WriteString(" then\n")
		f.body(x.Then, level)
		if x.Else != nil {
			f.b.WriteString("\n")
			f.indent(level)
			f.b.WriteString("else\n")
			f.body(x.Else, level)
		}
	case *WhileStmt:
		f.indent(level)
		f.b.WriteString("while ")
		f.expr(x.Cond, 0)
		f.b.WriteString(" do\n")
		f.body(x.Body, level)
	case *CallStmt:
		f.indent(level)
		fmt.Fprintf(&f.b, "call %s(", x.Name)
		f.args(x.Args)
		f.b.WriteString(")")
	case *PrintStmt:
		f.indent(level)
		f.b.WriteString("print ")
		f.expr(x.Value, 0)
	case *ReturnStmt:
		f.indent(level)
		f.b.WriteString("return")
		if x.Value != nil {
			f.b.WriteString(" ")
			f.expr(x.Value, 0)
		}
	case *EmptyStmt:
		f.indent(level)
	default:
		f.indent(level)
		fmt.Fprintf(&f.b, "/* unsupported statement %T */", s)
	}
}

func (f *formatter) args(args []Expr) {
	for i, a := range args {
		if i > 0 {
			f.b.WriteString(", ")
		}
		f.expr(a, 0)
	}
}

// Parser precedence levels, low to high; used to decide where parentheses are
// required when printing.
const (
	precOr      = 1
	precAnd     = 2
	precRel     = 3
	precAdd     = 4
	precMul     = 5
	precUnary   = 6
	precPrimary = 7
)

func binPrec(op BinOp) int {
	switch op {
	case OpOr:
		return precOr
	case OpAnd:
		return precAnd
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return precRel
	case OpAdd, OpSub:
		return precAdd
	default:
		return precMul
	}
}

// exprPrec returns the precedence level of the expression's top construct as
// the parser would see its printed form.  A negative number literal prints as
// "-n", which the parser reads as a unary minus, so it is classified at the
// unary level rather than as a primary.
func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *BinaryExpr:
		return binPrec(x.Op)
	case *UnaryExpr:
		return precUnary
	case *NumberLit:
		if x.Value < 0 {
			return precUnary
		}
		return precPrimary
	default:
		return precPrimary
	}
}

// expr renders e, parenthesizing it if its precedence is at or below min.
func (f *formatter) expr(e Expr, min int) {
	if exprPrec(e) < min {
		f.b.WriteString("(")
		f.exprTop(e)
		f.b.WriteString(")")
		return
	}
	f.exprTop(e)
}

func (f *formatter) exprTop(e Expr) {
	switch x := e.(type) {
	case *NumberLit:
		fmt.Fprintf(&f.b, "%d", x.Value)
	case *VarRef:
		f.b.WriteString(x.Name)
		if x.Index != nil {
			f.b.WriteString("[")
			f.expr(x.Index, 0)
			f.b.WriteString("]")
		}
	case *CallExpr:
		fmt.Fprintf(&f.b, "%s(", x.Name)
		f.args(x.Args)
		f.b.WriteString(")")
	case *BinaryExpr:
		p := binPrec(x.Op)
		// Left operand: a strictly lower level must be parenthesized.  The
		// relational level is non-associative in the grammar, so a relational
		// operand of a relational operator needs parentheses on either side.
		leftMin, rightMin := p, p+1
		if p == precRel {
			leftMin = p + 1
		}
		f.expr(x.Left, leftMin)
		fmt.Fprintf(&f.b, " %s ", x.Op)
		// Right operand: equal level would reassociate under a left-
		// associative parse, so it is parenthesized too.
		f.expr(x.Right, rightMin)
	case *UnaryExpr:
		f.b.WriteString(x.Op.String())
		if x.Op == OpNot {
			f.b.WriteString(" ")
		}
		// The operand of a unary operator must be unary or primary; anything
		// looser (and a negative literal under another minus, which would
		// print as "--n") takes parentheses.
		operandPrec := exprPrec(x.Operand)
		needParens := operandPrec < precUnary
		if lit, ok := x.Operand.(*NumberLit); ok && lit.Value < 0 {
			needParens = true
		}
		if needParens {
			f.b.WriteString("(")
			f.exprTop(x.Operand)
			f.b.WriteString(")")
		} else {
			f.exprTop(x.Operand)
		}
	default:
		fmt.Fprintf(&f.b, "/* unsupported expression %T */", e)
	}
}
