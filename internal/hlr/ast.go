package hlr

import "fmt"

// Node is implemented by every AST node.
type Node interface {
	Pos() Position
}

// Program is the root of a MiniLang AST.
type Program struct {
	Name     string
	Block    *Block
	NamePos  Position
	EndPos   Position
	Analysis *Analysis // populated by Analyze
}

// Pos implements Node.
func (p *Program) Pos() Position { return p.NamePos }

// Block is a declaration scope: variable declarations, nested procedure
// declarations and a body.  Blocks are the syntactic counterpart of the
// paper's contours.
type Block struct {
	Vars     []*VarDecl
	Procs    []*ProcDecl
	Body     *CompoundStmt
	BlockPos Position

	// Scope is attached by semantic analysis.
	Scope *Scope
}

// Pos implements Node.
func (b *Block) Pos() Position { return b.BlockPos }

// VarDecl declares a scalar (Size == 0) or an array of Size elements.
type VarDecl struct {
	Name    string
	Size    int64 // 0 for scalars; > 0 for arrays
	DeclPos Position
}

// Pos implements Node.
func (v *VarDecl) Pos() Position { return v.DeclPos }

// IsArray reports whether the declaration is an array.
func (v *VarDecl) IsArray() bool { return v.Size > 0 }

// ProcDecl declares a procedure (which may also be used as a function when
// it executes "return expr").
type ProcDecl struct {
	Name    string
	Params  []string
	Body    *Block
	DeclPos Position

	// Attached by semantic analysis.
	Sym *Symbol
}

// Pos implements Node.
func (p *ProcDecl) Pos() Position { return p.DeclPos }

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// CompoundStmt is a begin...end list of statements.
type CompoundStmt struct {
	Stmts    []Stmt
	BeginPos Position
}

// Pos implements Node.
func (s *CompoundStmt) Pos() Position { return s.BeginPos }
func (s *CompoundStmt) stmtNode()     {}

// AssignStmt assigns to a scalar variable or an array element.
type AssignStmt struct {
	Target    string
	Index     Expr // nil for scalar targets
	Value     Expr
	TargetPos Position

	// TargetSym is attached by semantic analysis.
	TargetSym *Symbol
}

// Pos implements Node.
func (s *AssignStmt) Pos() Position { return s.TargetPos }
func (s *AssignStmt) stmtNode()     {}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
	IfPos Position
}

// Pos implements Node.
func (s *IfStmt) Pos() Position { return s.IfPos }
func (s *IfStmt) stmtNode()     {}

// WhileStmt is a while-do loop.
type WhileStmt struct {
	Cond     Expr
	Body     Stmt
	WhilePos Position
}

// Pos implements Node.
func (s *WhileStmt) Pos() Position { return s.WhilePos }
func (s *WhileStmt) stmtNode()     {}

// CallStmt invokes a procedure for its effects, discarding any return value.
type CallStmt struct {
	Name    string
	Args    []Expr
	CallPos Position

	// ProcSym is attached by semantic analysis.
	ProcSym *Symbol
}

// Pos implements Node.
func (s *CallStmt) Pos() Position { return s.CallPos }
func (s *CallStmt) stmtNode()     {}

// PrintStmt emits the value of an expression to the program output.
type PrintStmt struct {
	Value    Expr
	PrintPos Position
}

// Pos implements Node.
func (s *PrintStmt) Pos() Position { return s.PrintPos }
func (s *PrintStmt) stmtNode()     {}

// ReturnStmt returns from the enclosing procedure, optionally with a value.
type ReturnStmt struct {
	Value     Expr // may be nil
	ReturnPos Position
}

// Pos implements Node.
func (s *ReturnStmt) Pos() Position { return s.ReturnPos }
func (s *ReturnStmt) stmtNode()     {}

// EmptyStmt is an empty statement (arising from stray semicolons).
type EmptyStmt struct {
	AtPos Position
}

// Pos implements Node.
func (s *EmptyStmt) Pos() Position { return s.AtPos }
func (s *EmptyStmt) stmtNode()     {}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// NumberLit is an integer literal.
type NumberLit struct {
	Value  int64
	LitPos Position
}

// Pos implements Node.
func (e *NumberLit) Pos() Position { return e.LitPos }
func (e *NumberLit) exprNode()     {}

// VarRef references a scalar variable or an array element.
type VarRef struct {
	Name   string
	Index  Expr // nil for scalar references
	RefPos Position

	// Sym is attached by semantic analysis.
	Sym *Symbol
}

// Pos implements Node.
func (e *VarRef) Pos() Position { return e.RefPos }
func (e *VarRef) exprNode()     {}

// CallExpr invokes a procedure as a function, using its returned value.
type CallExpr struct {
	Name    string
	Args    []Expr
	CallPos Position

	// ProcSym is attached by semantic analysis.
	ProcSym *Symbol
}

// Pos implements Node.
func (e *CallExpr) Pos() Position { return e.CallPos }
func (e *CallExpr) exprNode()     {}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "mod",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "and", OpOr: "or",
}

// String returns the operator's source spelling.
func (op BinOp) String() string {
	if s, ok := binOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("binop(%d)", int(op))
}

// IsComparison reports whether the operator is a relational comparison.
func (op BinOp) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op    BinOp
	Left  Expr
	Right Expr
	OpPos Position
}

// Pos implements Node.
func (e *BinaryExpr) Pos() Position { return e.OpPos }
func (e *BinaryExpr) exprNode()     {}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota
	OpNot
)

// String returns the operator's source spelling.
func (op UnOp) String() string {
	switch op {
	case OpNeg:
		return "-"
	case OpNot:
		return "not"
	default:
		return fmt.Sprintf("unop(%d)", int(op))
	}
}

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	Op      UnOp
	Operand Expr
	OpPos   Position
}

// Pos implements Node.
func (e *UnaryExpr) Pos() Position { return e.OpPos }
func (e *UnaryExpr) exprNode()     {}
