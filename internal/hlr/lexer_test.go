package hlr

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeSimple(t *testing.T) {
	toks, err := Tokenize("program p; begin x := x + 1 end.")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokProgram, TokIdent, TokSemicolon, TokBegin, TokIdent, TokAssign,
		TokIdent, TokPlus, TokNumber, TokEnd, TokPeriod, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("<= >= <> < > = + - * / mod and or not := , . ; ( ) [ ]")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokLe, TokGe, TokNe, TokLt, TokGt, TokEq, TokPlus, TokMinus, TokStar,
		TokSlash, TokMod, TokAnd, TokOr, TokNot, TokAssign, TokComma, TokPeriod,
		TokSemicolon, TokLParen, TokRParen, TokLBracket, TokRBracket, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeNumbersAndIdents(t *testing.T) {
	toks, err := Tokenize("abc x1 _tmp 42 007")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "abc" || toks[1].Text != "x1" || toks[2].Text != "_tmp" {
		t.Errorf("identifiers = %q %q %q", toks[0].Text, toks[1].Text, toks[2].Text)
	}
	if toks[3].Num != 42 || toks[4].Num != 7 {
		t.Errorf("numbers = %d %d", toks[3].Num, toks[4].Num)
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("x { this is a comment } y")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Errorf("tokens around comment = %v", toks)
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("x\n  y")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("x position = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("y position = %v", toks[1].Pos)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{
		"x @ y",                      // illegal character
		"x : y",                      // ':' without '='
		"{ unterminated ",            // unterminated comment
		"99999999999999999999999999", // number overflow
	}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		}
	}
}

func TestLexErrorMessage(t *testing.T) {
	_, err := Tokenize("\n  @")
	if err == nil {
		t.Fatal("expected error")
	}
	le, ok := err.(*LexError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if le.Pos.Line != 2 || le.Pos.Col != 3 {
		t.Errorf("error position = %v", le.Pos)
	}
	if le.Error() == "" {
		t.Error("empty error message")
	}
}

func TestTokenString(t *testing.T) {
	if (Token{Kind: TokIdent, Text: "foo"}).String() != `identifier "foo"` {
		t.Error("identifier token String")
	}
	if (Token{Kind: TokNumber, Num: 5}).String() != "number 5" {
		t.Error("number token String")
	}
	if (Token{Kind: TokBegin}).String() != "'begin'" {
		t.Error("keyword token String")
	}
	if TokenKind(999).String() == "" {
		t.Error("unknown token kind should render")
	}
	if (Position{Line: 3, Col: 9}).String() != "3:9" {
		t.Error("position String")
	}
}
