package hlr

import (
	"fmt"
	"strconv"
	"unicode"
)

// LexError describes a lexical error with its source position.
type LexError struct {
	Pos Position
	Msg string
}

// Error implements the error interface.
func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer turns MiniLang source text into tokens.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Tokenize lexes the entire input, returning all tokens including the final
// EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) here() Position { return Position{Line: l.line, Col: l.col} }

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '{': // ALGOL-style comment in braces
			start := l.here()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return &LexError{Pos: start, Msg: "unterminated comment"}
				}
				if l.advance() == '}' {
					break
				}
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.here()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
		text := string(l.src[start:l.pos])
		if kind, ok := keywords[text]; ok {
			return Token{Kind: kind, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil

	case unicode.IsDigit(r):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
		text := string(l.src[start:l.pos])
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, &LexError{Pos: pos, Msg: fmt.Sprintf("invalid number %q", text)}
		}
		return Token{Kind: TokNumber, Text: text, Num: n, Pos: pos}, nil
	}

	l.advance()
	switch r {
	case ';':
		return Token{Kind: TokSemicolon, Text: ";", Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Text: ",", Pos: pos}, nil
	case '.':
		return Token{Kind: TokPeriod, Text: ".", Pos: pos}, nil
	case '(':
		return Token{Kind: TokLParen, Text: "(", Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Text: ")", Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Text: "[", Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Text: "]", Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Text: "+", Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Text: "-", Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Text: "*", Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Text: "/", Pos: pos}, nil
	case '=':
		return Token{Kind: TokEq, Text: "=", Pos: pos}, nil
	case ':':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokAssign, Text: ":=", Pos: pos}, nil
		}
		return Token{}, &LexError{Pos: pos, Msg: "expected '=' after ':'"}
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			return Token{Kind: TokLe, Text: "<=", Pos: pos}, nil
		case '>':
			l.advance()
			return Token{Kind: TokNe, Text: "<>", Pos: pos}, nil
		}
		return Token{Kind: TokLt, Text: "<", Pos: pos}, nil
	case '>':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokGe, Text: ">=", Pos: pos}, nil
		}
		return Token{Kind: TokGt, Text: ">", Pos: pos}, nil
	}
	return Token{}, &LexError{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", r)}
}
