package hlr

import (
	"errors"
	"fmt"
)

// Evaluation errors.
var (
	// ErrStepLimit is returned when an evaluation exceeds its step budget.
	ErrStepLimit = errors.New("hlr: evaluation step limit exceeded")
	// ErrDivideByZero is returned on division or modulo by zero.
	ErrDivideByZero = errors.New("hlr: division by zero")
	// ErrIndexRange is returned on an out-of-range array index.
	ErrIndexRange = errors.New("hlr: array index out of range")
	// ErrCallDepth is returned when the activation stack grows too deep.
	ErrCallDepth = errors.New("hlr: call depth limit exceeded")
)

// EvalOptions bounds a reference evaluation.
type EvalOptions struct {
	// MaxSteps limits the number of statement/expression evaluations; zero
	// selects a generous default.
	MaxSteps int64
	// MaxDepth limits the activation-stack depth; zero selects a default.
	MaxDepth int
}

// DefaultEvalOptions returns the default evaluation bounds.
func DefaultEvalOptions() EvalOptions {
	return EvalOptions{MaxSteps: 50_000_000, MaxDepth: 10_000}
}

// Result is the observable outcome of a program run: the sequence of values
// printed.  It is the quantity every execution strategy in this reproduction
// must agree on.
type Result struct {
	Output []int64
	Steps  int64
}

// Evaluate runs the program on the reference tree-walking evaluator.  The
// program must have been analysed (Analyze) first; Evaluate analyses it if
// not.  This evaluator is the semantic oracle for the compiler, the DIR
// interpreters and the UHM simulation: all of them must produce the same
// Output.
func Evaluate(prog *Program, opts EvalOptions) (*Result, error) {
	if prog.Analysis == nil {
		if _, err := Analyze(prog); err != nil {
			return nil, err
		}
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultEvalOptions().MaxSteps
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = DefaultEvalOptions().MaxDepth
	}
	ev := &evaluator{analysis: prog.Analysis, opts: opts}
	main := prog.Analysis.Procs[0]
	root := &activation{proc: main, slots: make([]int64, main.FrameSlots)}
	_, _, err := ev.execBlock(main.Block, root)
	if err != nil {
		return nil, err
	}
	return &Result{Output: ev.output, Steps: ev.steps}, nil
}

type activation struct {
	proc   *ProcInfo
	slots  []int64
	static *activation
	depth  int // call depth, for the recursion limit
}

// frameAt follows static links until it reaches the activation whose scope
// depth equals wantDepth.
func (a *activation) frameAt(wantDepth int) *activation {
	f := a
	for f != nil && f.proc.Depth > wantDepth {
		f = f.static
	}
	return f
}

type evaluator struct {
	analysis *Analysis
	opts     EvalOptions
	output   []int64
	steps    int64
}

func (ev *evaluator) tick(pos Position) error {
	ev.steps++
	if ev.steps > ev.opts.MaxSteps {
		return fmt.Errorf("%w at %s", ErrStepLimit, pos)
	}
	return nil
}

type control int

const (
	ctlNormal control = iota
	ctlReturn
)

func (ev *evaluator) execBlock(blk *Block, act *activation) (control, int64, error) {
	return ev.execStmt(blk.Body, act)
}

func (ev *evaluator) execStmt(stmt Stmt, act *activation) (control, int64, error) {
	if err := ev.tick(stmt.Pos()); err != nil {
		return ctlNormal, 0, err
	}
	switch s := stmt.(type) {
	case *CompoundStmt:
		for _, inner := range s.Stmts {
			ctl, v, err := ev.execStmt(inner, act)
			if err != nil || ctl == ctlReturn {
				return ctl, v, err
			}
		}
		return ctlNormal, 0, nil

	case *AssignStmt:
		// Strict left-to-right evaluation: the target's index expression is
		// evaluated before the assigned value, matching the order the
		// compiler emits (push index, push value, store-indexed).  Both
		// subexpressions can have side effects through function-style calls,
		// so the order is observable program output.
		var index int64
		if s.Index != nil {
			var err error
			index, err = ev.evalExpr(s.Index, act)
			if err != nil {
				return ctlNormal, 0, err
			}
		}
		value, err := ev.evalExpr(s.Value, act)
		if err != nil {
			return ctlNormal, 0, err
		}
		if err := ev.store(s.TargetSym, s.Index != nil, index, value, act, s.Pos()); err != nil {
			return ctlNormal, 0, err
		}
		return ctlNormal, 0, nil

	case *IfStmt:
		cond, err := ev.evalExpr(s.Cond, act)
		if err != nil {
			return ctlNormal, 0, err
		}
		if cond != 0 {
			return ev.execStmt(s.Then, act)
		}
		if s.Else != nil {
			return ev.execStmt(s.Else, act)
		}
		return ctlNormal, 0, nil

	case *WhileStmt:
		for {
			if err := ev.tick(s.Pos()); err != nil {
				return ctlNormal, 0, err
			}
			cond, err := ev.evalExpr(s.Cond, act)
			if err != nil {
				return ctlNormal, 0, err
			}
			if cond == 0 {
				return ctlNormal, 0, nil
			}
			ctl, v, err := ev.execStmt(s.Body, act)
			if err != nil || ctl == ctlReturn {
				return ctl, v, err
			}
		}

	case *CallStmt:
		_, err := ev.call(s.ProcSym, s.Args, act, s.Pos())
		return ctlNormal, 0, err

	case *PrintStmt:
		v, err := ev.evalExpr(s.Value, act)
		if err != nil {
			return ctlNormal, 0, err
		}
		ev.output = append(ev.output, v)
		return ctlNormal, 0, nil

	case *ReturnStmt:
		var v int64
		if s.Value != nil {
			var err error
			v, err = ev.evalExpr(s.Value, act)
			if err != nil {
				return ctlNormal, 0, err
			}
		}
		return ctlReturn, v, nil

	case *EmptyStmt:
		return ctlNormal, 0, nil

	default:
		return ctlNormal, 0, fmt.Errorf("hlr: unsupported statement %T at %s", stmt, stmt.Pos())
	}
}

// store writes value to sym (at the pre-evaluated element index when indexed
// is true; the index is evaluated by the caller so that assignment evaluation
// order is explicit).
func (ev *evaluator) store(sym *Symbol, indexed bool, idx, value int64, act *activation, pos Position) error {
	frame := act.frameAt(sym.Depth)
	if frame == nil {
		return fmt.Errorf("hlr: no activation at depth %d for %q at %s", sym.Depth, sym.Name, pos)
	}
	slot := int64(sym.Offset)
	if indexed {
		if idx < 0 || idx >= sym.Size {
			return fmt.Errorf("%w: %s[%d] (size %d) at %s", ErrIndexRange, sym.Name, idx, sym.Size, pos)
		}
		slot += idx
	}
	frame.slots[slot] = value
	return nil
}

func (ev *evaluator) load(sym *Symbol, index Expr, act *activation, pos Position) (int64, error) {
	frame := act.frameAt(sym.Depth)
	if frame == nil {
		return 0, fmt.Errorf("hlr: no activation at depth %d for %q at %s", sym.Depth, sym.Name, pos)
	}
	slot := int64(sym.Offset)
	if index != nil {
		idx, err := ev.evalExpr(index, act)
		if err != nil {
			return 0, err
		}
		if idx < 0 || idx >= sym.Size {
			return 0, fmt.Errorf("%w: %s[%d] (size %d) at %s", ErrIndexRange, sym.Name, idx, sym.Size, pos)
		}
		slot += idx
	}
	return frame.slots[slot], nil
}

func (ev *evaluator) call(procSym *Symbol, args []Expr, act *activation, pos Position) (int64, error) {
	if act.depth+1 > ev.opts.MaxDepth {
		return 0, fmt.Errorf("%w at %s", ErrCallDepth, pos)
	}
	info := procSym.Proc
	frame := &activation{
		proc:   info,
		slots:  make([]int64, info.FrameSlots),
		static: act.frameAt(procSym.Depth),
		depth:  act.depth + 1,
	}
	for i, arg := range args {
		v, err := ev.evalExpr(arg, act)
		if err != nil {
			return 0, err
		}
		frame.slots[i] = v
	}
	ctl, v, err := ev.execBlock(info.Block, frame)
	if err != nil {
		return 0, err
	}
	if ctl == ctlReturn {
		return v, nil
	}
	return 0, nil
}

func (ev *evaluator) evalExpr(expr Expr, act *activation) (int64, error) {
	if err := ev.tick(expr.Pos()); err != nil {
		return 0, err
	}
	switch e := expr.(type) {
	case *NumberLit:
		return e.Value, nil
	case *VarRef:
		return ev.load(e.Sym, e.Index, act, e.Pos())
	case *CallExpr:
		return ev.call(e.ProcSym, e.Args, act, e.Pos())
	case *UnaryExpr:
		v, err := ev.evalExpr(e.Operand, act)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case OpNeg:
			return -v, nil
		case OpNot:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		default:
			return 0, fmt.Errorf("hlr: unknown unary operator %v at %s", e.Op, e.Pos())
		}
	case *BinaryExpr:
		left, err := ev.evalExpr(e.Left, act)
		if err != nil {
			return 0, err
		}
		// MiniLang has no short-circuit evaluation: both operands of "and"
		// and "or" are always evaluated, as in classic ALGOL boolean
		// operators.  This keeps every execution strategy's instruction
		// counts directly comparable.
		right, err := ev.evalExpr(e.Right, act)
		if err != nil {
			return 0, err
		}
		return applyBinOp(e.Op, left, right, e.Pos())
	default:
		return 0, fmt.Errorf("hlr: unsupported expression %T at %s", expr, expr.Pos())
	}
}

// applyBinOp applies a binary operator with MiniLang semantics (booleans are
// 0/1 integers, division truncates toward zero as in Go).
func applyBinOp(op BinOp, a, b int64, pos Position) (int64, error) {
	boolToInt := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return 0, fmt.Errorf("%w at %s", ErrDivideByZero, pos)
		}
		return a / b, nil
	case OpMod:
		if b == 0 {
			return 0, fmt.Errorf("%w at %s", ErrDivideByZero, pos)
		}
		return a % b, nil
	case OpEq:
		return boolToInt(a == b), nil
	case OpNe:
		return boolToInt(a != b), nil
	case OpLt:
		return boolToInt(a < b), nil
	case OpLe:
		return boolToInt(a <= b), nil
	case OpGt:
		return boolToInt(a > b), nil
	case OpGe:
		return boolToInt(a >= b), nil
	case OpAnd:
		return boolToInt(a != 0 && b != 0), nil
	case OpOr:
		return boolToInt(a != 0 || b != 0), nil
	default:
		return 0, fmt.Errorf("hlr: unknown binary operator %v at %s", op, pos)
	}
}
