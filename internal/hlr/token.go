package hlr

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber

	// Keywords.
	TokProgram
	TokVar
	TokProc
	TokBegin
	TokEnd
	TokIf
	TokThen
	TokElse
	TokWhile
	TokDo
	TokCall
	TokPrint
	TokReturn
	TokAnd
	TokOr
	TokNot
	TokMod

	// Punctuation and operators.
	TokSemicolon
	TokComma
	TokPeriod
	TokAssign // :=
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
)

var tokenNames = map[TokenKind]string{
	TokEOF:       "end of input",
	TokIdent:     "identifier",
	TokNumber:    "number",
	TokProgram:   "'program'",
	TokVar:       "'var'",
	TokProc:      "'proc'",
	TokBegin:     "'begin'",
	TokEnd:       "'end'",
	TokIf:        "'if'",
	TokThen:      "'then'",
	TokElse:      "'else'",
	TokWhile:     "'while'",
	TokDo:        "'do'",
	TokCall:      "'call'",
	TokPrint:     "'print'",
	TokReturn:    "'return'",
	TokAnd:       "'and'",
	TokOr:        "'or'",
	TokNot:       "'not'",
	TokMod:       "'mod'",
	TokSemicolon: "';'",
	TokComma:     "','",
	TokPeriod:    "'.'",
	TokAssign:    "':='",
	TokLParen:    "'('",
	TokRParen:    "')'",
	TokLBracket:  "'['",
	TokRBracket:  "']'",
	TokPlus:      "'+'",
	TokMinus:     "'-'",
	TokStar:      "'*'",
	TokSlash:     "'/'",
	TokEq:        "'='",
	TokNe:        "'<>'",
	TokLt:        "'<'",
	TokLe:        "'<='",
	TokGt:        "'>'",
	TokGe:        "'>='",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"program": TokProgram,
	"var":     TokVar,
	"proc":    TokProc,
	"begin":   TokBegin,
	"end":     TokEnd,
	"if":      TokIf,
	"then":    TokThen,
	"else":    TokElse,
	"while":   TokWhile,
	"do":      TokDo,
	"call":    TokCall,
	"print":   TokPrint,
	"return":  TokReturn,
	"and":     TokAnd,
	"or":      TokOr,
	"not":     TokNot,
	"mod":     TokMod,
}

// Position is a source location.
type Position struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Num  int64 // valid when Kind == TokNumber
	Pos  Position
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokNumber:
		return fmt.Sprintf("number %d", t.Num)
	default:
		return t.Kind.String()
	}
}
