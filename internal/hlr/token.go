// Package hlr implements the high-level representation (HLR) substrate: a
// small block-structured language ("MiniLang") in the ALGOL tradition the
// paper uses as its reference point for HLRs (§2.2), together with a lexer,
// parser, semantic analyser and a reference evaluator.
//
// MiniLang exhibits the HLR properties the paper relies on: block structure
// with nested procedures (the contour model), names whose mapping to storage
// is established by declarations in enclosing scopes, hierarchical expression
// syntax, and symbolic names of unbounded length.  The compiler in
// internal/compile removes exactly the features the paper says a DIR must
// not have: it binds names to (depth, offset) machine addresses, flattens
// the expression tree to a sequential form and discards symbolic names.
//
// Grammar (EBNF):
//
//	program   = "program" ident ";" block "." .
//	block     = { varDecl } { procDecl } compound .
//	varDecl   = "var" varItem { "," varItem } ";" .
//	varItem   = ident [ "[" number "]" ] .
//	procDecl  = "proc" ident "(" [ ident { "," ident } ] ")" ";" block ";" .
//	compound  = "begin" stmt { ";" stmt } "end" .
//	stmt      = assign | ifStmt | whileStmt | compound | callStmt
//	          | printStmt | returnStmt | /* empty */ .
//	assign    = ident [ "[" expr "]" ] ":=" expr .
//	ifStmt    = "if" expr "then" stmt [ "else" stmt ] .
//	whileStmt = "while" expr "do" stmt .
//	callStmt  = "call" ident "(" [ expr { "," expr } ] ")" .
//	printStmt = "print" expr .
//	returnStmt= "return" [ expr ] .
//	expr      = orExpr .
//	orExpr    = andExpr { "or" andExpr } .
//	andExpr   = relExpr { "and" relExpr } .
//	relExpr   = addExpr [ ( "=" | "<>" | "<" | "<=" | ">" | ">=" ) addExpr ] .
//	addExpr   = mulExpr { ( "+" | "-" ) mulExpr } .
//	mulExpr   = unary { ( "*" | "/" | "mod" ) unary } .
//	unary     = [ "-" | "not" ] primary .
//	primary   = number | ident [ "[" expr "]" | "(" [ expr { "," expr } ] ")" ]
//	          | "(" expr ")" .
package hlr

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber

	// Keywords.
	TokProgram
	TokVar
	TokProc
	TokBegin
	TokEnd
	TokIf
	TokThen
	TokElse
	TokWhile
	TokDo
	TokCall
	TokPrint
	TokReturn
	TokAnd
	TokOr
	TokNot
	TokMod

	// Punctuation and operators.
	TokSemicolon
	TokComma
	TokPeriod
	TokAssign // :=
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
)

var tokenNames = map[TokenKind]string{
	TokEOF:       "end of input",
	TokIdent:     "identifier",
	TokNumber:    "number",
	TokProgram:   "'program'",
	TokVar:       "'var'",
	TokProc:      "'proc'",
	TokBegin:     "'begin'",
	TokEnd:       "'end'",
	TokIf:        "'if'",
	TokThen:      "'then'",
	TokElse:      "'else'",
	TokWhile:     "'while'",
	TokDo:        "'do'",
	TokCall:      "'call'",
	TokPrint:     "'print'",
	TokReturn:    "'return'",
	TokAnd:       "'and'",
	TokOr:        "'or'",
	TokNot:       "'not'",
	TokMod:       "'mod'",
	TokSemicolon: "';'",
	TokComma:     "','",
	TokPeriod:    "'.'",
	TokAssign:    "':='",
	TokLParen:    "'('",
	TokRParen:    "')'",
	TokLBracket:  "'['",
	TokRBracket:  "']'",
	TokPlus:      "'+'",
	TokMinus:     "'-'",
	TokStar:      "'*'",
	TokSlash:     "'/'",
	TokEq:        "'='",
	TokNe:        "'<>'",
	TokLt:        "'<'",
	TokLe:        "'<='",
	TokGt:        "'>'",
	TokGe:        "'>='",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"program": TokProgram,
	"var":     TokVar,
	"proc":    TokProc,
	"begin":   TokBegin,
	"end":     TokEnd,
	"if":      TokIf,
	"then":    TokThen,
	"else":    TokElse,
	"while":   TokWhile,
	"do":      TokDo,
	"call":    TokCall,
	"print":   TokPrint,
	"return":  TokReturn,
	"and":     TokAnd,
	"or":      TokOr,
	"not":     TokNot,
	"mod":     TokMod,
}

// Position is a source location.
type Position struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Num  int64 // valid when Kind == TokNumber
	Pos  Position
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokNumber:
		return fmt.Sprintf("number %d", t.Num)
	default:
		return t.Kind.String()
	}
}
