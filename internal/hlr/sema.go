package hlr

import "fmt"

// SemaError is a semantic-analysis error with its source position.
type SemaError struct {
	Pos Position
	Msg string
}

// Error implements the error interface.
func (e *SemaError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// SymbolKind categorises declared names.
type SymbolKind int

// Symbol kinds.
const (
	SymScalar SymbolKind = iota
	SymArray
	SymParam
	SymProc
)

// String returns the kind's name.
func (k SymbolKind) String() string {
	switch k {
	case SymScalar:
		return "variable"
	case SymArray:
		return "array"
	case SymParam:
		return "parameter"
	case SymProc:
		return "procedure"
	default:
		return fmt.Sprintf("symbol(%d)", int(k))
	}
}

// Symbol is a declared name, bound to a machine-oriented address: the static
// nesting depth of its declaring contour and its slot offset within that
// contour's frame.  This is precisely the binding the paper says the compiler
// must perform so that the DIR "does not require an associative memory".
type Symbol struct {
	Name   string
	Kind   SymbolKind
	Depth  int   // static nesting depth of the declaring scope (0 = outermost)
	Offset int   // first frame slot occupied
	Size   int64 // number of slots (1 for scalars and parameters)
	Proc   *ProcInfo
}

// IsStorage reports whether the symbol occupies frame storage.
func (s *Symbol) IsStorage() bool { return s.Kind != SymProc }

// ProcInfo describes a procedure (or the main program body, which is
// procedure index 0).
type ProcInfo struct {
	Name       string
	Index      int // dense index; 0 is the main program body
	Depth      int // static nesting depth of the procedure's own scope
	NumParams  int
	FrameSlots int       // total frame slots: parameters, scalars and array storage
	Decl       *ProcDecl // nil for the main program body
	Block      *Block
}

// Scope is a contour: the set of names declared by one block, linked to its
// statically enclosing scope.
type Scope struct {
	Parent  *Scope
	Depth   int
	Proc    *ProcInfo
	symbols map[string]*Symbol
	order   []*Symbol
}

func newScope(parent *Scope, proc *ProcInfo) *Scope {
	depth := 0
	if parent != nil {
		depth = parent.Depth + 1
	}
	return &Scope{Parent: parent, Depth: depth, Proc: proc, symbols: make(map[string]*Symbol)}
}

// Lookup resolves a name through the static chain, innermost scope first.
func (s *Scope) Lookup(name string) *Symbol {
	for scope := s; scope != nil; scope = scope.Parent {
		if sym, ok := scope.symbols[name]; ok {
			return sym
		}
	}
	return nil
}

// LookupLocal resolves a name in this scope only.
func (s *Scope) LookupLocal(name string) *Symbol {
	return s.symbols[name]
}

// Symbols returns the scope's symbols in declaration order.
func (s *Scope) Symbols() []*Symbol { return s.order }

// VisibleCount returns the number of storage symbols visible from this scope
// (the quantity that fixes the contextual operand-field width of §3.2).
func (s *Scope) VisibleCount() int {
	n := 0
	for scope := s; scope != nil; scope = scope.Parent {
		for _, sym := range scope.order {
			if sym.IsStorage() {
				n++
			}
		}
	}
	return n
}

func (s *Scope) declare(sym *Symbol) error {
	if _, dup := s.symbols[sym.Name]; dup {
		return fmt.Errorf("%q is already declared in this scope", sym.Name)
	}
	s.symbols[sym.Name] = sym
	s.order = append(s.order, sym)
	return nil
}

// Analysis is the result of semantic analysis: the procedure table and the
// root scope, with every name reference in the AST annotated with its Symbol.
type Analysis struct {
	Procs     []*ProcInfo
	RootScope *Scope
}

// MainFrameSlots returns the frame size of the main program body.
func (a *Analysis) MainFrameSlots() int { return a.Procs[0].FrameSlots }

// ProcByName returns the ProcInfo with the given name, if any.  Procedure
// names are not required to be globally unique in MiniLang (they obey scope
// rules); the first match in procedure-index order is returned, which is
// sufficient for the workload programs and tools.
func (a *Analysis) ProcByName(name string) (*ProcInfo, bool) {
	for _, p := range a.Procs {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

type analyzer struct {
	procs []*ProcInfo
}

// Analyze performs semantic analysis on a parsed program: it builds scopes,
// assigns (depth, offset) addresses to every variable, parameter and array,
// numbers every procedure, resolves every name reference and checks argument
// counts and indexing.  On success the Program's Analysis field is populated
// and the same value is returned.
func Analyze(prog *Program) (*Analysis, error) {
	a := &analyzer{}
	main := &ProcInfo{Name: prog.Name, Index: 0, Depth: 0, Block: prog.Block}
	a.procs = append(a.procs, main)
	rootScope := newScope(nil, main)
	if err := a.analyzeBlock(prog.Block, rootScope, main); err != nil {
		return nil, err
	}
	analysis := &Analysis{Procs: a.procs, RootScope: rootScope}
	prog.Analysis = analysis
	return analysis, nil
}

// analyzeBlock declares the block's variables and procedures in scope and
// analyses nested procedure bodies and the block body.
func (a *analyzer) analyzeBlock(blk *Block, scope *Scope, proc *ProcInfo) error {
	blk.Scope = scope
	// Declare variables, assigning consecutive frame slots after any slots
	// already used (parameters of the enclosing procedure).
	for _, v := range blk.Vars {
		kind := SymScalar
		size := int64(1)
		if v.IsArray() {
			kind = SymArray
			size = v.Size
		}
		sym := &Symbol{Name: v.Name, Kind: kind, Depth: scope.Depth, Offset: proc.FrameSlots, Size: size}
		if err := scope.declare(sym); err != nil {
			return &SemaError{Pos: v.Pos(), Msg: err.Error()}
		}
		proc.FrameSlots += int(size)
	}
	// Declare procedures (so they are visible to each other and recursively
	// to themselves) before analysing their bodies.
	for _, pd := range blk.Procs {
		info := &ProcInfo{
			Name:      pd.Name,
			Index:     len(a.procs),
			Depth:     scope.Depth + 1,
			NumParams: len(pd.Params),
			Decl:      pd,
			Block:     pd.Body,
		}
		sym := &Symbol{Name: pd.Name, Kind: SymProc, Depth: scope.Depth, Proc: info}
		if err := scope.declare(sym); err != nil {
			return &SemaError{Pos: pd.Pos(), Msg: err.Error()}
		}
		pd.Sym = sym
		a.procs = append(a.procs, info)
	}
	for _, pd := range blk.Procs {
		procScope := newScope(scope, pd.Sym.Proc)
		info := pd.Sym.Proc
		for _, param := range pd.Params {
			sym := &Symbol{Name: param, Kind: SymParam, Depth: procScope.Depth, Offset: info.FrameSlots, Size: 1}
			if err := procScope.declare(sym); err != nil {
				return &SemaError{Pos: pd.Pos(), Msg: fmt.Sprintf("parameter %s", err)}
			}
			info.FrameSlots++
		}
		if err := a.analyzeBlock(pd.Body, procScope, info); err != nil {
			return err
		}
	}
	return a.analyzeStmt(blk.Body, scope)
}

func (a *analyzer) analyzeStmt(stmt Stmt, scope *Scope) error {
	switch s := stmt.(type) {
	case *CompoundStmt:
		for _, inner := range s.Stmts {
			if err := a.analyzeStmt(inner, scope); err != nil {
				return err
			}
		}
		return nil
	case *AssignStmt:
		sym := scope.Lookup(s.Target)
		if sym == nil {
			return &SemaError{Pos: s.Pos(), Msg: fmt.Sprintf("undeclared name %q", s.Target)}
		}
		if !sym.IsStorage() {
			return &SemaError{Pos: s.Pos(), Msg: fmt.Sprintf("cannot assign to %s %q", sym.Kind, s.Target)}
		}
		if s.Index != nil {
			if sym.Kind != SymArray {
				return &SemaError{Pos: s.Pos(), Msg: fmt.Sprintf("%q is not an array", s.Target)}
			}
			if err := a.analyzeExpr(s.Index, scope); err != nil {
				return err
			}
		} else if sym.Kind == SymArray {
			return &SemaError{Pos: s.Pos(), Msg: fmt.Sprintf("array %q must be indexed", s.Target)}
		}
		s.TargetSym = sym
		return a.analyzeExpr(s.Value, scope)
	case *IfStmt:
		if err := a.analyzeExpr(s.Cond, scope); err != nil {
			return err
		}
		if err := a.analyzeStmt(s.Then, scope); err != nil {
			return err
		}
		if s.Else != nil {
			return a.analyzeStmt(s.Else, scope)
		}
		return nil
	case *WhileStmt:
		if err := a.analyzeExpr(s.Cond, scope); err != nil {
			return err
		}
		return a.analyzeStmt(s.Body, scope)
	case *CallStmt:
		sym, err := a.resolveProc(s.Name, len(s.Args), s.Pos(), scope)
		if err != nil {
			return err
		}
		s.ProcSym = sym
		for _, arg := range s.Args {
			if err := a.analyzeExpr(arg, scope); err != nil {
				return err
			}
		}
		return nil
	case *PrintStmt:
		return a.analyzeExpr(s.Value, scope)
	case *ReturnStmt:
		if s.Value != nil {
			return a.analyzeExpr(s.Value, scope)
		}
		return nil
	case *EmptyStmt:
		return nil
	default:
		return &SemaError{Pos: stmt.Pos(), Msg: fmt.Sprintf("unsupported statement %T", stmt)}
	}
}

func (a *analyzer) analyzeExpr(expr Expr, scope *Scope) error {
	switch e := expr.(type) {
	case *NumberLit:
		return nil
	case *VarRef:
		sym := scope.Lookup(e.Name)
		if sym == nil {
			return &SemaError{Pos: e.Pos(), Msg: fmt.Sprintf("undeclared name %q", e.Name)}
		}
		if !sym.IsStorage() {
			return &SemaError{Pos: e.Pos(), Msg: fmt.Sprintf("%s %q used as a variable", sym.Kind, e.Name)}
		}
		if e.Index != nil {
			if sym.Kind != SymArray {
				return &SemaError{Pos: e.Pos(), Msg: fmt.Sprintf("%q is not an array", e.Name)}
			}
			if err := a.analyzeExpr(e.Index, scope); err != nil {
				return err
			}
		} else if sym.Kind == SymArray {
			return &SemaError{Pos: e.Pos(), Msg: fmt.Sprintf("array %q must be indexed", e.Name)}
		}
		e.Sym = sym
		return nil
	case *CallExpr:
		sym, err := a.resolveProc(e.Name, len(e.Args), e.Pos(), scope)
		if err != nil {
			return err
		}
		e.ProcSym = sym
		for _, arg := range e.Args {
			if err := a.analyzeExpr(arg, scope); err != nil {
				return err
			}
		}
		return nil
	case *BinaryExpr:
		if err := a.analyzeExpr(e.Left, scope); err != nil {
			return err
		}
		return a.analyzeExpr(e.Right, scope)
	case *UnaryExpr:
		return a.analyzeExpr(e.Operand, scope)
	default:
		return &SemaError{Pos: expr.Pos(), Msg: fmt.Sprintf("unsupported expression %T", expr)}
	}
}

func (a *analyzer) resolveProc(name string, nargs int, pos Position, scope *Scope) (*Symbol, error) {
	sym := scope.Lookup(name)
	if sym == nil {
		return nil, &SemaError{Pos: pos, Msg: fmt.Sprintf("undeclared procedure %q", name)}
	}
	if sym.Kind != SymProc {
		return nil, &SemaError{Pos: pos, Msg: fmt.Sprintf("%s %q called as a procedure", sym.Kind, name)}
	}
	if sym.Proc.NumParams != nargs {
		return nil, &SemaError{
			Pos: pos,
			Msg: fmt.Sprintf("procedure %q expects %d argument(s), got %d", name, sym.Proc.NumParams, nargs),
		}
	}
	return sym, nil
}
