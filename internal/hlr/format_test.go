package hlr

import (
	"slices"
	"strings"
	"testing"
)

// formatRoundTripSources are programs with every statement and expression
// form the grammar offers.
var formatRoundTripSources = []string{
	`
program rt1;
var a[8], i, x;
proc f(n);
begin
  if n <= 0 then return 1;
  return n * f(n - 1)
end;
begin
  i := 0;
  while i < 8 do
  begin
    a[i] := f(i) mod 97;
    i := i + 1
  end;
  x := -a[3] + a[7] * 2 - a[1] / 3;
  if x > 10 and not (x = 11) or i >= 8 then
    print x
  else
    print -x;
  call f(3);
  print a[(x + 64) mod 8]
end.`,
	`
program rt2;
var g;
proc outer(k);
  var local;
  proc inner(m);
  begin
    return m - g
  end;
begin
  local := inner(k) + inner(k + 1);
  g := g + local;
  return local
end;
begin
  g := 5;
  print outer(2);
  print outer(-3);
  print g
end.`,
}

func evalOutput(t *testing.T, src string) []int64 {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Evaluate(prog, EvalOptions{})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	return res.Output
}

// TestFormatRoundTrip checks Parse∘Format preserves program behaviour and
// that Format is idempotent on re-parsed output.
func TestFormatRoundTrip(t *testing.T) {
	for i, src := range formatRoundTripSources {
		want := evalOutput(t, src)

		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		formatted := Format(prog)
		got := evalOutput(t, formatted)
		if !slices.Equal(got, want) {
			t.Errorf("program %d: formatted output %v, original %v\nformatted:\n%s", i, got, want, formatted)
		}

		reparsed, err := Parse(formatted)
		if err != nil {
			t.Fatalf("program %d: reparse: %v\n%s", i, err, formatted)
		}
		again := Format(reparsed)
		if again != formatted {
			t.Errorf("program %d: Format not idempotent:\nfirst:\n%s\nsecond:\n%s", i, formatted, again)
		}
	}
}

// TestFormatExprPrecedence checks the minimal-parentheses printer preserves
// tree shape through a reparse for the associativity and precedence traps.
func TestFormatExprPrecedence(t *testing.T) {
	n := func(v int64) Expr { return &NumberLit{Value: v} }
	b := func(op BinOp, l, r Expr) Expr { return &BinaryExpr{Op: op, Left: l, Right: r} }
	u := func(op UnOp, e Expr) Expr { return &UnaryExpr{Op: op, Operand: e} }

	cases := []struct {
		expr Expr
		want string
	}{
		{b(OpSub, n(1), b(OpSub, n(2), n(3))), "1 - (2 - 3)"},
		{b(OpSub, b(OpSub, n(1), n(2)), n(3)), "1 - 2 - 3"},
		{b(OpMul, b(OpAdd, n(1), n(2)), n(3)), "(1 + 2) * 3"},
		{b(OpAdd, n(1), b(OpMul, n(2), n(3))), "1 + 2 * 3"},
		{b(OpDiv, n(8), b(OpDiv, n(4), n(2))), "8 / (4 / 2)"},
		{b(OpMod, b(OpMod, n(9), n(5)), n(3)), "9 mod 5 mod 3"},
		{u(OpNeg, b(OpAdd, n(1), n(2))), "-(1 + 2)"},
		{u(OpNeg, n(-5)), "-(-5)"},
		{b(OpEq, b(OpLt, n(1), n(2)), n(1)), "(1 < 2) = 1"},
		{b(OpAnd, b(OpOr, n(1), n(0)), n(1)), "(1 or 0) and 1"},
		{b(OpOr, b(OpAnd, n(1), n(0)), n(1)), "1 and 0 or 1"},
		{u(OpNot, b(OpEq, n(1), n(1))), "not (1 = 1)"},
		{b(OpMul, n(2), u(OpNeg, n(3))), "2 * -3"},
	}
	for _, tc := range cases {
		got := FormatExpr(tc.expr)
		if got != tc.want {
			t.Errorf("FormatExpr = %q, want %q", got, tc.want)
		}
		// The printed form must survive a reparse inside a program and print
		// the same value the AST evaluates to.
		src := "program p;\nbegin\n  print " + got + "\nend."
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("reparse of %q: %v", got, err)
		}
		res, err := Evaluate(prog, EvalOptions{})
		if err != nil {
			t.Fatalf("eval of %q: %v", got, err)
		}

		direct := &Program{Name: "p", Block: &Block{Body: &CompoundStmt{
			Stmts: []Stmt{&PrintStmt{Value: tc.expr}},
		}}}
		wantRes, err := Evaluate(direct, EvalOptions{})
		if err != nil {
			t.Fatalf("direct eval of %q: %v", tc.want, err)
		}
		if !slices.Equal(res.Output, wantRes.Output) {
			t.Errorf("%q: reparsed value %v, AST value %v", got, res.Output, wantRes.Output)
		}
	}
}

// TestFormatWrapsDanglingElse checks the printer's conservative statement
// bodies keep an else bound to its if.
func TestFormatWrapsDanglingElse(t *testing.T) {
	inner := &IfStmt{Cond: &NumberLit{Value: 1}, Then: &PrintStmt{Value: &NumberLit{Value: 10}}}
	outer := &IfStmt{
		Cond: &NumberLit{Value: 0},
		Then: inner,
		Else: &PrintStmt{Value: &NumberLit{Value: 20}},
	}
	prog := &Program{Name: "p", Block: &Block{Body: &CompoundStmt{Stmts: []Stmt{outer}}}}
	src := Format(prog)
	got := evalOutput(t, src)
	// Outer condition is false, so the else branch must print 20.  A naive
	// printer would bind the else to the inner if and print nothing.
	if !slices.Equal(got, []int64{20}) {
		t.Errorf("dangling-else program printed %v, want [20]\n%s", got, src)
	}
	if !strings.Contains(src, "begin") {
		t.Errorf("expected begin/end-wrapped bodies:\n%s", src)
	}
}
