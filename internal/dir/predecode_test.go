package dir

import (
	"reflect"
	"testing"
)

// TestPredecodeRoundTrips decodes the whole binary once and checks every
// instruction and cost against a fresh sequential decoder.
func TestPredecodeRoundTrips(t *testing.T) {
	p := testProgram()
	for _, degree := range Degrees() {
		bin, err := Encode(p, degree)
		if err != nil {
			t.Fatalf("%v: %v", degree, err)
		}
		pd, err := bin.Predecode()
		if err != nil {
			t.Fatalf("%v: %v", degree, err)
		}
		if len(pd.Instrs) != len(p.Instrs) || len(pd.Costs) != len(p.Instrs) {
			t.Fatalf("%v: predecoded %d/%d entries, want %d", degree, len(pd.Instrs), len(pd.Costs), len(p.Instrs))
		}
		dec := bin.NewDecoder()
		var wantSteps int64
		for i := range p.Instrs {
			in, cost, err := dec.Decode(i)
			if err != nil {
				t.Fatalf("%v instr %d: %v", degree, i, err)
			}
			if !reflect.DeepEqual(pd.Instrs[i], in) {
				t.Errorf("%v instr %d: %v, want %v", degree, i, pd.Instrs[i], in)
			}
			if pd.Costs[i] != cost {
				t.Errorf("%v instr %d: cost %+v, want %+v", degree, i, pd.Costs[i], cost)
			}
			wantSteps += int64(cost.Steps)
		}
		if pd.TotalSteps() != wantSteps {
			t.Errorf("%v: TotalSteps = %d, want %d", degree, pd.TotalSteps(), wantSteps)
		}
	}
}
