package dir

import (
	"reflect"
	"strings"
	"testing"
)

func encodeOrFail(t *testing.T, p *Program, d Degree) *Binary {
	t.Helper()
	bin, err := Encode(p, d)
	if err != nil {
		t.Fatalf("Encode(%v): %v", d, err)
	}
	return bin
}

// decodeAll decodes every instruction of a binary and returns them with the
// total decode steps.
func decodeAll(t *testing.T, bin *Binary) ([]Instruction, int) {
	t.Helper()
	dec := bin.NewDecoder()
	out := make([]Instruction, bin.NumInstrs())
	steps := 0
	for i := range out {
		in, cost, err := dec.Decode(i)
		if err != nil {
			t.Fatalf("decode %d (%v): %v", i, bin.Degree, err)
		}
		out[i] = in
		steps += cost.Steps
	}
	return out, steps
}

// sameInstruction compares the fields the encoding must preserve.
func sameInstruction(a, b Instruction) bool {
	if a.Op != b.Op || a.Target != b.Target || a.Proc != b.Proc || a.NArgs != b.NArgs || a.Contour != b.Contour {
		return false
	}
	if len(a.Operands) != len(b.Operands) {
		return false
	}
	for i := range a.Operands {
		if a.Operands[i].Mode != b.Operands[i].Mode {
			return false
		}
		switch a.Operands[i].Mode {
		case ModeImm:
			if a.Operands[i].Imm != b.Operands[i].Imm {
				return false
			}
		case ModeVar:
			if a.Operands[i].Addr != b.Operands[i].Addr {
				return false
			}
		}
	}
	return true
}

func TestDegreeStringsAndValidity(t *testing.T) {
	if len(Degrees()) != 4 {
		t.Fatalf("Degrees() = %v", Degrees())
	}
	names := map[Degree]string{DegreePacked: "packed", DegreeContour: "contour", DegreeHuffman: "huffman", DegreePair: "pair"}
	for d, want := range names {
		if d.String() != want || !d.Valid() {
			t.Errorf("degree %d: %q valid=%v", d, d.String(), d.Valid())
		}
	}
	if Degree(9).Valid() || Degree(9).String() == "" {
		t.Error("degree 9 should be invalid but render")
	}
	if _, err := Encode(testProgram(), Degree(9)); err == nil {
		t.Error("Encode should reject an invalid degree")
	}
}

func TestEncodeRejectsInvalidProgram(t *testing.T) {
	p := testProgram()
	p.Instrs[0].Operands = nil
	if _, err := Encode(p, DegreePacked); err == nil {
		t.Error("Encode should validate the program")
	}
}

func TestRoundTripAllDegrees(t *testing.T) {
	programs := map[string]*Program{"stack": testProgram(), "high": highLevelProgram()}
	for name, p := range programs {
		for _, d := range Degrees() {
			t.Run(name+"/"+d.String(), func(t *testing.T) {
				bin := encodeOrFail(t, p, d)
				decoded, _ := decodeAll(t, bin)
				for i := range p.Instrs {
					want := p.Instrs[i]
					if !sameInstruction(decoded[i], want) {
						t.Errorf("instruction %d: decoded %v, want %v", i, decoded[i], want)
					}
				}
			})
		}
	}
}

func TestEncodedSizesShrinkWithDegree(t *testing.T) {
	p := testProgram()
	packed := encodeOrFail(t, p, DegreePacked)
	contourBin := encodeOrFail(t, p, DegreeContour)
	huff := encodeOrFail(t, p, DegreeHuffman)

	if packed.SizeBits() <= 0 {
		t.Fatal("packed size should be positive")
	}
	if contourBin.SizeBits() > packed.SizeBits() {
		t.Errorf("contour encoding (%d bits) should not exceed packed (%d bits)",
			contourBin.SizeBits(), packed.SizeBits())
	}
	if huff.SizeBits() > contourBin.SizeBits() {
		t.Errorf("huffman encoding (%d bits) should not exceed contour (%d bits)",
			huff.SizeBits(), contourBin.SizeBits())
	}
	if packed.SizeBytes() != (packed.SizeBits()+7)/8 {
		t.Errorf("SizeBytes inconsistent with SizeBits")
	}
	if packed.AvgInstrBits() <= 0 {
		t.Error("AvgInstrBits should be positive")
	}
	if len(packed.Bytes()) != packed.SizeBytes() {
		t.Errorf("Bytes length %d != SizeBytes %d", len(packed.Bytes()), packed.SizeBytes())
	}
}

func TestDecodeCostGrowsWithEncoding(t *testing.T) {
	p := testProgram()
	_, packedSteps := decodeAll(t, encodeOrFail(t, p, DegreePacked))
	_, huffSteps := decodeAll(t, encodeOrFail(t, p, DegreeHuffman))
	if packedSteps <= 0 {
		t.Fatal("packed decode steps should be positive")
	}
	if huffSteps < packedSteps {
		t.Errorf("huffman decode steps (%d) should be at least packed steps (%d)", huffSteps, packedSteps)
	}
}

func TestInstrBitRange(t *testing.T) {
	bin := encodeOrFail(t, testProgram(), DegreePacked)
	total := 0
	for i := 0; i < bin.NumInstrs(); i++ {
		off, length, err := bin.InstrBitRange(i)
		if err != nil {
			t.Fatal(err)
		}
		if off != total {
			t.Errorf("instruction %d offset = %d, want %d", i, off, total)
		}
		if length <= 0 {
			t.Errorf("instruction %d length = %d", i, length)
		}
		total += length
	}
	if total != bin.SizeBits() {
		t.Errorf("sum of lengths %d != total bits %d", total, bin.SizeBits())
	}
	if _, _, err := bin.InstrBitRange(-1); err == nil {
		t.Error("negative index should fail")
	}
	if _, _, err := bin.InstrBitRange(bin.NumInstrs()); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestCodebookBitsGrowWithDegree(t *testing.T) {
	p := testProgram()
	packed := encodeOrFail(t, p, DegreePacked).CodebookBits()
	contourBits := encodeOrFail(t, p, DegreeContour).CodebookBits()
	huff := encodeOrFail(t, p, DegreeHuffman).CodebookBits()
	pair := encodeOrFail(t, p, DegreePair).CodebookBits()
	if packed <= 0 {
		t.Error("packed codebook should be positive (width registers)")
	}
	if contourBits < packed {
		t.Errorf("contour codebook (%d) should be >= packed (%d)", contourBits, packed)
	}
	if huff <= contourBits {
		t.Errorf("huffman codebook (%d) should exceed contour (%d)", huff, contourBits)
	}
	if pair <= huff {
		t.Errorf("pair codebook (%d) should exceed huffman (%d)", pair, huff)
	}
}

func TestEncodeNotVisibleError(t *testing.T) {
	p := testProgram()
	// Reference a proc-1 local from the main contour: not visible.
	p.Instrs[2].Operands[0] = VarOperand(1, 1)
	if _, err := Encode(p, DegreeContour); err == nil || !strings.Contains(err.Error(), "not visible") {
		t.Errorf("err = %v, want a visibility error", err)
	}
	// Packed encoding does not need visibility and must still work.
	if _, err := Encode(p, DegreePacked); err != nil {
		t.Errorf("packed encode should not need visibility: %v", err)
	}
}

func TestDecoderContourReconstruction(t *testing.T) {
	p := testProgram()
	bin := encodeOrFail(t, p, DegreeContour)
	decoded, _ := decodeAll(t, bin)
	for i, in := range decoded {
		if in.Contour != p.Instrs[i].Contour {
			t.Errorf("instruction %d contour = %d, want %d", i, in.Contour, p.Instrs[i].Contour)
		}
	}
}

func TestZigzag(t *testing.T) {
	values := []int64{0, 1, -1, 2, -2, 1000, -1000, 1 << 40, -(1 << 40)}
	for _, v := range values {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip of %d = %d", v, got)
		}
	}
	if zigzag(0) != 0 || zigzag(-1) != 1 || zigzag(1) != 2 {
		t.Errorf("zigzag values: %d %d %d", zigzag(0), zigzag(-1), zigzag(1))
	}
}

func TestNegativeImmediatesAndBackwardBranches(t *testing.T) {
	p := &Program{
		Name:  "neg",
		Level: "stack",
		Procs: []Proc{{Name: "neg", Entry: 0, FrameSlots: 1}},
		Contours: []Contour{
			{Parent: 0, Locals: []ContourVar{{Addr: VarAddr{0, 0}, Size: 1}}},
		},
		Instrs: []Instruction{
			{Op: OpPushConst, Operands: []Operand{ImmOperand(-12345)}},
			{Op: OpStoreVar, Operands: []Operand{VarOperand(0, 0)}},
			{Op: OpJump, Target: 0}, // backward branch
			{Op: OpHalt},
		},
	}
	for _, d := range Degrees() {
		bin := encodeOrFail(t, p, d)
		decoded, _ := decodeAll(t, bin)
		if decoded[0].Operands[0].Imm != -12345 {
			t.Errorf("%v: negative immediate = %d", d, decoded[0].Operands[0].Imm)
		}
		if decoded[2].Target != 0 {
			t.Errorf("%v: backward target = %d", d, decoded[2].Target)
		}
	}
}

func TestTable1(t *testing.T) {
	specs := Table1(DefaultTable1Params())
	if len(specs) != 3 {
		t.Fatalf("Table1 rows = %d, want 3", len(specs))
	}
	psder, pdp, rx := specs[0], specs[1], specs[2]
	if !(psder.TotalBits() > pdp.TotalBits() && pdp.TotalBits() > rx.TotalBits()) {
		t.Errorf("sizes should strictly decrease: %d, %d, %d",
			psder.TotalBits(), pdp.TotalBits(), rx.TotalBits())
	}
	// With the default widths the RX format is the classic 32-bit layout.
	if rx.TotalBits() != 28 {
		t.Errorf("RX total = %d bits, want 28 (index register field omitted)", rx.TotalBits())
	}
	report := Table1Report(DefaultTable1Params())
	for _, want := range []string{"PSDER", "PDP-11", "System/360 RX", "Table 1"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	for _, spec := range specs {
		if spec.String() == "" {
			t.Error("empty spec string")
		}
	}
}

func TestReflectDeepEqualRoundTripPacked(t *testing.T) {
	// For the packed degree the decoded instruction stream must equal the
	// original exactly (including operand slices), not just field-by-field.
	p := testProgram()
	bin := encodeOrFail(t, p, DegreePacked)
	decoded, _ := decodeAll(t, bin)
	for i := range p.Instrs {
		want := p.Instrs[i]
		got := decoded[i]
		if len(want.Operands) == 0 && got.Operands == nil {
			got.Operands = want.Operands
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("instruction %d: %+v != %+v", i, got, want)
		}
	}
}

func BenchmarkEncodeHuffman(b *testing.B) {
	p := testProgram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(p, DegreeHuffman); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePacked(b *testing.B) {
	bin, err := Encode(testProgram(), DegreePacked)
	if err != nil {
		b.Fatal(err)
	}
	dec := bin.NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dec.Decode(i % bin.NumInstrs()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeHuffman(b *testing.B) {
	bin, err := Encode(testProgram(), DegreeHuffman)
	if err != nil {
		b.Fatal(err)
	}
	dec := bin.NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dec.Decode(i % bin.NumInstrs()); err != nil {
			b.Fatal(err)
		}
	}
}
