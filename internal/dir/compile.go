package dir

// Closure compilation: the most tightly bound executable form of a DIR
// program this reproduction supports, one step beyond the fully expanded
// PSDER representation of §3.1.  Compile lowers a program into a flat array
// of direct-threaded Go closures in which every piece of binding work an
// interpreter repeats per execution has been performed once, at compile
// time:
//
//   - operand fields are resolved: immediates are baked into the closure,
//     variable references are reduced to a static-link hop count plus a
//     frame offset (the up-level search of frameAt is gone);
//   - branch targets and fall-through successors are resolved to compiled-op
//     indices, so dispatch is "return the next index" rather than a switch
//     on the opcode;
//   - common opcode pairs are fused into superinstructions (push+arith,
//     push+store, compare+branch), halving dispatch and fetch on the hottest
//     static patterns.
//
// The compiled form trades space for binding, continuing the Figure 1
// trajectory: it is the largest representation of all (FootprintWords) and
// the cheapest to execute.  internal/sim exposes it as the fifth machine
// organisation (sim.Compiled).
//
// Safety: the compiler resolves up-level addressing from the static contour
// of each instruction, so it assumes contour-consistent control flow —
// control enters a procedure body only through OpCall, as every program
// emitted by internal/compile does.  Each up-level access still verifies at
// run time that the frame reached declares the addressed depth, so a
// violation surfaces as an error, never as silent corruption.

import (
	"errors"
	"fmt"
)

// Compilation and compiled-execution errors.
var (
	// ErrFusedTarget is returned when control transfers into the middle of a
	// fused superinstruction (impossible for programs compiled by Compile
	// itself, since join points are never fused over).
	ErrFusedTarget = errors.New("dir: control transfer into a fused superinstruction")
)

// compiledFn is one direct-threaded closure.  It executes the semantics of
// one (or, fused, two) DIR instructions against the machine state and
// returns the compiled-op index of its successor, or haltIndex when the
// program finished.
type compiledFn func(m *MachineState, maxDepth int) (int, error)

// haltIndex is the successor index meaning "the program halted".
const haltIndex = -1

// compiledOp is one slot of the compiled program.
type compiledOp struct {
	fn compiledFn
	// instrs is the number of DIR instructions this op retires per execution
	// (2 for a fused superinstruction, else 1), keeping dynamic instruction
	// counts identical to every interpreted organisation.
	instrs int64
	// cost is the op's native semantic cost in level-1 cycles, a compile-time
	// constant (see nativeCost).
	cost int64
	// pc is the DIR index of the op's first instruction (diagnostics).
	pc int
}

// CompiledOpWords is the nominal level-1 footprint of one compiled op in
// words.  Native closure code is bulkier than the PSDER word stream it
// replaces (roughly the long-format expansion of the semantic work plus the
// resolved operands), which is exactly the paper's size-versus-binding
// trade-off carried one step further than the expanded machine language.
const CompiledOpWords = 6

// CompiledRunStats is the cost accounting of one compiled run.
type CompiledRunStats struct {
	// Instructions is the number of DIR instructions retired.
	Instructions int64
	// SemanticCost is the total native semantic cost in level-1 cycles.
	SemanticCost int64
	// Fetches is the number of compiled ops dispatched — the native
	// instruction fetches, one per op regardless of fusion width.
	Fetches int64
}

// CompiledProgram is a DIR program lowered to direct-threaded closures.  It
// is immutable after Compile and safe to share between goroutines; all
// mutable run-time state lives in the MachineState passed to Run.
type CompiledProgram struct {
	prog *Program
	ops  []compiledOp
	// pcToOp maps a DIR instruction index to its compiled-op index, or to
	// fusedSlot for the swallowed second half of a superinstruction.
	pcToOp []int
	entry  int
	fused  int
}

const fusedSlot = -1

// Program returns the source program.
func (c *CompiledProgram) Program() *Program { return c.prog }

// NumOps returns the number of compiled ops (≤ the instruction count; the
// difference is the number of fused pairs).
func (c *CompiledProgram) NumOps() int { return len(c.ops) }

// FusedPairs returns how many opcode pairs were fused into superinstructions.
func (c *CompiledProgram) FusedPairs() int { return c.fused }

// FootprintWords returns the nominal level-1 footprint of the compiled code
// in words — the static-size axis of Figure 1 for this organisation.
func (c *CompiledProgram) FootprintWords() int { return len(c.ops) * CompiledOpWords }

// Compile lowers the program into direct-threaded closures.  The program is
// validated first; the returned CompiledProgram is immutable.
func Compile(p *Program) (*CompiledProgram, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &CompiledProgram{prog: p, pcToOp: make([]int, len(p.Instrs))}

	// Join points: every pc that control can reach other than by falling
	// through from its predecessor.  A fused pair must not span one, or a
	// branch or return could land inside the superinstruction.
	join := make([]bool, len(p.Instrs))
	for _, proc := range p.Procs {
		join[proc.Entry] = true
	}
	for pc, in := range p.Instrs {
		if in.Op.HasTarget() {
			join[in.Target] = true
		}
		if in.Op.IsCall() && pc+1 < len(p.Instrs) {
			join[pc+1] = true // return address
		}
	}

	// First pass: assign op indices, deciding fusion greedily left to right.
	for pc := 0; pc < len(p.Instrs); {
		c.pcToOp[pc] = len(c.ops)
		width := 1
		if pc+1 < len(p.Instrs) && !join[pc+1] && fusable(p.Instrs[pc], p.Instrs[pc+1]) {
			width = 2
			c.pcToOp[pc+1] = fusedSlot
			c.fused++
		}
		c.ops = append(c.ops, compiledOp{pc: pc, instrs: int64(width)})
		pc += width
	}
	c.entry = c.pcToOp[p.Procs[0].Entry]

	// Second pass: build the closures, now that every successor's compiled
	// index is known.
	for i := range c.ops {
		op := &c.ops[i]
		var err error
		if op.instrs == 2 {
			op.fn, err = c.compileFused(op.pc)
			op.cost = c.nativeCost(p.Instrs[op.pc]) + c.nativeCost(p.Instrs[op.pc+1])
		} else {
			op.fn, err = c.compileOne(op.pc)
			op.cost = c.nativeCost(p.Instrs[op.pc])
		}
		if err != nil {
			return nil, fmt.Errorf("dir: compile pc %d (%s): %w", op.pc, p.Instrs[op.pc], err)
		}
	}
	return c, nil
}

// fusable reports whether the pair (a, b) matches a superinstruction
// pattern.  The patterns cover the hottest static sequences the compiler
// emits at the stack level: operand pushes feeding a binary operation or a
// store, paired pushes, and a comparison feeding a conditional branch.
func fusable(a, b Instruction) bool {
	switch a.Op {
	case OpPushConst, OpPushVar:
		switch {
		case b.Op >= OpAdd && b.Op <= OpOr:
			return true
		case b.Op == OpStoreVar:
			return true
		case b.Op == OpPushVar && a.Op == OpPushVar:
			return true
		}
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return b.Op == OpJumpZero
	}
	return false
}

// succ returns the compiled index of the instruction at pc, which must be a
// join point or a fall-through successor assigned an op of its own.
func (c *CompiledProgram) succ(pc int) (int, error) {
	if pc < 0 || pc >= len(c.pcToOp) {
		return 0, fmt.Errorf("dir: successor %d out of range", pc)
	}
	if c.pcToOp[pc] == fusedSlot {
		return 0, fmt.Errorf("%w: pc %d", ErrFusedTarget, pc)
	}
	return c.pcToOp[pc], nil
}

// dynSucc resolves a successor whose pc is only known at run time (return
// addresses popped from activation records).
func (c *CompiledProgram) dynSucc(pc int) (int, error) {
	if pc < 0 || pc >= len(c.pcToOp) {
		return 0, fmt.Errorf("dir: return to out-of-range pc %d", pc)
	}
	if idx := c.pcToOp[pc]; idx != fusedSlot {
		return idx, nil
	}
	return 0, fmt.Errorf("%w: pc %d", ErrFusedTarget, pc)
}

// hopsOf returns the number of static-link hops from the frame executing an
// instruction of contour ctr to the frame declaring addr — a compile-time
// constant, because the executing frame's procedure is the instruction's
// contour.
func (c *CompiledProgram) hopsOf(ctr int, addr VarAddr) int {
	hops := c.prog.Procs[ctr].Depth - addr.Depth
	if hops < 0 {
		hops = 0
	}
	return hops
}

// frameUp walks exactly hops static links and verifies the frame reached
// declares scope depth want (the contour-consistency check).
func (m *MachineState) frameUp(hops, want int) (*Frame, error) {
	f := m.current
	for ; hops > 0 && f != nil; hops-- {
		f = f.Static
	}
	if f == nil || m.prog.Procs[f.Proc].Depth != want {
		return nil, fmt.Errorf("%w: depth %d", ErrNoActivation, want)
	}
	return f, nil
}

// loadUp reads slot addr.Offset+index of the frame hops static links up.
func (m *MachineState) loadUp(hops int, addr VarAddr, index int64) (int64, error) {
	f, err := m.frameUp(hops, addr.Depth)
	if err != nil {
		return 0, err
	}
	slot := int64(addr.Offset) + index
	if slot < 0 || slot >= int64(len(f.Slots)) {
		return 0, fmt.Errorf("%w: slot %d of %d", ErrAddressRange, slot, len(f.Slots))
	}
	return f.Slots[slot], nil
}

// storeUp writes slot addr.Offset+index of the frame hops static links up.
func (m *MachineState) storeUp(hops int, addr VarAddr, index int64, v int64) error {
	f, err := m.frameUp(hops, addr.Depth)
	if err != nil {
		return err
	}
	slot := int64(addr.Offset) + index
	if slot < 0 || slot >= int64(len(f.Slots)) {
		return fmt.Errorf("%w: slot %d of %d", ErrAddressRange, slot, len(f.Slots))
	}
	f.Slots[slot] = v
	return nil
}

// valueFn compiles an operand into a closure producing its value, with the
// addressing mode and static-link distance resolved now.
func (c *CompiledProgram) valueFn(ctr int, op Operand) (func(m *MachineState) (int64, error), error) {
	switch op.Mode {
	case ModeImm:
		v := op.Imm
		return func(m *MachineState) (int64, error) { return v, nil }, nil
	case ModeVar:
		hops, addr := c.hopsOf(ctr, op.Addr), op.Addr
		return func(m *MachineState) (int64, error) { return m.loadUp(hops, addr, 0) }, nil
	default:
		return nil, fmt.Errorf("dir: unsupported operand mode %v", op.Mode)
	}
}

// arithFn specialises a stack-level arithmetic/comparison/boolean opcode
// into a two-value function, hoisting ApplyArith's dispatch switch out of
// the execution loop.
func arithFn(op Opcode) (func(a, b int64) (int64, error), error) {
	b2i := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return func(a, b int64) (int64, error) { return a + b, nil }, nil
	case OpSub:
		return func(a, b int64) (int64, error) { return a - b, nil }, nil
	case OpMul:
		return func(a, b int64) (int64, error) { return a * b, nil }, nil
	case OpDiv:
		return func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, ErrDivideByZero
			}
			return a / b, nil
		}, nil
	case OpMod:
		return func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, ErrDivideByZero
			}
			return a % b, nil
		}, nil
	case OpEq:
		return func(a, b int64) (int64, error) { return b2i(a == b), nil }, nil
	case OpNe:
		return func(a, b int64) (int64, error) { return b2i(a != b), nil }, nil
	case OpLt:
		return func(a, b int64) (int64, error) { return b2i(a < b), nil }, nil
	case OpLe:
		return func(a, b int64) (int64, error) { return b2i(a <= b), nil }, nil
	case OpGt:
		return func(a, b int64) (int64, error) { return b2i(a > b), nil }, nil
	case OpGe:
		return func(a, b int64) (int64, error) { return b2i(a >= b), nil }, nil
	case OpAnd:
		return func(a, b int64) (int64, error) { return b2i(a != 0 && b != 0), nil }, nil
	case OpOr:
		return func(a, b int64) (int64, error) { return b2i(a != 0 || b != 0), nil }, nil
	default:
		return nil, fmt.Errorf("dir: %v is not an arithmetic opcode", op)
	}
}

// compileOne builds the closure for the single instruction at pc.
func (c *CompiledProgram) compileOne(pc int) (compiledFn, error) {
	in := c.prog.Instrs[pc]
	// next is the fall-through successor, resolved now.  Opcodes that never
	// fall through (halt, jump, return) ignore it; for everything else a
	// missing successor is a compile-time error, mirroring the reference
	// interpreter's out-of-range pc error.
	next := haltIndex
	if !isTerminal(in.Op) {
		if pc+1 >= len(c.prog.Instrs) {
			return nil, fmt.Errorf("dir: instruction falls off the end of the program")
		}
		n, err := c.succ(pc + 1)
		if err != nil {
			return nil, err
		}
		next = n
	}

	switch in.Op {
	case OpHalt:
		return func(m *MachineState, _ int) (int, error) { return haltIndex, nil }, nil

	case OpPushConst:
		v := in.Operands[0].Imm
		return func(m *MachineState, _ int) (int, error) {
			m.Push(v)
			return next, nil
		}, nil

	case OpPushVar:
		hops, addr := c.hopsOf(in.Contour, in.Operands[0].Addr), in.Operands[0].Addr
		return func(m *MachineState, _ int) (int, error) {
			v, err := m.loadUp(hops, addr, 0)
			if err != nil {
				return 0, err
			}
			m.Push(v)
			return next, nil
		}, nil

	case OpPushIndexed:
		hops, addr := c.hopsOf(in.Contour, in.Operands[0].Addr), in.Operands[0].Addr
		return func(m *MachineState, _ int) (int, error) {
			idx, err := m.Pop()
			if err != nil {
				return 0, err
			}
			v, err := m.loadUp(hops, addr, idx)
			if err != nil {
				return 0, err
			}
			m.Push(v)
			return next, nil
		}, nil

	case OpStoreVar:
		hops, addr := c.hopsOf(in.Contour, in.Operands[0].Addr), in.Operands[0].Addr
		return func(m *MachineState, _ int) (int, error) {
			v, err := m.Pop()
			if err != nil {
				return 0, err
			}
			if err := m.storeUp(hops, addr, 0, v); err != nil {
				return 0, err
			}
			return next, nil
		}, nil

	case OpStoreIndexed:
		hops, addr := c.hopsOf(in.Contour, in.Operands[0].Addr), in.Operands[0].Addr
		return func(m *MachineState, _ int) (int, error) {
			v, err := m.Pop()
			if err != nil {
				return 0, err
			}
			idx, err := m.Pop()
			if err != nil {
				return 0, err
			}
			if err := m.storeUp(hops, addr, idx, v); err != nil {
				return 0, err
			}
			return next, nil
		}, nil

	case OpPop:
		return func(m *MachineState, _ int) (int, error) {
			if _, err := m.Pop(); err != nil {
				return 0, err
			}
			return next, nil
		}, nil

	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr:
		fn, err := arithFn(in.Op)
		if err != nil {
			return nil, err
		}
		return func(m *MachineState, _ int) (int, error) {
			b, err := m.Pop()
			if err != nil {
				return 0, err
			}
			a, err := m.Pop()
			if err != nil {
				return 0, err
			}
			v, err := fn(a, b)
			if err != nil {
				return 0, err
			}
			m.Push(v)
			return next, nil
		}, nil

	case OpNeg:
		return func(m *MachineState, _ int) (int, error) {
			a, err := m.Pop()
			if err != nil {
				return 0, err
			}
			m.Push(-a)
			return next, nil
		}, nil

	case OpNot:
		return func(m *MachineState, _ int) (int, error) {
			a, err := m.Pop()
			if err != nil {
				return 0, err
			}
			if a == 0 {
				m.Push(1)
			} else {
				m.Push(0)
			}
			return next, nil
		}, nil

	case OpJump:
		target, err := c.succ(in.Target)
		if err != nil {
			return nil, err
		}
		return func(m *MachineState, _ int) (int, error) { return target, nil }, nil

	case OpJumpZero:
		target, err := c.succ(in.Target)
		if err != nil {
			return nil, err
		}
		return func(m *MachineState, _ int) (int, error) {
			v, err := m.Pop()
			if err != nil {
				return 0, err
			}
			if v == 0 {
				return target, nil
			}
			return next, nil
		}, nil

	case OpCall:
		proc, nargs := in.Proc, in.NArgs
		entry, err := c.succ(c.prog.Procs[proc].Entry)
		if err != nil {
			return nil, err
		}
		retPC := pc + 1
		return func(m *MachineState, maxDepth int) (int, error) {
			if _, err := m.Call(proc, nargs, retPC, maxDepth); err != nil {
				return 0, err
			}
			return entry, nil
		}, nil

	case OpReturn:
		return func(m *MachineState, _ int) (int, error) {
			ret, ok := m.Return(0)
			if !ok {
				return haltIndex, nil
			}
			return c.dynSucc(ret)
		}, nil

	case OpReturnValue:
		return func(m *MachineState, _ int) (int, error) {
			v, err := m.Pop()
			if err != nil {
				return 0, err
			}
			ret, ok := m.Return(v)
			if !ok {
				return haltIndex, nil
			}
			return c.dynSucc(ret)
		}, nil

	case OpPrint:
		return func(m *MachineState, _ int) (int, error) {
			v, err := m.Pop()
			if err != nil {
				return 0, err
			}
			m.Print(v)
			return next, nil
		}, nil

	case OpPrintOperand:
		val, err := c.valueFn(in.Contour, in.Operands[0])
		if err != nil {
			return nil, err
		}
		return func(m *MachineState, _ int) (int, error) {
			v, err := val(m)
			if err != nil {
				return 0, err
			}
			m.Print(v)
			return next, nil
		}, nil

	case OpMove:
		hops, addr := c.hopsOf(in.Contour, in.Operands[0].Addr), in.Operands[0].Addr
		src, err := c.valueFn(in.Contour, in.Operands[1])
		if err != nil {
			return nil, err
		}
		return func(m *MachineState, _ int) (int, error) {
			v, err := src(m)
			if err != nil {
				return 0, err
			}
			if err := m.storeUp(hops, addr, 0, v); err != nil {
				return 0, err
			}
			return next, nil
		}, nil

	case OpAdd2, OpSub2, OpMul2, OpDiv2, OpMod2:
		hops, addr := c.hopsOf(in.Contour, in.Operands[0].Addr), in.Operands[0].Addr
		src, err := c.valueFn(in.Contour, in.Operands[1])
		if err != nil {
			return nil, err
		}
		fn, err := arithFn(twoOpBase(in.Op))
		if err != nil {
			return nil, err
		}
		return func(m *MachineState, _ int) (int, error) {
			dst, err := m.loadUp(hops, addr, 0)
			if err != nil {
				return 0, err
			}
			s, err := src(m)
			if err != nil {
				return 0, err
			}
			v, err := fn(dst, s)
			if err != nil {
				return 0, err
			}
			if err := m.storeUp(hops, addr, 0, v); err != nil {
				return 0, err
			}
			return next, nil
		}, nil

	case OpAdd3, OpSub3, OpMul3, OpDiv3, OpMod3:
		hops, addr := c.hopsOf(in.Contour, in.Operands[0].Addr), in.Operands[0].Addr
		srcA, err := c.valueFn(in.Contour, in.Operands[1])
		if err != nil {
			return nil, err
		}
		srcB, err := c.valueFn(in.Contour, in.Operands[2])
		if err != nil {
			return nil, err
		}
		fn, err := arithFn(threeOpBase(in.Op))
		if err != nil {
			return nil, err
		}
		return func(m *MachineState, _ int) (int, error) {
			a, err := srcA(m)
			if err != nil {
				return 0, err
			}
			b, err := srcB(m)
			if err != nil {
				return 0, err
			}
			v, err := fn(a, b)
			if err != nil {
				return 0, err
			}
			if err := m.storeUp(hops, addr, 0, v); err != nil {
				return 0, err
			}
			return next, nil
		}, nil

	case OpBrEq, OpBrNe, OpBrLt, OpBrLe, OpBrGt, OpBrGe:
		target, err := c.succ(in.Target)
		if err != nil {
			return nil, err
		}
		srcA, err := c.valueFn(in.Contour, in.Operands[0])
		if err != nil {
			return nil, err
		}
		srcB, err := c.valueFn(in.Contour, in.Operands[1])
		if err != nil {
			return nil, err
		}
		op := in.Op
		return func(m *MachineState, _ int) (int, error) {
			a, err := srcA(m)
			if err != nil {
				return 0, err
			}
			b, err := srcB(m)
			if err != nil {
				return 0, err
			}
			taken, err := CompareBranch(op, a, b)
			if err != nil {
				return 0, err
			}
			if taken {
				return target, nil
			}
			return next, nil
		}, nil

	default:
		return nil, fmt.Errorf("dir: unimplemented opcode %v", in.Op)
	}
}

// compileFused builds one superinstruction closure for the fusable pair at
// (pc, pc+1).  Both constituent instructions always execute (the patterns
// contain no internal control flow), so retiring both is exact.
func (c *CompiledProgram) compileFused(pc int) (compiledFn, error) {
	a, b := c.prog.Instrs[pc], c.prog.Instrs[pc+1]
	// Every fused pattern can fall through, so the successor must exist.
	if pc+2 >= len(c.prog.Instrs) {
		return nil, fmt.Errorf("dir: instruction falls off the end of the program")
	}
	next, err := c.succ(pc + 2)
	if err != nil {
		return nil, err
	}

	// Comparison feeding a conditional branch: pop both operands, branch on
	// the (inverted) relation without materialising the boolean.
	if b.Op == OpJumpZero {
		target, err := c.succ(b.Target)
		if err != nil {
			return nil, err
		}
		fn, err := arithFn(a.Op)
		if err != nil {
			return nil, err
		}
		return func(m *MachineState, _ int) (int, error) {
			y, err := m.Pop()
			if err != nil {
				return 0, err
			}
			x, err := m.Pop()
			if err != nil {
				return 0, err
			}
			v, err := fn(x, y)
			if err != nil {
				return 0, err
			}
			if v == 0 {
				return target, nil
			}
			return next, nil
		}, nil
	}

	// The remaining patterns begin with a push; compile its value producer.
	val, err := c.valueFn(a.Contour, a.Operands[0])
	if err != nil {
		return nil, err
	}

	switch {
	case b.Op >= OpAdd && b.Op <= OpOr:
		// push v; binary — the pushed value is the right-hand operand.
		fn, err := arithFn(b.Op)
		if err != nil {
			return nil, err
		}
		return func(m *MachineState, _ int) (int, error) {
			y, err := val(m)
			if err != nil {
				return 0, err
			}
			x, err := m.Pop()
			if err != nil {
				return 0, err
			}
			v, err := fn(x, y)
			if err != nil {
				return 0, err
			}
			m.Push(v)
			return next, nil
		}, nil

	case b.Op == OpStoreVar:
		// push v; store — a register-style move with no stack traffic.
		hops, addr := c.hopsOf(b.Contour, b.Operands[0].Addr), b.Operands[0].Addr
		return func(m *MachineState, _ int) (int, error) {
			v, err := val(m)
			if err != nil {
				return 0, err
			}
			if err := m.storeUp(hops, addr, 0, v); err != nil {
				return 0, err
			}
			return next, nil
		}, nil

	case b.Op == OpPushVar:
		// push; push — one dispatch for two operand pushes.
		hops, addr := c.hopsOf(b.Contour, b.Operands[0].Addr), b.Operands[0].Addr
		return func(m *MachineState, _ int) (int, error) {
			v1, err := val(m)
			if err != nil {
				return 0, err
			}
			v2, err := m.loadUp(hops, addr, 0)
			if err != nil {
				return 0, err
			}
			m.Push(v1)
			m.Push(v2)
			return next, nil
		}, nil
	}
	return nil, fmt.Errorf("dir: pair (%s, %s) is not fusable", a.Op, b.Op)
}

// isTerminal reports whether the opcode never falls through to pc+1.
func isTerminal(op Opcode) bool {
	switch op {
	case OpHalt, OpJump, OpReturn, OpReturnValue:
		return true
	}
	return false
}

// nativeCost is the compile-time-constant semantic cost of one DIR
// instruction in the compiled organisation, in level-1 cycles.  It mirrors
// the semantic-routine base costs the host machine charges (internal/psder),
// with the IU2 issue overhead and the operand/address binding work compiled
// away; only the irreducible semantic work — and the static-link walks that
// survive into the native code — remains.  Deterministic by construction, so
// replayed runs report identical cycle counts.
func (c *CompiledProgram) nativeCost(in Instruction) int64 {
	hops := func(i int) int64 {
		op := in.Operands[i]
		if op.Mode != ModeVar {
			return 0
		}
		return int64(c.hopsOf(in.Contour, op.Addr))
	}
	// operand is the cost of evaluating operand i: free for an immediate,
	// one access plus the static-link walk for a variable.
	operand := func(i int) int64 {
		if in.Operands[i].Mode != ModeVar {
			return 0
		}
		return 1 + hops(i)
	}
	switch in.Op {
	case OpHalt:
		return 1
	case OpPushConst, OpPop:
		return 1
	case OpPushVar:
		return 2 + hops(0)
	case OpPushIndexed:
		return 4 + hops(0)
	case OpStoreVar:
		return 2 + hops(0)
	case OpStoreIndexed:
		return 4 + hops(0)
	case OpAdd, OpSub, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr:
		return 2
	case OpMul:
		return 4
	case OpDiv, OpMod:
		return 6
	case OpNeg, OpNot:
		return 1
	case OpJump:
		return 1
	case OpJumpZero:
		return 2
	case OpCall:
		return 6 + int64(in.NArgs)
	case OpReturn, OpReturnValue:
		return 4
	case OpPrint:
		return 2
	case OpPrintOperand:
		return 2 + operand(0)
	case OpMove:
		return 2 + hops(0) + operand(1)
	case OpAdd2, OpSub2:
		return 3 + hops(0) + operand(1)
	case OpMul2:
		return 5 + hops(0) + operand(1)
	case OpDiv2, OpMod2:
		return 7 + hops(0) + operand(1)
	case OpAdd3, OpSub3:
		return 3 + hops(0) + operand(1) + operand(2)
	case OpMul3:
		return 5 + hops(0) + operand(1) + operand(2)
	case OpDiv3, OpMod3:
		return 7 + hops(0) + operand(1) + operand(2)
	case OpBrEq, OpBrNe, OpBrLt, OpBrLe, OpBrGt, OpBrGe:
		return 2 + operand(0) + operand(1)
	default:
		return 1
	}
}

// Run executes the compiled program on the given machine state until it
// halts, returning the accumulated cost statistics.  The state carries all
// mutation, so one CompiledProgram may back concurrent runs on distinct
// states; a reset state replays with zero steady-state allocation.
// maxInstrs bounds the run (≤0 selects the DefaultExecOptions budget) and
// maxDepth bounds the activation stack (≤0 selects the default).
func (c *CompiledProgram) Run(m *MachineState, maxInstrs int64, maxDepth int) (CompiledRunStats, error) {
	if maxInstrs <= 0 {
		maxInstrs = DefaultExecOptions().MaxSteps
	}
	if maxDepth <= 0 {
		maxDepth = DefaultExecOptions().MaxDepth
	}
	var stats CompiledRunStats
	idx := c.entry
	for {
		if stats.Instructions >= maxInstrs {
			return stats, fmt.Errorf("%w after %d instructions", ErrStepLimit, stats.Instructions)
		}
		op := &c.ops[idx]
		stats.Instructions += op.instrs
		stats.SemanticCost += op.cost
		stats.Fetches++
		next, err := op.fn(m, maxDepth)
		if err != nil {
			return stats, fmt.Errorf("dir: compiled pc %d (%s): %w", op.pc, c.prog.Instrs[op.pc], err)
		}
		if next == haltIndex {
			return stats, nil
		}
		idx = next
	}
}

// RunTraced executes exactly like Run while appending the DIR index of every
// retired instruction to pcs (a fused superinstruction appends both of its
// constituent pcs, preserving the interpreted dynamic order — fusion never
// spans a control transfer).  The grown slice is returned along with the same
// statistics Run would report.  This is the canonical-execution entry point of
// the trace-once/cost-many split: one traced run feeds every organisation's
// cost derivation.
func (c *CompiledProgram) RunTraced(m *MachineState, maxInstrs int64, maxDepth int, pcs []int32) ([]int32, CompiledRunStats, error) {
	if maxInstrs <= 0 {
		maxInstrs = DefaultExecOptions().MaxSteps
	}
	if maxDepth <= 0 {
		maxDepth = DefaultExecOptions().MaxDepth
	}
	var stats CompiledRunStats
	idx := c.entry
	for {
		if stats.Instructions >= maxInstrs {
			return pcs, stats, fmt.Errorf("%w after %d instructions", ErrStepLimit, stats.Instructions)
		}
		op := &c.ops[idx]
		stats.Instructions += op.instrs
		stats.SemanticCost += op.cost
		stats.Fetches++
		pcs = append(pcs, int32(op.pc))
		if op.instrs == 2 {
			pcs = append(pcs, int32(op.pc+1))
		}
		next, err := op.fn(m, maxDepth)
		if err != nil {
			return pcs, stats, fmt.Errorf("dir: compiled pc %d (%s): %w", op.pc, c.prog.Instrs[op.pc], err)
		}
		if next == haltIndex {
			return pcs, stats, nil
		}
		idx = next
	}
}

// Execute compiles nothing further: it runs the compiled program on a fresh
// machine state, returning the same observables as the reference interpreter
// (Execute) so the two can be differentially compared.  OpcodeCounts is not
// populated — the compiled form dispatches superinstructions, not opcodes.
func (c *CompiledProgram) Execute(opts ExecOptions) (*ExecResult, error) {
	m := NewMachineState(c.prog)
	stats, err := c.Run(m, opts.MaxSteps, opts.MaxDepth)
	if err != nil {
		return nil, err
	}
	return &ExecResult{Output: m.Output(), Executed: stats.Instructions}, nil
}
