package dir

import (
	"errors"
	"reflect"
	"testing"
)

// loopProgram builds: s := 0; i := 1; while i <= n { s += i; i++ }; print s
// at the stack level, with n supplied as a constant.
func loopProgram(n int64) *Program {
	return &Program{
		Name:  "loop",
		Level: "stack",
		Procs: []Proc{{Name: "loop", Entry: 0, FrameSlots: 3}},
		Contours: []Contour{{Parent: 0, Locals: []ContourVar{
			{Addr: VarAddr{0, 0}, Size: 1}, // s
			{Addr: VarAddr{0, 1}, Size: 1}, // i
			{Addr: VarAddr{0, 2}, Size: 1}, // n
		}}},
		Instrs: []Instruction{
			/* 0*/ {Op: OpPushConst, Operands: []Operand{ImmOperand(0)}},
			/* 1*/ {Op: OpStoreVar, Operands: []Operand{VarOperand(0, 0)}},
			/* 2*/ {Op: OpPushConst, Operands: []Operand{ImmOperand(1)}},
			/* 3*/ {Op: OpStoreVar, Operands: []Operand{VarOperand(0, 1)}},
			/* 4*/ {Op: OpPushConst, Operands: []Operand{ImmOperand(n)}},
			/* 5*/ {Op: OpStoreVar, Operands: []Operand{VarOperand(0, 2)}},
			// loop head
			/* 6*/ {Op: OpPushVar, Operands: []Operand{VarOperand(0, 1)}},
			/* 7*/ {Op: OpPushVar, Operands: []Operand{VarOperand(0, 2)}},
			/* 8*/ {Op: OpLe},
			/* 9*/ {Op: OpJumpZero, Target: 18},
			/*10*/ {Op: OpPushVar, Operands: []Operand{VarOperand(0, 0)}},
			/*11*/ {Op: OpPushVar, Operands: []Operand{VarOperand(0, 1)}},
			/*12*/ {Op: OpAdd},
			/*13*/ {Op: OpStoreVar, Operands: []Operand{VarOperand(0, 0)}},
			/*14*/ {Op: OpPushVar, Operands: []Operand{VarOperand(0, 1)}},
			/*15*/ {Op: OpPushConst, Operands: []Operand{ImmOperand(1)}},
			/*16*/ {Op: OpAdd},
			/*17 -> patched below*/ {Op: OpStoreVar, Operands: []Operand{VarOperand(0, 1)}},
			/*18 is exit; but we need the back jump first*/
			{Op: OpJump, Target: 6},
			/*19*/ {Op: OpPushVar, Operands: []Operand{VarOperand(0, 0)}},
			/*20*/ {Op: OpPrint},
			/*21*/ {Op: OpHalt},
		},
	}
}

func fixLoopTargets(p *Program) *Program {
	// The literal indices above drifted by one because of the back jump;
	// recompute: exit is the index of the PUSHV before PRINT.
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpJumpZero {
			p.Instrs[i].Target = 19
		}
	}
	return p
}

func TestExecuteLoopSum(t *testing.T) {
	p := fixLoopTargets(loopProgram(10))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Execute(p, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 55 {
		t.Errorf("output = %v, want [55]", res.Output)
	}
	if res.Executed <= 0 || res.OpcodeCounts[OpAdd] != 20 {
		t.Errorf("executed=%d addCount=%d", res.Executed, res.OpcodeCounts[OpAdd])
	}
}

func TestExecuteCallAndReturn(t *testing.T) {
	p := testProgram() // main calls f(5): f returns 5-1 = 4 because 5 >= 2
	res, err := Execute(p, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 4 {
		t.Errorf("output = %v, want [4]", res.Output)
	}
}

func TestExecuteHighLevelOpcodes(t *testing.T) {
	p := highLevelProgram()
	res, err := Execute(p, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The loop runs until var0 reaches 10; var2 ends at 9 + 1 = 10.
	if len(res.Output) != 1 || res.Output[0] != 10 {
		t.Errorf("output = %v, want [10]", res.Output)
	}
}

func TestExecuteInvalidProgramRejected(t *testing.T) {
	p := testProgram()
	p.Instrs[0].Operands = nil
	if _, err := Execute(p, ExecOptions{}); err == nil {
		t.Error("Execute should validate the program first")
	}
}

func TestExecuteStepLimit(t *testing.T) {
	p := &Program{
		Name:     "spin",
		Procs:    []Proc{{Name: "spin", Entry: 0, FrameSlots: 1}},
		Contours: []Contour{{Parent: 0, Locals: []ContourVar{{Addr: VarAddr{0, 0}, Size: 1}}}},
		Instrs: []Instruction{
			{Op: OpJump, Target: 0},
			{Op: OpHalt},
		},
	}
	if _, err := Execute(p, ExecOptions{MaxSteps: 100}); !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestExecuteCallDepthLimit(t *testing.T) {
	p := &Program{
		Name: "deep",
		Procs: []Proc{
			{Name: "deep", Entry: 0, FrameSlots: 1},
			{Name: "r", Entry: 2, NumParams: 0, FrameSlots: 0, Depth: 1},
		},
		Contours: []Contour{
			{Parent: 0, Locals: []ContourVar{{Addr: VarAddr{0, 0}, Size: 1}}},
			{Parent: 0},
		},
		Instrs: []Instruction{
			{Op: OpCall, Proc: 1, NArgs: 0},
			{Op: OpHalt},
			{Op: OpCall, Proc: 1, NArgs: 0, Contour: 1},
			{Op: OpReturn, Contour: 1},
		},
	}
	if _, err := Execute(p, ExecOptions{MaxDepth: 20}); !errors.Is(err, ErrCallDepth) {
		t.Errorf("err = %v, want ErrCallDepth", err)
	}
}

func TestExecuteDivideByZero(t *testing.T) {
	p := &Program{
		Name:     "dz",
		Procs:    []Proc{{Name: "dz", Entry: 0, FrameSlots: 1}},
		Contours: []Contour{{Parent: 0, Locals: []ContourVar{{Addr: VarAddr{0, 0}, Size: 1}}}},
		Instrs: []Instruction{
			{Op: OpPushConst, Operands: []Operand{ImmOperand(1)}},
			{Op: OpPushConst, Operands: []Operand{ImmOperand(0)}},
			{Op: OpDiv},
			{Op: OpHalt},
		},
	}
	if _, err := Execute(p, ExecOptions{}); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("err = %v, want ErrDivideByZero", err)
	}
	p.Instrs[2].Op = OpMod
	if _, err := Execute(p, ExecOptions{}); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("mod err = %v, want ErrDivideByZero", err)
	}
}

func TestExecuteAddressRange(t *testing.T) {
	p := &Program{
		Name:     "oob",
		Procs:    []Proc{{Name: "oob", Entry: 0, FrameSlots: 2}},
		Contours: []Contour{{Parent: 0, Locals: []ContourVar{{Addr: VarAddr{0, 0}, Size: 2}}}},
		Instrs: []Instruction{
			{Op: OpPushConst, Operands: []Operand{ImmOperand(5)}}, // index 5: out of frame
			{Op: OpPushIndexed, Operands: []Operand{VarOperand(0, 0)}},
			{Op: OpHalt},
		},
	}
	if _, err := Execute(p, ExecOptions{}); !errors.Is(err, ErrAddressRange) {
		t.Errorf("err = %v, want ErrAddressRange", err)
	}
}

func TestExecuteStackUnderflow(t *testing.T) {
	p := &Program{
		Name:     "under",
		Procs:    []Proc{{Name: "under", Entry: 0, FrameSlots: 1}},
		Contours: []Contour{{Parent: 0, Locals: []ContourVar{{Addr: VarAddr{0, 0}, Size: 1}}}},
		Instrs: []Instruction{
			{Op: OpAdd},
			{Op: OpHalt},
		},
	}
	if _, err := Execute(p, ExecOptions{}); !errors.Is(err, ErrStackUnderflow) {
		t.Errorf("err = %v, want ErrStackUnderflow", err)
	}
}

func TestExecuteReturnFromMainHalts(t *testing.T) {
	p := &Program{
		Name:     "retmain",
		Procs:    []Proc{{Name: "retmain", Entry: 0, FrameSlots: 1}},
		Contours: []Contour{{Parent: 0, Locals: []ContourVar{{Addr: VarAddr{0, 0}, Size: 1}}}},
		Instrs: []Instruction{
			{Op: OpPushConst, Operands: []Operand{ImmOperand(1)}},
			{Op: OpPrint},
			{Op: OpReturn},
			{Op: OpPushConst, Operands: []Operand{ImmOperand(2)}},
			{Op: OpPrint},
			{Op: OpHalt},
		},
	}
	res, err := Execute(p, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{1}) {
		t.Errorf("output = %v, want [1]", res.Output)
	}
}

func TestApplyArithAndCompareBranchErrors(t *testing.T) {
	if _, err := ApplyArith(OpJump, 1, 2); err == nil {
		t.Error("ApplyArith should reject non-arithmetic opcodes")
	}
	if _, err := CompareBranch(OpAdd, 1, 2); err == nil {
		t.Error("CompareBranch should reject non-branch opcodes")
	}
	if v, _ := ApplyArith(OpAnd, 2, 3); v != 1 {
		t.Errorf("AND of non-zero values = %d, want 1", v)
	}
	if v, _ := ApplyArith(OpOr, 0, 0); v != 0 {
		t.Errorf("OR of zeros = %d, want 0", v)
	}
	if taken, _ := CompareBranch(OpBrGe, 3, 3); !taken {
		t.Error("3 >= 3 should be taken")
	}
}

func TestTwoAndThreeOpBase(t *testing.T) {
	if twoOpBase(OpAdd2) != OpAdd || twoOpBase(OpMod2) != OpMod || twoOpBase(OpHalt) != OpHalt {
		t.Error("twoOpBase mapping")
	}
	if threeOpBase(OpMul3) != OpMul || threeOpBase(OpDiv3) != OpDiv || threeOpBase(OpHalt) != OpHalt {
		t.Error("threeOpBase mapping")
	}
}

func TestMachineStateAccessors(t *testing.T) {
	p := testProgram()
	m := NewMachineState(p)
	if m.CallDepth() != 1 || m.StackDepth() != 0 || m.CurrentFrame() == nil {
		t.Errorf("fresh machine state: depth=%d stack=%d", m.CallDepth(), m.StackDepth())
	}
	m.Push(7)
	if v, err := m.Pop(); err != nil || v != 7 {
		t.Errorf("push/pop = %d, %v", v, err)
	}
	if _, err := m.Pop(); !errors.Is(err, ErrStackUnderflow) {
		t.Errorf("pop empty = %v", err)
	}
}

func BenchmarkExecuteLoop(b *testing.B) {
	p := fixLoopTargets(loopProgram(100))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(p, ExecOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
