package dir

import (
	"errors"
	"fmt"
	"strings"
)

// Opcode enumerates DIR operations.
type Opcode uint8

// Stack-oriented opcodes (lowest semantic level).
const (
	// OpHalt stops the program.
	OpHalt Opcode = iota
	// OpPushConst pushes an immediate constant.
	OpPushConst
	// OpPushVar pushes the value of a scalar variable.
	OpPushVar
	// OpPushIndexed pops an index and pushes base[index].
	OpPushIndexed
	// OpStoreVar pops a value into a scalar variable.
	OpStoreVar
	// OpStoreIndexed pops a value then an index and stores base[index] = value.
	OpStoreIndexed
	// OpAdd through OpOr pop two values and push the result.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	// OpNeg and OpNot pop one value and push the result.
	OpNeg
	OpNot
	// OpJump transfers control to Target unconditionally.
	OpJump
	// OpJumpZero pops a value and transfers control to Target if it is zero.
	OpJumpZero
	// OpCall invokes procedure Proc with NArgs arguments taken from the stack.
	OpCall
	// OpReturn returns from the current procedure with no value.
	OpReturn
	// OpReturnValue pops a value and returns it from the current procedure.
	OpReturnValue
	// OpPrint pops a value and appends it to the program output.
	OpPrint
	// OpPop discards the top of the operand stack (used to drop the return
	// value of a procedure called purely for its effects).
	OpPop

	// Two-operand memory opcodes (middle semantic level, PDP-11 flavour).

	// OpMove stores operand 1 into operand 0.
	OpMove
	// OpAdd2 .. OpMod2 apply "operand0 = operand0 op operand1".
	OpAdd2
	OpSub2
	OpMul2
	OpDiv2
	OpMod2
	// OpPrintOperand prints operand 0 directly.
	OpPrintOperand

	// Three-operand and compound opcodes (high semantic level, System/360 RX
	// and beyond).

	// OpAdd3 .. OpMod3 apply "operand0 = operand1 op operand2".
	OpAdd3
	OpSub3
	OpMul3
	OpDiv3
	OpMod3
	// OpBrEq .. OpBrGe compare operand 0 with operand 1 and branch to Target
	// when the relation holds.
	OpBrEq
	OpBrNe
	OpBrLt
	OpBrLe
	OpBrGt
	OpBrGe

	opcodeCount // sentinel; keep last
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(opcodeCount)

var opcodeNames = [...]string{
	OpHalt: "HALT", OpPushConst: "PUSHC", OpPushVar: "PUSHV", OpPushIndexed: "PUSHX",
	OpStoreVar: "STV", OpStoreIndexed: "STX",
	OpAdd: "ADD", OpSub: "SUB", OpMul: "MUL", OpDiv: "DIV", OpMod: "MOD",
	OpEq: "EQ", OpNe: "NE", OpLt: "LT", OpLe: "LE", OpGt: "GT", OpGe: "GE",
	OpAnd: "AND", OpOr: "OR", OpNeg: "NEG", OpNot: "NOT",
	OpJump: "JMP", OpJumpZero: "JZ", OpCall: "CALL", OpReturn: "RET",
	OpReturnValue: "RETV", OpPrint: "PRINT", OpPop: "POP",
	OpMove: "MOV", OpAdd2: "ADD2", OpSub2: "SUB2", OpMul2: "MUL2", OpDiv2: "DIV2", OpMod2: "MOD2",
	OpPrintOperand: "PRTOP",
	OpAdd3:         "ADD3", OpSub3: "SUB3", OpMul3: "MUL3", OpDiv3: "DIV3", OpMod3: "MOD3",
	OpBrEq: "BREQ", OpBrNe: "BRNE", OpBrLt: "BRLT", OpBrLe: "BRLE", OpBrGt: "BRGT", OpBrGe: "BRGE",
}

// String returns the mnemonic.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("OP(%d)", int(op))
}

// Valid reports whether the opcode is defined.
func (op Opcode) Valid() bool { return op < opcodeCount }

// HasTarget reports whether the opcode carries a branch target.
func (op Opcode) HasTarget() bool {
	switch op {
	case OpJump, OpJumpZero, OpBrEq, OpBrNe, OpBrLt, OpBrLe, OpBrGt, OpBrGe:
		return true
	}
	return false
}

// IsCall reports whether the opcode is a procedure call.
func (op Opcode) IsCall() bool { return op == OpCall }

// IsBranchCompare reports whether the opcode is a compound compare-and-branch.
func (op Opcode) IsBranchCompare() bool {
	switch op {
	case OpBrEq, OpBrNe, OpBrLt, OpBrLe, OpBrGt, OpBrGe:
		return true
	}
	return false
}

// NumOperands returns how many explicit operands the opcode carries.
func (op Opcode) NumOperands() int {
	switch op {
	case OpPushConst, OpPushVar, OpPushIndexed, OpStoreVar, OpStoreIndexed, OpPrintOperand:
		return 1
	case OpMove, OpAdd2, OpSub2, OpMul2, OpDiv2, OpMod2,
		OpBrEq, OpBrNe, OpBrLt, OpBrLe, OpBrGt, OpBrGe:
		return 2
	case OpAdd3, OpSub3, OpMul3, OpDiv3, OpMod3:
		return 3
	default:
		return 0
	}
}

// AddrMode enumerates operand addressing modes.
type AddrMode uint8

const (
	// ModeImm is an immediate constant.
	ModeImm AddrMode = iota
	// ModeVar addresses a scalar variable (or array base) by lexical
	// (depth, offset) address.
	ModeVar

	addrModeCount
)

// NumAddrModes is the number of defined addressing modes.
const NumAddrModes = int(addrModeCount)

// String returns the mode's name.
func (m AddrMode) String() string {
	switch m {
	case ModeImm:
		return "imm"
	case ModeVar:
		return "var"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Valid reports whether the mode is defined.
func (m AddrMode) Valid() bool { return m < addrModeCount }

// VarAddr is a lexical machine address: the static nesting depth of the
// declaring contour and the slot offset within that contour's frame.  Binding
// names to VarAddrs at compile time is what removes the HLR's need for an
// associative memory.
type VarAddr struct {
	Depth  int
	Offset int
}

// String renders the address as "d.o".
func (a VarAddr) String() string { return fmt.Sprintf("%d.%d", a.Depth, a.Offset) }

// Operand is one instruction operand.
type Operand struct {
	Mode AddrMode
	Imm  int64   // value when Mode == ModeImm
	Addr VarAddr // address when Mode == ModeVar
}

// ImmOperand returns an immediate operand.
func ImmOperand(v int64) Operand { return Operand{Mode: ModeImm, Imm: v} }

// VarOperand returns a variable operand.
func VarOperand(depth, offset int) Operand {
	return Operand{Mode: ModeVar, Addr: VarAddr{Depth: depth, Offset: offset}}
}

// String renders the operand.
func (o Operand) String() string {
	switch o.Mode {
	case ModeImm:
		return fmt.Sprintf("#%d", o.Imm)
	case ModeVar:
		return o.Addr.String()
	default:
		return fmt.Sprintf("?%d", int(o.Mode))
	}
}

// Instruction is one DIR instruction.
type Instruction struct {
	Op       Opcode
	Operands []Operand
	// Target is the instruction index of the branch destination for opcodes
	// with HasTarget() == true.
	Target int
	// Proc and NArgs describe a call for OpCall.
	Proc  int
	NArgs int
	// Contour is the index of the contour (procedure) containing this
	// instruction; it drives the contextual encodings.
	Contour int
}

// String renders the instruction in assembler-like form.
func (in Instruction) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	for _, op := range in.Operands {
		b.WriteString(" ")
		b.WriteString(op.String())
	}
	if in.Op.HasTarget() {
		fmt.Fprintf(&b, " ->%d", in.Target)
	}
	if in.Op.IsCall() {
		fmt.Fprintf(&b, " proc%d/%d", in.Proc, in.NArgs)
	}
	return b.String()
}

// Proc describes one procedure of a DIR program.  Procedure 0 is the main
// program body.
type Proc struct {
	Name       string
	Entry      int // index of the procedure's first instruction
	NumParams  int
	FrameSlots int // frame size in value slots (parameters + locals + arrays)
	Depth      int // static nesting depth of the procedure's scope
}

// ContourVar describes one variable visible in a contour, in a canonical
// order, so contextual encodings can refer to variables by a small index.
type ContourVar struct {
	Addr VarAddr
	Size int64 // 1 for scalars, >1 for arrays
}

// Contour describes the name environment of one procedure, for the
// contextual encodings of §3.2.
type Contour struct {
	Parent int // parent contour index; contour 0 is its own parent
	// Locals are the storage symbols declared directly in this contour, in
	// declaration order.
	Locals []ContourVar
}

// Program is a complete DIR program.
type Program struct {
	Name     string
	Instrs   []Instruction
	Procs    []Proc
	Contours []Contour
	// Level records the semantic level the compiler emitted (a label for
	// reports; it does not affect execution).
	Level string
}

// Validation errors.
var (
	ErrNoInstructions = errors.New("dir: program has no instructions")
	ErrNoProcs        = errors.New("dir: program has no procedures")
)

// Validate checks structural invariants: opcode validity, operand counts and
// modes, branch targets, call targets and contour indices.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return ErrNoInstructions
	}
	if len(p.Procs) == 0 {
		return ErrNoProcs
	}
	if len(p.Contours) != len(p.Procs) {
		return fmt.Errorf("dir: %d contours for %d procedures", len(p.Contours), len(p.Procs))
	}
	for i, proc := range p.Procs {
		if proc.Entry < 0 || proc.Entry >= len(p.Instrs) {
			return fmt.Errorf("dir: procedure %d (%s) entry %d out of range", i, proc.Name, proc.Entry)
		}
		if proc.NumParams < 0 || proc.FrameSlots < proc.NumParams {
			return fmt.Errorf("dir: procedure %d (%s) has %d params but %d frame slots",
				i, proc.Name, proc.NumParams, proc.FrameSlots)
		}
	}
	for i, c := range p.Contours {
		if c.Parent < 0 || c.Parent >= len(p.Contours) {
			return fmt.Errorf("dir: contour %d parent %d out of range", i, c.Parent)
		}
	}
	for idx, in := range p.Instrs {
		if !in.Op.Valid() {
			return fmt.Errorf("dir: instruction %d has invalid opcode %d", idx, int(in.Op))
		}
		if want := in.Op.NumOperands(); len(in.Operands) != want {
			return fmt.Errorf("dir: instruction %d (%s) has %d operands, want %d", idx, in.Op, len(in.Operands), want)
		}
		for oi, op := range in.Operands {
			if !op.Mode.Valid() {
				return fmt.Errorf("dir: instruction %d operand %d has invalid mode %d", idx, oi, int(op.Mode))
			}
			if op.Mode == ModeVar && (op.Addr.Depth < 0 || op.Addr.Offset < 0) {
				return fmt.Errorf("dir: instruction %d operand %d has negative address %v", idx, oi, op.Addr)
			}
		}
		if in.Op.HasTarget() && (in.Target < 0 || in.Target >= len(p.Instrs)) {
			return fmt.Errorf("dir: instruction %d (%s) target %d out of range", idx, in.Op, in.Target)
		}
		if in.Op.IsCall() {
			if in.Proc < 0 || in.Proc >= len(p.Procs) {
				return fmt.Errorf("dir: instruction %d calls unknown procedure %d", idx, in.Proc)
			}
			if in.NArgs != p.Procs[in.Proc].NumParams {
				return fmt.Errorf("dir: instruction %d passes %d args to procedure %d which takes %d",
					idx, in.NArgs, in.Proc, p.Procs[in.Proc].NumParams)
			}
		}
		if in.Contour < 0 || in.Contour >= len(p.Contours) {
			return fmt.Errorf("dir: instruction %d contour %d out of range", idx, in.Contour)
		}
	}
	return nil
}

// Disassemble renders the whole program as text, one instruction per line,
// with procedure entry points annotated.
func (p *Program) Disassemble() string {
	entries := make(map[int][]string)
	for i, proc := range p.Procs {
		entries[proc.Entry] = append(entries[proc.Entry], fmt.Sprintf("%s (proc %d)", proc.Name, i))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s, level %s, %d instructions, %d procedures\n",
		p.Name, p.Level, len(p.Instrs), len(p.Procs))
	for i, in := range p.Instrs {
		for _, name := range entries[i] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "%5d  %s\n", i, in.String())
	}
	return b.String()
}

// VisibleVars returns the variables visible from contour c, outermost
// contour's declarations first, in a canonical order shared by the encoder
// and decoder of the contextual representations.
func (p *Program) VisibleVars(c int) []ContourVar {
	if c < 0 || c >= len(p.Contours) {
		return nil
	}
	// Collect the chain root-first.
	var chain []int
	for cur := c; ; cur = p.Contours[cur].Parent {
		chain = append(chain, cur)
		if cur == p.Contours[cur].Parent {
			break
		}
	}
	var out []ContourVar
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, p.Contours[chain[i]].Locals...)
	}
	return out
}

// VisibleIndex returns the index of addr within VisibleVars(c), or -1 if the
// address is not visible from contour c.
func (p *Program) VisibleIndex(c int, addr VarAddr) int {
	for i, v := range p.VisibleVars(c) {
		if v.Addr == addr {
			return i
		}
	}
	return -1
}

// InstructionMix returns the count of each opcode in the static program, a
// basic statistic for the encoding studies.
func (p *Program) InstructionMix() map[Opcode]int {
	mix := make(map[Opcode]int)
	for _, in := range p.Instrs {
		mix[in.Op]++
	}
	return mix
}
