package dir

import (
	"fmt"
	"strings"
)

// Table 1 of the paper shows how a sequence of PSDER procedure calls (which
// compute two operand addresses, apply a functional procedure and store the
// result) is "combined to form a PDP-11 type of instruction and further
// compressed into a System/360 RX type of format".  This file reproduces that
// equivalence quantitatively: the same semantic content expressed in the
// three representations, with the bit cost of every field, so the
// monotonically shrinking sizes the table illustrates can be regenerated.

// FormatField is one field of a representation in the Table 1 comparison.
type FormatField struct {
	Name string
	Bits int
	Note string
}

// FormatSpec is one row of the Table 1 comparison: a representation of the
// canonical two-operand register+displacement instruction.
type FormatSpec struct {
	Name   string
	Fields []FormatField
}

// TotalBits returns the total size of the representation in bits.
func (f FormatSpec) TotalBits() int {
	total := 0
	for _, field := range f.Fields {
		total += field.Bits
	}
	return total
}

// String renders the spec as a one-line summary.
func (f FormatSpec) String() string {
	parts := make([]string, 0, len(f.Fields))
	for _, field := range f.Fields {
		parts = append(parts, fmt.Sprintf("%s:%d", field.Name, field.Bits))
	}
	return fmt.Sprintf("%-22s %3d bits  [%s]", f.Name, f.TotalBits(), strings.Join(parts, " "))
}

// Table1Params parameterise the field widths of the comparison.  The defaults
// reflect the machines the paper names: 16-bit machine addresses for PSDER
// call targets and arguments, PDP-11 style 3-bit mode / 3-bit register
// operand specifiers, and System/360 RX style 8-bit opcode, 4-bit register
// and 12-bit displacement fields.
type Table1Params struct {
	MachineAddrBits int // width of a machine address (procedure or argument pointer)
	CallOpcodeBits  int // width of the machine-language CALL opcode in the PSDER
	PDPOpcodeBits   int // PDP-11 style opcode field
	PDPOperandBits  int // PDP-11 style operand specifier (mode + register)
	PDPDispBits     int // PDP-11 style displacement word per memory operand
	RXOpcodeBits    int // 360 RX opcode field
	RXRegisterBits  int // 360 RX register field
	RXBaseBits      int // 360 RX base register field
	RXDispBits      int // 360 RX displacement field
}

// DefaultTable1Params returns the default field widths.
func DefaultTable1Params() Table1Params {
	return Table1Params{
		MachineAddrBits: 16,
		CallOpcodeBits:  8,
		PDPOpcodeBits:   4,
		PDPOperandBits:  6,
		PDPDispBits:     16,
		RXOpcodeBits:    8,
		RXRegisterBits:  4,
		RXBaseBits:      4,
		RXDispBits:      12,
	}
}

// Table1 builds the three representations of the canonical two-operand
// instruction: the PSDER call sequence, the PDP-11-type format and the
// System/360 RX-type format (whose second operand's index-register field is
// omitted, as the paper's note 6 states).
func Table1(p Table1Params) []FormatSpec {
	psder := FormatSpec{
		Name: "PSDER call sequence",
		Fields: []FormatField{
			{Name: "call-op", Bits: p.CallOpcodeBits, Note: "machine-language procedure-call opcode"},
			{Name: "addr-calc-proc", Bits: p.MachineAddrBits, Note: "address of operand-1 effective-address procedure"},
			{Name: "reg1-cell", Bits: p.MachineAddrBits, Note: "address at which register 1 contents are stored"},
			{Name: "disp1", Bits: p.MachineAddrBits, Note: "operand-1 displacement argument"},
			{Name: "call-op", Bits: p.CallOpcodeBits, Note: "second procedure call"},
			{Name: "addr-calc-proc", Bits: p.MachineAddrBits, Note: "address of operand-2 effective-address procedure"},
			{Name: "reg2-cell", Bits: p.MachineAddrBits, Note: "address at which register 2 contents are stored"},
			{Name: "disp2", Bits: p.MachineAddrBits, Note: "operand-2 displacement argument"},
			{Name: "call-op", Bits: p.CallOpcodeBits, Note: "third procedure call"},
			{Name: "func-proc", Bits: p.MachineAddrBits, Note: "address of the functional procedure"},
			{Name: "call-op", Bits: p.CallOpcodeBits, Note: "fourth procedure call"},
			{Name: "store-proc", Bits: p.MachineAddrBits, Note: "store result; address implicitly the one calculated earlier"},
		},
	}
	pdp := FormatSpec{
		Name: "PDP-11 type format",
		Fields: []FormatField{
			{Name: "opcode", Bits: p.PDPOpcodeBits, Note: "surrogate for the sequence of procedure calls"},
			{Name: "operand1", Bits: p.PDPOperandBits, Note: "mode + register specifier, operand 1 (source)"},
			{Name: "operand2", Bits: p.PDPOperandBits, Note: "mode + register specifier, operand 2 (source and destination)"},
			{Name: "disp1", Bits: p.PDPDispBits, Note: "operand-1 displacement word"},
			{Name: "disp2", Bits: p.PDPDispBits, Note: "operand-2 displacement word"},
		},
	}
	rx := FormatSpec{
		Name: "System/360 RX type format",
		Fields: []FormatField{
			{Name: "opcode", Bits: p.RXOpcodeBits, Note: "combined operation and format"},
			{Name: "reg1", Bits: p.RXRegisterBits, Note: "register operand"},
			{Name: "reg2", Bits: p.RXBaseBits, Note: "base register for the storage operand"},
			{Name: "disp", Bits: p.RXDispBits, Note: "displacement (index register field omitted for the second operand)"},
		},
	}
	return []FormatSpec{psder, pdp, rx}
}

// Table1Report renders the comparison as text, one representation per line,
// in the order the paper presents them (PSDER, PDP-11, 360 RX).
func Table1Report(p Table1Params) string {
	var b strings.Builder
	b.WriteString("Table 1: equivalence of a PSDER sequence to more compact, encoded formats\n")
	for _, spec := range Table1(p) {
		b.WriteString(spec.String())
		b.WriteString("\n")
	}
	return b.String()
}
