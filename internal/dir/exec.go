package dir

import (
	"errors"
	"fmt"
)

// This file gives the DIR its reference operational semantics: a plain,
// untimed executor used as the oracle against which the compiler and the
// instrumented UHM simulation are differentially tested.  It models the
// run-time structures any DIR interpreter needs — an operand stack, and
// activation records linked by static links for the block-structured
// addressing the HLR requires — without any cost accounting.

// Execution errors.
var (
	// ErrStepLimit is returned when execution exceeds the step budget.
	ErrStepLimit = errors.New("dir: execution step limit exceeded")
	// ErrCallDepth is returned when the activation stack grows too deep.
	ErrCallDepth = errors.New("dir: call depth limit exceeded")
	// ErrDivideByZero is returned on division or modulo by zero.
	ErrDivideByZero = errors.New("dir: division by zero")
	// ErrAddressRange is returned when a variable or array access falls
	// outside its frame.
	ErrAddressRange = errors.New("dir: address out of frame")
	// ErrStackUnderflow is returned when an operation needs more operands
	// than the stack holds.
	ErrStackUnderflow = errors.New("dir: operand stack underflow")
	// ErrNoActivation is returned when up-level addressing cannot find an
	// activation at the required depth.
	ErrNoActivation = errors.New("dir: no activation at required depth")
)

// ExecOptions bounds an execution.
type ExecOptions struct {
	// MaxSteps limits the number of DIR instructions executed; zero selects
	// a generous default.
	MaxSteps int64
	// MaxDepth limits the activation-stack depth; zero selects a default.
	MaxDepth int
}

// DefaultExecOptions returns the default execution bounds.
func DefaultExecOptions() ExecOptions {
	return ExecOptions{MaxSteps: 50_000_000, MaxDepth: 10_000}
}

// ExecResult is the outcome of a reference execution.
type ExecResult struct {
	// Output is the sequence of printed values; every execution strategy in
	// the reproduction must produce the same Output for the same program.
	Output []int64
	// Executed is the number of DIR instructions executed (the dynamic
	// instruction count).
	Executed int64
	// OpcodeCounts is the dynamic opcode mix.
	OpcodeCounts map[Opcode]int64
}

// Execute runs the program on the reference DIR interpreter.
func Execute(p *Program, opts ExecOptions) (*ExecResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultExecOptions().MaxSteps
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = DefaultExecOptions().MaxDepth
	}
	m := NewMachineState(p)
	res := &ExecResult{OpcodeCounts: make(map[Opcode]int64)}
	pc := p.Procs[0].Entry
	for {
		if res.Executed >= opts.MaxSteps {
			return nil, fmt.Errorf("%w after %d instructions", ErrStepLimit, res.Executed)
		}
		if pc < 0 || pc >= len(p.Instrs) {
			return nil, fmt.Errorf("dir: program counter %d out of range", pc)
		}
		in := p.Instrs[pc]
		res.Executed++
		res.OpcodeCounts[in.Op]++
		next, halted, err := m.Step(in, pc, opts.MaxDepth)
		if err != nil {
			return nil, err
		}
		if halted {
			res.Output = m.Output()
			return res, nil
		}
		pc = next
	}
}

// Frame is one activation record.
type Frame struct {
	Proc    int
	Slots   []int64
	Static  *Frame // static link: activation of the lexically enclosing scope
	RetAddr int
	caller  *Frame // dynamic link: activation to resume on return
	depth   int
}

// MachineState is the run-time state shared by every interpretation strategy:
// the operand stack, the activation stack and the program output.  The
// instrumented UHM simulation drives the same state through its semantic
// routines, so differential tests can compare strategies value for value.
type MachineState struct {
	prog    *Program
	stack   []int64
	current *Frame
	frames  int
	peak    int // high-water mark of frames, for bounds-equivalence checks
	output  []int64
	pool    []*Frame // recycled activation records (see newFrame)
}

// NewMachineState creates run-time state positioned at the start of the main
// procedure.
func NewMachineState(p *Program) *MachineState {
	main := &Frame{Proc: 0, Slots: make([]int64, p.Procs[0].FrameSlots), RetAddr: -1}
	return &MachineState{prog: p, current: main, frames: 1, peak: 1}
}

// newFrame produces a zeroed activation record for proc, recycling a frame
// from the pool when one is available.  Frames are stack-disciplined (a
// returning activation can no longer be referenced by any live static link),
// so recycling is safe; pooling makes the steady-state execution loop
// allocation free once the peak call depth has been reached.
func (m *MachineState) newFrame(proc, slots int) *Frame {
	if n := len(m.pool); n > 0 {
		f := m.pool[n-1]
		m.pool = m.pool[:n-1]
		if cap(f.Slots) >= slots {
			f.Slots = f.Slots[:slots]
			for i := range f.Slots {
				f.Slots[i] = 0
			}
		} else {
			f.Slots = make([]int64, slots)
		}
		*f = Frame{Proc: proc, Slots: f.Slots}
		return f
	}
	return &Frame{Proc: proc, Slots: make([]int64, slots)}
}

// Reset returns the state to the start of the program, retaining every
// allocation (operand stack, output buffer, recycled frames) so a replayed
// run performs no steady-state allocation.
func (m *MachineState) Reset() {
	for f := m.current; f != nil; f = f.caller {
		m.pool = append(m.pool, f)
	}
	m.current = m.newFrame(0, m.prog.Procs[0].FrameSlots)
	m.current.RetAddr = -1
	m.frames = 1
	m.peak = 1
	m.stack = m.stack[:0]
	m.output = m.output[:0]
}

// Output returns the values printed so far.
func (m *MachineState) Output() []int64 { return m.output }

// StackDepth returns the operand-stack depth (for tests).
func (m *MachineState) StackDepth() int { return len(m.stack) }

// CallDepth returns the activation-stack depth.
func (m *MachineState) CallDepth() int { return m.frames }

// PeakDepth returns the deepest activation-stack depth the run has reached.
// A run succeeds under a depth limit d exactly when PeakDepth ≤ d (Call
// rejects the frame that would make the depth exceed d), which is what lets a
// recorded execution trace answer "would this run fit in limit d?" without
// re-executing.
func (m *MachineState) PeakDepth() int { return m.peak }

// CurrentFrame returns the active frame (for tests and diagnostics).
func (m *MachineState) CurrentFrame() *Frame { return m.current }

// CurrentStaticDepth returns the static nesting depth of the scope owned by
// the active frame.  Addressing routines use it to price the static-link
// hops needed to reach a variable declared in an enclosing contour.
func (m *MachineState) CurrentStaticDepth() int {
	return m.prog.Procs[m.current.Proc].Depth
}

// Push pushes a value onto the operand stack.
func (m *MachineState) Push(v int64) { m.stack = append(m.stack, v) }

// Pop pops a value from the operand stack.
func (m *MachineState) Pop() (int64, error) {
	if len(m.stack) == 0 {
		return 0, ErrStackUnderflow
	}
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v, nil
}

// frameAt follows static links to the activation owning scope depth d.
func (m *MachineState) frameAt(d int) (*Frame, error) {
	f := m.current
	for f != nil && m.prog.Procs[f.Proc].Depth > d {
		f = f.Static
	}
	if f == nil || m.prog.Procs[f.Proc].Depth != d {
		return nil, fmt.Errorf("%w: depth %d", ErrNoActivation, d)
	}
	return f, nil
}

// LoadVar reads the variable at addr (following static links).
func (m *MachineState) LoadVar(addr VarAddr, index int64) (int64, error) {
	f, err := m.frameAt(addr.Depth)
	if err != nil {
		return 0, err
	}
	slot := int64(addr.Offset) + index
	if slot < 0 || slot >= int64(len(f.Slots)) {
		return 0, fmt.Errorf("%w: slot %d of %d", ErrAddressRange, slot, len(f.Slots))
	}
	return f.Slots[slot], nil
}

// StoreVar writes the variable at addr (following static links).
func (m *MachineState) StoreVar(addr VarAddr, index int64, v int64) error {
	f, err := m.frameAt(addr.Depth)
	if err != nil {
		return err
	}
	slot := int64(addr.Offset) + index
	if slot < 0 || slot >= int64(len(f.Slots)) {
		return fmt.Errorf("%w: slot %d of %d", ErrAddressRange, slot, len(f.Slots))
	}
	f.Slots[slot] = v
	return nil
}

// operandValue evaluates an operand (immediate or scalar variable).
func (m *MachineState) operandValue(op Operand) (int64, error) {
	switch op.Mode {
	case ModeImm:
		return op.Imm, nil
	case ModeVar:
		return m.LoadVar(op.Addr, 0)
	default:
		return 0, fmt.Errorf("dir: unsupported operand mode %v", op.Mode)
	}
}

// Print appends a value to the program output.
func (m *MachineState) Print(v int64) { m.output = append(m.output, v) }

// Call pushes a new activation for procedure proc, taking nargs arguments
// from the operand stack, and returns the procedure's entry point.
func (m *MachineState) Call(proc, nargs, retAddr, maxDepth int) (int, error) {
	if m.frames+1 > maxDepth {
		return 0, ErrCallDepth
	}
	info := m.prog.Procs[proc]
	static, err := m.frameAt(info.Depth - 1)
	if err != nil {
		return 0, err
	}
	frame := m.newFrame(proc, info.FrameSlots)
	frame.Static = static
	frame.RetAddr = retAddr
	frame.depth = m.current.depth + 1
	for i := nargs - 1; i >= 0; i-- {
		v, err := m.Pop()
		if err != nil {
			return 0, err
		}
		frame.Slots[i] = v
	}
	// The activation chain is maintained through RetFrame saved below.
	frame.caller = m.current
	m.current = frame
	m.frames++
	if m.frames > m.peak {
		m.peak = m.frames
	}
	return info.Entry, nil
}

// Return pops the current activation, pushes the return value and returns
// the resumption address.  The boolean result is false when returning from
// the outermost activation (which halts the program).
func (m *MachineState) Return(value int64) (int, bool) {
	if m.current.caller == nil {
		return 0, false
	}
	done := m.current
	ret := done.RetAddr
	m.current = done.caller
	m.frames--
	m.pool = append(m.pool, done)
	m.Push(value)
	return ret, true
}

// Step executes one DIR instruction and returns the next program counter and
// whether the program halted.
func (m *MachineState) Step(in Instruction, pc int, maxDepth int) (next int, halted bool, err error) {
	next = pc + 1
	switch in.Op {
	case OpHalt:
		return pc, true, nil

	case OpPushConst:
		m.Push(in.Operands[0].Imm)
	case OpPushVar:
		v, err := m.LoadVar(in.Operands[0].Addr, 0)
		if err != nil {
			return 0, false, err
		}
		m.Push(v)
	case OpPushIndexed:
		idx, err := m.Pop()
		if err != nil {
			return 0, false, err
		}
		v, err := m.LoadVar(in.Operands[0].Addr, idx)
		if err != nil {
			return 0, false, err
		}
		m.Push(v)
	case OpStoreVar:
		v, err := m.Pop()
		if err != nil {
			return 0, false, err
		}
		if err := m.StoreVar(in.Operands[0].Addr, 0, v); err != nil {
			return 0, false, err
		}
	case OpStoreIndexed:
		v, err := m.Pop()
		if err != nil {
			return 0, false, err
		}
		idx, err := m.Pop()
		if err != nil {
			return 0, false, err
		}
		if err := m.StoreVar(in.Operands[0].Addr, idx, v); err != nil {
			return 0, false, err
		}
	case OpPop:
		if _, err := m.Pop(); err != nil {
			return 0, false, err
		}

	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr:
		b, err := m.Pop()
		if err != nil {
			return 0, false, err
		}
		a, err := m.Pop()
		if err != nil {
			return 0, false, err
		}
		v, err := ApplyArith(in.Op, a, b)
		if err != nil {
			return 0, false, err
		}
		m.Push(v)

	case OpNeg:
		a, err := m.Pop()
		if err != nil {
			return 0, false, err
		}
		m.Push(-a)
	case OpNot:
		a, err := m.Pop()
		if err != nil {
			return 0, false, err
		}
		if a == 0 {
			m.Push(1)
		} else {
			m.Push(0)
		}

	case OpJump:
		next = in.Target
	case OpJumpZero:
		v, err := m.Pop()
		if err != nil {
			return 0, false, err
		}
		if v == 0 {
			next = in.Target
		}

	case OpCall:
		entry, err := m.Call(in.Proc, in.NArgs, pc+1, maxDepth)
		if err != nil {
			return 0, false, err
		}
		next = entry
	case OpReturn:
		ret, ok := m.Return(0)
		if !ok {
			return pc, true, nil
		}
		next = ret
	case OpReturnValue:
		v, err := m.Pop()
		if err != nil {
			return 0, false, err
		}
		ret, ok := m.Return(v)
		if !ok {
			return pc, true, nil
		}
		next = ret

	case OpPrint:
		v, err := m.Pop()
		if err != nil {
			return 0, false, err
		}
		m.Print(v)
	case OpPrintOperand:
		v, err := m.operandValue(in.Operands[0])
		if err != nil {
			return 0, false, err
		}
		m.Print(v)

	case OpMove:
		v, err := m.operandValue(in.Operands[1])
		if err != nil {
			return 0, false, err
		}
		if err := m.StoreVar(in.Operands[0].Addr, 0, v); err != nil {
			return 0, false, err
		}
	case OpAdd2, OpSub2, OpMul2, OpDiv2, OpMod2:
		dst, err := m.LoadVar(in.Operands[0].Addr, 0)
		if err != nil {
			return 0, false, err
		}
		src, err := m.operandValue(in.Operands[1])
		if err != nil {
			return 0, false, err
		}
		v, err := ApplyArith(twoOpBase(in.Op), dst, src)
		if err != nil {
			return 0, false, err
		}
		if err := m.StoreVar(in.Operands[0].Addr, 0, v); err != nil {
			return 0, false, err
		}
	case OpAdd3, OpSub3, OpMul3, OpDiv3, OpMod3:
		a, err := m.operandValue(in.Operands[1])
		if err != nil {
			return 0, false, err
		}
		b, err := m.operandValue(in.Operands[2])
		if err != nil {
			return 0, false, err
		}
		v, err := ApplyArith(threeOpBase(in.Op), a, b)
		if err != nil {
			return 0, false, err
		}
		if err := m.StoreVar(in.Operands[0].Addr, 0, v); err != nil {
			return 0, false, err
		}

	case OpBrEq, OpBrNe, OpBrLt, OpBrLe, OpBrGt, OpBrGe:
		a, err := m.operandValue(in.Operands[0])
		if err != nil {
			return 0, false, err
		}
		b, err := m.operandValue(in.Operands[1])
		if err != nil {
			return 0, false, err
		}
		taken, err := CompareBranch(in.Op, a, b)
		if err != nil {
			return 0, false, err
		}
		if taken {
			next = in.Target
		}

	default:
		return 0, false, fmt.Errorf("dir: unimplemented opcode %v", in.Op)
	}
	return next, false, nil
}

// ApplyArith applies a stack-level arithmetic/comparison/boolean opcode to two
// values.
func ApplyArith(op Opcode, a, b int64) (int64, error) {
	boolToInt := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return 0, ErrDivideByZero
		}
		return a / b, nil
	case OpMod:
		if b == 0 {
			return 0, ErrDivideByZero
		}
		return a % b, nil
	case OpEq:
		return boolToInt(a == b), nil
	case OpNe:
		return boolToInt(a != b), nil
	case OpLt:
		return boolToInt(a < b), nil
	case OpLe:
		return boolToInt(a <= b), nil
	case OpGt:
		return boolToInt(a > b), nil
	case OpGe:
		return boolToInt(a >= b), nil
	case OpAnd:
		return boolToInt(a != 0 && b != 0), nil
	case OpOr:
		return boolToInt(a != 0 || b != 0), nil
	default:
		return 0, fmt.Errorf("dir: %v is not an arithmetic opcode", op)
	}
}

// CompareBranch evaluates a compound compare-and-branch opcode.
func CompareBranch(op Opcode, a, b int64) (bool, error) {
	switch op {
	case OpBrEq:
		return a == b, nil
	case OpBrNe:
		return a != b, nil
	case OpBrLt:
		return a < b, nil
	case OpBrLe:
		return a <= b, nil
	case OpBrGt:
		return a > b, nil
	case OpBrGe:
		return a >= b, nil
	default:
		return false, fmt.Errorf("dir: %v is not a compare-and-branch opcode", op)
	}
}

// twoOpBase maps a two-operand arithmetic opcode to its stack-level base.
func twoOpBase(op Opcode) Opcode {
	switch op {
	case OpAdd2:
		return OpAdd
	case OpSub2:
		return OpSub
	case OpMul2:
		return OpMul
	case OpDiv2:
		return OpDiv
	case OpMod2:
		return OpMod
	default:
		return op
	}
}

// threeOpBase maps a three-operand arithmetic opcode to its stack-level base.
func threeOpBase(op Opcode) Opcode {
	switch op {
	case OpAdd3:
		return OpAdd
	case OpSub3:
		return OpSub
	case OpMul3:
		return OpMul
	case OpDiv3:
		return OpDiv
	case OpMod3:
		return OpMod
	default:
		return op
	}
}
