package dir

import (
	"errors"
	"fmt"
	"testing"
)

// divModCases sweeps the sign combinations that distinguish truncating
// division (Go, and this reproduction's contract) from flooring division.
// The final pair exercises a large-magnitude dividend near the immediate
// encoding limit.
var divModCases = []struct{ a, b int64 }{
	{7, 3}, {7, -3}, {-7, 3}, {-7, -3},
	{1, 2}, {-1, 2}, {1, -2}, {-1, -2},
	{0, 5}, {0, -5},
	{6, 3}, {-6, 3}, {6, -3}, {-6, -3},
	{5, 1}, {5, -1}, {-5, 1}, {-5, -1},
	{-9, 2}, {2, -9},
	{1073741823, -7}, {-1073741824, 7},
}

// TestApplyArithDivModTruncates pins the stack-level opcodes to Go's
// truncate-toward-zero semantics.
func TestApplyArithDivModTruncates(t *testing.T) {
	for _, tc := range divModCases {
		q, err := ApplyArith(OpDiv, tc.a, tc.b)
		if err != nil {
			t.Fatalf("ApplyArith(div, %d, %d): %v", tc.a, tc.b, err)
		}
		if q != tc.a/tc.b {
			t.Errorf("ApplyArith(div, %d, %d) = %d, want %d", tc.a, tc.b, q, tc.a/tc.b)
		}
		r, err := ApplyArith(OpMod, tc.a, tc.b)
		if err != nil {
			t.Fatalf("ApplyArith(mod, %d, %d): %v", tc.a, tc.b, err)
		}
		if r != tc.a%tc.b {
			t.Errorf("ApplyArith(mod, %d, %d) = %d, want %d", tc.a, tc.b, r, tc.a%tc.b)
		}
		// The division identity must hold exactly: (a/b)*b + a%b == a.
		if q*tc.b+r != tc.a {
			t.Errorf("identity violated for (%d, %d): q=%d r=%d", tc.a, tc.b, q, r)
		}
	}
	for _, op := range []Opcode{OpDiv, OpMod} {
		if _, err := ApplyArith(op, 1, 0); !errors.Is(err, ErrDivideByZero) {
			t.Errorf("ApplyArith(%v, 1, 0) = %v, want ErrDivideByZero", op, err)
		}
	}
}

// divModProgram builds a one-procedure DIR program that computes a op b with
// the given opcode form and prints the result.
func divModProgram(op Opcode, a, b int64) *Program {
	var instrs []Instruction
	switch op.NumOperands() {
	case 0: // stack form
		instrs = []Instruction{
			{Op: OpPushConst, Operands: []Operand{ImmOperand(a)}},
			{Op: OpPushConst, Operands: []Operand{ImmOperand(b)}},
			{Op: op},
			{Op: OpPrint},
			{Op: OpHalt},
		}
	case 2: // two-operand form: v0 = v0 op imm
		instrs = []Instruction{
			{Op: OpMove, Operands: []Operand{VarOperand(0, 0), ImmOperand(a)}},
			{Op: op, Operands: []Operand{VarOperand(0, 0), ImmOperand(b)}},
			{Op: OpPrintOperand, Operands: []Operand{VarOperand(0, 0)}},
			{Op: OpHalt},
		}
	case 3: // three-operand form: v0 = imm op imm
		instrs = []Instruction{
			{Op: op, Operands: []Operand{VarOperand(0, 0), ImmOperand(a), ImmOperand(b)}},
			{Op: OpPrintOperand, Operands: []Operand{VarOperand(0, 0)}},
			{Op: OpHalt},
		}
	}
	return &Program{
		Name:   "divmod",
		Instrs: instrs,
		Procs:  []Proc{{Name: "main", Entry: 0, FrameSlots: 1}},
		Contours: []Contour{{
			Parent: 0,
			Locals: []ContourVar{{Addr: VarAddr{Depth: 0, Offset: 0}, Size: 1}},
		}},
		Level: "hand",
	}
}

// TestDivModFormsAgree checks that every semantic level's div/mod opcode —
// the stack forms, the PDP-11-style two-operand forms and the three-operand
// forms — computes the same truncating result for every sign combination.
func TestDivModFormsAgree(t *testing.T) {
	forms := []struct {
		name string
		div  Opcode
		mod  Opcode
	}{
		{"stack", OpDiv, OpMod},
		{"mem2", OpDiv2, OpMod2},
		{"mem3", OpDiv3, OpMod3},
	}
	for _, form := range forms {
		for _, tc := range divModCases {
			for _, sub := range []struct {
				op   Opcode
				want int64
			}{
				{form.div, tc.a / tc.b},
				{form.mod, tc.a % tc.b},
			} {
				p := divModProgram(sub.op, tc.a, tc.b)
				if err := p.Validate(); err != nil {
					t.Fatalf("%s %v (%d,%d): invalid program: %v", form.name, sub.op, tc.a, tc.b, err)
				}
				res, err := Execute(p, ExecOptions{})
				if err != nil {
					t.Fatalf("%s %v (%d,%d): %v", form.name, sub.op, tc.a, tc.b, err)
				}
				if len(res.Output) != 1 || res.Output[0] != sub.want {
					t.Errorf("%s %v (%d,%d) printed %v, want [%d]", form.name, sub.op, tc.a, tc.b, res.Output, sub.want)
				}
			}
		}
	}
}

// TestDivModByZeroAllForms checks that every form traps on a zero divisor
// instead of disagreeing silently.
func TestDivModByZeroAllForms(t *testing.T) {
	for _, op := range []Opcode{OpDiv, OpMod, OpDiv2, OpMod2, OpDiv3, OpMod3} {
		p := divModProgram(op, 5, 0)
		if _, err := Execute(p, ExecOptions{}); !errors.Is(err, ErrDivideByZero) {
			t.Errorf("%v by zero: err = %v, want ErrDivideByZero", op, err)
		}
	}
}

// sanity-check the test helper itself renders distinct opcodes.
func TestDivModProgramShapes(t *testing.T) {
	for _, op := range []Opcode{OpDiv, OpDiv2, OpDiv3} {
		p := divModProgram(op, 1, 1)
		found := false
		for _, in := range p.Instrs {
			if in.Op == op {
				found = true
			}
		}
		if !found {
			t.Errorf("program for %v does not contain it: %s", op, fmt.Sprint(p.Instrs))
		}
	}
}
