package dir

import (
	"errors"
	"fmt"

	"uhm/internal/bitio"
	"uhm/internal/encoding/huffman"
	"uhm/internal/encoding/pairfreq"
)

// Degree is the degree of encoding of a DIR binary — the horizontal axis of
// the paper's Figure 1.
type Degree int

const (
	// DegreePacked packs fixed-width fields, spanning memory-unit boundaries
	// but otherwise unencoded: "the simplest form of encoding".
	DegreePacked Degree = iota
	// DegreeContour gives variable operands the contextual width determined
	// by the number of variables visible in the instruction's contour.
	DegreeContour
	// DegreeHuffman applies frequency-based (canonical Huffman) coding to
	// every field class, with contour-indexed operands.
	DegreeHuffman
	// DegreePair additionally conditions the opcode code on the previous
	// instruction's opcode (pair-frequency encoding), requiring "a separate
	// decode tree for each possible predecessor field".
	DegreePair

	degreeCount
)

// Degrees lists all encoding degrees in increasing order of encoding effort.
func Degrees() []Degree {
	return []Degree{DegreePacked, DegreeContour, DegreeHuffman, DegreePair}
}

// String names the degree.
func (d Degree) String() string {
	switch d {
	case DegreePacked:
		return "packed"
	case DegreeContour:
		return "contour"
	case DegreeHuffman:
		return "huffman"
	case DegreePair:
		return "pair"
	default:
		return fmt.Sprintf("degree(%d)", int(d))
	}
}

// Valid reports whether the degree is defined.
func (d Degree) Valid() bool { return d >= 0 && d < degreeCount }

// field classes used by the codebooks.
type fieldClass int

const (
	fcOpcode fieldClass = iota
	fcMode
	fcDepth
	fcOffset
	fcVisIndex
	fcImm
	fcTarget
	fcProc
	fcNArgs
	fieldClassCount
)

var fieldClassNames = [...]string{
	fcOpcode: "opcode", fcMode: "mode", fcDepth: "depth", fcOffset: "offset",
	fcVisIndex: "visindex", fcImm: "imm", fcTarget: "target", fcProc: "proc", fcNArgs: "nargs",
}

func (f fieldClass) String() string { return fieldClassNames[f] }

// zigzag maps signed values onto unsigned symbols so immediates and branch
// displacements can be frequency coded.
func zigzag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// DecodeCost is the measured cost of decoding one instruction from a binary:
// the paper's parameter d is the average Steps over the executed instruction
// stream.
type DecodeCost struct {
	// Steps counts elementary decode operations: one per fixed-width field
	// extract, one per decode-tree level for frequency-coded fields, plus
	// one per contour-width lookup for contextual fields.
	Steps int
	// BitsRead is the number of bits consumed.
	BitsRead int
}

// Binary is an encoded DIR program: the static representation that lives in
// level-2 memory.
type Binary struct {
	Program *Program
	Degree  Degree

	data    []byte
	bitLen  int
	offsets []int // bit offset of each instruction

	book *codebook

	// Per-contour visibility caches, filled for contextual degrees: the
	// interpreter's contour table, consulted by encoder and decoder instead
	// of re-deriving the visible-variable list on every operand.
	visVars  [][]ContourVar
	visWidth []int

	// contourOf[i] caches Program.ContourOf(i) for every instruction.
	contourOf []int32
}

// codebook holds whatever tables the decoder needs for a given degree.  In a
// real system these tables are part of the interpreter; their size is
// reported by CodebookBits so the "interpreter size" axis of Figure 1 can be
// measured.
type codebook struct {
	degree Degree

	// packedWidths[class] is the fixed field width for DegreePacked (and for
	// the classes DegreeContour leaves fixed).
	packedWidths [fieldClassCount]int

	// huff[class] is the canonical code for frequency-coded degrees.
	huff [fieldClassCount]*huffman.Code

	// opPair is the pair-frequency coder for opcodes at DegreePair.
	opPair *pairfreq.Coder
}

// SizeBits returns the size of the encoded program in bits.
func (b *Binary) SizeBits() int { return b.bitLen }

// SizeBytes returns the size of the encoded program in whole bytes.
func (b *Binary) SizeBytes() int { return (b.bitLen + 7) / 8 }

// Bytes returns the raw encoded bit string (final byte zero padded).
func (b *Binary) Bytes() []byte { return b.data }

// NumInstrs returns the number of encoded instructions.
func (b *Binary) NumInstrs() int { return len(b.offsets) }

// AvgInstrBits returns the average encoded instruction length in bits.
func (b *Binary) AvgInstrBits() float64 {
	if len(b.offsets) == 0 {
		return 0
	}
	return float64(b.bitLen) / float64(len(b.offsets))
}

// InstrBitRange returns the bit offset and bit length of instruction i.
func (b *Binary) InstrBitRange(i int) (offset, length int, err error) {
	if i < 0 || i >= len(b.offsets) {
		return 0, 0, fmt.Errorf("dir: instruction index %d out of range", i)
	}
	start := b.offsets[i]
	end := b.bitLen
	if i+1 < len(b.offsets) {
		end = b.offsets[i+1]
	}
	return start, end - start, nil
}

// CodebookBits estimates the size of the decoder's tables — the amount the
// interpreter grows as the degree of encoding increases (Figure 1's caption:
// "the size of the interpreter and semantic routines increases").
func (b *Binary) CodebookBits() int {
	book := b.book
	bits := 0
	switch book.degree {
	case DegreePacked, DegreeContour:
		// One width register per field class.
		bits += int(fieldClassCount) * 8
		if book.degree == DegreeContour {
			// A width (or bound) per contour.
			bits += len(b.Program.Contours) * 8
		}
	case DegreeHuffman, DegreePair:
		for _, code := range book.huff {
			if code == nil {
				continue
			}
			// Each codebook entry needs roughly symbol + length + codeword.
			bits += code.Size() * (16 + 8 + code.MaxLen())
		}
		if book.opPair != nil {
			// One decode tree per predecessor context, sized like the opcode
			// tree.
			if opCode := book.huff[fcOpcode]; opCode != nil {
				perTree := opCode.Size() * (16 + 8 + opCode.MaxLen())
				bits += (book.opPair.Trees() - 1) * perTree
			}
		}
	}
	return bits
}

// ErrNotVisible is returned when a variable operand is not visible from the
// contour of the instruction that uses it (a compiler bug or a hand-built
// program error).
var ErrNotVisible = errors.New("dir: operand not visible in instruction contour")

// buildVisCaches derives the per-contour visible-variable lists and operand
// field widths once per binary.
func buildVisCaches(p *Program) (vars [][]ContourVar, widths []int) {
	n := len(p.Contours)
	vars = make([][]ContourVar, n)
	widths = make([]int, n)
	for c := 0; c < n; c++ {
		vars[c] = p.VisibleVars(c)
		nv := len(vars[c])
		if nv <= 1 {
			widths[c] = 1
		} else {
			widths[c] = widthFor(uint64(nv - 1))
		}
	}
	return vars, widths
}

// visibleIndex locates addr in the cached visible-variable list of contour c.
func (b *Binary) visibleIndex(c int, addr VarAddr) int {
	for i, v := range b.visVars[c] {
		if v.Addr == addr {
			return i
		}
	}
	return -1
}

// appendInstrFields appends the (class, value) pairs of an instruction in the
// canonical field order shared by every encoder and decoder.  The caller
// provides the slices so a whole-program pass reuses one pair of buffers.
func appendInstrFields(b *Binary, idx int, in Instruction, contextual bool,
	classes []fieldClass, values []uint64) ([]fieldClass, []uint64, error) {
	add := func(c fieldClass, v uint64) {
		classes = append(classes, c)
		values = append(values, v)
	}
	add(fcOpcode, uint64(in.Op))
	for _, op := range in.Operands {
		add(fcMode, uint64(op.Mode))
		switch op.Mode {
		case ModeImm:
			add(fcImm, zigzag(op.Imm))
		case ModeVar:
			if contextual {
				vi := b.visibleIndex(in.Contour, op.Addr)
				if vi < 0 {
					return classes, values, fmt.Errorf("%w: instruction %d operand %v contour %d",
						ErrNotVisible, idx, op.Addr, in.Contour)
				}
				add(fcVisIndex, uint64(vi))
			} else {
				add(fcDepth, uint64(op.Addr.Depth))
				add(fcOffset, uint64(op.Addr.Offset))
			}
		}
	}
	if in.Op.HasTarget() {
		add(fcTarget, zigzag(int64(in.Target-idx)))
	}
	if in.Op.IsCall() {
		add(fcProc, uint64(in.Proc))
		add(fcNArgs, uint64(in.NArgs))
	}
	return classes, values, nil
}

// fieldStream is the whole static program flattened to its field sequence,
// together with the per-class statistics the codebooks are built from.  It is
// produced in one pass and consumed by the write pass, so each instruction's
// fields are enumerated exactly once per Encode.
type fieldStream struct {
	classes []fieldClass
	values  []uint64
	start   []int32 // start[i] is the first field of instruction i; len n+1

	// counts[class] accumulates per-class symbol frequencies densely (one
	// map insertion per distinct symbol at code-build time instead of one
	// per field occurrence).
	counts [fieldClassCount]huffman.Counter
	max    [fieldClassCount]uint64
	ops    []pairfreq.Symbol // opcode stream for pair statistics
}

// collectFields flattens the program's field sequence and accumulates the
// statistics the requested degree actually needs: widths always, frequency
// tables only for the frequency-coded degrees, the opcode stream only for the
// pair degree.
func collectFields(b *Binary, contextual bool) (*fieldStream, error) {
	p := b.Program
	needFreq := b.Degree == DegreeHuffman || b.Degree == DegreePair
	needOps := b.Degree == DegreePair
	st := &fieldStream{
		classes: make([]fieldClass, 0, len(p.Instrs)*4),
		values:  make([]uint64, 0, len(p.Instrs)*4),
		start:   make([]int32, len(p.Instrs)+1),
	}
	if needOps {
		st.ops = make([]pairfreq.Symbol, 0, len(p.Instrs))
	}
	for idx, in := range p.Instrs {
		st.start[idx] = int32(len(st.classes))
		var err error
		st.classes, st.values, err = appendInstrFields(b, idx, in, contextual, st.classes, st.values)
		if err != nil {
			return nil, err
		}
		for i := int(st.start[idx]); i < len(st.classes); i++ {
			c, v := st.classes[i], st.values[i]
			if v > (1 << 31) {
				return nil, fmt.Errorf("dir: field %s value %d too large to encode", c, v)
			}
			if needFreq {
				st.counts[c].Add(huffman.Symbol(v))
			}
			if v > st.max[c] {
				st.max[c] = v
			}
		}
		if needOps {
			st.ops = append(st.ops, pairfreq.Symbol(in.Op))
		}
	}
	st.start[len(p.Instrs)] = int32(len(st.classes))
	return st, nil
}

// widthFor returns the number of bits needed for values in [0, max].
func widthFor(max uint64) int {
	w := 1
	for v := max >> 1; v > 0; v >>= 1 {
		w++
	}
	return w
}

// prepareBinary builds everything about a Binary that is a deterministic
// function of the program alone — the visibility caches, the flattened field
// stream and the codebook with every decode table.  Encode follows it with
// the bit-writing pass; RehydrateBinary instead adopts a previously written
// (and hash-verified) payload, so a persisted artifact skips the write pass
// without the decoder losing any of its tables.
func prepareBinary(p *Program, degree Degree) (*Binary, *fieldStream, error) {
	if !degree.Valid() {
		return nil, nil, fmt.Errorf("dir: invalid encoding degree %d", int(degree))
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	contextual := degree != DegreePacked
	bin := &Binary{Program: p, Degree: degree}
	if contextual {
		bin.visVars, bin.visWidth = buildVisCaches(p)
	}
	bin.contourOf = make([]int32, len(p.Instrs))
	for i := range p.Instrs {
		bin.contourOf[i] = int32(p.ContourOf(i))
	}
	stats, err := collectFields(bin, contextual)
	if err != nil {
		return nil, nil, err
	}

	book := &codebook{degree: degree}
	for c := 0; c < int(fieldClassCount); c++ {
		book.packedWidths[c] = widthFor(stats.max[c])
	}
	if degree == DegreeHuffman || degree == DegreePair {
		for c := 0; c < int(fieldClassCount); c++ {
			if stats.counts[c].Empty() {
				continue
			}
			code, err := stats.counts[c].Code()
			if err != nil {
				return nil, nil, fmt.Errorf("dir: building %s code: %w", fieldClass(c), err)
			}
			book.huff[c] = code
		}
	}
	if degree == DegreePair {
		ps := pairfreq.NewStats()
		ps.ObserveAll(stats.ops)
		coder, err := pairfreq.NewCoder(ps, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("dir: building pair-frequency opcode code: %w", err)
		}
		book.opPair = coder
	}
	bin.book = book
	return bin, stats, nil
}

// Encode emits the program at the given encoding degree.
func Encode(p *Program, degree Degree) (*Binary, error) {
	bin, stats, err := prepareBinary(p, degree)
	if err != nil {
		return nil, err
	}

	w := bitio.NewWriter(len(p.Instrs) * 32)
	offsets := make([]int, len(p.Instrs))
	var pairEnc *pairfreq.Encoder
	if bin.book.opPair != nil {
		pairEnc = bin.book.opPair.NewEncoder()
	}
	for idx, in := range p.Instrs {
		offsets[idx] = w.Len()
		for i := stats.start[idx]; i < stats.start[idx+1]; i++ {
			c, v := stats.classes[i], stats.values[i]
			if err := encodeField(w, bin, in.Contour, c, v, pairEnc); err != nil {
				return nil, fmt.Errorf("dir: instruction %d field %s: %w", idx, c, err)
			}
		}
	}
	bin.data = append([]byte(nil), w.Bytes()...)
	bin.bitLen = w.Len()
	bin.offsets = offsets
	return bin, nil
}

// RehydrateBinary reconstructs a Binary from a persisted payload without
// re-running the bit-writing pass: the decode tables are rebuilt
// deterministically from the program (prepareBinary), and the stored bit
// string, length and per-instruction offsets are adopted as-is.  Encode is
// deterministic, so a payload it wrote always rehydrates to an identical
// Binary; the caller is responsible for integrity (the store layer verifies
// a content hash before handing payloads here), while this function enforces
// the structural invariants — offset monotonicity, bit-length bounds, one
// offset per instruction — so a malformed payload errors instead of
// producing a Binary that panics downstream.
func RehydrateBinary(p *Program, degree Degree, data []byte, bitLen int, offsets []int) (*Binary, error) {
	bin, _, err := prepareBinary(p, degree)
	if err != nil {
		return nil, err
	}
	if len(offsets) != len(p.Instrs) {
		return nil, fmt.Errorf("dir: rehydrate: %d offsets for %d instructions", len(offsets), len(p.Instrs))
	}
	if bitLen < 0 || bitLen > len(data)*8 {
		return nil, fmt.Errorf("dir: rehydrate: bit length %d exceeds %d payload bytes", bitLen, len(data))
	}
	if len(data) != (bitLen+7)/8 {
		return nil, fmt.Errorf("dir: rehydrate: %d payload bytes for bit length %d", len(data), bitLen)
	}
	prev := 0
	for i, off := range offsets {
		if off < prev || off > bitLen {
			return nil, fmt.Errorf("dir: rehydrate: offset %d of instruction %d out of order or out of range", off, i)
		}
		prev = off
	}
	bin.data = append([]byte(nil), data...)
	bin.bitLen = bitLen
	bin.offsets = append([]int(nil), offsets...)
	return bin, nil
}

func encodeField(w *bitio.Writer, bin *Binary, contour int, c fieldClass, v uint64, pairEnc *pairfreq.Encoder) error {
	book := bin.book
	switch book.degree {
	case DegreePacked:
		return w.WriteBits(v, book.packedWidths[c])
	case DegreeContour:
		if c == fcVisIndex {
			return w.WriteBits(v, bin.visWidth[contour])
		}
		return w.WriteBits(v, book.packedWidths[c])
	case DegreeHuffman, DegreePair:
		if c == fcOpcode && book.opPair != nil && pairEnc != nil {
			return pairEnc.Encode(w, pairfreq.Symbol(v))
		}
		code := book.huff[c]
		if code == nil {
			return fmt.Errorf("no code for field class %s", c)
		}
		return code.Encode(w, huffman.Symbol(v))
	default:
		return fmt.Errorf("unknown degree %v", book.degree)
	}
}

// Decoder decodes instructions from a Binary, counting decode steps.  A
// Decoder carries the predecessor state needed by the pair-frequency degree,
// so a fresh Decoder should be used per independent decode stream; the
// sequential Decode method below is the common entry point.  A Decoder
// allocates nothing per decoded instruction beyond the instruction's own
// operand storage.
type Decoder struct {
	bin     *Binary
	r       *bitio.Reader
	pairDec *pairfreq.Decoder // reused across Decode calls at DegreePair
	cost    DecodeCost        // accumulator for the current Decode call
	contour int               // contour of the instruction being decoded

	// arena, when non-nil, provides operand storage for decoded
	// instructions from one contiguous allocation (see SetOperandArena).
	arena []Operand
}

// SetOperandArena hands the decoder a contiguous buffer to carve decoded
// instructions' operand slices from, so a whole-program decode pass (such as
// Binary.Predecode) performs one operand allocation instead of one per
// instruction.  The instructions decoded afterwards alias the arena and share
// its lifetime.
func (d *Decoder) SetOperandArena(capacity int) {
	d.arena = make([]Operand, 0, capacity)
}

// NewDecoder returns a decoder over the binary.
func (b *Binary) NewDecoder() *Decoder {
	d := &Decoder{bin: b, r: bitio.NewReader(b.data, b.bitLen)}
	if b.book.opPair != nil {
		d.pairDec = b.book.opPair.NewDecoder()
	}
	return d
}

// readField decodes one field of the current instruction, charging its
// decode cost.
func (d *Decoder) readField(c fieldClass) (uint64, error) {
	book := d.bin.book
	switch book.degree {
	case DegreePacked:
		v, err := d.r.ReadBits(book.packedWidths[c])
		d.cost.Steps++
		d.cost.BitsRead += book.packedWidths[c]
		return v, err
	case DegreeContour:
		width := book.packedWidths[c]
		if c == fcVisIndex {
			width = d.bin.visWidth[d.contour]
			// One extra step to consult the current contour's width.
			d.cost.Steps++
		}
		v, err := d.r.ReadBits(width)
		d.cost.Steps++
		d.cost.BitsRead += width
		return v, err
	case DegreeHuffman, DegreePair:
		if c == fcOpcode && d.pairDec != nil {
			before := d.r.Pos()
			sym, steps, err := d.pairDec.Decode(d.r)
			d.cost.Steps += steps
			d.cost.BitsRead += d.r.Pos() - before
			return uint64(sym), err
		}
		code := book.huff[c]
		if code == nil {
			return 0, fmt.Errorf("dir: no code for field class %s", c)
		}
		before := d.r.Pos()
		sym, steps, err := code.Decode(d.r)
		d.cost.Steps += steps
		d.cost.BitsRead += d.r.Pos() - before
		return uint64(sym), err
	default:
		return 0, fmt.Errorf("dir: unknown degree %v", book.degree)
	}
}

// Decode decodes instruction i and reports the measured decode cost.  The
// instruction's Contour field is reconstructed from the program's procedure
// table, as a real interpreter would know it from the current block context.
func (d *Decoder) Decode(i int) (Instruction, DecodeCost, error) {
	var in Instruction
	cost, err := d.DecodeInto(&in, i)
	if err != nil {
		return Instruction{}, cost, err
	}
	return in, cost, nil
}

// DecodeInto decodes instruction i directly into *in, sparing whole-program
// passes (Binary.Predecode) an intermediate copy per instruction.  On error
// *in holds a partial decode and must not be used.
func (d *Decoder) DecodeInto(in *Instruction, i int) (DecodeCost, error) {
	d.cost = DecodeCost{}
	start, _, err := d.bin.InstrBitRange(i)
	if err != nil {
		return d.cost, err
	}
	if err := d.r.Seek(start); err != nil {
		return d.cost, err
	}
	d.contour = int(d.bin.contourOf[i])

	// The pair-frequency degree conditions each opcode on its predecessor;
	// decoding instruction i therefore needs the predecessor opcode, which
	// the interpreter knows because it decoded it last time.  Here it is
	// reconstructed from the program (the decode-step cost of that lookup is
	// not charged, matching an interpreter that keeps it in a register).
	if d.pairDec != nil {
		if i > 0 {
			d.pairDec.Prime(pairfreq.Symbol(d.bin.Program.Instrs[i-1].Op))
		} else {
			d.pairDec.Reset()
		}
	}

	opv, err := d.readField(fcOpcode)
	if err != nil {
		return d.cost, err
	}
	*in = Instruction{Op: Opcode(opv), Contour: d.contour}
	if !in.Op.Valid() {
		return d.cost, fmt.Errorf("dir: decoded invalid opcode %d at instruction %d", opv, i)
	}
	contextual := d.bin.book.degree != DegreePacked
	numOps := in.Op.NumOperands()
	if numOps > 0 {
		if base := len(d.arena); cap(d.arena)-base >= numOps {
			// Carve the operand slice out of the arena; the three-index
			// expression caps it at numOps so later carvings cannot overlap.
			in.Operands = d.arena[base : base : base+numOps]
			d.arena = d.arena[:base+numOps]
		} else {
			in.Operands = make([]Operand, 0, numOps)
		}
	}
	for k := 0; k < numOps; k++ {
		mv, err := d.readField(fcMode)
		if err != nil {
			return d.cost, err
		}
		mode := AddrMode(mv)
		if !mode.Valid() {
			return d.cost, fmt.Errorf("dir: decoded invalid mode %d at instruction %d", mv, i)
		}
		var op Operand
		op.Mode = mode
		switch mode {
		case ModeImm:
			v, err := d.readField(fcImm)
			if err != nil {
				return d.cost, err
			}
			op.Imm = unzigzag(v)
		case ModeVar:
			if contextual {
				v, err := d.readField(fcVisIndex)
				if err != nil {
					return d.cost, err
				}
				vis := d.bin.visVars[d.contour]
				if int(v) >= len(vis) {
					return d.cost, fmt.Errorf("dir: visible index %d out of range at instruction %d", v, i)
				}
				op.Addr = vis[v].Addr
			} else {
				dv, err := d.readField(fcDepth)
				if err != nil {
					return d.cost, err
				}
				ov, err := d.readField(fcOffset)
				if err != nil {
					return d.cost, err
				}
				op.Addr = VarAddr{Depth: int(dv), Offset: int(ov)}
			}
		}
		in.Operands = append(in.Operands, op)
	}
	if in.Op.HasTarget() {
		v, err := d.readField(fcTarget)
		if err != nil {
			return d.cost, err
		}
		in.Target = i + int(unzigzag(v))
	}
	if in.Op.IsCall() {
		pv, err := d.readField(fcProc)
		if err != nil {
			return d.cost, err
		}
		nv, err := d.readField(fcNArgs)
		if err != nil {
			return d.cost, err
		}
		in.Proc = int(pv)
		in.NArgs = int(nv)
	}
	return d.cost, nil
}

// ContourOf returns the contour (procedure) index containing instruction i,
// derived from the procedure entry points.  The compiler emits procedure
// bodies contiguously in procedure-index order, so the containing procedure
// is the one with the greatest entry point not exceeding i.
func (p *Program) ContourOf(i int) int {
	best := 0
	bestEntry := -1
	for idx, proc := range p.Procs {
		if proc.Entry <= i && proc.Entry > bestEntry {
			best = idx
			bestEntry = proc.Entry
		}
	}
	return best
}
