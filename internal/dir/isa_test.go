package dir

import (
	"strings"
	"testing"
)

// testProgram returns a small, valid, hand-built DIR program containing a
// main body and one procedure, exercising stack, call and branch opcodes.
func testProgram() *Program {
	main := 0
	f := 1
	return &Program{
		Name:  "test",
		Level: "stack",
		Procs: []Proc{
			{Name: "test", Entry: 0, NumParams: 0, FrameSlots: 2, Depth: 0},
			{Name: "f", Entry: 8, NumParams: 1, FrameSlots: 2, Depth: 1},
		},
		Contours: []Contour{
			{Parent: 0, Locals: []ContourVar{
				{Addr: VarAddr{0, 0}, Size: 1},
				{Addr: VarAddr{0, 1}, Size: 1},
			}},
			{Parent: 0, Locals: []ContourVar{
				{Addr: VarAddr{1, 0}, Size: 1},
				{Addr: VarAddr{1, 1}, Size: 1},
			}},
		},
		Instrs: []Instruction{
			// main
			{Op: OpPushConst, Operands: []Operand{ImmOperand(5)}, Contour: main},
			{Op: OpStoreVar, Operands: []Operand{VarOperand(0, 0)}, Contour: main},
			{Op: OpPushVar, Operands: []Operand{VarOperand(0, 0)}, Contour: main},
			{Op: OpCall, Proc: 1, NArgs: 1, Contour: main},
			{Op: OpStoreVar, Operands: []Operand{VarOperand(0, 1)}, Contour: main},
			{Op: OpPushVar, Operands: []Operand{VarOperand(0, 1)}, Contour: main},
			{Op: OpPrint, Contour: main},
			{Op: OpHalt, Contour: main},
			// f(k): if k < 2 return k else return k - 1
			{Op: OpPushVar, Operands: []Operand{VarOperand(1, 0)}, Contour: f},
			{Op: OpPushConst, Operands: []Operand{ImmOperand(2)}, Contour: f},
			{Op: OpLt, Contour: f},
			{Op: OpJumpZero, Target: 14, Contour: f},
			{Op: OpPushVar, Operands: []Operand{VarOperand(1, 0)}, Contour: f},
			{Op: OpReturnValue, Contour: f},
			{Op: OpPushVar, Operands: []Operand{VarOperand(1, 0)}, Contour: f},
			{Op: OpPushConst, Operands: []Operand{ImmOperand(1)}, Contour: f},
			{Op: OpSub, Contour: f},
			{Op: OpReturnValue, Contour: f},
		},
	}
}

// highLevelProgram returns a valid program using the two- and three-operand
// memory opcodes and compound branches.
func highLevelProgram() *Program {
	return &Program{
		Name:  "high",
		Level: "high",
		Procs: []Proc{
			{Name: "high", Entry: 0, NumParams: 0, FrameSlots: 3, Depth: 0},
		},
		Contours: []Contour{
			{Parent: 0, Locals: []ContourVar{
				{Addr: VarAddr{0, 0}, Size: 1},
				{Addr: VarAddr{0, 1}, Size: 1},
				{Addr: VarAddr{0, 2}, Size: 1},
			}},
		},
		Instrs: []Instruction{
			{Op: OpMove, Operands: []Operand{VarOperand(0, 0), ImmOperand(0)}},
			{Op: OpMove, Operands: []Operand{VarOperand(0, 1), ImmOperand(1)}},
			{Op: OpAdd3, Operands: []Operand{VarOperand(0, 2), VarOperand(0, 0), VarOperand(0, 1)}},
			{Op: OpAdd2, Operands: []Operand{VarOperand(0, 0), ImmOperand(1)}},
			{Op: OpBrLt, Operands: []Operand{VarOperand(0, 0), ImmOperand(10)}, Target: 2},
			{Op: OpPrintOperand, Operands: []Operand{VarOperand(0, 2)}},
			{Op: OpHalt},
		},
	}
}

func TestOpcodeProperties(t *testing.T) {
	if NumOpcodes <= 0 || NumAddrModes != 2 {
		t.Fatalf("NumOpcodes=%d NumAddrModes=%d", NumOpcodes, NumAddrModes)
	}
	for op := Opcode(0); op.Valid(); op++ {
		if op.String() == "" || strings.HasPrefix(op.String(), "OP(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if n := op.NumOperands(); n < 0 || n > 3 {
			t.Errorf("opcode %s has bad operand count %d", op, n)
		}
	}
	if Opcode(200).Valid() {
		t.Error("opcode 200 should be invalid")
	}
	if Opcode(200).String() == "" {
		t.Error("invalid opcode should still render")
	}
	if !OpJump.HasTarget() || !OpBrLt.HasTarget() || OpAdd.HasTarget() {
		t.Error("HasTarget misclassifies")
	}
	if !OpCall.IsCall() || OpJump.IsCall() {
		t.Error("IsCall misclassifies")
	}
	if !OpBrGe.IsBranchCompare() || OpJump.IsBranchCompare() {
		t.Error("IsBranchCompare misclassifies")
	}
	if ModeImm.String() != "imm" || ModeVar.String() != "var" || AddrMode(9).String() == "" {
		t.Error("mode strings")
	}
	if AddrMode(9).Valid() {
		t.Error("mode 9 should be invalid")
	}
}

func TestOperandConstructorsAndStrings(t *testing.T) {
	imm := ImmOperand(-7)
	if imm.Mode != ModeImm || imm.Imm != -7 || imm.String() != "#-7" {
		t.Errorf("imm operand = %+v %q", imm, imm.String())
	}
	v := VarOperand(2, 3)
	if v.Mode != ModeVar || v.Addr != (VarAddr{2, 3}) || v.String() != "2.3" {
		t.Errorf("var operand = %+v %q", v, v.String())
	}
	bad := Operand{Mode: AddrMode(9)}
	if bad.String() == "" {
		t.Error("invalid operand should render")
	}
}

func TestInstructionString(t *testing.T) {
	in := Instruction{Op: OpCall, Proc: 2, NArgs: 3}
	if got := in.String(); !strings.Contains(got, "CALL") || !strings.Contains(got, "proc2/3") {
		t.Errorf("call string = %q", got)
	}
	br := Instruction{Op: OpBrLt, Operands: []Operand{VarOperand(0, 0), ImmOperand(4)}, Target: 9}
	if got := br.String(); !strings.Contains(got, "->9") {
		t.Errorf("branch string = %q", got)
	}
}

func TestValidateAcceptsGoodPrograms(t *testing.T) {
	if err := testProgram().Validate(); err != nil {
		t.Errorf("testProgram invalid: %v", err)
	}
	if err := highLevelProgram().Validate(); err != nil {
		t.Errorf("highLevelProgram invalid: %v", err)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(p *Program)
		want   string
	}{
		{"no instructions", func(p *Program) { p.Instrs = nil }, "no instructions"},
		{"no procs", func(p *Program) { p.Procs = nil }, "no procedures"},
		{"contour count", func(p *Program) { p.Contours = p.Contours[:1] }, "contours for"},
		{"bad entry", func(p *Program) { p.Procs[1].Entry = 99 }, "entry 99 out of range"},
		{"bad frame", func(p *Program) { p.Procs[1].FrameSlots = 0 }, "frame slots"},
		{"bad contour parent", func(p *Program) { p.Contours[1].Parent = 7 }, "parent 7 out of range"},
		{"bad opcode", func(p *Program) { p.Instrs[0].Op = Opcode(250) }, "invalid opcode"},
		{"bad operand count", func(p *Program) { p.Instrs[0].Operands = nil }, "has 0 operands"},
		{"bad operand mode", func(p *Program) { p.Instrs[0].Operands[0].Mode = AddrMode(9) }, "invalid mode"},
		{"negative address", func(p *Program) {
			p.Instrs[1].Operands[0] = Operand{Mode: ModeVar, Addr: VarAddr{-1, 0}}
		}, "negative address"},
		{"bad target", func(p *Program) { p.Instrs[11].Target = 99 }, "target 99 out of range"},
		{"bad call proc", func(p *Program) { p.Instrs[3].Proc = 9 }, "unknown procedure"},
		{"bad call args", func(p *Program) { p.Instrs[3].NArgs = 2 }, "passes 2 args"},
		{"bad contour index", func(p *Program) { p.Instrs[0].Contour = 9 }, "contour 9 out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := testProgram()
			c.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want it to contain %q", err, c.want)
			}
		})
	}
}

func TestDisassemble(t *testing.T) {
	text := testProgram().Disassemble()
	for _, want := range []string{"program test", "PUSHC #5", "CALL proc1/1", "f (proc 1)", "JZ ->14"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestVisibleVarsAndIndex(t *testing.T) {
	p := testProgram()
	rootVis := p.VisibleVars(0)
	if len(rootVis) != 2 {
		t.Fatalf("contour 0 visible = %d, want 2", len(rootVis))
	}
	procVis := p.VisibleVars(1)
	if len(procVis) != 4 {
		t.Fatalf("contour 1 visible = %d, want 4", len(procVis))
	}
	// Outermost declarations come first in the canonical order.
	if procVis[0].Addr != (VarAddr{0, 0}) || procVis[3].Addr != (VarAddr{1, 1}) {
		t.Errorf("visible order = %v", procVis)
	}
	if idx := p.VisibleIndex(1, VarAddr{1, 0}); idx != 2 {
		t.Errorf("VisibleIndex(1, 1.0) = %d, want 2", idx)
	}
	if idx := p.VisibleIndex(0, VarAddr{1, 0}); idx != -1 {
		t.Errorf("VisibleIndex(0, 1.0) = %d, want -1 (not visible)", idx)
	}
	if vis := p.VisibleVars(-1); vis != nil {
		t.Error("VisibleVars(-1) should be nil")
	}
	if vis := p.VisibleVars(9); vis != nil {
		t.Error("VisibleVars(9) should be nil")
	}
}

func TestContourOf(t *testing.T) {
	p := testProgram()
	if c := p.ContourOf(0); c != 0 {
		t.Errorf("ContourOf(0) = %d", c)
	}
	if c := p.ContourOf(7); c != 0 {
		t.Errorf("ContourOf(7) = %d", c)
	}
	if c := p.ContourOf(8); c != 1 {
		t.Errorf("ContourOf(8) = %d", c)
	}
	if c := p.ContourOf(17); c != 1 {
		t.Errorf("ContourOf(17) = %d", c)
	}
	// Every instruction's recorded contour matches the derived one.
	for i, in := range p.Instrs {
		if p.ContourOf(i) != in.Contour {
			t.Errorf("instruction %d: derived contour %d, recorded %d", i, p.ContourOf(i), in.Contour)
		}
	}
}

func TestInstructionMix(t *testing.T) {
	mix := testProgram().InstructionMix()
	if mix[OpPushVar] != 5 || mix[OpPushConst] != 3 || mix[OpHalt] != 1 {
		t.Errorf("mix = %v", mix)
	}
}

func TestVarAddrString(t *testing.T) {
	if (VarAddr{3, 14}).String() != "3.14" {
		t.Errorf("VarAddr.String = %q", VarAddr{3, 14}.String())
	}
}
