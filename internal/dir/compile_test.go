package dir

import (
	"errors"
	"slices"
	"testing"
)

// assertCompiledMatchesExecute runs the program through both the reference
// interpreter and the closure-compiled form and requires identical output
// and identical dynamic instruction counts — the conformance invariants the
// compiled organisation must uphold.
func assertCompiledMatchesExecute(t *testing.T, p *Program) {
	t.Helper()
	want, err := Execute(p, ExecOptions{})
	if err != nil {
		t.Fatalf("reference execute: %v", err)
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	got, err := c.Execute(ExecOptions{})
	if err != nil {
		t.Fatalf("compiled execute: %v", err)
	}
	if !slices.Equal(got.Output, want.Output) {
		t.Errorf("compiled output %v, reference %v", got.Output, want.Output)
	}
	if got.Executed != want.Executed {
		t.Errorf("compiled retired %d instructions, reference executed %d", got.Executed, want.Executed)
	}
}

func TestCompileLoopSumMatchesExecute(t *testing.T) {
	assertCompiledMatchesExecute(t, fixLoopTargets(loopProgram(10)))
}

func TestCompileCallAndReturnMatchesExecute(t *testing.T) {
	assertCompiledMatchesExecute(t, testProgram())
}

func TestCompileHighLevelOpcodesMatchesExecute(t *testing.T) {
	assertCompiledMatchesExecute(t, highLevelProgram())
}

func TestCompileFusesPairs(t *testing.T) {
	// The loop program is dense with push+arith / push+store pairs; fusion
	// must find some, and the op count must shrink by exactly that many.
	p := fixLoopTargets(loopProgram(10))
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.FusedPairs() == 0 {
		t.Error("no superinstructions fused in a push-dominated program")
	}
	if got, want := c.NumOps(), len(p.Instrs)-c.FusedPairs(); got != want {
		t.Errorf("NumOps = %d, want %d (%d instrs - %d fused pairs)",
			got, want, len(p.Instrs), c.FusedPairs())
	}
	if c.FootprintWords() != c.NumOps()*CompiledOpWords {
		t.Errorf("FootprintWords = %d, want %d", c.FootprintWords(), c.NumOps()*CompiledOpWords)
	}
}

func TestCompileNeverFusesOverJoinPoints(t *testing.T) {
	// (2,3) is a fusable (PUSHV, STV) pair, but the jump at 1 enters the
	// program at 3 — the middle of the would-be superinstruction.  The
	// compiler must keep 3 a join point (no fusion) and execution must match
	// the reference exactly.
	joinProg := func(target int) *Program {
		return &Program{
			Name:  "join",
			Level: "stack",
			Procs: []Proc{{Name: "main", Entry: 0, FrameSlots: 1}},
			Contours: []Contour{{Parent: 0, Locals: []ContourVar{
				{Addr: VarAddr{0, 0}, Size: 1},
			}}},
			Instrs: []Instruction{
				/*0*/ {Op: OpPushConst, Operands: []Operand{ImmOperand(7)}},
				/*1*/ {Op: OpJump, Target: target},
				/*2*/ {Op: OpPushVar, Operands: []Operand{VarOperand(0, 0)}},
				/*3*/ {Op: OpStoreVar, Operands: []Operand{VarOperand(0, 0)}},
				/*4*/ {Op: OpPushVar, Operands: []Operand{VarOperand(0, 0)}},
				/*5*/ {Op: OpPrint},
				/*6*/ {Op: OpHalt},
			},
		}
	}

	// Jump into the middle of the pair: fusion must be suppressed.
	p := joinProg(3)
	assertCompiledMatchesExecute(t, p)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.FusedPairs() != 0 {
		t.Errorf("fused %d pairs across a join point, want 0", c.FusedPairs())
	}

	// Jump to the head of the pair instead: now (2,3) is free to fuse.
	p = joinProg(2)
	assertCompiledMatchesExecute(t, p)
	if c, err = Compile(p); err != nil {
		t.Fatal(err)
	}
	if c.FusedPairs() != 1 {
		t.Errorf("fused %d pairs, want 1 (the (PUSHV, STV) pair at 2)", c.FusedPairs())
	}
}

func TestCompileRejectsInvalidProgram(t *testing.T) {
	p := &Program{Name: "empty"}
	if _, err := Compile(p); err == nil {
		t.Error("compiling an invalid program should fail")
	}
}

func TestCompiledStepLimit(t *testing.T) {
	// An infinite loop must trip ErrStepLimit, as the reference does.
	p := &Program{
		Name:     "spin",
		Procs:    []Proc{{Name: "main", Entry: 0, FrameSlots: 1}},
		Contours: []Contour{{Parent: 0}},
		Instrs: []Instruction{
			{Op: OpJump, Target: 0},
			{Op: OpHalt},
		},
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(ExecOptions{MaxSteps: 100}); !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestCompiledDivideByZero(t *testing.T) {
	p := &Program{
		Name:     "div0",
		Procs:    []Proc{{Name: "main", Entry: 0, FrameSlots: 1}},
		Contours: []Contour{{Parent: 0}},
		Instrs: []Instruction{
			{Op: OpPushConst, Operands: []Operand{ImmOperand(1)}},
			{Op: OpPushConst, Operands: []Operand{ImmOperand(0)}},
			{Op: OpDiv},
			{Op: OpHalt},
		},
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(ExecOptions{}); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("err = %v, want ErrDivideByZero", err)
	}
}

func TestCompiledReplayResetIsDeterministic(t *testing.T) {
	// Run, Reset, Run on one MachineState must reproduce output, instruction
	// count and (compile-time-constant) cost accounting exactly.
	p := fixLoopTargets(loopProgram(25))
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachineState(p)
	first, err := c.Run(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := slices.Clone(m.Output())
	for round := 0; round < 3; round++ {
		m.Reset()
		again, err := c.Run(m, 0, 0)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if again != first {
			t.Fatalf("round %d: stats %+v, first run %+v", round, again, first)
		}
		if !slices.Equal(m.Output(), out) {
			t.Fatalf("round %d: output %v, first run %v", round, m.Output(), out)
		}
	}
}

func TestCompiledReplayDoesNotAllocate(t *testing.T) {
	p := fixLoopTargets(loopProgram(50))
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachineState(p)
	for i := 0; i < 2; i++ { // warm up stacks and pools
		m.Reset()
		if _, err := c.Run(m, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		m.Reset()
		if _, err := c.Run(m, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state compiled replay allocates %.1f objects per run, want 0", allocs)
	}
}

func BenchmarkCompile(b *testing.B) {
	// Compile-time cost of the closure lowering (paid once per program).
	p := fixLoopTargets(loopProgram(10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledRun(b *testing.B) {
	// Steady-state native execution against the reference interpreter
	// (BenchmarkExecuteLoop) on the same program.
	p := fixLoopTargets(loopProgram(100))
	c, err := Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	m := NewMachineState(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, err := c.Run(m, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
