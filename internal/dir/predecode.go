package dir

import "fmt"

// Predecoded is the result of decoding every instruction of a Binary exactly
// once: the decoded instructions and their measured decode costs, indexed
// densely by instruction index (pc).
//
// Decoding a DIR instruction always produces the same result and the same
// cost for a given pc — the pair-frequency degree conditions each opcode on
// its static predecessor, which Decode reconstructs from the program — so the
// per-execution decode work of an interpreter can be hoisted into this one
// pass.  A Predecoded is immutable after construction and safe to share
// between goroutines.
type Predecoded struct {
	Binary *Binary
	Instrs []Instruction
	Costs  []DecodeCost
}

// Predecode decodes every instruction of the binary once, in instruction
// order, recording the decoded form and the decode cost of each.
func (b *Binary) Predecode() (*Predecoded, error) {
	n := b.NumInstrs()
	pd := &Predecoded{
		Binary: b,
		Instrs: make([]Instruction, n),
		Costs:  make([]DecodeCost, n),
	}
	dec := b.NewDecoder()
	// One contiguous operand arena for the whole pass instead of one
	// allocation per decoded instruction.
	operands := 0
	for _, in := range b.Program.Instrs {
		operands += in.Op.NumOperands()
	}
	dec.SetOperandArena(operands)
	for i := 0; i < n; i++ {
		cost, err := dec.DecodeInto(&pd.Instrs[i], i)
		if err != nil {
			return nil, fmt.Errorf("dir: predecode instruction %d: %w", i, err)
		}
		pd.Costs[i] = cost
	}
	return pd, nil
}

// TotalSteps sums the decode steps over the static program — the cost of one
// full predecode pass, for comparison against dynamic decode counts.
func (pd *Predecoded) TotalSteps() int64 {
	var steps int64
	for _, c := range pd.Costs {
		steps += int64(c.Steps)
	}
	return steps
}
