// Package dir defines the directly interpretable representation (DIR) used
// as the static intermediate level of this reproduction: an instruction set
// that "does not require an associative memory, utilizes a simple,
// context-insensitive syntax and does not require a preliminary scan before
// the program can be interpreted" (§2.3).
//
// The ISA deliberately spans a range of semantic levels so the representation
// space of Figure 1 can be swept:
//
//   - stack-oriented opcodes (push/pop/arithmetic/branch), the lowest
//     semantic level the compiler emits;
//   - two-operand memory opcodes in the PDP-11 style (dst op= src);
//   - three-operand memory opcodes and compound compare-and-branch opcodes
//     in the higher-level style the paper associates with rich DIRs.
//
// A dir.Program is the in-memory, fully decoded form.  Binary emission at
// the paper's increasing degrees of encoding (packed fields, contour-
// contextual fields, Huffman, pair-frequency) lives in encode.go; the
// corresponding decoders count decode steps so the simulator can measure the
// paper's parameter d rather than assume it.
//
// Beyond the encoded forms, the package provides the two executable forms
// that bracket the binding spectrum: Execute (exec.go) is the untimed
// reference interpreter used as the differential-testing oracle, and Compile
// (compile.go) lowers a program once into direct-threaded closures — every
// operand, contour offset and branch target resolved at compile time, common
// opcode pairs fused into superinstructions — backing the fifth machine
// organisation of internal/sim.
package dir
