package translate

import (
	"fmt"

	"uhm/internal/dir"
	"uhm/internal/psder"
)

// immLimit is the largest magnitude an immediate PUSH argument can carry
// directly (the short-format word has a 24-bit argument field); wider
// constants are decomposed into chunkShift-bit chunks.
const (
	immLimit   = 1 << 23 // |arg| below this fits the 24-bit signed field
	chunkShift = 20
	chunkBase  = 1 << chunkShift
)

var arithRoutine = map[dir.Opcode]psder.RoutineID{
	dir.OpAdd: psder.RoutineAdd, dir.OpSub: psder.RoutineSub, dir.OpMul: psder.RoutineMul,
	dir.OpDiv: psder.RoutineDiv, dir.OpMod: psder.RoutineMod,
	dir.OpEq: psder.RoutineEq, dir.OpNe: psder.RoutineNe, dir.OpLt: psder.RoutineLt,
	dir.OpLe: psder.RoutineLe, dir.OpGt: psder.RoutineGt, dir.OpGe: psder.RoutineGe,
	dir.OpAnd: psder.RoutineAnd, dir.OpOr: psder.RoutineOr,
}

var twoOpRoutine = map[dir.Opcode]psder.RoutineID{
	dir.OpAdd2: psder.RoutineAdd, dir.OpSub2: psder.RoutineSub, dir.OpMul2: psder.RoutineMul,
	dir.OpDiv2: psder.RoutineDiv, dir.OpMod2: psder.RoutineMod,
}

var threeOpRoutine = map[dir.Opcode]psder.RoutineID{
	dir.OpAdd3: psder.RoutineAdd, dir.OpSub3: psder.RoutineSub, dir.OpMul3: psder.RoutineMul,
	dir.OpDiv3: psder.RoutineDiv, dir.OpMod3: psder.RoutineMod,
}

var selectRoutine = map[dir.Opcode]psder.RoutineID{
	dir.OpBrEq: psder.RoutineSelectEq, dir.OpBrNe: psder.RoutineSelectNe,
	dir.OpBrLt: psder.RoutineSelectLt, dir.OpBrLe: psder.RoutineSelectLe,
	dir.OpBrGt: psder.RoutineSelectGt, dir.OpBrGe: psder.RoutineSelectGe,
}

// hasRoutine reports whether the opcode has an entry in the routine map
// (distinguishing "missing" from a mapping to routine 0).
func hasRoutine(m map[dir.Opcode]psder.RoutineID, op dir.Opcode) bool {
	_, ok := m[op]
	return ok
}

// pushConst appends short-format instructions that leave the constant v on
// the operand stack.  Values too wide for the 24-bit immediate field are
// decomposed into 20-bit chunks combined with the ordinary multiply and add
// routines, so arbitrary 64-bit constants remain expressible.
func pushConst(seq psder.Sequence, v int64) psder.Sequence {
	if v < immLimit && v > -immLimit {
		return append(seq, psder.Push(int32(v)))
	}
	hi := v >> chunkShift
	lo := v & (chunkBase - 1)
	seq = pushConst(seq, hi)
	seq = append(seq, psder.Push(int32(chunkBase)), psder.Call(psder.RoutineMul))
	seq = append(seq, psder.Push(int32(lo)), psder.Call(psder.RoutineAdd))
	return seq
}

// pushVarAddr appends the PUSHes that pass a lexical (depth, offset) address
// to an addressing routine.
func pushVarAddr(seq psder.Sequence, addr dir.VarAddr) psder.Sequence {
	return append(seq, psder.Push(int32(addr.Depth)), psder.Push(int32(addr.Offset)))
}

// pushOperandValue appends instructions that leave the value of a DIR operand
// (immediate or scalar variable) on the operand stack.
func pushOperandValue(seq psder.Sequence, op dir.Operand) (psder.Sequence, error) {
	switch op.Mode {
	case dir.ModeImm:
		return pushConst(seq, op.Imm), nil
	case dir.ModeVar:
		seq = pushVarAddr(seq, op.Addr)
		return append(seq, psder.Call(psder.RoutineLoadVar)), nil
	default:
		return nil, fmt.Errorf("translate: unsupported operand mode %v", op.Mode)
	}
}

// Translate generates the PSDER sequence for the DIR instruction at index pc.
// The resulting sequence is self-contained: executed by IU2 (with IU1 running
// the called semantic routines) it performs the instruction's semantics and
// ends by naming the next DIR instruction through INTERP.
func Translate(in dir.Instruction, pc int) (psder.Sequence, error) {
	var seq psder.Sequence
	next := psder.InterpImm(pc + 1)

	switch op := in.Op; {
	case op == dir.OpHalt:
		return psder.Sequence{psder.Call(psder.RoutineHalt)}, nil

	case op == dir.OpPushConst:
		seq = pushConst(seq, in.Operands[0].Imm)
		return append(seq, next), nil

	case op == dir.OpPushVar:
		seq = pushVarAddr(seq, in.Operands[0].Addr)
		seq = append(seq, psder.Call(psder.RoutineLoadVar))
		return append(seq, next), nil

	case op == dir.OpPushIndexed:
		seq = pushVarAddr(seq, in.Operands[0].Addr)
		seq = append(seq, psder.Call(psder.RoutineLoadIndexed))
		return append(seq, next), nil

	case op == dir.OpStoreVar:
		seq = pushVarAddr(seq, in.Operands[0].Addr)
		seq = append(seq, psder.Call(psder.RoutineStoreVar))
		return append(seq, next), nil

	case op == dir.OpStoreIndexed:
		seq = pushVarAddr(seq, in.Operands[0].Addr)
		seq = append(seq, psder.Call(psder.RoutineStoreIndexed))
		return append(seq, next), nil

	case op == dir.OpPop:
		return psder.Sequence{psder.Pop(), next}, nil

	case hasRoutine(arithRoutine, op):
		seq = append(seq, psder.Call(arithRoutine[op]))
		return append(seq, next), nil

	case op == dir.OpNeg:
		return psder.Sequence{psder.Call(psder.RoutineNeg), next}, nil
	case op == dir.OpNot:
		return psder.Sequence{psder.Call(psder.RoutineNot), next}, nil

	case op == dir.OpJump:
		return psder.Sequence{psder.InterpImm(in.Target)}, nil

	case op == dir.OpJumpZero:
		seq = append(seq, psder.Push(int32(in.Target)), psder.Push(int32(pc+1)))
		seq = append(seq, psder.Call(psder.RoutineSelectIfZero))
		return append(seq, psder.InterpStack()), nil

	case op == dir.OpCall:
		seq = append(seq, psder.Push(int32(in.Proc)), psder.Push(int32(in.NArgs)), psder.Push(int32(pc+1)))
		seq = append(seq, psder.Call(psder.RoutineCall))
		return append(seq, psder.InterpStack()), nil

	case op == dir.OpReturn:
		return psder.Sequence{psder.Call(psder.RoutineReturn), psder.InterpStack()}, nil
	case op == dir.OpReturnValue:
		return psder.Sequence{psder.Call(psder.RoutineReturnValue), psder.InterpStack()}, nil

	case op == dir.OpPrint:
		return psder.Sequence{psder.Call(psder.RoutinePrint), next}, nil

	case op == dir.OpPrintOperand:
		var err error
		seq, err = pushOperandValue(seq, in.Operands[0])
		if err != nil {
			return nil, err
		}
		seq = append(seq, psder.Call(psder.RoutinePrint))
		return append(seq, next), nil

	case op == dir.OpMove:
		var err error
		seq, err = pushOperandValue(seq, in.Operands[1])
		if err != nil {
			return nil, err
		}
		seq = pushVarAddr(seq, in.Operands[0].Addr)
		seq = append(seq, psder.Call(psder.RoutineStoreVar))
		return append(seq, next), nil

	case hasRoutine(twoOpRoutine, op):
		var err error
		// dst = dst op src: load dst, load src, apply, store dst.
		seq = pushVarAddr(seq, in.Operands[0].Addr)
		seq = append(seq, psder.Call(psder.RoutineLoadVar))
		seq, err = pushOperandValue(seq, in.Operands[1])
		if err != nil {
			return nil, err
		}
		seq = append(seq, psder.Call(twoOpRoutine[op]))
		seq = pushVarAddr(seq, in.Operands[0].Addr)
		seq = append(seq, psder.Call(psder.RoutineStoreVar))
		return append(seq, next), nil

	case hasRoutine(threeOpRoutine, op):
		var err error
		seq, err = pushOperandValue(seq, in.Operands[1])
		if err != nil {
			return nil, err
		}
		seq, err = pushOperandValue(seq, in.Operands[2])
		if err != nil {
			return nil, err
		}
		seq = append(seq, psder.Call(threeOpRoutine[op]))
		seq = pushVarAddr(seq, in.Operands[0].Addr)
		seq = append(seq, psder.Call(psder.RoutineStoreVar))
		return append(seq, next), nil

	case hasRoutine(selectRoutine, op):
		var err error
		seq, err = pushOperandValue(seq, in.Operands[0])
		if err != nil {
			return nil, err
		}
		seq, err = pushOperandValue(seq, in.Operands[1])
		if err != nil {
			return nil, err
		}
		seq = append(seq, psder.Push(int32(in.Target)), psder.Push(int32(pc+1)))
		seq = append(seq, psder.Call(selectRoutine[op]))
		return append(seq, psder.InterpStack()), nil
	}

	return nil, fmt.Errorf("translate: unsupported DIR opcode %v", in.Op)
}

// TranslateProgram translates every instruction of a program, returning one
// sequence per DIR instruction.  It is used by the fully-expanded (DER)
// execution strategy and by tests; the DTB strategy translates lazily, one
// instruction at a time, on misses.
func TranslateProgram(p *dir.Program) ([]psder.Sequence, error) {
	out := make([]psder.Sequence, len(p.Instrs))
	for i, in := range p.Instrs {
		seq, err := Translate(in, i)
		if err != nil {
			return nil, fmt.Errorf("instruction %d (%s): %w", i, in, err)
		}
		if err := seq.Validate(); err != nil {
			return nil, fmt.Errorf("instruction %d (%s): %w", i, in, err)
		}
		out[i] = seq
	}
	return out, nil
}

// StaticCost summarises the static properties of a translated program: the
// average PSDER words per DIR instruction (the paper's s1) and the average
// base semantic cost (a static estimate of x).
type StaticCost struct {
	AvgWords        float64
	AvgSemanticCost float64
	TotalWords      int
}

// Cost computes the static cost summary of a translated program.
func Cost(seqs []psder.Sequence) StaticCost {
	if len(seqs) == 0 {
		return StaticCost{}
	}
	var words, sem int
	for _, s := range seqs {
		words += s.Words()
		sem += s.BaseSemanticCost()
	}
	return StaticCost{
		AvgWords:        float64(words) / float64(len(seqs)),
		AvgSemanticCost: float64(sem) / float64(len(seqs)),
		TotalWords:      words,
	}
}
