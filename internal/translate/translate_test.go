package translate

import (
	"strings"
	"testing"

	"uhm/internal/dir"
	"uhm/internal/psder"
)

func TestHaltTranslation(t *testing.T) {
	seq, err := Translate(dir.Instruction{Op: dir.OpHalt}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1 || seq[0].Op != psder.OpCall || seq[0].Routine() != psder.RoutineHalt {
		t.Errorf("halt sequence = %v", seq)
	}
}

func TestJumpTranslatesToSingleInterp(t *testing.T) {
	seq, err := Translate(dir.Instruction{Op: dir.OpJump, Target: 17}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1 || seq[0].Op != psder.OpInterp || seq[0].Mode != psder.ModeImm || seq[0].Arg != 17 {
		t.Errorf("jump sequence = %v", seq)
	}
}

func TestPushConstSmall(t *testing.T) {
	seq, err := Translate(dir.Instruction{Op: dir.OpPushConst, Operands: []dir.Operand{dir.ImmOperand(42)}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := psder.Sequence{psder.Push(42), psder.InterpImm(6)}
	if len(seq) != len(want) || seq[0] != want[0] || seq[1] != want[1] {
		t.Errorf("sequence = %v, want %v", seq, want)
	}
}

func TestPushConstWideDecomposes(t *testing.T) {
	big := int64(3) << 40
	seq, err := Translate(dir.Instruction{Op: dir.OpPushConst, Operands: []dir.Operand{dir.ImmOperand(big)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatalf("decomposed sequence invalid: %v", err)
	}
	if len(seq) <= 2 {
		t.Fatalf("wide constant should decompose into multiple instructions, got %v", seq)
	}
	// Every argument must fit the 24-bit field (Validate checks this), and
	// the sequence must still end with the sequential INTERP.
	last := seq[len(seq)-1]
	if last.Op != psder.OpInterp || last.Arg != 1 {
		t.Errorf("last instruction = %v", last)
	}
	negSeq, err := Translate(dir.Instruction{Op: dir.OpPushConst, Operands: []dir.Operand{dir.ImmOperand(-big)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := negSeq.Validate(); err != nil {
		t.Fatalf("negative wide constant sequence invalid: %v", err)
	}
}

func TestVariableAccessTranslations(t *testing.T) {
	pushVar, err := Translate(dir.Instruction{Op: dir.OpPushVar, Operands: []dir.Operand{dir.VarOperand(1, 3)}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// PUSH depth, PUSH offset, CALL load-var, INTERP 3.
	if len(pushVar) != 4 || pushVar[0].Arg != 1 || pushVar[1].Arg != 3 ||
		pushVar[2].Routine() != psder.RoutineLoadVar || pushVar[3].Arg != 3 {
		t.Errorf("push-var sequence = %v", pushVar)
	}
	storeIdx, err := Translate(dir.Instruction{Op: dir.OpStoreIndexed, Operands: []dir.Operand{dir.VarOperand(0, 2)}}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if storeIdx.Calls() != 1 || storeIdx[2].Routine() != psder.RoutineStoreIndexed {
		t.Errorf("store-indexed sequence = %v", storeIdx)
	}
}

func TestConditionalBranchUsesStackInterp(t *testing.T) {
	seq, err := Translate(dir.Instruction{Op: dir.OpJumpZero, Target: 20}, 7)
	if err != nil {
		t.Fatal(err)
	}
	last := seq[len(seq)-1]
	if last.Op != psder.OpInterp || last.Mode != psder.ModeStack {
		t.Errorf("conditional branch must end with INTERP (stack): %v", seq)
	}
	// The target and fall-through addresses are pushed as parameters.
	if seq[0] != psder.Push(20) || seq[1] != psder.Push(8) {
		t.Errorf("branch parameters = %v", seq[:2])
	}
}

func TestCallAndReturnTranslations(t *testing.T) {
	call, err := Translate(dir.Instruction{Op: dir.OpCall, Proc: 2, NArgs: 3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if call.Calls() != 1 || call[3].Routine() != psder.RoutineCall {
		t.Errorf("call sequence = %v", call)
	}
	if call[0] != psder.Push(2) || call[1] != psder.Push(3) || call[2] != psder.Push(12) {
		t.Errorf("call parameters = %v", call[:3])
	}
	if call[len(call)-1].Mode != psder.ModeStack {
		t.Error("call must end with INTERP (stack)")
	}
	ret, err := Translate(dir.Instruction{Op: dir.OpReturnValue}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ret[0].Routine() != psder.RoutineReturnValue || ret[1].Mode != psder.ModeStack {
		t.Errorf("return sequence = %v", ret)
	}
}

func TestArithmeticAndPopTranslations(t *testing.T) {
	cases := map[dir.Opcode]psder.RoutineID{
		dir.OpAdd: psder.RoutineAdd, dir.OpMul: psder.RoutineMul, dir.OpMod: psder.RoutineMod,
		dir.OpEq: psder.RoutineEq, dir.OpGe: psder.RoutineGe, dir.OpAnd: psder.RoutineAnd,
		dir.OpNeg: psder.RoutineNeg, dir.OpNot: psder.RoutineNot, dir.OpPrint: psder.RoutinePrint,
	}
	for op, routine := range cases {
		seq, err := Translate(dir.Instruction{Op: op}, 4)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if len(seq) != 2 || seq[0].Routine() != routine || seq[1] != psder.InterpImm(5) {
			t.Errorf("%v sequence = %v", op, seq)
		}
	}
	popSeq, err := Translate(dir.Instruction{Op: dir.OpPop}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if popSeq[0].Op != psder.OpPop {
		t.Errorf("pop sequence = %v", popSeq)
	}
}

func TestMemoryFormTranslations(t *testing.T) {
	mov, err := Translate(dir.Instruction{
		Op:       dir.OpMove,
		Operands: []dir.Operand{dir.VarOperand(0, 1), dir.ImmOperand(7)},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mov.Calls() != 1 || mov[len(mov)-2].Routine() != psder.RoutineStoreVar {
		t.Errorf("move sequence = %v", mov)
	}
	add3, err := Translate(dir.Instruction{
		Op:       dir.OpAdd3,
		Operands: []dir.Operand{dir.VarOperand(0, 0), dir.VarOperand(0, 1), dir.ImmOperand(2)},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if add3.Calls() != 3 { // load, add, store
		t.Errorf("add3 sequence should call 3 routines: %v", add3)
	}
	add2, err := Translate(dir.Instruction{
		Op:       dir.OpAdd2,
		Operands: []dir.Operand{dir.VarOperand(0, 0), dir.ImmOperand(1)},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if add2.Calls() != 3 { // load dst, add, store dst
		t.Errorf("add2 sequence should call 3 routines: %v", add2)
	}
	br, err := Translate(dir.Instruction{
		Op:       dir.OpBrLt,
		Operands: []dir.Operand{dir.VarOperand(0, 0), dir.VarOperand(0, 1)},
		Target:   3,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if br[len(br)-1].Mode != psder.ModeStack || br[len(br)-2].Routine() != psder.RoutineSelectLt {
		t.Errorf("compare-branch sequence = %v", br)
	}
	prt, err := Translate(dir.Instruction{
		Op:       dir.OpPrintOperand,
		Operands: []dir.Operand{dir.VarOperand(0, 0)},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if prt.Calls() != 2 { // load + print
		t.Errorf("print-operand sequence = %v", prt)
	}
}

func TestUnsupportedOpcode(t *testing.T) {
	if _, err := Translate(dir.Instruction{Op: dir.Opcode(200)}, 0); err == nil {
		t.Error("unknown opcode should fail")
	}
	bad := dir.Instruction{Op: dir.OpMove, Operands: []dir.Operand{dir.VarOperand(0, 0), {Mode: dir.AddrMode(9)}}}
	if _, err := Translate(bad, 0); err == nil {
		t.Error("unsupported operand mode should fail")
	}
}

func TestEverySequenceValidatesAndEncodes(t *testing.T) {
	// Every opcode the ISA defines must translate into a sequence that
	// validates and fits the buffer-array word format.
	for op := dir.Opcode(0); op.Valid(); op++ {
		in := dir.Instruction{Op: op, Target: 1, Proc: 0, NArgs: 0}
		for i := 0; i < op.NumOperands(); i++ {
			in.Operands = append(in.Operands, dir.VarOperand(0, i))
		}
		seq, err := Translate(in, 0)
		if err != nil {
			t.Errorf("%v: %v", op, err)
			continue
		}
		if err := seq.Validate(); err != nil {
			t.Errorf("%v: invalid sequence: %v", op, err)
		}
		if _, err := seq.Encode(); err != nil {
			t.Errorf("%v: sequence does not encode: %v", op, err)
		}
	}
}

func TestTranslateProgramAndCost(t *testing.T) {
	p := &dir.Program{
		Name:  "t",
		Procs: []dir.Proc{{Name: "t", Entry: 0, FrameSlots: 1}},
		Contours: []dir.Contour{
			{Parent: 0, Locals: []dir.ContourVar{{Addr: dir.VarAddr{Depth: 0, Offset: 0}, Size: 1}}},
		},
		Instrs: []dir.Instruction{
			{Op: dir.OpPushConst, Operands: []dir.Operand{dir.ImmOperand(4)}},
			{Op: dir.OpStoreVar, Operands: []dir.Operand{dir.VarOperand(0, 0)}},
			{Op: dir.OpHalt},
		},
	}
	seqs, err := TranslateProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("sequences = %d", len(seqs))
	}
	cost := Cost(seqs)
	if cost.AvgWords <= 0 || cost.AvgSemanticCost <= 0 || cost.TotalWords <= 0 {
		t.Errorf("cost = %+v", cost)
	}
	if Cost(nil) != (StaticCost{}) {
		t.Error("Cost(nil) should be zero")
	}
	// The dynamic representation should be longer than one word per DIR
	// instruction on average (the paper assumes s1 = 3 x s2).
	if cost.AvgWords < 1.5 {
		t.Errorf("average PSDER words per DIR instruction = %v, expected > 1.5", cost.AvgWords)
	}

	bad := &dir.Program{
		Name:     "bad",
		Procs:    []dir.Proc{{Name: "bad", Entry: 0, FrameSlots: 1}},
		Contours: []dir.Contour{{Parent: 0}},
		Instrs:   []dir.Instruction{{Op: dir.Opcode(200)}},
	}
	if _, err := TranslateProgram(bad); err == nil || !strings.Contains(err.Error(), "instruction 0") {
		t.Errorf("TranslateProgram error = %v", err)
	}
}

func BenchmarkTranslate(b *testing.B) {
	in := dir.Instruction{Op: dir.OpAdd3, Operands: []dir.Operand{
		dir.VarOperand(0, 0), dir.VarOperand(0, 1), dir.ImmOperand(2),
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Translate(in, 5); err != nil {
			b.Fatal(err)
		}
	}
}
