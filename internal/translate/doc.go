// Package translate implements the dynamic translator of §4 and §6.2: the
// routine that, on a DTB miss, "fetches the DIR instruction, decodes and
// parses it, generates the PSDER translation which it then stores in the DTB
// ... Lastly, it sets the ball rolling by transferring control to the first
// instruction in the PSDER translation."
//
// Translation is a pure function from one decoded DIR instruction (plus its
// position, for successor addresses) to a psder.Sequence.  The mapping is
// "almost one-to-one" as the paper requires: each DIR field becomes a PUSH of
// a parameter or a CALL of a semantic routine, and every sequence ends with
// the INTERP instruction that names the next DIR instruction — immediately
// when the successor is known statically, via the operand stack when it must
// be computed (conditional branches, calls and returns).
package translate
