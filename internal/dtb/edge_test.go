package dtb

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// TestZeroOverflowArea pins the VariableOverflow policy with an empty
// overflow area: unit-sized translations behave normally, anything larger is
// rejected with ErrNoOverflow, counted in RejectedSize, and leaves the victim
// entry invalid rather than half-installed.  The identical sequence is driven
// through Install and InstallLen, which must agree on every outcome.
func TestZeroOverflowArea(t *testing.T) {
	for _, byLen := range []bool{false, true} {
		t.Run(fmt.Sprintf("byLen=%v", byLen), func(t *testing.T) {
			d, err := New(Config{Entries: 4, Assoc: 4, UnitWords: 4, Policy: VariableOverflow, OverflowUnits: 0})
			if err != nil {
				t.Fatal(err)
			}
			install := func(addr uint64, n int) error {
				if byLen {
					_, err := d.InstallLen(addr, n)
					return err
				}
				_, err := d.Install(addr, words(n, uint32(addr)))
				return err
			}
			if err := install(10, 4); err != nil {
				t.Fatalf("unit-sized install: %v", err)
			}
			if _, ok := d.Lookup(10); !ok {
				t.Fatal("unit-sized translation not resident")
			}
			if err := install(11, 5); err == nil {
				t.Fatal("oversized install with no overflow area succeeded")
			} else if !errors.Is(err, ErrNoOverflow) {
				t.Fatalf("oversized install: %v, want ErrNoOverflow", err)
			}
			st := d.Stats()
			if st.RejectedSize != 1 {
				t.Errorf("RejectedSize = %d, want 1", st.RejectedSize)
			}
			if st.Overflows != 0 {
				t.Errorf("Overflows = %d, want 0", st.Overflows)
			}
			// The rejected translation's victim slot must be invalid: a partial
			// translation served on a later hit would be a correctness bug.
			if d.Contains(11) {
				t.Error("rejected translation is resident")
			}
			if d.Resident() != 1 {
				t.Errorf("Resident = %d, want 1 (only the unit-sized entry)", d.Resident())
			}
		})
	}
}

// TestSingleEntryDTB runs the degenerate 1-entry, 1-way geometry: every
// address maps to the same slot, so alternating addresses never hit and each
// install past the first evicts, while a repeated address hits every time.
func TestSingleEntryDTB(t *testing.T) {
	d, err := New(Config{Entries: 1, Assoc: 1, UnitWords: 4, Policy: Fixed})
	if err != nil {
		t.Fatal(err)
	}
	if d.Sets() != 1 {
		t.Fatalf("Sets = %d, want 1", d.Sets())
	}
	const rounds = 8
	for i := 0; i < rounds; i++ {
		addr := uint64(100 + i%2) // alternate two addresses
		if _, ok := d.Lookup(addr); ok {
			t.Fatalf("round %d: unexpected hit on %d", i, addr)
		}
		if _, err := d.Install(addr, words(3, uint32(addr))); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Hits != 0 || st.Misses != rounds {
		t.Errorf("alternating addresses: hits=%d misses=%d, want 0/%d", st.Hits, st.Misses, rounds)
	}
	// rounds installs into one slot: first fills the invalid entry, the rest evict.
	if st.Evictions != rounds-1 {
		t.Errorf("Evictions = %d, want %d", st.Evictions, rounds-1)
	}
	// A repeated address now hits every time.
	d.ResetStats()
	for i := 0; i < rounds; i++ {
		if got, ok := d.Lookup(101); !ok {
			t.Fatalf("round %d: repeat address missed", i)
		} else if len(got) != 3 || got[0] != 101 {
			t.Fatalf("round %d: wrong translation %v", i, got)
		}
	}
	if st := d.Stats(); st.Hits != rounds || st.Misses != 0 {
		t.Errorf("repeated address: hits=%d misses=%d, want %d/0", st.Hits, st.Misses, rounds)
	}
}

// TestCapacityEqualsWorkingSet pins the LRU boundary in a fully associative
// DTB: a cyclic working set that exactly fits hits on every revisit, and
// growing it by a single address collapses the cyclic hit ratio to zero —
// the classic LRU worst case the paper's Figure 2 knee rides on.
func TestCapacityEqualsWorkingSet(t *testing.T) {
	const entries = 8
	run := func(workingSet int) Stats {
		d, err := New(Config{Entries: entries, Assoc: entries, UnitWords: 4, Policy: Fixed})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 4; round++ {
			for a := 0; a < workingSet; a++ {
				addr := uint64(1000 + a)
				if _, ok := d.Lookup(addr); !ok {
					if _, err := d.Install(addr, words(2, uint32(a))); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return d.Stats()
	}

	fit := run(entries)
	// First pass misses everything, the remaining three passes hit everything.
	if fit.Misses != entries || fit.Hits != 3*entries {
		t.Errorf("working set == capacity: hits=%d misses=%d, want %d/%d",
			fit.Hits, fit.Misses, 3*entries, entries)
	}
	if fit.Evictions != 0 {
		t.Errorf("working set == capacity: evictions = %d, want 0", fit.Evictions)
	}

	thrash := run(entries + 1)
	// One extra address under cyclic access + LRU: every lookup misses.
	if thrash.Hits != 0 {
		t.Errorf("working set == capacity+1: hits = %d, want 0 (LRU thrash)", thrash.Hits)
	}
	if thrash.Evictions == 0 {
		t.Error("working set == capacity+1: no evictions recorded")
	}
}

// TestOverflowRecyclingAfterReset exhausts the overflow area, Resets, and
// requires the rebuilt free list to serve the same allocations again — the
// invariant the warm-start replayer relies on.
func TestOverflowRecyclingAfterReset(t *testing.T) {
	cfg := Config{Entries: 8, Assoc: 4, UnitWords: 4, Policy: VariableOverflow, OverflowUnits: 2}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exhaust := func(tag string) {
		// Two 8-word translations take one overflow block each.
		for a := uint64(0); a < 2; a++ {
			if _, err := d.Install(a, words(8, uint32(a))); err != nil {
				t.Fatalf("%s: install %d: %v", tag, a, err)
			}
		}
		if d.FreeOverflowBlocks() != 0 {
			t.Fatalf("%s: %d overflow blocks free, want 0", tag, d.FreeOverflowBlocks())
		}
		// A third oversized translation maps to a different set (addresses 0
		// and 1 already hold the blocks), so it must be rejected.
		if _, err := d.Install(2, words(8, 2)); !errors.Is(err, ErrNoOverflow) {
			t.Fatalf("%s: exhausted install: %v, want ErrNoOverflow", tag, err)
		}
	}
	exhaust("first run")

	d.Reset()
	if d.FreeOverflowBlocks() != cfg.OverflowUnits {
		t.Fatalf("after Reset: %d overflow blocks free, want %d", d.FreeOverflowBlocks(), cfg.OverflowUnits)
	}
	if d.Resident() != 0 || d.Stats() != (Stats{}) {
		t.Fatalf("after Reset: resident=%d stats=%+v, want empty", d.Resident(), d.Stats())
	}
	exhaust("after Reset")

	// Eviction is the other recycling path: invalidate an overflow holder and
	// the block must come back.
	if !d.Invalidate(0) {
		t.Fatal("Invalidate(0) found nothing")
	}
	if d.FreeOverflowBlocks() != 1 {
		t.Errorf("after Invalidate: %d overflow blocks free, want 1", d.FreeOverflowBlocks())
	}
}

// TestInstallLenLockstep drives a long seeded random workload through two
// DTBs — one with the word-copying Lookup/Install, one with the length-only
// LookupLen/InstallLen cost-replay entry points — and requires them to stay
// observationally identical at every step: same hit/miss answers, same
// lengths, same statistics, same residency, same overflow free list.  This
// is the contract that makes trace-derived cost reports trustworthy.
func TestInstallLenLockstep(t *testing.T) {
	cfg := Config{Entries: 16, Assoc: 4, UnitWords: 4, Policy: VariableOverflow, OverflowUnits: 4}
	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lens, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// total accumulates activity across the resets inside the workload, so the
	// closing "did this exercise anything" check sees the whole run.
	var total Stats
	addStats := func(a, b Stats) Stats {
		a.Lookups += b.Lookups
		a.Hits += b.Hits
		a.Misses += b.Misses
		a.Installs += b.Installs
		a.Evictions += b.Evictions
		a.Overflows += b.Overflows
		a.RejectedSize += b.RejectedSize
		a.Invalidates += b.Invalidates
		return a
	}

	rng := rand.New(rand.NewSource(42))
	steps := 20_000
	if testing.Short() {
		steps = 2_000
	}
	for i := 0; i < steps; i++ {
		// A skewed address distribution: a hot working set plus a cold tail,
		// with occasional resets and invalidations mixed in.
		var addr uint64
		if rng.Intn(4) > 0 {
			addr = uint64(rng.Intn(12))
		} else {
			addr = uint64(64 + rng.Intn(256))
		}
		switch op := rng.Intn(32); {
		case op == 0:
			total = addStats(total, full.Stats())
			full.Reset()
			lens.Reset()
		case op == 1:
			a, b := full.Invalidate(addr), lens.Invalidate(addr)
			if a != b {
				t.Fatalf("step %d: Invalidate(%d) = %v vs %v", i, addr, a, b)
			}
		default:
			w, hitFull := full.Lookup(addr)
			n, hitLens := lens.LookupLen(addr)
			if hitFull != hitLens {
				t.Fatalf("step %d: Lookup(%d) hit %v vs %v", i, addr, hitFull, hitLens)
			}
			if hitFull {
				if len(w) != n {
					t.Fatalf("step %d: translation length %d vs %d", i, len(w), n)
				}
				continue
			}
			size := 1 + rng.Intn(2*cfg.UnitWords+1) // 1..9 words: unit and overflow sizes
			_, errFull := full.Install(addr, words(size, uint32(addr)))
			_, errLens := lens.InstallLen(addr, size)
			if (errFull == nil) != (errLens == nil) {
				t.Fatalf("step %d: Install(%d, %d words) err %v vs %v", i, addr, size, errFull, errLens)
			}
		}
		if full.Stats() != lens.Stats() {
			t.Fatalf("step %d: stats diverged:\nfull: %+v\nlens: %+v", i, full.Stats(), lens.Stats())
		}
		if full.Resident() != lens.Resident() {
			t.Fatalf("step %d: residency %d vs %d", i, full.Resident(), lens.Resident())
		}
		if full.FreeOverflowBlocks() != lens.FreeOverflowBlocks() {
			t.Fatalf("step %d: free overflow %d vs %d", i, full.FreeOverflowBlocks(), lens.FreeOverflowBlocks())
		}
	}
	total = addStats(total, full.Stats())
	if total.Lookups == 0 || total.Overflows == 0 || total.Evictions == 0 {
		t.Errorf("workload too tame to be conclusive: %+v", total)
	}
}
