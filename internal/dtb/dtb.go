package dtb

import (
	"errors"
	"fmt"

	"uhm/internal/memory"
)

// Policy selects the buffer-array allocation policy of §5.1.
type Policy int

const (
	// Fixed allocation: one unit of allocation per translation; translations
	// larger than the unit are rejected (the static and dynamic
	// representations must be chosen so this cannot happen).
	Fixed Policy = iota
	// VariableOverflow: a translation larger than the unit of allocation
	// receives overflow blocks from a secondary area, linked to the primary
	// unit.
	VariableOverflow
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Fixed:
		return "fixed"
	case VariableOverflow:
		return "variable-overflow"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config describes a DTB.
type Config struct {
	// Entries is the total number of associative-address-array entries
	// (equivalently, primary units of allocation in the buffer array).
	Entries int
	// Assoc is the set associativity; the paper recommends degree 4.
	Assoc int
	// UnitWords is the unit of allocation in the buffer array, in 32-bit
	// words.  A PSDER translation of one DIR instruction must fit in one
	// unit under the Fixed policy.
	UnitWords int
	// Policy selects Fixed or VariableOverflow allocation.
	Policy Policy
	// OverflowUnits is the number of overflow blocks (each UnitWords long)
	// in the secondary overflow area.  Only used with VariableOverflow.
	OverflowUnits int
}

// DefaultConfig returns the configuration used by the paper's evaluation: the
// effective DTB size is 4096/3 bytes with the dynamic form three times the
// size of the static form; with 4-word (16-byte) units that is 85 entries,
// rounded to 84 to keep the set count whole.
func DefaultConfig() Config {
	return Config{Entries: 84, Assoc: 4, UnitWords: 4, Policy: VariableOverflow, OverflowUnits: 16}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Assoc <= 0 || c.UnitWords <= 0 {
		return errors.New("dtb: entries, associativity and unit size must be positive")
	}
	if c.Entries%c.Assoc != 0 {
		return errors.New("dtb: entry count must be a multiple of the associativity")
	}
	if c.Policy != Fixed && c.Policy != VariableOverflow {
		return errors.New("dtb: unknown allocation policy")
	}
	if c.Policy == VariableOverflow && c.OverflowUnits < 0 {
		return errors.New("dtb: negative overflow area")
	}
	return nil
}

// CapacityWords returns the total buffer-array capacity in words, including
// the overflow area.
func (c Config) CapacityWords() int {
	words := c.Entries * c.UnitWords
	if c.Policy == VariableOverflow {
		words += c.OverflowUnits * c.UnitWords
	}
	return words
}

// CapacityBytes returns the buffer-array capacity in bytes.
func (c Config) CapacityBytes() int { return c.CapacityWords() * memory.WordBytes }

// Stats reports DTB behaviour.
type Stats struct {
	Lookups      int64
	Hits         int64
	Misses       int64
	Installs     int64
	Evictions    int64
	Overflows    int64 // translations that needed overflow blocks
	RejectedSize int64 // installs rejected because the translation did not fit
	Invalidates  int64
}

// HitRatio returns hits/lookups (the paper's h_D); zero if never used.
func (s Stats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// ErrTooLarge is returned when a translation cannot be stored under the
// configured allocation policy.
var ErrTooLarge = errors.New("dtb: translation exceeds unit of allocation")

// ErrNoOverflow is returned when the overflow area is exhausted.
var ErrNoOverflow = errors.New("dtb: overflow area exhausted")

// entry is one associative-address-array entry plus its replacement-array
// recency stamp.
type entry struct {
	valid    bool
	tag      uint64 // DIR instruction address (associative tag array)
	bufUnit  int    // primary unit index in the buffer array (address array)
	overflow []int  // indices of linked overflow blocks, in order
	length   int    // number of valid words of translation
	lastUse  int64  // replacement array: recency of use
}

// DTB is the dynamic translation buffer.
type DTB struct {
	cfg    Config
	sets   [][]entry
	nsets  int
	buffer []uint32 // buffer array: primary units then overflow blocks
	free   []int    // free overflow block indices
	clock  int64
	stats  Stats
}

// New creates a DTB.
func New(cfg Config) (*DTB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Entries / cfg.Assoc
	sets := make([][]entry, nsets)
	for i := range sets {
		sets[i] = make([]entry, cfg.Assoc)
		for j := range sets[i] {
			sets[i][j].bufUnit = i*cfg.Assoc + j
		}
	}
	d := &DTB{
		cfg:    cfg,
		sets:   sets,
		nsets:  nsets,
		buffer: make([]uint32, cfg.CapacityWords()),
	}
	if cfg.Policy == VariableOverflow {
		d.free = make([]int, 0, cfg.OverflowUnits)
		for i := 0; i < cfg.OverflowUnits; i++ {
			d.free = append(d.free, cfg.Entries+i)
		}
	}
	return d, nil
}

// Config returns the DTB configuration.
func (d *DTB) Config() Config { return d.cfg }

// Sets returns the number of sets.
func (d *DTB) Sets() int { return d.nsets }

// Stats returns accumulated statistics.
func (d *DTB) Stats() Stats { return d.stats }

// ResetStats clears statistics without flushing contents.
func (d *DTB) ResetStats() { d.stats = Stats{} }

// Reset returns the DTB to its freshly constructed state — contents flushed,
// statistics zeroed, clock rewound, overflow free list rebuilt in canonical
// order — without releasing any allocation, so a replayed run behaves
// exactly like a run against a new DTB.
func (d *DTB) Reset() {
	d.Flush()
	d.stats = Stats{}
	d.clock = 0
	if d.cfg.Policy == VariableOverflow {
		d.free = d.free[:0]
		for i := 0; i < d.cfg.OverflowUnits; i++ {
			d.free = append(d.free, d.cfg.Entries+i)
		}
	}
}

// setOf hashes a DIR address to its set.
func (d *DTB) setOf(dirAddr uint64) int {
	// Simple modulo hashing of the DIR instruction address, as in Figure 2
	// ("set selected by hashing DIR address").
	return int(dirAddr % uint64(d.nsets))
}

// lookup presents a DIR instruction address to the associative address array,
// advancing the clock and recording the hit or miss.  On a hit the entry's
// recency is refreshed and the entry returned.
func (d *DTB) lookup(dirAddr uint64) *entry {
	d.clock++
	d.stats.Lookups++
	set := d.sets[d.setOf(dirAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == dirAddr {
			set[i].lastUse = d.clock
			d.stats.Hits++
			return &set[i]
		}
	}
	d.stats.Misses++
	return nil
}

// Lookup presents a DIR instruction address to the associative address array.
// On a hit it returns the PSDER translation and true.  On a miss it returns
// nil and false; the caller (the INTERP trap path) is then expected to run
// the dynamic translator and Install the result.
func (d *DTB) Lookup(dirAddr uint64) ([]uint32, bool) {
	if e := d.lookup(dirAddr); e != nil {
		return d.read(e), true
	}
	return nil, false
}

// LookupLen behaves exactly like Lookup — same statistics, same recency
// update — but returns only the length in words of the resident translation
// instead of copying it out of the buffer array.  Callers that already hold
// the translation in a shared predecoded form (sim.PredecodedProgram) use
// this to charge the buffer-array references of the hit path without
// allocating.
func (d *DTB) LookupLen(dirAddr uint64) (int, bool) {
	if e := d.lookup(dirAddr); e != nil {
		return e.length, true
	}
	return 0, false
}

// Contains reports residency without touching statistics or recency.
func (d *DTB) Contains(dirAddr uint64) bool {
	set := d.sets[d.setOf(dirAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == dirAddr {
			return true
		}
	}
	return false
}

// read gathers the translation words of an entry from the buffer array.
func (d *DTB) read(e *entry) []uint32 {
	out := make([]uint32, 0, e.length)
	remaining := e.length
	take := func(unit int) {
		base := unit * d.cfg.UnitWords
		n := d.cfg.UnitWords
		if n > remaining {
			n = remaining
		}
		out = append(out, d.buffer[base:base+n]...)
		remaining -= n
	}
	take(e.bufUnit)
	for _, ov := range e.overflow {
		if remaining == 0 {
			break
		}
		take(ov)
	}
	return out
}

// Install stores the PSDER translation of the DIR instruction at dirAddr,
// replacing the least recently used entry of the selected set.  Under the
// Fixed policy the translation must fit in one unit of allocation; under
// VariableOverflow additional blocks are taken from the overflow area.
// Install returns the number of buffer-array words written.
func (d *DTB) Install(dirAddr uint64, words []uint32) (int, error) {
	e, err := d.install(dirAddr, len(words))
	if err != nil {
		return 0, err
	}
	// Write the words into the primary unit, then into overflow blocks.
	written := 0
	writeUnit := func(unit int) {
		base := unit * d.cfg.UnitWords
		for i := 0; i < d.cfg.UnitWords && written < len(words); i++ {
			d.buffer[base+i] = words[written]
			written++
		}
	}
	writeUnit(e.bufUnit)
	for _, ov := range e.overflow {
		writeUnit(ov)
	}
	return written, nil
}

// InstallLen performs exactly the allocation, replacement and statistics
// bookkeeping of Install for a translation of n words, without copying a word
// image into the buffer array.  It is the pure cost-replay entry point of the
// trace-once/cost-many split: every placement decision (victim choice,
// overflow allocation, rejection) depends only on translation lengths, so a
// cost derivation driving InstallLen leaves the DTB in a state
// hit/miss-indistinguishable from a run that installed real words.
func (d *DTB) InstallLen(dirAddr uint64, n int) (int, error) {
	if _, err := d.install(dirAddr, n); err != nil {
		return 0, err
	}
	return n, nil
}

// install is the shared allocation core of Install and InstallLen: it selects
// and prepares the entry for an n-word translation of dirAddr, updating every
// statistic, and returns the entry words should be written into.
func (d *DTB) install(dirAddr uint64, n int) (*entry, error) {
	if n == 0 {
		return nil, errors.New("dtb: empty translation")
	}
	needUnits := (n + d.cfg.UnitWords - 1) / d.cfg.UnitWords
	if d.cfg.Policy == Fixed && needUnits > 1 {
		d.stats.RejectedSize++
		return nil, fmt.Errorf("%w: %d words > unit of %d", ErrTooLarge, n, d.cfg.UnitWords)
	}

	set := d.sets[d.setOf(dirAddr)]
	// If the tag is already present (e.g. re-translation), replace in place.
	victim := -1
	for i := range set {
		if set[i].valid && set[i].tag == dirAddr {
			victim = i
			break
		}
	}
	if victim == -1 {
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
		}
	}
	if victim == -1 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[victim].lastUse {
				victim = i
			}
		}
		d.stats.Evictions++
	}
	e := &set[victim]
	// Release any overflow blocks held by the entry being replaced.
	d.releaseOverflow(e)

	overflowNeeded := needUnits - 1
	if overflowNeeded > 0 {
		if len(d.free) < overflowNeeded {
			// Not enough overflow space: leave the entry invalid and report.
			e.valid = false
			d.stats.RejectedSize++
			return nil, fmt.Errorf("%w: need %d blocks, %d free", ErrNoOverflow, overflowNeeded, len(d.free))
		}
		// Pop from the end of the free list and reuse the entry's overflow
		// slice: neither side allocates in the steady state, and slicing
		// from the back (unlike the front) keeps the free list's capacity.
		take := d.free[len(d.free)-overflowNeeded:]
		e.overflow = append(e.overflow[:0], take...)
		d.free = d.free[:len(d.free)-overflowNeeded]
		d.stats.Overflows++
	} else {
		e.overflow = e.overflow[:0]
	}

	e.valid = true
	e.tag = dirAddr
	e.length = n
	d.clock++
	e.lastUse = d.clock
	d.stats.Installs++
	return e, nil
}

// releaseOverflow returns an entry's overflow blocks to the free list.  The
// entry keeps its overflow slice's capacity for reuse by a later Install.
func (d *DTB) releaseOverflow(e *entry) {
	if len(e.overflow) > 0 {
		d.free = append(d.free, e.overflow...)
		e.overflow = e.overflow[:0]
	}
}

// Invalidate removes the translation for dirAddr, if present.  The dynamic
// translator uses this when the static program is replaced (the paper assumes
// non-self-modifying programs, so this happens only between runs).
func (d *DTB) Invalidate(dirAddr uint64) bool {
	set := d.sets[d.setOf(dirAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == dirAddr {
			d.releaseOverflow(&set[i])
			set[i].valid = false
			set[i].length = 0
			d.stats.Invalidates++
			return true
		}
	}
	return false
}

// Flush invalidates every entry.
func (d *DTB) Flush() {
	for i := range d.sets {
		for j := range d.sets[i] {
			d.releaseOverflow(&d.sets[i][j])
			d.sets[i][j].valid = false
			d.sets[i][j].length = 0
		}
	}
}

// Resident returns the number of valid entries.
func (d *DTB) Resident() int {
	n := 0
	for _, set := range d.sets {
		for _, e := range set {
			if e.valid {
				n++
			}
		}
	}
	return n
}

// FreeOverflowBlocks returns the number of unallocated overflow blocks.
func (d *DTB) FreeOverflowBlocks() int { return len(d.free) }

// ResidentTags returns the DIR addresses currently translated, in arbitrary
// order.  It is intended for tests and diagnostics.
func (d *DTB) ResidentTags() []uint64 {
	var tags []uint64
	for _, set := range d.sets {
		for _, e := range set {
			if e.valid {
				tags = append(tags, e.tag)
			}
		}
	}
	return tags
}

// String summarises the geometry.
func (d *DTB) String() string {
	return fmt.Sprintf("dtb{%d entries, %d-way, %d sets, %d-word units, %s, %d B}",
		d.cfg.Entries, d.cfg.Assoc, d.nsets, d.cfg.UnitWords, d.cfg.Policy, d.cfg.CapacityBytes())
}
