// Package dtb implements the Dynamic Translation Buffer of §5: the structure
// that "maintains in the dynamic translation buffer (DTB) a representation of
// the instruction working set that is more tightly bound than the static
// representation".
//
// The organisation follows Figure 2:
//
//   - an associative address array, split into the associative tag array
//     (holding the DIR instruction address) and the address array (holding
//     the buffer-array address of the PSDER translation),
//   - a buffer array holding the PSDER instruction sequences, carved into
//     units of allocation,
//   - a replacement array recording the recency ordering of each set.
//
// The DIR address is hashed to select a set (set associativity, nominally of
// degree 4); the set is searched associatively; on a miss the least recently
// used member of the set is chosen for replacement.
//
// Two allocation policies from §5.1 are provided: Fixed, in which every
// translation must fit in one unit of allocation, and VariableOverflow, in
// which a translation larger than the unit receives additional fixed-size
// blocks from a secondary overflow area which are linked to the primary unit.
package dtb
