package dtb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *DTB {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func words(n int, seed uint32) []uint32 {
	w := make([]uint32, n)
	for i := range w {
		w[i] = seed + uint32(i)
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Entries: 0, Assoc: 4, UnitWords: 4},
		{Entries: 16, Assoc: 0, UnitWords: 4},
		{Entries: 16, Assoc: 4, UnitWords: 0},
		{Entries: 17, Assoc: 4, UnitWords: 4},
		{Entries: 16, Assoc: 4, UnitWords: 4, Policy: Policy(9)},
		{Entries: 16, Assoc: 4, UnitWords: 4, Policy: VariableOverflow, OverflowUnits: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New should reject invalid config", i)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Fixed.String() != "fixed" || VariableOverflow.String() != "variable-overflow" {
		t.Errorf("policy strings = %q, %q", Fixed, VariableOverflow)
	}
	if Policy(7).String() == "" {
		t.Error("unknown policy should still render")
	}
}

func TestCapacity(t *testing.T) {
	cfg := Config{Entries: 8, Assoc: 4, UnitWords: 4, Policy: VariableOverflow, OverflowUnits: 2}
	if cfg.CapacityWords() != 40 {
		t.Errorf("CapacityWords = %d, want 40", cfg.CapacityWords())
	}
	if cfg.CapacityBytes() != 160 {
		t.Errorf("CapacityBytes = %d, want 160", cfg.CapacityBytes())
	}
	fixed := Config{Entries: 8, Assoc: 4, UnitWords: 4, Policy: Fixed, OverflowUnits: 99}
	if fixed.CapacityWords() != 32 {
		t.Errorf("fixed CapacityWords = %d, want 32 (overflow ignored)", fixed.CapacityWords())
	}
}

func TestMissInstallHit(t *testing.T) {
	d := mustNew(t, Config{Entries: 8, Assoc: 4, UnitWords: 4, Policy: Fixed})
	if _, hit := d.Lookup(100); hit {
		t.Fatal("cold lookup should miss")
	}
	trans := words(3, 0xA0)
	n, err := d.Install(100, trans)
	if err != nil || n != 3 {
		t.Fatalf("Install = %d,%v", n, err)
	}
	got, hit := d.Lookup(100)
	if !hit {
		t.Fatal("lookup after install should hit")
	}
	if len(got) != 3 || got[0] != 0xA0 || got[2] != 0xA2 {
		t.Errorf("translation read back = %v", got)
	}
	st := d.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 || st.Installs != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", st.HitRatio())
	}
}

func TestEmptyTranslationRejected(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	if _, err := d.Install(1, nil); err == nil {
		t.Error("empty translation should be rejected")
	}
}

func TestFixedPolicyRejectsOversize(t *testing.T) {
	d := mustNew(t, Config{Entries: 8, Assoc: 4, UnitWords: 4, Policy: Fixed})
	if _, err := d.Install(5, words(5, 1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	if d.Stats().RejectedSize != 1 {
		t.Errorf("RejectedSize = %d, want 1", d.Stats().RejectedSize)
	}
}

func TestVariableOverflow(t *testing.T) {
	cfg := Config{Entries: 8, Assoc: 4, UnitWords: 4, Policy: VariableOverflow, OverflowUnits: 4}
	d := mustNew(t, cfg)
	// 10 words need the primary unit plus 2 overflow blocks.
	trans := words(10, 0x50)
	if _, err := d.Install(7, trans); err != nil {
		t.Fatal(err)
	}
	if d.FreeOverflowBlocks() != 2 {
		t.Errorf("free overflow blocks = %d, want 2", d.FreeOverflowBlocks())
	}
	got, hit := d.Lookup(7)
	if !hit || len(got) != 10 {
		t.Fatalf("lookup = %v hit=%v", got, hit)
	}
	for i, v := range got {
		if v != 0x50+uint32(i) {
			t.Errorf("word %d = %#x, want %#x", i, v, 0x50+uint32(i))
		}
	}
	if d.Stats().Overflows != 1 {
		t.Errorf("Overflows = %d, want 1", d.Stats().Overflows)
	}
	// Invalidation must return the overflow blocks to the free list.
	if !d.Invalidate(7) {
		t.Fatal("Invalidate should succeed")
	}
	if d.FreeOverflowBlocks() != 4 {
		t.Errorf("free overflow after invalidate = %d, want 4", d.FreeOverflowBlocks())
	}
	if _, hit := d.Lookup(7); hit {
		t.Error("lookup after invalidate should miss")
	}
}

func TestOverflowExhaustion(t *testing.T) {
	cfg := Config{Entries: 8, Assoc: 4, UnitWords: 2, Policy: VariableOverflow, OverflowUnits: 1}
	d := mustNew(t, cfg)
	// 6 words need 2 overflow blocks; only 1 exists.
	if _, err := d.Install(3, words(6, 1)); !errors.Is(err, ErrNoOverflow) {
		t.Errorf("err = %v, want ErrNoOverflow", err)
	}
	// The buffer must still work for translations that fit.
	if _, err := d.Install(3, words(2, 9)); err != nil {
		t.Errorf("small install after rejection failed: %v", err)
	}
}

func TestLRUReplacementWithinSet(t *testing.T) {
	// 2 sets, 2-way.  Addresses with the same parity share a set.
	cfg := Config{Entries: 4, Assoc: 2, UnitWords: 4, Policy: Fixed}
	d := mustNew(t, cfg)
	install := func(addr uint64) {
		t.Helper()
		if _, err := d.Install(addr, words(2, uint32(addr))); err != nil {
			t.Fatal(err)
		}
	}
	install(2) // set 0
	install(4) // set 0
	d.Lookup(2)
	d.Lookup(4)
	d.Lookup(2) // 2 is now most recently used
	install(6)  // set 0 is full: LRU (4) must be evicted
	if !d.Contains(2) {
		t.Error("2 should remain resident (MRU)")
	}
	if d.Contains(4) {
		t.Error("4 should have been evicted (LRU)")
	}
	if !d.Contains(6) {
		t.Error("6 should be resident")
	}
	if d.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", d.Stats().Evictions)
	}
}

func TestEvictionReleasesOverflow(t *testing.T) {
	cfg := Config{Entries: 2, Assoc: 2, UnitWords: 2, Policy: VariableOverflow, OverflowUnits: 2}
	d := mustNew(t, cfg)
	// Fill both ways with overflowing translations (each takes 1 overflow block).
	if _, err := d.Install(0, words(4, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Install(1, words(4, 2)); err != nil {
		t.Fatal(err)
	}
	if d.FreeOverflowBlocks() != 0 {
		t.Fatalf("free overflow = %d, want 0", d.FreeOverflowBlocks())
	}
	// Install a third overflowing translation: the eviction must free the
	// victim's overflow block so this succeeds.
	if _, err := d.Install(2, words(4, 3)); err != nil {
		t.Fatalf("install after eviction should reuse freed overflow: %v", err)
	}
	if d.FreeOverflowBlocks() != 0 {
		t.Errorf("free overflow = %d, want 0", d.FreeOverflowBlocks())
	}
}

func TestReinstallSameTagReplacesInPlace(t *testing.T) {
	d := mustNew(t, Config{Entries: 8, Assoc: 4, UnitWords: 4, Policy: Fixed})
	if _, err := d.Install(5, words(2, 0x10)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Install(5, words(3, 0x20)); err != nil {
		t.Fatal(err)
	}
	got, hit := d.Lookup(5)
	if !hit || len(got) != 3 || got[0] != 0x20 {
		t.Errorf("reinstalled translation = %v hit=%v", got, hit)
	}
	if d.Resident() != 1 {
		t.Errorf("resident = %d, want 1 (no duplicate entries for one tag)", d.Resident())
	}
}

func TestFlush(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	for i := uint64(0); i < 10; i++ {
		if _, err := d.Install(i, words(2, uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	if d.Resident() != 10 {
		t.Fatalf("resident = %d", d.Resident())
	}
	d.Flush()
	if d.Resident() != 0 {
		t.Error("flush should empty the DTB")
	}
	if d.FreeOverflowBlocks() != DefaultConfig().OverflowUnits {
		t.Errorf("flush should release overflow blocks, free = %d", d.FreeOverflowBlocks())
	}
}

func TestInvalidateMissing(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	if d.Invalidate(999) {
		t.Error("invalidating an absent tag should return false")
	}
}

func TestResidentTagsAndString(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	_, _ = d.Install(11, words(1, 1))
	_, _ = d.Install(22, words(1, 2))
	tags := d.ResidentTags()
	if len(tags) != 2 {
		t.Errorf("ResidentTags = %v", tags)
	}
	if d.String() == "" || d.Sets() != DefaultConfig().Entries/DefaultConfig().Assoc {
		t.Errorf("String/Sets: %q %d", d.String(), d.Sets())
	}
	d.ResetStats()
	if d.Stats().Installs != 0 {
		t.Error("ResetStats should clear counters")
	}
}

func TestTightLoopHitRatioApproachesUnity(t *testing.T) {
	// The paper: "If the hit ratio in the DTB were unity, as it will be while
	// the DIR program is in a tight loop..."
	d := mustNew(t, DefaultConfig())
	loop := []uint64{100, 104, 108, 112, 116, 120}
	for pass := 0; pass < 200; pass++ {
		for _, addr := range loop {
			if _, hit := d.Lookup(addr); !hit {
				if _, err := d.Install(addr, words(3, uint32(addr))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if hr := d.Stats().HitRatio(); hr < 0.99 {
		t.Errorf("tight-loop hit ratio = %v, want >= 0.99", hr)
	}
}

func TestWorkingSetLargerThanDTB(t *testing.T) {
	// A cyclic reference pattern over many more instructions than the DTB
	// holds (with LRU) should have a low hit ratio.
	cfg := Config{Entries: 16, Assoc: 4, UnitWords: 4, Policy: Fixed}
	d := mustNew(t, cfg)
	for pass := 0; pass < 20; pass++ {
		for i := 0; i < 64; i++ {
			addr := uint64(i * 4)
			if _, hit := d.Lookup(addr); !hit {
				if _, err := d.Install(addr, words(2, uint32(i))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if hr := d.Stats().HitRatio(); hr > 0.30 {
		t.Errorf("thrashing hit ratio = %v, want small", hr)
	}
}

// Property: a lookup immediately after a successful install always hits and
// returns exactly the installed words.
func TestQuickInstallThenHit(t *testing.T) {
	cfg := Config{Entries: 32, Assoc: 4, UnitWords: 4, Policy: VariableOverflow, OverflowUnits: 64}
	d := mustNew(t, cfg)
	f := func(addr uint64, n uint8, seed uint32) bool {
		length := int(n%16) + 1
		trans := words(length, seed)
		if _, err := d.Install(addr, trans); err != nil {
			// A random install stream can legitimately exhaust the overflow
			// area (every entry may hold up to 3 overflow blocks, more than
			// OverflowUnits provides in total); the INTERP path tolerates
			// that by executing untranslated, so the property does too.
			return errors.Is(err, ErrNoOverflow) || errors.Is(err, ErrTooLarge)
		}
		got, hit := d.Lookup(addr)
		if !hit || len(got) != length {
			return false
		}
		for i := range got {
			if got[i] != trans[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: structural invariants hold under random workloads — resident
// count never exceeds Entries, each tag appears at most once, lookups =
// hits + misses, and overflow blocks are conserved.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Entries: 16, Assoc: 4, UnitWords: 2, Policy: VariableOverflow, OverflowUnits: 8}
		d, err := New(cfg)
		if err != nil {
			return false
		}
		allocatedOverflow := func() int {
			total := 0
			for _, set := range d.sets {
				for _, e := range set {
					if e.valid {
						total += len(e.overflow)
					}
				}
			}
			return total
		}
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(40))
			if _, hit := d.Lookup(addr); !hit {
				n := rng.Intn(5) + 1
				_, _ = d.Install(addr, words(n, uint32(i)))
			}
			if rng.Intn(10) == 0 {
				d.Invalidate(uint64(rng.Intn(40)))
			}
		}
		if d.Resident() > cfg.Entries {
			return false
		}
		tags := d.ResidentTags()
		seen := make(map[uint64]bool)
		for _, tag := range tags {
			if seen[tag] {
				return false
			}
			seen[tag] = true
		}
		st := d.Stats()
		if st.Lookups != st.Hits+st.Misses {
			return false
		}
		return allocatedOverflow()+d.FreeOverflowBlocks() == cfg.OverflowUnits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	d, _ := New(DefaultConfig())
	_, _ = d.Install(42, words(3, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = d.Lookup(42)
	}
}

func BenchmarkLookupInstallMixed(b *testing.B) {
	d, _ := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(512))
	}
	trans := words(3, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := addrs[i%len(addrs)]
		if _, hit := d.Lookup(addr); !hit {
			_, _ = d.Install(addr, trans)
		}
	}
}

func TestLookupLenMatchesLookup(t *testing.T) {
	d := mustNew(t, Config{Entries: 8, Assoc: 4, UnitWords: 4, Policy: VariableOverflow, OverflowUnits: 4})
	if n, hit := d.LookupLen(1); hit || n != 0 {
		t.Fatalf("LookupLen on empty DTB = (%d, %v)", n, hit)
	}
	w := words(7, 100) // spills into one overflow block
	if _, err := d.Install(1, w); err != nil {
		t.Fatal(err)
	}
	n, hit := d.LookupLen(1)
	if !hit || n != len(w) {
		t.Fatalf("LookupLen(1) = (%d, %v), want (%d, true)", n, hit, len(w))
	}
	got, hit := d.Lookup(1)
	if !hit || len(got) != n {
		t.Fatalf("Lookup(1) = %d words, LookupLen reported %d", len(got), n)
	}
	st := d.Stats()
	if st.Lookups != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats after LookupLen+Lookup = %+v", st)
	}
}

func TestLookupLenUpdatesRecency(t *testing.T) {
	// One set, two ways: touching a via LookupLen must keep it resident while
	// b, untouched, is the LRU victim.
	d := mustNew(t, Config{Entries: 2, Assoc: 2, UnitWords: 4, Policy: Fixed})
	if _, err := d.Install(0, words(2, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Install(2, words(2, 20)); err != nil {
		t.Fatal(err)
	}
	if _, hit := d.LookupLen(0); !hit {
		t.Fatal("expected hit on 0")
	}
	if _, err := d.Install(4, words(2, 30)); err != nil {
		t.Fatal(err)
	}
	if !d.Contains(0) || d.Contains(2) {
		t.Fatalf("LRU after LookupLen: contains(0)=%v contains(2)=%v", d.Contains(0), d.Contains(2))
	}
}
