package huffman

// denseCounterCap bounds the dense array of a Counter; symbols at or above
// it spill into a map.
const denseCounterCap = 4096

// Counter accumulates symbol frequencies with no per-increment map work for
// small symbols — a dense array indexed by symbol value, with a map spill
// above the cap.  It is the statistics-gathering front end shared by the DIR
// encoder's per-field-class tables and the pair-frequency coder's
// predecessor contexts.  The zero value is ready to use.
type Counter struct {
	dense []uint64
	spill FreqTable
}

// Add records one occurrence of sym.
func (c *Counter) Add(sym Symbol) {
	if sym < denseCounterCap {
		if int(sym) >= len(c.dense) {
			grow := int(sym) + 1 - len(c.dense)
			if grow < len(c.dense) {
				grow = len(c.dense) // at least double, amortising regrowth
			}
			c.dense = append(c.dense, make([]uint64, grow)...)[:int(sym)+1]
		}
		c.dense[sym]++
		return
	}
	if c.spill == nil {
		c.spill = make(FreqTable)
	}
	c.spill.Add(sym, 1)
}

// Empty reports whether nothing has been recorded.
func (c *Counter) Empty() bool {
	if len(c.spill) > 0 {
		return false
	}
	for _, n := range c.dense {
		if n != 0 {
			return false
		}
	}
	return true
}

// Fold returns the accumulated counts as a FreqTable — one map insertion per
// distinct symbol, not per occurrence.  It returns nil when empty; the
// result is freshly allocated and safe for the caller to mutate.
func (c *Counter) Fold() FreqTable {
	var t FreqTable
	for v, n := range c.dense {
		if n == 0 {
			continue
		}
		if t == nil {
			t = make(FreqTable)
		}
		t[Symbol(v)] = n
	}
	for v, n := range c.spill {
		if t == nil {
			t = make(FreqTable)
		}
		t[v] = n
	}
	return t
}

// Code builds the optimal canonical code for the accumulated counts, taking
// the count-slice fast path (no map at all) when no symbol spilled.
func (c *Counter) Code() (*Code, error) {
	if c.spill == nil {
		return NewFromCounts(c.dense)
	}
	return New(c.Fold())
}

// CodeRestricted is Code with a codeword-length limit.
func (c *Counter) CodeRestricted(maxLen int) (*Code, error) {
	if c.spill == nil {
		return NewRestrictedFromCounts(c.dense, maxLen)
	}
	return NewRestricted(c.Fold(), maxLen)
}
