package huffman

import (
	"cmp"
	"fmt"
	"slices"
	"sync"

	"uhm/internal/bitio"
)

// This file implements the canonical-code decoder as a flat lookup table: one
// PeekBits(maxLen) and a single table index resolve the symbol, its code
// length and the decode-step count in O(1), instead of walking the code tree
// one bit (and two map lookups) per level.  Codes longer than tableRootBits
// use a two-level table: the root entry for a long code's 12-bit prefix
// points at a sub-table indexed by the remaining bits.
//
// The tables are built lazily on first decode, so encode-only uses of a Code
// (size measurement, the conditional trees of the pair-frequency encoder) pay
// nothing for them.  Codeword validation stays eager in newDecoder.
//
// The decode-step counts are, by construction, identical to the retained
// level-walk reference decoder (refDecoder below): the level walk examines
// one tree level per codeword bit, so steps == code length, which each table
// entry stores explicitly.  Error behaviour is preserved exactly as well,
// including how many bits an unmatched or truncated decode consumes — the
// differential tests in this package assert all of it.

const (
	// tableRootBits is the index width of the first-level table.
	tableRootBits = 12
	// maxTableLen bounds the code length the two-level table supports (root
	// prefix plus sub-table index).  Codes longer than this — possible only
	// for pathologically skewed frequency tables — use the reference level
	// walk, keeping table memory bounded at 2^tableRootBits entries per
	// level.
	maxTableLen = 2 * tableRootBits
)

// decodeEntry is one slot of the decode table.
type decodeEntry struct {
	sym     Symbol
	len     uint8  // codeword length; 0 marks an entry with no codeword
	steps   uint8  // decode steps reported for this codeword (== len)
	subBits uint8  // root entries only: >0 points at a sub-table
	subOff  uint32 // root entries only: offset of the sub-table in sub
}

// codeKey identifies a codeword by (length, bits) — the duplicate-detection
// key (formerly a fmt.Sprintf string) and the lookup key of the reference
// level-walk decoder.
type codeKey struct {
	len  int
	bits uint64
}

// decoder decodes one codeword per call, counting decode steps.
type decoder struct {
	syms   []Symbol // construction inputs, retained for the lazy builds
	cws    []Codeword
	maxLen int

	tableOnce sync.Once
	rootBits  int
	root      []decodeEntry // nil when maxLen > maxTableLen
	sub       []decodeEntry

	refOnce sync.Once
	refDec  *refDecoder
}

// newDecoder validates the codewords (index-aligned with syms): every length
// must be in (0, MaxFieldWidth] and no two symbols may share a codeword.
func newDecoder(syms []Symbol, cws []Codeword) (*decoder, error) {
	maxLen := 0
	for i, w := range cws {
		if w.Len <= 0 || w.Len > bitio.MaxFieldWidth {
			return nil, fmt.Errorf("huffman: symbol %d has invalid code length %d", syms[i], w.Len)
		}
		if w.Len > maxLen {
			maxLen = w.Len
		}
	}
	// Duplicate detection by sorting (length, bits, symbol) triples: a
	// duplicate codeword becomes an adjacent pair.
	type triple struct {
		key codeKey
		sym Symbol
	}
	ts := make([]triple, len(cws))
	for i, w := range cws {
		ts[i] = triple{codeKey{w.Len, w.Bits}, syms[i]}
	}
	slices.SortFunc(ts, func(a, b triple) int {
		if a.key.len != b.key.len {
			return cmp.Compare(a.key.len, b.key.len)
		}
		if a.key.bits != b.key.bits {
			return cmp.Compare(a.key.bits, b.key.bits)
		}
		return cmp.Compare(a.sym, b.sym)
	})
	for i := 1; i < len(ts); i++ {
		if ts[i].key == ts[i-1].key {
			return nil, fmt.Errorf("huffman: symbols %d and %d share codeword", ts[i-1].sym, ts[i].sym)
		}
	}
	return &decoder{syms: syms, cws: cws, maxLen: maxLen}, nil
}

// ref returns the retained level-walk reference decoder, building its lookup
// map on first use.
func (d *decoder) ref() *refDecoder {
	d.refOnce.Do(func() {
		byCode := make(map[codeKey]Symbol, len(d.cws))
		for i, w := range d.cws {
			byCode[codeKey{w.Len, w.Bits}] = d.syms[i]
		}
		d.refDec = &refDecoder{byCode: byCode, maxLen: d.maxLen}
	})
	return d.refDec
}

// buildTables constructs the one- or two-level lookup table.
func (d *decoder) buildTables() {
	d.rootBits = min(d.maxLen, tableRootBits)
	d.root = make([]decodeEntry, 1<<uint(d.rootBits))

	// Direct entries: every root slot whose top bits are the codeword.
	for i, w := range d.cws {
		if w.Len > d.rootBits {
			continue
		}
		e := decodeEntry{sym: d.syms[i], len: uint8(w.Len), steps: uint8(w.Len)}
		base := w.Bits << uint(d.rootBits-w.Len)
		for j := uint64(0); j < 1<<uint(d.rootBits-w.Len); j++ {
			d.root[base+j] = e
		}
	}
	if d.maxLen <= d.rootBits {
		return
	}

	// Two-level: group codes longer than rootBits by their root prefix and
	// give each prefix a sub-table wide enough for its longest member.
	subBits := make(map[uint64]int)
	for _, w := range d.cws {
		if w.Len <= d.rootBits {
			continue
		}
		prefix := w.Bits >> uint(w.Len-d.rootBits)
		if n := w.Len - d.rootBits; n > subBits[prefix] {
			subBits[prefix] = n
		}
	}
	for i, w := range d.cws {
		if w.Len <= d.rootBits {
			continue
		}
		prefix := w.Bits >> uint(w.Len-d.rootBits)
		nbits := subBits[prefix]
		re := &d.root[prefix]
		if re.subBits == 0 {
			re.subBits = uint8(nbits)
			re.subOff = uint32(len(d.sub))
			d.sub = append(d.sub, make([]decodeEntry, 1<<uint(nbits))...)
		}
		e := decodeEntry{sym: d.syms[i], len: uint8(w.Len), steps: uint8(w.Len)}
		low := w.Bits & (1<<uint(w.Len-d.rootBits) - 1)
		base := uint64(re.subOff) + low<<uint(nbits-(w.Len-d.rootBits))
		for j := uint64(0); j < 1<<uint(nbits-(w.Len-d.rootBits)); j++ {
			d.sub[base+j] = e
		}
	}
}

// lookup resolves the table entry for a value padded to maxLen bits.
func (d *decoder) lookup(pv uint64) decodeEntry {
	e := d.root[pv>>uint(d.maxLen-d.rootBits)]
	if e.subBits > 0 {
		shift := uint(d.maxLen - d.rootBits - int(e.subBits))
		idx := pv >> shift & (1<<e.subBits - 1)
		e = d.sub[uint64(e.subOff)+idx]
	}
	return e
}

// decode reads one codeword.  Its observable behaviour — symbol, step count,
// error value, and the stream position afterwards — is identical to
// refDecoder.decode in every case, including truncated and invalid input.
func (d *decoder) decode(r *bitio.Reader) (Symbol, int, error) {
	if d.maxLen > maxTableLen {
		return d.ref().decode(r)
	}
	d.tableOnce.Do(d.buildTables)
	k := r.Remaining()
	if k >= d.maxLen {
		v, err := r.PeekBits(d.maxLen)
		if err != nil {
			return 0, 0, err
		}
		e := d.lookup(v)
		if e.len > 0 {
			_ = r.SkipBits(int(e.len))
			return e.sym, int(e.steps), nil
		}
		// No codeword matches: the level walk would examine (and consume)
		// all maxLen levels before giving up.
		_ = r.SkipBits(d.maxLen)
		return 0, d.maxLen, ErrBadCode
	}
	if k == 0 {
		return 0, 0, bitio.ErrShortBuffer
	}
	// Fewer than maxLen bits remain: pad with zeros.  The code is prefix
	// free, so a padded match of length <= k is the unique codeword the
	// level walk would find within the remaining bits.
	v, err := r.PeekBits(k)
	if err != nil {
		return 0, 0, err
	}
	e := d.lookup(v << uint(d.maxLen-k))
	if e.len > 0 && int(e.len) <= k {
		_ = r.SkipBits(int(e.len))
		return e.sym, int(e.steps), nil
	}
	// The level walk would consume every remaining bit, then fail on the
	// next read.
	_ = r.SkipBits(k)
	return 0, k, bitio.ErrShortBuffer
}

// refDecoder is the retained reference decoder: the canonical code walked
// level by level, one bit at a time, counting the levels traversed.  It is
// the behavioural specification the table decoder is differentially tested
// against, and the fallback for codes too long to tabulate.
type refDecoder struct {
	byCode map[codeKey]Symbol
	maxLen int
}

func (d *refDecoder) decode(r *bitio.Reader) (Symbol, int, error) {
	var acc uint64
	steps := 0
	for l := 1; l <= d.maxLen; l++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, steps, err
		}
		acc = acc << 1
		if bit {
			acc |= 1
		}
		steps++
		if s, hit := d.byCode[codeKey{l, acc}]; hit {
			return s, steps, nil
		}
	}
	return 0, steps, ErrBadCode
}
