package huffman

import (
	"cmp"
	"errors"
	"fmt"
	"slices"

	"uhm/internal/bitio"
)

// Symbol is an alphabet element.  DIR opcodes, addressing-mode designators
// and operand tokens are all mapped onto small non-negative integers before
// encoding.
type Symbol uint32

// FreqTable records how many times each symbol occurs in the static program
// representation being encoded.
type FreqTable map[Symbol]uint64

// Add increments the count of s by n.
func (t FreqTable) Add(s Symbol, n uint64) { t[s] += n }

// Total returns the sum of all counts.
func (t FreqTable) Total() uint64 {
	var sum uint64
	for _, c := range t {
		sum += c
	}
	return sum
}

// Symbols returns the symbols present in the table in increasing order.
func (t FreqTable) Symbols() []Symbol {
	syms := make([]Symbol, 0, len(t))
	for s := range t {
		syms = append(syms, s)
	}
	slices.Sort(syms)
	return syms
}

// Codeword is a single canonical Huffman codeword.
type Codeword struct {
	Bits uint64 // the code bits, most significant bit first within Len
	Len  int    // code length in bits; 0 means the symbol is not coded
}

// Code is a complete prefix code over an alphabet.  The codewords are held in
// a dense slice indexed by symbol value whenever the alphabet is reasonably
// compact, so the encode hot path is an array index rather than a map lookup;
// sparse alphabets fall back to a map.
type Code struct {
	syms    []Symbol   // the alphabet in increasing symbol order
	dense   []Codeword // indexed by symbol value; Len==0 marks absent symbols
	sparse  map[Symbol]Codeword
	decoder *decoder
	maxLen  int
}

// ErrEmptyAlphabet is returned when a code is requested for no symbols.
var ErrEmptyAlphabet = errors.New("huffman: empty alphabet")

// ErrUnknownSymbol is returned when encoding a symbol that has no codeword.
var ErrUnknownSymbol = errors.New("huffman: symbol not in code")

// ErrBadCode is returned when a decode encounters a bit pattern with no
// corresponding codeword.
var ErrBadCode = errors.New("huffman: invalid code in input")

// New builds an optimal (unrestricted) canonical Huffman code for the given
// frequency table.  Symbols with zero frequency are excluded.
func New(freq FreqTable) (*Code, error) {
	return build(freq, 0)
}

// NewRestricted builds a canonical code whose codeword lengths never exceed
// maxLen bits.  This is the "small number of selected lengths" variant; the
// B1700 restricted opcode lengths correspond to maxLen in {4, 6, 10}.
// maxLen must be large enough that the alphabet fits (maxLen >= ceil(log2 n)).
func NewRestricted(freq FreqTable, maxLen int) (*Code, error) {
	if maxLen <= 0 {
		return nil, fmt.Errorf("huffman: non-positive length limit %d", maxLen)
	}
	return build(freq, maxLen)
}

// NewFromCounts builds an optimal canonical code from a dense count slice
// indexed by symbol value (counts[v] occurrences of Symbol(v); zero counts
// are excluded).  It is equivalent to New on the corresponding FreqTable but
// skips the map entirely — the fast path for callers that accumulate
// statistics densely.
func NewFromCounts(counts []uint64) (*Code, error) {
	return buildCounts(counts, 0)
}

// NewRestrictedFromCounts is NewRestricted for a dense count slice.
func NewRestrictedFromCounts(counts []uint64, maxLen int) (*Code, error) {
	if maxLen <= 0 {
		return nil, fmt.Errorf("huffman: non-positive length limit %d", maxLen)
	}
	return buildCounts(counts, maxLen)
}

// NewFixed builds a degenerate "code" in which every symbol is given the same
// fixed width (the packed-field, zero-encoding baseline of Figure 1).  The
// width is the minimum number of bits needed to distinguish the symbols.
func NewFixed(symbols []Symbol) (*Code, error) {
	if len(symbols) == 0 {
		return nil, ErrEmptyAlphabet
	}
	sorted := append([]Symbol(nil), symbols...)
	slices.Sort(sorted)
	// Drop duplicates so each symbol receives exactly one codeword.
	uniq := sorted[:1]
	for _, s := range sorted[1:] {
		if s != uniq[len(uniq)-1] {
			uniq = append(uniq, s)
		}
	}
	width := bitsFor(len(uniq))
	cws := make([]Codeword, len(uniq))
	for i := range uniq {
		cws[i] = Codeword{Bits: uint64(i), Len: width}
	}
	return newCode(uniq, cws)
}

// bitsFor returns the number of bits needed to represent n distinct values.
func bitsFor(n int) int {
	if n <= 1 {
		return 1
	}
	w := 0
	for v := n - 1; v > 0; v >>= 1 {
		w++
	}
	return w
}

func build(freq FreqTable, maxLen int) (*Code, error) {
	syms := make([]Symbol, 0, len(freq))
	for s, c := range freq {
		if c > 0 {
			syms = append(syms, s)
		}
	}
	slices.Sort(syms)
	weights := make([]uint64, len(syms))
	for i, s := range syms {
		weights[i] = freq[s]
	}
	return buildLists(syms, weights, maxLen)
}

func buildCounts(counts []uint64, maxLen int) (*Code, error) {
	n := 0
	for _, c := range counts {
		if c > 0 {
			n++
		}
	}
	syms := make([]Symbol, 0, n)
	weights := make([]uint64, 0, n)
	for v, c := range counts {
		if c > 0 {
			syms = append(syms, Symbol(v))
			weights = append(weights, c)
		}
	}
	return buildLists(syms, weights, maxLen)
}

// buildLists is the common construction path: syms in increasing symbol
// order with index-aligned positive weights.
func buildLists(syms []Symbol, weights []uint64, maxLen int) (*Code, error) {
	if len(syms) == 0 {
		return nil, ErrEmptyAlphabet
	}
	if maxLen > 0 && len(syms) > (1<<uint(min(maxLen, 62))) {
		return nil, fmt.Errorf("huffman: %d symbols cannot fit in %d-bit codes", len(syms), maxLen)
	}

	if len(syms) == 1 {
		return newCode(syms, []Codeword{{Bits: 0, Len: 1}})
	}

	lengths := huffmanLengths(weights)
	if maxLen > 0 {
		limitLengths(lengths, maxLen)
	}

	return newCode(syms, canonicalAssign(syms, lengths))
}

// hnode is one node of the Huffman construction, held in a flat slice: the
// first len(syms) entries are the leaves in symbol order, internal nodes are
// appended as they are created.
type hnode struct {
	weight      uint64
	order       int32 // tie-break to keep the construction deterministic
	left, right int32 // child node indices; -1 for leaves
}

// huffmanLengths computes optimal code lengths per symbol (index-aligned with
// the caller's symbol slice) using a binary heap of node indices — no
// per-node allocation and no any-boxing through container/heap.
func huffmanLengths(weights []uint64) []int {
	n := len(weights)
	nodes := make([]hnode, n, 2*n-1)
	for i, w := range weights {
		nodes[i] = hnode{weight: w, order: int32(i), left: -1, right: -1}
	}

	// Min-heap of node indices ordered by (weight, order).  The (weight,
	// order) pairs are unique, so the pop sequence — and therefore the tree
	// shape — is identical to any other heap implementation with the same
	// ordering, including the pointer heap this replaced.
	h := make([]int32, n)
	for i := range h {
		h[i] = int32(i)
	}
	less := func(a, b int32) bool {
		if nodes[a].weight != nodes[b].weight {
			return nodes[a].weight < nodes[b].weight
		}
		return nodes[a].order < nodes[b].order
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(h) && less(h[l], h[smallest]) {
				smallest = l
			}
			if r < len(h) && less(h[r], h[smallest]) {
				smallest = r
			}
			if smallest == i {
				return
			}
			h[i], h[smallest] = h[smallest], h[i]
			i = smallest
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		down(i)
	}
	pop := func() int32 {
		top := h[0]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		down(0)
		return top
	}
	push := func(idx int32) {
		h = append(h, idx)
		for i := len(h) - 1; i > 0; {
			parent := (i - 1) / 2
			if !less(h[i], h[parent]) {
				break
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
	}

	order := int32(n)
	for len(h) > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, hnode{weight: nodes[a].weight + nodes[b].weight, order: order, left: a, right: b})
		push(int32(len(nodes) - 1))
		order++
	}

	// Walk the tree iteratively; leaf node index == syms index.
	lengths := make([]int, n)
	type item struct {
		idx   int32
		depth int
	}
	stack := make([]item, 0, 64)
	stack = append(stack, item{h[0], 0})
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[it.idx]
		if nd.left < 0 && nd.right < 0 {
			depth := it.depth
			if depth == 0 {
				depth = 1
			}
			lengths[it.idx] = depth
			continue
		}
		stack = append(stack, item{nd.left, it.depth + 1}, item{nd.right, it.depth + 1})
	}
	return lengths
}

// limitLengths clamps code lengths (index-aligned with the symbol slice) to
// maxLen and repairs the Kraft inequality using the standard heuristic:
// overlong codes are truncated, then lengths of the most frequent over-budget
// codewords are increased/decreased until sum(2^-len) <= 1, preferring to
// lengthen rare symbols.
func limitLengths(lengths []int, maxLen int) {
	for i := range lengths {
		if lengths[i] > maxLen {
			lengths[i] = maxLen
		}
	}
	// Kraft sum measured in units of 2^-maxLen.
	kraft := func() uint64 {
		var k uint64
		for i := range lengths {
			k += 1 << uint(maxLen-lengths[i])
		}
		return k
	}
	budget := uint64(1) << uint(maxLen)
	// While over budget, lengthen the symbol with the shortest code that can
	// still grow (ties broken by symbol order, which correlates with rarity
	// after canonical sorting by the caller's construction).
	for kraft() > budget {
		best := -1
		for i := range lengths {
			if lengths[i] < maxLen {
				if best == -1 || lengths[i] < lengths[best] {
					best = i
				}
			}
		}
		if best == -1 {
			// Cannot repair: fall back to fixed width maxLen for all.
			for i := range lengths {
				lengths[i] = maxLen
			}
			return
		}
		lengths[best]++
	}
}

// canonicalAssign assigns canonical codewords given per-symbol lengths
// (index-aligned with syms); the result is likewise index-aligned.
func canonicalAssign(syms []Symbol, lengths []int) []Codeword {
	idx := make([]int32, len(syms))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(i, j int32) int {
		if lengths[i] != lengths[j] {
			return cmp.Compare(lengths[i], lengths[j])
		}
		return cmp.Compare(syms[i], syms[j])
	})
	cws := make([]Codeword, len(syms))
	var code uint64
	prevLen := 0
	for _, i := range idx {
		l := lengths[i]
		if prevLen != 0 {
			code = (code + 1) << uint(l-prevLen)
		}
		cws[i] = Codeword{Bits: code, Len: l}
		prevLen = l
	}
	return cws
}

// newCode assembles a Code from an alphabet in increasing symbol order and
// its index-aligned codewords.
func newCode(syms []Symbol, cws []Codeword) (*Code, error) {
	c := &Code{syms: syms}
	for _, w := range cws {
		if w.Len > c.maxLen {
			c.maxLen = w.Len
		}
	}
	// Dense symbol-indexed codeword array when the alphabet is compact
	// (bounded waste); map fallback otherwise.
	if maxSym := int(syms[len(syms)-1]); maxSym <= 4*len(syms)+64 {
		c.dense = make([]Codeword, maxSym+1)
		for i, s := range syms {
			c.dense[s] = cws[i]
		}
	} else {
		c.sparse = make(map[Symbol]Codeword, len(syms))
		for i, s := range syms {
			c.sparse[s] = cws[i]
		}
	}
	dec, err := newDecoder(syms, cws)
	if err != nil {
		return nil, err
	}
	c.decoder = dec
	return c, nil
}

// Codeword returns the codeword for s.
func (c *Code) Codeword(s Symbol) (Codeword, bool) {
	if c.dense != nil {
		if int(s) < len(c.dense) && c.dense[s].Len != 0 {
			return c.dense[s], true
		}
		return Codeword{}, false
	}
	w, ok := c.sparse[s]
	return w, ok
}

// MaxLen returns the length in bits of the longest codeword.
func (c *Code) MaxLen() int { return c.maxLen }

// Size returns the number of coded symbols.
func (c *Code) Size() int { return len(c.syms) }

// Alphabet returns the coded symbols in increasing order.
func (c *Code) Alphabet() []Symbol {
	return append([]Symbol(nil), c.syms...)
}

// Encode appends the codeword for s to w.
func (c *Code) Encode(w *bitio.Writer, s Symbol) error {
	cw, ok := c.Codeword(s)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSymbol, s)
	}
	return w.WriteBits(cw.Bits, cw.Len)
}

// Decode reads one codeword from r and returns its symbol together with the
// number of decode steps (tree levels examined).  The step count feeds the
// simulator's per-instruction decode cost, mirroring the paper's observation
// that frequency-based encoding "increases the number of levels of decoding
// needed".
func (c *Code) Decode(r *bitio.Reader) (Symbol, int, error) {
	return c.decoder.decode(r)
}

// EncodedSize returns the total number of bits this code uses to represent
// the given frequency table (i.e. sum over symbols of freq*len).
func (c *Code) EncodedSize(freq FreqTable) uint64 {
	var bits uint64
	for s, n := range freq {
		if w, ok := c.Codeword(s); ok {
			bits += n * uint64(w.Len)
		}
	}
	return bits
}

// AverageLength returns the expected codeword length in bits under freq.
func (c *Code) AverageLength(freq FreqTable) float64 {
	total := freq.Total()
	if total == 0 {
		return 0
	}
	return float64(c.EncodedSize(freq)) / float64(total)
}
