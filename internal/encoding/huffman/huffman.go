// Package huffman implements the frequency-based encodings of §3.2 of the
// paper: classic Huffman coding of the symbols appearing in a static program
// representation, plus the restricted-length variant in which "the permitted
// field lengths are restricted to a small number of selected lengths", which
// "simplifies the decoding problem without sacrificing much by way of memory
// efficiency" (the Burroughs B1700 approach the paper cites via Wilner).
//
// Codes are canonical: within a code length, symbols are assigned codewords
// in increasing symbol order.  Canonical codes make the decoder a small table
// walk, which is exactly what the paper's decode-cost parameter d models
// ("traversing a decoding tree guided by an examination of the encoded
// field").
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"uhm/internal/bitio"
)

// Symbol is an alphabet element.  DIR opcodes, addressing-mode designators
// and operand tokens are all mapped onto small non-negative integers before
// encoding.
type Symbol uint32

// FreqTable records how many times each symbol occurs in the static program
// representation being encoded.
type FreqTable map[Symbol]uint64

// Add increments the count of s by n.
func (t FreqTable) Add(s Symbol, n uint64) { t[s] += n }

// Total returns the sum of all counts.
func (t FreqTable) Total() uint64 {
	var sum uint64
	for _, c := range t {
		sum += c
	}
	return sum
}

// Symbols returns the symbols present in the table in increasing order.
func (t FreqTable) Symbols() []Symbol {
	syms := make([]Symbol, 0, len(t))
	for s := range t {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	return syms
}

// Codeword is a single canonical Huffman codeword.
type Codeword struct {
	Bits uint64 // the code bits, most significant bit first within Len
	Len  int    // code length in bits; 0 means the symbol is not coded
}

// Code is a complete prefix code over an alphabet.
type Code struct {
	words   map[Symbol]Codeword
	decoder *decoder
	maxLen  int
}

// ErrEmptyAlphabet is returned when a code is requested for no symbols.
var ErrEmptyAlphabet = errors.New("huffman: empty alphabet")

// ErrUnknownSymbol is returned when encoding a symbol that has no codeword.
var ErrUnknownSymbol = errors.New("huffman: symbol not in code")

// ErrBadCode is returned when a decode encounters a bit pattern with no
// corresponding codeword.
var ErrBadCode = errors.New("huffman: invalid code in input")

// New builds an optimal (unrestricted) canonical Huffman code for the given
// frequency table.  Symbols with zero frequency are excluded.
func New(freq FreqTable) (*Code, error) {
	return build(freq, 0)
}

// NewRestricted builds a canonical code whose codeword lengths never exceed
// maxLen bits.  This is the "small number of selected lengths" variant; the
// B1700 restricted opcode lengths correspond to maxLen in {4, 6, 10}.
// maxLen must be large enough that the alphabet fits (maxLen >= ceil(log2 n)).
func NewRestricted(freq FreqTable, maxLen int) (*Code, error) {
	if maxLen <= 0 {
		return nil, fmt.Errorf("huffman: non-positive length limit %d", maxLen)
	}
	return build(freq, maxLen)
}

// NewFixed builds a degenerate "code" in which every symbol is given the same
// fixed width (the packed-field, zero-encoding baseline of Figure 1).  The
// width is the minimum number of bits needed to distinguish the symbols.
func NewFixed(symbols []Symbol) (*Code, error) {
	if len(symbols) == 0 {
		return nil, ErrEmptyAlphabet
	}
	width := bitsFor(len(symbols))
	sorted := append([]Symbol(nil), symbols...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	words := make(map[Symbol]Codeword, len(sorted))
	for i, s := range sorted {
		words[s] = Codeword{Bits: uint64(i), Len: width}
	}
	return finish(words)
}

// bitsFor returns the number of bits needed to represent n distinct values.
func bitsFor(n int) int {
	if n <= 1 {
		return 1
	}
	w := 0
	for v := n - 1; v > 0; v >>= 1 {
		w++
	}
	return w
}

type hNode struct {
	weight uint64
	sym    Symbol
	order  int // tie-break to keep the construction deterministic
	left   *hNode
	right  *hNode
}

type hHeap []*hNode

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h hHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x interface{}) { *h = append(*h, x.(*hNode)) }
func (h *hHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func build(freq FreqTable, maxLen int) (*Code, error) {
	syms := make([]Symbol, 0, len(freq))
	for s, c := range freq {
		if c > 0 {
			syms = append(syms, s)
		}
	}
	if len(syms) == 0 {
		return nil, ErrEmptyAlphabet
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })

	if maxLen > 0 && len(syms) > (1<<uint(min(maxLen, 62))) {
		return nil, fmt.Errorf("huffman: %d symbols cannot fit in %d-bit codes", len(syms), maxLen)
	}

	if len(syms) == 1 {
		words := map[Symbol]Codeword{syms[0]: {Bits: 0, Len: 1}}
		return finish(words)
	}

	lengths := huffmanLengths(syms, freq)
	if maxLen > 0 {
		limitLengths(syms, lengths, maxLen)
	}

	words := canonicalAssign(syms, lengths)
	return finish(words)
}

// huffmanLengths computes optimal code lengths per symbol with the standard
// two-queue/heap construction.
func huffmanLengths(syms []Symbol, freq FreqTable) map[Symbol]int {
	h := make(hHeap, 0, len(syms))
	for i, s := range syms {
		h = append(h, &hNode{weight: freq[s], sym: s, order: i})
	}
	heap.Init(&h)
	order := len(syms)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*hNode)
		b := heap.Pop(&h).(*hNode)
		heap.Push(&h, &hNode{weight: a.weight + b.weight, order: order, left: a, right: b})
		order++
	}
	root := h[0]
	lengths := make(map[Symbol]int, len(syms))
	var walk func(n *hNode, depth int)
	walk = func(n *hNode, depth int) {
		if n.left == nil && n.right == nil {
			if depth == 0 {
				depth = 1
			}
			lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// limitLengths clamps code lengths to maxLen and repairs the Kraft inequality
// using the standard heuristic: overlong codes are truncated, then lengths of
// the most frequent over-budget codewords are increased/decreased until
// sum(2^-len) <= 1, preferring to lengthen rare symbols.
func limitLengths(syms []Symbol, lengths map[Symbol]int, maxLen int) {
	for _, s := range syms {
		if lengths[s] > maxLen {
			lengths[s] = maxLen
		}
	}
	// Kraft sum measured in units of 2^-maxLen.
	kraft := func() uint64 {
		var k uint64
		for _, s := range syms {
			k += 1 << uint(maxLen-lengths[s])
		}
		return k
	}
	budget := uint64(1) << uint(maxLen)
	// While over budget, lengthen the symbol with the shortest code that can
	// still grow (ties broken by symbol order, which correlates with rarity
	// after canonical sorting by the caller's construction).
	for kraft() > budget {
		best := -1
		for i, s := range syms {
			if lengths[s] < maxLen {
				if best == -1 || lengths[s] < lengths[syms[best]] {
					best = i
				}
			}
		}
		if best == -1 {
			// Cannot repair: fall back to fixed width maxLen for all.
			for _, s := range syms {
				lengths[s] = maxLen
			}
			return
		}
		lengths[syms[best]]++
	}
}

// canonicalAssign assigns canonical codewords given per-symbol lengths.
func canonicalAssign(syms []Symbol, lengths map[Symbol]int) map[Symbol]Codeword {
	type entry struct {
		sym Symbol
		len int
	}
	entries := make([]entry, 0, len(syms))
	maxLen := 0
	for _, s := range syms {
		entries = append(entries, entry{s, lengths[s]})
		if lengths[s] > maxLen {
			maxLen = lengths[s]
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].len != entries[j].len {
			return entries[i].len < entries[j].len
		}
		return entries[i].sym < entries[j].sym
	})
	words := make(map[Symbol]Codeword, len(entries))
	var code uint64
	prevLen := 0
	for _, e := range entries {
		if prevLen != 0 {
			code = (code + 1) << uint(e.len-prevLen)
		}
		words[e.sym] = Codeword{Bits: code, Len: e.len}
		prevLen = e.len
	}
	return words
}

func finish(words map[Symbol]Codeword) (*Code, error) {
	c := &Code{words: words}
	for _, w := range words {
		if w.Len > c.maxLen {
			c.maxLen = w.Len
		}
	}
	dec, err := newDecoder(words)
	if err != nil {
		return nil, err
	}
	c.decoder = dec
	return c, nil
}

// Codeword returns the codeword for s.
func (c *Code) Codeword(s Symbol) (Codeword, bool) {
	w, ok := c.words[s]
	return w, ok
}

// MaxLen returns the length in bits of the longest codeword.
func (c *Code) MaxLen() int { return c.maxLen }

// Alphabet returns the coded symbols in increasing order.
func (c *Code) Alphabet() []Symbol {
	syms := make([]Symbol, 0, len(c.words))
	for s := range c.words {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	return syms
}

// Encode appends the codeword for s to w.
func (c *Code) Encode(w *bitio.Writer, s Symbol) error {
	cw, ok := c.words[s]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSymbol, s)
	}
	return w.WriteBits(cw.Bits, cw.Len)
}

// Decode reads one codeword from r and returns its symbol together with the
// number of decode steps (tree levels examined).  The step count feeds the
// simulator's per-instruction decode cost, mirroring the paper's observation
// that frequency-based encoding "increases the number of levels of decoding
// needed".
func (c *Code) Decode(r *bitio.Reader) (Symbol, int, error) {
	return c.decoder.decode(r)
}

// EncodedSize returns the total number of bits this code uses to represent
// the given frequency table (i.e. sum over symbols of freq*len).
func (c *Code) EncodedSize(freq FreqTable) uint64 {
	var bits uint64
	for s, n := range freq {
		if w, ok := c.words[s]; ok {
			bits += n * uint64(w.Len)
		}
	}
	return bits
}

// AverageLength returns the expected codeword length in bits under freq.
func (c *Code) AverageLength(freq FreqTable) float64 {
	total := freq.Total()
	if total == 0 {
		return 0
	}
	return float64(c.EncodedSize(freq)) / float64(total)
}

// decoder is a canonical-code decoder driven level by level, one bit at a
// time, counting the levels traversed.
type decoder struct {
	// byLen[l] maps the numeric value of an l-bit prefix to a symbol, for
	// codeword lengths l that are actually used.
	byLen  map[int]map[uint64]Symbol
	maxLen int
}

func newDecoder(words map[Symbol]Codeword) (*decoder, error) {
	d := &decoder{byLen: make(map[int]map[uint64]Symbol)}
	seen := make(map[string]Symbol)
	for s, w := range words {
		if w.Len <= 0 || w.Len > bitio.MaxFieldWidth {
			return nil, fmt.Errorf("huffman: symbol %d has invalid code length %d", s, w.Len)
		}
		key := fmt.Sprintf("%d/%d", w.Len, w.Bits)
		if other, dup := seen[key]; dup {
			return nil, fmt.Errorf("huffman: symbols %d and %d share codeword", other, s)
		}
		seen[key] = s
		m := d.byLen[w.Len]
		if m == nil {
			m = make(map[uint64]Symbol)
			d.byLen[w.Len] = m
		}
		m[w.Bits] = s
		if w.Len > d.maxLen {
			d.maxLen = w.Len
		}
	}
	return d, nil
}

func (d *decoder) decode(r *bitio.Reader) (Symbol, int, error) {
	var acc uint64
	steps := 0
	for l := 1; l <= d.maxLen; l++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, steps, err
		}
		acc = acc << 1
		if bit {
			acc |= 1
		}
		steps++
		if m, ok := d.byLen[l]; ok {
			if s, hit := m[acc]; hit {
				return s, steps, nil
			}
		}
	}
	return 0, steps, ErrBadCode
}
