package huffman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"uhm/internal/bitio"
)

func freqFromSlice(counts []uint64) FreqTable {
	t := make(FreqTable)
	for i, c := range counts {
		if c > 0 {
			t.Add(Symbol(i), c)
		}
	}
	return t
}

func TestEmptyAlphabet(t *testing.T) {
	if _, err := New(FreqTable{}); err != ErrEmptyAlphabet {
		t.Errorf("New(empty) err = %v, want ErrEmptyAlphabet", err)
	}
	if _, err := NewFixed(nil); err != ErrEmptyAlphabet {
		t.Errorf("NewFixed(nil) err = %v, want ErrEmptyAlphabet", err)
	}
}

func TestSingleSymbol(t *testing.T) {
	c, err := New(FreqTable{7: 100})
	if err != nil {
		t.Fatal(err)
	}
	w, ok := c.Codeword(7)
	if !ok || w.Len != 1 {
		t.Errorf("single-symbol codeword = %+v ok=%v, want len 1", w, ok)
	}
	bw := bitio.NewWriter(0)
	if err := c.Encode(bw, 7); err != nil {
		t.Fatal(err)
	}
	r := bitio.NewReader(bw.Bytes(), bw.Len())
	s, _, err := c.Decode(r)
	if err != nil || s != 7 {
		t.Errorf("decode = %d,%v", s, err)
	}
}

func TestClassicExample(t *testing.T) {
	// Frequencies with a known optimal assignment: average length must match
	// the textbook optimum of 2.2 bits for {45,13,12,16,9,5}/100.
	freq := freqFromSlice([]uint64{45, 13, 12, 16, 9, 5})
	c, err := New(freq)
	if err != nil {
		t.Fatal(err)
	}
	got := c.AverageLength(freq)
	if math.Abs(got-2.24) > 1e-9 {
		t.Errorf("average length = %v, want 2.24", got)
	}
	// The most frequent symbol must get the shortest code.
	w0, _ := c.Codeword(0)
	if w0.Len != 1 {
		t.Errorf("most frequent symbol code length = %d, want 1", w0.Len)
	}
}

func TestAverageLengthNearEntropy(t *testing.T) {
	freq := freqFromSlice([]uint64{50, 25, 12, 6, 3, 2, 1, 1})
	c, err := New(freq)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(freq.Total())
	entropy := 0.0
	for _, n := range freq {
		p := float64(n) / total
		entropy -= p * math.Log2(p)
	}
	avg := c.AverageLength(freq)
	if avg < entropy-1e-9 {
		t.Errorf("average length %v below entropy %v", avg, entropy)
	}
	if avg > entropy+1 {
		t.Errorf("average length %v exceeds entropy+1 (%v)", avg, entropy+1)
	}
}

func TestUnknownSymbol(t *testing.T) {
	c, err := New(FreqTable{1: 5, 2: 5})
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	if err := c.Encode(w, 99); err == nil {
		t.Error("expected error encoding unknown symbol")
	}
}

func TestRoundTripSequence(t *testing.T) {
	freq := freqFromSlice([]uint64{40, 20, 20, 10, 5, 3, 1, 1})
	c, err := New(freq)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var msg []Symbol
	for i := 0; i < 500; i++ {
		msg = append(msg, Symbol(rng.Intn(8)))
	}
	w := bitio.NewWriter(0)
	for _, s := range msg {
		if err := c.Encode(w, s); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes(), w.Len())
	for i, want := range msg {
		got, _, err := c.Decode(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("decode %d: got %d want %d", i, got, want)
		}
	}
}

func TestRestrictedLengthsRespectLimit(t *testing.T) {
	// A very skewed distribution forces long codes when unrestricted.
	freq := make(FreqTable)
	for i := 0; i < 20; i++ {
		freq.Add(Symbol(i), uint64(1)<<uint(i))
	}
	unres, err := New(freq)
	if err != nil {
		t.Fatal(err)
	}
	if unres.MaxLen() <= 6 {
		t.Fatalf("test premise broken: unrestricted max length %d", unres.MaxLen())
	}
	res, err := NewRestricted(freq, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLen() > 6 {
		t.Errorf("restricted max length = %d, want <= 6", res.MaxLen())
	}
	// Restricted code is still decodable and complete for the alphabet.
	w := bitio.NewWriter(0)
	for s := range freq {
		if err := res.Encode(w, s); err != nil {
			t.Fatal(err)
		}
	}
	// Restricted code is never better than the optimum.
	if res.AverageLength(freq) < unres.AverageLength(freq)-1e-9 {
		t.Errorf("restricted average %v beats optimal %v", res.AverageLength(freq), unres.AverageLength(freq))
	}
}

func TestRestrictedTooTight(t *testing.T) {
	freq := make(FreqTable)
	for i := 0; i < 10; i++ {
		freq.Add(Symbol(i), 1)
	}
	if _, err := NewRestricted(freq, 3); err == nil {
		t.Error("expected error: 10 symbols cannot fit in 3-bit codes")
	}
	if _, err := NewRestricted(freq, 0); err == nil {
		t.Error("expected error for zero length limit")
	}
}

func TestFixedCode(t *testing.T) {
	syms := []Symbol{0, 1, 2, 3, 4}
	c, err := NewFixed(syms)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range syms {
		w, ok := c.Codeword(s)
		if !ok {
			t.Fatalf("missing codeword for %d", s)
		}
		if w.Len != 3 {
			t.Errorf("fixed width for %d = %d, want 3", s, w.Len)
		}
	}
	bw := bitio.NewWriter(0)
	for _, s := range syms {
		if err := c.Encode(bw, s); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(bw.Bytes(), bw.Len())
	for _, want := range syms {
		got, _, err := c.Decode(r)
		if err != nil || got != want {
			t.Fatalf("fixed decode got %d,%v want %d", got, err, want)
		}
	}
}

func TestDecodeBadInput(t *testing.T) {
	c, err := NewFixed([]Symbol{0, 1, 2}) // 2-bit codes 00,01,10; 11 unused
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	_ = w.WriteBits(0b11, 2)
	r := bitio.NewReader(w.Bytes(), w.Len())
	if _, _, err := c.Decode(r); err == nil {
		t.Error("expected error decoding unused codeword")
	}
}

func TestDecodeStepsCounted(t *testing.T) {
	freq := freqFromSlice([]uint64{100, 1, 1, 1})
	c, err := New(freq)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	_ = c.Encode(w, 0)
	r := bitio.NewReader(w.Bytes(), w.Len())
	_, steps, err := c.Decode(r)
	if err != nil {
		t.Fatal(err)
	}
	w0, _ := c.Codeword(0)
	if steps != w0.Len {
		t.Errorf("decode steps = %d, want codeword length %d", steps, w0.Len)
	}
}

func TestEncodedSizeAndAlphabet(t *testing.T) {
	freq := freqFromSlice([]uint64{10, 10, 10, 10})
	c, err := New(freq)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.EncodedSize(freq); got != 80 {
		t.Errorf("EncodedSize = %d, want 80 (4 symbols x 10 x 2 bits)", got)
	}
	al := c.Alphabet()
	if len(al) != 4 || al[0] != 0 || al[3] != 3 {
		t.Errorf("Alphabet = %v", al)
	}
}

// Property: every generated code is prefix-free.
func TestQuickPrefixFree(t *testing.T) {
	f := func(seed int64, n uint8, limited bool) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%30) + 2
		freq := make(FreqTable)
		for i := 0; i < count; i++ {
			freq.Add(Symbol(i), uint64(rng.Intn(1000)+1))
		}
		var c *Code
		var err error
		if limited {
			c, err = NewRestricted(freq, 12)
		} else {
			c, err = New(freq)
		}
		if err != nil {
			return false
		}
		syms := c.Alphabet()
		for i, a := range syms {
			wa, _ := c.Codeword(a)
			for j, b := range syms {
				if i == j {
					continue
				}
				wb, _ := c.Codeword(b)
				if wa.Len <= wb.Len {
					if wb.Bits>>(uint(wb.Len-wa.Len)) == wa.Bits {
						return false // wa is a prefix of wb
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: random messages round-trip under random frequency tables.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		count := rng.Intn(40) + 2
		freq := make(FreqTable)
		for i := 0; i < count; i++ {
			freq.Add(Symbol(i), uint64(rng.Intn(500)+1))
		}
		c, err := New(freq)
		if err != nil {
			return false
		}
		w := bitio.NewWriter(0)
		var msg []Symbol
		for i := 0; i < 200; i++ {
			s := Symbol(rng.Intn(count))
			msg = append(msg, s)
			if err := c.Encode(w, s); err != nil {
				return false
			}
		}
		r := bitio.NewReader(w.Bytes(), w.Len())
		for _, want := range msg {
			got, _, err := c.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Kraft inequality holds for every generated code.
func TestQuickKraft(t *testing.T) {
	f := func(seed int64, limited bool) bool {
		rng := rand.New(rand.NewSource(seed))
		count := rng.Intn(50) + 1
		freq := make(FreqTable)
		for i := 0; i < count; i++ {
			freq.Add(Symbol(i), uint64(rng.Intn(100)+1))
		}
		var c *Code
		var err error
		if limited {
			c, err = NewRestricted(freq, 10)
		} else {
			c, err = New(freq)
		}
		if err != nil {
			return count > 1024 // only acceptable failure: alphabet too big for limit
		}
		sum := 0.0
		for _, s := range c.Alphabet() {
			w, _ := c.Codeword(s)
			sum += math.Pow(2, -float64(w.Len))
		}
		return sum <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	freq := freqFromSlice([]uint64{400, 200, 100, 80, 60, 40, 20, 10, 5, 1})
	c, err := New(freq)
	if err != nil {
		b.Fatal(err)
	}
	w := bitio.NewWriter(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<20 {
			w.Reset()
		}
		_ = c.Encode(w, Symbol(i%10))
	}
}

func BenchmarkDecode(b *testing.B) {
	freq := freqFromSlice([]uint64{400, 200, 100, 80, 60, 40, 20, 10, 5, 1})
	c, err := New(freq)
	if err != nil {
		b.Fatal(err)
	}
	w := bitio.NewWriter(1 << 16)
	for i := 0; i < 4096; i++ {
		_ = c.Encode(w, Symbol(i%10))
	}
	r := bitio.NewReader(w.Bytes(), w.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 16 {
			_ = r.Seek(0)
		}
		_, _, _ = c.Decode(r)
	}
}
