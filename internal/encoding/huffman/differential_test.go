package huffman

import (
	"errors"
	"math/rand"
	"testing"

	"uhm/internal/bitio"
)

// The tests in this file hold the table-driven decoder to the retained
// level-walk reference (refDecoder): identical symbols, identical decode-step
// counts, identical errors and identical stream positions — over random
// codes, restricted-length codes, single-symbol codes, arbitrary bit offsets,
// truncated streams and garbage input.  The step counts are the paper's
// decode-cost parameter d, so any divergence here would corrupt every
// simulated report.

// decodeBoth runs the fast and reference decoders from the same position of
// the same stream and asserts every observable matches; it returns the fast
// decoder's results.
func decodeBoth(t *testing.T, c *Code, data []byte, nbit, pos int) (Symbol, int, error) {
	t.Helper()
	fast := bitio.NewReader(data, nbit)
	ref := bitio.NewReader(data, nbit)
	if err := fast.Seek(pos); err != nil {
		t.Fatal(err)
	}
	if err := ref.Seek(pos); err != nil {
		t.Fatal(err)
	}
	s1, n1, e1 := c.decoder.decode(fast)
	s2, n2, e2 := c.decoder.ref().decode(ref)
	if e1 != nil || e2 != nil {
		// Errors must agree in kind; on error the symbol is meaningless.
		if !errors.Is(e1, errKind(e2)) {
			t.Fatalf("pos %d: err %v, reference err %v", pos, e1, e2)
		}
	} else if s1 != s2 {
		t.Fatalf("pos %d: symbol %d, reference %d", pos, s1, s2)
	}
	if n1 != n2 {
		t.Fatalf("pos %d: steps %d, reference %d", pos, n1, n2)
	}
	if fast.Pos() != ref.Pos() {
		t.Fatalf("pos %d: stream at %d, reference at %d", pos, fast.Pos(), ref.Pos())
	}
	return s1, n1, e1
}

func errKind(err error) error {
	switch {
	case errors.Is(err, ErrBadCode):
		return ErrBadCode
	case errors.Is(err, bitio.ErrShortBuffer):
		return bitio.ErrShortBuffer
	default:
		return err
	}
}

// randomCode builds a code from a random frequency table; skew > 0 makes the
// distribution exponentially skewed to force long codewords.
func randomCode(t *testing.T, rng *rand.Rand, count, skew, lenLimit int) *Code {
	t.Helper()
	freq := make(FreqTable)
	for i := 0; i < count; i++ {
		w := uint64(rng.Intn(1000) + 1)
		if skew > 0 {
			w = 1 << uint(min(i*skew, 60))
		}
		freq.Add(Symbol(i*7%count), w) // collide some symbols for irregular alphabets
		freq.Add(Symbol(i), w)
	}
	var c *Code
	var err error
	if lenLimit > 0 {
		c, err = NewRestricted(freq, lenLimit)
	} else {
		c, err = New(freq)
	}
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDifferentialDecodeValidStreams decodes valid messages through both
// decoders, at every starting offset a real stream can have.
func TestDifferentialDecodeValidStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		count := rng.Intn(60) + 1
		skew := 0
		if trial%4 == 3 {
			skew = 1 + rng.Intn(2) // force long codes: exercises two-level and fallback paths
		}
		limit := 0
		if trial%5 == 4 {
			limit = 10 // restricted-length variant
		}
		c := randomCode(t, rng, count, skew, limit)

		// Encode a message preceded by a random misalignment.
		lead := rng.Intn(13)
		w := bitio.NewWriter(0)
		_ = w.WriteBits(rng.Uint64(), lead)
		var msg []Symbol
		offsets := []int{}
		for i := 0; i < 100; i++ {
			s := c.syms[rng.Intn(len(c.syms))]
			offsets = append(offsets, w.Len())
			if err := c.Encode(w, s); err != nil {
				t.Fatal(err)
			}
			msg = append(msg, s)
		}
		for i, want := range msg {
			got, steps, err := decodeBoth(t, c, w.Bytes(), w.Len(), offsets[i])
			if err != nil {
				t.Fatalf("trial %d sym %d: %v", trial, i, err)
			}
			if got != want {
				t.Fatalf("trial %d sym %d: decoded %d want %d", trial, i, got, want)
			}
			cw, _ := c.Codeword(want)
			if steps != cw.Len {
				t.Fatalf("trial %d sym %d: steps %d want codeword length %d", trial, i, steps, cw.Len)
			}
		}
	}
}

// TestDifferentialDecodeGarbage feeds random bytes at random offsets to both
// decoders: symbols, steps, errors and positions must still agree.
func TestDifferentialDecodeGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		count := rng.Intn(50) + 1
		skew := 0
		if trial%3 == 2 {
			skew = 1
		}
		c := randomCode(t, rng, count, skew, 0)
		data := make([]byte, 1+rng.Intn(30))
		rng.Read(data)
		nbit := rng.Intn(len(data)*8 + 1)
		for pos := 0; pos <= nbit; pos++ {
			decodeBoth(t, c, data, nbit, pos)
		}
	}
}

// TestDifferentialTruncatedStreams cuts valid streams at every length so the
// final codeword is truncated; both decoders must fail identically and leave
// the reader at the same place.
func TestDifferentialTruncatedStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		c := randomCode(t, rng, rng.Intn(30)+2, trial%2, 0)
		w := bitio.NewWriter(0)
		for i := 0; i < 20; i++ {
			_ = c.Encode(w, c.syms[rng.Intn(len(c.syms))])
		}
		for cut := 0; cut <= w.Len(); cut++ {
			r := bitio.NewReader(w.Bytes(), cut)
			rr := bitio.NewReader(w.Bytes(), cut)
			for {
				_, n1, e1 := c.decoder.decode(r)
				_, n2, e2 := c.decoder.ref().decode(rr)
				if n1 != n2 || r.Pos() != rr.Pos() || (e1 == nil) != (e2 == nil) {
					t.Fatalf("trial %d cut %d: fast %d@%d err=%v, ref %d@%d err=%v",
						trial, cut, n1, r.Pos(), e1, n2, rr.Pos(), e2)
				}
				if e1 != nil {
					if !errors.Is(e1, errKind(e2)) {
						t.Fatalf("trial %d cut %d: err %v vs %v", trial, cut, e1, e2)
					}
					break
				}
			}
		}
	}
}

// TestSingleSymbolAndRestrictedEdge covers the degenerate codes the grid
// sweeps generate: one-symbol alphabets (coded in 1 bit) and codes whose
// alphabet exactly fills the restricted length.
func TestSingleSymbolAndRestrictedEdge(t *testing.T) {
	// Single symbol: bit 0 decodes, bit 1 is a bad code.
	c, err := New(FreqTable{42: 5})
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	_ = w.WriteBits(0b01, 2)
	if s, steps, err := decodeBoth(t, c, w.Bytes(), 2, 0); err != nil || s != 42 || steps != 1 {
		t.Fatalf("single-symbol decode = %d,%d,%v", s, steps, err)
	}
	if _, _, err := decodeBoth(t, c, w.Bytes(), 2, 1); !errors.Is(err, ErrBadCode) {
		t.Fatalf("single-symbol bad bit err = %v", err)
	}

	// Exactly full restricted code: 16 symbols in 4 bits — every pattern is
	// a codeword, so garbage always decodes, never errors.
	freq := make(FreqTable)
	for i := 0; i < 16; i++ {
		freq.Add(Symbol(i), uint64(i+1))
	}
	rc, err := NewRestricted(freq, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{0xd3, 0x1c}
	for pos := 0; pos+4 <= 16; pos++ {
		if _, _, err := decodeBoth(t, rc, data, 16, pos); err != nil {
			t.Fatalf("full code pos %d: %v", pos, err)
		}
	}
}

// TestFallbackDecoderEngaged asserts the pathological-length fallback really
// is exercised: a Fibonacci-weighted alphabet long enough to exceed
// maxTableLen must still decode correctly through the reference path.
func TestFallbackDecoderEngaged(t *testing.T) {
	freq := make(FreqTable)
	a, b := uint64(1), uint64(1)
	for i := 0; i < 40; i++ {
		freq.Add(Symbol(i), a)
		a, b = b, a+b
	}
	c, err := New(freq)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxLen() <= maxTableLen {
		t.Fatalf("test premise broken: maxLen %d does not exceed table limit", c.MaxLen())
	}
	w := bitio.NewWriter(0)
	var msg []Symbol
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		s := Symbol(rng.Intn(40))
		msg = append(msg, s)
		if err := c.Encode(w, s); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes(), w.Len())
	for i, want := range msg {
		got, steps, err := c.Decode(r)
		if err != nil || got != want {
			t.Fatalf("fallback decode %d = %d,%v want %d", i, got, err, want)
		}
		cw, _ := c.Codeword(want)
		if steps != cw.Len {
			t.Fatalf("fallback steps %d want %d", steps, cw.Len)
		}
	}
	if c.decoder.root != nil {
		t.Fatal("decoder built a table despite over-long codes")
	}
}

// TestTwoLevelTableEngaged asserts codes between rootBits and maxTableLen use
// the two-level table and decode correctly through it.
func TestTwoLevelTableEngaged(t *testing.T) {
	freq := make(FreqTable)
	a, b := uint64(1), uint64(1)
	for i := 0; i < 24; i++ {
		freq.Add(Symbol(i), a)
		a, b = b, a+b
	}
	c, err := New(freq)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxLen() <= tableRootBits || c.MaxLen() > maxTableLen {
		t.Fatalf("test premise broken: maxLen %d not in two-level range", c.MaxLen())
	}
	w := bitio.NewWriter(0)
	var msg []Symbol
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		s := Symbol(rng.Intn(24))
		msg = append(msg, s)
		_ = c.Encode(w, s)
	}
	offsets := 0
	r := bitio.NewReader(w.Bytes(), w.Len())
	for i, want := range msg {
		got, steps, err := decodeBoth(t, c, w.Bytes(), w.Len(), offsets)
		if err != nil || got != want {
			t.Fatalf("two-level decode %d = %d,%v want %d", i, got, err, want)
		}
		offsets += steps
	}
	_ = r
	if c.decoder.root == nil || len(c.decoder.sub) == 0 {
		t.Fatal("two-level table not built")
	}
}

// FuzzDecodeDifferential fuzzes arbitrary byte streams against both decoders
// under a fixed mixed-length code.
func FuzzDecodeDifferential(f *testing.F) {
	freq := make(FreqTable)
	a, b := uint64(1), uint64(1)
	for i := 0; i < 18; i++ {
		freq.Add(Symbol(i), a)
		a, b = b, a+b
	}
	code, err := New(freq)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{0x00}, 0)
	f.Add([]byte{0xff, 0xff, 0xff}, 5)
	f.Add([]byte{0xa5, 0x5a, 0xc3}, 1)
	f.Fuzz(func(t *testing.T, data []byte, pos int) {
		if pos < 0 || pos > len(data)*8 {
			t.Skip()
		}
		fast := bitio.NewReader(data, -1)
		ref := bitio.NewReader(data, -1)
		_ = fast.Seek(pos)
		_ = ref.Seek(pos)
		for {
			s1, n1, e1 := code.decoder.decode(fast)
			s2, n2, e2 := code.decoder.ref().decode(ref)
			if n1 != n2 || fast.Pos() != ref.Pos() || (e1 == nil) != (e2 == nil) {
				t.Fatalf("diverged: fast %d,%d@%d err=%v ref %d,%d@%d err=%v",
					s1, n1, fast.Pos(), e1, s2, n2, ref.Pos(), e2)
			}
			if e1 != nil {
				if !errors.Is(e1, errKind(e2)) {
					t.Fatalf("error kinds differ: %v vs %v", e1, e2)
				}
				return
			}
			if s1 != s2 {
				t.Fatalf("symbols differ: %d vs %d", s1, s2)
			}
		}
	})
}
