// Package huffman implements the frequency-based encodings of §3.2 of the
// paper: classic Huffman coding of the symbols appearing in a static program
// representation, plus the restricted-length variant in which "the permitted
// field lengths are restricted to a small number of selected lengths", which
// "simplifies the decoding problem without sacrificing much by way of memory
// efficiency" (the Burroughs B1700 approach the paper cites via Wilner).
//
// Codes are canonical: within a code length, symbols are assigned codewords
// in increasing symbol order.  Canonical codes make the decoder a flat table
// lookup (see table.go): one peek of maxLen bits indexes directly to
// {symbol, code length, decode steps}, with a two-level table for longer
// codes.  The reported step counts still model the paper's decode-cost
// parameter d ("traversing a decoding tree guided by an examination of the
// encoded field") and are identical to those of the retained level-walk
// reference decoder.
package huffman
