package pairfreq

import (
	"errors"
	"fmt"

	"uhm/internal/bitio"
	"uhm/internal/encoding/huffman"
)

// Symbol aliases the huffman symbol type for convenience.
type Symbol = huffman.Symbol

// Stats accumulates unconditional and predecessor-conditioned frequency
// counts from the static program representation.  Each context is a
// huffman.Counter, so the per-token Observe path performs no map operation
// for the common case of small symbols (DIR opcodes are small integers);
// predecessor contexts at or above denseStatsCap spill into a map.
type Stats struct {
	uncond    huffman.Counter
	condDense []huffman.Counter // indexed by predecessor symbol
	condSpill map[Symbol]*huffman.Counter
	total     uint64
	last      Symbol
	seen      bool
}

// denseStatsCap bounds the dense predecessor-context array of Stats.
const denseStatsCap = 4096

// NewStats returns an empty statistics accumulator.
func NewStats() *Stats {
	return &Stats{}
}

// condFor returns the counter of the given predecessor context.
func (s *Stats) condFor(pred Symbol) *huffman.Counter {
	if pred < denseStatsCap {
		if int(pred) >= len(s.condDense) {
			grow := int(pred) + 1 - len(s.condDense)
			if grow < len(s.condDense) {
				grow = len(s.condDense) // at least double, amortising regrowth
			}
			s.condDense = append(s.condDense, make([]huffman.Counter, grow)...)[:int(pred)+1]
		}
		return &s.condDense[pred]
	}
	if s.condSpill == nil {
		s.condSpill = make(map[Symbol]*huffman.Counter)
	}
	ctr := s.condSpill[pred]
	if ctr == nil {
		ctr = new(huffman.Counter)
		s.condSpill[pred] = ctr
	}
	return ctr
}

// Observe records the next symbol in the static token stream.
func (s *Stats) Observe(sym Symbol) {
	s.uncond.Add(sym)
	s.total++
	if s.seen {
		s.condFor(s.last).Add(sym)
	}
	s.last = sym
	s.seen = true
}

// ObserveAll records a whole token stream, resetting the predecessor first so
// that streams do not condition across boundaries.
func (s *Stats) ObserveAll(syms []Symbol) {
	s.seen = false
	for _, sym := range syms {
		s.Observe(sym)
	}
}

// Total returns the total number of observed symbols.
func (s *Stats) Total() uint64 { return s.total }

// Unconditional returns a copy of the unconditional frequency table.
func (s *Stats) Unconditional() huffman.FreqTable {
	t := s.uncond.Fold()
	if t == nil {
		t = make(huffman.FreqTable)
	}
	return t
}

// forEachCond visits every observed predecessor context, in increasing
// predecessor order for the dense range followed by the spill contexts.
func (s *Stats) forEachCond(visit func(pred Symbol, ctr *huffman.Counter) error) error {
	for pred := range s.condDense {
		if s.condDense[pred].Empty() {
			continue
		}
		if err := visit(Symbol(pred), &s.condDense[pred]); err != nil {
			return err
		}
	}
	for pred, ctr := range s.condSpill {
		if err := visit(pred, ctr); err != nil {
			return err
		}
	}
	return nil
}

// Predecessors returns the number of distinct predecessor contexts observed.
func (s *Stats) Predecessors() int {
	n := 0
	_ = s.forEachCond(func(Symbol, *huffman.Counter) error {
		n++
		return nil
	})
	return n
}

// Coder is a pair-frequency (first-order conditional) coder.
type Coder struct {
	fallback *huffman.Code
	byPred   map[Symbol]*huffman.Code
	// dense caches byPred in a slice indexed by predecessor symbol when the
	// predecessor alphabet is compact (it is: DIR opcodes), so the per-symbol
	// tree selection on the encode and decode hot paths is an array index.
	dense []*huffman.Code
}

// treeFor returns the conditional decode tree for a predecessor, or nil if
// none was built.
func (c *Coder) treeFor(pred Symbol) *huffman.Code {
	if c.dense != nil {
		if int(pred) < len(c.dense) {
			return c.dense[pred]
		}
		return nil
	}
	return c.byPred[pred]
}

// ErrNoStats is returned by NewCoder when no symbols were observed.
var ErrNoStats = errors.New("pairfreq: no statistics observed")

// NewCoder builds the conditional coder from accumulated statistics.
// maxLen, if positive, restricts codeword lengths (the restricted-length
// variant); zero means unrestricted optimal codes.
func NewCoder(stats *Stats, maxLen int) (*Coder, error) {
	if stats == nil || stats.Total() == 0 {
		return nil, ErrNoStats
	}
	build := func(ctr *huffman.Counter) (*huffman.Code, error) {
		if maxLen > 0 {
			return ctr.CodeRestricted(maxLen)
		}
		return ctr.Code()
	}
	fallback, err := build(&stats.uncond)
	if err != nil {
		return nil, fmt.Errorf("pairfreq: fallback code: %w", err)
	}
	c := &Coder{fallback: fallback, byPred: make(map[Symbol]*huffman.Code)}
	maxPred := Symbol(0)
	if err := stats.forEachCond(func(pred Symbol, ctr *huffman.Counter) error {
		code, err := build(ctr)
		if err != nil {
			return fmt.Errorf("pairfreq: code for predecessor %d: %w", pred, err)
		}
		c.byPred[pred] = code
		if pred > maxPred {
			maxPred = pred
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if int(maxPred) <= 4*len(c.byPred)+64 {
		c.dense = make([]*huffman.Code, maxPred+1)
		for pred, code := range c.byPred {
			c.dense[pred] = code
		}
	}
	return c, nil
}

// Trees returns the number of decode trees the coder maintains (one per
// predecessor context plus the fallback).  This is the quantity the paper
// points to when noting that pair encoding increases interpreter size.
func (c *Coder) Trees() int { return len(c.byPred) + 1 }

// codeFor selects the decode tree for the given predecessor state.
func (c *Coder) codeFor(havePred bool, pred Symbol, sym Symbol) *huffman.Code {
	if !havePred {
		return c.fallback
	}
	code := c.treeFor(pred)
	if code == nil {
		return c.fallback
	}
	// The conditional table may not contain every symbol (the pair never
	// occurred in the statistics); fall back when the symbol is missing.
	if _, ok := code.Codeword(sym); !ok {
		return c.fallback
	}
	return code
}

// Encoder carries the predecessor state of an encoding pass.
type Encoder struct {
	c        *Coder
	pred     Symbol
	havePred bool
}

// Decoder carries the predecessor state of a decoding pass.
type Decoder struct {
	c        *Coder
	pred     Symbol
	havePred bool
}

// NewEncoder starts a new encoding pass (no predecessor).
func (c *Coder) NewEncoder() *Encoder { return &Encoder{c: c} }

// NewDecoder starts a new decoding pass (no predecessor).
func (c *Coder) NewDecoder() *Decoder { return &Decoder{c: c} }

// Prime sets the encoder's predecessor state without encoding a symbol.  It
// supports random-access encoding of a stream whose predecessor is known.
func (e *Encoder) Prime(pred Symbol) {
	e.pred = pred
	e.havePred = true
}

// Prime sets the decoder's predecessor state without decoding a symbol.  It
// supports random-access decoding (e.g. re-decoding one instruction in the
// middle of a program) when the caller knows the predecessor symbol.
func (d *Decoder) Prime(pred Symbol) {
	d.pred = pred
	d.havePred = true
}

// Reset clears the decoder's predecessor state, returning it to the start-of-
// stream condition.  A long-lived decoder (e.g. dir.Decoder, which decodes
// many independent instructions) resets or re-primes between codewords
// instead of allocating a fresh Decoder per decode.
func (d *Decoder) Reset() {
	d.pred = 0
	d.havePred = false
}

// escape is written before a fallback-coded symbol whenever a conditional
// tree exists for the current predecessor, so the decoder knows which tree to
// use.  A single bit suffices: 0 = conditional tree, 1 = fallback.
func (e *Encoder) writeEscape(w *bitio.Writer, useFallback bool, treeExists bool) {
	if !e.havePred || !treeExists {
		return // decoder will also use the fallback; no escape needed
	}
	w.WriteBit(useFallback)
}

// Encode appends sym to the stream.
func (e *Encoder) Encode(w *bitio.Writer, sym Symbol) error {
	treeExists := false
	var condCode *huffman.Code
	if e.havePred {
		condCode = e.c.treeFor(e.pred)
		treeExists = condCode != nil
	}
	code := e.c.codeFor(e.havePred, e.pred, sym)
	useFallback := code == e.c.fallback
	e.writeEscape(w, useFallback, treeExists)
	if err := code.Encode(w, sym); err != nil {
		return err
	}
	e.pred = sym
	e.havePred = true
	return nil
}

// Decode reads the next symbol and reports the number of decode steps
// (escape bit, if any, plus code-tree levels traversed).
func (d *Decoder) Decode(r *bitio.Reader) (Symbol, int, error) {
	steps := 0
	code := d.c.fallback
	if d.havePred {
		if condCode := d.c.treeFor(d.pred); condCode != nil {
			esc, err := r.ReadBit()
			if err != nil {
				return 0, steps, err
			}
			steps++
			if !esc {
				code = condCode
			}
		}
	}
	sym, n, err := code.Decode(r)
	steps += n
	if err != nil {
		return 0, steps, err
	}
	d.pred = sym
	d.havePred = true
	return sym, steps, nil
}

// EncodedSize encodes the whole stream into a scratch writer and returns the
// number of bits used.  It is a convenience for the representation-space
// measurements of Figure 1.
func (c *Coder) EncodedSize(stream []Symbol) (int, error) {
	w := bitio.NewWriter(len(stream) * 8)
	e := c.NewEncoder()
	for _, s := range stream {
		if err := e.Encode(w, s); err != nil {
			return 0, err
		}
	}
	return w.Len(), nil
}
