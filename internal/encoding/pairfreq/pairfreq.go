// Package pairfreq implements the pair-frequency encoding of §3.2: "The idea
// of frequency based encoding may be generalized by considering the frequency
// of occurrence of pairs, triples, etc., rather than single operators and
// operands" and, on the decode side, "An encoding based on the frequency of
// pairs of fields would require a separate decode tree for each possible
// predecessor field."
//
// Concretely, the coder conditions the code for each symbol on its
// predecessor: for each predecessor symbol a separate canonical Huffman code
// (decode tree) is built from the conditional frequency table.  The first
// symbol of a stream, and any symbol whose predecessor was never observed in
// the statistics, uses an unconditional fallback code.
package pairfreq

import (
	"errors"
	"fmt"

	"uhm/internal/bitio"
	"uhm/internal/encoding/huffman"
)

// Symbol aliases the huffman symbol type for convenience.
type Symbol = huffman.Symbol

// Stats accumulates unconditional and predecessor-conditioned frequency
// counts from the static program representation.
type Stats struct {
	uncond huffman.FreqTable
	cond   map[Symbol]huffman.FreqTable
	last   Symbol
	seen   bool
}

// NewStats returns an empty statistics accumulator.
func NewStats() *Stats {
	return &Stats{uncond: make(huffman.FreqTable), cond: make(map[Symbol]huffman.FreqTable)}
}

// Observe records the next symbol in the static token stream.
func (s *Stats) Observe(sym Symbol) {
	s.uncond.Add(sym, 1)
	if s.seen {
		t := s.cond[s.last]
		if t == nil {
			t = make(huffman.FreqTable)
			s.cond[s.last] = t
		}
		t.Add(sym, 1)
	}
	s.last = sym
	s.seen = true
}

// ObserveAll records a whole token stream, resetting the predecessor first so
// that streams do not condition across boundaries.
func (s *Stats) ObserveAll(syms []Symbol) {
	s.seen = false
	for _, sym := range syms {
		s.Observe(sym)
	}
}

// Total returns the total number of observed symbols.
func (s *Stats) Total() uint64 { return s.uncond.Total() }

// Unconditional returns a copy of the unconditional frequency table.
func (s *Stats) Unconditional() huffman.FreqTable {
	out := make(huffman.FreqTable, len(s.uncond))
	for k, v := range s.uncond {
		out[k] = v
	}
	return out
}

// Predecessors returns the number of distinct predecessor contexts observed.
func (s *Stats) Predecessors() int { return len(s.cond) }

// Coder is a pair-frequency (first-order conditional) coder.
type Coder struct {
	fallback *huffman.Code
	byPred   map[Symbol]*huffman.Code
}

// ErrNoStats is returned by NewCoder when no symbols were observed.
var ErrNoStats = errors.New("pairfreq: no statistics observed")

// NewCoder builds the conditional coder from accumulated statistics.
// maxLen, if positive, restricts codeword lengths (the restricted-length
// variant); zero means unrestricted optimal codes.
func NewCoder(stats *Stats, maxLen int) (*Coder, error) {
	if stats == nil || stats.Total() == 0 {
		return nil, ErrNoStats
	}
	build := func(freq huffman.FreqTable) (*huffman.Code, error) {
		if maxLen > 0 {
			return huffman.NewRestricted(freq, maxLen)
		}
		return huffman.New(freq)
	}
	fallback, err := build(stats.uncond)
	if err != nil {
		return nil, fmt.Errorf("pairfreq: fallback code: %w", err)
	}
	c := &Coder{fallback: fallback, byPred: make(map[Symbol]*huffman.Code, len(stats.cond))}
	for pred, freq := range stats.cond {
		code, err := build(freq)
		if err != nil {
			return nil, fmt.Errorf("pairfreq: code for predecessor %d: %w", pred, err)
		}
		c.byPred[pred] = code
	}
	return c, nil
}

// Trees returns the number of decode trees the coder maintains (one per
// predecessor context plus the fallback).  This is the quantity the paper
// points to when noting that pair encoding increases interpreter size.
func (c *Coder) Trees() int { return len(c.byPred) + 1 }

// codeFor selects the decode tree for the given predecessor state.
func (c *Coder) codeFor(havePred bool, pred Symbol, sym Symbol) *huffman.Code {
	if !havePred {
		return c.fallback
	}
	code := c.byPred[pred]
	if code == nil {
		return c.fallback
	}
	// The conditional table may not contain every symbol (the pair never
	// occurred in the statistics); fall back when the symbol is missing.
	if _, ok := code.Codeword(sym); !ok {
		return c.fallback
	}
	return code
}

// Encoder carries the predecessor state of an encoding pass.
type Encoder struct {
	c        *Coder
	pred     Symbol
	havePred bool
}

// Decoder carries the predecessor state of a decoding pass.
type Decoder struct {
	c        *Coder
	pred     Symbol
	havePred bool
}

// NewEncoder starts a new encoding pass (no predecessor).
func (c *Coder) NewEncoder() *Encoder { return &Encoder{c: c} }

// NewDecoder starts a new decoding pass (no predecessor).
func (c *Coder) NewDecoder() *Decoder { return &Decoder{c: c} }

// Prime sets the encoder's predecessor state without encoding a symbol.  It
// supports random-access encoding of a stream whose predecessor is known.
func (e *Encoder) Prime(pred Symbol) {
	e.pred = pred
	e.havePred = true
}

// Prime sets the decoder's predecessor state without decoding a symbol.  It
// supports random-access decoding (e.g. re-decoding one instruction in the
// middle of a program) when the caller knows the predecessor symbol.
func (d *Decoder) Prime(pred Symbol) {
	d.pred = pred
	d.havePred = true
}

// escape is written before a fallback-coded symbol whenever a conditional
// tree exists for the current predecessor, so the decoder knows which tree to
// use.  A single bit suffices: 0 = conditional tree, 1 = fallback.
func (e *Encoder) writeEscape(w *bitio.Writer, useFallback bool, treeExists bool) {
	if !e.havePred || !treeExists {
		return // decoder will also use the fallback; no escape needed
	}
	w.WriteBit(useFallback)
}

// Encode appends sym to the stream.
func (e *Encoder) Encode(w *bitio.Writer, sym Symbol) error {
	treeExists := false
	var condCode *huffman.Code
	if e.havePred {
		condCode = e.c.byPred[e.pred]
		treeExists = condCode != nil
	}
	code := e.c.codeFor(e.havePred, e.pred, sym)
	useFallback := code == e.c.fallback
	e.writeEscape(w, useFallback, treeExists)
	if err := code.Encode(w, sym); err != nil {
		return err
	}
	e.pred = sym
	e.havePred = true
	return nil
}

// Decode reads the next symbol and reports the number of decode steps
// (escape bit, if any, plus code-tree levels traversed).
func (d *Decoder) Decode(r *bitio.Reader) (Symbol, int, error) {
	steps := 0
	code := d.c.fallback
	if d.havePred {
		if condCode := d.c.byPred[d.pred]; condCode != nil {
			esc, err := r.ReadBit()
			if err != nil {
				return 0, steps, err
			}
			steps++
			if !esc {
				code = condCode
			}
		}
	}
	sym, n, err := code.Decode(r)
	steps += n
	if err != nil {
		return 0, steps, err
	}
	d.pred = sym
	d.havePred = true
	return sym, steps, nil
}

// EncodedSize encodes the whole stream into a scratch writer and returns the
// number of bits used.  It is a convenience for the representation-space
// measurements of Figure 1.
func (c *Coder) EncodedSize(stream []Symbol) (int, error) {
	w := bitio.NewWriter(len(stream) * 8)
	e := c.NewEncoder()
	for _, s := range stream {
		if err := e.Encode(w, s); err != nil {
			return 0, err
		}
	}
	return w.Len(), nil
}
