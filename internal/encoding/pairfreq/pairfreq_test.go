package pairfreq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"uhm/internal/bitio"
	"uhm/internal/encoding/huffman"
)

// markovStream generates a stream with strong pairwise structure: each symbol
// is usually followed by (symbol+1) mod n.
func markovStream(rng *rand.Rand, n, length int, followProb float64) []Symbol {
	stream := make([]Symbol, length)
	cur := Symbol(rng.Intn(n))
	for i := range stream {
		stream[i] = cur
		if rng.Float64() < followProb {
			cur = Symbol((int(cur) + 1) % n)
		} else {
			cur = Symbol(rng.Intn(n))
		}
	}
	return stream
}

func TestNoStats(t *testing.T) {
	if _, err := NewCoder(NewStats(), 0); err != ErrNoStats {
		t.Errorf("err = %v, want ErrNoStats", err)
	}
	if _, err := NewCoder(nil, 0); err != ErrNoStats {
		t.Errorf("nil stats err = %v, want ErrNoStats", err)
	}
}

func TestStatsAccumulation(t *testing.T) {
	s := NewStats()
	s.ObserveAll([]Symbol{1, 2, 1, 2, 3})
	if s.Total() != 5 {
		t.Errorf("Total = %d, want 5", s.Total())
	}
	uncond := s.Unconditional()
	if uncond[1] != 2 || uncond[2] != 2 || uncond[3] != 1 {
		t.Errorf("unconditional = %v", uncond)
	}
	if s.Predecessors() != 2 { // predecessors observed: 1 and 2
		t.Errorf("Predecessors = %d, want 2", s.Predecessors())
	}
}

func TestObserveAllResetsPredecessor(t *testing.T) {
	s := NewStats()
	s.ObserveAll([]Symbol{5})
	s.ObserveAll([]Symbol{6})
	// 5 should not be recorded as a predecessor of 6.
	if s.Predecessors() != 0 {
		t.Errorf("Predecessors = %d, want 0 (streams must not condition across boundaries)", s.Predecessors())
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	stream := markovStream(rng, 8, 2000, 0.9)
	stats := NewStats()
	stats.ObserveAll(stream)
	c, err := NewCoder(stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	enc := c.NewEncoder()
	for _, s := range stream {
		if err := enc.Encode(w, s); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes(), w.Len())
	dec := c.NewDecoder()
	for i, want := range stream {
		got, _, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("decode %d: got %d want %d", i, got, want)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining bits = %d, want 0", r.Remaining())
	}
}

func TestPairCodingBeatsUnconditionalOnMarkovSource(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stream := markovStream(rng, 16, 5000, 0.95)
	stats := NewStats()
	stats.ObserveAll(stream)

	pair, err := NewCoder(stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	pairBits, err := pair.EncodedSize(stream)
	if err != nil {
		t.Fatal(err)
	}

	uncond, err := huffman.New(stats.Unconditional())
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	for _, s := range stream {
		if err := uncond.Encode(w, s); err != nil {
			t.Fatal(err)
		}
	}
	uncondBits := w.Len()

	if pairBits >= uncondBits {
		t.Errorf("pair coding (%d bits) should beat unconditional coding (%d bits) on a Markov source", pairBits, uncondBits)
	}
}

func TestTreesCount(t *testing.T) {
	stats := NewStats()
	stats.ObserveAll([]Symbol{1, 2, 3, 1, 2, 3, 1})
	c, err := NewCoder(stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Predecessor contexts: 1, 2, 3 -> 3 conditional trees + 1 fallback.
	if c.Trees() != 4 {
		t.Errorf("Trees = %d, want 4", c.Trees())
	}
}

func TestUnseenPairFallsBack(t *testing.T) {
	// Train only on 1->2 pairs, then encode 1 followed by 3 (unseen pair).
	stats := NewStats()
	stats.ObserveAll([]Symbol{1, 2, 1, 2, 1, 2, 3})
	c, err := NewCoder(stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := []Symbol{1, 3, 2, 1, 2}
	w := bitio.NewWriter(0)
	enc := c.NewEncoder()
	for _, s := range stream {
		if err := enc.Encode(w, s); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes(), w.Len())
	dec := c.NewDecoder()
	for i, want := range stream {
		got, _, err := dec.Decode(r)
		if err != nil || got != want {
			t.Fatalf("decode %d: got %d err %v, want %d", i, got, err, want)
		}
	}
}

func TestRestrictedLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	stream := markovStream(rng, 12, 3000, 0.9)
	stats := NewStats()
	stats.ObserveAll(stream)
	c, err := NewCoder(stats, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Round trip still works with restricted code lengths.
	w := bitio.NewWriter(0)
	enc := c.NewEncoder()
	for _, s := range stream {
		if err := enc.Encode(w, s); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes(), w.Len())
	dec := c.NewDecoder()
	for i, want := range stream {
		got, _, err := dec.Decode(r)
		if err != nil || got != want {
			t.Fatalf("decode %d: got %d err %v, want %d", i, got, err, want)
		}
	}
}

func TestDecodeStepsPositive(t *testing.T) {
	stats := NewStats()
	stats.ObserveAll([]Symbol{1, 2, 1, 2})
	c, err := NewCoder(stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	enc := c.NewEncoder()
	for _, s := range []Symbol{1, 2} {
		_ = enc.Encode(w, s)
	}
	r := bitio.NewReader(w.Bytes(), w.Len())
	dec := c.NewDecoder()
	for i := 0; i < 2; i++ {
		_, steps, err := dec.Decode(r)
		if err != nil {
			t.Fatal(err)
		}
		if steps < 1 {
			t.Errorf("decode steps = %d, want >= 1", steps)
		}
	}
}

// Property: any training stream, re-encoded, round-trips exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nSyms uint8, follow uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSyms%20) + 2
		p := float64(follow%100) / 100.0
		stream := markovStream(rng, n, 400, p)
		stats := NewStats()
		stats.ObserveAll(stream)
		c, err := NewCoder(stats, 0)
		if err != nil {
			return false
		}
		w := bitio.NewWriter(0)
		enc := c.NewEncoder()
		for _, s := range stream {
			if err := enc.Encode(w, s); err != nil {
				return false
			}
		}
		r := bitio.NewReader(w.Bytes(), w.Len())
		dec := c.NewDecoder()
		for _, want := range stream {
			got, _, err := dec.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPairEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	stream := markovStream(rng, 16, 4096, 0.9)
	stats := NewStats()
	stats.ObserveAll(stream)
	c, err := NewCoder(stats, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := bitio.NewWriter(len(stream))
		enc := c.NewEncoder()
		for _, s := range stream {
			_ = enc.Encode(w, s)
		}
	}
}

func BenchmarkPairDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	stream := markovStream(rng, 16, 4096, 0.9)
	stats := NewStats()
	stats.ObserveAll(stream)
	c, err := NewCoder(stats, 0)
	if err != nil {
		b.Fatal(err)
	}
	w := bitio.NewWriter(0)
	enc := c.NewEncoder()
	for _, s := range stream {
		_ = enc.Encode(w, s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(w.Bytes(), w.Len())
		dec := c.NewDecoder()
		for range stream {
			_, _, _ = dec.Decode(r)
		}
	}
}
