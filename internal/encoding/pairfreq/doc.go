// Package pairfreq implements the pair-frequency encoding of §3.2: "The idea
// of frequency based encoding may be generalized by considering the frequency
// of occurrence of pairs, triples, etc., rather than single operators and
// operands" and, on the decode side, "An encoding based on the frequency of
// pairs of fields would require a separate decode tree for each possible
// predecessor field."
//
// Concretely, the coder conditions the code for each symbol on its
// predecessor: for each predecessor symbol a separate canonical Huffman code
// (decode tree) is built from the conditional frequency table.  The first
// symbol of a stream, and any symbol whose predecessor was never observed in
// the statistics, uses an unconditional fallback code.
package pairfreq
