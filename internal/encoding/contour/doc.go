// Package contour implements the contextual encoding of §3.2: "the scope
// rules of the HLR limit the number of variables that may be referenced from
// within a given contour.  The operand specification field needs only as many
// bits as are needed to select from amongst these variables.  The field
// length is variable but fixed within any single contour."
//
// A Contour corresponds to a block or procedure of the HLR (Johnston's
// contour model, the paper's reference [14]).  The Table records, for every
// contour, how many objects (variables, labels, procedure names) are visible
// there; the Encoder then writes operand tokens with exactly the number of
// bits needed inside the current contour, and the Decoder must "keep track of
// the various field sizes as the contour changes".
//
// The package also supports the paper's combined scheme in which "contextual
// information and frequency information may be employed simultaneously to
// construct a separate frequency based encoding for each contour": see
// PerContourCodes.
package contour
