package contour

import (
	"math/rand"
	"testing"
	"testing/quick"

	"uhm/internal/bitio"
	"uhm/internal/encoding/huffman"
)

func TestFieldWidth(t *testing.T) {
	cases := []struct {
		visible, want int
	}{{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5}, {1024, 10}}
	for _, c := range cases {
		got := Info{Visible: c.visible}.FieldWidth()
		if got != c.want {
			t.Errorf("FieldWidth(visible=%d) = %d, want %d", c.visible, got, c.want)
		}
	}
}

func TestDeclareAndVisibility(t *testing.T) {
	tbl := NewTable(4)
	outer, err := tbl.Declare(Global, 3)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := tbl.Declare(outer, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := tbl.Info(Global)
	o, _ := tbl.Info(outer)
	i, _ := tbl.Info(inner)
	if g.Visible != 4 || o.Visible != 7 || i.Visible != 9 {
		t.Errorf("visible counts = %d,%d,%d want 4,7,9", g.Visible, o.Visible, i.Visible)
	}
	if d, _ := tbl.Depth(inner); d != 2 {
		t.Errorf("Depth(inner) = %d, want 2", d)
	}
	if d, _ := tbl.Depth(Global); d != 0 {
		t.Errorf("Depth(Global) = %d, want 0", d)
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d, want 3", tbl.Len())
	}
}

func TestDeclareUnknownParent(t *testing.T) {
	tbl := NewTable(1)
	if _, err := tbl.Declare(ID(99), 1); err == nil {
		t.Error("expected error for unknown parent contour")
	}
	if _, err := tbl.Info(ID(42)); err == nil {
		t.Error("expected error for unknown contour info")
	}
	if _, err := tbl.Depth(ID(42)); err == nil {
		t.Error("expected error for unknown contour depth")
	}
}

func TestNegativeCountsClamped(t *testing.T) {
	tbl := NewTable(-5)
	g, _ := tbl.Info(Global)
	if g.Visible != 0 {
		t.Errorf("negative global objects should clamp to 0, got %d", g.Visible)
	}
	id, err := tbl.Declare(Global, -3)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := tbl.Info(id)
	if info.Local != 0 {
		t.Errorf("negative locals should clamp to 0, got %d", info.Local)
	}
}

func TestCoderWidthTracksContour(t *testing.T) {
	tbl := NewTable(16) // 4-bit fields globally
	block, _ := tbl.Declare(Global, 16)
	// block sees 32 objects -> 5-bit fields
	c := NewCoder(tbl)
	w := bitio.NewWriter(0)
	if err := c.EncodeOperand(w, 9); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 4 {
		t.Fatalf("global operand used %d bits, want 4", w.Len())
	}
	if err := c.Enter(block); err != nil {
		t.Fatal(err)
	}
	if err := c.EncodeOperand(w, 31); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 9 {
		t.Fatalf("after block operand, total bits = %d, want 9", w.Len())
	}
	if err := c.Leave(); err != nil {
		t.Fatal(err)
	}
	if c.Current() != Global {
		t.Errorf("after Leave, current = %d, want Global", c.Current())
	}

	// Decoding must follow the same contour transitions.
	d := NewCoder(tbl)
	r := bitio.NewReader(w.Bytes(), w.Len())
	v, width, err := d.DecodeOperand(r)
	if err != nil || v != 9 || width != 4 {
		t.Errorf("global decode = (%d,%d,%v), want (9,4,nil)", v, width, err)
	}
	_ = d.Enter(block)
	v, width, err = d.DecodeOperand(r)
	if err != nil || v != 31 || width != 5 {
		t.Errorf("block decode = (%d,%d,%v), want (31,5,nil)", v, width, err)
	}
}

func TestCoderErrors(t *testing.T) {
	tbl := NewTable(4)
	c := NewCoder(tbl)
	w := bitio.NewWriter(0)
	if err := c.EncodeOperand(w, 4); err == nil {
		t.Error("expected range error for operand 4 with 4 visible")
	}
	if err := c.EncodeOperand(w, -1); err == nil {
		t.Error("expected range error for negative operand")
	}
	if err := c.Enter(ID(77)); err == nil {
		t.Error("expected error entering unknown contour")
	}
	if err := c.Leave(); err == nil {
		t.Error("expected error on Leave without Enter")
	}
}

func TestEmptyContourOperandZero(t *testing.T) {
	tbl := NewTable(0)
	c := NewCoder(tbl)
	w := bitio.NewWriter(0)
	if err := c.EncodeOperand(w, 0); err != nil {
		t.Errorf("operand 0 in empty contour should encode (width 1): %v", err)
	}
	if err := c.EncodeOperand(w, 1); err == nil {
		t.Error("operand 1 in empty contour should fail")
	}
}

func TestPerContourCodes(t *testing.T) {
	tbl := NewTable(8)
	loop, _ := tbl.Declare(Global, 8)
	stats := map[ID]huffman.FreqTable{
		loop: {0: 100, 1: 50, 2: 10, 3: 1},
	}
	p, err := BuildPerContourCodes(tbl, stats)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code(loop) == nil {
		t.Fatal("loop contour should have a frequency code")
	}
	if p.Code(Global) != nil {
		t.Fatal("global contour should fall back to fixed width")
	}

	w := bitio.NewWriter(0)
	// Global: fixed 3-bit field.
	if err := p.Encode(w, Global, 5); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("global fallback used %d bits, want 3", w.Len())
	}
	// Loop contour: most frequent operand should use fewer bits than fixed.
	before := w.Len()
	if err := p.Encode(w, loop, 0); err != nil {
		t.Fatal(err)
	}
	if w.Len()-before >= 4 {
		t.Errorf("frequent operand used %d bits, expected < 4", w.Len()-before)
	}

	r := bitio.NewReader(w.Bytes(), w.Len())
	v, steps, err := p.Decode(r, Global)
	if err != nil || v != 5 || steps != 1 {
		t.Errorf("global decode = (%d,%d,%v)", v, steps, err)
	}
	v, steps, err = p.Decode(r, loop)
	if err != nil || v != 0 {
		t.Errorf("loop decode = (%d,%d,%v)", v, steps, err)
	}
	if steps < 1 {
		t.Errorf("decode steps = %d, want >= 1", steps)
	}
}

func TestPerContourCodesErrors(t *testing.T) {
	tbl := NewTable(4)
	if _, err := BuildPerContourCodes(tbl, map[ID]huffman.FreqTable{ID(9): {0: 1}}); err == nil {
		t.Error("expected error for stats on unknown contour")
	}
	p, err := BuildPerContourCodes(tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	if err := p.Encode(w, ID(9), 0); err == nil {
		t.Error("expected error encoding in unknown contour")
	}
	if err := p.Encode(w, Global, 99); err == nil {
		t.Error("expected range error")
	}
	r := bitio.NewReader(nil, 0)
	if _, _, err := p.Decode(r, ID(9)); err == nil {
		t.Error("expected error decoding in unknown contour")
	}
}

// Property: operands always round-trip when encoder and decoder perform the
// same contour transitions, and the bits consumed equal the contour width.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := NewTable(rng.Intn(20) + 1)
		ids := []ID{Global}
		for i := 0; i < rng.Intn(6)+1; i++ {
			parent := ids[rng.Intn(len(ids))]
			id, err := tbl.Declare(parent, rng.Intn(10)+1)
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		type step struct {
			contour ID
			op      int
		}
		var steps []step
		enc := NewCoder(tbl)
		w := bitio.NewWriter(0)
		for i := 0; i < 100; i++ {
			id := ids[rng.Intn(len(ids))]
			info, _ := tbl.Info(id)
			op := rng.Intn(info.Visible)
			// Jump contours via Enter from wherever we are; Leave immediately
			// after encoding to keep the stack flat.
			if err := enc.Enter(id); err != nil {
				return false
			}
			if err := enc.EncodeOperand(w, op); err != nil {
				return false
			}
			if err := enc.Leave(); err != nil {
				return false
			}
			steps = append(steps, step{id, op})
		}
		dec := NewCoder(tbl)
		r := bitio.NewReader(w.Bytes(), w.Len())
		for _, s := range steps {
			if err := dec.Enter(s.contour); err != nil {
				return false
			}
			v, width, err := dec.DecodeOperand(r)
			if err != nil || v != s.op {
				return false
			}
			info, _ := tbl.Info(s.contour)
			if width != info.FieldWidth() {
				return false
			}
			if err := dec.Leave(); err != nil {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkContourEncode(b *testing.B) {
	tbl := NewTable(32)
	c := NewCoder(tbl)
	w := bitio.NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<20 {
			w.Reset()
		}
		_ = c.EncodeOperand(w, i%32)
	}
}
