package contour

import (
	"errors"
	"fmt"

	"uhm/internal/bitio"
	"uhm/internal/encoding/huffman"
)

// ID identifies a contour.  Contour 0 is always the outermost (global)
// contour.
type ID int

// Global is the outermost contour.
const Global ID = 0

// ErrUnknownContour is returned when encoding or decoding refers to a contour
// that was never declared.
var ErrUnknownContour = errors.New("contour: unknown contour")

// ErrOperandRange is returned when an operand token is out of range for its
// contour.
var ErrOperandRange = errors.New("contour: operand index out of range for contour")

// Info describes one contour.
type Info struct {
	ID      ID
	Parent  ID  // parent contour; Global's parent is Global
	Local   int // number of objects declared directly in this contour
	Visible int // number of objects visible (locals plus enclosing scopes)

	// width caches FieldWidth for the decode hot path; Table computes it at
	// Declare time (a width is never 0, so 0 means "not yet computed").
	width int
}

// FieldWidth returns the number of bits needed to select among the visible
// objects of the contour.
func (i Info) FieldWidth() int {
	if i.width != 0 {
		return i.width
	}
	return widthFor(i.Visible)
}

func widthFor(n int) int {
	if n <= 1 {
		return 1
	}
	w := 0
	for v := n - 1; v > 0; v >>= 1 {
		w++
	}
	return w
}

// Table records every contour of a program.  The zero value is not usable;
// call NewTable.
type Table struct {
	infos map[ID]Info
	next  ID
}

// NewTable returns a table pre-populated with the global contour holding
// globalObjects visible objects.
func NewTable(globalObjects int) *Table {
	if globalObjects < 0 {
		globalObjects = 0
	}
	t := &Table{infos: make(map[ID]Info), next: 1}
	t.infos[Global] = Info{ID: Global, Parent: Global, Local: globalObjects, Visible: globalObjects,
		width: widthFor(globalObjects)}
	return t
}

// Declare creates a new contour nested inside parent with the given number of
// locally declared objects, and returns its ID.  Visibility accumulates down
// the static chain, matching block-structured scope rules.
func (t *Table) Declare(parent ID, locals int) (ID, error) {
	p, ok := t.infos[parent]
	if !ok {
		return 0, fmt.Errorf("%w: parent %d", ErrUnknownContour, parent)
	}
	if locals < 0 {
		locals = 0
	}
	id := t.next
	t.next++
	t.infos[id] = Info{ID: id, Parent: parent, Local: locals, Visible: p.Visible + locals,
		width: widthFor(p.Visible + locals)}
	return id, nil
}

// Info returns the description of a contour.
func (t *Table) Info(id ID) (Info, error) {
	info, ok := t.infos[id]
	if !ok {
		return Info{}, fmt.Errorf("%w: %d", ErrUnknownContour, id)
	}
	return info, nil
}

// Len returns the number of contours (including the global contour).
func (t *Table) Len() int { return len(t.infos) }

// Depth returns the static nesting depth of a contour (Global is depth 0).
func (t *Table) Depth(id ID) (int, error) {
	depth := 0
	for id != Global {
		info, ok := t.infos[id]
		if !ok {
			return 0, fmt.Errorf("%w: %d", ErrUnknownContour, id)
		}
		id = info.Parent
		depth++
		if depth > len(t.infos) {
			return 0, errors.New("contour: cycle in parent chain")
		}
	}
	return depth, nil
}

// Coder encodes and decodes operand tokens with contour-dependent widths.
// The coder is stateful: Enter and Leave track the current contour exactly as
// the paper's interpreter must "keep track of the various field sizes as the
// contour changes and refer to the current field size before extracting the
// field".
type Coder struct {
	table   *Table
	current ID
	stack   []ID
}

// NewCoder returns a coder positioned in the global contour.
func NewCoder(table *Table) *Coder {
	return &Coder{table: table, current: Global}
}

// Current returns the contour the coder is currently positioned in.
func (c *Coder) Current() ID { return c.current }

// Enter moves the coder into contour id (for instance at a block entry or
// procedure call in the token stream).
func (c *Coder) Enter(id ID) error {
	if _, ok := c.table.infos[id]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownContour, id)
	}
	c.stack = append(c.stack, c.current)
	c.current = id
	return nil
}

// Leave returns to the contour that was current before the matching Enter.
func (c *Coder) Leave() error {
	if len(c.stack) == 0 {
		return errors.New("contour: Leave without matching Enter")
	}
	c.current = c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
	return nil
}

// EncodeOperand writes operand token op using the field width of the current
// contour.
func (c *Coder) EncodeOperand(w *bitio.Writer, op int) error {
	info := c.table.infos[c.current]
	if op < 0 || (info.Visible > 0 && op >= info.Visible) || (info.Visible == 0 && op != 0) {
		return fmt.Errorf("%w: %d in contour %d (visible %d)", ErrOperandRange, op, c.current, info.Visible)
	}
	return w.WriteBits(uint64(op), info.FieldWidth())
}

// DecodeOperand reads an operand token using the current contour's width and
// returns it along with the width consumed.
func (c *Coder) DecodeOperand(r *bitio.Reader) (int, int, error) {
	info := c.table.infos[c.current]
	width := info.FieldWidth()
	v, err := r.ReadBits(width)
	if err != nil {
		return 0, width, err
	}
	return int(v), width, nil
}

// PerContourCodes combines contextual and frequency information: a separate
// canonical Huffman code is constructed for each contour from that contour's
// own operand-frequency statistics.  Contours with no statistics fall back to
// the fixed-width contextual code.
type PerContourCodes struct {
	table *Table
	codes map[ID]*huffman.Code
}

// BuildPerContourCodes builds one code per contour from the supplied
// per-contour frequency tables.
func BuildPerContourCodes(table *Table, stats map[ID]huffman.FreqTable) (*PerContourCodes, error) {
	p := &PerContourCodes{table: table, codes: make(map[ID]*huffman.Code)}
	for id, freq := range stats {
		if _, err := table.Info(id); err != nil {
			return nil, err
		}
		if len(freq) == 0 {
			continue
		}
		code, err := huffman.New(freq)
		if err != nil {
			return nil, fmt.Errorf("contour %d: %w", id, err)
		}
		p.codes[id] = code
	}
	return p, nil
}

// Code returns the Huffman code for a contour, or nil if that contour uses
// the fixed-width fallback.
func (p *PerContourCodes) Code(id ID) *huffman.Code { return p.codes[id] }

// Encode writes operand op in contour id, using that contour's frequency code
// if one exists and the fixed-width contextual code otherwise.
func (p *PerContourCodes) Encode(w *bitio.Writer, id ID, op int) error {
	if code := p.codes[id]; code != nil {
		return code.Encode(w, huffman.Symbol(op))
	}
	info, err := p.table.Info(id)
	if err != nil {
		return err
	}
	if op < 0 || (info.Visible > 0 && op >= info.Visible) || (info.Visible == 0 && op != 0) {
		return fmt.Errorf("%w: %d in contour %d", ErrOperandRange, op, id)
	}
	return w.WriteBits(uint64(op), info.FieldWidth())
}

// Decode reads an operand in contour id and reports the number of decode
// steps (1 for a fixed-width extract, the code length for a Huffman decode).
func (p *PerContourCodes) Decode(r *bitio.Reader, id ID) (int, int, error) {
	if code := p.codes[id]; code != nil {
		s, steps, err := code.Decode(r)
		return int(s), steps, err
	}
	info, err := p.table.Info(id)
	if err != nil {
		return 0, 0, err
	}
	v, err := r.ReadBits(info.FieldWidth())
	if err != nil {
		return 0, 1, err
	}
	return int(v), 1, nil
}
