package cache

import (
	"errors"
	"fmt"
)

// Config describes a cache.
type Config struct {
	// CapacityBytes is the total capacity of the data array.
	CapacityBytes int
	// LineBytes is the size of one line (the unit of transfer).
	LineBytes int
	// Assoc is the set associativity (the paper uses degree 4).
	Assoc int
}

// DefaultConfig matches the paper's reference point: a 4096-byte cache of
// degree-4 associativity with 16-byte lines.
func DefaultConfig() Config {
	return Config{CapacityBytes: 4096, LineBytes: 16, Assoc: 4}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CapacityBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return errors.New("cache: sizes and associativity must be positive")
	}
	if c.CapacityBytes%c.LineBytes != 0 {
		return errors.New("cache: capacity must be a multiple of the line size")
	}
	lines := c.CapacityBytes / c.LineBytes
	if lines%c.Assoc != 0 {
		return errors.New("cache: line count must be a multiple of the associativity")
	}
	return nil
}

// Stats reports cache behaviour.
type Stats struct {
	Accesses  int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRatio returns hits/accesses (the paper's h_c); zero if never accessed.
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// line is one cache line's bookkeeping.
type line struct {
	valid bool
	tag   uint64
	// lastUse is a logical timestamp used to implement LRU; the replacement
	// array of a real design would hold the recency ordering of the set.
	lastUse int64
}

// Cache is a set-associative cache directory.  Only the directory (tags and
// recency) is modelled; the data payload itself is irrelevant to hit-ratio
// and timing studies.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets int
	clock int64
	stats Stats
}

// New creates a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.CapacityBytes / cfg.LineBytes / cfg.Assoc
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Assoc)
	}
	return &Cache{cfg: cfg, sets: sets, nsets: nsets}, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.nsets }

// Stats returns accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears statistics but keeps contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset returns the cache to its freshly constructed state: contents flushed,
// statistics zeroed, clock rewound.  No allocation is released, so a replayed
// run behaves exactly like a run against a new cache.
func (c *Cache) Reset() {
	c.Flush()
	c.stats = Stats{}
	c.clock = 0
}

// Flush invalidates every line.
func (c *Cache) Flush() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
}

// indexOf maps an address to its set index and tag.
func (c *Cache) indexOf(addr uint64) (set int, tag uint64) {
	lineAddr := addr / uint64(c.cfg.LineBytes)
	return int(lineAddr % uint64(c.nsets)), lineAddr / uint64(c.nsets)
}

// Access references the byte at addr and reports whether it hit.  On a miss
// the containing line is brought in, evicting the set's LRU line if needed.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.stats.Accesses++
	setIdx, tag := c.indexOf(addr)
	set := c.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.clock
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	// Choose victim: first invalid line, else the LRU line.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim == -1 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[victim].lastUse {
				victim = i
			}
		}
		c.stats.Evictions++
	}
	set[victim] = line{valid: true, tag: tag, lastUse: c.clock}
	return false
}

// ChargeSpan advances the cache state machine over the consecutive words
// [firstWord, lastWord] of the cached segment (each wordBytes wide) exactly
// as per-word Access calls would, and reports how many hit and how many
// missed.  It is the pure cost-replay entry point of the trace-once/cost-many
// split: a derivation streaming a recorded fetch trace through ChargeSpan
// leaves the directory, recency and statistics in the same state as the fully
// simulated fetch loop.
func (c *Cache) ChargeSpan(firstWord, lastWord, wordBytes int) (hits, misses int) {
	for w := firstWord; w <= lastWord; w++ {
		if c.Access(uint64(w * wordBytes)) {
			hits++
		} else {
			misses++
		}
	}
	return hits, misses
}

// Contains reports whether the line holding addr is currently resident,
// without updating recency or statistics.
func (c *Cache) Contains(addr uint64) bool {
	setIdx, tag := c.indexOf(addr)
	for _, l := range c.sets[setIdx] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// ResidentLines returns the number of valid lines.
func (c *Cache) ResidentLines() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.valid {
				n++
			}
		}
	}
	return n
}

// String summarises the geometry.
func (c *Cache) String() string {
	return fmt.Sprintf("cache{%d B, %d-byte lines, %d-way, %d sets}",
		c.cfg.CapacityBytes, c.cfg.LineBytes, c.cfg.Assoc, c.nsets)
}
